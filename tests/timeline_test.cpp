// Timeline exporter tests: chrome_timeline_json must emit valid Chrome
// trace-event JSON — every slice carries pid/tid/ts/ph, sends pair with
// receives as s/f flow arrows, and hostile node/group/detail strings
// survive through json_escape. Validity is checked with a small
// recursive-descent JSON parser rather than substring luck: a single raw
// quote or control character in a label breaks Perfetto's loader.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <string>

#include "provenance/provenance.hpp"
#include "scenario/stacks.hpp"
#include "telemetry/hub.hpp"
#include "test_util.hpp"
#include "trace/timeline.hpp"

namespace pimlib::test {
namespace {

/// Minimal strict JSON syntax checker (RFC 8259 grammar, no tree built).
/// Rejects raw control characters inside strings — exactly the corruption
/// an escaping bug produces.
class JsonChecker {
public:
    explicit JsonChecker(const std::string& text) : s_(text) {}

    [[nodiscard]] bool valid() {
        skip();
        value();
        skip();
        return ok_ && i_ == s_.size();
    }

private:
    void fail() { ok_ = false; }
    [[nodiscard]] char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
    void skip() {
        while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                                  s_[i_] == '\n' || s_[i_] == '\r')) {
            ++i_;
        }
    }
    void expect(char c) {
        if (peek() == c) {
            ++i_;
        } else {
            fail();
        }
    }
    void literal(const char* lit) {
        for (const char* p = lit; *p != '\0'; ++p) expect(*p);
    }
    void number() {
        const std::size_t start = i_;
        if (peek() == '-') ++i_;
        while (i_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
                std::strchr(".eE+-", s_[i_]) != nullptr)) {
            ++i_;
        }
        if (i_ == start) fail();
    }
    void string() {
        expect('"');
        while (ok_ && i_ < s_.size() && s_[i_] != '"') {
            const auto c = static_cast<unsigned char>(s_[i_]);
            if (c == '\\') {
                ++i_;
                const char e = peek();
                if (e == 'u') {
                    ++i_;
                    for (int k = 0; k < 4; ++k) {
                        if (std::isxdigit(static_cast<unsigned char>(peek())) == 0) {
                            fail();
                        }
                        ++i_;
                    }
                } else if (std::strchr("\"\\/bfnrt", e) != nullptr) {
                    ++i_;
                } else {
                    fail();
                }
            } else if (c < 0x20) {
                fail(); // raw control character: escaping bug
            } else {
                ++i_;
            }
        }
        expect('"');
    }
    void object() {
        expect('{');
        skip();
        if (peek() == '}') {
            ++i_;
            return;
        }
        while (ok_) {
            skip();
            string();
            skip();
            expect(':');
            value();
            skip();
            if (peek() == ',') {
                ++i_;
                continue;
            }
            break;
        }
        expect('}');
    }
    void array() {
        expect('[');
        skip();
        if (peek() == ']') {
            ++i_;
            return;
        }
        while (ok_) {
            value();
            skip();
            if (peek() == ',') {
                ++i_;
                continue;
            }
            break;
        }
        expect(']');
    }
    void value() {
        if (!ok_) return;
        skip();
        switch (peek()) {
        case '{': object(); break;
        case '[': array(); break;
        case '"': string(); break;
        case 't': literal("true"); break;
        case 'f': literal("false"); break;
        case 'n': literal("null"); break;
        default: number(); break;
        }
    }

    const std::string& s_;
    std::size_t i_ = 0;
    bool ok_ = true;
};

std::size_t count_of(const std::string& text, const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size())) {
        ++n;
    }
    return n;
}

// --- end-to-end: a real join + register + switchover run ------------------

TEST(Timeline, WalkthroughRunEmitsValidChromeTraceJson) {
    Fig3Topology topo;
    topo.net.telemetry().set_tracing(true);
    provenance::Recorder recorder(topo.net.telemetry().registry());
    topo.net.set_provenance(&recorder);
    scenario::PimSmStack stack(topo.net, fast_config());
    stack.set_rp(kGroup, {topo.c->router_id()});
    stack.set_spt_policy(pim::SptPolicy::immediate());

    topo.net.run_for(100 * sim::kMillisecond);
    stack.host_agent(*topo.receiver).join(kGroup);
    topo.source->send_stream(kGroup, 10, 10 * sim::kMillisecond,
                             150 * sim::kMillisecond);
    topo.net.run_for(1 * sim::kSecond);

    const std::string json = trace::chrome_timeline_json(
        topo.net.telemetry(), &recorder);

    EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);

    // Metadata names both processes and every node track.
    EXPECT_NE(json.find("nodes (control + data plane)"), std::string::npos);
    EXPECT_NE(json.find("causal transactions"), std::string::npos);
    for (const char* node : {"A", "B", "C", "D", "receiver", "source"}) {
        EXPECT_NE(json.find("{\"name\":\"" + std::string(node) + "\"}"),
                  std::string::npos)
            << "no thread_name track for " << node;
    }

    // The join transaction is present: IGMP report, hop-by-hop joins, the
    // register leg, data hops, and the join-to-data span.
    EXPECT_GE(count_of(json, "\"name\":\"igmp-report\""), 1u);
    EXPECT_GE(count_of(json, "\"name\":\"join-sent\""), 1u);
    EXPECT_GE(count_of(json, "\"name\":\"register-received\""), 1u);
    EXPECT_GE(count_of(json, "\"name\":\"fwd deliver\""), 1u);
    EXPECT_GE(count_of(json, "\"name\":\"join-to-data\""), 1u);
    EXPECT_GE(count_of(json, "\"name\":\"igmp-to-join\""), 1u);

    // Flow arrows come in s/f pairs and every finish binds to its enclosing
    // slice so Perfetto draws the arrow into the slice body.
    const std::size_t starts = count_of(json, "\"ph\":\"s\"");
    const std::size_t finishes = count_of(json, "\"ph\":\"f\"");
    EXPECT_GT(starts, 0u);
    EXPECT_EQ(starts, finishes);
    EXPECT_EQ(finishes, count_of(json, "\"bp\":\"e\""));

    // Async span bars open and close in equal numbers.
    EXPECT_EQ(count_of(json, "\"ph\":\"b\""), count_of(json, "\"ph\":\"e\""));
}

// --- hostile labels -------------------------------------------------------

TEST(Timeline, HostileLabelsAreEscaped) {
    topo::Network net;
    net.telemetry().set_tracing(true);
    const std::string evil_node = "ev\"il\\node";
    const std::string evil_detail = "line1\nline2\ttab \"quoted\" \x01 end";
    net.telemetry().emit(telemetry::EventType::kJoinSent, evil_node, "pim",
                         "224.1.1.1", evil_detail);
    net.telemetry().emit(telemetry::EventType::kJoinReceived, "peer", "pim",
                         "224.1.1.1", "ok");

    const std::string json = trace::chrome_timeline_json(net.telemetry(), nullptr);
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    // The escaped forms are present; the raw quote-in-string form is not.
    EXPECT_NE(json.find("ev\\\"il\\\\node"), std::string::npos);
    EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
    EXPECT_EQ(json.find(evil_detail), std::string::npos);
}

// --- empty hub ------------------------------------------------------------

TEST(Timeline, EmptyHubStillValid) {
    topo::Network net;
    const std::string json = trace::chrome_timeline_json(net.telemetry(), nullptr);
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

} // namespace
} // namespace pimlib::test
