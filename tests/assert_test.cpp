// Per-interface Assert (LAN forwarder election) end-to-end tests: two
// parallel upstream routers forward the same source onto a shared LAN, the
// first duplicate triggers the election, the SPT forwarder wins on rank,
// the loser installs an (S,G)RP-bit negative cache, downstream routers
// re-point their RPF' at the winner, and the telemetry/provenance layers
// record each of those facts.
#include <gtest/gtest.h>

#include "provenance/provenance.hpp"
#include "telemetry/snapshot.hpp"
#include "test_util.hpp"

namespace pimlib {
namespace {

const net::GroupAddress kGroup{net::Ipv4Address(224, 9, 9, 9)};

/// The checker's lan-assert world with a single downstream router:
///
///   source — slan — B ——(2)—— C(RP) ——(1)—— U1
///                   \                        |
///                    (1)—— U2 ———————————— dlan —— R — rlan — rcv
///
/// R's shared tree climbs U1 (cost 2 to C vs 3 via U2); its SPT climbs U2
/// (cost 2 to the source vs 4 via U1). Both paths land on dlan, so the
/// first post-switchover packet arrives twice and forces the election;
/// U2's SPT assert outranks U1's shared-tree assert outright.
struct AssertWorld {
    topo::Network net;
    topo::Router* b = nullptr;
    topo::Router* c = nullptr;
    topo::Router* u1 = nullptr;
    topo::Router* u2 = nullptr;
    topo::Router* r = nullptr;
    topo::Segment* dlan = nullptr;
    topo::Host* source = nullptr;
    topo::Host* rcv = nullptr;
    std::unique_ptr<unicast::OracleRouting> routing;
    std::unique_ptr<scenario::PimSmStack> stack;

    explicit AssertWorld(bool mutate_loser_keeps_forwarding = false) {
        b = &net.add_router("B");
        c = &net.add_router("C");
        u1 = &net.add_router("U1");
        u2 = &net.add_router("U2");
        r = &net.add_router("R");
        net.add_link(*b, *c, sim::kMillisecond, 2);
        net.add_link(*c, *u1, sim::kMillisecond, 1);
        net.add_link(*b, *u2, sim::kMillisecond, 1);
        dlan = &net.add_lan({u1, u2, r});
        auto& slan = net.add_lan({b});
        auto& rlan = net.add_lan({r});
        source = &net.add_host("source", slan);
        rcv = &net.add_host("rcv", rlan);
        routing = std::make_unique<unicast::OracleRouting>(net);
        scenario::StackConfig cfg = test::fast_config();
        cfg.pim.mutate_assert_loser_keeps_forwarding = mutate_loser_keeps_forwarding;
        stack = std::make_unique<scenario::PimSmStack>(net, cfg);
        stack->set_rp(kGroup, {c->router_id()});
        stack->set_spt_policy(pim::SptPolicy::immediate());

        net.simulator().schedule_at(120 * sim::kMillisecond,
                                    [this] { stack->host_agent(*rcv).join(kGroup); });
        source->send_stream(kGroup, 12, 10 * sim::kMillisecond,
                            250 * sim::kMillisecond);
        // A second burst well after the election: steady state must be
        // duplicate-free with the loser's negative cache still holding.
        source->send_stream(kGroup, 6, 20 * sim::kMillisecond,
                            800 * sim::kMillisecond);
    }

    [[nodiscard]] net::Ipv4Address source_addr() const {
        return source->interfaces().front().address;
    }
    [[nodiscard]] int dlan_if(const topo::Router& router) const {
        return router.ifindex_on(*dlan).value();
    }
    [[nodiscard]] net::Ipv4Address dlan_addr(const topo::Router& router) const {
        return router.interface(dlan_if(router)).address;
    }

    [[nodiscard]] std::size_t duplicates_seen() const {
        std::set<std::uint64_t> seqs;
        std::size_t dups = 0;
        for (const auto& rec : rcv->received()) {
            if (rec.group != kGroup) continue;
            if (!seqs.insert(rec.seq).second) ++dups;
        }
        return dups;
    }
};

TEST(AssertTest, ElectionLeavesExactlyOneForwarderOnTheLan) {
    AssertWorld w;
    w.net.run_for(1300 * sim::kMillisecond);

    // Every packet of both bursts delivered; at most the pre-election
    // packets may have duplicated, and the post-election burst may not.
    EXPECT_EQ(w.rcv->received_count(kGroup) - w.duplicates_seen(), 18u);
    const std::size_t early_dups = w.duplicates_seen();

    // The loser holds an (S,G)RP-bit negative cache pruned on the LAN...
    auto* loser_sg = w.stack->pim_at(*w.u1).cache().find_sg(w.source_addr(), kGroup);
    ASSERT_NE(loser_sg, nullptr);
    EXPECT_TRUE(loser_sg->rp_bit());
    EXPECT_TRUE(loser_sg->is_pruned(w.dlan_if(*w.u1)));

    // ...while the winner forwards its real (S,G) onto it.
    auto* winner_sg = w.stack->pim_at(*w.u2).cache().find_sg(w.source_addr(), kGroup);
    ASSERT_NE(winner_sg, nullptr);
    EXPECT_FALSE(winner_sg->rp_bit());
    EXPECT_TRUE(winner_sg->has_oif(w.dlan_if(*w.u2)));

    // Steady state (the 800 ms burst, seqs 13..18) is duplicate-free.
    std::set<std::uint64_t> late_seqs;
    std::size_t late_copies = 0;
    for (const auto& rec : w.rcv->received()) {
        if (rec.group != kGroup || rec.seq < 13) continue;
        late_seqs.insert(rec.seq);
        ++late_copies;
    }
    EXPECT_EQ(late_seqs.size(), 6u);
    EXPECT_EQ(late_copies, 6u) << "assert loser resumed forwarding";
    (void)early_dups;
}

TEST(AssertTest, DownstreamRetargetsItsUpstreamAtTheWinner) {
    AssertWorld w;
    telemetry::MribSnapshot before;
    w.net.simulator().schedule_at(240 * sim::kMillisecond,
                                  [&] { before = w.stack->capture_mrib(); });
    w.net.run_for(600 * sim::kMillisecond);

    // R's (S,G) joins are addressed to the winner on the LAN.
    auto* sg = w.stack->pim_at(*w.r).cache().find_sg(w.source_addr(), kGroup);
    ASSERT_NE(sg, nullptr);
    ASSERT_TRUE(sg->upstream_neighbor().has_value());
    EXPECT_EQ(*sg->upstream_neighbor(), w.dlan_addr(*w.u2));

    // The retarget is structural: it shows up in the MRIB diff because the
    // upstream neighbor is part of the entry signature.
    const telemetry::MribDiff d = telemetry::diff(before, w.stack->capture_mrib());
    bool r_changed = false;
    for (const std::string& line : d.changed) {
        if (line.find("R ") == 0 || line.find("R (") == 0) r_changed = true;
    }
    for (const std::string& line : d.added) {
        if (line.find("R ") == 0 || line.find("R (") == 0) r_changed = true;
    }
    EXPECT_TRUE(r_changed) << d.to_text();
}

TEST(AssertTest, TransitionCountersRecordWinnerAndLoser) {
    AssertWorld w;
    w.net.run_for(600 * sim::kMillisecond);
    telemetry::Registry& reg = w.net.telemetry().registry();
    EXPECT_GE(reg.counter("pimlib_assert_transitions_total", {{"role", "winner"}})
                  .value(),
              1u);
    EXPECT_GE(reg.counter("pimlib_assert_transitions_total", {{"role", "loser"}})
                  .value(),
              1u);
}

TEST(AssertTest, LoserDropsAreClassifiedAsAssertLoser) {
    AssertWorld w;
    provenance::Recorder recorder(w.net.telemetry().registry(),
                                  provenance::RecorderConfig{});
    w.net.set_provenance(&recorder);
    w.net.run_for(1300 * sim::kMillisecond);
    // The winner's copies keep arriving on the loser's pruned LAN
    // interface; those drops carry the typed reason, not a generic one.
    EXPECT_NE(recorder.drop_summary().find("assert-loser"), std::string::npos)
        << recorder.drop_summary();
}

TEST(AssertTest, SeededMutationKeepsTheLoserForwarding) {
    AssertWorld w(/*mutate_loser_keeps_forwarding=*/true);
    w.net.run_for(1300 * sim::kMillisecond);
    // With the loser's prune suppressed, both upstreams keep forwarding and
    // the receiver sees systematic duplicates — including in steady state.
    std::set<std::uint64_t> late_seqs;
    std::size_t late_copies = 0;
    for (const auto& rec : w.rcv->received()) {
        if (rec.group != kGroup || rec.seq < 13) continue;
        late_seqs.insert(rec.seq);
        ++late_copies;
    }
    EXPECT_EQ(late_seqs.size(), 6u);
    EXPECT_GT(late_copies, late_seqs.size())
        << "mutation failed to produce steady-state duplicates";
}

} // namespace
} // namespace pimlib
