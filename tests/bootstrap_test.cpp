// Bootstrap subsystem tests: BSR election (priority, address tiebreak,
// takeover after the elected BSR dies), candidate-RP advertisement and
// expiry, domain-wide RP-set agreement, tree re-homing on RP-set change,
// and the reboot semantics of the bootstrap soft state.
#include <gtest/gtest.h>

#include "fault/fault_injector.hpp"
#include "pim/bootstrap/bootstrap.hpp"
#include "test_util.hpp"

namespace pimlib {
namespace {

using test::kGroup;

/// The bsr-failover checker scenario's shape, trimmed to what these tests
/// need: one member DR with a host, two candidate RPs, one backup
/// candidate BSR.
///
///        h1 — lan0 — M —1— R1 —— B
///                     \3   |    /
///                      \   |   /
///                       \  |  /
///                         R2
struct BsrWorld {
    topo::Network net;
    topo::Router* m = nullptr;
    topo::Router* r1 = nullptr;
    topo::Router* r2 = nullptr;
    topo::Router* b = nullptr;
    topo::Host* h1 = nullptr;
    std::unique_ptr<unicast::OracleRouting> routing;
    std::unique_ptr<scenario::PimSmStack> stack;
    fault::FaultInjector faults;

    explicit BsrWorld(std::uint8_t r1_bsr_priority = 20,
                      std::uint8_t b_bsr_priority = 10)
        : faults(net) {
        m = &net.add_router("M");
        r1 = &net.add_router("R1");
        r2 = &net.add_router("R2");
        b = &net.add_router("B");
        auto& lan0 = net.add_lan({m});
        h1 = &net.add_host("h1", lan0);
        net.add_link(*m, *r1, sim::kMillisecond, 1);
        net.add_link(*m, *r2, sim::kMillisecond, 3);
        net.add_link(*r1, *r2, sim::kMillisecond, 1);
        net.add_link(*b, *r1, sim::kMillisecond, 1);
        net.add_link(*b, *r2, sim::kMillisecond, 1);
        routing = std::make_unique<unicast::OracleRouting>(net);
        stack = std::make_unique<scenario::PimSmStack>(net, test::fast_config());
        stack->set_spt_policy(pim::SptPolicy::never());
        const net::Prefix all_groups{net::Ipv4Address{224, 0, 0, 0}, 4};
        stack->set_candidate_bsr(*r1, r1_bsr_priority);
        stack->set_candidate_bsr(*b, b_bsr_priority);
        stack->set_candidate_rp(*r1, all_groups, 20);
        stack->set_candidate_rp(*r2, all_groups, 10);
        stack->wire_faults(faults);
    }

    [[nodiscard]] std::vector<topo::Router*> routers() {
        return {m, r1, r2, b};
    }
};

TEST(BootstrapTest, ElectionConvergesOnHighestPriority) {
    BsrWorld w;
    w.net.run_for(300 * sim::kMillisecond);
    for (topo::Router* r : w.routers()) {
        EXPECT_EQ(w.stack->bootstrap_at(*r).elected_bsr(), w.r1->router_id())
            << r->name();
    }
    EXPECT_TRUE(w.stack->bootstrap_at(*w.r1).is_elected_bsr());
    EXPECT_FALSE(w.stack->bootstrap_at(*w.b).is_elected_bsr());
}

TEST(BootstrapTest, EqualPriorityTiebreaksOnHigherAddress) {
    BsrWorld w(/*r1_bsr_priority=*/10, /*b_bsr_priority=*/10);
    ASSERT_GT(w.b->router_id(), w.r1->router_id());
    w.net.run_for(300 * sim::kMillisecond);
    for (topo::Router* r : w.routers()) {
        EXPECT_EQ(w.stack->bootstrap_at(*r).elected_bsr(), w.b->router_id())
            << r->name();
    }
    EXPECT_TRUE(w.stack->bootstrap_at(*w.b).is_elected_bsr());
    EXPECT_FALSE(w.stack->bootstrap_at(*w.r1).is_elected_bsr());
}

TEST(BootstrapTest, RpSetAgreesDomainWideAndElectsByPriority) {
    BsrWorld w;
    // Two bootstrap intervals: candidates advertise to the BSR, the BSR
    // floods the assembled set.
    w.net.run_for(1300 * sim::kMillisecond);
    const std::vector<net::Ipv4Address> want{w.r1->router_id()};
    for (topo::Router* r : w.routers()) {
        pim::RpSet& set = w.stack->pim_at(*r).rp_set();
        EXPECT_EQ(set.rps_for(kGroup), want) << r->name();
        EXPECT_EQ(set.dynamic_rp_for(kGroup), w.r1->router_id()) << r->name();
        EXPECT_EQ(set.dynamic_entries().size(), 2u) << r->name();
    }
}

TEST(BootstrapTest, MemberJoinsTheLearnedRp) {
    BsrWorld w;
    w.net.simulator().schedule_at(100 * sim::kMillisecond, [&] {
        w.stack->host_agent(*w.h1).join(kGroup);
    });
    w.net.run_for(1 * sim::kSecond);
    auto* wc = w.stack->pim_at(*w.m).cache().find_wc(kGroup);
    ASSERT_NE(wc, nullptr);
    EXPECT_EQ(wc->source_or_rp(), w.r1->router_id());
}

TEST(BootstrapTest, BsrCrashTriggersTakeoverRepublishAndRehoming) {
    BsrWorld w;
    w.net.simulator().schedule_at(100 * sim::kMillisecond, [&] {
        w.stack->host_agent(*w.h1).join(kGroup);
    });
    w.net.simulator().schedule_at(500 * sim::kMillisecond,
                                  [&] { w.faults.crash_router(*w.r1); });
    // Crash + BSR timeout (1.5 s scaled) + a republish wave.
    w.net.run_for(3300 * sim::kMillisecond);

    EXPECT_TRUE(w.stack->bootstrap_at(*w.b).is_elected_bsr());
    const std::vector<net::Ipv4Address> want{w.r2->router_id()};
    for (topo::Router* r : {w.m, w.r2, w.b}) {
        EXPECT_EQ(w.stack->bootstrap_at(*r).elected_bsr(), w.b->router_id())
            << r->name();
        EXPECT_EQ(w.stack->pim_at(*r).rp_set().rps_for(kGroup), want) << r->name();
    }
    // The member's shared tree re-homed to the surviving candidate RP.
    auto* wc = w.stack->pim_at(*w.m).cache().find_wc(kGroup);
    ASSERT_NE(wc, nullptr);
    EXPECT_EQ(wc->source_or_rp(), w.r2->router_id());
    // The re-homing was driven by real RP-set replacements.
    EXPECT_GE(w.net.telemetry()
                  .registry()
                  .counter("pimlib_rp_set_changes_total", {})
                  .value(),
              2u);
}

TEST(BootstrapTest, CandidateRpExpiryShrinksTheFloodedSet) {
    BsrWorld w;
    // Crash the backup candidate RP (not the BSR): its advertisement stops
    // refreshing and must fall out of the flooded set after the 0.75 s
    // scaled holdtime plus a republish.
    w.net.simulator().schedule_at(500 * sim::kMillisecond,
                                  [&] { w.faults.crash_router(*w.r2); });
    w.net.run_for(2500 * sim::kMillisecond);
    for (topo::Router* r : {w.m, w.r1, w.b}) {
        pim::RpSet& set = w.stack->pim_at(*r).rp_set();
        ASSERT_EQ(set.dynamic_entries().size(), 1u) << r->name();
        EXPECT_EQ(set.dynamic_entries().front().rp, w.r1->router_id()) << r->name();
    }
}

TEST(BootstrapTest, RebootDropsTheViewAndThePeriodicFloodRestoresIt) {
    BsrWorld w;
    w.net.run_for(1300 * sim::kMillisecond);
    pim::BootstrapAgent& agent = w.stack->bootstrap_at(*w.m);
    ASSERT_EQ(agent.elected_bsr(), w.r1->router_id());
    agent.reboot();
    EXPECT_TRUE(agent.elected_bsr().is_unspecified());
    EXPECT_TRUE(agent.pim().rp_set().dynamic_entries().empty());
    // The next periodic origination (0.6 s scaled) re-teaches everything.
    w.net.run_for(700 * sim::kMillisecond);
    EXPECT_EQ(agent.elected_bsr(), w.r1->router_id());
    EXPECT_EQ(agent.pim().rp_set().dynamic_rp_for(kGroup), w.r1->router_id());
}

} // namespace
} // namespace pimlib
