// Flight-recorder and typed-drop-accounting tests: one scenario per
// DropReason asserting that (a) the labeled pimlib_forward_drops_total
// counter increments and (b) the recorded HopRecord carries the reason —
// plus the mtrace-style path attribution on the walkthrough pentagon,
// covering both the shared-tree and the post-switchover SPT phase.
#include <gtest/gtest.h>

#include "fault/fault_injector.hpp"
#include "mcast/forwarding_cache.hpp"
#include "provenance/provenance.hpp"
#include "test_util.hpp"
#include "topo/segment.hpp"

namespace pimlib::test {
namespace {

using provenance::DropReason;
using provenance::EntryKind;
using provenance::Recorder;

std::uint64_t drops_counter(telemetry::Registry& reg, DropReason reason) {
    return reg
        .counter("pimlib_forward_drops_total",
                 {{"reason", provenance::drop_reason_label(reason)}})
        .value();
}

/// The dump names the reason on a per-record basis; asserting on the JSON
/// checks the record itself, not just the aggregate counter.
bool dump_names_reason(const Recorder& rec, DropReason reason) {
    const std::string needle =
        std::string("\"drop\":\"") + provenance::drop_reason_label(reason) + "\"";
    return rec.dump_json().find(needle) != std::string::npos;
}

// --- data-plane drops on a one-router topology ----------------------------

class DropRecorderTest : public ::testing::Test, public mcast::DataPlane::Delegate {
protected:
    DropRecorderTest() : recorder(net.telemetry().registry()) {
        r = &net.add_router("r");
        lan_in = &net.add_lan({r});  // ifindex 0
        lan_out = &net.add_lan({r}); // ifindex 1
        source = &net.add_host("src", *lan_in);
        member = &net.add_host("m", *lan_out);
        member->join_group(kGroup);
        net.set_provenance(&recorder);
        plane = std::make_unique<mcast::DataPlane>(*r, cache);
        plane->set_delegate(this);
    }

    void send_from_source() {
        source->send_data(kGroup);
        net.run_for(10 * sim::kMillisecond);
    }

    [[nodiscard]] telemetry::Registry& registry() {
        return net.telemetry().registry();
    }

    topo::Network net;
    Recorder recorder;
    topo::Router* r;
    topo::Segment* lan_in;
    topo::Segment* lan_out;
    topo::Host* source;
    topo::Host* member;
    mcast::ForwardingCache cache;
    std::unique_ptr<mcast::DataPlane> plane;
};

TEST_F(DropRecorderTest, RpfFailIsCountedAndRecorded) {
    auto& sg = cache.ensure_sg(source->address(), kGroup);
    sg.set_iif(1); // wrong on purpose: data arrives on 0
    sg.set_spt_bit(true);
    sg.pin_oif(1);
    send_from_source();
    EXPECT_EQ(recorder.drop_count(DropReason::kRpfFail), 1u);
    EXPECT_EQ(drops_counter(registry(), DropReason::kRpfFail), 1u);
    EXPECT_TRUE(dump_names_reason(recorder, DropReason::kRpfFail));
    EXPECT_EQ(member->received_count(kGroup), 0u);
}

TEST_F(DropRecorderTest, NegCacheIsCountedAndRecorded) {
    // An RP-bit entry whose every oif has been pruned away discards by
    // design (§3.3): the drop must read "neg-cache", not "no-oif".
    auto& wc = cache.ensure_wc(net::Ipv4Address(192, 168, 0, 9), kGroup);
    wc.set_iif(0);
    send_from_source();
    EXPECT_EQ(recorder.drop_count(DropReason::kNegCache), 1u);
    EXPECT_EQ(drops_counter(registry(), DropReason::kNegCache), 1u);
    EXPECT_TRUE(dump_names_reason(recorder, DropReason::kNegCache));
    EXPECT_EQ(recorder.drop_count(DropReason::kNoOif), 0u);
}

TEST_F(DropRecorderTest, NoOifIsCountedAndRecorded) {
    auto& sg = cache.ensure_sg(source->address(), kGroup);
    sg.set_iif(0);
    sg.set_spt_bit(true); // no live oifs, not an RP-bit entry
    send_from_source();
    EXPECT_EQ(recorder.drop_count(DropReason::kNoOif), 1u);
    EXPECT_EQ(drops_counter(registry(), DropReason::kNoOif), 1u);
    EXPECT_TRUE(dump_names_reason(recorder, DropReason::kNoOif));
    EXPECT_EQ(recorder.drop_count(DropReason::kNegCache), 0u);
}

TEST_F(DropRecorderTest, TtlExpiryIsCountedAndRecorded) {
    auto& sg = cache.ensure_sg(source->address(), kGroup);
    sg.set_iif(0);
    sg.set_spt_bit(true);
    sg.pin_oif(1);
    net::Packet packet;
    packet.src = source->address();
    packet.dst = kGroup.address();
    packet.ttl = 1; // the router would decrement to zero: not forwardable
    packet.seq = 7;
    packet.pid = provenance::packet_id(packet.src, packet.dst, packet.seq);
    plane->on_multicast_data(0, packet);
    EXPECT_EQ(recorder.drop_count(DropReason::kTtl), 1u);
    EXPECT_EQ(drops_counter(registry(), DropReason::kTtl), 1u);
    EXPECT_TRUE(dump_names_reason(recorder, DropReason::kTtl));
}

TEST_F(DropRecorderTest, SegmentLossIsCountedAndRecorded) {
    fault::FaultInjector faults(net);
    faults.set_loss(*lan_in, 1.0); // every frame on the source LAN vanishes
    send_from_source();
    EXPECT_GE(recorder.drop_count(DropReason::kSegmentLoss), 1u);
    EXPECT_GE(drops_counter(registry(), DropReason::kSegmentLoss), 1u);
    EXPECT_TRUE(dump_names_reason(recorder, DropReason::kSegmentLoss));
    EXPECT_EQ(member->received_count(kGroup), 0u);
}

// --- protocol-level drops (PIM-SM classification) -------------------------

TEST(ProvenanceProtocolDrops, NoStateWhenGroupHasNoRpMapping) {
    Fig3Topology topo;
    Recorder recorder(topo.net.telemetry().registry());
    topo.net.set_provenance(&recorder);
    scenario::PimSmStack stack(topo.net, fast_config());
    // No set_rp: the source's DR can neither register nor build state.
    topo.net.run_for(500 * sim::kMillisecond);
    topo.source->send_data(kGroup);
    topo.net.run_for(50 * sim::kMillisecond);
    EXPECT_GE(recorder.drop_count(DropReason::kNoState), 1u);
    EXPECT_GE(drops_counter(topo.net.telemetry().registry(), DropReason::kNoState),
              1u);
    EXPECT_TRUE(dump_names_reason(recorder, DropReason::kNoState));
}

TEST(ProvenanceProtocolDrops, AssertLoserOnSharedSourceLan) {
    // Two routers on the source LAN, neither of them on the shared tree:
    // the non-DR one must cede origination to the DR and account its
    // discard as "assert-loser" (the '94 architecture's duplicate
    // suppression), not as a generic no-state drop.
    topo::Network net;
    topo::Router& a = net.add_router("A");
    topo::Router& b = net.add_router("B");
    topo::Router& c = net.add_router("C"); // RP, off the source LAN
    topo::Router& d = net.add_router("D");
    topo::Router& x = net.add_router("X"); // second router on the source LAN
    auto& lan0 = net.add_lan({&a});
    topo::Host& receiver = net.add_host("receiver", lan0);
    net.add_link(a, b);
    net.add_link(b, c);
    net.add_link(b, d);
    auto& lan1 = net.add_lan({&d, &x});
    topo::Host& source = net.add_host("source", lan1);
    unicast::OracleRouting routing(net);
    Recorder recorder(net.telemetry().registry());
    net.set_provenance(&recorder);
    scenario::PimSmStack stack(net, fast_config());
    stack.set_rp(kGroup, {c.router_id()});
    net.run_for(800 * sim::kMillisecond); // hellos elect the LAN's DR
    stack.host_agent(receiver).join(kGroup);
    net.run_for(200 * sim::kMillisecond);
    source.send_stream(kGroup, 5, 10 * sim::kMillisecond);
    net.run_for(200 * sim::kMillisecond);
    EXPECT_GE(recorder.drop_count(DropReason::kAssertLoser), 1u);
    EXPECT_GE(drops_counter(net.telemetry().registry(), DropReason::kAssertLoser),
              1u);
    EXPECT_TRUE(dump_names_reason(recorder, DropReason::kAssertLoser));
    EXPECT_GE(receiver.received_count(kGroup), 1u); // the DR still delivers
}

TEST(ProvenanceProtocolDrops, NoRouteWhenRegisterTargetUnreachable) {
    Fig3Topology topo;
    Recorder recorder(topo.net.telemetry().registry());
    topo.net.set_provenance(&recorder);
    scenario::PimSmStack stack(topo.net, fast_config());
    stack.set_rp(kGroup, {topo.c->router_id()});
    fault::FaultInjector faults(topo.net);
    stack.wire_faults(faults);
    topo.net.run_for(500 * sim::kMillisecond);
    faults.crash_router(*topo.c); // the RP vanishes; no alternate exists
    topo.net.run_for(100 * sim::kMillisecond);
    topo.source->send_data(kGroup);
    topo.net.run_for(100 * sim::kMillisecond);
    EXPECT_GE(recorder.drop_count(DropReason::kNoRoute), 1u);
    EXPECT_GE(drops_counter(topo.net.telemetry().registry(), DropReason::kNoRoute),
              1u);
    EXPECT_TRUE(dump_names_reason(recorder, DropReason::kNoRoute));
}

// --- mtrace path attribution on the walkthrough pentagon ------------------

/// The five-router pentagon of check/scenario.cpp's walkthrough: receiver
/// behind A, source behind B, RP at C, viewer behind D. A's unicast route
/// to the source runs A-E-B (metric 2), so the immediate SPT switchover
/// moves the receiver's delivery path off the RP.
struct Pentagon {
    topo::Network net;
    topo::Router* a;
    topo::Router* b;
    topo::Router* c;
    topo::Router* d;
    topo::Router* e;
    topo::Host* receiver;
    topo::Host* source;
    topo::Host* viewer;
    std::unique_ptr<unicast::OracleRouting> routing;

    Pentagon() {
        constexpr sim::Time kMs = sim::kMillisecond;
        a = &net.add_router("A");
        b = &net.add_router("B");
        c = &net.add_router("C");
        d = &net.add_router("D");
        e = &net.add_router("E");
        net.add_link(*a, *e, 1 * kMs, 1);
        net.add_link(*e, *b, 20 * kMs, 1);
        net.add_link(*a, *c, 1 * kMs, 1);
        net.add_link(*b, *c, 1 * kMs, 2);
        net.add_link(*c, *d, 1 * kMs, 1);
        auto& lan0 = net.add_lan({a});
        auto& lan1 = net.add_lan({b});
        auto& lan2 = net.add_lan({d});
        receiver = &net.add_host("receiver", lan0);
        source = &net.add_host("source", lan1);
        viewer = &net.add_host("viewer", lan2);
        routing = std::make_unique<unicast::OracleRouting>(net);
    }
};

std::vector<std::string> hop_nodes(const Recorder::TraceResult& result) {
    std::vector<std::string> nodes;
    for (const auto& hop : result.hops) nodes.push_back(hop.node_name);
    return nodes;
}

bool ordered_subpath(const std::vector<std::string>& nodes,
                     const std::vector<std::string>& expect) {
    std::size_t at = 0;
    for (const std::string& want : expect) {
        while (at < nodes.size() && nodes[at] != want) ++at;
        if (at == nodes.size()) return false;
        ++at;
    }
    return true;
}

TEST(ProvenancePentagon, TraceShowsSharedTreeThenSptPath) {
    constexpr sim::Time kMs = sim::kMillisecond;
    Pentagon topo;
    Recorder recorder(topo.net.telemetry().registry());
    topo.net.set_provenance(&recorder);
    scenario::PimSmStack stack(topo.net, fast_config());
    stack.set_rp(kGroup, {topo.c->router_id()});
    stack.set_spt_policy(pim::SptPolicy::immediate());

    topo.net.simulator().schedule_at(
        120 * kMs, [&] { stack.host_agent(*topo.receiver).join(kGroup); });
    topo.net.simulator().schedule_at(
        130 * kMs, [&] { stack.host_agent(*topo.viewer).join(kGroup); });
    topo.source->send_stream(kGroup, 30, 10 * kMs, 250 * kMs);

    // Phase 1 — the first packet travels the shared tree while the
    // triggered (S,G) joins are still propagating: register at the source
    // DR, decapsulation at the RP, (*,G) down to the receiver.
    topo.net.run_for(259 * kMs);
    const Recorder::TraceResult shared =
        recorder.trace(topo.source->address(), kGroup.address(), "receiver");
    ASSERT_TRUE(shared.found);
    EXPECT_EQ(shared.seq, 1u);
    EXPECT_TRUE(ordered_subpath(hop_nodes(shared),
                                {"source", "B", "C", "A", "receiver"}))
        << recorder.format_trace(shared);
    bool saw_register = false;
    bool saw_wildcard_at_rp = false;
    for (const auto& hop : shared.hops) {
        if (hop.node_name == "B" && hop.rec.kind == EntryKind::kRegister) {
            saw_register = true;
        }
        if (hop.node_name == "C" && hop.rec.kind == EntryKind::kWildcard) {
            saw_wildcard_at_rp = true;
        }
    }
    EXPECT_TRUE(saw_register) << recorder.format_trace(shared);
    EXPECT_TRUE(saw_wildcard_at_rp) << recorder.format_trace(shared);

    // Phase 2 — steady state on the SPT: the receiver's path now runs
    // source → B → E → A, native (S,G) forwarding with the SPT bit set,
    // and no register hop anywhere.
    topo.net.run_for(1241 * kMs); // to t = 1.5 s
    const Recorder::TraceResult spt =
        recorder.trace(topo.source->address(), kGroup.address(), "receiver");
    ASSERT_TRUE(spt.found);
    EXPECT_EQ(spt.seq, 30u);
    EXPECT_TRUE(ordered_subpath(hop_nodes(spt),
                                {"source", "B", "E", "A", "receiver"}))
        << recorder.format_trace(spt);
    for (const auto& hop : spt.hops) {
        EXPECT_NE(hop.rec.kind, EntryKind::kRegister)
            << recorder.format_trace(spt);
        if (hop.node_name == "E" || hop.node_name == "A") {
            EXPECT_EQ(hop.rec.kind, EntryKind::kSg);
            EXPECT_TRUE(hop.rec.spt_bit);
        }
    }
    // Per-hop latency attribution: the E hop sits behind the 20 ms link.
    for (std::size_t i = 1; i < spt.hops.size(); ++i) {
        if (spt.hops[i].node_name == "E") {
            EXPECT_GE(spt.hops[i].latency, 15 * kMs);
        }
    }
}

TEST(ProvenancePentagon, DropSummaryNamesRouterAndReason) {
    // The SPT switchover's transition window drops straggler shared-tree
    // copies at A with an rpf-fail: the one-line summary must name both.
    Pentagon topo;
    Recorder recorder(topo.net.telemetry().registry());
    topo.net.set_provenance(&recorder);
    scenario::PimSmStack stack(topo.net, fast_config());
    stack.set_rp(kGroup, {topo.c->router_id()});
    stack.set_spt_policy(pim::SptPolicy::immediate());
    topo.net.simulator().schedule_at(120 * sim::kMillisecond, [&] {
        stack.host_agent(*topo.receiver).join(kGroup);
    });
    topo.net.simulator().schedule_at(130 * sim::kMillisecond, [&] {
        stack.host_agent(*topo.viewer).join(kGroup);
    });
    topo.source->send_stream(kGroup, 30, 10 * sim::kMillisecond,
                             250 * sim::kMillisecond);
    topo.net.run_for(1500 * sim::kMillisecond);
    ASSERT_GT(recorder.drop_count(DropReason::kRpfFail), 0u);
    const std::string summary = recorder.drop_summary();
    EXPECT_NE(summary.find("A"), std::string::npos) << summary;
    EXPECT_NE(summary.find("rpf-fail"), std::string::npos) << summary;
}

// --- recorder mechanics ---------------------------------------------------

TEST(ProvenanceRecorder, RingStaysBounded) {
    telemetry::Registry reg;
    Recorder rec(reg, {.ring_capacity = 4});
    rec.register_node(0, "r", false);
    for (std::uint64_t i = 0; i < 100; ++i) {
        provenance::HopRecord hop;
        hop.pid = 1000 + i;
        hop.node = 0;
        hop.at = static_cast<sim::Time>(i);
        rec.append(hop);
    }
    EXPECT_EQ(rec.total_records(), 100u);
    // Only the 4 newest survive.
    EXPECT_TRUE(rec.records_for(1099).size() == 1 &&
                rec.records_for(1095).empty());
}

TEST(ProvenanceRecorder, DisabledRecorderAppendsNothing) {
    telemetry::Registry reg;
    Recorder rec(reg);
    rec.set_enabled(false);
    provenance::HopRecord hop;
    hop.pid = 1;
    hop.node = 0;
    hop.drop = DropReason::kRpfFail;
    rec.append(hop);
    EXPECT_EQ(rec.total_records(), 0u);
    EXPECT_EQ(rec.drop_count(DropReason::kRpfFail), 0u);
}

TEST(ProvenanceRecorder, PacketIdIsDeterministicAndNeverZero) {
    const net::Ipv4Address s(10, 0, 0, 1);
    const net::Ipv4Address g(224, 1, 1, 1);
    EXPECT_EQ(provenance::packet_id(s, g, 1), provenance::packet_id(s, g, 1));
    EXPECT_NE(provenance::packet_id(s, g, 1), provenance::packet_id(s, g, 2));
    for (std::uint64_t seq = 0; seq < 1000; ++seq) {
        EXPECT_NE(provenance::packet_id(s, g, seq), 0u);
    }
}

} // namespace
} // namespace pimlib::test
