// MOSPF baseline tests: membership-LSA codec and flooding, on-demand
// source-rooted SPT computation, pruned delivery, membership-change
// recomputation — and the overhead the paper critiques: every router learns
// every group (§1.1).
#include <gtest/gtest.h>

#include "mospf/mospf.hpp"
#include "test_util.hpp"
#include "topo/segment.hpp"

namespace pimlib::test {
namespace {

TEST(MospfMessages, LsaCodecRoundTrip) {
    mospf::MembershipLsa lsa;
    lsa.origin = net::Ipv4Address(192, 168, 0, 1);
    lsa.seq = 5;
    lsa.groups = {kGroup.address(), net::Ipv4Address(224, 2, 2, 2)};
    auto decoded = mospf::MembershipLsa::decode(lsa.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->origin, lsa.origin);
    EXPECT_EQ(decoded->seq, lsa.seq);
    EXPECT_EQ(decoded->groups, lsa.groups);
    const auto bytes = lsa.encode();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(mospf::MembershipLsa::decode({bytes.data(), len}).has_value());
    }
}

// source—LAN—R1—R2—{R3(member LAN), R4(empty LAN)}
struct MospfFixture : public ::testing::Test {
    topo::Network net;
    topo::Router* r1;
    topo::Router* r2;
    topo::Router* r3;
    topo::Router* r4;
    topo::Host* source;
    topo::Host* member;
    topo::Segment* empty_lan;
    std::unique_ptr<unicast::OracleRouting> routing;
    std::unique_ptr<scenario::MospfStack> stack;

    MospfFixture() {
        r1 = &net.add_router("R1");
        r2 = &net.add_router("R2");
        r3 = &net.add_router("R3");
        r4 = &net.add_router("R4");
        auto& src_lan = net.add_lan({r1});
        source = &net.add_host("source", src_lan);
        net.add_link(*r1, *r2);
        net.add_link(*r2, *r3);
        net.add_link(*r2, *r4);
        auto& member_lan = net.add_lan({r3});
        member = &net.add_host("member", member_lan);
        empty_lan = &net.add_lan({r4});
        routing = std::make_unique<unicast::OracleRouting>(net);
        stack = std::make_unique<scenario::MospfStack>(net, fast_config());
        net.run_for(100 * sim::kMillisecond);
    }
};

TEST_F(MospfFixture, MembershipFloodsToEveryRouter) {
    stack->host_agent(*member).join(kGroup);
    net.run_for(200 * sim::kMillisecond);
    // The paper's critique: "every router must receive and store membership
    // information for every group in the domain" — even off-tree R4.
    EXPECT_TRUE(stack->mospf_at(*r1).member_routers(kGroup).contains(r3->router_id()));
    EXPECT_TRUE(stack->mospf_at(*r4).member_routers(kGroup).contains(r3->router_id()));
}

TEST_F(MospfFixture, DataFollowsPrunedSptOnly) {
    stack->host_agent(*member).join(kGroup);
    net.run_for(200 * sim::kMillisecond);
    source->send_stream(kGroup, 3, 20 * sim::kMillisecond);
    net.run_for(300 * sim::kMillisecond);
    EXPECT_EQ(member->received_count(kGroup), 3u);
    EXPECT_EQ(member->duplicate_count(), 0u);
    // Dijkstra ran on demand when the first packet arrived.
    EXPECT_GE(stack->mospf_at(*r1).spf_runs(), 1u);
    // The empty branch never carries data (computed tree is pruned, unlike
    // DVMRP's broadcast).
    EXPECT_EQ(net.stats().data_packets_on(empty_lan->id()), 0u);
    const auto* link_r2_r4 = net.find_link(*r2, *r4);
    EXPECT_EQ(net.stats().data_packets_on(link_r2_r4->id()), 0u);
}

TEST_F(MospfFixture, MembershipChangeRecomputesTree) {
    stack->host_agent(*member).join(kGroup);
    net.run_for(200 * sim::kMillisecond);
    source->send_data(kGroup);
    net.run_for(200 * sim::kMillisecond);
    ASSERT_EQ(member->received_count(kGroup), 1u);

    // A member appears behind R4: LSAs flood, cached trees are invalidated,
    // and the next packet reaches both members.
    auto& late = net.add_host("late", *empty_lan);
    igmp::HostAgent agent(late, fast_config().host);
    agent.join(kGroup);
    net.run_for(300 * sim::kMillisecond);
    source->send_data(kGroup);
    net.run_for(200 * sim::kMillisecond);
    EXPECT_EQ(member->received_count(kGroup), 2u);
    EXPECT_EQ(late.received_count(kGroup), 1u);

    // And when it leaves, the branch is dropped again.
    agent.leave(kGroup);
    net.run_for(2 * sim::kSecond);
    net.stats().reset_data_counters();
    source->send_data(kGroup);
    net.run_for(200 * sim::kMillisecond);
    EXPECT_EQ(net.stats().data_packets_on(empty_lan->id()), 0u);
}

TEST_F(MospfFixture, NoMembersMeansNoForwarding) {
    source->send_stream(kGroup, 3, 20 * sim::kMillisecond);
    net.run_for(300 * sim::kMillisecond);
    // Data dies at the first-hop router; nothing crosses the backbone.
    const auto* link_r1_r2 = net.find_link(*r1, *r2);
    EXPECT_EQ(net.stats().data_packets_on(link_r1_r2->id()), 0u);
}

} // namespace
} // namespace pimlib::test
