// Unit tests for the pure invariant oracles in check/invariants.{hpp,cpp}.
// Every rule is exercised against hand-built violating (and boundary-clean)
// fixtures — no simulation run required — so an oracle regression shows up
// here directly instead of as a mysteriously quiet model-checking run.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "telemetry/snapshot.hpp"
#include "test_util.hpp"

namespace pimlib::test {
namespace {

using check::CrossingMap;
using check::EntryView;
using check::Violation;

const std::vector<std::string> kSegments = {"lan0", "A-B", "B-C"};

TEST(LoopOracle, TtlDropsAreALoop) {
    const auto v = check::loop_violations({}, kSegments, 2);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].oracle, "forwarding-loop");
    EXPECT_NE(v[0].detail.find("TTL exhaustion"), std::string::npos);
}

TEST(LoopOracle, CrossingBoundIsInclusive) {
    CrossingMap at_bound{{{7, 1}, check::kCrossingBound}};
    EXPECT_TRUE(check::loop_violations(at_bound, kSegments, 0).empty());

    CrossingMap past_bound{{{7, 1}, check::kCrossingBound + 1}};
    const auto v = check::loop_violations(past_bound, kSegments, 0);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].oracle, "forwarding-loop");
    // The violation names the segment, not its numeric id.
    EXPECT_NE(v[0].detail.find("A-B"), std::string::npos);
}

TEST(LoopOracle, ReportsAtMostThreeCirclingSequences) {
    CrossingMap crossings;
    for (std::uint64_t seq = 0; seq < 10; ++seq) {
        crossings[{seq, 0}] = check::kCrossingBound + 3;
    }
    EXPECT_EQ(check::loop_violations(crossings, kSegments, 0).size(), 3u);
}

TEST(LoopOracle, UnknownSegmentIdFallsBackToNumber) {
    CrossingMap crossings{{{1, 42}, check::kCrossingBound + 1}};
    const auto v = check::loop_violations(crossings, kSegments, 0);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].detail.find("segment 42"), std::string::npos);
}

TEST(DuplicateBoundOracle, BoundIsInclusive) {
    EXPECT_TRUE(
        check::duplicate_bound_violations("recv", check::kDuplicateBound).empty());
    const auto v =
        check::duplicate_bound_violations("recv", check::kDuplicateBound + 1);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].oracle, "duplicate-bound");
    EXPECT_NE(v[0].detail.find("recv"), std::string::npos);
}

TEST(DeliveryOracle, ListsEveryMissingSequence) {
    const std::set<std::uint64_t> got = {1, 2, 5};
    const auto v = check::delivery_violations("recv", got, 1, 6);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].oracle, "delivery");
    EXPECT_NE(v[0].detail.find("3,4,6"), std::string::npos);
}

TEST(DeliveryOracle, CompleteWindowIsClean) {
    const std::set<std::uint64_t> got = {1, 2, 3};
    EXPECT_TRUE(check::delivery_violations("recv", got, 1, 3).empty());
}

TEST(SteadyDuplicateOracle, SingleCopyCleanDoubleCopyViolates) {
    EXPECT_TRUE(
        check::steady_duplicate_violations("recv", {{10, 1}, {11, 1}}).empty());
    const auto v = check::steady_duplicate_violations("recv", {{10, 1}, {11, 2}});
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].oracle, "steady-duplicate");
    EXPECT_NE(v[0].detail.find("seq 11"), std::string::npos);
}

TEST(SteadyRedundancyOracle, AggregatesAcrossSegments) {
    // seq 5 crosses lan0 once and A-B once: total 2.
    CrossingMap crossings{{{5, 0}, 1}, {{5, 1}, 1}};
    EXPECT_TRUE(
        check::steady_redundancy_violations(crossings, kSegments, 5, 5, 2).empty());

    const auto v =
        check::steady_redundancy_violations(crossings, kSegments, 5, 5, 3);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].oracle, "steady-redundancy");
    EXPECT_NE(v[0].detail.find("crossed 2 segment(s), want 3"), std::string::npos);
}

TEST(SteadyRedundancyOracle, MissingSequenceCountsAsZero) {
    const auto v = check::steady_redundancy_violations({}, kSegments, 1, 2, 1);
    EXPECT_EQ(v.size(), 2u); // both seqs crossed 0 segments
}

TEST(AssertWinnerOracle, ExactlyOneForwarderRequired) {
    const int lan = 2;
    CrossingMap one{{{3, lan}, 1}};
    EXPECT_TRUE(check::assert_winner_violations(one, lan, 3, 3).empty());

    CrossingMap dup{{{3, lan}, 2}};
    auto v = check::assert_winner_violations(dup, lan, 3, 3);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].oracle, "assert-winner");

    // A sequence that never crossed the LAN at all is equally a violation
    // (the election blackholed the LAN instead of leaving one forwarder).
    v = check::assert_winner_violations({}, lan, 3, 3);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].detail.find("crossed dlan 0 times"), std::string::npos);
}

TEST(RpAgreementOracle, EmptyDerivationIsStale) {
    std::map<std::string, std::vector<net::Ipv4Address>> derived;
    derived["M"] = {};
    derived["N"] = {net::Ipv4Address(10, 0, 0, 3)};
    const auto v = check::rp_agreement_violations(derived, "224.9.9.9");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].oracle, "rp-set-agreement");
    EXPECT_NE(v[0].detail.find("M derives no RP"), std::string::npos);
}

TEST(RpAgreementOracle, DisagreementNamesBothMappings) {
    std::map<std::string, std::vector<net::Ipv4Address>> derived;
    derived["M"] = {net::Ipv4Address(10, 0, 0, 3)};
    derived["N"] = {net::Ipv4Address(10, 0, 0, 7)};
    const auto v = check::rp_agreement_violations(derived, "224.9.9.9");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].detail.find("10.0.0.7"), std::string::npos);
    EXPECT_NE(v[0].detail.find("10.0.0.3"), std::string::npos);
}

TEST(RpAgreementOracle, UnanimousNonEmptySetIsClean) {
    std::map<std::string, std::vector<net::Ipv4Address>> derived;
    derived["M"] = {net::Ipv4Address(10, 0, 0, 3)};
    derived["N"] = {net::Ipv4Address(10, 0, 0, 3)};
    EXPECT_TRUE(check::rp_agreement_violations(derived, "224.9.9.9").empty());
}

telemetry::MribSnapshot snapshot_with(const std::string& router,
                                      const std::string& rp, bool wildcard) {
    telemetry::MribSnapshot snap;
    telemetry::RouterMrib mrib;
    mrib.router = router;
    telemetry::EntrySnapshot entry;
    entry.source_or_rp = rp;
    entry.group = "224.9.9.9";
    entry.wildcard = wildcard;
    mrib.entries.push_back(entry);
    snap.routers.push_back(mrib);
    return snap;
}

TEST(RehomingOracle, MissingWildcardIsABlackhole) {
    // The member router only holds an (S,G): no (*,G) at the deadline.
    const auto snap = snapshot_with("M", "10.0.0.9", /*wildcard=*/false);
    const auto v =
        check::rehoming_violations("rp-failover", snap, {"M"}, "10.0.0.3", "");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].oracle, "rp-failover");
    EXPECT_NE(v[0].detail.find("no (*,G) at the failover deadline"),
              std::string::npos);
}

TEST(RehomingOracle, WrongRootIsAFailedFailover) {
    const auto snap = snapshot_with("M", "10.0.0.9", /*wildcard=*/true);
    const auto v = check::rehoming_violations("bsr-rp-rehoming", snap, {"M"},
                                              "10.0.0.3", " (primary crashed)");
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].detail.find("still rooted at 10.0.0.9"), std::string::npos);
    EXPECT_NE(v[0].detail.find("(primary crashed)"), std::string::npos);
}

TEST(RehomingOracle, NonMembersAndCorrectRootsAreClean) {
    // "B" is not in the member list, so its wrong-rooted entry is ignored.
    auto snap = snapshot_with("B", "10.0.0.9", /*wildcard=*/true);
    EXPECT_TRUE(
        check::rehoming_violations("rp-failover", snap, {"M"}, "10.0.0.3", "")
            .empty());

    snap = snapshot_with("M", "10.0.0.3", /*wildcard=*/true);
    EXPECT_TRUE(
        check::rehoming_violations("rp-failover", snap, {"M"}, "10.0.0.3", "")
            .empty());
}

// --- entry_iif_problems: needs a real router with unicast RPF state. ---

class EntryIifTest : public ::testing::Test {
protected:
    Fig3Topology topo_;
};

TEST_F(EntryIifTest, IifInOwnOifListIsFlagged) {
    EntryView entry;
    entry.iif = 0;
    entry.oifs = {0, 1};
    const auto problems = check::entry_iif_problems(*topo_.a, entry, nullptr);
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("also appears in its own oif list"),
              std::string::npos);
}

TEST_F(EntryIifTest, IifMustFollowUnicastRpf) {
    // A's RPF interface toward the RP (C) is the A-B link.
    const int toward_rp = topo_.ifindex_toward(*topo_.a, *topo_.b);
    EntryView entry;
    entry.wildcard = true;
    entry.root = topo_.c->router_id();
    entry.root_known = true;
    entry.iif = toward_rp;
    EXPECT_TRUE(check::entry_iif_problems(*topo_.a, entry, nullptr).empty());

    entry.iif = toward_rp + 1; // any other interface disagrees with RPF
    const auto problems = check::entry_iif_problems(*topo_.a, entry, nullptr);
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("disagrees with unicast RPF interface"),
              std::string::npos);
}

TEST_F(EntryIifTest, WildcardAtItsOwnRpWantsNoIif) {
    EntryView entry;
    entry.wildcard = true;
    entry.root = topo_.c->router_id(); // C is the RP itself
    entry.root_known = true;
    entry.iif = 0;
    const auto problems = check::entry_iif_problems(*topo_.c, entry, nullptr);
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("want -1"), std::string::npos);

    entry.iif = -1;
    EXPECT_TRUE(check::entry_iif_problems(*topo_.c, entry, nullptr).empty());
}

TEST_F(EntryIifTest, RpBitNegativeCacheMustShadowWildcard) {
    EntryView rp_bit;
    rp_bit.rp_bit = true;
    rp_bit.root = topo_.source->interfaces().front().address;
    rp_bit.root_known = true;
    rp_bit.iif = 1;

    // No (*,G) shadow at all: the negative cache outlived its parent.
    auto problems = check::entry_iif_problems(*topo_.a, rp_bit, nullptr);
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("outlives its (*,G)"), std::string::npos);

    // Shadow present but on a different iif (fn13: they must share it).
    EntryView shadow;
    shadow.wildcard = true;
    shadow.iif = 0;
    problems = check::entry_iif_problems(*topo_.a, rp_bit, &shadow);
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("!= (*,G) iif"), std::string::npos);

    shadow.iif = rp_bit.iif;
    EXPECT_TRUE(check::entry_iif_problems(*topo_.a, rp_bit, &shadow).empty());
}

TEST_F(EntryIifTest, UnknownRootSkipsRpfCheck) {
    EntryView entry;
    entry.iif = 3; // nonsense, but root_known=false disarms the RPF rule
    EXPECT_TRUE(check::entry_iif_problems(*topo_.a, entry, nullptr).empty());
}

} // namespace
} // namespace pimlib::test
