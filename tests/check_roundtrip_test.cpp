// Counterexample round-trip tests: every artifact pimcheck emits must be
// actionable. The replay spec embedded in an emitted script's header is
// parsed back out and re-run in-process (same violation must fire), and
// the script itself is fed through the real pimsim parser (compiled in via
// PIMSIM_NO_MAIN) to prove the emitted text is a loadable scenario.
#define PIMSIM_NO_MAIN
#include "pimsim.cpp" // examples/ is on this test's include path

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>

#include "check/backward.hpp"
#include "check/explorer.hpp"

namespace {

using pimlib::check::ChoiceSet;
using pimlib::check::Counterexample;
using pimlib::check::RunConfig;
using pimlib::check::RunResult;
using pimlib::check::Violation;

/// Parsed form of a counterexample script's header comments.
struct ReplaySpec {
    std::string scenario;
    std::string mutation;
    ChoiceSet choices; // empty when the baseline branch already fails
};

std::string word_after(const std::string& text, const std::string& flag,
                       std::size_t from = 0) {
    const std::size_t at = text.find(flag, from);
    if (at == std::string::npos) return {};
    std::size_t begin = at + flag.size();
    std::size_t end = begin;
    while (end < text.size() && text[end] != ' ' && text[end] != '\n' &&
           text[end] != ')') {
        ++end;
    }
    return text.substr(begin, end - begin);
}

std::optional<ReplaySpec> parse_header(const std::string& script) {
    ReplaySpec spec;
    spec.scenario = word_after(script, "-- scenario ");
    if (spec.scenario.empty()) return std::nullopt;
    spec.mutation = word_after(script, " --mutate ");
    const std::string replay = word_after(script, " --replay ");
    if (!replay.empty()) {
        const auto parsed = pimlib::check::parse_choices(replay);
        if (!parsed.has_value()) return std::nullopt;
        spec.choices = *parsed;
    }
    return spec;
}

std::set<std::string> oracle_set(const std::vector<Violation>& violations) {
    std::set<std::string> out;
    for (const Violation& v : violations) out.insert(v.oracle);
    return out;
}

/// Re-runs the spec extracted from `ce.script` and checks the same oracle
/// family fires again.
void expect_round_trip(const Counterexample& ce) {
    const auto spec = parse_header(ce.script);
    ASSERT_TRUE(spec.has_value()) << ce.script.substr(0, 200);
    RunConfig cfg;
    cfg.choices = spec->choices;
    cfg.mutation = spec->mutation;
    const RunResult replayed =
        pimlib::check::run_scenario(spec->scenario, cfg);
    EXPECT_FALSE(replayed.violations.empty())
        << "replay spec reproduced nothing: " << ce.script.substr(0, 300);
    EXPECT_EQ(oracle_set(replayed.violations), oracle_set(ce.violations));
}

TEST(CounterexampleRoundTrip, ForwardBaselineVisibleMutation) {
    pimlib::check::ExploreOptions options;
    options.mutation = "assert-loser-keeps-forwarding";
    options.scenario = pimlib::check::scenario_for_mutation(options.mutation);
    options.max_runs = 5;
    options.stop_at_first_violation = true;
    const auto report = pimlib::check::explore(options);
    ASSERT_FALSE(report.counterexamples.empty());
    expect_round_trip(report.counterexamples.front());
}

TEST(CounterexampleRoundTrip, BackwardFaultDependentMutation) {
    pimlib::check::BackwardOptions options;
    options.mutation = "stale-rp-set-after-bsr-failover";
    options.target = pimlib::check::target_for_mutation(options.mutation);
    options.scenario =
        pimlib::check::scenario_for_mutation(options.mutation);
    options.max_replays = 50;
    const auto report = pimlib::check::backward_search(options);
    ASSERT_TRUE(report.found());
    expect_round_trip(report.counterexamples.front());
}

TEST(CounterexampleRoundTrip, BackwardLossDependentMutation) {
    pimlib::check::BackwardOptions options;
    options.mutation = "one-shot-assert";
    options.target = pimlib::check::target_for_mutation(options.mutation);
    options.scenario =
        pimlib::check::scenario_for_mutation(options.mutation);
    options.max_replays = 100;
    const auto report = pimlib::check::backward_search(options);
    ASSERT_TRUE(report.found());
    expect_round_trip(report.counterexamples.front());
}

// --- pimsim parser round trip -------------------------------------------

TEST(CounterexampleRoundTrip, EmittedScriptIsLoadablePimsimScenario) {
    // A counterexample with a fault pick exercises the emitted
    // crash/restart fault directives too.
    pimlib::check::BackwardOptions options;
    options.mutation = "stale-rp-set-after-bsr-failover";
    options.target = pimlib::check::target_for_mutation(options.mutation);
    options.scenario =
        pimlib::check::scenario_for_mutation(options.mutation);
    options.max_replays = 50;
    const auto report = pimlib::check::backward_search(options);
    ASSERT_TRUE(report.found());
    // run_scenario here is pimsim's script interpreter (PIMSIM_NO_MAIN
    // include above), not check::run_scenario: parse + full run, throwing
    // on any script error.
    EXPECT_NO_THROW(run_scenario(report.counterexamples.front().script));
}

TEST(CounterexampleRoundTrip, PimsimParserRejectsGarbage) {
    EXPECT_THROW(run_scenario("run 1x\n"), std::runtime_error); // bad unit
    EXPECT_THROW(run_scenario("protocol warp-drive\nrun 1ms\n"),
                 std::runtime_error);
}

} // namespace
