// The bench-regression harness (bench/runner_util.hpp): pimbench/1 line
// parsing, baseline files, the noise-aware min-of-N gate — including the
// acceptance case: a planted 2x slowdown fails, a clean re-run passes —
// and the history appender.
#include "runner_util.hpp"

#include <gtest/gtest.h>

namespace runner = pimlib::bench::runner;

namespace {

runner::BenchResult result_with(const std::string& bench,
                                std::initializer_list<std::pair<std::string, double>> values) {
    runner::BenchResult r;
    r.bench = bench;
    for (const auto& [name, v] : values) {
        runner::Metric m;
        m.value = v;
        m.better = "lower";
        r.metrics.emplace_back(name, m);
    }
    return r;
}

const char* kBaselineText = R"({
  "bench": "churn_scale",
  "metrics": {
    "joins_per_sec": {"value": 1000.0, "better": "higher", "tolerance": 0.2},
    "join_to_data_p99_s": {"value": 0.5, "better": "lower", "tolerance": 0.25}
  }
})";

} // namespace

TEST(RunnerParse, NormalizedLineRoundTrips) {
    const std::string line =
        R"({"schema":"pimbench/1","bench":"timer_scale","metrics":{)"
        R"("top_speedup":{"value":12.4,"unit":"x","better":"higher"},)"
        R"("wheel_refresh_ns":{"value":85.2,"unit":"ns","better":"info"}}})";
    auto r = runner::parse_normalized_line(line);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->bench, "timer_scale");
    ASSERT_EQ(r->metrics.size(), 2u);
    const runner::Metric* speedup = r->find("top_speedup");
    ASSERT_NE(speedup, nullptr);
    EXPECT_DOUBLE_EQ(speedup->value, 12.4);
    EXPECT_EQ(speedup->unit, "x");
    EXPECT_EQ(speedup->better, "higher");
}

TEST(RunnerParse, RejectsWrongSchemaAndGarbage) {
    EXPECT_FALSE(runner::parse_normalized_line(
        R"({"schema":"pimbench/2","bench":"x","metrics":{}})"));
    EXPECT_FALSE(runner::parse_normalized_line("not json at all"));
    EXPECT_FALSE(runner::parse_normalized_line(
        R"({"schema":"pimbench/1","bench":"x"})"));
    EXPECT_FALSE(runner::parse_normalized_line(
        R"({"schema":"pimbench/1","bench":"x","metrics":{"m":{"unit":"s"}}})"));
}

TEST(RunnerParse, ExtractFindsLastNormalizedLineInNoisyStdout) {
    const std::string stdout_text =
        "churn_scale: warming up\n"
        "| receivers | joins/s |\n"
        "{\"full\":\"bespoke json\",\"points\":[1,2,3]}\n"
        R"({"schema":"pimbench/1","bench":"churn_scale","metrics":{)"
        R"("joins_per_sec":{"value":900,"unit":"1/s","better":"higher"}}})"
        "\n";
    auto r = runner::extract_result(stdout_text);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->bench, "churn_scale");
    ASSERT_NE(r->find("joins_per_sec"), nullptr);
    EXPECT_DOUBLE_EQ(r->find("joins_per_sec")->value, 900.0);

    EXPECT_FALSE(runner::extract_result("no normalized line here\n"));
}

TEST(RunnerBaseline, ParsesAndRejectsInfoMetrics) {
    auto b = runner::parse_baseline(kBaselineText);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->bench, "churn_scale");
    ASSERT_EQ(b->metrics.size(), 2u);
    EXPECT_EQ(b->metrics[0].first, "joins_per_sec");
    EXPECT_DOUBLE_EQ(b->metrics[0].second.tolerance, 0.2);

    // "info" metrics are never gated; a baseline carrying one is a
    // configuration error, not something to silently skip.
    EXPECT_FALSE(runner::parse_baseline(
        R"({"bench":"x","metrics":{"m":{"value":1,"better":"info"}}})"));
}

TEST(RunnerGate, PlantedTwoTimesSlowdownFailsCleanRunPasses) {
    auto baseline = runner::parse_baseline(kBaselineText);
    ASSERT_TRUE(baseline.has_value());

    // Clean run: values at baseline (within tolerance).
    runner::BenchResult clean = result_with("churn_scale", {});
    runner::Metric joins;
    joins.value = 1020.0;
    joins.better = "higher";
    clean.metrics.emplace_back("joins_per_sec", joins);
    runner::Metric p99;
    p99.value = 0.52;
    p99.better = "lower";
    clean.metrics.emplace_back("join_to_data_p99_s", p99);
    EXPECT_TRUE(runner::gate(*baseline, {clean}).pass);

    // Planted regression: p99 doubles (0.5 -> 1.0, limit 0.625).
    runner::BenchResult slow = clean;
    slow.metrics[1].second.value = 1.0;
    const runner::GateReport report = runner::gate(*baseline, {slow});
    EXPECT_FALSE(report.pass);
    bool flagged = false;
    for (const auto& f : report.findings) {
        if (f.metric == "join_to_data_p99_s") {
            EXPECT_TRUE(f.regressed);
            EXPECT_DOUBLE_EQ(f.best, 1.0);
            EXPECT_DOUBLE_EQ(f.limit, 0.625);
            flagged = true;
        }
    }
    EXPECT_TRUE(flagged);
}

TEST(RunnerGate, MinOfNToleratesOneNoisyRun) {
    auto baseline = runner::parse_baseline(kBaselineText);
    ASSERT_TRUE(baseline.has_value());

    auto run_at = [](double joins, double p99) {
        runner::BenchResult r;
        r.bench = "churn_scale";
        runner::Metric j;
        j.value = joins;
        j.better = "higher";
        r.metrics.emplace_back("joins_per_sec", j);
        runner::Metric p;
        p.value = p99;
        p.better = "lower";
        r.metrics.emplace_back("join_to_data_p99_s", p);
        return r;
    };
    // Run 1 hit a noisy neighbour (p99 3x, joins halved); run 2 is clean.
    // The direction-aware best-of-N (min for lower, max for higher) must
    // pass: transient noise only ever makes numbers worse.
    const runner::GateReport noisy = runner::gate(
        *baseline, {run_at(480.0, 1.5), run_at(1010.0, 0.49)});
    EXPECT_TRUE(noisy.pass);

    // A genuine regression is bad in EVERY run and still fails.
    const runner::GateReport real = runner::gate(
        *baseline, {run_at(480.0, 1.5), run_at(495.0, 1.4)});
    EXPECT_FALSE(real.pass);
}

TEST(RunnerGate, MissingGatedMetricFails) {
    auto baseline = runner::parse_baseline(kBaselineText);
    ASSERT_TRUE(baseline.has_value());
    // The run dropped join_to_data_p99_s entirely (e.g. a refactor renamed
    // it). That must fail, not vacuously pass.
    runner::BenchResult r;
    r.bench = "churn_scale";
    runner::Metric j;
    j.value = 1000.0;
    j.better = "higher";
    r.metrics.emplace_back("joins_per_sec", j);
    const runner::GateReport report = runner::gate(*baseline, {r});
    EXPECT_FALSE(report.pass);
    bool missing_flagged = false;
    for (const auto& f : report.findings) {
        if (f.metric == "join_to_data_p99_s" && f.missing) missing_flagged = true;
    }
    EXPECT_TRUE(missing_flagged);
}

TEST(RunnerGate, HigherDirectionGatesDownward) {
    auto baseline = runner::parse_baseline(
        R"({"bench":"b","metrics":{)"
        R"("throughput":{"value":100.0,"better":"higher","tolerance":0.1}}})");
    ASSERT_TRUE(baseline.has_value());
    runner::BenchResult ok = result_with("b", {});
    runner::Metric m;
    m.better = "higher";
    m.value = 95.0; // above the 90.0 limit
    ok.metrics.emplace_back("throughput", m);
    EXPECT_TRUE(runner::gate(*baseline, {ok}).pass);
    ok.metrics[0].second.value = 85.0; // below the limit
    EXPECT_FALSE(runner::gate(*baseline, {ok}).pass);
    ok.metrics[0].second.value = 250.0; // improvements never fail
    EXPECT_TRUE(runner::gate(*baseline, {ok}).pass);
}

TEST(RunnerHistory, AppendsAndStaysValidJson) {
    runner::RunMeta meta;
    meta.commit = "abc1234";
    meta.host = "ci-runner";
    meta.flags = "--receivers 4000";
    meta.timestamp = 1754524800;

    const auto run = result_with("churn_scale", {{"joins_per_sec", 987.5}});
    const std::string entry = runner::history_entry_json(meta, {run});

    std::string file = runner::history_append("", entry);
    auto parsed = runner::parse_json(file);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->kind, runner::JsonValue::Kind::kArray);
    EXPECT_EQ(parsed->items.size(), 1u);

    // Second append extends the array in place.
    meta.commit = "def5678";
    file = runner::history_append(file, runner::history_entry_json(meta, {run}));
    parsed = runner::parse_json(file);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->items.size(), 2u);
    EXPECT_EQ(parsed->items[0].find("commit")->str, "abc1234");
    EXPECT_EQ(parsed->items[1].find("commit")->str, "def5678");
    const runner::JsonValue* runs = parsed->items[1].find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->items.size(), 1u);
    EXPECT_DOUBLE_EQ(runs->items[0].find("joins_per_sec")->number, 987.5);

    // Corrupt existing content is quarantined, not lost silently.
    const std::string recovered =
        runner::history_append("{{{ not json", entry);
    auto reparsed = runner::parse_json(recovered);
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(reparsed->kind, runner::JsonValue::Kind::kArray);
}
