// Topology-spec parser tests: the happy path (the paper's Fig. 3 written as
// a spec, then driven end-to-end under PIM), every directive, and the error
// diagnostics.
#include <gtest/gtest.h>

#include "test_util.hpp"
#include "topo/builder.hpp"
#include "topo/segment.hpp"

namespace pimlib::test {
namespace {

using topo::TopologyBuilder;

constexpr const char* kFig3Spec = R"(
# Figure 3 of the paper
router A B C D
lan    lan0 A
host   receiver lan0
link   A B
link   B C
link   B D
lan    lan1 D
host   source lan1
)";

TEST(TopologyBuilder, ParsesFig3AndRunsPim) {
    topo::Network net;
    auto b = TopologyBuilder::parse(net, kFig3Spec);
    EXPECT_EQ(b.router_count(), 4u);
    EXPECT_EQ(b.host_count(), 2u);
    EXPECT_EQ(net.segments().size(), 5u);

    unicast::OracleRouting routing(net);
    scenario::PimSmStack stack(net, fast_config());
    stack.set_rp(kGroup, {b.router("C").router_id()});
    net.run_for(200 * sim::kMillisecond);
    stack.host_agent(b.host("receiver")).join(kGroup);
    net.run_for(300 * sim::kMillisecond);
    b.host("source").send_stream(kGroup, 3, 20 * sim::kMillisecond);
    net.run_for(500 * sim::kMillisecond);
    EXPECT_EQ(b.host("receiver").received_count(kGroup), 3u);
}

TEST(TopologyBuilder, LinkOptionsApplied) {
    topo::Network net;
    auto b = TopologyBuilder::parse(net, R"(
router A B
link A B delay=7ms metric=5
)");
    auto& link = b.link("A", "B");
    EXPECT_EQ(link.delay(), 7 * sim::kMillisecond);
    EXPECT_EQ(link.metric(), 5);
}

TEST(TopologyBuilder, DelayUnits) {
    topo::Network net;
    auto b = TopologyBuilder::parse(net, R"(
router A B C
link A B delay=250us
link B C delay=1s
)");
    EXPECT_EQ(b.link("A", "B").delay(), 250 * sim::kMicrosecond);
    EXPECT_EQ(b.link("B", "C").delay(), sim::kSecond);
}

TEST(TopologyBuilder, AttachAddsRouterToLan) {
    topo::Network net;
    auto b = TopologyBuilder::parse(net, R"(
router A B
lan shared A
attach B shared
)");
    EXPECT_EQ(b.lan("shared").attachments().size(), 2u);
}

TEST(TopologyBuilder, CommentsAndBlankLinesIgnored) {
    topo::Network net;
    auto b = TopologyBuilder::parse(net, "\n# nothing\nrouter A # trailing\n\n");
    EXPECT_EQ(b.router_count(), 1u);
}

TEST(TopologyBuilder, ErrorsCarryLineNumbers) {
    topo::Network net;
    try {
        TopologyBuilder::parse(net, "router A\nlink A Z\n");
        FAIL() << "expected parse failure";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("unknown router 'Z'"), std::string::npos);
    }
}

TEST(TopologyBuilder, RejectsMalformedInput) {
    auto expect_throw = [](const char* spec) {
        topo::Network net;
        EXPECT_THROW(TopologyBuilder::parse(net, spec), std::runtime_error) << spec;
    };
    expect_throw("bogus A\n");
    expect_throw("router\n");
    expect_throw("router A\nrouter A\n");                 // duplicate
    expect_throw("router A B\nlink A B metric=0\n");      // bad metric
    expect_throw("router A B\nlink A B delay=5parsecs\n"); // bad unit
    expect_throw("router A B\nlink A B frobnicate=1\n");  // unknown option
    expect_throw("router A\nlink A A\n");                 // self link
    expect_throw("host h nowhere\n");                     // unknown lan
    expect_throw("lan l\nhost h l extra\n");              // arity
}

TEST(TopologyBuilder, LookupFailuresThrow) {
    topo::Network net;
    auto b = TopologyBuilder::parse(net, "router A B\nlink A B\n");
    EXPECT_THROW((void)b.router("Z"), std::out_of_range);
    EXPECT_THROW((void)b.host("Z"), std::out_of_range);
    EXPECT_THROW((void)b.lan("Z"), std::out_of_range);
    EXPECT_NO_THROW((void)b.link("A", "B"));
    topo::Network net2;
    auto b2 = TopologyBuilder::parse(net2, "router A B C\nlink A B\n");
    EXPECT_THROW((void)b2.link("A", "C"), std::out_of_range);
}

} // namespace
} // namespace pimlib::test
