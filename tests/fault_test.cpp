// Fault-injection subsystem tests: topology observers and batching, unicast
// auto-reconvergence, the multi-tap wiretap registry, probabilistic segment
// loss, router crash/restart with full protocol-state loss, partitions, and
// the ConvergenceProbe — ending with the paper's headline robustness claim
// (§3.9): killing the primary RP mid-stream converges to the alternate RP
// within the soft-state holdtime, with no permanent receiver starvation.
#include <gtest/gtest.h>

#include "fault/convergence_probe.hpp"
#include "fault/fault_injector.hpp"
#include "test_util.hpp"
#include "topo/segment.hpp"

namespace pimlib::test {
namespace {

TEST(TopologyObservers, FireOnStateChangesOnly) {
    topo::Network net;
    auto& a = net.add_router("A");
    auto& b = net.add_router("B");
    auto& link = net.add_link(a, b);

    int fired = 0;
    const int token = net.add_topology_observer([&] { ++fired; });

    link.set_up(false);
    EXPECT_EQ(fired, 1);
    link.set_up(false); // no change, no notification
    EXPECT_EQ(fired, 1);
    link.set_up(true);
    EXPECT_EQ(fired, 2);

    a.set_interface_up(0, false);
    EXPECT_EQ(fired, 3);
    a.set_interface_up(0, false);
    EXPECT_EQ(fired, 3);

    net.remove_topology_observer(token);
    link.set_up(false);
    EXPECT_EQ(fired, 3);
}

TEST(TopologyObservers, BatchCoalescesToOneNotification) {
    topo::Network net;
    auto& a = net.add_router("A");
    auto& b = net.add_router("B");
    auto& c = net.add_router("C");
    auto& ab = net.add_link(a, b);
    auto& bc = net.add_link(b, c);

    int fired = 0;
    net.add_topology_observer([&] { ++fired; });
    {
        topo::Network::TopologyBatch batch{net};
        ab.set_up(false);
        bc.set_up(false);
        a.set_interface_up(0, false);
        EXPECT_EQ(fired, 0); // deferred
    }
    EXPECT_EQ(fired, 1);

    { // a batch with no changes notifies nobody
        topo::Network::TopologyBatch batch{net};
    }
    EXPECT_EQ(fired, 1);
}

TEST(TopologyObservers, OracleRoutingReconvergesAutomatically) {
    Fig3Topology topo;
    ASSERT_TRUE(topo.routing->distance(*topo.a, *topo.c).has_value());
    // Cut the only path to C; no manual recompute() anywhere.
    net::Ipv4Address c_id = topo.c->router_id();
    topo.net.find_link(*topo.b, *topo.c)->set_up(false);
    EXPECT_FALSE(topo.routing->distance(*topo.a, *topo.c).has_value());
    EXPECT_EQ(topo.a->route_to(c_id), std::nullopt);
    topo.net.find_link(*topo.b, *topo.c)->set_up(true);
    EXPECT_TRUE(topo.routing->distance(*topo.a, *topo.c).has_value());
}

TEST(PacketTaps, SeveralTapsCoexist) {
    Fig3Topology topo;
    int tap1 = 0;
    int tap2 = 0;
    const int token1 =
        topo.net.add_packet_tap([&](const topo::Segment&, const net::Frame&) { ++tap1; });
    topo.net.add_packet_tap([&](const topo::Segment&, const net::Frame&) { ++tap2; });

    scenario::PimSmStack stack(topo.net, fast_config());
    topo.net.run_for(200 * sim::kMillisecond);
    EXPECT_GT(tap1, 0);
    EXPECT_EQ(tap1, tap2);

    topo.net.remove_packet_tap(token1);
    const int tap1_frozen = tap1;
    topo.net.run_for(200 * sim::kMillisecond);
    EXPECT_EQ(tap1, tap1_frozen);
    EXPECT_GT(tap2, tap1_frozen);
}

TEST(SegmentLoss, FullLossDestroysEveryFrameAndCounts) {
    Fig3Topology topo;
    fault::FaultInjector faults(topo.net);
    scenario::PimSmStack stack(topo.net, fast_config());
    stack.set_rp(kGroup, {topo.c->router_id()});

    topo.net.run_for(100 * sim::kMillisecond);
    stack.host_agent(*topo.receiver).join(kGroup);
    topo.net.run_for(300 * sim::kMillisecond);

    auto& lan1 = *topo.source->interface(0).segment;
    faults.set_loss(lan1, 0.999999999); // effectively everything
    topo.source->send_stream(kGroup, 10, 10 * sim::kMillisecond);
    topo.net.run_for(500 * sim::kMillisecond);
    EXPECT_EQ(topo.receiver->received_count(kGroup), 0u);
    EXPECT_GE(lan1.frames_lost(), 10u);
    EXPECT_GE(topo.net.stats().dropped_loss(), 10u);

    faults.set_loss(lan1, 0.0);
    topo.source->send_stream(kGroup, 5, 10 * sim::kMillisecond);
    topo.net.run_for(500 * sim::kMillisecond);
    EXPECT_EQ(topo.receiver->received_count(kGroup), 5u);
}

TEST(SegmentLoss, ModerateLossIsRiddenOutBySoftState) {
    Fig3Topology topo;
    fault::FaultInjector faults(topo.net);
    scenario::PimSmStack stack(topo.net, fast_config());
    stack.set_rp(kGroup, {topo.c->router_id()});
    stack.set_spt_policy(pim::SptPolicy::never());

    topo.net.run_for(100 * sim::kMillisecond);
    stack.host_agent(*topo.receiver).join(kGroup);
    // 30% loss on the shared tree's B-C hop: joins and refreshes are lost
    // too, but the periodic machinery keeps the tree alive.
    faults.set_loss(*topo.net.find_link(*topo.b, *topo.c), 0.3);
    topo.source->send_stream(kGroup, 200, 10 * sim::kMillisecond,
                             200 * sim::kMillisecond);
    topo.net.run_for(4 * sim::kSecond);
    // Deliveries continue (well over half arrive) and state never expires
    // for good.
    EXPECT_GT(topo.receiver->received_count(kGroup), 100u);
}

TEST(RouterCrash, DropsAllProtocolStateAndRestartsClean) {
    Fig3Topology topo;
    fault::FaultInjector faults(topo.net);
    fault::ConvergenceProbe probe(topo.net);
    scenario::PimSmStack stack(topo.net, fast_config());
    stack.set_rp(kGroup, {topo.c->router_id()});
    stack.set_spt_policy(pim::SptPolicy::never());
    stack.wire_faults(faults);

    topo.net.run_for(100 * sim::kMillisecond);
    stack.host_agent(*topo.receiver).join(kGroup);
    topo.source->send_stream(kGroup, 400, 10 * sim::kMillisecond,
                             200 * sim::kMillisecond);
    topo.net.run_for(900 * sim::kMillisecond);

    // Steady state: B is on the shared tree and knows its neighbors.
    ASSERT_GT(stack.pim_at(*topo.b).state_entry_count(), 0u);
    ASSERT_FALSE(stack.pim_at(*topo.b).neighbors_on(0).empty());
    ASSERT_GT(topo.receiver->received_count(kGroup), 0u);

    const sim::Time crash_at = topo.net.simulator().now();
    faults.crash_router(*topo.b);
    EXPECT_TRUE(faults.is_crashed(*topo.b));
    EXPECT_EQ(stack.pim_at(*topo.b).state_entry_count(), 0u);
    EXPECT_TRUE(stack.pim_at(*topo.b).neighbors_on(0).empty());
    // B is a cut vertex: the receiver is starved while B is down.
    const std::size_t received_at_crash = topo.receiver->received_count(kGroup);
    topo.net.run_for(500 * sim::kMillisecond);
    EXPECT_EQ(topo.receiver->received_count(kGroup), received_at_crash);

    faults.restart_router(*topo.b);
    EXPECT_FALSE(faults.is_crashed(*topo.b));
    topo.net.run_for(2 * sim::kSecond);

    // B relearned everything from hellos, IGMP and refreshes; stream heals.
    EXPECT_GT(stack.pim_at(*topo.b).state_entry_count(), 0u);
    EXPECT_GT(topo.receiver->received_count(kGroup), received_at_crash);

    const auto report = probe.measure(kGroup, {topo.receiver}, crash_at);
    EXPECT_TRUE(report.converged);
    EXPECT_GT(report.control_messages, 0u);
    // JSON is well-formed enough for the bench's consumers.
    const std::string json = report.to_json();
    EXPECT_NE(json.find("\"converged\":true"), std::string::npos);
    EXPECT_NE(json.find("\"recovery_s\":"), std::string::npos);
    EXPECT_NE(json.find("\"receiver\""), std::string::npos);
}

TEST(RouterCrash, PartitionCutsAndHealsAtomically) {
    Fig3Topology topo;
    fault::FaultInjector faults(topo.net);
    int notifications = 0;
    topo.net.add_topology_observer([&] { ++notifications; });

    faults.partition({topo.net.find_link(*topo.a, *topo.b),
                      topo.net.find_link(*topo.b, *topo.c)});
    EXPECT_EQ(notifications, 1); // one batched recompute for the whole cut
    EXPECT_FALSE(topo.routing->distance(*topo.a, *topo.c).has_value());

    faults.heal_partition();
    EXPECT_EQ(notifications, 2);
    EXPECT_TRUE(topo.routing->distance(*topo.a, *topo.c).has_value());
    EXPECT_EQ(faults.events().size(), 2u);
}

TEST(RouterCrash, ScheduledFaultsFireAtTheRightTime) {
    Fig3Topology topo;
    fault::FaultInjector faults(topo.net);
    auto& link = *topo.net.find_link(*topo.b, *topo.c);

    faults.cut_link_at(300 * sim::kMillisecond, link);
    faults.restore_link_at(600 * sim::kMillisecond, link);
    topo.net.run_for(299 * sim::kMillisecond);
    EXPECT_TRUE(link.is_up());
    topo.net.run_for(2 * sim::kMillisecond);
    EXPECT_FALSE(link.is_up());
    topo.net.run_for(300 * sim::kMillisecond);
    EXPECT_TRUE(link.is_up());

    ASSERT_EQ(faults.events().size(), 2u);
    EXPECT_EQ(faults.events()[0].at, 300 * sim::kMillisecond);
    EXPECT_EQ(faults.events()[1].at, 600 * sim::kMillisecond);
}

/// The acceptance scenario: primary RP killed mid-stream, receivers fail
/// over to the alternate RP (§3.9) within the 3x-refresh soft-state bound,
/// and delivery resumes — no permanent starvation.
TEST(RpFailover, RpCrashConvergesToAlternateRpWithinHoldtime) {
    // receiver—A—B—C(RP1), B—E(RP2), B—D—source (examples/rp_failover).
    topo::Network net;
    auto& a = net.add_router("A");
    auto& b = net.add_router("B");
    auto& c = net.add_router("C");
    auto& e = net.add_router("E");
    auto& d = net.add_router("D");
    auto& lan0 = net.add_lan({&a});
    auto& receiver = net.add_host("receiver", lan0);
    net.add_link(a, b);
    net.add_link(b, c);
    net.add_link(b, e);
    net.add_link(b, d);
    auto& lan1 = net.add_lan({&d});
    auto& source = net.add_host("source", lan1);
    unicast::OracleRouting routing(net);

    fault::FaultInjector faults(net);
    fault::ConvergenceProbe probe(net);
    scenario::PimSmStack stack(net, fast_config());
    stack.set_rp(kGroup, {c.router_id(), e.router_id()});
    stack.set_spt_policy(pim::SptPolicy::never());
    stack.wire_faults(faults);

    net.run_for(100 * sim::kMillisecond);
    stack.host_agent(receiver).join(kGroup);
    source.send_stream(kGroup, 600, 10 * sim::kMillisecond, 200 * sim::kMillisecond);

    const sim::Time crash_at = 1 * sim::kSecond;
    faults.crash_router_at(crash_at, c);
    net.run_for(6 * sim::kSecond);

    // The shared tree re-homed onto the alternate RP.
    const auto* wc = stack.pim_at(a).cache().find_wc(kGroup);
    ASSERT_NE(wc, nullptr);
    EXPECT_EQ(wc->source_or_rp(), e.router_id());

    // Delivery resumed within the soft-state holdtime (3x refresh).
    const auto report = probe.measure(kGroup, {&receiver}, crash_at);
    ASSERT_TRUE(report.converged);
    const sim::Time bound = 3 * stack.pim_at(a).config().join_prune_interval;
    EXPECT_LE(report.recovery, bound);

    // And kept flowing afterwards: no permanent starvation.
    const std::size_t after_failover = receiver.received_count(kGroup);
    net.run_for(500 * sim::kMillisecond);
    EXPECT_GT(receiver.received_count(kGroup), after_failover);
}

TEST(IgmpReboot, MembershipRelearnedFromHostReports) {
    Fig3Topology topo;
    scenario::PimSmStack stack(topo.net, fast_config());
    stack.set_rp(kGroup, {topo.c->router_id()});

    topo.net.run_for(100 * sim::kMillisecond);
    stack.host_agent(*topo.receiver).join(kGroup);
    topo.net.run_for(200 * sim::kMillisecond);
    ASSERT_FALSE(stack.igmp_at(*topo.a).member_interfaces(kGroup).empty());

    stack.igmp_at(*topo.a).reboot();
    EXPECT_TRUE(stack.igmp_at(*topo.a).member_interfaces(kGroup).empty());
    // The reboot queries immediately; the host's report restores membership
    // within the query-response window.
    topo.net.run_for(200 * sim::kMillisecond);
    EXPECT_FALSE(stack.igmp_at(*topo.a).member_interfaces(kGroup).empty());
}

} // namespace
} // namespace pimlib::test
