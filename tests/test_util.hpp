// Shared helpers for protocol tests: canonical topologies from the paper's
// figures and a uniformly time-compressed stack configuration.
#pragma once

#include <memory>

#include "scenario/stacks.hpp"
#include "topo/network.hpp"
#include "unicast/oracle_routing.hpp"

namespace pimlib::test {

inline const net::GroupAddress kGroup{net::Ipv4Address(224, 1, 1, 1)};

/// All protocol timers compressed 100×: PIM join/prune refresh 600 ms,
/// holdtime 1.8 s, IGMP query 100 ms, etc. Simulated seconds stay cheap.
inline scenario::StackConfig fast_config() {
    scenario::StackConfig cfg;
    cfg.igmp.query_interval = 10 * sim::kSecond;
    cfg.igmp.membership_timeout = 25 * sim::kSecond;
    cfg.igmp.other_querier_timeout = 25 * sim::kSecond;
    cfg.host.query_response_max = 1 * sim::kSecond;
    return cfg.scaled(0.01);
}

/// The topology of the paper's Figures 3–5:
///
///   receiver host — LAN0 — A — B — C (the RP)
///                              |
///                              D — LAN1 — source host
///
/// A's path to the RP runs A→B→C; A's path to the source runs A→B→D, so B
/// is the divergence point between the shared tree and the SPT (§3.3).
struct Fig3Topology {
    topo::Network net;
    topo::Router* a = nullptr;
    topo::Router* b = nullptr;
    topo::Router* c = nullptr; // RP
    topo::Router* d = nullptr;
    topo::Host* receiver = nullptr;
    topo::Host* source = nullptr;
    std::unique_ptr<unicast::OracleRouting> routing;

    Fig3Topology() {
        a = &net.add_router("A");
        b = &net.add_router("B");
        c = &net.add_router("C");
        d = &net.add_router("D");
        auto& lan0 = net.add_lan({a});
        receiver = &net.add_host("receiver", lan0);
        net.add_link(*a, *b);
        net.add_link(*b, *c);
        net.add_link(*b, *d);
        auto& lan1 = net.add_lan({d});
        source = &net.add_host("source", lan1);
        routing = std::make_unique<unicast::OracleRouting>(net);
    }

    /// Interface index of `from` on the segment shared with `to`.
    [[nodiscard]] int ifindex_toward(const topo::Router& from, const topo::Router& to) {
        topo::Segment* link = net.find_link(from, to);
        return link == nullptr ? -1 : from.ifindex_on(*link).value_or(-1);
    }
};

} // namespace pimlib::test
