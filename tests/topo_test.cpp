// Topology substrate tests: segments, frame delivery semantics, unicast
// forwarding, TTL, link failure, address plan.
#include <gtest/gtest.h>

#include "test_util.hpp"
#include "topo/network.hpp"
#include "topo/segment.hpp"
#include "unicast/oracle_routing.hpp"

namespace pimlib::test {
namespace {

TEST(Network, AddressPlan) {
    topo::Network net;
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    EXPECT_EQ(r1.router_id(), net::Ipv4Address(192, 168, 0, 1));
    EXPECT_EQ(r2.router_id(), net::Ipv4Address(192, 168, 0, 2));

    auto& link = net.add_link(r1, r2);
    EXPECT_EQ(link.prefix().to_string(), "10.0.0.0/24");
    EXPECT_EQ(r1.interface(0).address, net::Ipv4Address(10, 0, 0, 1));
    EXPECT_EQ(r2.interface(0).address, net::Ipv4Address(10, 0, 0, 2));

    auto& lan = net.add_lan({&r1, &r2});
    EXPECT_EQ(lan.prefix().to_string(), "10.0.1.0/24");
    auto& host = net.add_host("h", lan);
    EXPECT_EQ(host.address(), net::Ipv4Address(10, 0, 1, 3));
    EXPECT_TRUE(lan.is_lan());
    EXPECT_FALSE(link.is_lan());
}

TEST(Network, FindLink) {
    topo::Network net;
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    auto& r3 = net.add_router("r3");
    auto& link = net.add_link(r1, r2);
    EXPECT_EQ(net.find_link(r1, r2), &link);
    EXPECT_EQ(net.find_link(r2, r1), &link);
    EXPECT_EQ(net.find_link(r1, r3), nullptr);
}

TEST(Segment, UnicastFrameReachesOnlyAddressee) {
    topo::Network net;
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    auto& r3 = net.add_router("r3");
    auto& lan = net.add_lan({&r1, &r2, &r3});

    int r2_count = 0;
    int r3_count = 0;
    r2.register_protocol(net::IpProto::kCbt, [&](int, const net::Packet&) { ++r2_count; });
    r3.register_protocol(net::IpProto::kCbt, [&](int, const net::Packet&) { ++r3_count; });

    net::Packet p;
    p.src = r1.interface(0).address;
    p.dst = r2.interface(0).address;
    p.proto = net::IpProto::kCbt;
    r1.send(r1.ifindex_on(lan).value(), net::Frame{r2.interface(0).address, p});
    net.simulator().run();
    EXPECT_EQ(r2_count, 1);
    EXPECT_EQ(r3_count, 0);
}

TEST(Segment, BroadcastFrameReachesAllButSender) {
    topo::Network net;
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    auto& r3 = net.add_router("r3");
    net.add_lan({&r1, &r2, &r3});
    int count = 0;
    auto handler = [&](int, const net::Packet&) { ++count; };
    r1.register_protocol(net::IpProto::kCbt, handler);
    r2.register_protocol(net::IpProto::kCbt, handler);
    r3.register_protocol(net::IpProto::kCbt, handler);

    net::Packet p;
    p.src = r1.interface(0).address;
    p.dst = net::kAllRouters;
    p.proto = net::IpProto::kCbt;
    r1.send(0, net::Frame{std::nullopt, p});
    net.simulator().run();
    EXPECT_EQ(count, 2); // not the sender
}

TEST(Segment, DownSegmentDropsFrames) {
    topo::Network net;
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    auto& link = net.add_link(r1, r2);
    int count = 0;
    r2.register_protocol(net::IpProto::kCbt, [&](int, const net::Packet&) { ++count; });
    link.set_up(false);
    net::Packet p;
    p.src = r1.interface(0).address;
    p.dst = net::kAllRouters;
    p.proto = net::IpProto::kCbt;
    r1.send(0, net::Frame{std::nullopt, p});
    net.simulator().run();
    EXPECT_EQ(count, 0);
}

TEST(Segment, DownInterfaceDropsAtReceiver) {
    topo::Network net;
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    net.add_link(r1, r2);
    int count = 0;
    r2.register_protocol(net::IpProto::kCbt, [&](int, const net::Packet&) { ++count; });
    r2.set_interface_up(0, false);
    net::Packet p;
    p.src = r1.interface(0).address;
    p.dst = net::kAllRouters;
    p.proto = net::IpProto::kCbt;
    r1.send(0, net::Frame{std::nullopt, p});
    net.simulator().run();
    EXPECT_EQ(count, 0);
}

TEST(Segment, PropagationDelayApplied) {
    topo::Network net;
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    net.add_link(r1, r2, 5 * sim::kMillisecond);
    sim::Time arrival = 0;
    r2.register_protocol(net::IpProto::kCbt, [&](int, const net::Packet&) {
        arrival = net.simulator().now();
    });
    net::Packet p;
    p.src = r1.interface(0).address;
    p.dst = net::kAllRouters;
    p.proto = net::IpProto::kCbt;
    r1.send(0, net::Frame{std::nullopt, p});
    net.simulator().run();
    EXPECT_EQ(arrival, 5 * sim::kMillisecond);
}

TEST(Router, ForwardsUnicastAlongShortestPath) {
    // r1 — r2 — r3; send from r1 to r3's router id.
    topo::Network net;
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    auto& r3 = net.add_router("r3");
    net.add_link(r1, r2);
    net.add_link(r2, r3);
    unicast::OracleRouting routing(net);

    int delivered = 0;
    r3.register_protocol(net::IpProto::kCbt, [&](int, const net::Packet& p) {
        ++delivered;
        EXPECT_EQ(p.ttl, 63); // one forwarding hop at r2
    });
    net::Packet p;
    p.dst = r3.router_id();
    p.proto = net::IpProto::kCbt;
    p.ttl = 64;
    r1.originate_unicast(std::move(p));
    net.simulator().run();
    EXPECT_EQ(delivered, 1);
}

TEST(Router, TtlExpiryDropsPacket) {
    topo::Network net;
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    auto& r3 = net.add_router("r3");
    net.add_link(r1, r2);
    net.add_link(r2, r3);
    unicast::OracleRouting routing(net);
    int delivered = 0;
    r3.register_protocol(net::IpProto::kCbt, [&](int, const net::Packet&) { ++delivered; });
    net::Packet p;
    p.dst = r3.router_id();
    p.proto = net::IpProto::kCbt;
    p.ttl = 1; // dies at r2
    r1.originate_unicast(std::move(p));
    net.simulator().run();
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(net.stats().data_dropped_ttl(), 1u);
}

TEST(Router, NoRouteDropsAndCounts) {
    topo::Network net;
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    net.add_link(r1, r2);
    unicast::OracleRouting routing(net);
    net::Packet p;
    p.dst = net::Ipv4Address(203, 0, 113, 7);
    p.proto = net::IpProto::kCbt;
    r1.originate_unicast(std::move(p));
    net.simulator().run();
    EXPECT_EQ(net.stats().data_dropped_no_route(), 1u);
}

TEST(Router, LocalAddressRecognition) {
    topo::Network net;
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    net.add_link(r1, r2);
    EXPECT_TRUE(r1.is_local_address(r1.router_id()));
    EXPECT_TRUE(r1.is_local_address(r1.interface(0).address));
    EXPECT_FALSE(r1.is_local_address(r2.router_id()));
}

TEST(Host, StreamsCarrySequenceNumbers) {
    topo::Network net;
    auto& r1 = net.add_router("r1");
    auto& lan = net.add_lan({&r1});
    auto& sender = net.add_host("s", lan);
    auto& listener = net.add_host("l", lan);
    listener.join_group(kGroup);
    sender.send_stream(kGroup, 3, 10 * sim::kMillisecond);
    net.simulator().run();
    ASSERT_EQ(listener.received().size(), 3u);
    EXPECT_EQ(listener.received()[0].seq, 1u);
    EXPECT_EQ(listener.received()[2].seq, 3u);
    EXPECT_EQ(listener.duplicate_count(), 0u);
    EXPECT_EQ(listener.received_count_from(sender.address(), kGroup), 3u);
}

TEST(Host, NonMemberIgnoresData) {
    topo::Network net;
    auto& r1 = net.add_router("r1");
    auto& lan = net.add_lan({&r1});
    auto& sender = net.add_host("s", lan);
    auto& listener = net.add_host("l", lan);
    sender.send_data(kGroup);
    net.simulator().run();
    EXPECT_EQ(listener.received().size(), 0u);
}

TEST(Stats, FlowAndPacketAccounting) {
    topo::Network net;
    auto& r1 = net.add_router("r1");
    auto& lan = net.add_lan({&r1});
    auto& sender = net.add_host("s", lan);
    sender.send_stream(kGroup, 4, sim::kMillisecond);
    net.simulator().run();
    EXPECT_EQ(net.stats().data_packets_on(lan.id()), 4u);
    EXPECT_EQ(net.stats().flows_on(lan.id()), 1u); // one (source, group) flow
    EXPECT_EQ(net.stats().max_flows_on_any_segment(), 1u);
    EXPECT_EQ(net.stats().total_data_packets(), 4u);
    net.stats().reset_data_counters();
    EXPECT_EQ(net.stats().total_data_packets(), 0u);
}

} // namespace
} // namespace pimlib::test
