// Unit tests for net: addresses, prefixes, wire-format buffers.
#include <gtest/gtest.h>

#include <random>

#include "net/buffer.hpp"
#include "net/ipv4.hpp"
#include "net/packet.hpp"

namespace pimlib::net {
namespace {

TEST(Ipv4Address, ParsesDottedQuad) {
    auto a = Ipv4Address::parse("192.168.1.42");
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->to_string(), "192.168.1.42");
    EXPECT_EQ(a->to_uint(), 0xC0A8012Au);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
    EXPECT_FALSE(Ipv4Address::parse("").has_value());
    EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
    EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
    EXPECT_FALSE(Ipv4Address::parse("1.2.3.256").has_value());
    EXPECT_FALSE(Ipv4Address::parse("a.b.c.d").has_value());
    EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 ").has_value());
    EXPECT_FALSE(Ipv4Address::parse("1..3.4").has_value());
}

TEST(Ipv4Address, MulticastClassification) {
    EXPECT_TRUE(Ipv4Address(224, 0, 0, 1).is_multicast());
    EXPECT_TRUE(Ipv4Address(239, 255, 255, 255).is_multicast());
    EXPECT_FALSE(Ipv4Address(223, 255, 255, 255).is_multicast());
    EXPECT_FALSE(Ipv4Address(240, 0, 0, 0).is_multicast());
    EXPECT_TRUE(Ipv4Address(224, 0, 0, 2).is_link_local_multicast());
    EXPECT_FALSE(Ipv4Address(224, 0, 1, 2).is_link_local_multicast());
    EXPECT_FALSE(Ipv4Address(225, 0, 0, 2).is_link_local_multicast());
}

TEST(GroupAddress, RejectsNonClassD) {
    EXPECT_THROW(GroupAddress{Ipv4Address(10, 0, 0, 1)}, std::invalid_argument);
    EXPECT_NO_THROW(GroupAddress{Ipv4Address(224, 1, 2, 3)});
}

TEST(Prefix, CanonicalizesHostBits) {
    const Prefix p{Ipv4Address(10, 1, 2, 3), 24};
    EXPECT_EQ(p.address(), Ipv4Address(10, 1, 2, 0));
    EXPECT_EQ(p.to_string(), "10.1.2.0/24");
}

TEST(Prefix, Contains) {
    const Prefix p{Ipv4Address(10, 1, 2, 0), 24};
    EXPECT_TRUE(p.contains(Ipv4Address(10, 1, 2, 255)));
    EXPECT_FALSE(p.contains(Ipv4Address(10, 1, 3, 0)));
    const Prefix all{Ipv4Address{}, 0};
    EXPECT_TRUE(all.contains(Ipv4Address(1, 2, 3, 4)));
    const Prefix host = Prefix::host(Ipv4Address(10, 0, 0, 1));
    EXPECT_TRUE(host.contains(Ipv4Address(10, 0, 0, 1)));
    EXPECT_FALSE(host.contains(Ipv4Address(10, 0, 0, 2)));
}

TEST(Prefix, Parse) {
    auto p = Prefix::parse("172.16.0.0/12");
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->length(), 12);
    EXPECT_FALSE(Prefix::parse("172.16.0.0").has_value());
    EXPECT_FALSE(Prefix::parse("172.16.0.0/33").has_value());
    EXPECT_FALSE(Prefix::parse("172.16.0.0/-1").has_value());
}

TEST(Buffer, RoundTripsAllWidths) {
    BufWriter w;
    w.put_u8(0xAB);
    w.put_u16(0xBEEF);
    w.put_u32(0xDEADBEEF);
    w.put_u64(0x0123456789ABCDEFull);
    w.put_addr(Ipv4Address(1, 2, 3, 4));
    const auto bytes = w.take();
    ASSERT_EQ(bytes.size(), 1u + 2 + 4 + 8 + 4);

    BufReader r({bytes.data(), bytes.size()});
    EXPECT_EQ(r.get_u8(), 0xAB);
    EXPECT_EQ(r.get_u16(), 0xBEEF);
    EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.get_addr(), Ipv4Address(1, 2, 3, 4));
    EXPECT_TRUE(r.at_end());
    EXPECT_TRUE(r.ok());
}

TEST(Buffer, BigEndianOnTheWire) {
    BufWriter w;
    w.put_u16(0x0102);
    const auto& bytes = w.bytes();
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_EQ(bytes[0], 0x01);
    EXPECT_EQ(bytes[1], 0x02);
}

TEST(Buffer, UnderrunFailsAndStaysFailed) {
    const std::vector<std::uint8_t> bytes{0x01, 0x02};
    BufReader r({bytes.data(), bytes.size()});
    EXPECT_FALSE(r.get_u32().has_value());
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.get_u8().has_value()); // failed readers stay failed
}

TEST(Buffer, GetBytesBounds) {
    const std::vector<std::uint8_t> bytes{1, 2, 3};
    BufReader r({bytes.data(), bytes.size()});
    auto got = r.get_bytes(3);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, (std::vector<std::uint8_t>{1, 2, 3}));
    BufReader r2({bytes.data(), bytes.size()});
    EXPECT_FALSE(r2.get_bytes(4).has_value());
}

// Property: any sequence of typed writes reads back identically.
TEST(Buffer, PropertyRandomRoundTrip) {
    std::mt19937 rng(7);
    for (int trial = 0; trial < 200; ++trial) {
        BufWriter w;
        std::vector<std::pair<int, std::uint64_t>> fields;
        std::uniform_int_distribution<int> kind(0, 3);
        std::uniform_int_distribution<std::uint64_t> value;
        const int count = 1 + trial % 17;
        for (int i = 0; i < count; ++i) {
            const int k = kind(rng);
            const std::uint64_t v = value(rng);
            fields.emplace_back(k, v);
            switch (k) {
            case 0: w.put_u8(static_cast<std::uint8_t>(v)); break;
            case 1: w.put_u16(static_cast<std::uint16_t>(v)); break;
            case 2: w.put_u32(static_cast<std::uint32_t>(v)); break;
            default: w.put_u64(v); break;
            }
        }
        const auto bytes = w.take();
        BufReader r({bytes.data(), bytes.size()});
        for (const auto& [k, v] : fields) {
            switch (k) {
            case 0: EXPECT_EQ(r.get_u8(), static_cast<std::uint8_t>(v)); break;
            case 1: EXPECT_EQ(r.get_u16(), static_cast<std::uint16_t>(v)); break;
            case 2: EXPECT_EQ(r.get_u32(), static_cast<std::uint32_t>(v)); break;
            default: EXPECT_EQ(r.get_u64(), v); break;
            }
        }
        EXPECT_TRUE(r.at_end());
    }
}

TEST(Packet, Describe) {
    Packet p;
    p.src = Ipv4Address(10, 0, 0, 1);
    p.dst = Ipv4Address(224, 1, 1, 1);
    p.seq = 3;
    const std::string d = p.describe();
    EXPECT_NE(d.find("10.0.0.1"), std::string::npos);
    EXPECT_NE(d.find("224.1.1.1"), std::string::npos);
    EXPECT_NE(d.find("seq=3"), std::string::npos);
}

} // namespace
} // namespace pimlib::net
