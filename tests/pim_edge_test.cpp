// Edge cases and adversarial inputs for PIM-SM: crafted join/prune
// messages, state machine corners (negative-cache conversion, footnote 12
// timer propagation, RP mismatch), RP-set precedence, and handler-level
// fuzzing of every control-plane entry point.
#include <gtest/gtest.h>

#include <random>

#include "pim/messages.hpp"
#include "test_util.hpp"
#include "topo/segment.hpp"

namespace pimlib::test {
namespace {

using pim::AddressEntry;
using pim::EntryFlags;
using pim::JoinPrune;

/// Delivers a crafted PIM packet to `router` as if it arrived on `ifindex`
/// from link-layer neighbor `from`.
void inject_pim(topo::Router& router, int ifindex, net::Ipv4Address from,
                const std::vector<std::uint8_t>& payload) {
    net::Packet packet;
    packet.src = from;
    packet.dst = net::kAllRouters;
    packet.proto = net::IpProto::kIgmp;
    packet.ttl = 1;
    packet.payload = payload;
    router.receive(ifindex, packet);
}

class PimEdgeTest : public ::testing::Test {
protected:
    PimEdgeTest() : stack_(topo_.net, fast_config()) {
        stack_.set_rp(kGroup, {topo_.c->router_id()});
        topo_.net.run_for(100 * sim::kMillisecond);
    }

    /// B's interface toward A and A's address on that link.
    std::pair<int, net::Ipv4Address> b_from_a() {
        auto* link = topo_.net.find_link(*topo_.a, *topo_.b);
        return {topo_.b->ifindex_on(*link).value(),
                topo_.a->interface(topo_.a->ifindex_on(*link).value()).address};
    }

    Fig3Topology topo_;
    scenario::PimSmStack stack_;
};

TEST_F(PimEdgeTest, TransitRouterBuildsSharedTreeFromJoinAlone) {
    // B has no RP mapping configured for this group; the WC join carries the
    // RP address, which is all a transit router needs (§3.2: the RP address
    // is "included in upstream join messages").
    const net::GroupAddress g{net::Ipv4Address(229, 7, 7, 7)};
    auto [ifindex, from] = b_from_a();
    JoinPrune msg;
    msg.upstream_neighbor = topo_.b->interface(ifindex).address;
    msg.holdtime_ms = 1800;
    msg.group = g.address();
    msg.joins = {AddressEntry{topo_.c->router_id(), EntryFlags{true, true}}};
    inject_pim(*topo_.b, ifindex, from, msg.encode());
    topo_.net.run_for(50 * sim::kMillisecond);

    auto* wc_b = stack_.pim_at(*topo_.b).cache().find_wc(g);
    ASSERT_NE(wc_b, nullptr);
    EXPECT_EQ(wc_b->source_or_rp(), topo_.c->router_id());
    EXPECT_TRUE(wc_b->has_oif(ifindex));
    // And it propagated: the RP terminated the join.
    EXPECT_NE(stack_.pim_at(*topo_.c).cache().find_wc(g), nullptr);
}

TEST_F(PimEdgeTest, WcJoinWithDifferentReachableRpKeepsCurrent) {
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);
    auto* wc_b = stack_.pim_at(*topo_.b).cache().find_wc(kGroup);
    ASSERT_NE(wc_b, nullptr);
    ASSERT_EQ(wc_b->source_or_rp(), topo_.c->router_id());

    // A rogue/partitioned downstream claims D is the RP. C is still
    // reachable, so B must not re-root its shared tree.
    auto [ifindex, from] = b_from_a();
    JoinPrune msg;
    msg.upstream_neighbor = topo_.b->interface(ifindex).address;
    msg.holdtime_ms = 1800;
    msg.group = kGroup.address();
    msg.joins = {AddressEntry{topo_.d->router_id(), EntryFlags{true, true}}};
    inject_pim(*topo_.b, ifindex, from, msg.encode());
    topo_.net.run_for(50 * sim::kMillisecond);
    EXPECT_EQ(stack_.pim_at(*topo_.b).cache().find_wc(kGroup)->source_or_rp(),
              topo_.c->router_id());
}

TEST_F(PimEdgeTest, PruneForUnknownStateIsHarmless) {
    auto [ifindex, from] = b_from_a();
    JoinPrune msg;
    msg.upstream_neighbor = topo_.b->interface(ifindex).address;
    msg.holdtime_ms = 1800;
    msg.group = kGroup.address();
    msg.prunes = {
        AddressEntry{topo_.source->address(), EntryFlags{false, false}}, // (S,G)
        AddressEntry{topo_.c->router_id(), EntryFlags{true, true}},      // (*,G)
    };
    inject_pim(*topo_.b, ifindex, from, msg.encode());
    topo_.net.run_for(50 * sim::kMillisecond);
    EXPECT_EQ(stack_.pim_at(*topo_.b).cache().size(), 0u);
}

TEST_F(PimEdgeTest, RpBitPruneWithoutSharedTreeIgnored) {
    // A negative cache only makes sense relative to an existing (*,G); an
    // RP-bit prune without one must not create state (§3.3).
    auto [ifindex, from] = b_from_a();
    JoinPrune msg;
    msg.upstream_neighbor = topo_.b->interface(ifindex).address;
    msg.holdtime_ms = 1800;
    msg.group = kGroup.address();
    msg.prunes = {AddressEntry{topo_.source->address(), EntryFlags{false, true}}};
    inject_pim(*topo_.b, ifindex, from, msg.encode());
    topo_.net.run_for(50 * sim::kMillisecond);
    EXPECT_EQ(stack_.pim_at(*topo_.b).cache().size(), 0u);
}

TEST_F(PimEdgeTest, RpBitPruneCreatesNegativeCacheAndPropagates) {
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);
    // Craft A's RP-bit prune at B (as if A had switched to the SPT and its
    // SPT iif diverged — which it does not in this topology, so we build
    // the message by hand).
    auto [ifindex, from] = b_from_a();
    JoinPrune msg;
    msg.upstream_neighbor = topo_.b->interface(ifindex).address;
    msg.holdtime_ms = 1800;
    msg.group = kGroup.address();
    msg.prunes = {AddressEntry{topo_.source->address(), EntryFlags{false, true}}};
    inject_pim(*topo_.b, ifindex, from, msg.encode());
    topo_.net.run_for(100 * sim::kMillisecond);

    auto* neg = stack_.pim_at(*topo_.b).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(neg, nullptr);
    EXPECT_TRUE(neg->rp_bit());
    EXPECT_TRUE(neg->is_pruned(ifindex));
    // Its iif follows the shared tree toward the RP.
    EXPECT_EQ(neg->iif(), stack_.pim_at(*topo_.b).cache().find_wc(kGroup)->iif());
    // Empty negative cache propagated the prune: the RP's (*,G) branch to B
    // lost this source... i.e. C now holds a negative cache too.
    auto* neg_c = stack_.pim_at(*topo_.c).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(neg_c, nullptr);

    // A subsequent (*,G) join on the pruned interface reinstates delivery
    // (join overrides, §3.7 semantics).
    JoinPrune rejoin;
    rejoin.upstream_neighbor = topo_.b->interface(ifindex).address;
    rejoin.holdtime_ms = 1800;
    rejoin.group = kGroup.address();
    rejoin.joins = {AddressEntry{topo_.c->router_id(), EntryFlags{true, true}}};
    inject_pim(*topo_.b, ifindex, from, rejoin.encode());
    EXPECT_FALSE(neg->is_pruned(ifindex));
    EXPECT_TRUE(neg->has_oif(ifindex));
}

TEST_F(PimEdgeTest, NegativeCacheConvertsToRealEntryOnSgJoin) {
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);
    auto [ifindex, from] = b_from_a();
    // First create the negative cache...
    JoinPrune prune;
    prune.upstream_neighbor = topo_.b->interface(ifindex).address;
    prune.holdtime_ms = 1800;
    prune.group = kGroup.address();
    prune.prunes = {AddressEntry{topo_.source->address(), EntryFlags{false, true}}};
    inject_pim(*topo_.b, ifindex, from, prune.encode());
    auto* entry = stack_.pim_at(*topo_.b).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(entry, nullptr);
    ASSERT_TRUE(entry->rp_bit());

    // ...then a genuine (S,G) join arrives: the entry becomes a real
    // shortest-path entry rooted toward the source.
    JoinPrune join;
    join.upstream_neighbor = topo_.b->interface(ifindex).address;
    join.holdtime_ms = 1800;
    join.group = kGroup.address();
    join.joins = {AddressEntry{topo_.source->address(), EntryFlags{false, false}}};
    inject_pim(*topo_.b, ifindex, from, join.encode());
    topo_.net.run_for(50 * sim::kMillisecond);

    entry = stack_.pim_at(*topo_.b).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(entry->rp_bit());
    EXPECT_EQ(entry->iif(), topo_.ifindex_toward(*topo_.b, *topo_.d));
    EXPECT_TRUE(entry->has_oif(ifindex));
}

TEST_F(PimEdgeTest, Footnote12WcJoinRefreshesSgOifTimers) {
    // "When a timer is reset for an outgoing interface listed in (*,G)
    // entry, we should also reset the interface timers for all (S,G)
    // entries which contain that interface."
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);
    auto [ifindex, from] = b_from_a();
    // Give B an (S,G) entry whose only refresh will come from (*,G) joins.
    JoinPrune sg_join;
    sg_join.upstream_neighbor = topo_.b->interface(ifindex).address;
    sg_join.holdtime_ms = 1800;
    sg_join.group = kGroup.address();
    sg_join.joins = {AddressEntry{topo_.source->address(), EntryFlags{false, false}}};
    inject_pim(*topo_.b, ifindex, from, sg_join.encode());
    auto* sg = stack_.pim_at(*topo_.b).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(sg, nullptr);
    ASSERT_NE(sg->find_oif(ifindex), nullptr);
    const sim::Time before = sg->find_oif(ifindex)->expires;

    topo_.net.run_for(100 * sim::kMillisecond);
    JoinPrune wc_join;
    wc_join.upstream_neighbor = topo_.b->interface(ifindex).address;
    wc_join.holdtime_ms = 1800;
    wc_join.group = kGroup.address();
    wc_join.joins = {AddressEntry{topo_.c->router_id(), EntryFlags{true, true}}};
    inject_pim(*topo_.b, ifindex, from, wc_join.encode());
    ASSERT_NE(sg->find_oif(ifindex), nullptr);
    EXPECT_GT(sg->find_oif(ifindex)->expires, before);
}

TEST_F(PimEdgeTest, RpReachabilityOnWrongInterfaceIgnored) {
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);
    auto* wc_a = stack_.pim_at(*topo_.a).cache().find_wc(kGroup);
    ASSERT_NE(wc_a, nullptr);
    const sim::Time deadline = wc_a->rp_timer_deadline();

    // Spoofed reachability arriving on the receiver LAN (not the iif).
    pim::RpReachability msg{kGroup.address(), topo_.c->router_id(), 900000};
    net::Packet packet;
    packet.src = net::Ipv4Address(10, 0, 0, 99);
    packet.dst = net::kAllRouters;
    packet.proto = net::IpProto::kIgmp;
    packet.ttl = 1;
    packet.payload = msg.encode();
    topo_.a->receive(/*ifindex=*/0, packet);
    EXPECT_EQ(wc_a->rp_timer_deadline(), deadline);
}

TEST_F(PimEdgeTest, JoinForOwnAddressAtRpDoesNotLoop) {
    // The RP "recognizes its own address and does not attempt to send join
    // messages for this entry upstream" (§3.2).
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(500 * sim::kMillisecond);
    auto* wc_c = stack_.pim_at(*topo_.c).cache().find_wc(kGroup);
    ASSERT_NE(wc_c, nullptr);
    EXPECT_EQ(wc_c->iif(), -1);
    EXPECT_FALSE(wc_c->upstream_neighbor().has_value());
}

TEST(RpSetTest, PrecedenceExactLearnedRange) {
    pim::RpSet set;
    const net::GroupAddress g1{net::Ipv4Address(224, 1, 0, 5)};
    const net::Ipv4Address rp_static(192, 168, 0, 1);
    const net::Ipv4Address rp_learned(192, 168, 0, 2);
    const net::Ipv4Address rp_range(192, 168, 0, 3);
    const net::Ipv4Address rp_wide(192, 168, 0, 4);

    EXPECT_FALSE(set.has_mapping(g1));
    set.configure_range(net::Prefix{net::Ipv4Address(224, 0, 0, 0), 4}, {rp_wide});
    set.configure_range(net::Prefix{net::Ipv4Address(224, 1, 0, 0), 16}, {rp_range});
    EXPECT_EQ(set.rps_for(g1), std::vector<net::Ipv4Address>{rp_range}); // longest range
    const net::GroupAddress other{net::Ipv4Address(230, 0, 0, 1)};
    EXPECT_EQ(set.rps_for(other), std::vector<net::Ipv4Address>{rp_wide});

    set.learn(g1, {rp_learned});
    EXPECT_EQ(set.rps_for(g1), std::vector<net::Ipv4Address>{rp_learned});
    set.configure(g1, {rp_static});
    EXPECT_EQ(set.rps_for(g1), std::vector<net::Ipv4Address>{rp_static}); // config wins
}

TEST(RpSetTest, DynamicLayerIsConsultedLast) {
    // Every static layer outranks the BSR-learned election; the dynamic
    // layer only answers when nothing else matches.
    pim::RpSet set;
    const net::GroupAddress g{net::Ipv4Address(224, 1, 0, 5)};
    const net::Ipv4Address rp_dynamic(192, 168, 0, 9);
    const net::Ipv4Address rp_range(192, 168, 0, 3);
    const net::Ipv4Address rp_static(192, 168, 0, 1);

    EXPECT_TRUE(set.set_dynamic(
        {{net::Prefix{net::Ipv4Address(224, 0, 0, 0), 4}, rp_dynamic, 0}}));
    EXPECT_EQ(set.rps_for(g), std::vector<net::Ipv4Address>{rp_dynamic});

    set.configure_range(net::Prefix{net::Ipv4Address(224, 1, 0, 0), 16}, {rp_range});
    EXPECT_EQ(set.rps_for(g), std::vector<net::Ipv4Address>{rp_range});
    set.configure(g, {rp_static});
    EXPECT_EQ(set.rps_for(g), std::vector<net::Ipv4Address>{rp_static});

    // Replacing the layer with the same contents is not a change; clearing
    // it is.
    EXPECT_FALSE(set.set_dynamic(
        {{net::Prefix{net::Ipv4Address(224, 0, 0, 0), 4}, rp_dynamic, 0}}));
    EXPECT_TRUE(set.set_dynamic({}));
    const net::GroupAddress uncovered{net::Ipv4Address(230, 0, 0, 1)};
    EXPECT_TRUE(set.rps_for(uncovered).empty());
}

TEST(RpSetTest, DynamicElectionPrecedence) {
    // §4.7.2 election order within the dynamic layer: longest matching
    // range, then highest priority, then highest hash value.
    pim::RpSet set;
    const net::GroupAddress g{net::Ipv4Address(224, 1, 0, 5)};
    const net::Ipv4Address rp_wide(192, 168, 0, 4);
    const net::Ipv4Address rp_long(192, 168, 0, 5);
    const net::Ipv4Address rp_long_hi(192, 168, 0, 6);

    (void)set.set_dynamic({
        {net::Prefix{net::Ipv4Address(224, 0, 0, 0), 4}, rp_wide, 200},
        {net::Prefix{net::Ipv4Address(224, 1, 0, 0), 16}, rp_long, 0},
    });
    // The /16 beats the /4 despite the /4's higher priority.
    EXPECT_EQ(set.dynamic_rp_for(g), rp_long);

    (void)set.set_dynamic({
        {net::Prefix{net::Ipv4Address(224, 1, 0, 0), 16}, rp_long, 0},
        {net::Prefix{net::Ipv4Address(224, 1, 0, 0), 16}, rp_long_hi, 7},
    });
    // Same range: priority wins.
    EXPECT_EQ(set.dynamic_rp_for(g), rp_long_hi);
}

TEST(RpSetTest, HashMatchesPublishedFunction) {
    // Value(G,M,C) = (1103515245 * ((1103515245 * (G&M) + 12345) XOR C)
    //                 + 12345) mod 2^31, straight from RFC 7761 §4.7.2.
    auto reference = [](std::uint32_t gm, std::uint32_t c) {
        const std::uint64_t inner = (1103515245ull * gm + 12345ull) ^ c;
        return static_cast<std::uint32_t>((1103515245ull * inner + 12345ull) &
                                          0x7fffffffu);
    };
    const std::uint32_t g = net::Ipv4Address(224, 1, 2, 3).to_uint() & 0xFFFFFFFCu;
    const std::uint32_t c1 = net::Ipv4Address(192, 168, 0, 1).to_uint();
    const std::uint32_t c2 = net::Ipv4Address(10, 9, 8, 7).to_uint();
    EXPECT_EQ(pim::RpSet::hash_value(g, c1), reference(g, c1));
    EXPECT_EQ(pim::RpSet::hash_value(g, c2), reference(g, c2));
    EXPECT_LT(pim::RpSet::hash_value(g, c1), 0x80000000u);
}

TEST(RpSetTest, HashElectionDeterministicAndMaskBlocks) {
    // Two candidates for the same wide range: every "router" (a fresh
    // RpSet handed the same flooded entries) elects the same RP, and with
    // the default /30 hash mask four consecutive group addresses land on
    // the same RP (RFC 7761's block-assignment property).
    const std::vector<pim::RpSet::DynamicRp> flooded = {
        {net::Prefix{net::Ipv4Address(224, 0, 0, 0), 4},
         net::Ipv4Address(192, 168, 0, 7), 0},
        {net::Prefix{net::Ipv4Address(224, 0, 0, 0), 4},
         net::Ipv4Address(192, 168, 0, 9), 0},
    };
    pim::RpSet a;
    pim::RpSet b;
    (void)a.set_dynamic(flooded);
    (void)b.set_dynamic(flooded);
    bool spread = false;
    std::optional<net::Ipv4Address> previous_block;
    for (std::uint32_t block = 0; block < 64; block += 4) {
        const net::GroupAddress g0{net::Ipv4Address(0xE1000000u + block)};
        const auto elected = a.dynamic_rp_for(g0);
        ASSERT_TRUE(elected.has_value());
        EXPECT_EQ(b.dynamic_rp_for(g0), elected); // domain-wide agreement
        for (std::uint32_t i = 1; i < 4; ++i) {
            const net::GroupAddress gi{net::Ipv4Address(0xE1000000u + block + i)};
            EXPECT_EQ(a.dynamic_rp_for(gi), elected) << "within one /30 block";
        }
        if (previous_block.has_value() && *previous_block != *elected) spread = true;
        previous_block = elected;
    }
    // The hash must actually spread groups over both candidates (64
    // consecutive groups all hashing to one RP would defeat the load
    // balancing the mask exists for).
    EXPECT_TRUE(spread);
}

TEST(PimConfigTest, ScalingIsUniform) {
    pim::PimConfig cfg;
    const pim::PimConfig scaled = cfg.scaled(0.5);
    EXPECT_EQ(scaled.join_prune_interval, cfg.join_prune_interval / 2);
    EXPECT_EQ(scaled.holdtime, cfg.holdtime / 2);
    EXPECT_EQ(scaled.query_interval, cfg.query_interval / 2);
    EXPECT_EQ(scaled.rp_timeout, cfg.rp_timeout / 2);
    EXPECT_EQ(scaled.override_delay, cfg.override_delay / 2);
    // Ratios preserved.
    EXPECT_EQ(scaled.holdtime, 3 * scaled.join_prune_interval);
}

// --- §3.7 multi-access LAN timing ---
//
// Two downstream routers share a transit LAN below one upstream router:
//
//   RP — U — transit LAN — { D1 — lan1 (r1),  D2 — lan2 (r2) }
//
// A prune on the LAN is held by the upstream for 2× the override delay so
// a router that still has members can override it with a join; periodic
// joins from one downstream suppress the other's.
class LanTimingTest : public ::testing::Test {
protected:
    LanTimingTest() {
        rp_ = &net_.add_router("RP");
        u_ = &net_.add_router("U");
        d1_ = &net_.add_router("D1");
        d2_ = &net_.add_router("D2");
        net_.add_link(*rp_, *u_);
        transit_ = &net_.add_lan({u_, d1_, d2_});
        auto& lan1 = net_.add_lan({d1_});
        r1_ = &net_.add_host("r1", lan1);
        auto& lan2 = net_.add_lan({d2_});
        r2_ = &net_.add_host("r2", lan2);
        auto& slan = net_.add_lan({rp_});
        source_ = &net_.add_host("source", slan);
        routing_ = std::make_unique<unicast::OracleRouting>(net_);
        stack_ = std::make_unique<scenario::PimSmStack>(net_, fast_config());
        stack_->set_rp(kGroup, {rp_->router_id()});
        stack_->set_spt_policy(pim::SptPolicy::never());
        net_.run_for(200 * sim::kMillisecond);
    }

    bool u_serves_lan() {
        auto* wc = stack_->pim_at(*u_).cache().find_wc(kGroup);
        return wc != nullptr && wc->has_oif(u_->ifindex_on(*transit_).value());
    }

    topo::Network net_;
    topo::Router* rp_ = nullptr;
    topo::Router* u_ = nullptr;
    topo::Router* d1_ = nullptr;
    topo::Router* d2_ = nullptr;
    topo::Segment* transit_ = nullptr;
    topo::Host* r1_ = nullptr;
    topo::Host* r2_ = nullptr;
    topo::Host* source_ = nullptr;
    std::unique_ptr<unicast::OracleRouting> routing_;
    std::unique_ptr<scenario::PimSmStack> stack_;
};

TEST_F(LanTimingTest, JoinOverrideRacesPendingPrune) {
    stack_->host_agent(*r1_).join(kGroup);
    stack_->host_agent(*r2_).join(kGroup);
    net_.run_for(300 * sim::kMillisecond);
    ASSERT_TRUE(u_serves_lan());

    // r2 falls silent; D2's membership ages out (IGMPv1 has no leave
    // message) and D2 prunes the LAN. D1 must overhear and override inside
    // U's 2×override_delay hold — across a full holdtime U never stops
    // serving the LAN and no packet is lost.
    const auto d2_before = stack_->pim_at(*d2_).join_prune_messages_sent();
    stack_->host_agent(*r2_).leave(kGroup);
    net_.run_for(2 * sim::kSecond);
    EXPECT_GT(stack_->pim_at(*d2_).join_prune_messages_sent(), d2_before)
        << "D2 never sent its prune; the override was not exercised";
    EXPECT_TRUE(u_serves_lan());

    source_->send_stream(kGroup, 5, 50 * sim::kMillisecond);
    net_.run_for(1 * sim::kSecond);
    EXPECT_EQ(r1_->received_count(kGroup), 5u);
    EXPECT_EQ(r1_->duplicate_count(), 0u);
    EXPECT_EQ(r2_->received_count(kGroup), 0u);
}

TEST_F(LanTimingTest, SuppressionExpiresAndRefreshResumes) {
    stack_->host_agent(*r1_).join(kGroup);
    stack_->host_agent(*r2_).join(kGroup);
    net_.run_for(300 * sim::kMillisecond);

    // While both are joined, each overhears the other's refresh of the same
    // (*,G) toward U and suppresses its own: the pair sends roughly one
    // join per refresh interval, not two.
    const auto d1_before = stack_->pim_at(*d1_).join_prune_messages_sent();
    const auto d2_before = stack_->pim_at(*d2_).join_prune_messages_sent();
    net_.run_for(6 * sim::kSecond); // 10 join/prune intervals
    const auto joint = (stack_->pim_at(*d1_).join_prune_messages_sent() - d1_before) +
                       (stack_->pim_at(*d2_).join_prune_messages_sent() - d2_before);
    EXPECT_LT(joint, 16u) << "suppression is not reducing LAN join traffic";
    EXPECT_GE(joint, 8u);

    // r2 departs, so D2 goes quiet for good. D1's suppression mark (1.5×
    // refresh, jittered) must expire rather than stick: D1 resumes its own
    // periodic joins and keeps U's LAN oif alive well past a holdtime.
    stack_->host_agent(*r2_).leave(kGroup);
    net_.run_for(1 * sim::kSecond); // membership ages out, prune + override settle
    const auto d1_solo_before = stack_->pim_at(*d1_).join_prune_messages_sent();
    net_.run_for(4 * sim::kSecond); // > 2 × holdtime with nobody else refreshing
    EXPECT_GE(stack_->pim_at(*d1_).join_prune_messages_sent() - d1_solo_before, 2u)
        << "D1 never came out of suppression";
    EXPECT_TRUE(u_serves_lan());

    source_->send_stream(kGroup, 3, 20 * sim::kMillisecond);
    net_.run_for(1 * sim::kSecond);
    EXPECT_EQ(r1_->received_count(kGroup), 3u);
}

TEST_F(LanTimingTest, OverrideAfterDepartureIsNoOp) {
    // Only r1 is a member. After it departs and D1's membership ages out,
    // D1 still holds the (*,G) entry in its soft-state grace period — but
    // with an empty oif list an overheard peer prune must NOT trigger an
    // override join (§3.7: overriding for state nobody downstream wants
    // would rebuild the tree arm for no one).
    stack_->host_agent(*r1_).join(kGroup);
    net_.run_for(300 * sim::kMillisecond);
    ASSERT_TRUE(u_serves_lan());
    stack_->host_agent(*r1_).leave(kGroup);
    net_.run_for(600 * sim::kMillisecond); // membership times out; oifs empty
    {
        auto* wc = stack_->pim_at(*d1_).cache().find_wc(kGroup);
        ASSERT_NE(wc, nullptr) << "entry should linger in its deletion grace";
        ASSERT_TRUE(wc->oif_list_empty(net_.simulator().now()));
    }
    // D1's ageout prune rides its next periodic refresh; U holds it for
    // 2× override delay and — with nobody overriding — drops the LAN oif.
    // Run past that refresh so the quiescent state is established before
    // the injection (and the next refresh stays outside the test window).
    net_.run_for(150 * sim::kMillisecond);
    ASSERT_FALSE(u_serves_lan()) << "U never processed D1's ageout prune";

    // A peer's (*,G) prune appears on the transit LAN (as D2 would send).
    auto* wc_d1 = stack_->pim_at(*d1_).cache().find_wc(kGroup);
    ASSERT_NE(wc_d1, nullptr) << "entry should linger in its deletion grace";
    const int d1_if = d1_->ifindex_on(*transit_).value();
    const int d2_if = d2_->ifindex_on(*transit_).value();
    JoinPrune prune;
    prune.upstream_neighbor = wc_d1->upstream_neighbor().value_or(
        u_->interface(u_->ifindex_on(*transit_).value()).address);
    prune.holdtime_ms = 1800;
    prune.group = kGroup.address();
    prune.prunes = {AddressEntry{rp_->router_id(), EntryFlags{true, true}}};
    const auto d1_before = stack_->pim_at(*d1_).join_prune_messages_sent();
    inject_pim(*d1_, d1_if, d2_->interface(d2_if).address, prune.encode());
    net_.run_for(100 * sim::kMillisecond); // >> 2 × override delay (5 ms)
    EXPECT_EQ(stack_->pim_at(*d1_).join_prune_messages_sent(), d1_before)
        << "D1 sent an override join for state it no longer wants";
    EXPECT_FALSE(u_serves_lan());
}

// Handler-level fuzz: random bytes thrown at every control-plane entry
// point of a live PIM network must neither crash nor corrupt delivery.
TEST_F(PimEdgeTest, HandlersSurviveGarbageControlTraffic) {
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);

    std::mt19937 rng(99);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<int> len(0, 48);
    std::uniform_int_distribution<int> proto_pick(0, 4);
    const net::IpProto protos[] = {net::IpProto::kIgmp, net::IpProto::kCbt,
                                   net::IpProto::kOspf, net::IpProto::kRip,
                                   net::IpProto::kUdp};
    for (int trial = 0; trial < 2000; ++trial) {
        net::Packet packet;
        packet.src = net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(trial % 250 + 1));
        packet.dst = trial % 3 == 0 ? net::kAllRouters
                                    : net::Ipv4Address(224, 0, 0, 1);
        packet.proto = protos[proto_pick(rng)];
        packet.ttl = 1;
        packet.payload.resize(static_cast<std::size_t>(len(rng)));
        for (auto& b : packet.payload) b = static_cast<std::uint8_t>(byte(rng));
        // Bias half the trials toward plausible PIM/IGMP headers so the
        // deeper decode paths get exercised.
        if (trial % 2 == 0 && packet.payload.size() >= 2) {
            packet.payload[0] = 0x14;
            packet.payload[1] = static_cast<std::uint8_t>(trial % 5);
        }
        topo_.b->receive(trial % topo_.b->interface_count(), packet);
    }
    topo_.net.run_for(200 * sim::kMillisecond);

    // The network still works.
    topo_.source->send_stream(kGroup, 3, 20 * sim::kMillisecond);
    topo_.net.run_for(500 * sim::kMillisecond);
    EXPECT_EQ(topo_.receiver->received_count(kGroup), 3u);
    EXPECT_EQ(topo_.receiver->duplicate_count(), 0u);
}

} // namespace
} // namespace pimlib::test
