// Edge cases and adversarial inputs for PIM-SM: crafted join/prune
// messages, state machine corners (negative-cache conversion, footnote 12
// timer propagation, RP mismatch), RP-set precedence, and handler-level
// fuzzing of every control-plane entry point.
#include <gtest/gtest.h>

#include <random>

#include "pim/messages.hpp"
#include "test_util.hpp"
#include "topo/segment.hpp"

namespace pimlib::test {
namespace {

using pim::AddressEntry;
using pim::EntryFlags;
using pim::JoinPrune;

/// Delivers a crafted PIM packet to `router` as if it arrived on `ifindex`
/// from link-layer neighbor `from`.
void inject_pim(topo::Router& router, int ifindex, net::Ipv4Address from,
                const std::vector<std::uint8_t>& payload) {
    net::Packet packet;
    packet.src = from;
    packet.dst = net::kAllRouters;
    packet.proto = net::IpProto::kIgmp;
    packet.ttl = 1;
    packet.payload = payload;
    router.receive(ifindex, packet);
}

class PimEdgeTest : public ::testing::Test {
protected:
    PimEdgeTest() : stack_(topo_.net, fast_config()) {
        stack_.set_rp(kGroup, {topo_.c->router_id()});
        topo_.net.run_for(100 * sim::kMillisecond);
    }

    /// B's interface toward A and A's address on that link.
    std::pair<int, net::Ipv4Address> b_from_a() {
        auto* link = topo_.net.find_link(*topo_.a, *topo_.b);
        return {topo_.b->ifindex_on(*link).value(),
                topo_.a->interface(topo_.a->ifindex_on(*link).value()).address};
    }

    Fig3Topology topo_;
    scenario::PimSmStack stack_;
};

TEST_F(PimEdgeTest, TransitRouterBuildsSharedTreeFromJoinAlone) {
    // B has no RP mapping configured for this group; the WC join carries the
    // RP address, which is all a transit router needs (§3.2: the RP address
    // is "included in upstream join messages").
    const net::GroupAddress g{net::Ipv4Address(229, 7, 7, 7)};
    auto [ifindex, from] = b_from_a();
    JoinPrune msg;
    msg.upstream_neighbor = topo_.b->interface(ifindex).address;
    msg.holdtime_ms = 1800;
    msg.group = g.address();
    msg.joins = {AddressEntry{topo_.c->router_id(), EntryFlags{true, true}}};
    inject_pim(*topo_.b, ifindex, from, msg.encode());
    topo_.net.run_for(50 * sim::kMillisecond);

    auto* wc_b = stack_.pim_at(*topo_.b).cache().find_wc(g);
    ASSERT_NE(wc_b, nullptr);
    EXPECT_EQ(wc_b->source_or_rp(), topo_.c->router_id());
    EXPECT_TRUE(wc_b->has_oif(ifindex));
    // And it propagated: the RP terminated the join.
    EXPECT_NE(stack_.pim_at(*topo_.c).cache().find_wc(g), nullptr);
}

TEST_F(PimEdgeTest, WcJoinWithDifferentReachableRpKeepsCurrent) {
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);
    auto* wc_b = stack_.pim_at(*topo_.b).cache().find_wc(kGroup);
    ASSERT_NE(wc_b, nullptr);
    ASSERT_EQ(wc_b->source_or_rp(), topo_.c->router_id());

    // A rogue/partitioned downstream claims D is the RP. C is still
    // reachable, so B must not re-root its shared tree.
    auto [ifindex, from] = b_from_a();
    JoinPrune msg;
    msg.upstream_neighbor = topo_.b->interface(ifindex).address;
    msg.holdtime_ms = 1800;
    msg.group = kGroup.address();
    msg.joins = {AddressEntry{topo_.d->router_id(), EntryFlags{true, true}}};
    inject_pim(*topo_.b, ifindex, from, msg.encode());
    topo_.net.run_for(50 * sim::kMillisecond);
    EXPECT_EQ(stack_.pim_at(*topo_.b).cache().find_wc(kGroup)->source_or_rp(),
              topo_.c->router_id());
}

TEST_F(PimEdgeTest, PruneForUnknownStateIsHarmless) {
    auto [ifindex, from] = b_from_a();
    JoinPrune msg;
    msg.upstream_neighbor = topo_.b->interface(ifindex).address;
    msg.holdtime_ms = 1800;
    msg.group = kGroup.address();
    msg.prunes = {
        AddressEntry{topo_.source->address(), EntryFlags{false, false}}, // (S,G)
        AddressEntry{topo_.c->router_id(), EntryFlags{true, true}},      // (*,G)
    };
    inject_pim(*topo_.b, ifindex, from, msg.encode());
    topo_.net.run_for(50 * sim::kMillisecond);
    EXPECT_EQ(stack_.pim_at(*topo_.b).cache().size(), 0u);
}

TEST_F(PimEdgeTest, RpBitPruneWithoutSharedTreeIgnored) {
    // A negative cache only makes sense relative to an existing (*,G); an
    // RP-bit prune without one must not create state (§3.3).
    auto [ifindex, from] = b_from_a();
    JoinPrune msg;
    msg.upstream_neighbor = topo_.b->interface(ifindex).address;
    msg.holdtime_ms = 1800;
    msg.group = kGroup.address();
    msg.prunes = {AddressEntry{topo_.source->address(), EntryFlags{false, true}}};
    inject_pim(*topo_.b, ifindex, from, msg.encode());
    topo_.net.run_for(50 * sim::kMillisecond);
    EXPECT_EQ(stack_.pim_at(*topo_.b).cache().size(), 0u);
}

TEST_F(PimEdgeTest, RpBitPruneCreatesNegativeCacheAndPropagates) {
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);
    // Craft A's RP-bit prune at B (as if A had switched to the SPT and its
    // SPT iif diverged — which it does not in this topology, so we build
    // the message by hand).
    auto [ifindex, from] = b_from_a();
    JoinPrune msg;
    msg.upstream_neighbor = topo_.b->interface(ifindex).address;
    msg.holdtime_ms = 1800;
    msg.group = kGroup.address();
    msg.prunes = {AddressEntry{topo_.source->address(), EntryFlags{false, true}}};
    inject_pim(*topo_.b, ifindex, from, msg.encode());
    topo_.net.run_for(100 * sim::kMillisecond);

    auto* neg = stack_.pim_at(*topo_.b).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(neg, nullptr);
    EXPECT_TRUE(neg->rp_bit());
    EXPECT_TRUE(neg->is_pruned(ifindex));
    // Its iif follows the shared tree toward the RP.
    EXPECT_EQ(neg->iif(), stack_.pim_at(*topo_.b).cache().find_wc(kGroup)->iif());
    // Empty negative cache propagated the prune: the RP's (*,G) branch to B
    // lost this source... i.e. C now holds a negative cache too.
    auto* neg_c = stack_.pim_at(*topo_.c).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(neg_c, nullptr);

    // A subsequent (*,G) join on the pruned interface reinstates delivery
    // (join overrides, §3.7 semantics).
    JoinPrune rejoin;
    rejoin.upstream_neighbor = topo_.b->interface(ifindex).address;
    rejoin.holdtime_ms = 1800;
    rejoin.group = kGroup.address();
    rejoin.joins = {AddressEntry{topo_.c->router_id(), EntryFlags{true, true}}};
    inject_pim(*topo_.b, ifindex, from, rejoin.encode());
    EXPECT_FALSE(neg->is_pruned(ifindex));
    EXPECT_TRUE(neg->has_oif(ifindex));
}

TEST_F(PimEdgeTest, NegativeCacheConvertsToRealEntryOnSgJoin) {
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);
    auto [ifindex, from] = b_from_a();
    // First create the negative cache...
    JoinPrune prune;
    prune.upstream_neighbor = topo_.b->interface(ifindex).address;
    prune.holdtime_ms = 1800;
    prune.group = kGroup.address();
    prune.prunes = {AddressEntry{topo_.source->address(), EntryFlags{false, true}}};
    inject_pim(*topo_.b, ifindex, from, prune.encode());
    auto* entry = stack_.pim_at(*topo_.b).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(entry, nullptr);
    ASSERT_TRUE(entry->rp_bit());

    // ...then a genuine (S,G) join arrives: the entry becomes a real
    // shortest-path entry rooted toward the source.
    JoinPrune join;
    join.upstream_neighbor = topo_.b->interface(ifindex).address;
    join.holdtime_ms = 1800;
    join.group = kGroup.address();
    join.joins = {AddressEntry{topo_.source->address(), EntryFlags{false, false}}};
    inject_pim(*topo_.b, ifindex, from, join.encode());
    topo_.net.run_for(50 * sim::kMillisecond);

    entry = stack_.pim_at(*topo_.b).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(entry, nullptr);
    EXPECT_FALSE(entry->rp_bit());
    EXPECT_EQ(entry->iif(), topo_.ifindex_toward(*topo_.b, *topo_.d));
    EXPECT_TRUE(entry->has_oif(ifindex));
}

TEST_F(PimEdgeTest, Footnote12WcJoinRefreshesSgOifTimers) {
    // "When a timer is reset for an outgoing interface listed in (*,G)
    // entry, we should also reset the interface timers for all (S,G)
    // entries which contain that interface."
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);
    auto [ifindex, from] = b_from_a();
    // Give B an (S,G) entry whose only refresh will come from (*,G) joins.
    JoinPrune sg_join;
    sg_join.upstream_neighbor = topo_.b->interface(ifindex).address;
    sg_join.holdtime_ms = 1800;
    sg_join.group = kGroup.address();
    sg_join.joins = {AddressEntry{topo_.source->address(), EntryFlags{false, false}}};
    inject_pim(*topo_.b, ifindex, from, sg_join.encode());
    auto* sg = stack_.pim_at(*topo_.b).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(sg, nullptr);
    const sim::Time before = sg->oifs().at(ifindex).expires;

    topo_.net.run_for(100 * sim::kMillisecond);
    JoinPrune wc_join;
    wc_join.upstream_neighbor = topo_.b->interface(ifindex).address;
    wc_join.holdtime_ms = 1800;
    wc_join.group = kGroup.address();
    wc_join.joins = {AddressEntry{topo_.c->router_id(), EntryFlags{true, true}}};
    inject_pim(*topo_.b, ifindex, from, wc_join.encode());
    EXPECT_GT(sg->oifs().at(ifindex).expires, before);
}

TEST_F(PimEdgeTest, RpReachabilityOnWrongInterfaceIgnored) {
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);
    auto* wc_a = stack_.pim_at(*topo_.a).cache().find_wc(kGroup);
    ASSERT_NE(wc_a, nullptr);
    const sim::Time deadline = wc_a->rp_timer_deadline();

    // Spoofed reachability arriving on the receiver LAN (not the iif).
    pim::RpReachability msg{kGroup.address(), topo_.c->router_id(), 900000};
    net::Packet packet;
    packet.src = net::Ipv4Address(10, 0, 0, 99);
    packet.dst = net::kAllRouters;
    packet.proto = net::IpProto::kIgmp;
    packet.ttl = 1;
    packet.payload = msg.encode();
    topo_.a->receive(/*ifindex=*/0, packet);
    EXPECT_EQ(wc_a->rp_timer_deadline(), deadline);
}

TEST_F(PimEdgeTest, JoinForOwnAddressAtRpDoesNotLoop) {
    // The RP "recognizes its own address and does not attempt to send join
    // messages for this entry upstream" (§3.2).
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(500 * sim::kMillisecond);
    auto* wc_c = stack_.pim_at(*topo_.c).cache().find_wc(kGroup);
    ASSERT_NE(wc_c, nullptr);
    EXPECT_EQ(wc_c->iif(), -1);
    EXPECT_FALSE(wc_c->upstream_neighbor().has_value());
}

TEST(RpSetTest, PrecedenceExactLearnedRange) {
    pim::RpSet set;
    const net::GroupAddress g1{net::Ipv4Address(224, 1, 0, 5)};
    const net::Ipv4Address rp_static(192, 168, 0, 1);
    const net::Ipv4Address rp_learned(192, 168, 0, 2);
    const net::Ipv4Address rp_range(192, 168, 0, 3);
    const net::Ipv4Address rp_wide(192, 168, 0, 4);

    EXPECT_FALSE(set.has_mapping(g1));
    set.configure_range(net::Prefix{net::Ipv4Address(224, 0, 0, 0), 4}, {rp_wide});
    set.configure_range(net::Prefix{net::Ipv4Address(224, 1, 0, 0), 16}, {rp_range});
    EXPECT_EQ(set.rps_for(g1), std::vector<net::Ipv4Address>{rp_range}); // longest range
    const net::GroupAddress other{net::Ipv4Address(230, 0, 0, 1)};
    EXPECT_EQ(set.rps_for(other), std::vector<net::Ipv4Address>{rp_wide});

    set.learn(g1, {rp_learned});
    EXPECT_EQ(set.rps_for(g1), std::vector<net::Ipv4Address>{rp_learned});
    set.configure(g1, {rp_static});
    EXPECT_EQ(set.rps_for(g1), std::vector<net::Ipv4Address>{rp_static}); // config wins
}

TEST(PimConfigTest, ScalingIsUniform) {
    pim::PimConfig cfg;
    const pim::PimConfig scaled = cfg.scaled(0.5);
    EXPECT_EQ(scaled.join_prune_interval, cfg.join_prune_interval / 2);
    EXPECT_EQ(scaled.holdtime, cfg.holdtime / 2);
    EXPECT_EQ(scaled.query_interval, cfg.query_interval / 2);
    EXPECT_EQ(scaled.rp_timeout, cfg.rp_timeout / 2);
    EXPECT_EQ(scaled.override_delay, cfg.override_delay / 2);
    // Ratios preserved.
    EXPECT_EQ(scaled.holdtime, 3 * scaled.join_prune_interval);
}

// Handler-level fuzz: random bytes thrown at every control-plane entry
// point of a live PIM network must neither crash nor corrupt delivery.
TEST_F(PimEdgeTest, HandlersSurviveGarbageControlTraffic) {
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);

    std::mt19937 rng(99);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<int> len(0, 48);
    std::uniform_int_distribution<int> proto_pick(0, 4);
    const net::IpProto protos[] = {net::IpProto::kIgmp, net::IpProto::kCbt,
                                   net::IpProto::kOspf, net::IpProto::kRip,
                                   net::IpProto::kUdp};
    for (int trial = 0; trial < 2000; ++trial) {
        net::Packet packet;
        packet.src = net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(trial % 250 + 1));
        packet.dst = trial % 3 == 0 ? net::kAllRouters
                                    : net::Ipv4Address(224, 0, 0, 1);
        packet.proto = protos[proto_pick(rng)];
        packet.ttl = 1;
        packet.payload.resize(static_cast<std::size_t>(len(rng)));
        for (auto& b : packet.payload) b = static_cast<std::uint8_t>(byte(rng));
        // Bias half the trials toward plausible PIM/IGMP headers so the
        // deeper decode paths get exercised.
        if (trial % 2 == 0 && packet.payload.size() >= 2) {
            packet.payload[0] = 0x14;
            packet.payload[1] = static_cast<std::uint8_t>(trial % 5);
        }
        topo_.b->receive(trial % topo_.b->interface_count(), packet);
    }
    topo_.net.run_for(200 * sim::kMillisecond);

    // The network still works.
    topo_.source->send_stream(kGroup, 3, 20 * sim::kMillisecond);
    topo_.net.run_for(500 * sim::kMillisecond);
    EXPECT_EQ(topo_.receiver->received_count(kGroup), 3u);
    EXPECT_EQ(topo_.receiver->duplicate_count(), 0u);
}

} // namespace
} // namespace pimlib::test
