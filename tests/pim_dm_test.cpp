// PIM dense mode tests: RPF flood, truncated broadcast, prune, prune
// regrowth ("grow back"), graft on new membership.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace pimlib::test {
namespace {

// source—LAN—R1—R2—{R3—memberLAN, R4—emptyLAN}
struct DenseTopology {
    topo::Network net;
    topo::Router* r1;
    topo::Router* r2;
    topo::Router* r3;
    topo::Router* r4;
    topo::Host* source;
    topo::Host* member;
    topo::Segment* empty_lan;
    std::unique_ptr<unicast::OracleRouting> routing;

    DenseTopology() {
        r1 = &net.add_router("R1");
        r2 = &net.add_router("R2");
        r3 = &net.add_router("R3");
        r4 = &net.add_router("R4");
        auto& src_lan = net.add_lan({r1});
        source = &net.add_host("source", src_lan);
        net.add_link(*r1, *r2);
        net.add_link(*r2, *r3);
        net.add_link(*r2, *r4);
        auto& member_lan = net.add_lan({r3});
        member = &net.add_host("member", member_lan);
        empty_lan = &net.add_lan({r4});
        routing = std::make_unique<unicast::OracleRouting>(net);
    }
};

scenario::StackConfig dense_config() {
    scenario::StackConfig cfg = fast_config();
    // prune_lifetime 1.8 s, entry lifetime 1.8 s, queries 300 ms.
    return cfg;
}

class PimDmTest : public ::testing::Test {
protected:
    PimDmTest() : stack_(topo_.net, dense_config()) {
        topo_.net.run_for(100 * sim::kMillisecond); // neighbor discovery
    }
    DenseTopology topo_;
    scenario::PimDmStack stack_;
};

TEST_F(PimDmTest, FloodsToMembersAndPrunesLeaves) {
    stack_.host_agent(*topo_.member).join(kGroup);
    topo_.net.run_for(100 * sim::kMillisecond);

    topo_.source->send_data(kGroup);
    topo_.net.run_for(100 * sim::kMillisecond);
    EXPECT_EQ(topo_.member->received_count(kGroup), 1u);

    // R4's leaf LAN has neither neighbors nor members: truncated broadcast
    // keeps it clean, and R4 prunes itself off.
    EXPECT_EQ(topo_.net.stats().data_packets_on(topo_.empty_lan->id()), 0u);
    auto* sg_r4 = stack_.pim_at(*topo_.r4).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(sg_r4, nullptr);
    EXPECT_TRUE(sg_r4->oif_list_empty(topo_.net.simulator().now()));

    // After the prune propagates, R2 stops forwarding toward R4.
    topo_.source->send_data(kGroup);
    topo_.net.run_for(100 * sim::kMillisecond);
    auto* sg_r2 = stack_.pim_at(*topo_.r2).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(sg_r2, nullptr);
    const int r2_to_r4 = topo_.net.find_link(*topo_.r2, *topo_.r4)
                             ->attachments()[0].node == topo_.r2
                             ? topo_.net.find_link(*topo_.r2, *topo_.r4)->attachments()[0].ifindex
                             : topo_.net.find_link(*topo_.r2, *topo_.r4)->attachments()[1].ifindex;
    EXPECT_FALSE(sg_r2->has_oif(r2_to_r4));
    EXPECT_EQ(topo_.member->received_count(kGroup), 2u);
    EXPECT_EQ(topo_.member->duplicate_count(), 0u);
}

TEST_F(PimDmTest, PrunedBranchGrowsBack) {
    stack_.host_agent(*topo_.member).join(kGroup);
    topo_.net.run_for(100 * sim::kMillisecond);
    topo_.source->send_stream(kGroup, 2, 50 * sim::kMillisecond);
    topo_.net.run_for(300 * sim::kMillisecond);

    auto* sg_r2 = stack_.pim_at(*topo_.r2).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(sg_r2, nullptr);
    const auto link = topo_.net.find_link(*topo_.r2, *topo_.r4);
    const int r2_to_r4 = topo_.r2->ifindex_on(*link).value();
    EXPECT_FALSE(sg_r2->has_oif(r2_to_r4));

    // "Pruned branches will grow back after a time-out period" (§1.1) —
    // the prune lifetime is 1.8 s under the test scaling. Count data on the
    // pruned R2—R4 link across several lifetimes: regrowth lets a few
    // packets through periodically, re-pruning keeps it far below the
    // stream total.
    topo_.net.stats().reset_data_counters();
    topo_.source->send_stream(kGroup, 60, 100 * sim::kMillisecond);
    topo_.net.run_for(7 * sim::kSecond);
    const auto leaked = topo_.net.stats().data_packets_on(link->id());
    EXPECT_GE(leaked, 2u);  // grew back at least twice
    EXPECT_LT(leaked, 30u); // but stayed pruned most of the time
}

TEST_F(PimDmTest, GraftReattachesNewMemberQuickly) {
    stack_.host_agent(*topo_.member).join(kGroup);
    topo_.net.run_for(100 * sim::kMillisecond);
    topo_.source->send_stream(kGroup, 3, 50 * sim::kMillisecond);
    topo_.net.run_for(300 * sim::kMillisecond); // R4 branch pruned by now

    // A member appears behind R4: the graft must restore the branch well
    // before the prune would time out.
    auto& late = topo_.net.add_host("late", *topo_.empty_lan);
    igmp::HostAgent agent(late, dense_config().host);
    agent.join(kGroup);
    topo_.net.run_for(150 * sim::kMillisecond);
    topo_.source->send_data(kGroup);
    topo_.net.run_for(100 * sim::kMillisecond);
    EXPECT_EQ(late.received_count(kGroup), 1u);
}

TEST_F(PimDmTest, RpfCheckStopsLoops) {
    // Add a redundant link R3—R4 creating a cycle R2—R3—R4—R2.
    topo_.net.add_link(*topo_.r3, *topo_.r4);
    topo_.routing->recompute();
    topo_.net.run_for(200 * sim::kMillisecond);

    stack_.host_agent(*topo_.member).join(kGroup);
    topo_.net.run_for(100 * sim::kMillisecond);
    topo_.source->send_data(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);
    // Exactly one delivery despite the cycle; RPF discarded the echoes.
    EXPECT_EQ(topo_.member->received_count(kGroup), 1u);
    EXPECT_EQ(topo_.member->duplicate_count(), 0u);
    EXPECT_GT(topo_.net.stats().data_dropped_iif(), 0u);
}

TEST_F(PimDmTest, EntryExpiresWhenSourceStops) {
    stack_.host_agent(*topo_.member).join(kGroup);
    topo_.net.run_for(100 * sim::kMillisecond);
    topo_.source->send_data(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);
    ASSERT_NE(stack_.pim_at(*topo_.r1).cache().find_sg(topo_.source->address(), kGroup),
              nullptr);
    topo_.net.run_for(5 * sim::kSecond);
    EXPECT_EQ(stack_.pim_at(*topo_.r1).cache().find_sg(topo_.source->address(), kGroup),
              nullptr);
}

} // namespace
} // namespace pimlib::test
