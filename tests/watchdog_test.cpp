// Online watchdog tests. The headline scenario: the seeded
// skip-spt-bit-handshake mutation (prune the shared-tree arm before SPT
// data arrives, §3.3) must be caught by the lan-delivery watchdog during
// an ordinary simulation run — no state-space checker involved — with a
// provenance post-mortem attached to the violation. The same run without
// the mutation stays quiet, and set_loss_expected() disarms the gap
// detector for scripts that inject loss on purpose.
#include <gtest/gtest.h>

#include <memory>

#include "check/watchdog.hpp"
#include "provenance/provenance.hpp"
#include "scenario/stacks.hpp"
#include "test_util.hpp"

namespace pimlib::test {
namespace {

/// The walkthrough pentagon (same shape pimcheck explores): A reaches the
/// source via E-B (21 ms) but the RP directly (1 ms), so the SPT diverges
/// from the shared tree and the switchover handshake has a real ~20 ms
/// in-flight window — the packets the mutation deterministically loses.
struct PentagonWorld {
    topo::Network net;
    topo::Router* a = nullptr;
    topo::Router* b = nullptr;
    topo::Router* c = nullptr; // RP
    topo::Router* d = nullptr;
    topo::Router* e = nullptr;
    topo::Host* receiver = nullptr;
    topo::Host* source = nullptr;
    topo::Host* viewer = nullptr;
    std::unique_ptr<unicast::OracleRouting> routing;
    std::unique_ptr<provenance::Recorder> recorder;
    std::unique_ptr<scenario::PimSmStack> stack;
    std::unique_ptr<check::Watchdog> watchdog;

    explicit PentagonWorld(bool mutate) {
        a = &net.add_router("A");
        b = &net.add_router("B");
        c = &net.add_router("C");
        d = &net.add_router("D");
        e = &net.add_router("E");
        net.add_link(*a, *e, 1 * sim::kMillisecond, 1);
        net.add_link(*e, *b, 20 * sim::kMillisecond, 1);
        net.add_link(*a, *c, 1 * sim::kMillisecond, 1);
        net.add_link(*b, *c, 1 * sim::kMillisecond, 2);
        net.add_link(*c, *d, 1 * sim::kMillisecond, 1);
        auto& lan0 = net.add_lan({a});
        auto& lan1 = net.add_lan({b});
        auto& lan2 = net.add_lan({d});
        receiver = &net.add_host("receiver", lan0);
        source = &net.add_host("source", lan1);
        viewer = &net.add_host("viewer", lan2);
        routing = std::make_unique<unicast::OracleRouting>(net);

        recorder = std::make_unique<provenance::Recorder>(
            net.telemetry().registry());
        net.set_provenance(recorder.get());

        scenario::StackConfig cfg = fast_config();
        cfg.pim.mutate_skip_spt_bit_handshake = mutate;
        stack = std::make_unique<scenario::PimSmStack>(net, cfg);
        stack->set_rp(kGroup, {c->router_id()});
        stack->set_spt_policy(pim::SptPolicy::immediate());

        watchdog = std::make_unique<check::Watchdog>(
            net, [this](const topo::Router& r) { return stack->cache_of(r); });
        watchdog->set_recorder(recorder.get());
        watchdog->start();
    }

    /// Joins, one 12-packet burst through register + switchover, then
    /// enough quiet time for the gap grace window to expire.
    void run() {
        net.run_for(120 * sim::kMillisecond);
        stack->host_agent(*receiver).join(kGroup);
        net.run_for(10 * sim::kMillisecond);
        stack->host_agent(*viewer).join(kGroup);
        source->send_stream(kGroup, 12, 10 * sim::kMillisecond,
                            120 * sim::kMillisecond);
        net.run_for(1200 * sim::kMillisecond);
    }
};

TEST(Watchdog, CatchesSkipSptBitHandshakeInOrdinaryRun) {
    PentagonWorld world(/*mutate=*/true);
    world.run();

    const auto& violations = world.watchdog->violations();
    ASSERT_FALSE(violations.empty())
        << "the lan-delivery watchdog missed the switchover-window loss";
    const check::WatchdogViolation& v = violations.front();
    EXPECT_EQ(v.watchdog, "lan-delivery");
    EXPECT_NE(v.detail.find("never received seq(s)"), std::string::npos)
        << v.detail;
    // The provenance post-mortem rode along: the full flight-recorder JSON
    // for a first finding, so the loss is diagnosable without a rerun.
    EXPECT_FALSE(v.postmortem_json.empty());
    EXPECT_NE(v.postmortem_json.find("\"records\""), std::string::npos);

    // The violation also surfaced through the metrics registry and hub.
    EXPECT_GE(world.net.telemetry()
                  .registry()
                  .counter("pimlib_watchdog_violations_total",
                           {{"watchdog", "lan-delivery"}})
                  .value(),
              1u);
}

TEST(Watchdog, CleanRunStaysQuiet) {
    PentagonWorld world(/*mutate=*/false);
    world.run();
    EXPECT_TRUE(world.watchdog->violations().empty())
        << world.watchdog->dump();
    EXPECT_GT(world.watchdog->entries_scanned(), 0u);
}

TEST(Watchdog, LossExpectedDisarmsGapDetector) {
    PentagonWorld world(/*mutate=*/true);
    world.watchdog->set_loss_expected(true);
    world.run();
    EXPECT_TRUE(world.watchdog->violations().empty())
        << world.watchdog->dump();
}

} // namespace
} // namespace pimlib::test
