// PIM sparse mode behavior tests on the paper's Fig. 3–5 topology: shared
// tree setup (§3.2), the register path, SPT switchover (§3.3), soft-state
// expiry (§3.6), RP failover (§3.9), and unicast rerouting (§3.8).
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace pimlib::test {
namespace {

using pim::SptPolicy;

class PimSmTest : public ::testing::Test {
protected:
    PimSmTest() : stack_(topo_.net, fast_config()) {
        stack_.set_rp(kGroup, {topo_.c->router_id()});
        stack_.set_spt_policy(SptPolicy::never());
        // Let PIM queries and IGMP settle (neighbors, DR election).
        topo_.net.run_for(100 * sim::kMillisecond);
    }

    void join_receiver() {
        stack_.host_agent(*topo_.receiver).join(kGroup);
        topo_.net.run_for(200 * sim::kMillisecond);
    }

    Fig3Topology topo_;
    scenario::PimSmStack stack_;
};

TEST_F(PimSmTest, ReceiverJoinBuildsSharedTreeState) {
    join_receiver();

    // Fig. 4 expectations, hop by hop.
    auto* wc_a = stack_.pim_at(*topo_.a).cache().find_wc(kGroup);
    ASSERT_NE(wc_a, nullptr);
    EXPECT_TRUE(wc_a->wildcard());
    EXPECT_EQ(wc_a->source_or_rp(), topo_.c->router_id()); // RP in source slot
    EXPECT_EQ(wc_a->iif(), topo_.ifindex_toward(*topo_.a, *topo_.b));
    EXPECT_TRUE(wc_a->has_oif(0)); // the receiver LAN
    ASSERT_NE(wc_a->find_oif(0), nullptr);
    EXPECT_TRUE(wc_a->find_oif(0)->pinned);

    auto* wc_b = stack_.pim_at(*topo_.b).cache().find_wc(kGroup);
    ASSERT_NE(wc_b, nullptr);
    EXPECT_EQ(wc_b->iif(), topo_.ifindex_toward(*topo_.b, *topo_.c));
    EXPECT_TRUE(wc_b->has_oif(topo_.ifindex_toward(*topo_.b, *topo_.a)));

    // "The RP recognizes its own address ... incoming interface is null."
    auto* wc_c = stack_.pim_at(*topo_.c).cache().find_wc(kGroup);
    ASSERT_NE(wc_c, nullptr);
    EXPECT_EQ(wc_c->iif(), -1);
    EXPECT_TRUE(wc_c->has_oif(topo_.ifindex_toward(*topo_.c, *topo_.b)));

    // Off-tree router D carries zero state: the sparse-mode selling point.
    EXPECT_EQ(stack_.pim_at(*topo_.d).cache().size(), 0u);
}

TEST_F(PimSmTest, SenderRendezvousesViaRegister) {
    join_receiver();
    topo_.source->send_data(kGroup);
    topo_.net.run_for(300 * sim::kMillisecond);

    // The register reached the RP, which joined toward the source (Fig. 3).
    EXPECT_EQ(topo_.receiver->received_count(kGroup), 1u);
    auto& rp = stack_.pim_at(*topo_.c);
    auto* sg_rp = rp.cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(sg_rp, nullptr);
    EXPECT_EQ(sg_rp->iif(), topo_.ifindex_toward(*topo_.c, *topo_.b));
    EXPECT_EQ(rp.active_sources(kGroup).size(), 1u);

    // The source DR now has (S,G) state from the RP's join.
    auto* sg_d = stack_.pim_at(*topo_.d).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(sg_d, nullptr);
}

TEST_F(PimSmTest, NativePathReplacesRegisters) {
    join_receiver();
    const auto before = topo_.net.stats().control_messages("pim-register");
    topo_.source->send_stream(kGroup, 20, 20 * sim::kMillisecond);
    topo_.net.run_for(1 * sim::kSecond);
    const auto total = topo_.net.stats().control_messages("pim-register");

    EXPECT_EQ(topo_.receiver->received_count(kGroup), 20u);
    EXPECT_EQ(topo_.receiver->duplicate_count(), 0u);
    // Only the first few packets (one round trip to the RP and back) ride
    // registers; the rest flow natively.
    EXPECT_LT(total - before, 6u);
}

TEST_F(PimSmTest, SptSwitchoverPrunesTowardRpAtDivergence) {
    stack_.set_spt_policy(SptPolicy::immediate());
    join_receiver();
    topo_.source->send_stream(kGroup, 30, 20 * sim::kMillisecond);
    topo_.net.run_for(1500 * sim::kMillisecond);

    // No loss, no duplication across the shared→SPT transition (§3.3's
    // SPT-bit machinery).
    EXPECT_EQ(topo_.receiver->received_count(kGroup), 30u);
    EXPECT_EQ(topo_.receiver->duplicate_count(), 0u);

    // A switched: (S,G) with SPT bit, iif toward B (same as shared iif, so A
    // itself sends no prune).
    auto* sg_a = stack_.pim_at(*topo_.a).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(sg_a, nullptr);
    EXPECT_FALSE(sg_a->rp_bit());
    EXPECT_TRUE(sg_a->spt_bit());
    EXPECT_EQ(sg_a->iif(), topo_.ifindex_toward(*topo_.a, *topo_.b));

    // B is the divergence point (Fig. 5 action 5): SPT iif toward D, shared
    // iif toward C, so B pruned the source off the RP tree...
    auto* sg_b = stack_.pim_at(*topo_.b).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(sg_b, nullptr);
    EXPECT_TRUE(sg_b->spt_bit());
    EXPECT_EQ(sg_b->iif(), topo_.ifindex_toward(*topo_.b, *topo_.d));
    // ...and the RP no longer forwards this source to B.
    auto* sg_c = stack_.pim_at(*topo_.c).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(sg_c, nullptr);
    EXPECT_TRUE(sg_c->oif_list_empty(topo_.net.simulator().now()));
}

TEST_F(PimSmTest, ThresholdPolicyDelaysSwitch) {
    stack_.set_spt_policy(SptPolicy::threshold(10, 10 * sim::kSecond));
    join_receiver();
    topo_.source->send_stream(kGroup, 5, 20 * sim::kMillisecond);
    topo_.net.run_for(500 * sim::kMillisecond);
    EXPECT_EQ(topo_.receiver->received_count(kGroup), 5u);
    // Below threshold: A must still be on the shared tree only.
    auto* sg_a = stack_.pim_at(*topo_.a).cache().find_sg(topo_.source->address(), kGroup);
    EXPECT_EQ(sg_a, nullptr);

    topo_.source->send_stream(kGroup, 10, 20 * sim::kMillisecond);
    topo_.net.run_for(500 * sim::kMillisecond);
    sg_a = stack_.pim_at(*topo_.a).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(sg_a, nullptr);
    EXPECT_TRUE(sg_a->spt_bit());
}

TEST_F(PimSmTest, NeverPolicyStaysOnSharedTree) {
    join_receiver();
    topo_.source->send_stream(kGroup, 20, 20 * sim::kMillisecond);
    topo_.net.run_for(1 * sim::kSecond);
    EXPECT_EQ(topo_.receiver->received_count(kGroup), 20u);
    EXPECT_EQ(stack_.pim_at(*topo_.a).cache().find_sg(topo_.source->address(), kGroup),
              nullptr);
}

TEST_F(PimSmTest, MembershipTimeoutTearsDownTree) {
    join_receiver();
    topo_.source->send_data(kGroup);
    topo_.net.run_for(300 * sim::kMillisecond);
    EXPECT_EQ(topo_.receiver->received_count(kGroup), 1u);

    stack_.host_agent(*topo_.receiver).leave(kGroup);
    // Membership ages out (250 ms), prunes propagate, entries expire at
    // 3 × refresh (1.8 s).
    topo_.net.run_for(4 * sim::kSecond);
    EXPECT_EQ(stack_.pim_at(*topo_.a).cache().find_wc(kGroup), nullptr);
    EXPECT_EQ(stack_.pim_at(*topo_.b).cache().find_wc(kGroup), nullptr);

    topo_.receiver->clear_received();
    topo_.source->send_data(kGroup);
    topo_.net.run_for(300 * sim::kMillisecond);
    EXPECT_EQ(topo_.receiver->received_count(kGroup), 0u);
}

TEST_F(PimSmTest, SourceSilenceExpiresRpState) {
    join_receiver();
    topo_.source->send_data(kGroup);
    topo_.net.run_for(300 * sim::kMillisecond);
    ASSERT_NE(stack_.pim_at(*topo_.c).cache().find_sg(topo_.source->address(), kGroup),
              nullptr);
    // No data for many refresh periods: the RP reaps the source.
    topo_.net.run_for(5 * sim::kSecond);
    EXPECT_EQ(stack_.pim_at(*topo_.c).cache().find_sg(topo_.source->address(), kGroup),
              nullptr);
}

TEST_F(PimSmTest, GroupWithoutRpMappingIsIgnored) {
    const net::GroupAddress unmapped{net::Ipv4Address(225, 9, 9, 9)};
    stack_.host_agent(*topo_.receiver).join(unmapped);
    topo_.net.run_for(500 * sim::kMillisecond);
    // "The router will assume that the group is not to be supported with PIM
    // sparse mode" (§3.1).
    EXPECT_EQ(stack_.pim_at(*topo_.a).cache().find_wc(unmapped), nullptr);
}

TEST_F(PimSmTest, RpMappingLearnedFromHostMessage) {
    const net::GroupAddress dynamic{net::Ipv4Address(226, 2, 2, 2)};
    stack_.host_agent(*topo_.receiver).set_rp_mapping(dynamic, {topo_.c->router_id()});
    stack_.host_agent(*topo_.receiver).join(dynamic);
    topo_.net.run_for(300 * sim::kMillisecond);
    EXPECT_NE(stack_.pim_at(*topo_.a).cache().find_wc(dynamic), nullptr);
}

TEST_F(PimSmTest, UnicastRouteChangeRehomesTree) {
    // Add an alternate path A—E—C (higher metric, so unused until B fails).
    auto& e = topo_.net.add_router("E");
    topo_.net.add_link(*topo_.a, e, sim::kMillisecond, /*metric=*/5);
    topo_.net.add_link(e, *topo_.c, sim::kMillisecond, /*metric=*/5);
    topo_.routing->recompute();
    scenario::StackConfig cfg = fast_config();
    igmp::RouterAgent igmp_e(e, cfg.igmp);
    pim::PimSmRouter pim_e(e, igmp_e, cfg.pim);
    pim_e.rp_set().configure(kGroup, {topo_.c->router_id()});
    topo_.net.run_for(100 * sim::kMillisecond);

    join_receiver();
    const int old_iif = topo_.ifindex_toward(*topo_.a, *topo_.b);
    ASSERT_EQ(stack_.pim_at(*topo_.a).cache().find_wc(kGroup)->iif(), old_iif);

    // Fail the A—B link: A's only path to the RP is now via E.
    topo_.net.find_link(*topo_.a, *topo_.b)->set_up(false);
    topo_.routing->recompute();
    topo_.net.run_for(1 * sim::kSecond);

    auto* wc_a = stack_.pim_at(*topo_.a).cache().find_wc(kGroup);
    ASSERT_NE(wc_a, nullptr);
    EXPECT_EQ(wc_a->iif(), topo_.ifindex_toward(*topo_.a, e));

    // Data still arrives (register → RP → E → A).
    topo_.source->send_stream(kGroup, 5, 20 * sim::kMillisecond);
    topo_.net.run_for(1 * sim::kSecond);
    EXPECT_GE(topo_.receiver->received_count(kGroup), 5u);
}

TEST_F(PimSmTest, SourceAndReceiverOnSameLanDeliverDirectly) {
    auto& lan0 = topo_.net.segment(0);
    auto& local_source = topo_.net.add_host("local-source", lan0);
    join_receiver();
    local_source.send_data(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);
    // LAN multicast reaches the member directly, exactly once.
    EXPECT_EQ(topo_.receiver->received_count_from(local_source.address(), kGroup), 1u);
    EXPECT_EQ(topo_.receiver->duplicate_count(), 0u);
}

class PimSmRpFailoverTest : public ::testing::Test {
protected:
    // receiver—A—B—C(RP1), B—E(RP2), B—D—source
    PimSmRpFailoverTest() {
        a = &net.add_router("A");
        b = &net.add_router("B");
        c = &net.add_router("C");
        d = &net.add_router("D");
        e = &net.add_router("E");
        auto& lan0 = net.add_lan({a});
        receiver = &net.add_host("receiver", lan0);
        net.add_link(*a, *b);
        net.add_link(*b, *c);
        net.add_link(*b, *d);
        net.add_link(*b, *e);
        auto& lan1 = net.add_lan({d});
        source = &net.add_host("source", lan1);
        routing = std::make_unique<unicast::OracleRouting>(net);
        stack = std::make_unique<scenario::PimSmStack>(net, fast_config());
        stack->set_rp(kGroup, {c->router_id(), e->router_id()});
        stack->set_spt_policy(SptPolicy::never());
        net.run_for(100 * sim::kMillisecond);
    }

    topo::Network net;
    topo::Router* a;
    topo::Router* b;
    topo::Router* c;
    topo::Router* d;
    topo::Router* e;
    topo::Host* receiver;
    topo::Host* source;
    std::unique_ptr<unicast::OracleRouting> routing;
    std::unique_ptr<scenario::PimSmStack> stack;
};

TEST_F(PimSmRpFailoverTest, SendersRegisterWithAllRps) {
    stack->host_agent(*receiver).join(kGroup);
    net.run_for(200 * sim::kMillisecond);
    source->send_data(kGroup);
    net.run_for(300 * sim::kMillisecond);
    // "Each source registers and sends data packets toward each of the RPs"
    // (§3.9).
    EXPECT_EQ(stack->pim_at(*c).active_sources(kGroup).size(), 1u);
    EXPECT_EQ(stack->pim_at(*e).active_sources(kGroup).size(), 1u);
    // Receiver joined only the primary RP.
    EXPECT_EQ(stack->pim_at(*a).cache().find_wc(kGroup)->source_or_rp(),
              c->router_id());
    EXPECT_EQ(receiver->received_count(kGroup), 1u);
}

TEST_F(PimSmRpFailoverTest, RpDeathTriggersFailoverToAlternate) {
    stack->host_agent(*receiver).join(kGroup);
    net.run_for(200 * sim::kMillisecond);
    ASSERT_EQ(stack->pim_at(*a).cache().find_wc(kGroup)->source_or_rp(), c->router_id());

    // Kill the primary RP. RP-reachability messages stop; after the RP
    // timeout A joins toward E (§3.9).
    net.find_link(*b, *c)->set_up(false);
    routing->recompute();
    net.run_for(3 * sim::kSecond);

    auto* wc_a = stack->pim_at(*a).cache().find_wc(kGroup);
    ASSERT_NE(wc_a, nullptr);
    EXPECT_EQ(wc_a->source_or_rp(), e->router_id());

    // Data flows via the new RP; "sources do not need to take special
    // action" (§3.9).
    source->send_stream(kGroup, 5, 20 * sim::kMillisecond);
    net.run_for(1 * sim::kSecond);
    EXPECT_GE(receiver->received_count(kGroup), 5u);
}

// Aggregated periodic refresh (JoinPruneBundle): with many groups sharing
// one upstream neighbor, the per-tick message count collapses to one while
// downstream soft state stays refreshed exactly as with per-group messages.
TEST(PimSmAggregation, BundledRefreshKeepsStateAliveWithFewerMessages) {
    const std::vector<net::GroupAddress> groups = {
        net::GroupAddress{net::Ipv4Address(224, 1, 1, 1)},
        net::GroupAddress{net::Ipv4Address(224, 1, 1, 2)},
        net::GroupAddress{net::Ipv4Address(224, 1, 1, 3)},
        net::GroupAddress{net::Ipv4Address(224, 1, 1, 4)},
        net::GroupAddress{net::Ipv4Address(224, 1, 1, 5)},
    };
    struct Outcome {
        std::uint64_t refresh_messages = 0;
        std::size_t live_groups_at_b = 0;
    };
    auto run_case = [&](bool aggregate) {
        Fig3Topology topo;
        scenario::StackConfig cfg = fast_config();
        cfg.pim.aggregate_refresh = aggregate;
        scenario::PimSmStack stack(topo.net, cfg);
        for (net::GroupAddress g : groups) stack.set_rp(g, {topo.c->router_id()});
        stack.set_spt_policy(SptPolicy::never());
        topo.net.run_for(100 * sim::kMillisecond);
        for (net::GroupAddress g : groups) stack.host_agent(*topo.receiver).join(g);
        topo.net.run_for(200 * sim::kMillisecond);

        Outcome out;
        const std::uint64_t before = stack.pim_at(*topo.a).join_prune_messages_sent();
        // Three periodic refresh ticks (600 ms each at the 100× compression).
        topo.net.run_for(1850 * sim::kMillisecond);
        out.refresh_messages = stack.pim_at(*topo.a).join_prune_messages_sent() - before;
        const sim::Time now = topo.net.simulator().now();
        const int oif_to_a = topo.ifindex_toward(*topo.b, *topo.a);
        for (net::GroupAddress g : groups) {
            auto* wc = stack.pim_at(*topo.b).cache().find_wc(g);
            if (wc != nullptr && wc->find_oif(oif_to_a) != nullptr &&
                wc->find_oif(oif_to_a)->alive(now)) {
                ++out.live_groups_at_b;
            }
        }
        return out;
    };

    const Outcome bundled = run_case(true);
    const Outcome per_group = run_case(false);

    // Both modes keep every group's state alive on the upstream router —
    // holdtime is 3× the refresh interval, so surviving three ticks proves
    // the refreshes landed.
    EXPECT_EQ(bundled.live_groups_at_b, groups.size());
    EXPECT_EQ(per_group.live_groups_at_b, groups.size());

    // One message per (interface, neighbor) per tick versus one per group.
    EXPECT_EQ(bundled.refresh_messages, 3u);
    EXPECT_EQ(per_group.refresh_messages, 3u * groups.size());
}

} // namespace
} // namespace pimlib::test
