// IGMP tests: message codecs, report/query exchange, LAN report
// suppression, membership expiry, querier election, RP-map distribution.
#include <gtest/gtest.h>

#include "igmp/host_agent.hpp"
#include "igmp/messages.hpp"
#include "igmp/router_agent.hpp"
#include "test_util.hpp"
#include "topo/segment.hpp"

namespace pimlib::test {
namespace {

TEST(IgmpMessages, QueryRoundTrip) {
    const igmp::Query general{net::Ipv4Address{}};
    auto decoded = igmp::Query::decode(general.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->group.is_unspecified());

    const igmp::Query specific{kGroup.address()};
    decoded = igmp::Query::decode(specific.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->group, kGroup.address());
}

TEST(IgmpMessages, ReportRoundTrip) {
    const igmp::Report report{kGroup.address()};
    auto decoded = igmp::Report::decode(report.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->group, kGroup.address());
    // A report does not decode as a query and vice versa.
    EXPECT_FALSE(igmp::Query::decode(report.encode()).has_value());
}

TEST(IgmpMessages, RpMapRoundTrip) {
    igmp::RpMapReport map;
    map.group = kGroup.address();
    map.rps = {net::Ipv4Address(192, 168, 0, 1), net::Ipv4Address(192, 168, 0, 9)};
    auto decoded = igmp::RpMapReport::decode(map.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->group, map.group);
    EXPECT_EQ(decoded->rps, map.rps);
    const auto bytes = map.encode();
    EXPECT_FALSE(igmp::RpMapReport::decode({bytes.data(), bytes.size() - 3}).has_value());
}

struct IgmpLan {
    topo::Network net;
    topo::Router* router;
    topo::Segment* lan;
    igmp::RouterConfig router_cfg;
    igmp::HostConfig host_cfg;

    IgmpLan() {
        router = &net.add_router("r");
        lan = &net.add_lan({router});
        router_cfg.query_interval = 100 * sim::kMillisecond;
        router_cfg.membership_timeout = 250 * sim::kMillisecond;
        router_cfg.other_querier_timeout = 250 * sim::kMillisecond;
        host_cfg.query_response_max = 10 * sim::kMillisecond;
        host_cfg.unsolicited_report_interval = sim::kMillisecond;
    }
};

TEST(IgmpAgents, JoinNotifiesRouterOnce) {
    IgmpLan t;
    igmp::RouterAgent agent(*t.router, t.router_cfg);
    auto& host = t.net.add_host("h", *t.lan);
    igmp::HostAgent hagent(host, t.host_cfg);

    std::vector<std::pair<net::GroupAddress, bool>> events;
    agent.subscribe([&](int ifindex, net::GroupAddress g, bool present) {
        EXPECT_EQ(ifindex, 0);
        events.emplace_back(g, present);
    });
    hagent.join(kGroup);
    t.net.run_for(500 * sim::kMillisecond);
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.front(), std::make_pair(kGroup, true));
    // Membership kept alive by query/report: exactly one "joined" event.
    EXPECT_EQ(events.size(), 1u);
    EXPECT_TRUE(agent.has_members(0, kGroup));
    EXPECT_EQ(agent.groups_on(0).size(), 1u);
    EXPECT_EQ(agent.member_interfaces(kGroup), std::vector<int>{0});
}

TEST(IgmpAgents, LeaveAgesOutMembership) {
    IgmpLan t;
    igmp::RouterAgent agent(*t.router, t.router_cfg);
    auto& host = t.net.add_host("h", *t.lan);
    igmp::HostAgent hagent(host, t.host_cfg);

    std::vector<bool> events;
    agent.subscribe([&](int, net::GroupAddress, bool present) { events.push_back(present); });
    hagent.join(kGroup);
    t.net.run_for(300 * sim::kMillisecond);
    hagent.leave(kGroup);
    t.net.run_for(600 * sim::kMillisecond);
    ASSERT_GE(events.size(), 2u);
    EXPECT_TRUE(events.front());
    EXPECT_FALSE(events.back());
    EXPECT_FALSE(agent.has_members(0, kGroup));
}

TEST(IgmpAgents, ReportSuppressionOnSharedLan) {
    IgmpLan t;
    igmp::RouterAgent agent(*t.router, t.router_cfg);
    auto& h1 = t.net.add_host("h1", *t.lan);
    auto& h2 = t.net.add_host("h2", *t.lan);
    auto& h3 = t.net.add_host("h3", *t.lan);
    igmp::HostAgent a1(h1, t.host_cfg);
    igmp::HostAgent a2(h2, t.host_cfg);
    igmp::HostAgent a3(h3, t.host_cfg);
    a1.join(kGroup);
    a2.join(kGroup);
    a3.join(kGroup);
    t.net.run_for(sim::kSecond);
    // All report unsolicited (2 each); afterwards each query round elicits
    // roughly ONE report thanks to suppression — not one per member.
    const auto igmp_messages = t.net.stats().control_messages("igmp");
    // ~10 query rounds in 1s. Unsuppressed would give ~30 reports + queries.
    EXPECT_LT(igmp_messages, 30u);
    EXPECT_TRUE(agent.has_members(0, kGroup));
}

TEST(IgmpAgents, QuerierElectionLowestAddressWins) {
    IgmpLan t;
    auto& r2 = t.net.add_router("r2");
    t.net.attach_to_lan(r2, *t.lan);
    igmp::RouterAgent a1(*t.router, t.router_cfg); // 10.0.0.1 — lower, wins
    igmp::RouterAgent a2(r2, t.router_cfg);        // 10.0.0.2 — silenced
    t.net.run_for(sim::kSecond);
    const auto total = t.net.stats().control_messages("igmp");
    // Two unsuppressed queriers would send ~20 queries in 1 s; election
    // should roughly halve that.
    EXPECT_LT(total, 16u);
}

TEST(IgmpAgents, RpMapReachesRouterCallback) {
    IgmpLan t;
    igmp::RouterAgent agent(*t.router, t.router_cfg);
    auto& host = t.net.add_host("h", *t.lan);
    igmp::HostAgent hagent(host, t.host_cfg);

    net::GroupAddress seen_group;
    std::vector<net::Ipv4Address> seen_rps;
    agent.set_rp_map_callback([&](net::GroupAddress g, const std::vector<net::Ipv4Address>& rps) {
        seen_group = g;
        seen_rps = rps;
    });
    const net::Ipv4Address rp(192, 168, 0, 42);
    hagent.set_rp_mapping(kGroup, {rp});
    t.net.run_for(100 * sim::kMillisecond);
    EXPECT_EQ(seen_group, kGroup);
    EXPECT_EQ(seen_rps, std::vector<net::Ipv4Address>{rp});
}

TEST(IgmpAgents, MultipleGroupsTrackedIndependently) {
    IgmpLan t;
    igmp::RouterAgent agent(*t.router, t.router_cfg);
    auto& host = t.net.add_host("h", *t.lan);
    igmp::HostAgent hagent(host, t.host_cfg);
    const net::GroupAddress g2{net::Ipv4Address(224, 2, 2, 2)};
    hagent.join(kGroup);
    hagent.join(g2);
    t.net.run_for(300 * sim::kMillisecond);
    EXPECT_TRUE(agent.has_members(0, kGroup));
    EXPECT_TRUE(agent.has_members(0, g2));
    hagent.leave(g2);
    t.net.run_for(600 * sim::kMillisecond);
    EXPECT_TRUE(agent.has_members(0, kGroup));
    EXPECT_FALSE(agent.has_members(0, g2));
}

} // namespace
} // namespace pimlib::test
