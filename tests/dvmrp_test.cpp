// DVMRP baseline tests: message codecs, truncated RPF broadcast, prune,
// regrowth, graft — and operation over the distance-vector unicast provider
// (the RIP-like routing real DVMRP embeds).
#include <gtest/gtest.h>

#include "dvmrp/dvmrp.hpp"
#include "test_util.hpp"
#include "topo/segment.hpp"
#include "unicast/distance_vector.hpp"

namespace pimlib::test {
namespace {

TEST(DvmrpMessages, CodecRoundTrips) {
    const dvmrp::Probe probe{35000};
    auto p = dvmrp::Probe::decode(probe.encode());
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->holdtime_ms, 35000u);

    const dvmrp::PruneMsg prune{net::Ipv4Address(10, 0, 1, 3), kGroup.address(), 120000};
    auto pr = dvmrp::PruneMsg::decode(prune.encode());
    ASSERT_TRUE(pr.has_value());
    EXPECT_EQ(pr->source, prune.source);
    EXPECT_EQ(pr->group, prune.group);
    EXPECT_EQ(pr->lifetime_ms, prune.lifetime_ms);

    const dvmrp::GraftMsg graft{net::Ipv4Address(10, 0, 1, 3), kGroup.address()};
    auto g = dvmrp::GraftMsg::decode(graft.encode());
    ASSERT_TRUE(g.has_value());
    EXPECT_EQ(g->source, graft.source);
    EXPECT_EQ(g->group, graft.group);

    // Cross-decoding rejected; truncations rejected.
    EXPECT_FALSE(dvmrp::PruneMsg::decode(probe.encode()).has_value());
    const auto bytes = prune.encode();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(dvmrp::PruneMsg::decode({bytes.data(), len}).has_value());
    }
    EXPECT_EQ(dvmrp::peek_code(probe.encode()), dvmrp::Code::kProbe);
    EXPECT_FALSE(dvmrp::peek_code(std::vector<std::uint8_t>{0x14, 1}).has_value());
}

// source—LAN—R1—R2—{R3(member LAN), R4(empty LAN)}
struct DvmrpFixture : public ::testing::Test {
    topo::Network net;
    topo::Router* r1;
    topo::Router* r2;
    topo::Router* r3;
    topo::Router* r4;
    topo::Host* source;
    topo::Host* member;
    topo::Segment* empty_lan;
    std::unique_ptr<unicast::OracleRouting> routing;
    std::unique_ptr<scenario::DvmrpStack> stack;

    DvmrpFixture() {
        r1 = &net.add_router("R1");
        r2 = &net.add_router("R2");
        r3 = &net.add_router("R3");
        r4 = &net.add_router("R4");
        auto& src_lan = net.add_lan({r1});
        source = &net.add_host("source", src_lan);
        net.add_link(*r1, *r2);
        net.add_link(*r2, *r3);
        net.add_link(*r2, *r4);
        auto& member_lan = net.add_lan({r3});
        member = &net.add_host("member", member_lan);
        empty_lan = &net.add_lan({r4});
        routing = std::make_unique<unicast::OracleRouting>(net);
        stack = std::make_unique<scenario::DvmrpStack>(net, fast_config());
        net.run_for(100 * sim::kMillisecond);
    }
};

TEST_F(DvmrpFixture, TruncatedBroadcastAndPrune) {
    stack->host_agent(*member).join(kGroup);
    net.run_for(100 * sim::kMillisecond);
    source->send_data(kGroup);
    net.run_for(100 * sim::kMillisecond);
    EXPECT_EQ(member->received_count(kGroup), 1u);
    EXPECT_EQ(net.stats().data_packets_on(empty_lan->id()), 0u);

    // R4 pruned itself; R2 no longer forwards its way.
    auto* sg_r2 = stack->dvmrp_at(*r2).cache().find_sg(source->address(), kGroup);
    ASSERT_NE(sg_r2, nullptr);
    const int r2_to_r4 = r2->ifindex_on(*net.find_link(*r2, *r4)).value();
    EXPECT_FALSE(sg_r2->has_oif(r2_to_r4));
}

TEST_F(DvmrpFixture, PeriodicRebroadcastAfterPruneTimeout) {
    stack->host_agent(*member).join(kGroup);
    net.run_for(100 * sim::kMillisecond);
    // Stream for several prune lifetimes (1.2 s scaled); count data on the
    // pruned R2—R4 link: the branch must grow back periodically — the
    // paper's scaling complaint about DVMRP (§1.1, §1.3).
    source->send_data(kGroup);
    net.run_for(300 * sim::kMillisecond); // initial flood + prune
    net.stats().reset_data_counters();
    source->send_stream(kGroup, 60, 100 * sim::kMillisecond);
    net.run_for(7 * sim::kSecond);
    const auto* link = net.find_link(*r2, *r4);
    const auto leaked = net.stats().data_packets_on(link->id());
    EXPECT_GE(leaked, 2u);
    EXPECT_LT(leaked, 30u);
    EXPECT_EQ(member->received_count(kGroup), 61u);
    EXPECT_EQ(member->duplicate_count(), 0u);
}

TEST_F(DvmrpFixture, GraftRestoresPrunedBranch) {
    stack->host_agent(*member).join(kGroup);
    net.run_for(100 * sim::kMillisecond);
    source->send_data(kGroup);
    net.run_for(300 * sim::kMillisecond);

    auto& late = net.add_host("late", *empty_lan);
    igmp::HostAgent agent(late, fast_config().host);
    agent.join(kGroup);
    net.run_for(150 * sim::kMillisecond);
    source->send_data(kGroup);
    net.run_for(100 * sim::kMillisecond);
    EXPECT_EQ(late.received_count(kGroup), 1u);
}

TEST(Dvmrp, RunsOverDistanceVectorRouting) {
    // The historically faithful combination: DVMRP data plane with
    // RIP-style distance-vector routing providing RPF.
    topo::Network net;
    auto& r1 = net.add_router("R1");
    auto& r2 = net.add_router("R2");
    auto& r3 = net.add_router("R3");
    auto& src_lan = net.add_lan({&r1});
    auto& source = net.add_host("source", src_lan);
    net.add_link(r1, r2);
    net.add_link(r2, r3);
    auto& member_lan = net.add_lan({&r3});
    auto& member = net.add_host("member", member_lan);

    unicast::DvConfig dv_cfg;
    dv_cfg.update_interval = 100 * sim::kMillisecond;
    dv_cfg.route_timeout = 300 * sim::kMillisecond;
    dv_cfg.gc_delay = 200 * sim::kMillisecond;
    unicast::DvRoutingDomain dv(net, dv_cfg);
    scenario::DvmrpStack stack(net, fast_config());
    net.run_for(1 * sim::kSecond); // let DV converge

    stack.host_agent(member).join(kGroup);
    net.run_for(200 * sim::kMillisecond);
    source.send_stream(kGroup, 5, 50 * sim::kMillisecond);
    net.run_for(1 * sim::kSecond);
    EXPECT_EQ(member.received_count(kGroup), 5u);
    EXPECT_EQ(member.duplicate_count(), 0u);
}

} // namespace
} // namespace pimlib::test
