// Unit tests for the telemetry layer: histogram bucket placement and
// quantiles, label-set interning, counter epochs (the NetworkStats reset
// semantics ride on these), the structured event log, causal spans,
// snapshot diffing, and all three exporters.
#include <gtest/gtest.h>

#include <stdexcept>

#include "telemetry/events.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/snapshot.hpp"
#include "test_util.hpp"

namespace pimlib::test {
namespace {

using telemetry::Buckets;
using telemetry::LabelSet;
using telemetry::Registry;

// --- histograms ----------------------------------------------------------

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
    // Bounds: 1, 2, 4, 8. Prometheus buckets are `le=` (inclusive upper).
    telemetry::Histogram h(Buckets::exponential(1.0, 2.0, 4));
    ASSERT_EQ(h.bounds().size(), 4u);
    EXPECT_DOUBLE_EQ(h.bounds()[0], 1.0);
    EXPECT_DOUBLE_EQ(h.bounds()[3], 8.0);

    h.observe(1.0);  // exactly on a boundary -> bucket 0 (le=1)
    h.observe(1.5);  // bucket 1 (le=2)
    h.observe(8.0);  // boundary again -> bucket 3 (le=8)
    h.observe(100.0); // past the last bound -> +Inf bucket
    ASSERT_EQ(h.bucket_counts().size(), 5u);
    EXPECT_EQ(h.bucket_counts()[0], 1u);
    EXPECT_EQ(h.bucket_counts()[1], 1u);
    EXPECT_EQ(h.bucket_counts()[2], 0u);
    EXPECT_EQ(h.bucket_counts()[3], 1u);
    EXPECT_EQ(h.bucket_counts()[4], 1u); // +Inf
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 110.5);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, QuantilesInterpolateAndClampToObservedRange) {
    telemetry::Histogram h(Buckets::exponential(1.0, 2.0, 8));
    for (int i = 0; i < 100; ++i) h.observe(3.0); // all in bucket le=4
    // Interpolation stays within the containing bucket...
    EXPECT_GE(h.quantile(0.5), 2.0);
    EXPECT_LE(h.quantile(0.5), 4.0);
    // ...and clamps to exactly-tracked min/max at the extremes.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
    EXPECT_DOUBLE_EQ(telemetry::Histogram(Buckets::exponential(1, 2, 4)).quantile(0.5),
                     0.0); // empty -> 0
}

TEST(Histogram, ObservationsPastLastBoundUseTrackedMax) {
    telemetry::Histogram h(Buckets::exponential(1.0, 2.0, 2)); // bounds 1, 2
    h.observe(50.0);
    h.observe(70.0);
    // Both land in +Inf; the quantile cannot exceed the exact max.
    EXPECT_LE(h.quantile(0.99), 70.0);
    EXPECT_GE(h.quantile(0.99), 50.0);
}

TEST(Histogram, RejectsUnboundedOrInvalidBucketSpecs) {
    EXPECT_THROW(Buckets::exponential(0.0, 2.0, 4), std::invalid_argument);
    EXPECT_THROW(Buckets::exponential(1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(Buckets::exponential(1.0, 2.0, 0), std::invalid_argument);
    EXPECT_THROW(Buckets::exponential(1.0, 2.0, Buckets::kMaxBuckets + 1),
                 std::invalid_argument);
    EXPECT_NO_THROW(Buckets::exponential(1.0, 2.0, Buckets::kMaxBuckets));
}

// --- label interning ------------------------------------------------------

TEST(Registry, LabelSetsInternToOneIdRegardlessOfOrder) {
    Registry reg;
    const std::size_t a = reg.intern(LabelSet{{"proto", "pim"}, {"seg", "lan0"}});
    const std::size_t b = reg.intern(LabelSet{{"seg", "lan0"}, {"proto", "pim"}});
    const std::size_t c = reg.intern(LabelSet{{"seg", "lan1"}, {"proto", "pim"}});
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(reg.interned_count(), 2u);
    EXPECT_EQ(reg.labels_of(a).pairs().front().first, "proto");
}

TEST(Registry, SameNameAndLabelsReturnsSameInstrument) {
    Registry reg;
    telemetry::Counter& c1 = reg.counter("pimlib_x_total", {{"k", "v"}});
    telemetry::Counter& c2 = reg.counter("pimlib_x_total", {{"k", "v"}});
    telemetry::Counter& other = reg.counter("pimlib_x_total", {{"k", "w"}});
    c1.inc(3);
    EXPECT_EQ(c2.value(), 3u);
    EXPECT_EQ(other.value(), 0u);
    EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, KindCollisionOnOneNameThrows) {
    Registry reg;
    reg.counter("pimlib_x_total");
    EXPECT_THROW(reg.gauge("pimlib_x_total"), std::logic_error);
    EXPECT_THROW(reg.histogram("pimlib_x_total", Buckets::exponential(1, 2, 4)),
                 std::logic_error);
}

// --- epochs (the reset_data_counters semantics) ---------------------------

TEST(Registry, EpochResetsCounterValuesButKeepsLifetime) {
    Registry reg;
    telemetry::Counter& c = reg.counter("pimlib_data_delivered_total");
    c.inc(10);
    reg.begin_epoch();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(c.lifetime(), 10u);
    c.inc(2);
    EXPECT_EQ(c.value(), 2u);
    EXPECT_EQ(c.lifetime(), 12u);
}

TEST(NetworkStats, ResetCoversPerSegmentControlAndLossDrops) {
    // The historical gap: reset_data_counters() used to leave per-segment
    // control counters and loss drops running, so post-warm-up measurements
    // double-counted the warm-up. All of those go through counter epochs now.
    topo::Network net;
    stats::NetworkStats& stats = net.stats();
    stats.count_control_on_segment(0);
    stats.count_data_packet(0);
    stats.count_dropped_loss();
    stats.count_data_delivered();
    stats.count_control_message("pim");

    telemetry::Counter& seg_control = net.telemetry().registry().counter(
        "pimlib_control_segment_messages_total", {{"segment", "0"}});
    EXPECT_EQ(seg_control.value(), 1u);

    stats.reset_data_counters();
    EXPECT_EQ(seg_control.value(), 0u);
    EXPECT_EQ(seg_control.lifetime(), 1u); // registry keeps the whole-run count
    EXPECT_EQ(stats.data_packets_on(0), 0u);
    EXPECT_EQ(stats.dropped_loss(), 0u);
    EXPECT_EQ(stats.data_delivered(), 0u);
    // Per-protocol totals deliberately survive (whole-run control cost).
    EXPECT_EQ(stats.total_control_messages(), 1u);

    stats.count_data_packet(0);
    EXPECT_EQ(stats.data_packets_on(0), 1u);
}

// --- event log ------------------------------------------------------------

TEST(EventLog, DisabledByDefaultAndBoundedWhenEnabled) {
    telemetry::EventLog log;
    log.emit({0, telemetry::EventType::kJoinSent, "A", "pim", "224.1.1.1", "", 0});
    EXPECT_TRUE(log.events().empty());

    log.set_enabled(true);
    log.set_capacity(3);
    for (int i = 0; i < 5; ++i) {
        log.emit({i, telemetry::EventType::kJoinSent, "A", "pim", "", "", 0});
    }
    EXPECT_EQ(log.events().size(), 3u);
    EXPECT_EQ(log.dropped(), 2u);
    EXPECT_NE(log.dump().find("join-sent"), std::string::npos);
    EXPECT_NE(log.dump().find("2 event(s) dropped at capacity"), std::string::npos);
}

TEST(EventLog, DumpFilterSelectsEventTypes) {
    telemetry::EventLog log;
    log.set_enabled(true);
    log.emit({0, telemetry::EventType::kSptBitSet, "A", "pim", "g", "", 0});
    log.emit({1, telemetry::EventType::kPruneSent, "B", "pim", "g", "", 0});
    const std::string only_spt = log.dump([](const telemetry::Event& e) {
        return e.type == telemetry::EventType::kSptBitSet;
    });
    EXPECT_NE(only_spt.find("spt-bit-set"), std::string::npos);
    EXPECT_EQ(only_spt.find("prune-sent"), std::string::npos);
}

// --- spans ----------------------------------------------------------------

TEST(SpanTracker, CompletedSpansFeedTheLatencyHistogram) {
    Registry reg;
    telemetry::SpanTracker spans(reg);
    const std::uint64_t id = spans.begin("join-to-data", "h|g", 1 * sim::kSecond);
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(spans.is_open("join-to-data", "h|g"));
    // Re-opening keeps the original start (first cause wins).
    EXPECT_EQ(spans.begin("join-to-data", "h|g", 2 * sim::kSecond), id);
    auto latency = spans.end("join-to-data", "h|g", 3 * sim::kSecond);
    ASSERT_TRUE(latency.has_value());
    EXPECT_EQ(*latency, 2 * sim::kSecond);
    EXPECT_FALSE(spans.is_open("join-to-data", "h|g"));
    EXPECT_FALSE(spans.end("join-to-data", "h|g", 4 * sim::kSecond).has_value());

    const telemetry::Histogram& h = reg.histogram(
        "pimlib_control_span_seconds", Buckets::exponential(0.001, 2.0, 24),
        {{"span", "join-to-data"}});
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.sum(), 2.0);
}

TEST(SpanTracker, AbortDiscardsWithoutObserving) {
    Registry reg;
    telemetry::SpanTracker spans(reg);
    spans.begin("join-to-data", "h|g", 0);
    spans.abort("join-to-data", "h|g");
    EXPECT_FALSE(spans.is_open("join-to-data", "h|g"));
    EXPECT_TRUE(spans.completed().empty());
}

// --- snapshot diffing -----------------------------------------------------

telemetry::EntrySnapshot entry(const std::string& src, const std::string& group,
                               bool wildcard, int iif, std::vector<int> oifs) {
    telemetry::EntrySnapshot e;
    e.source_or_rp = src;
    e.group = group;
    e.wildcard = wildcard;
    e.iif = iif;
    for (int o : oifs) e.oifs.push_back({o, 5 * sim::kSecond, false});
    return e;
}

TEST(MribSnapshot, TimerCountdownDoesNotRegisterAsChange) {
    telemetry::MribSnapshot before;
    before.at = 1 * sim::kSecond;
    before.routers.push_back({"A", {entry("10.0.0.1", "224.1.1.1", true, 0, {1})}});

    telemetry::MribSnapshot after = before;
    after.at = 2 * sim::kSecond;
    after.routers[0].entries[0].oifs[0].remaining = 1 * sim::kSecond; // ticked down
    after.routers[0].entries[0].delete_in = 7;

    EXPECT_TRUE(telemetry::diff(before, after).empty());
}

TEST(MribSnapshot, DiffReportsAddedRemovedAndChanged) {
    telemetry::MribSnapshot before;
    before.routers.push_back({"A", {entry("10.0.0.1", "224.1.1.1", true, 0, {1}),
                                    entry("10.9.9.9", "224.1.1.1", false, 0, {1})}});
    telemetry::MribSnapshot after;
    // (*,G) gains an oif (changed); the (S,G) is gone (removed); B appears
    // with a new entry (added).
    after.routers.push_back({"A", {entry("10.0.0.1", "224.1.1.1", true, 0, {1, 2})}});
    after.routers.push_back({"B", {entry("10.0.0.1", "224.2.2.2", true, 1, {})}});

    const telemetry::MribDiff d = telemetry::diff(before, after);
    ASSERT_EQ(d.changed.size(), 1u);
    ASSERT_EQ(d.removed.size(), 1u);
    ASSERT_EQ(d.added.size(), 1u);
    EXPECT_NE(d.changed[0].find("(*, 224.1.1.1)"), std::string::npos);
    EXPECT_NE(d.removed[0].find("10.9.9.9"), std::string::npos);
    EXPECT_NE(d.added[0].find("B"), std::string::npos);
    EXPECT_NE(d.to_text().find("~"), std::string::npos);
}

TEST(MribSnapshot, SptAndRpBitFlipsAreStructural) {
    telemetry::MribSnapshot before;
    before.routers.push_back({"A", {entry("10.0.0.1", "224.1.1.1", false, 0, {1})}});
    telemetry::MribSnapshot after = before;
    after.routers[0].entries[0].spt_bit = true;
    EXPECT_EQ(telemetry::diff(before, after).changed.size(), 1u);
    after.routers[0].entries[0].spt_bit = false;
    after.routers[0].entries[0].rp_bit = true;
    EXPECT_EQ(telemetry::diff(before, after).changed.size(), 1u);
}

// --- exporters ------------------------------------------------------------

TEST(Exporters, PrometheusEscapesLabelValues) {
    EXPECT_EQ(telemetry::prometheus_escape("plain"), "plain");
    EXPECT_EQ(telemetry::prometheus_escape("a\\b"), "a\\\\b");
    EXPECT_EQ(telemetry::prometheus_escape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(telemetry::prometheus_escape("line1\nline2"), "line1\\nline2");

    Registry reg;
    reg.counter("pimlib_x_total", {{"k", "a\"b\\c\nd"}}, "help\ntext").inc();
    const std::string text = telemetry::to_prometheus(reg);
    EXPECT_NE(text.find("k=\"a\\\"b\\\\c\\nd\""), std::string::npos);
    EXPECT_EQ(text.find("help\ntext"), std::string::npos); // help newline escaped
}

TEST(Exporters, PrometheusSurvivesHostileLabelValues) {
    // Regression guard for the drop-reason labels and any future
    // user-supplied label (scenario names, interface names): values that
    // are nothing but escapes, end in a backslash, or embed the exposition
    // format's own structural characters must round-trip unambiguously.
    EXPECT_EQ(telemetry::prometheus_escape("trailing\\"), "trailing\\\\");
    EXPECT_EQ(telemetry::prometheus_escape("\\\"\n"), "\\\\\\\"\\n");
    EXPECT_EQ(telemetry::prometheus_escape(""), "");
    // Braces, equals and commas are structural in the exposition format but
    // legal inside a quoted value — they must pass through unescaped.
    EXPECT_EQ(telemetry::prometheus_escape("a{b=\"c\",d}"), "a{b=\\\"c\\\",d}");

    Registry reg;
    reg.counter("pimlib_hostile_total", {{"reason", "end\\"}}).inc();
    reg.counter("pimlib_hostile_total", {{"reason", "a{b=c},d"}}).inc();
    const std::string text = telemetry::to_prometheus(reg);
    EXPECT_NE(text.find("reason=\"end\\\\\""), std::string::npos) << text;
    EXPECT_NE(text.find("reason=\"a{b=c},d\""), std::string::npos) << text;
}

TEST(Exporters, JsonEscapesControlAndQuoteCharacters) {
    EXPECT_EQ(telemetry::json_escape("tab\there"), "tab\\there");
    EXPECT_EQ(telemetry::json_escape("q\"q"), "q\\\"q");
    EXPECT_EQ(telemetry::json_escape("b\\s"), "b\\\\s");
    EXPECT_EQ(telemetry::json_escape("nl\n"), "nl\\n");

    Registry reg;
    reg.counter("pimlib_hostile_total", {{"k", "v\"w\\x\ty"}}).inc();
    const std::string text = telemetry::to_json(reg);
    EXPECT_NE(text.find("v\\\"w\\\\x\\ty"), std::string::npos) << text;
}

TEST(Exporters, PrometheusHistogramIsCumulativeWithInfBucket) {
    Registry reg;
    telemetry::Histogram& h =
        reg.histogram("pimlib_x_seconds", Buckets::exponential(1.0, 2.0, 2));
    h.observe(1.0);
    h.observe(1.5);
    h.observe(99.0);
    const std::string text = telemetry::to_prometheus(reg);
    EXPECT_NE(text.find("# TYPE pimlib_x_seconds histogram"), std::string::npos);
    EXPECT_NE(text.find("pimlib_x_seconds_bucket{le=\"1\"} 1"), std::string::npos);
    EXPECT_NE(text.find("pimlib_x_seconds_bucket{le=\"2\"} 2"), std::string::npos);
    EXPECT_NE(text.find("pimlib_x_seconds_bucket{le=\"+Inf\"} 3"), std::string::npos);
    EXPECT_NE(text.find("pimlib_x_seconds_count 3"), std::string::npos);
}

TEST(Exporters, JsonGroupsLabeledSeriesAndHistogramPercentiles) {
    Registry reg;
    reg.counter("pimlib_control_messages_total", {{"protocol", "pim"}}).inc(7);
    reg.counter("pimlib_control_messages_total", {{"protocol", "cbt"}}).inc(2);
    reg.gauge("pimlib_state_mrib_entries", {{"router", "A"}}).set(4);
    reg.histogram("pimlib_x_seconds", Buckets::exponential(1.0, 2.0, 4)).observe(2.5);
    const std::string json = telemetry::to_json(reg);
    EXPECT_NE(json.find("\"pimlib_control_messages_total\""), std::string::npos);
    EXPECT_NE(json.find("\"protocol\":\"pim\""), std::string::npos);
    EXPECT_NE(json.find("\"value\":7"), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(Exporters, TimeSeriesCsvSamplesCountersSinceEpoch) {
    Registry reg;
    telemetry::Counter& c = reg.counter("pimlib_data_delivered_total");
    telemetry::Gauge& g = reg.gauge("pimlib_state_mrib_entries");
    telemetry::TimeSeries ts;
    ts.add_counter("delivered", c);
    ts.add_gauge("entries", g);

    c.inc(5);
    g.set(2);
    ts.sample(1 * sim::kSecond);
    c.inc(5);
    g.set(3);
    ts.sample(2 * sim::kSecond);
    EXPECT_EQ(ts.rows(), 2u);

    const std::string csv = ts.to_csv();
    EXPECT_NE(csv.find("time_s,delivered,entries"), std::string::npos);
    EXPECT_NE(csv.find("1.000000,5,2"), std::string::npos);
    EXPECT_NE(csv.find("2.000000,10,3"), std::string::npos);
}

// --- hub + end-to-end -----------------------------------------------------

TEST(Hub, EventCountersAreLiveEvenWithTracingOff) {
    sim::Simulator simulator;
    telemetry::Hub hub(simulator);
    hub.emit(telemetry::EventType::kJoinSent, "A", "pim", "224.1.1.1");
    hub.emit(telemetry::EventType::kJoinSent, "B", "pim", "224.1.1.1");
    EXPECT_TRUE(hub.events().events().empty()); // tracing off: no log entries
    EXPECT_EQ(hub.registry()
                  .counter("pimlib_control_events_total",
                           {{"type", "join-sent"}, {"protocol", "pim"}})
                  .value(),
              2u);
    // Spans are no-ops while tracing is off.
    EXPECT_EQ(hub.span_begin(telemetry::span::kJoinToData, "h|g"), 0u);
}

TEST(Hub, JoinToDataSpanMeasuresEndToEndLatency) {
    Fig3Topology topo;
    topo.net.telemetry().set_tracing(true);
    scenario::PimSmStack stack(topo.net, fast_config());
    stack.set_rp(kGroup, {topo.c->router_id()});
    stack.set_spt_policy(pim::SptPolicy::never());

    topo.net.run_for(200 * sim::kMillisecond);
    stack.host_agent(*topo.receiver).join(kGroup);
    topo.net.run_for(300 * sim::kMillisecond);
    topo.source->send_stream(kGroup, 3, 20 * sim::kMillisecond);
    topo.net.run_for(500 * sim::kMillisecond);

    ASSERT_EQ(topo.receiver->received_count(kGroup), 3u);
    const auto& completed = topo.net.telemetry().spans().completed();
    ASSERT_EQ(completed.size(), 1u);
    EXPECT_EQ(completed[0].kind, telemetry::span::kJoinToData);
    EXPECT_GT(completed[0].latency(), 0);
    // The event log saw the IGMP report and at least one join toward the RP.
    const auto& events = topo.net.telemetry().events().events();
    bool saw_report = false;
    bool saw_join = false;
    for (const auto& e : events) {
        saw_report |= e.type == telemetry::EventType::kIgmpReport;
        saw_join |= e.type == telemetry::EventType::kJoinSent;
    }
    EXPECT_TRUE(saw_report);
    EXPECT_TRUE(saw_join);
}

TEST(Hub, MribSnapshotsDiffAcrossJoin) {
    Fig3Topology topo;
    scenario::PimSmStack stack(topo.net, fast_config());
    stack.set_rp(kGroup, {topo.c->router_id()});

    topo.net.run_for(200 * sim::kMillisecond);
    topo.net.telemetry().store_snapshot(stack.capture_mrib());
    stack.host_agent(*topo.receiver).join(kGroup);
    topo.net.run_for(300 * sim::kMillisecond);
    topo.net.telemetry().store_snapshot(stack.capture_mrib());

    const auto& snaps = topo.net.telemetry().snapshots();
    ASSERT_EQ(snaps.size(), 2u);
    EXPECT_EQ(snaps[0].entry_count(), 0u);
    EXPECT_GT(snaps[1].entry_count(), 0u); // (*,G) state grew along A->B->C
    const telemetry::MribDiff d = telemetry::diff(snaps[0], snaps[1]);
    EXPECT_FALSE(d.added.empty());
    EXPECT_TRUE(d.removed.empty());
    // Entry-count gauges were refreshed by store_snapshot.
    EXPECT_GT(topo.net.telemetry()
                  .registry()
                  .gauge("pimlib_state_mrib_entries", {{"router", "A"}})
                  .value(),
              0.0);
}

// --- timer wheel gauges ---------------------------------------------------

TEST(Hub, RefreshTimerGaugesPublishesWheelStats) {
    sim::Simulator sim;
    telemetry::Hub hub(sim);
    int fired = 0;
    sim.schedule(10, [&fired] { ++fired; });
    sim.schedule(20, [&fired] { ++fired; });

    hub.refresh_timer_gauges();

    double pending = -1;
    double level0 = -1;
    bool saw_cascades = false;
    for (const auto* inst : hub.registry().sorted()) {
        if (inst->name == "pimlib_timer_pending_events") {
            pending = inst->gauge->value();
        } else if (inst->name == "pimlib_timer_level_events" &&
                   inst->labels == LabelSet{{"level", "0"}}) {
            level0 = inst->gauge->value();
        } else if (inst->name == "pimlib_timer_cascades_total") {
            saw_cascades = true;
        }
    }
    EXPECT_EQ(pending, 2.0);
    EXPECT_EQ(level0, 2.0);
    EXPECT_TRUE(saw_cascades);

    // Draining the wheel and refreshing again overwrites in place.
    sim.run();
    EXPECT_EQ(fired, 2);
    hub.refresh_timer_gauges();
    for (const auto* inst : hub.registry().sorted()) {
        if (inst->name == "pimlib_timer_pending_events") {
            EXPECT_EQ(inst->gauge->value(), 0.0);
        }
    }
}

} // namespace
} // namespace pimlib::test
