// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace pimlib::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30, [&] { order.push_back(3); });
    sim.schedule(10, [&] { order.push_back(1); });
    sim.schedule(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimesFireInSchedulingOrder) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule(5, [&order, i] { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, CancelRemovesEvent) {
    Simulator sim;
    bool fired = false;
    EventId id = sim.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id)); // second cancel is a no-op
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, CancelNullIdIsNoop) {
    Simulator sim;
    EXPECT_FALSE(sim.cancel(EventId{}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
    Simulator sim;
    int count = 0;
    sim.schedule(10, [&] { ++count; });
    sim.schedule(20, [&] { ++count; });
    sim.schedule(30, [&] { ++count; });
    EXPECT_EQ(sim.run_until(20), 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(sim.now(), 20);
    EXPECT_EQ(sim.pending(), 1u);
    sim.run_until(100);
    EXPECT_EQ(count, 3);
    EXPECT_EQ(sim.now(), 100); // clock advances to the deadline
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
    Simulator sim;
    std::vector<Time> fire_times;
    sim.schedule(10, [&] {
        fire_times.push_back(sim.now());
        sim.schedule(5, [&] { fire_times.push_back(sim.now()); });
    });
    sim.run();
    EXPECT_EQ(fire_times, (std::vector<Time>{10, 15}));
}

TEST(Simulator, NegativeDelayClampsToNow) {
    Simulator sim;
    sim.schedule(10, [&] {
        sim.schedule(-5, [&] { EXPECT_EQ(sim.now(), 10); });
    });
    sim.run();
}

TEST(PeriodicTimer, FiresEveryPeriod) {
    Simulator sim;
    std::vector<Time> fires;
    PeriodicTimer timer(sim, [&] { fires.push_back(sim.now()); });
    timer.start(10);
    sim.run_until(35);
    EXPECT_EQ(fires, (std::vector<Time>{10, 20, 30}));
}

TEST(PeriodicTimer, StopPreventsFurtherFires) {
    Simulator sim;
    int count = 0;
    PeriodicTimer timer(sim, [&] { ++count; });
    timer.start(10);
    sim.schedule(25, [&] { timer.stop(); });
    sim.run_until(100);
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, CallbackCanStopItself) {
    Simulator sim;
    int count = 0;
    PeriodicTimer timer(sim, [&] {
        if (++count == 3) timer.stop();
    });
    timer.start(5);
    sim.run_until(1000);
    EXPECT_EQ(count, 3);
}

TEST(PeriodicTimer, RestartResetsPhase) {
    Simulator sim;
    std::vector<Time> fires;
    PeriodicTimer timer(sim, [&] { fires.push_back(sim.now()); });
    timer.start(10);
    sim.schedule(15, [&] { timer.start(10); });
    sim.run_until(40);
    EXPECT_EQ(fires, (std::vector<Time>{10, 25, 35}));
}

TEST(OneshotTimer, FiresOnce) {
    Simulator sim;
    int count = 0;
    OneshotTimer timer(sim, [&] { ++count; });
    timer.arm(10);
    EXPECT_TRUE(timer.armed());
    EXPECT_EQ(timer.deadline(), 10);
    sim.run_until(100);
    EXPECT_EQ(count, 1);
    EXPECT_FALSE(timer.armed());
}

TEST(OneshotTimer, RearmReplacesDeadline) {
    Simulator sim;
    std::vector<Time> fires;
    OneshotTimer timer(sim, [&] { fires.push_back(sim.now()); });
    timer.arm(10);
    sim.schedule(5, [&] { timer.arm(20); }); // push deadline to 25
    sim.run_until(100);
    EXPECT_EQ(fires, (std::vector<Time>{25}));
}

TEST(OneshotTimer, CancelPreventsFire) {
    Simulator sim;
    bool fired = false;
    OneshotTimer timer(sim, [&] { fired = true; });
    timer.arm(10);
    timer.cancel();
    sim.run_until(100);
    EXPECT_FALSE(fired);
}

TEST(Simulator, DestructorOfTimerCancels) {
    Simulator sim;
    bool fired = false;
    {
        OneshotTimer timer(sim, [&] { fired = true; });
        timer.arm(10);
    }
    sim.run_until(100);
    EXPECT_FALSE(fired);
}

// --- EventId identity semantics ---
//
// Cancellation is keyed on (time, seq), so an id stays bound to exactly the
// event it named: it goes dead once that event fires, and can never alias a
// later event — even one scheduled for the same instant.

TEST(Simulator, CancelAfterFireReturnsFalse) {
    Simulator sim;
    int fires = 0;
    const EventId id = sim.schedule(10, [&] { ++fires; });
    sim.run_until(50);
    EXPECT_EQ(fires, 1);
    EXPECT_FALSE(sim.cancel(id));
    sim.run_until(100);
    EXPECT_EQ(fires, 1);
}

TEST(Simulator, StaleIdDoesNotCancelRescheduledEvent) {
    Simulator sim;
    bool first = false;
    bool second = false;
    const EventId id = sim.schedule_at(10, [&] { first = true; });
    EXPECT_TRUE(sim.cancel(id));
    // Re-schedule a replacement at the very same instant; the dead id must
    // not reach it (fresh seq), and double-cancel stays a no-op.
    sim.schedule_at(10, [&] { second = true; });
    EXPECT_FALSE(sim.cancel(id));
    sim.run_until(50);
    EXPECT_FALSE(first);
    EXPECT_TRUE(second);
}

TEST(Simulator, CancelAcrossRescheduleOnlyRemovesNamedEvent) {
    Simulator sim;
    std::string log;
    sim.schedule_at(10, [&] { log += 'a'; });
    const EventId b = sim.schedule_at(10, [&] { log += 'b'; });
    sim.schedule_at(10, [&] { log += 'c'; });
    EXPECT_TRUE(sim.cancel(b));
    sim.run_until(50);
    EXPECT_EQ(log, "ac");
}

// --- ChoicePoint hooks ---

/// Always picks the last alternative; records every consultation.
class LastPicker final : public ChoiceSource {
public:
    std::size_t choose(std::size_t n, ChoicePoint point) override {
        consulted.push_back({point.kind, n});
        return n - 1;
    }
    std::vector<std::pair<ChoicePoint::Kind, std::size_t>> consulted;
};

TEST(Simulator, ChoiceSourcePermutesSameTimeEvents) {
    Simulator sim;
    LastPicker picker;
    sim.set_choice_source(&picker);
    std::string log;
    sim.schedule_at(10, [&] { log += 'a'; });
    sim.schedule_at(10, [&] { log += 'b'; });
    sim.schedule_at(10, [&] { log += 'c'; });
    sim.schedule_at(20, [&] { log += 'd'; });
    sim.run_until(50);
    // Picking "last" each round reverses the batch; the lone event at t=20
    // never consults the source.
    EXPECT_EQ(log, "cbad");
    ASSERT_EQ(picker.consulted.size(), 2u);
    EXPECT_EQ(picker.consulted[0], std::make_pair(ChoicePoint::Kind::kEventOrder,
                                                  std::size_t{3}));
    EXPECT_EQ(picker.consulted[1], std::make_pair(ChoicePoint::Kind::kEventOrder,
                                                  std::size_t{2}));
    sim.set_choice_source(nullptr);
}

TEST(Simulator, OutOfRangeChoiceFallsBackToFirst) {
    class Wild final : public ChoiceSource {
    public:
        std::size_t choose(std::size_t n, ChoicePoint) override { return n + 7; }
    };
    Simulator sim;
    Wild wild;
    sim.set_choice_source(&wild);
    std::string log;
    sim.schedule_at(10, [&] { log += 'a'; });
    sim.schedule_at(10, [&] { log += 'b'; });
    sim.run_until(50);
    EXPECT_EQ(log, "ab");
}

TEST(Simulator, ClearingChoiceSourceRestoresSchedulingOrder) {
    Simulator sim;
    LastPicker picker;
    sim.set_choice_source(&picker);
    sim.set_choice_source(nullptr);
    std::string log;
    sim.schedule_at(10, [&] { log += 'a'; });
    sim.schedule_at(10, [&] { log += 'b'; });
    sim.run_until(50);
    EXPECT_EQ(log, "ab");
    EXPECT_TRUE(picker.consulted.empty());
}

} // namespace
} // namespace pimlib::sim
