// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace pimlib::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30, [&] { order.push_back(3); });
    sim.schedule(10, [&] { order.push_back(1); });
    sim.schedule(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimesFireInSchedulingOrder) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule(5, [&order, i] { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, CancelRemovesEvent) {
    Simulator sim;
    bool fired = false;
    EventId id = sim.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id)); // second cancel is a no-op
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, CancelNullIdIsNoop) {
    Simulator sim;
    EXPECT_FALSE(sim.cancel(EventId{}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
    Simulator sim;
    int count = 0;
    sim.schedule(10, [&] { ++count; });
    sim.schedule(20, [&] { ++count; });
    sim.schedule(30, [&] { ++count; });
    EXPECT_EQ(sim.run_until(20), 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(sim.now(), 20);
    EXPECT_EQ(sim.pending(), 1u);
    sim.run_until(100);
    EXPECT_EQ(count, 3);
    EXPECT_EQ(sim.now(), 100); // clock advances to the deadline
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
    Simulator sim;
    std::vector<Time> fire_times;
    sim.schedule(10, [&] {
        fire_times.push_back(sim.now());
        sim.schedule(5, [&] { fire_times.push_back(sim.now()); });
    });
    sim.run();
    EXPECT_EQ(fire_times, (std::vector<Time>{10, 15}));
}

TEST(Simulator, NegativeDelayClampsToNow) {
    Simulator sim;
    sim.schedule(10, [&] {
        sim.schedule(-5, [&] { EXPECT_EQ(sim.now(), 10); });
    });
    sim.run();
}

TEST(PeriodicTimer, FiresEveryPeriod) {
    Simulator sim;
    std::vector<Time> fires;
    PeriodicTimer timer(sim, [&] { fires.push_back(sim.now()); });
    timer.start(10);
    sim.run_until(35);
    EXPECT_EQ(fires, (std::vector<Time>{10, 20, 30}));
}

TEST(PeriodicTimer, StopPreventsFurtherFires) {
    Simulator sim;
    int count = 0;
    PeriodicTimer timer(sim, [&] { ++count; });
    timer.start(10);
    sim.schedule(25, [&] { timer.stop(); });
    sim.run_until(100);
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, CallbackCanStopItself) {
    Simulator sim;
    int count = 0;
    PeriodicTimer timer(sim, [&] {
        if (++count == 3) timer.stop();
    });
    timer.start(5);
    sim.run_until(1000);
    EXPECT_EQ(count, 3);
}

TEST(PeriodicTimer, RestartResetsPhase) {
    Simulator sim;
    std::vector<Time> fires;
    PeriodicTimer timer(sim, [&] { fires.push_back(sim.now()); });
    timer.start(10);
    sim.schedule(15, [&] { timer.start(10); });
    sim.run_until(40);
    EXPECT_EQ(fires, (std::vector<Time>{10, 25, 35}));
}

TEST(OneshotTimer, FiresOnce) {
    Simulator sim;
    int count = 0;
    OneshotTimer timer(sim, [&] { ++count; });
    timer.arm(10);
    EXPECT_TRUE(timer.armed());
    EXPECT_EQ(timer.deadline(), 10);
    sim.run_until(100);
    EXPECT_EQ(count, 1);
    EXPECT_FALSE(timer.armed());
}

TEST(OneshotTimer, RearmReplacesDeadline) {
    Simulator sim;
    std::vector<Time> fires;
    OneshotTimer timer(sim, [&] { fires.push_back(sim.now()); });
    timer.arm(10);
    sim.schedule(5, [&] { timer.arm(20); }); // push deadline to 25
    sim.run_until(100);
    EXPECT_EQ(fires, (std::vector<Time>{25}));
}

TEST(OneshotTimer, CancelPreventsFire) {
    Simulator sim;
    bool fired = false;
    OneshotTimer timer(sim, [&] { fired = true; });
    timer.arm(10);
    timer.cancel();
    sim.run_until(100);
    EXPECT_FALSE(fired);
}

TEST(Simulator, DestructorOfTimerCancels) {
    Simulator sim;
    bool fired = false;
    {
        OneshotTimer timer(sim, [&] { fired = true; });
        timer.arm(10);
    }
    sim.run_until(100);
    EXPECT_FALSE(fired);
}

} // namespace
} // namespace pimlib::sim
