// Step-by-step reproduction of the paper's numbered walkthroughs:
//   Figure 3 — how senders rendezvous with receivers,
//   Figure 4 — how a receiver joins and sets up the shared tree,
//   Figure 5 — switching from the shared tree to the shortest-path tree.
// Each test drives the scenario event by event and asserts the exact entry
// fields the figures annotate.
#include <gtest/gtest.h>

#include "test_util.hpp"

namespace pimlib::test {
namespace {

using pim::SptPolicy;

class WalkthroughTest : public ::testing::Test {
protected:
    WalkthroughTest() : stack_(topo_.net, fast_config()) {
        stack_.set_rp(kGroup, {topo_.c->router_id()});
        topo_.net.run_for(100 * sim::kMillisecond);
    }

    Fig3Topology topo_;
    scenario::PimSmStack stack_;
};

// Figure 4, actions 1–6: IGMP report → DR creates (*,G) → join propagates
// hop by hop → RP terminates the join.
TEST_F(WalkthroughTest, Fig4SharedTreeSetup) {
    stack_.set_spt_policy(SptPolicy::never());

    // Action 1–2: host reports membership; A is the DR on LAN0.
    ASSERT_TRUE(stack_.pim_at(*topo_.a).is_dr_on(0));
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(50 * sim::kMillisecond);

    // Action 3 (annotated "Create (*,G) entry" at the DR):
    //   outgoing interface list = {receiver LAN}, incoming interface =
    //   toward the RP, RP address stored, RP-timer started.
    auto* wc_a = stack_.pim_at(*topo_.a).cache().find_wc(kGroup);
    ASSERT_NE(wc_a, nullptr);
    EXPECT_TRUE(wc_a->wildcard());
    EXPECT_EQ(wc_a->source_or_rp(), topo_.c->router_id());
    EXPECT_EQ(wc_a->live_oifs(topo_.net.simulator().now()), std::vector<int>{0});
    EXPECT_EQ(wc_a->iif(), topo_.ifindex_toward(*topo_.a, *topo_.b));
    EXPECT_GT(wc_a->rp_timer_deadline(), 0); // "RP-Timer: Started"

    // Action 4–5: A sent a PIM join {RP, RPbit, WCbit} to B; B created its
    // own (*,G) with oif = {toward A}, iif = {toward C}.
    auto* wc_b = stack_.pim_at(*topo_.b).cache().find_wc(kGroup);
    ASSERT_NE(wc_b, nullptr);
    const int b_to_a = topo_.ifindex_toward(*topo_.b, *topo_.a);
    const int b_to_c = topo_.ifindex_toward(*topo_.b, *topo_.c);
    EXPECT_EQ(wc_b->live_oifs(topo_.net.simulator().now()), std::vector<int>{b_to_a});
    EXPECT_EQ(wc_b->iif(), b_to_c);
    EXPECT_EQ(wc_b->source_or_rp(), topo_.c->router_id());

    // Action 6: C recognizes itself as the RP — (*,G) with oif = {toward B}
    // and *null* incoming interface.
    auto* wc_c = stack_.pim_at(*topo_.c).cache().find_wc(kGroup);
    ASSERT_NE(wc_c, nullptr);
    const int c_to_b = topo_.ifindex_toward(*topo_.c, *topo_.b);
    EXPECT_EQ(wc_c->live_oifs(topo_.net.simulator().now()), std::vector<int>{c_to_b});
    EXPECT_EQ(wc_c->iif(), -1);
}

// Figure 3, actions 1–3: receiver joins toward RP; sender's DR registers;
// RP joins toward the source; data then flows natively end to end.
TEST_F(WalkthroughTest, Fig3Rendezvous) {
    stack_.set_spt_policy(SptPolicy::never());

    // Action 1: receiver side.
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(100 * sim::kMillisecond);
    ASSERT_NE(stack_.pim_at(*topo_.c).cache().find_wc(kGroup), nullptr);

    // Action 2: sender sends; its DR (D) piggybacks the data in a register.
    const auto registers_before = topo_.net.stats().control_messages("pim-register");
    topo_.source->send_data(kGroup);
    topo_.net.run_for(100 * sim::kMillisecond);
    EXPECT_GT(topo_.net.stats().control_messages("pim-register"), registers_before);
    // The very first packet is delivered via register decapsulation.
    EXPECT_EQ(topo_.receiver->received_count(kGroup), 1u);

    // Action 3: the RP sent a join toward the source, so D (the source DR)
    // now has (S,G) with oif toward B and iif on the source LAN.
    auto* sg_d = stack_.pim_at(*topo_.d).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(sg_d, nullptr);
    const int d_to_b = topo_.ifindex_toward(*topo_.d, *topo_.b);
    EXPECT_TRUE(sg_d->has_oif(d_to_b));
    EXPECT_NE(sg_d->iif(), d_to_b); // iif is the source LAN

    // Subsequent packets flow natively over the (S,G) path and down the
    // shared tree, still exactly once per packet.
    topo_.source->send_data(kGroup);
    topo_.net.run_for(100 * sim::kMillisecond);
    EXPECT_EQ(topo_.receiver->received_count(kGroup), 2u);
    EXPECT_EQ(topo_.receiver->duplicate_count(), 0u);
}

// Figure 5, actions 1–5: the receiver's DR creates (Sn,G) with SPT bit
// cleared, joins toward the source, and the divergence router prunes the
// source off the shared tree once data arrives over the SPT.
TEST_F(WalkthroughTest, Fig5SptSwitch) {
    stack_.set_spt_policy(SptPolicy::immediate());
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(100 * sim::kMillisecond);

    // First packet travels the shared tree; noticing the new source Sn, A
    // creates (Sn,G) — action 1 — with the oif list copied from (*,G).
    topo_.source->send_data(kGroup);
    topo_.net.run_for(30 * sim::kMillisecond); // enough for A to see data
    auto* sg_a = stack_.pim_at(*topo_.a).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(sg_a, nullptr);
    EXPECT_EQ(sg_a->live_oifs(topo_.net.simulator().now()), std::vector<int>{0});

    // Actions 2–4: join {Sn} propagated toward the source; B created (Sn,G)
    // with oif {toward A} and iif {toward D}.
    topo_.net.run_for(100 * sim::kMillisecond);
    auto* sg_b = stack_.pim_at(*topo_.b).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(sg_b, nullptr);
    EXPECT_TRUE(sg_b->has_oif(topo_.ifindex_toward(*topo_.b, *topo_.a)));
    EXPECT_EQ(sg_b->iif(), topo_.ifindex_toward(*topo_.b, *topo_.d));

    // Action 5: after packets arrive from Sn over the SPT, the SPT bit is
    // set and the prune (JOIN=NULL, PRUNE={Sn}) reached the RP: C no longer
    // lists B in (Sn,G)'s oifs.
    topo_.source->send_data(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);
    EXPECT_TRUE(sg_b->spt_bit());
    auto* sg_c = stack_.pim_at(*topo_.c).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(sg_c, nullptr);
    EXPECT_TRUE(sg_c->oif_list_empty(topo_.net.simulator().now()));

    // Every packet was delivered exactly once throughout.
    EXPECT_EQ(topo_.receiver->received_count(kGroup), 2u);
    EXPECT_EQ(topo_.receiver->duplicate_count(), 0u);

    // §3.10 summary: data still travels from the source toward the RP so
    // new receivers can find it — D keeps an oif toward B for the RP path.
    auto* sg_d = stack_.pim_at(*topo_.d).cache().find_sg(topo_.source->address(), kGroup);
    ASSERT_NE(sg_d, nullptr);
    EXPECT_FALSE(sg_d->oif_list_empty(topo_.net.simulator().now()));
}

// §3.10: "Multicast packets will arrive at some receivers before reaching
// the RP if the receivers and the source are both upstream to the RP." With
// the receiver behind B (on the source→RP path), data reaches it directly.
TEST_F(WalkthroughTest, ReceiversUpstreamOfRpServedDirectly) {
    stack_.set_spt_policy(SptPolicy::never());
    auto& lan_b = topo_.net.add_lan({topo_.b});
    auto& nearby = topo_.net.add_host("nearby", lan_b);
    topo_.routing->recompute();
    scenario::StackConfig cfg = fast_config();
    igmp::HostAgent agent(nearby, cfg.host);
    topo_.net.run_for(100 * sim::kMillisecond);

    agent.join(kGroup);
    topo_.net.run_for(100 * sim::kMillisecond);
    topo_.source->send_stream(kGroup, 3, 20 * sim::kMillisecond);
    topo_.net.run_for(500 * sim::kMillisecond);
    EXPECT_EQ(nearby.received_count(kGroup), 3u);
    EXPECT_EQ(nearby.duplicate_count(), 0u);
}

} // namespace
} // namespace pimlib::test
