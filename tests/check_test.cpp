// Tests for the state-space checker itself (src/check): choice encoding,
// replay determinism, the scenario oracles on known-good and known-bad
// branches, the RP-failover invariant, and the mutation gate.
#include <gtest/gtest.h>

#include <string>

#include "check/explorer.hpp"
#include "telemetry/snapshot.hpp"

namespace pimlib::check {
namespace {

std::string render(const std::vector<Violation>& violations) {
    std::string out;
    for (const Violation& v : violations) {
        out += v.oracle + ": " + v.detail + "\n";
    }
    return out;
}

TEST(ChoiceCodec, FormatParseRoundTrip) {
    const ChoiceSet choices = {{3, 1}, {17, 2}, {240, 1}};
    const std::string wire = format_choices(choices);
    const auto parsed = parse_choices(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, choices);
}

TEST(ChoiceCodec, ParseRejectsGarbage) {
    EXPECT_FALSE(parse_choices("not-a-spec").has_value());
    EXPECT_FALSE(parse_choices("3:").has_value());
    EXPECT_FALSE(parse_choices("3:1,").has_value());
    EXPECT_FALSE(parse_choices(":2").has_value());
}

TEST(ChoiceCodec, ParseSortsByIndex) {
    const auto parsed = parse_choices("17:2,3:1");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, (ChoiceSet{{3, 1}, {17, 2}}));
}

TEST(CheckScenario, BaselineWalkthroughSatisfiesAllOracles) {
    const RunResult result = run_scenario("walkthrough", RunConfig{});
    EXPECT_TRUE(result.violations.empty()) << render(result.violations);
    EXPECT_TRUE(result.clean);
    EXPECT_TRUE(result.converged);
    EXPECT_TRUE(result.choices_applied);
    EXPECT_GT(result.state_hashes.size(), 10u);
}

TEST(CheckScenario, ReplayIsDeterministic) {
    const RunResult first = run_scenario("walkthrough", RunConfig{});
    const RunResult second = run_scenario("walkthrough", RunConfig{});
    ASSERT_EQ(first.state_hashes.size(), second.state_hashes.size());
    EXPECT_EQ(first.state_hashes, second.state_hashes);
    EXPECT_EQ(first.trace.size(), second.trace.size());
    EXPECT_EQ(first.final_mrib.hash(), second.final_mrib.hash());
}

TEST(CheckScenario, MutationsFailTheBaselineBranch) {
    for (const std::string& mutation : known_mutations()) {
        RunConfig cfg;
        cfg.mutation = mutation;
        // Fault-dependent mutations (e.g. a stale RP set) show no symptom
        // until the fault fires, so their home scenario's fault is forced
        // here; the explorer test below covers finding it unaided.
        cfg.forced_fault = forced_fault_for_mutation(mutation);
        const RunResult result =
            run_scenario(scenario_for_mutation(mutation), cfg);
        EXPECT_FALSE(result.violations.empty())
            << mutation << " was not caught on the baseline branch";
    }
}

TEST(CheckScenario, RpFailoverRehomesToAlternate) {
    RunConfig crash;
    crash.forced_fault = "crash-router-R1";
    const RunResult crashed = run_scenario("rp-failover", crash);
    // The §3.9 oracle inside the scenario asserts every member's (*,G) is
    // rooted at R2 by the deadline; any violation here is a failover bug.
    EXPECT_TRUE(crashed.violations.empty()) << render(crashed.violations);
    EXPECT_FALSE(crashed.clean);

    const RunResult calm = run_scenario("rp-failover", RunConfig{});
    EXPECT_TRUE(calm.violations.empty()) << render(calm.violations);

    // The two end states must be structurally different trees (different
    // RP roots), and the diff machinery must see that.
    const telemetry::MribDiff d = telemetry::diff(calm.final_mrib,
                                                  crashed.final_mrib);
    EXPECT_FALSE(d.empty());
    EXPECT_NE(calm.final_mrib.hash(), crashed.final_mrib.hash());
}

TEST(CheckExplorer, MutationGateCatchesSeededBugs) {
    for (const std::string& mutation : known_mutations()) {
        ExploreOptions options;
        options.scenario = scenario_for_mutation(mutation);
        options.mutation = mutation;
        options.max_runs = 5;
        options.stop_at_first_violation = true;
        const ExploreReport report = explore(options);
        EXPECT_GT(report.violating_runs, 0u) << mutation << " not caught";
        ASSERT_FALSE(report.counterexamples.empty()) << mutation;
        const Counterexample& ce = report.counterexamples.front();
        EXPECT_FALSE(ce.violations.empty());
        EXPECT_NE(ce.script.find("pimcheck counterexample"), std::string::npos);
        EXPECT_FALSE(ce.trace_dump.empty());
    }
}

TEST(CheckExplorer, ShrinkDropsIrrelevantPicks) {
    // With a seeded bug the deterministic baseline already fails, so any
    // forced pick is removable and shrinking must reach the empty set.
    ExploreOptions options;
    options.mutation = "skip-spt-bit-handshake";
    const ChoiceSet shrunk = shrink_counterexample(options, ChoiceSet{{0, 1}});
    EXPECT_TRUE(shrunk.empty());
}

TEST(CheckExplorer, ExploresDistinctStatesWithoutViolations) {
    ExploreOptions options;
    options.max_runs = 8;
    options.max_depth = 2;
    options.time_budget_seconds = 60.0;
    const ExploreReport report = explore(options);
    EXPECT_TRUE(report.clean());
    EXPECT_GE(report.runs, 2u);
    EXPECT_GT(report.deduped_states, 10u);
}

} // namespace
} // namespace pimlib::check
