// Tests for the state-space checker itself (src/check): choice encoding,
// replay determinism, the scenario oracles on known-good and known-bad
// branches, the mutation gate (forward and backward), shrinking, and the
// parallel explorer's thread-count independence.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>

#include "check/backward.hpp"
#include "check/explorer.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/snapshot.hpp"

namespace pimlib::check {
namespace {

std::string render(const std::vector<Violation>& violations) {
    std::string out;
    for (const Violation& v : violations) {
        out += v.oracle + ": " + v.detail + "\n";
    }
    return out;
}

TEST(ChoiceCodec, FormatParseRoundTrip) {
    const ChoiceSet choices = {{3, 1}, {17, 2}, {240, 1}};
    const std::string wire = format_choices(choices);
    const auto parsed = parse_choices(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, choices);
}

TEST(ChoiceCodec, ParseRejectsGarbage) {
    EXPECT_FALSE(parse_choices("not-a-spec").has_value());
    EXPECT_FALSE(parse_choices("3:").has_value());
    EXPECT_FALSE(parse_choices("3:1,").has_value());
    EXPECT_FALSE(parse_choices(":2").has_value());
}

TEST(ChoiceCodec, ParseSortsByIndex) {
    const auto parsed = parse_choices("17:2,3:1");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, (ChoiceSet{{3, 1}, {17, 2}}));
}

TEST(ChoiceCodec, FuzzRoundTrip) {
    // Random (but seeded) sparse choice sets must survive format -> parse
    // unchanged: the wire format is how counterexamples reach --replay.
    std::mt19937 rng(20260807);
    std::uniform_int_distribution<std::uint32_t> index_dist(0, 50'000);
    std::uniform_int_distribution<std::uint32_t> value_dist(1, 40);
    std::uniform_int_distribution<int> size_dist(0, 12);
    for (int round = 0; round < 300; ++round) {
        ChoiceSet choices;
        std::set<std::uint32_t> used;
        const int size = size_dist(rng);
        while (static_cast<int>(choices.size()) < size) {
            const std::uint32_t index = index_dist(rng);
            if (!used.insert(index).second) continue;
            choices.push_back(Pick{index, value_dist(rng)});
        }
        std::sort(choices.begin(), choices.end(),
                  [](const Pick& a, const Pick& b) { return a.index < b.index; });
        const auto parsed = parse_choices(format_choices(choices));
        ASSERT_TRUE(parsed.has_value()) << format_choices(choices);
        EXPECT_EQ(*parsed, choices) << format_choices(choices);
    }
}

TEST(CheckScenario, BaselineWalkthroughSatisfiesAllOracles) {
    const RunResult result = run_scenario("walkthrough", RunConfig{});
    EXPECT_TRUE(result.violations.empty()) << render(result.violations);
    EXPECT_TRUE(result.clean);
    EXPECT_TRUE(result.converged);
    EXPECT_TRUE(result.choices_applied);
    EXPECT_GT(result.state_hashes.size(), 10u);
}

TEST(CheckScenario, ReplayIsDeterministic) {
    const RunResult first = run_scenario("walkthrough", RunConfig{});
    const RunResult second = run_scenario("walkthrough", RunConfig{});
    ASSERT_EQ(first.state_hashes.size(), second.state_hashes.size());
    EXPECT_EQ(first.state_hashes, second.state_hashes);
    EXPECT_EQ(first.trace.size(), second.trace.size());
    EXPECT_EQ(first.final_mrib.hash(), second.final_mrib.hash());
}

TEST(CheckScenario, MutationsFailTheTriggeredBranch) {
    for (const std::string& mutation : known_mutations()) {
        RunConfig cfg;
        cfg.mutation = mutation;
        // Fault-dependent mutations (e.g. a stale RP set) show no symptom
        // until the fault fires, and loss-dependent ones (one-shot assert,
        // fragile RP holdtime) additionally need a specific frame lost;
        // force the documented trigger — the explorer tests below cover
        // finding it unaided.
        cfg.forced_fault = forced_fault_for_mutation(mutation);
        cfg.forced_loss = trigger_for_mutation(mutation).losses;
        const RunResult result =
            run_scenario(scenario_for_mutation(mutation), cfg);
        EXPECT_FALSE(result.violations.empty())
            << mutation << " was not caught on its trigger branch";
    }
}

TEST(CheckScenario, RequiresSearchFlagsExactlyTheLossDependentMutations) {
    // The smoke gate's >=5x backward-advantage bar applies only to
    // mutations whose trigger involves frame loss; keep the flag honest.
    std::set<std::string> loss_dependent;
    for (const std::string& mutation : known_mutations()) {
        if (mutation_requires_search(mutation)) loss_dependent.insert(mutation);
    }
    EXPECT_EQ(loss_dependent, (std::set<std::string>{
                                  "one-shot-assert", "fragile-rp-holdtime"}));
}

TEST(CheckScenario, RpFailoverRehomesToAlternate) {
    RunConfig crash;
    crash.forced_fault = "crash-router-R1";
    const RunResult crashed = run_scenario("rp-failover", crash);
    // The §3.9 oracle inside the scenario asserts every member's (*,G) is
    // rooted at R2 by the deadline; any violation here is a failover bug.
    EXPECT_TRUE(crashed.violations.empty()) << render(crashed.violations);
    EXPECT_FALSE(crashed.clean);

    const RunResult calm = run_scenario("rp-failover", RunConfig{});
    EXPECT_TRUE(calm.violations.empty()) << render(calm.violations);

    // The two end states must be structurally different trees (different
    // RP roots), and the diff machinery must see that.
    const telemetry::MribDiff d = telemetry::diff(calm.final_mrib,
                                                  crashed.final_mrib);
    EXPECT_FALSE(d.empty());
    EXPECT_NE(calm.final_mrib.hash(), crashed.final_mrib.hash());
}

TEST(CheckExplorer, MutationGateCatchesSeededBugs) {
    for (const std::string& mutation : known_mutations()) {
        if (mutation_requires_search(mutation)) continue; // backward test below
        ExploreOptions options;
        options.scenario = scenario_for_mutation(mutation);
        options.mutation = mutation;
        options.max_runs = 5;
        options.stop_at_first_violation = true;
        const ExploreReport report = explore(options);
        EXPECT_GT(report.violating_runs, 0u) << mutation << " not caught";
        ASSERT_FALSE(report.counterexamples.empty()) << mutation;
        const Counterexample& ce = report.counterexamples.front();
        EXPECT_FALSE(ce.violations.empty());
        EXPECT_NE(ce.script.find("pimcheck counterexample"), std::string::npos);
        EXPECT_FALSE(ce.trace_dump.empty());
    }
}

TEST(CheckBackward, CatchesEverySeededMutation) {
    for (const std::string& mutation : known_mutations()) {
        BackwardOptions options;
        options.mutation = mutation;
        options.target = target_for_mutation(mutation);
        options.scenario = scenario_for_mutation(options.mutation);
        options.max_replays = 100;
        const BackwardReport report = backward_search(options);
        EXPECT_TRUE(report.found()) << mutation << " not found backward";
        ASSERT_FALSE(report.counterexamples.empty()) << mutation;
        const Counterexample& ce = report.counterexamples.front();
        EXPECT_FALSE(ce.violations.empty()) << mutation;
        // The hit must match the searched-for target family.
        EXPECT_TRUE(target_matches(options.target, ce.violations))
            << mutation << ": " << render(ce.violations);
    }
}

TEST(CheckBackward, BeatsForwardOnLossDependentMutations) {
    // Cheap in-test version of the smoke gate's >=5x bar (the gate itself
    // measures the full ratio against a 400-run forward cap): forward
    // search burns 25 runs without a hit on each loss-dependent mutation —
    // the measured forward cost is hundreds to thousands of runs — while
    // backward lands within a small fixed replay budget (measured: 5 for
    // one-shot-assert, 35 for fragile-rp-holdtime).
    for (const std::string& mutation : known_mutations()) {
        if (!mutation_requires_search(mutation)) continue;

        ExploreOptions forward;
        forward.scenario = scenario_for_mutation(mutation);
        forward.mutation = mutation;
        forward.max_runs = 25;
        forward.stop_at_first_violation = true;
        const ExploreReport fwd = explore(forward);
        EXPECT_EQ(fwd.violating_runs, 0u)
            << mutation << " unexpectedly trivial for forward search";

        BackwardOptions backward;
        backward.mutation = mutation;
        backward.target = target_for_mutation(mutation);
        backward.scenario = scenario_for_mutation(backward.mutation);
        backward.max_replays = 100;
        const BackwardReport bwd = backward_search(backward);
        ASSERT_TRUE(bwd.found()) << mutation;
        EXPECT_LE(bwd.replays_to_hit, 50u)
            << mutation << " backward took " << bwd.replays_to_hit;
    }
}

TEST(CheckBackward, HealthyProtocolComesUpDry) {
    for (const std::string& target : backward_targets()) {
        BackwardOptions options;
        options.target = target;
        options.scenario = default_scenario_for_target(target);
        options.max_replays = 30;
        const BackwardReport report = backward_search(options);
        EXPECT_FALSE(report.found()) << target << " hit on healthy protocol";
        EXPECT_EQ(report.violating_runs, 0u) << target;
    }
}

TEST(CheckExplorer, ShrinkDropsIrrelevantPicks) {
    // With a seeded bug the deterministic baseline already fails, so any
    // forced pick is removable and shrinking must reach the empty set.
    ExploreOptions options;
    options.mutation = "skip-spt-bit-handshake";
    const ChoiceSet shrunk = shrink_counterexample(options, ChoiceSet{{0, 1}});
    EXPECT_TRUE(shrunk.empty());
}

TEST(CheckExplorer, ShrinkIsIdempotentAndMinimal) {
    // stale-rp-set-after-bsr-failover needs exactly its crash fault: find
    // the counterexample backward, then check the shrunk choice set (a) is
    // a fixed point of shrinking and (b) cannot lose any single pick and
    // still violate.
    BackwardOptions backward;
    backward.mutation = "stale-rp-set-after-bsr-failover";
    backward.target = target_for_mutation(backward.mutation);
    backward.scenario = scenario_for_mutation(backward.mutation);
    backward.max_replays = 50;
    const BackwardReport report = backward_search(backward);
    ASSERT_TRUE(report.found());
    const ChoiceSet shrunk = report.counterexamples.front().choices;
    ASSERT_FALSE(shrunk.empty()); // the fault pick must survive shrinking

    ExploreOptions options;
    options.scenario = backward.scenario;
    options.mutation = backward.mutation;
    EXPECT_EQ(shrink_counterexample(options, shrunk), shrunk);

    for (std::size_t drop = 0; drop < shrunk.size(); ++drop) {
        ChoiceSet smaller = shrunk;
        smaller.erase(smaller.begin() + static_cast<std::ptrdiff_t>(drop));
        RunConfig cfg;
        cfg.choices = smaller;
        cfg.mutation = options.mutation;
        const RunResult result = run_scenario(options.scenario, cfg);
        EXPECT_TRUE(result.violations.empty())
            << "dropping pick " << drop << " still violates: not minimal";
    }
}

TEST(CheckExplorer, SkippedBranchesBoundedAndMetricsPublished) {
    telemetry::Registry registry;
    ExploreOptions options;
    options.mutation = "no-rp-bit-prune";
    options.scenario = scenario_for_mutation(options.mutation);
    options.max_runs = 6;
    options.stop_at_first_violation = true;
    options.metrics = &registry;
    const ExploreReport report = explore(options);
    EXPECT_GT(report.violating_runs, 0u);
    // A skipped branch (forced picks that no longer apply after the prefix
    // reshaped the run) is still a completed execution: always <= runs.
    EXPECT_LE(report.skipped_branches, report.runs);
    EXPECT_LE(report.runs, options.max_runs);

    const std::string prom = telemetry::to_prometheus(registry);
    EXPECT_NE(prom.find("pimlib_check_runs_total"), std::string::npos);
    EXPECT_NE(prom.find("pimlib_check_violating_runs_total"), std::string::npos);
    EXPECT_NE(prom.find("pimlib_check_counterexamples_total"), std::string::npos);
    EXPECT_NE(prom.find("engine=\"forward\""), std::string::npos);
}

TEST(CheckExplorer, ThreadCountDoesNotChangeResults) {
    // The wave-synchronous explorer must be bit-identical across thread
    // counts: same runs, same dedup, same counterexamples.
    auto run_with = [](std::size_t threads) {
        ExploreOptions options;
        options.scenario = "walkthrough";
        options.max_runs = 60;
        options.threads = threads;
        return explore(options);
    };
    const ExploreReport one = run_with(1);
    const ExploreReport eight = run_with(8);
    EXPECT_EQ(one.runs, eight.runs);
    EXPECT_EQ(one.deduped_states, eight.deduped_states);
    EXPECT_EQ(one.violating_runs, eight.violating_runs);
    EXPECT_EQ(one.skipped_branches, eight.skipped_branches);
    ASSERT_EQ(one.counterexamples.size(), eight.counterexamples.size());
    for (std::size_t i = 0; i < one.counterexamples.size(); ++i) {
        EXPECT_EQ(format_choices(one.counterexamples[i].choices),
                  format_choices(eight.counterexamples[i].choices));
    }
}

TEST(CheckExplorer, ExploresDistinctStatesWithoutViolations) {
    ExploreOptions options;
    options.max_runs = 8;
    options.max_depth = 2;
    options.time_budget_seconds = 60.0;
    const ExploreReport report = explore(options);
    EXPECT_TRUE(report.clean());
    EXPECT_GE(report.runs, 2u);
    EXPECT_GT(report.deduped_states, 10u);
}

} // namespace
} // namespace pimlib::check
