// Forwarding-entry and data-plane tests: oif timers, pinning, the §3.5
// forwarding rules including both SPT-bit transition exceptions, and the
// negative-cache prune bookkeeping.
#include <gtest/gtest.h>

#include "mcast/forwarding_cache.hpp"
#include "test_util.hpp"
#include "topo/segment.hpp"

namespace pimlib::test {
namespace {

using mcast::ForwardingCache;
using mcast::ForwardingEntry;

const net::Ipv4Address kSrc(10, 0, 1, 3);
const net::Ipv4Address kRp(192, 168, 0, 3);

TEST(ForwardingEntry, FactoryFlags) {
    auto sg = ForwardingEntry::make_sg(kSrc, kGroup);
    EXPECT_FALSE(sg.wildcard());
    EXPECT_FALSE(sg.rp_bit());
    EXPECT_FALSE(sg.spt_bit());
    EXPECT_EQ(sg.source_or_rp(), kSrc);

    auto wc = ForwardingEntry::make_wc(kRp, kGroup);
    EXPECT_TRUE(wc.wildcard());
    EXPECT_TRUE(wc.rp_bit()); // shared tree iif faces the RP
    EXPECT_EQ(wc.source_or_rp(), kRp); // "saves the RP address in place of the source"
}

TEST(ForwardingEntry, OifTimersExpireAndRefresh) {
    auto e = ForwardingEntry::make_sg(kSrc, kGroup);
    e.add_oif(1, 100);
    e.add_oif(2, 200);
    EXPECT_EQ(e.live_oifs(50).size(), 2u);
    EXPECT_EQ(e.live_oifs(150).size(), 1u);
    e.refresh_oif(1, 300);
    EXPECT_EQ(e.live_oifs(150).size(), 2u);
    // refresh never shortens a timer
    e.refresh_oif(1, 120);
    ASSERT_NE(e.find_oif(1), nullptr);
    EXPECT_TRUE(e.find_oif(1)->expires == 300);
    auto removed = e.expire_oifs(250);
    EXPECT_EQ(removed, std::vector<int>{2});
    EXPECT_FALSE(e.has_oif(2));
}

TEST(ForwardingEntry, PinnedOifsNeverExpire) {
    auto e = ForwardingEntry::make_wc(kRp, kGroup);
    e.pin_oif(1);
    EXPECT_EQ(e.live_oifs(1'000'000).size(), 1u);
    EXPECT_TRUE(e.expire_oifs(1'000'000).empty());
    e.unpin_oif(1);
    EXPECT_FALSE(e.has_oif(1));
    // Pinned + timed: unpin keeps the timed part.
    e.add_oif(2, 500);
    e.pin_oif(2);
    e.unpin_oif(2);
    EXPECT_TRUE(e.has_oif(2));
    EXPECT_EQ(e.live_oifs(400).size(), 1u);
    EXPECT_EQ(e.live_oifs(600).size(), 0u);
}

TEST(ForwardingEntry, AddOifClearsDeletionTimer) {
    auto e = ForwardingEntry::make_sg(kSrc, kGroup);
    e.set_delete_at(500);
    e.add_oif(1, 100);
    EXPECT_EQ(e.delete_at(), 0);
}

TEST(ForwardingEntry, PrunedOifBookkeeping) {
    auto e = ForwardingEntry::make_sg(kSrc, kGroup);
    e.set_rp_bit(true);
    e.add_oif(1, 100);
    e.add_oif(2, 100);
    e.mark_pruned(1);
    EXPECT_FALSE(e.has_oif(1));
    EXPECT_TRUE(e.is_pruned(1));
    EXPECT_TRUE(e.has_oif(2));
    e.clear_pruned(1);
    EXPECT_FALSE(e.is_pruned(1));
}

TEST(ForwardingCache, LookupPrecedence) {
    ForwardingCache cache;
    cache.ensure_wc(kRp, kGroup);
    cache.ensure_sg(kSrc, kGroup);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.sg_count(), 1u);
    EXPECT_EQ(cache.wc_count(), 1u);
    EXPECT_NE(cache.find_sg(kSrc, kGroup), nullptr);
    EXPECT_NE(cache.find_wc(kGroup), nullptr);
    EXPECT_EQ(cache.find_sg(net::Ipv4Address(9, 9, 9, 9), kGroup), nullptr);
    cache.remove_sg(kSrc, kGroup);
    cache.remove_wc(kGroup);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ForwardingCache, ReapExpiredEntries) {
    ForwardingCache cache;
    auto& a = cache.ensure_sg(kSrc, kGroup);
    a.set_delete_at(100);
    auto& b = cache.ensure_sg(net::Ipv4Address(10, 0, 2, 3), kGroup);
    b.set_delete_at(300);
    auto removed = cache.reap_expired_entries(200);
    ASSERT_EQ(removed.size(), 1u);
    EXPECT_EQ(removed[0].first, kSrc);
    EXPECT_EQ(cache.sg_count(), 1u);
}

// --- Data-plane tests on a tiny real topology ---

class DataPlaneTest : public ::testing::Test, public mcast::DataPlane::Delegate {
protected:
    DataPlaneTest() {
        r = &net.add_router("r");
        lan_in = &net.add_lan({r});   // ifindex 0
        lan_a = &net.add_lan({r});    // ifindex 1
        lan_b = &net.add_lan({r});    // ifindex 2
        source = &net.add_host("src", *lan_in);
        member_a = &net.add_host("a", *lan_a);
        member_b = &net.add_host("b", *lan_b);
        member_a->join_group(kGroup);
        member_b->join_group(kGroup);
        plane = std::make_unique<mcast::DataPlane>(*r, cache);
        plane->set_delegate(this);
    }

    void send_from_source() {
        source->send_data(kGroup);
        net.run_for(10 * sim::kMillisecond);
    }

    // Delegate counters.
    void on_no_entry(int, const net::Packet&) override { ++no_entry; }
    void on_wildcard_forward(int, const net::Packet&) override { ++wildcard_forward; }
    void on_spt_bit_set(mcast::ForwardingEntry&) override { ++spt_set; }
    void on_iif_check_failed(int, const net::Packet&) override { ++iif_failed; }

    topo::Network net;
    topo::Router* r;
    topo::Segment* lan_in;
    topo::Segment* lan_a;
    topo::Segment* lan_b;
    topo::Host* source;
    topo::Host* member_a;
    topo::Host* member_b;
    ForwardingCache cache;
    std::unique_ptr<mcast::DataPlane> plane;
    int no_entry = 0;
    int wildcard_forward = 0;
    int spt_set = 0;
    int iif_failed = 0;
};

TEST_F(DataPlaneTest, NoEntryInvokesDelegateOnly) {
    send_from_source();
    EXPECT_EQ(no_entry, 1);
    EXPECT_EQ(member_a->received_count(kGroup), 0u);
}

TEST_F(DataPlaneTest, SgEntryReplicatesToLiveOifs) {
    auto& sg = cache.ensure_sg(source->address(), kGroup);
    sg.set_iif(0);
    sg.set_spt_bit(true);
    sg.pin_oif(1);
    sg.pin_oif(2);
    send_from_source();
    EXPECT_EQ(member_a->received_count(kGroup), 1u);
    EXPECT_EQ(member_b->received_count(kGroup), 1u);
    EXPECT_GT(sg.last_data_at(), 0);
}

TEST_F(DataPlaneTest, IifCheckDropsWrongInterface) {
    auto& sg = cache.ensure_sg(source->address(), kGroup);
    sg.set_iif(1); // wrong on purpose: data arrives on 0
    sg.set_spt_bit(true);
    sg.pin_oif(2);
    send_from_source();
    EXPECT_EQ(iif_failed, 1);
    EXPECT_EQ(member_b->received_count(kGroup), 0u);
    EXPECT_EQ(net.stats().data_dropped_iif(), 1u);
}

TEST_F(DataPlaneTest, WildcardMatchForwardsAndNotifies) {
    auto& wc = cache.ensure_wc(kRp, kGroup);
    wc.set_iif(0);
    wc.pin_oif(1);
    send_from_source();
    EXPECT_EQ(wildcard_forward, 1);
    EXPECT_EQ(member_a->received_count(kGroup), 1u);
    EXPECT_EQ(member_b->received_count(kGroup), 0u);
}

TEST_F(DataPlaneTest, ClearedSptBitFirstException) {
    // (S,G) exists with cleared SPT bit and iif 1 (the SPT side), but data
    // still arrives on the shared iif 0: must forward per (*,G).
    auto& wc = cache.ensure_wc(kRp, kGroup);
    wc.set_iif(0);
    wc.pin_oif(2);
    auto& sg = cache.ensure_sg(source->address(), kGroup);
    sg.set_iif(1);
    sg.pin_oif(2);
    send_from_source();
    EXPECT_EQ(member_b->received_count(kGroup), 1u);
    EXPECT_FALSE(sg.spt_bit());
    EXPECT_EQ(spt_set, 0);
    EXPECT_EQ(wildcard_forward, 1);
}

TEST_F(DataPlaneTest, ClearedSptBitSecondExceptionSetsBit) {
    // Data arrives on the (S,G) iif: forward and set the SPT bit.
    auto& sg = cache.ensure_sg(source->address(), kGroup);
    sg.set_iif(0);
    sg.pin_oif(1);
    send_from_source();
    EXPECT_TRUE(sg.spt_bit());
    EXPECT_EQ(spt_set, 1);
    EXPECT_EQ(member_a->received_count(kGroup), 1u);
}

TEST_F(DataPlaneTest, ClearedSptBitWrongEverywhereDrops) {
    auto& wc = cache.ensure_wc(kRp, kGroup);
    wc.set_iif(1);
    wc.pin_oif(2);
    auto& sg = cache.ensure_sg(source->address(), kGroup);
    sg.set_iif(2);
    sg.pin_oif(1);
    send_from_source();
    EXPECT_EQ(iif_failed, 1);
    EXPECT_EQ(member_a->received_count(kGroup), 0u);
    EXPECT_EQ(member_b->received_count(kGroup), 0u);
}

TEST_F(DataPlaneTest, ExpiredOifNotUsed) {
    auto& sg = cache.ensure_sg(source->address(), kGroup);
    sg.set_iif(0);
    sg.set_spt_bit(true);
    sg.add_oif(1, net.simulator().now() + 1); // expires ~immediately
    sg.pin_oif(2);
    net.run_for(10 * sim::kMillisecond);
    send_from_source();
    EXPECT_EQ(member_a->received_count(kGroup), 0u);
    EXPECT_EQ(member_b->received_count(kGroup), 1u);
}

TEST_F(DataPlaneTest, TtlOneNotReplicated) {
    auto& sg = cache.ensure_sg(source->address(), kGroup);
    sg.set_iif(0);
    sg.set_spt_bit(true);
    sg.pin_oif(1);
    net::Packet p;
    p.src = source->address();
    p.dst = kGroup.address();
    p.proto = net::IpProto::kUdp;
    p.ttl = 1;
    p.seq = 1;
    source->send(0, net::Frame{std::nullopt, std::move(p)});
    net.run_for(10 * sim::kMillisecond);
    EXPECT_EQ(member_a->received_count(kGroup), 0u);
    EXPECT_EQ(net.stats().data_dropped_ttl(), 1u);
}

TEST_F(DataPlaneTest, ReplicateNeverSendsBackOutArrivalInterface) {
    auto& sg = cache.ensure_sg(source->address(), kGroup);
    sg.set_iif(0);
    sg.set_spt_bit(true);
    sg.pin_oif(0); // deliberately include the iif in the oif list
    sg.pin_oif(1);
    auto& echo_listener = net.add_host("echo", *lan_in);
    echo_listener.join_group(kGroup);
    send_from_source();
    EXPECT_EQ(member_a->received_count(kGroup), 1u);
    // The host on the source LAN hears the original LAN transmission (1)
    // but must not get a router-echoed copy.
    EXPECT_EQ(echo_listener.received_count(kGroup), 1u);
}

} // namespace
} // namespace pimlib::test
