// Unit + property tests for the graph toolkit, including Wall's 2× bound on
// optimal center-based trees (§1.3, reference [11]).
#include <gtest/gtest.h>

#include <random>

#include "graph/center_tree.hpp"
#include "graph/random_graph.hpp"
#include "graph/shortest_path.hpp"
#include "graph/tree_metrics.hpp"

namespace pimlib::graph {
namespace {

Graph square_with_diagonal() {
    // 0-1, 1-2, 2-3, 3-0 (weight 1 each) plus 0-2 (weight 5).
    Graph g(4);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 1);
    g.add_edge(2, 3, 1);
    g.add_edge(3, 0, 1);
    g.add_edge(0, 2, 5);
    return g;
}

TEST(Graph, BasicAccounting) {
    Graph g = square_with_diagonal();
    EXPECT_EQ(g.node_count(), 4);
    EXPECT_EQ(g.edge_count(), 5);
    EXPECT_TRUE(g.has_edge(0, 2));
    EXPECT_TRUE(g.has_edge(2, 0));
    EXPECT_FALSE(g.has_edge(1, 3));
    EXPECT_DOUBLE_EQ(g.average_degree(), 2.5);
    EXPECT_TRUE(g.connected());
}

TEST(Graph, RejectsBadEdges) {
    Graph g(3);
    EXPECT_THROW(g.add_edge(0, 0, 1), std::invalid_argument);
    EXPECT_THROW(g.add_edge(0, 3, 1), std::out_of_range);
}

TEST(Graph, DisconnectedDetected) {
    Graph g(4);
    g.add_edge(0, 1, 1);
    g.add_edge(2, 3, 1);
    EXPECT_FALSE(g.connected());
}

TEST(Dijkstra, ShortestPathsOnSquare) {
    Graph g = square_with_diagonal();
    ShortestPathTree t = dijkstra(g, 0);
    EXPECT_DOUBLE_EQ(t.distance[0], 0);
    EXPECT_DOUBLE_EQ(t.distance[1], 1);
    EXPECT_DOUBLE_EQ(t.distance[2], 2); // via 1 or 3, not the weight-5 diagonal
    EXPECT_DOUBLE_EQ(t.distance[3], 1);
    const auto path = t.path_to(2);
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(path.front(), 0);
    EXPECT_EQ(path.back(), 2);
}

TEST(Dijkstra, UnreachableIsInfinite) {
    Graph g(3);
    g.add_edge(0, 1, 1);
    ShortestPathTree t = dijkstra(g, 0);
    EXPECT_TRUE(std::isinf(t.distance[2]));
    EXPECT_TRUE(t.path_to(2).empty());
}

TEST(AllPairs, MatchesSingleSource) {
    std::mt19937 rng(11);
    Graph g = random_connected_graph({.nodes = 20, .average_degree = 3}, rng);
    AllPairs ap(g);
    for (int s = 0; s < 20; s += 5) {
        ShortestPathTree t = dijkstra(g, s);
        for (int v = 0; v < 20; ++v) {
            EXPECT_DOUBLE_EQ(ap.distance(s, v), t.distance[static_cast<std::size_t>(v)]);
        }
    }
}

TEST(RandomGraph, ConnectedWithRequestedSize) {
    std::mt19937 rng(42);
    for (double degree : {3.0, 5.0, 8.0}) {
        Graph g = random_connected_graph({.nodes = 50, .average_degree = degree}, rng);
        EXPECT_EQ(g.node_count(), 50);
        EXPECT_TRUE(g.connected());
        EXPECT_NEAR(g.average_degree(), degree, 0.1);
    }
}

TEST(RandomGraph, RejectsImpossibleDegree) {
    std::mt19937 rng(1);
    EXPECT_THROW(random_connected_graph({.nodes = 4, .average_degree = 10}, rng),
                 std::invalid_argument);
    EXPECT_THROW(random_connected_graph({.nodes = 1, .average_degree = 1}, rng),
                 std::invalid_argument);
}

TEST(RandomGraph, SampleNodesDistinct) {
    std::mt19937 rng(5);
    auto picked = sample_nodes(50, 10, rng);
    EXPECT_EQ(picked.size(), 10u);
    std::sort(picked.begin(), picked.end());
    EXPECT_EQ(std::unique(picked.begin(), picked.end()), picked.end());
    EXPECT_THROW(sample_nodes(5, 6, rng), std::invalid_argument);
}

TEST(CenterTree, MaxDelayUsesTopTwoDistances) {
    // Path 0 - 1 - 2 with weights 1, 2; members {0, 2}; core candidates:
    Graph g(3);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 2);
    AllPairs ap(g);
    const std::vector<int> members{0, 2};
    // Via core 1: d(0,1)+d(1,2) = 3. Via core 0: d(2,0)+d(0,... second max
    // is member 0 itself at distance 0 -> 3 + 0? No: ordered pairs require
    // distinct members: top1=d(2,0)=3, top2=d(0,0)=0 -> 3.
    EXPECT_DOUBLE_EQ(core_tree_max_delay(ap, members, 1), 3.0);
    EXPECT_DOUBLE_EQ(core_tree_max_delay(ap, members, 0), 3.0);
    EXPECT_DOUBLE_EQ(spt_max_delay(ap, members), 3.0);
}

TEST(CenterTree, OptimalCoreMinimizesMaxDelay) {
    // Star: center 0 with leaves 1..4 (weight 1). Members = leaves.
    Graph g(5);
    for (int leaf = 1; leaf <= 4; ++leaf) g.add_edge(0, leaf, 1);
    AllPairs ap(g);
    const std::vector<int> members{1, 2, 3, 4};
    EXPECT_EQ(optimal_core(ap, members), 0);
    EXPECT_DOUBLE_EQ(core_tree_max_delay(ap, members, 0), 2.0);
    EXPECT_DOUBLE_EQ(core_tree_max_delay(ap, members, 1), 4.0);
}

TEST(CenterTree, BuildCollectsUnionOfPaths) {
    Graph g(5);
    for (int leaf = 1; leaf <= 4; ++leaf) g.add_edge(0, leaf, 1);
    AllPairs ap(g);
    CenterTree tree = build_center_tree(ap, {1, 2, 3}, 0);
    EXPECT_EQ(tree.edges.size(), 3u);
    EXPECT_TRUE(tree.edges.contains({0, 1}));
    EXPECT_TRUE(tree.edges.contains({0, 3}));
    EXPECT_FALSE(tree.edges.contains({0, 4}));
}

// The paper (§1.3): "David Wall proved that the bound on maximum delay of an
// optimal core-based tree is 2 times the shortest-path delay." Property-test
// it over random graphs and group sizes.
class WallBoundTest : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(WallBoundTest, OptimalCoreWithinTwiceSpt) {
    const auto [nodes, degree, group_size] = GetParam();
    std::mt19937 rng(static_cast<std::uint32_t>(nodes * 1000 + group_size));
    for (int trial = 0; trial < 20; ++trial) {
        Graph g = random_connected_graph({.nodes = nodes, .average_degree = degree}, rng);
        AllPairs ap(g);
        const auto members = sample_nodes(nodes, group_size, rng);
        const int core = optimal_core(ap, members);
        const double cbt = core_tree_max_delay(ap, members, core);
        const double spt = spt_max_delay(ap, members);
        EXPECT_LE(cbt, 2.0 * spt + 1e-9);
        EXPECT_GE(cbt, spt - 1e-9); // a shared tree can never beat direct paths
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WallBoundTest,
    ::testing::Combine(::testing::Values(20, 50), ::testing::Values(3.0, 6.0),
                       ::testing::Values(2, 5, 10)));

TEST(TrafficConcentration, CbtConcentratesMoreThanSpt) {
    std::mt19937 rng(99);
    Graph g = random_connected_graph({.nodes = 50, .average_degree = 4}, rng);
    AllPairs ap(g);
    LinkFlowCounter spt_counter;
    LinkFlowCounter cbt_counter;
    for (int group = 0; group < 50; ++group) {
        auto members = sample_nodes(50, 40, rng);
        std::vector<int> senders(members.begin(), members.begin() + 32);
        add_spt_group_flows(ap, members, senders, spt_counter);
        const int core = optimal_core(ap, members);
        CenterTree tree = build_center_tree(ap, members, core);
        add_center_tree_group_flows(ap, members, senders, tree, cbt_counter);
    }
    // The paper's Fig. 2(b) result in miniature.
    EXPECT_GT(cbt_counter.max_flows(), spt_counter.max_flows());
}

TEST(TrafficConcentration, FlowCounterBasics) {
    LinkFlowCounter c;
    EXPECT_EQ(c.max_flows(), 0u);
    c.add_flow_on(1, 2);
    c.add_flow_on(2, 1); // same undirected link
    c.add_flow_on(3, 4);
    EXPECT_EQ(c.max_flows(), 2u);
    EXPECT_EQ(c.total_flows(), 3u);
    EXPECT_EQ(c.links_used(), 2u);
}

TEST(TrafficConcentration, SenderOffTreeAddsPathToCore) {
    // Path 0-1-2; members {1,2} so the tree is {1-2} rooted wherever; sender
    // 0 is off-tree and must reach the core.
    Graph g(3);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 1);
    AllPairs ap(g);
    const std::vector<int> members{1, 2};
    CenterTree tree = build_center_tree(ap, members, /*core=*/1);
    LinkFlowCounter counter;
    add_center_tree_group_flows(ap, members, {0}, tree, counter);
    EXPECT_EQ(counter.links_used(), 2u); // 0-1 (to core) and 1-2 (tree)
}

} // namespace
} // namespace pimlib::graph
