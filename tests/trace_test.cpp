// Packet tracer tests: capture, filters, and protocol-aware decoding of
// every control message family.
#include <gtest/gtest.h>

#include "test_util.hpp"
#include "trace/tracer.hpp"

namespace pimlib::test {
namespace {

class TraceTest : public ::testing::Test {
protected:
    TraceTest() : tracer_(topo_.net), stack_(topo_.net, fast_config()) {
        stack_.set_rp(kGroup, {topo_.c->router_id()});
        stack_.set_spt_policy(pim::SptPolicy::never());
    }

    Fig3Topology topo_;
    trace::PacketTracer tracer_;
    scenario::PimSmStack stack_;
};

TEST_F(TraceTest, CapturesAndDecodesPimExchange) {
    topo_.net.run_for(100 * sim::kMillisecond);
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);
    topo_.source->send_data(kGroup);
    topo_.net.run_for(300 * sim::kMillisecond);

    EXPECT_GT(tracer_.count_matching("PIM Query"), 0u);
    EXPECT_GT(tracer_.count_matching("IGMP Report grp=224.1.1.1"), 0u);
    EXPECT_GT(tracer_.count_matching("PIM Join/Prune grp=224.1.1.1"), 0u);
    EXPECT_GT(tracer_.count_matching("WC|RP"), 0u); // the shared-tree join flags
    // One register message, captured once per segment it crosses (D→B, B→C).
    EXPECT_EQ(tracer_.count_matching("PIM Register grp=224.1.1.1 src=" +
                                     topo_.source->address().to_string()),
              2u);
    EXPECT_GT(tracer_.count_matching("PIM RP-Reachability grp=224.1.1.1 rp=" +
                                     topo_.c->router_id().to_string()),
              0u);
    EXPECT_GT(tracer_.count_matching("DATA grp=224.1.1.1 seq=1"), 0u);

    const std::string dump = tracer_.dump();
    EXPECT_NE(dump.find("ms"), std::string::npos);
    EXPECT_NE(dump.find("seg"), std::string::npos);
}

TEST_F(TraceTest, ProtoFilterRestrictsCapture) {
    tracer_.set_proto_filter(net::IpProto::kUdp);
    topo_.net.run_for(100 * sim::kMillisecond);
    stack_.host_agent(*topo_.receiver).join(kGroup);
    topo_.net.run_for(200 * sim::kMillisecond);
    topo_.source->send_data(kGroup);
    topo_.net.run_for(300 * sim::kMillisecond);
    ASSERT_FALSE(tracer_.records().empty());
    for (const auto& r : tracer_.records()) {
        EXPECT_EQ(r.packet.proto, net::IpProto::kUdp);
    }
}

TEST_F(TraceTest, GroupFilterDropsOtherGroups) {
    const net::GroupAddress other{net::Ipv4Address(224, 9, 9, 9)};
    stack_.set_rp(other, {topo_.c->router_id()});
    tracer_.set_group_filter(kGroup);
    topo_.net.run_for(100 * sim::kMillisecond);
    tracer_.clear();
    stack_.host_agent(*topo_.receiver).join(other);
    topo_.net.run_for(300 * sim::kMillisecond);
    // Joins/reports for the other group were filtered out.
    EXPECT_EQ(tracer_.count_matching("224.9.9.9"), 0u);
}

TEST_F(TraceTest, EnableToggleAndClear) {
    topo_.net.run_for(50 * sim::kMillisecond);
    EXPECT_FALSE(tracer_.records().empty());
    tracer_.clear();
    tracer_.set_enabled(false);
    topo_.net.run_for(200 * sim::kMillisecond);
    EXPECT_TRUE(tracer_.records().empty());
    tracer_.set_enabled(true);
    topo_.net.run_for(200 * sim::kMillisecond);
    EXPECT_FALSE(tracer_.records().empty());
}

TEST(TraceDescribe, DecodesAllFamilies) {
    using trace::describe_packet;
    net::Packet p;
    p.proto = net::IpProto::kIgmp;

    p.payload = igmp::Query{net::Ipv4Address{}}.encode();
    EXPECT_EQ(describe_packet(p), "IGMP Query (general)");

    p.payload = igmp::RpMapReport{kGroup.address(), {net::Ipv4Address(1, 2, 3, 4)}}.encode();
    EXPECT_EQ(describe_packet(p), "IGMP RP-Map grp=224.1.1.1 rps=[1.2.3.4]");

    p.payload = dvmrp::PruneMsg{net::Ipv4Address(10, 0, 1, 3), kGroup.address(), 5}.encode();
    EXPECT_EQ(describe_packet(p), "DVMRP Prune src=10.0.1.3 grp=224.1.1.1");

    p.payload = dvmrp::GraftMsg{net::Ipv4Address(10, 0, 1, 3), kGroup.address()}.encode();
    EXPECT_EQ(describe_packet(p), "DVMRP Graft src=10.0.1.3 grp=224.1.1.1");

    p.proto = net::IpProto::kCbt;
    p.payload = cbt::JoinRequest{kGroup.address(), net::Ipv4Address(9, 9, 9, 9)}.encode();
    EXPECT_EQ(describe_packet(p), "CBT Join-Request grp=224.1.1.1 core=9.9.9.9");

    p.proto = net::IpProto::kOspf;
    mospf::MembershipLsa lsa;
    lsa.origin = net::Ipv4Address(192, 168, 0, 1);
    lsa.seq = 1;
    lsa.groups = {kGroup.address()};
    p.payload = lsa.encode();
    EXPECT_EQ(describe_packet(p), "MOSPF Membership-LSA origin=192.168.0.1 groups=1");

    p.proto = net::IpProto::kRip;
    p.payload = {};
    EXPECT_EQ(describe_packet(p), "DV Update");

    p.proto = net::IpProto::kUdp;
    p.dst = kGroup.address();
    p.seq = 7;
    EXPECT_EQ(describe_packet(p), "DATA grp=224.1.1.1 seq=7");

    // Malformed inputs decode to explicit markers, never crash.
    p.proto = net::IpProto::kIgmp;
    p.payload = {0x14, 0x02, 0x01};
    EXPECT_EQ(describe_packet(p), "PIM Join/Prune (malformed)");
}

TEST(TraceDescribe, DecodesEveryPimMessage) {
    using trace::describe_packet;
    net::Packet p;
    p.proto = net::IpProto::kIgmp;

    p.payload = pim::Query{30000}.encode();
    EXPECT_EQ(describe_packet(p), "PIM Query");

    pim::Register reg;
    reg.group = kGroup.address();
    reg.inner_src = net::Ipv4Address(10, 0, 5, 2);
    reg.inner_seq = 3;
    p.payload = reg.encode();
    EXPECT_EQ(describe_packet(p), "PIM Register grp=224.1.1.1 src=10.0.5.2 seq=3");

    // Join/Prune with every flag combination: a WC|RP shared-tree join, an
    // RP-bit prune (the §3.3 negative cache), and a plain (S,G) prune.
    pim::JoinPrune jp;
    jp.upstream_neighbor = net::Ipv4Address(10, 0, 1, 2);
    jp.group = kGroup.address();
    jp.joins = {pim::AddressEntry{net::Ipv4Address(192, 168, 0, 3),
                                  pim::EntryFlags{true, true}}};
    jp.prunes = {pim::AddressEntry{net::Ipv4Address(10, 0, 5, 2),
                                   pim::EntryFlags{false, true}},
                 pim::AddressEntry{net::Ipv4Address(10, 0, 5, 2),
                                   pim::EntryFlags{false, false}}};
    p.payload = jp.encode();
    EXPECT_EQ(describe_packet(p),
              "PIM Join/Prune grp=224.1.1.1 to=10.0.1.2 "
              "join=[192.168.0.3(WC|RP)] prune=[10.0.5.2(RP) 10.0.5.2(-)]");

    // WC without RP renders alone; empty prune list renders as [].
    jp.joins = {pim::AddressEntry{net::Ipv4Address(192, 168, 0, 3),
                                  pim::EntryFlags{true, false}}};
    jp.prunes.clear();
    p.payload = jp.encode();
    EXPECT_EQ(describe_packet(p),
              "PIM Join/Prune grp=224.1.1.1 to=10.0.1.2 "
              "join=[192.168.0.3(WC)] prune=[]");

    p.payload = pim::RpReachability{kGroup.address(),
                                    net::Ipv4Address(192, 168, 0, 3), 90000}
                    .encode();
    EXPECT_EQ(describe_packet(p), "PIM RP-Reachability grp=224.1.1.1 rp=192.168.0.3");

    // Truncated register decodes to a marker, never crashes.
    p.payload = {0x14, 0x01};
    EXPECT_EQ(describe_packet(p), "PIM Register (malformed)");
}

TEST(TraceDescribe, DecodesIgmpQueriesReportsAndDvmrpProbe) {
    using trace::describe_packet;
    net::Packet p;
    p.proto = net::IpProto::kIgmp;

    p.payload = igmp::Query{kGroup.address()}.encode();
    EXPECT_EQ(describe_packet(p), "IGMP Query grp=224.1.1.1");

    p.payload = igmp::Report{kGroup.address()}.encode();
    EXPECT_EQ(describe_packet(p), "IGMP Report grp=224.1.1.1");

    p.payload = dvmrp::Probe{10000}.encode();
    EXPECT_EQ(describe_packet(p), "DVMRP Probe");

    p.payload = {};
    EXPECT_EQ(describe_packet(p), "IGMP (empty)");
}

TEST(TraceDescribe, DecodesEveryCbtMessage) {
    using trace::describe_packet;
    net::Packet p;
    p.proto = net::IpProto::kCbt;
    const net::Ipv4Address core(9, 9, 9, 9);

    p.payload = cbt::JoinAck{kGroup.address(), core}.encode();
    EXPECT_EQ(describe_packet(p), "CBT Join-Ack");

    p.payload = cbt::GroupOnly{cbt::Code::kQuit, kGroup.address()}.encode();
    EXPECT_EQ(describe_packet(p), "CBT Quit");

    p.payload = cbt::GroupOnly{cbt::Code::kEchoRequest, kGroup.address()}.encode();
    EXPECT_EQ(describe_packet(p), "CBT Echo-Request");

    p.payload = cbt::GroupOnly{cbt::Code::kEchoReply, kGroup.address()}.encode();
    EXPECT_EQ(describe_packet(p), "CBT Echo-Reply");

    p.payload = cbt::GroupOnly{cbt::Code::kFlush, kGroup.address()}.encode();
    EXPECT_EQ(describe_packet(p), "CBT Flush");

    p.payload = {};
    EXPECT_EQ(describe_packet(p), "CBT (malformed)");
}

TEST(TraceDescribe, DecodesUnicastDataAndLinkState) {
    using trace::describe_packet;
    net::Packet p;

    // Register/CBT-encapsulated data rides unicast UDP (fig. 3).
    p.proto = net::IpProto::kUdp;
    p.dst = net::Ipv4Address(192, 168, 0, 3);
    p.seq = 12;
    EXPECT_EQ(describe_packet(p), "DATA (unicast-encapsulated) seq=12");

    p.proto = net::IpProto::kOspf;
    p.payload = {1};
    EXPECT_EQ(describe_packet(p), "LS Hello");
    p.payload = {2};
    EXPECT_EQ(describe_packet(p), "LS LSA");
    p.payload = {9};
    EXPECT_EQ(describe_packet(p), "OSPF (unknown)");
}

} // namespace
} // namespace pimlib::test
