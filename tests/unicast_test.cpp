// Unicast routing tests: RIB longest-prefix match and observers; oracle,
// distance-vector and link-state providers all converging to the same
// shortest paths (the "protocol independent" substrate of the paper).
#include <gtest/gtest.h>

#include <random>

#include "graph/random_graph.hpp"
#include "test_util.hpp"
#include "topo/segment.hpp"
#include "unicast/distance_vector.hpp"
#include "unicast/link_state.hpp"
#include "unicast/oracle_routing.hpp"
#include "unicast/rib.hpp"

namespace pimlib::test {
namespace {

using unicast::Rib;
using unicast::Route;

TEST(Rib, LongestPrefixMatchWins) {
    Rib rib;
    rib.set_route(Route{net::Prefix{net::Ipv4Address(10, 0, 0, 0), 8}, 1,
                        net::Ipv4Address(1, 1, 1, 1), 10});
    rib.set_route(Route{net::Prefix{net::Ipv4Address(10, 1, 0, 0), 16}, 2,
                        net::Ipv4Address(2, 2, 2, 2), 5});
    rib.set_route(Route{net::Prefix{net::Ipv4Address(10, 1, 2, 0), 24}, 3,
                        net::Ipv4Address(3, 3, 3, 3), 1});

    EXPECT_EQ(rib.lookup(net::Ipv4Address(10, 1, 2, 9))->ifindex, 3);
    EXPECT_EQ(rib.lookup(net::Ipv4Address(10, 1, 9, 9))->ifindex, 2);
    EXPECT_EQ(rib.lookup(net::Ipv4Address(10, 9, 9, 9))->ifindex, 1);
    EXPECT_FALSE(rib.lookup(net::Ipv4Address(11, 0, 0, 1)).has_value());
}

TEST(Rib, DefaultRouteMatchesEverything) {
    Rib rib;
    rib.set_route(Route{net::Prefix{net::Ipv4Address{}, 0}, 7, net::Ipv4Address{}, 1});
    EXPECT_EQ(rib.lookup(net::Ipv4Address(8, 8, 8, 8))->ifindex, 7);
}

TEST(Rib, DefaultRouteIsFallbackNotOverride) {
    Rib rib;
    rib.set_route(Route{net::Prefix{net::Ipv4Address{}, 0}, 1, net::Ipv4Address{}, 1});
    rib.set_route(Route{net::Prefix{net::Ipv4Address(10, 1, 2, 0), 24}, 9,
                        net::Ipv4Address(9, 9, 9, 9), 1});
    // Inside the /24 the specific route wins; anywhere else the default
    // catches it.
    EXPECT_EQ(rib.lookup(net::Ipv4Address(10, 1, 2, 3))->ifindex, 9);
    EXPECT_EQ(rib.lookup(net::Ipv4Address(10, 1, 3, 3))->ifindex, 1);
    EXPECT_EQ(rib.lookup(net::Ipv4Address(172, 16, 0, 1))->ifindex, 1);
    // Removing the specific route falls back to the default, not to no
    // route.
    ASSERT_TRUE(rib.remove_route(net::Prefix{net::Ipv4Address(10, 1, 2, 0), 24}));
    EXPECT_EQ(rib.lookup(net::Ipv4Address(10, 1, 2, 3))->ifindex, 1);
}

TEST(Rib, OverlappingPrefixesAtTheSameBaseAddress) {
    // /8 and /24 share the base address 10.0.0.0: the mask length alone
    // must decide which one a destination matches.
    Rib rib;
    rib.set_route(Route{net::Prefix{net::Ipv4Address(10, 0, 0, 0), 8}, 1,
                        net::Ipv4Address(1, 1, 1, 1), 10});
    rib.set_route(Route{net::Prefix{net::Ipv4Address(10, 0, 0, 0), 24}, 2,
                        net::Ipv4Address(2, 2, 2, 2), 1});
    EXPECT_EQ(rib.lookup(net::Ipv4Address(10, 0, 0, 77))->ifindex, 2);
    EXPECT_EQ(rib.lookup(net::Ipv4Address(10, 0, 1, 77))->ifindex, 1);
    EXPECT_EQ(rib.size(), 2u); // distinct entries despite the shared base
}

TEST(Rib, RemoveThenLookupFallsToTheNextLongerMatch) {
    Rib rib;
    const net::Prefix p8{net::Ipv4Address(10, 0, 0, 0), 8};
    const net::Prefix p16{net::Ipv4Address(10, 1, 0, 0), 16};
    const net::Prefix p24{net::Ipv4Address(10, 1, 2, 0), 24};
    rib.set_route(Route{p8, 1, net::Ipv4Address{}, 1});
    rib.set_route(Route{p16, 2, net::Ipv4Address{}, 1});
    rib.set_route(Route{p24, 3, net::Ipv4Address{}, 1});

    const net::Ipv4Address dst(10, 1, 2, 9);
    EXPECT_EQ(rib.lookup(dst)->ifindex, 3);
    ASSERT_TRUE(rib.remove_route(p24));
    EXPECT_EQ(rib.lookup(dst)->ifindex, 2);
    ASSERT_TRUE(rib.remove_route(p16));
    EXPECT_EQ(rib.lookup(dst)->ifindex, 1);
    ASSERT_TRUE(rib.remove_route(p8));
    EXPECT_FALSE(rib.lookup(dst).has_value());
}

TEST(Rib, RemoveAndClear) {
    Rib rib;
    const net::Prefix p{net::Ipv4Address(10, 0, 0, 0), 8};
    rib.set_route(Route{p, 1, net::Ipv4Address{}, 0});
    EXPECT_EQ(rib.size(), 1u);
    EXPECT_TRUE(rib.remove_route(p));
    EXPECT_FALSE(rib.remove_route(p));
    rib.set_route(Route{p, 1, net::Ipv4Address{}, 0});
    rib.clear();
    EXPECT_EQ(rib.size(), 0u);
    EXPECT_EQ(rib.find(p), nullptr);
}

TEST(Rib, ObserversFireOnChangeOnly) {
    Rib rib;
    int fired = 0;
    const int token = rib.subscribe([&] { ++fired; });
    const Route route{net::Prefix{net::Ipv4Address(10, 0, 0, 0), 8}, 1,
                      net::Ipv4Address{}, 3};
    rib.set_route(route);
    EXPECT_EQ(fired, 1);
    rib.set_route(route); // identical: no notification (quiet refresh)
    EXPECT_EQ(fired, 1);
    Route changed = route;
    changed.metric = 4;
    rib.set_route(changed);
    EXPECT_EQ(fired, 2);
    rib.unsubscribe(token);
    rib.remove_route(route.prefix);
    EXPECT_EQ(fired, 2);
}

TEST(Rib, UpdateBatchCoalescesNotifications) {
    Rib rib;
    int fired = 0;
    rib.subscribe([&] { ++fired; });
    {
        Rib::UpdateBatch batch(rib);
        for (int i = 0; i < 5; ++i) {
            rib.set_route(Route{net::Prefix{net::Ipv4Address(10, 0, std::uint8_t(i), 0), 24},
                                i, net::Ipv4Address{}, 1});
        }
        EXPECT_EQ(fired, 0);
    }
    EXPECT_EQ(fired, 1);
}

TEST(OracleRouting, ComputesShortestPathsAndConnectedRoutes) {
    // r0 —(1)— r1 —(1)— r2, plus direct r0 —(5)— r2.
    topo::Network net;
    auto& r0 = net.add_router("r0");
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    net.add_link(r0, r1, sim::kMillisecond, 1);
    net.add_link(r1, r2, sim::kMillisecond, 1);
    net.add_link(r0, r2, sim::kMillisecond, 5);
    unicast::OracleRouting routing(net);

    EXPECT_EQ(routing.distance(r0, r2).value(), 2); // via r1, not the metric-5 link
    auto route = r0.route_to(r2.router_id());
    ASSERT_TRUE(route.has_value());
    EXPECT_EQ(route->ifindex, 0); // toward r1
    EXPECT_EQ(route->next_hop, r1.interface(0).address);

    // Connected prefix: no next hop.
    auto connected = r0.route_to(net::Ipv4Address(10, 0, 0, 2));
    ASSERT_TRUE(connected.has_value());
    EXPECT_TRUE(connected->next_hop.is_unspecified());
}

TEST(OracleRouting, RecomputeAfterFailure) {
    topo::Network net;
    auto& r0 = net.add_router("r0");
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    net.add_link(r0, r1);
    net.add_link(r1, r2);
    auto& direct = net.add_link(r0, r2, sim::kMillisecond, 5);
    unicast::OracleRouting routing(net);
    ASSERT_EQ(routing.distance(r0, r2).value(), 2);

    net.find_link(r0, r1)->set_up(false);
    routing.recompute();
    EXPECT_EQ(routing.distance(r0, r2).value(), 5); // now via the direct link
    (void)direct;

    net.find_link(r0, r1)->set_up(true);
    direct.set_up(false);
    routing.recompute();
    EXPECT_EQ(routing.distance(r0, r2).value(), 2);
}

TEST(OracleRouting, PartitionYieldsNoRoute) {
    topo::Network net;
    auto& r0 = net.add_router("r0");
    auto& r1 = net.add_router("r1");
    net.add_link(r0, r1);
    unicast::OracleRouting routing(net);
    net.find_link(r0, r1)->set_up(false);
    routing.recompute();
    EXPECT_FALSE(routing.distance(r0, r1).has_value());
    EXPECT_FALSE(r0.route_to(r1.router_id()).has_value());
}

TEST(DvUpdate, CodecRoundTrip) {
    unicast::DvUpdate update;
    update.entries.push_back({net::Prefix{net::Ipv4Address(10, 0, 0, 0), 24}, 3});
    update.entries.push_back({net::Prefix{net::Ipv4Address(192, 168, 0, 1), 32}, 16});
    const auto bytes = update.encode();
    auto decoded = unicast::DvUpdate::decode(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->entries, update.entries);
    // Truncated input rejected.
    EXPECT_FALSE(unicast::DvUpdate::decode({bytes.data(), bytes.size() - 1}).has_value());
}

TEST(Lsa, CodecRoundTrip) {
    unicast::Lsa lsa;
    lsa.origin = net::Ipv4Address(192, 168, 0, 1);
    lsa.seq = 42;
    lsa.links.push_back({net::Ipv4Address(192, 168, 0, 2), 3});
    lsa.prefixes.push_back({net::Prefix{net::Ipv4Address(10, 0, 0, 0), 24}, 1});
    const auto bytes = lsa.encode();
    auto decoded = unicast::Lsa::decode(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->origin, lsa.origin);
    EXPECT_EQ(decoded->seq, lsa.seq);
    EXPECT_EQ(decoded->links, lsa.links);
    EXPECT_EQ(decoded->prefixes, lsa.prefixes);
    EXPECT_FALSE(unicast::Lsa::decode({bytes.data(), bytes.size() - 2}).has_value());
}

/// Builds a random router topology and verifies that the protocol under
/// test converges to the oracle's shortest-path metrics for all router ids.
class ConvergenceTest : public ::testing::TestWithParam<int> {
protected:
    void build(topo::Network& net, std::vector<topo::Router*>& routers) {
        std::mt19937 rng(static_cast<std::uint32_t>(GetParam()));
        graph::Graph g =
            graph::random_connected_graph({.nodes = 8, .average_degree = 3}, rng);
        for (int i = 0; i < g.node_count(); ++i) {
            routers.push_back(&net.add_router("r" + std::to_string(i)));
        }
        for (int u = 0; u < g.node_count(); ++u) {
            for (const auto& e : g.neighbors(u)) {
                if (e.to > u) net.add_link(*routers[u], *routers[e.to]);
            }
        }
    }

    void verify_against_oracle(topo::Network& net,
                               const std::vector<topo::Router*>& routers) {
        // A fresh oracle gives ground-truth metrics (it would clobber the
        // routers' unicast pointers, so compute expected values first).
        std::map<std::pair<int, int>, std::optional<int>> expected;
        {
            std::vector<const topo::UnicastLookup*> saved;
            for (auto* r : routers) saved.push_back(r->unicast());
            unicast::OracleRouting oracle(net);
            for (std::size_t i = 0; i < routers.size(); ++i) {
                for (std::size_t j = 0; j < routers.size(); ++j) {
                    expected[{int(i), int(j)}] = oracle.distance(*routers[i], *routers[j]);
                }
            }
            for (std::size_t i = 0; i < routers.size(); ++i) {
                routers[i]->set_unicast(
                    const_cast<topo::UnicastLookup*>(saved[i]));
            }
        }
        for (std::size_t i = 0; i < routers.size(); ++i) {
            for (std::size_t j = 0; j < routers.size(); ++j) {
                if (i == j) continue;
                auto route = routers[i]->route_to(routers[j]->router_id());
                ASSERT_TRUE(route.has_value())
                    << routers[i]->name() << " has no route to " << routers[j]->name();
                const int want = expected[std::make_pair(int(i), int(j))].value();
                EXPECT_EQ(route->metric, want)
                    << routers[i]->name() << " -> " << routers[j]->name();
            }
        }
    }
};

class DvConvergenceTest : public ConvergenceTest {};

TEST_P(DvConvergenceTest, ConvergesToShortestPaths) {
    topo::Network net;
    std::vector<topo::Router*> routers;
    build(net, routers);
    unicast::DvConfig cfg;
    cfg.update_interval = 100 * sim::kMillisecond;
    cfg.route_timeout = 300 * sim::kMillisecond;
    cfg.gc_delay = 200 * sim::kMillisecond;
    cfg.triggered_delay = 5 * sim::kMillisecond;
    unicast::DvRoutingDomain domain(net, cfg);
    net.run_for(3 * sim::kSecond);
    verify_against_oracle(net, routers);
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, DvConvergenceTest, ::testing::Range(1, 6));

class LsConvergenceTest : public ConvergenceTest {};

TEST_P(LsConvergenceTest, ConvergesToShortestPaths) {
    topo::Network net;
    std::vector<topo::Router*> routers;
    build(net, routers);
    unicast::LsConfig cfg;
    cfg.hello_interval = 50 * sim::kMillisecond;
    cfg.dead_interval = 150 * sim::kMillisecond;
    cfg.lsa_refresh = 300 * sim::kMillisecond;
    cfg.lsa_max_age = 900 * sim::kMillisecond;
    cfg.spf_delay = 5 * sim::kMillisecond;
    unicast::LsRoutingDomain domain(net, cfg);
    net.run_for(3 * sim::kSecond);
    verify_against_oracle(net, routers);
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, LsConvergenceTest, ::testing::Range(1, 6));

TEST(DistanceVector, RouteTimesOutAfterLinkFailure) {
    topo::Network net;
    auto& r0 = net.add_router("r0");
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    net.add_link(r0, r1);
    net.add_link(r1, r2);
    unicast::DvConfig cfg;
    cfg.update_interval = 100 * sim::kMillisecond;
    cfg.route_timeout = 300 * sim::kMillisecond;
    cfg.gc_delay = 200 * sim::kMillisecond;
    unicast::DvRoutingDomain domain(net, cfg);
    net.run_for(2 * sim::kSecond);
    ASSERT_TRUE(r0.route_to(r2.router_id()).has_value());

    net.find_link(r1, r2)->set_up(false);
    net.run_for(2 * sim::kSecond);
    EXPECT_FALSE(r0.route_to(r2.router_id()).has_value());
}

TEST(LinkState, ReconvergesAroundFailure) {
    // Square: r0-r1-r2 and r0-r3-r2.
    topo::Network net;
    auto& r0 = net.add_router("r0");
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    auto& r3 = net.add_router("r3");
    net.add_link(r0, r1);
    net.add_link(r1, r2);
    net.add_link(r0, r3);
    net.add_link(r3, r2);
    unicast::LsConfig cfg;
    cfg.hello_interval = 50 * sim::kMillisecond;
    cfg.dead_interval = 150 * sim::kMillisecond;
    cfg.lsa_refresh = 300 * sim::kMillisecond;
    cfg.spf_delay = 5 * sim::kMillisecond;
    unicast::LsRoutingDomain domain(net, cfg);
    net.run_for(2 * sim::kSecond);
    auto route = r0.route_to(r2.router_id());
    ASSERT_TRUE(route.has_value());
    EXPECT_EQ(route->metric, 2);

    // Fail whichever path r0 uses; it must reroute via the other.
    const bool via_r1 = route->next_hop == r1.interface(0).address;
    net.find_link(r0, via_r1 ? r1 : r3)->set_up(false);
    net.run_for(2 * sim::kSecond);
    route = r0.route_to(r2.router_id());
    ASSERT_TRUE(route.has_value());
    EXPECT_EQ(route->metric, 2);
    EXPECT_EQ(route->next_hop,
              (via_r1 ? r3 : r1).interface(0).address);
}

} // namespace
} // namespace pimlib::test
