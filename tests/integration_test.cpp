// Cross-module integration tests:
//  - PIM-SM running over the distance-vector and link-state unicast
//    providers (the paper's "protocol independence", §2), including
//    re-homing after link failure driven purely by the routing protocol's
//    own reconvergence (§3.8);
//  - multi-access LAN procedures: DR election, join override of prunes,
//    duplicate-join suppression (§3.7);
//  - sparse-mode state economics vs dense mode on the same topology.
#include <gtest/gtest.h>

#include "test_util.hpp"
#include "topo/segment.hpp"
#include "unicast/distance_vector.hpp"
#include "unicast/link_state.hpp"

namespace pimlib::test {
namespace {

using pim::SptPolicy;

// receiver—LAN—A—B—C(RP)—D—LAN—source with a backup path A—E—C.
struct RedundantTopology {
    topo::Network net;
    topo::Router *a, *b, *c, *d, *e;
    topo::Host *receiver, *source;

    RedundantTopology() {
        a = &net.add_router("A");
        b = &net.add_router("B");
        c = &net.add_router("C");
        d = &net.add_router("D");
        e = &net.add_router("E");
        auto& lan0 = net.add_lan({a});
        receiver = &net.add_host("receiver", lan0);
        net.add_link(*a, *b);
        net.add_link(*b, *c);
        net.add_link(*a, *e, sim::kMillisecond, 3);
        net.add_link(*e, *c, sim::kMillisecond, 3);
        net.add_link(*c, *d);
        auto& lan1 = net.add_lan({d});
        source = &net.add_host("source", lan1);
    }
};

TEST(PimOverDistanceVector, DeliveryAndFailover) {
    RedundantTopology t;
    unicast::DvConfig dv_cfg;
    dv_cfg.update_interval = 100 * sim::kMillisecond;
    dv_cfg.route_timeout = 300 * sim::kMillisecond;
    dv_cfg.gc_delay = 200 * sim::kMillisecond;
    dv_cfg.triggered_delay = 5 * sim::kMillisecond;
    unicast::DvRoutingDomain dv(t.net, dv_cfg);
    scenario::PimSmStack stack(t.net, fast_config());
    stack.set_rp(kGroup, {t.c->router_id()});
    stack.set_spt_policy(SptPolicy::never());
    t.net.run_for(1 * sim::kSecond); // DV convergence

    stack.host_agent(*t.receiver).join(kGroup);
    t.net.run_for(300 * sim::kMillisecond);
    t.source->send_stream(kGroup, 5, 50 * sim::kMillisecond);
    t.net.run_for(1 * sim::kSecond);
    EXPECT_EQ(t.receiver->received_count(kGroup), 5u);
    EXPECT_EQ(t.receiver->duplicate_count(), 0u);

    // Fail A—B. The DV protocol times the route out on its own; PIM's
    // route-change subscription re-homes the (*,G) iif toward E (§3.8).
    t.net.find_link(*t.a, *t.b)->set_up(false);
    t.net.run_for(3 * sim::kSecond);
    auto* wc_a = stack.pim_at(*t.a).cache().find_wc(kGroup);
    ASSERT_NE(wc_a, nullptr);
    topo::Segment* a_e = t.net.find_link(*t.a, *t.e);
    EXPECT_EQ(wc_a->iif(), t.a->ifindex_on(*a_e).value());

    t.receiver->clear_received();
    t.source->send_stream(kGroup, 5, 50 * sim::kMillisecond);
    t.net.run_for(2 * sim::kSecond);
    EXPECT_GE(t.receiver->received_count(kGroup), 5u);
}

TEST(PimOverLinkState, DeliveryAndFailover) {
    RedundantTopology t;
    unicast::LsConfig ls_cfg;
    ls_cfg.hello_interval = 50 * sim::kMillisecond;
    ls_cfg.dead_interval = 150 * sim::kMillisecond;
    ls_cfg.lsa_refresh = 500 * sim::kMillisecond;
    ls_cfg.lsa_max_age = 2 * sim::kSecond;
    ls_cfg.spf_delay = 5 * sim::kMillisecond;
    unicast::LsRoutingDomain ls(t.net, ls_cfg);
    scenario::PimSmStack stack(t.net, fast_config());
    stack.set_rp(kGroup, {t.c->router_id()});
    stack.set_spt_policy(SptPolicy::immediate());
    t.net.run_for(1 * sim::kSecond);

    stack.host_agent(*t.receiver).join(kGroup);
    t.net.run_for(300 * sim::kMillisecond);
    t.source->send_stream(kGroup, 5, 50 * sim::kMillisecond);
    t.net.run_for(1 * sim::kSecond);
    EXPECT_EQ(t.receiver->received_count(kGroup), 5u);
    EXPECT_EQ(t.receiver->duplicate_count(), 0u);

    t.net.find_link(*t.a, *t.b)->set_up(false);
    t.net.run_for(2 * sim::kSecond);
    t.receiver->clear_received();
    t.source->send_stream(kGroup, 5, 50 * sim::kMillisecond);
    t.net.run_for(2 * sim::kSecond);
    EXPECT_GE(t.receiver->received_count(kGroup), 5u);
}

// Transit LAN topology for §3.7: upstream U serves a LAN with two
// downstream routers D1, D2, each with its own receiver LAN.
//
//   U — transitLAN — {D1 — lan1(r1), D2 — lan2(r2)};  U — C(RP) — S(src DR)
struct TransitLanTopology {
    topo::Network net;
    topo::Router *u, *d1, *d2, *c, *s;
    topo::Host *r1, *r2, *source;
    topo::Segment* transit;
    std::unique_ptr<unicast::OracleRouting> routing;

    TransitLanTopology() {
        u = &net.add_router("U");
        d1 = &net.add_router("D1");
        d2 = &net.add_router("D2");
        c = &net.add_router("C");
        s = &net.add_router("S");
        transit = &net.add_lan({u, d1, d2});
        auto& lan1 = net.add_lan({d1});
        r1 = &net.add_host("r1", lan1);
        auto& lan2 = net.add_lan({d2});
        r2 = &net.add_host("r2", lan2);
        net.add_link(*u, *c);
        net.add_link(*c, *s);
        auto& src_lan = net.add_lan({s});
        source = &net.add_host("source", src_lan);
        routing = std::make_unique<unicast::OracleRouting>(net);
    }
};

TEST(LanProcedures, JoinOverridesPeerPrune) {
    TransitLanTopology t;
    scenario::PimSmStack stack(t.net, fast_config());
    stack.set_rp(kGroup, {t.c->router_id()});
    stack.set_spt_policy(SptPolicy::never());
    t.net.run_for(200 * sim::kMillisecond);

    stack.host_agent(*t.r1).join(kGroup);
    stack.host_agent(*t.r2).join(kGroup);
    t.net.run_for(300 * sim::kMillisecond);

    // Both downstream routers share U's single oif onto the transit LAN.
    auto* wc_u = stack.pim_at(*t.u).cache().find_wc(kGroup);
    ASSERT_NE(wc_u, nullptr);
    const int u_oif = t.u->ifindex_on(*t.transit).value();
    ASSERT_TRUE(wc_u->has_oif(u_oif));

    // r2 leaves; D2 multicasts a prune onto the LAN. D1 must override with
    // a join before U's delayed prune fires (§3.7).
    stack.host_agent(*t.r2).leave(kGroup);
    t.net.run_for(2 * sim::kSecond);
    EXPECT_TRUE(wc_u->has_oif(u_oif)) << "override join failed to save the oif";

    t.source->send_stream(kGroup, 3, 50 * sim::kMillisecond);
    t.net.run_for(1 * sim::kSecond);
    EXPECT_EQ(t.r1->received_count(kGroup), 3u);
    EXPECT_EQ(t.r1->duplicate_count(), 0u);
    EXPECT_EQ(t.r2->received_count(kGroup), 0u);
}

TEST(LanProcedures, PruneTakesEffectWhenNobodyOverrides) {
    TransitLanTopology t;
    scenario::PimSmStack stack(t.net, fast_config());
    stack.set_rp(kGroup, {t.c->router_id()});
    stack.set_spt_policy(SptPolicy::never());
    t.net.run_for(200 * sim::kMillisecond);

    stack.host_agent(*t.r2).join(kGroup);
    t.net.run_for(300 * sim::kMillisecond);
    auto* wc_u = stack.pim_at(*t.u).cache().find_wc(kGroup);
    ASSERT_NE(wc_u, nullptr);

    stack.host_agent(*t.r2).leave(kGroup);
    t.net.run_for(4 * sim::kSecond);
    // No other downstream: the (delayed) prune removes the oif and the
    // entry expires.
    EXPECT_EQ(stack.pim_at(*t.u).cache().find_wc(kGroup), nullptr);
}

TEST(LanProcedures, JoinSuppressionReducesLanControlTraffic) {
    // Both D1 and D2 stay joined; their periodic (*,G) joins share the
    // transit LAN, so one router's refresh suppresses the other's.
    TransitLanTopology t;
    scenario::PimSmStack stack(t.net, fast_config());
    stack.set_rp(kGroup, {t.c->router_id()});
    stack.set_spt_policy(SptPolicy::never());
    t.net.run_for(200 * sim::kMillisecond);
    stack.host_agent(*t.r1).join(kGroup);
    stack.host_agent(*t.r2).join(kGroup);
    t.net.run_for(300 * sim::kMillisecond);

    const auto before_d1 = stack.pim_at(*t.d1).join_prune_messages_sent();
    const auto before_d2 = stack.pim_at(*t.d2).join_prune_messages_sent();
    t.net.run_for(6 * sim::kSecond); // 10 refresh periods
    const auto sent = (stack.pim_at(*t.d1).join_prune_messages_sent() - before_d1) +
                      (stack.pim_at(*t.d2).join_prune_messages_sent() - before_d2);

    // 10 refresh periods: without suppression D1 and D2 would send ~20
    // joins combined; with §3.7 suppression one of them stays quiet while
    // the other's join is fresh, so the total stays well under that.
    EXPECT_LT(sent, 16u);

    // And the state is still alive end to end — suppression must not starve
    // the upstream soft state.
    t.source->send_data(kGroup);
    t.net.run_for(500 * sim::kMillisecond);
    EXPECT_EQ(t.r1->received_count(kGroup), 1u);
    EXPECT_EQ(t.r2->received_count(kGroup), 1u);
}

TEST(LanProcedures, DrElectionHighestAddressActs) {
    // Two routers on the receiver LAN; only the DR (highest address on the
    // LAN) creates state and joins.
    topo::Network net;
    auto& low = net.add_router("low");
    auto& high = net.add_router("high");
    auto& rp = net.add_router("rp");
    auto& lan = net.add_lan({&low, &high}); // low gets .1, high gets .2
    auto& receiver = net.add_host("receiver", lan);
    net.add_link(low, rp);
    net.add_link(high, rp);
    auto& src_lan = net.add_lan({&rp});
    auto& source = net.add_host("source", src_lan);
    unicast::OracleRouting routing(net);
    scenario::PimSmStack stack(net, fast_config());
    stack.set_rp(kGroup, {rp.router_id()});
    stack.set_spt_policy(SptPolicy::never());
    net.run_for(200 * sim::kMillisecond);

    const int lan_if_low = low.ifindex_on(lan).value();
    EXPECT_FALSE(stack.pim_at(low).is_dr_on(lan_if_low));
    EXPECT_TRUE(stack.pim_at(high).is_dr_on(high.ifindex_on(lan).value()));

    stack.host_agent(receiver).join(kGroup);
    net.run_for(300 * sim::kMillisecond);
    EXPECT_EQ(stack.pim_at(low).cache().find_wc(kGroup), nullptr);
    ASSERT_NE(stack.pim_at(high).cache().find_wc(kGroup), nullptr);

    source.send_stream(kGroup, 3, 50 * sim::kMillisecond);
    net.run_for(1 * sim::kSecond);
    EXPECT_EQ(receiver.received_count(kGroup), 3u);
    EXPECT_EQ(receiver.duplicate_count(), 0u);

    // Kill the DR. The survivor must take over the membership (new DR) and
    // restore delivery.
    for (int i = 0; i < high.interface_count(); ++i) high.set_interface_up(i, false);
    routing.recompute();
    net.run_for(3 * sim::kSecond);
    EXPECT_TRUE(stack.pim_at(low).is_dr_on(lan_if_low));
    receiver.clear_received();
    source.send_stream(kGroup, 3, 50 * sim::kMillisecond);
    net.run_for(1 * sim::kSecond);
    EXPECT_EQ(receiver.received_count(kGroup), 3u);
}

TEST(SparseVsDense, PimTouchesOnlyTheTree) {
    // Fig. 1 in miniature: a 6-router line with one member at the far end.
    // DVMRP's periodic broadcast touches every segment; PIM only the path.
    auto build = [](topo::Network& net, std::vector<topo::Router*>& routers,
                    topo::Host** source, topo::Host** member,
                    std::vector<topo::Segment*>& stub_lans) {
        for (int i = 0; i < 6; ++i) {
            routers.push_back(&net.add_router("r" + std::to_string(i)));
        }
        auto& src_lan = net.add_lan({routers[0]});
        *source = &net.add_host("source", src_lan);
        for (int i = 0; i + 1 < 6; ++i) net.add_link(*routers[i], *routers[i + 1]);
        // Each transit router also has a stub LAN with a second router
        // behind it (so dense mode floods there).
        for (int i = 1; i < 5; ++i) {
            auto& stub_router = net.add_router("stub" + std::to_string(i));
            net.add_link(*routers[i], stub_router);
            stub_lans.push_back(&net.add_lan({&stub_router}));
        }
        auto& member_lan = net.add_lan({routers[5]});
        *member = &net.add_host("member", member_lan);
    };

    std::size_t pim_state = 0;
    std::size_t dvmrp_state = 0;
    std::uint64_t pim_stub_packets = 0;
    std::uint64_t dvmrp_stub_packets = 0;
    {
        topo::Network net;
        std::vector<topo::Router*> routers;
        std::vector<topo::Segment*> stubs;
        topo::Host* source;
        topo::Host* member;
        build(net, routers, &source, &member, stubs);
        unicast::OracleRouting routing(net);
        scenario::PimSmStack stack(net, fast_config());
        stack.set_rp(kGroup, {routers[5]->router_id()});
        net.run_for(200 * sim::kMillisecond);
        stack.host_agent(*member).join(kGroup);
        net.run_for(300 * sim::kMillisecond);
        source->send_stream(kGroup, 10, 50 * sim::kMillisecond);
        net.run_for(2 * sim::kSecond);
        EXPECT_EQ(member->received_count(kGroup), 10u);
        for (const auto& r : net.routers()) {
            if (r->name().starts_with("stub")) {
                pim_state += 1; // count routers with any state below
            }
        }
        pim_state = 0;
        for (const auto& r : net.routers()) pim_state += stack.pim_at(*r).cache().size();
        // stub routers must have zero multicast state under PIM
        for (const auto& r : net.routers()) {
            if (r->name().starts_with("stub")) {
                EXPECT_EQ(stack.pim_at(*r).cache().size(), 0u) << r->name();
            }
        }
        for (auto* lan : stubs) pim_stub_packets += net.stats().data_packets_on(lan->id());
    }
    {
        topo::Network net;
        std::vector<topo::Router*> routers;
        std::vector<topo::Segment*> stubs;
        topo::Host* source;
        topo::Host* member;
        build(net, routers, &source, &member, stubs);
        unicast::OracleRouting routing(net);
        scenario::DvmrpStack stack(net, fast_config());
        net.run_for(200 * sim::kMillisecond);
        stack.host_agent(*member).join(kGroup);
        net.run_for(300 * sim::kMillisecond);
        source->send_stream(kGroup, 10, 50 * sim::kMillisecond);
        net.run_for(2 * sim::kSecond);
        EXPECT_EQ(member->received_count(kGroup), 10u);
        for (const auto& r : net.routers()) {
            dvmrp_state += stack.dvmrp_at(*r).cache().size();
        }
        for (auto* lan : stubs) {
            dvmrp_stub_packets += net.stats().data_packets_on(lan->id());
        }
    }
    // DVMRP instantiated (S,G) state at every router (broadcast-and-prune);
    // PIM only on the 6-router path. (§1.2's efficiency claim.)
    EXPECT_LT(pim_state, dvmrp_state);
    // Stub LANs are truncated-broadcast leaves with no members: no data in
    // either protocol (their routers prune), but dense mode still *reached*
    // the stub routers, which PIM never did — asserted via state above.
    EXPECT_EQ(pim_stub_packets, 0u);
}

TEST(MultiGroup, IndependentGroupsDoNotInterfere) {
    Fig3Topology t;
    scenario::PimSmStack stack(t.net, fast_config());
    const net::GroupAddress g1{net::Ipv4Address(224, 1, 1, 1)};
    const net::GroupAddress g2{net::Ipv4Address(224, 1, 1, 2)};
    stack.set_rp(g1, {t.c->router_id()});
    stack.set_rp(g2, {t.b->router_id()}); // different RP per group
    t.net.run_for(200 * sim::kMillisecond);

    stack.host_agent(*t.receiver).join(g1);
    stack.host_agent(*t.receiver).join(g2);
    t.net.run_for(300 * sim::kMillisecond);
    t.source->send_stream(g1, 3, 50 * sim::kMillisecond);
    t.source->send_stream(g2, 4, 50 * sim::kMillisecond);
    t.net.run_for(1 * sim::kSecond);
    EXPECT_EQ(t.receiver->received_count(g1), 3u);
    EXPECT_EQ(t.receiver->received_count(g2), 4u);
    EXPECT_EQ(t.receiver->duplicate_count(), 0u);

    auto* wc1 = stack.pim_at(*t.a).cache().find_wc(g1);
    auto* wc2 = stack.pim_at(*t.a).cache().find_wc(g2);
    ASSERT_NE(wc1, nullptr);
    ASSERT_NE(wc2, nullptr);
    EXPECT_EQ(wc1->source_or_rp(), t.c->router_id());
    EXPECT_EQ(wc2->source_or_rp(), t.b->router_id());
}

} // namespace
} // namespace pimlib::test
