// Direct tests of the hierarchical timing wheel (sim/timer_wheel.hpp):
// cascade boundaries, far-future overflow, cancel/reschedule storms against
// a reference model, batch ordering, and node-reuse handle safety. The
// Simulator-level semantics these support (ChoiceSource interleavings,
// EventId lifetimes) are covered in sim_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/timer_wheel.hpp"

namespace pimlib::sim {
namespace {

/// Schedules an action that records its tag; tests patch in the fire time
/// (or track it separately) as they drain.
TimerWheel::Node* push_marker(TimerWheel& wheel, Time at, std::uint64_t seq,
                              std::vector<std::pair<Time, int>>& out, int tag) {
    return wheel.schedule(at, seq, [&out, tag] { out.push_back({-1, tag}); });
}

TEST(TimerWheel, FiresAcrossEveryCascadeBoundary) {
    // One event just below and one just above each level boundary: 256^1,
    // 256^2, 256^3, 256^4. All must fire, in time order, at exact times.
    TimerWheel wheel;
    std::vector<std::pair<Time, int>> fired;
    std::vector<Time> times;
    std::uint64_t seq = 1;
    int tag = 0;
    for (int level = 1; level < TimerWheel::kLevels; ++level) {
        const Time boundary = Time{1} << (TimerWheel::kSlotBits * level);
        for (Time t : {boundary - 1, boundary, boundary + 1}) {
            times.push_back(t);
            push_marker(wheel, t, seq++, fired, tag++);
        }
    }
    EXPECT_EQ(wheel.size(), times.size());

    Time at = 0;
    std::vector<Time> fire_times;
    while (wheel.next_time(&at)) {
        wheel.open_batch(at);
        while (wheel.batch_live() > 0) {
            wheel.take(0)();
            fire_times.push_back(at);
        }
    }
    EXPECT_EQ(fire_times, times); // already ascending by construction
    EXPECT_EQ(fired.size(), times.size());
    EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, FarFutureOverflowBeyondHorizonFires) {
    // The wheel horizon is 256^kLevels ticks (~2^40 us). Deadlines beyond it
    // live in the overflow map and must still fire exactly, in order, after
    // migrating in as the base advances.
    constexpr Time kHorizon = Time{1} << (TimerWheel::kSlotBits * TimerWheel::kLevels);
    TimerWheel wheel;
    std::vector<std::pair<Time, int>> fired;
    const std::vector<Time> times = {
        5,                // inside level 0
        kHorizon - 1,     // last representable wheel instant
        kHorizon,         // first overflow instant
        kHorizon + 12345, // deep overflow
        3 * kHorizon + 7, // several horizons out
    };
    std::uint64_t seq = 1;
    for (Time t : times) {
        push_marker(wheel, t, seq, fired, static_cast<int>(seq + 1));
        ++seq;
    }
    EXPECT_EQ(wheel.size(), times.size());

    Time at = 0;
    std::vector<Time> fire_times;
    while (wheel.next_time(&at)) {
        wheel.open_batch(at);
        while (wheel.batch_live() > 0) {
            wheel.take(0)();
            fire_times.push_back(at);
        }
    }
    EXPECT_EQ(fire_times, times);
    EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, CancelFromWheelOverflowAndBatch) {
    constexpr Time kHorizon = Time{1} << (TimerWheel::kSlotBits * TimerWheel::kLevels);
    TimerWheel wheel;
    std::vector<std::pair<Time, int>> fired;

    auto* near = push_marker(wheel, 10, 1, fired, 1);
    auto* far = push_marker(wheel, kHorizon + 99, 2, fired, 2);
    EXPECT_TRUE(wheel.cancel(near, 1));
    EXPECT_FALSE(wheel.cancel(near, 1)); // second cancel is a no-op
    EXPECT_TRUE(wheel.cancel(far, 2));
    EXPECT_EQ(wheel.size(), 0u);
    Time at = 0;
    EXPECT_FALSE(wheel.next_time(&at));

    // Cancelling an event that is already in the open batch (scheduled for
    // the draining instant) must also work and must shrink batch_live.
    push_marker(wheel, 20, 3, fired, 3);
    ASSERT_TRUE(wheel.next_time(&at));
    EXPECT_EQ(at, 20);
    wheel.open_batch(at);
    auto* late = push_marker(wheel, 20, 4, fired, 4); // joins the open batch
    EXPECT_EQ(wheel.batch_live(), 2u);
    EXPECT_TRUE(wheel.cancel(late, 4));
    EXPECT_EQ(wheel.batch_live(), 1u);
    wheel.take(0)();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].second, 3);
    EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, StaleHandleNeverCancelsReusedNode) {
    TimerWheel wheel;
    std::vector<std::pair<Time, int>> fired;
    auto* node = push_marker(wheel, 1, 1, fired, 1);
    ASSERT_TRUE(wheel.cancel(node, 1));
    // The pool reuses the node for the next schedule; the stale (node, seq=1)
    // pair must not touch the new event.
    auto* reused = push_marker(wheel, 2, 2, fired, 2);
    EXPECT_EQ(reused, node) << "pool should recycle the freed node";
    EXPECT_FALSE(wheel.cancel(node, 1));
    EXPECT_EQ(wheel.size(), 1u);
    Time at = 0;
    ASSERT_TRUE(wheel.next_time(&at));
    wheel.open_batch(at);
    wheel.take(0)();
    EXPECT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].second, 2);
}

TEST(TimerWheel, SameInstantBatchSurfacesInSeqOrderAndTakesByIndex) {
    TimerWheel wheel;
    std::vector<std::pair<Time, int>> fired;
    // Scheduled out of seq order on purpose; the batch must sort by seq.
    push_marker(wheel, 50, 7, fired, 7);
    push_marker(wheel, 50, 3, fired, 3);
    push_marker(wheel, 50, 5, fired, 5);
    Time at = 0;
    ASSERT_TRUE(wheel.next_time(&at));
    EXPECT_EQ(at, 50);
    wheel.open_batch(at);
    ASSERT_EQ(wheel.batch_live(), 3u);
    // take(1) of live {3,5,7} is seq 5; then take(1) of {3,7} is seq 7.
    wheel.take(1)();
    wheel.take(1)();
    wheel.take(0)();
    std::vector<int> tags;
    for (auto& [t, tag] : fired) tags.push_back(tag);
    EXPECT_EQ(tags, (std::vector<int>{5, 7, 3}));
}

// Randomized storm against a reference model: thousands of interleaved
// schedule/cancel/reschedule operations with deadlines spanning all levels
// and the overflow map must fire exactly the surviving events, in (time,
// seq) order. This is the workload shape the soft-state protocols generate
// (every refresh is a cancel + reschedule).
TEST(TimerWheel, CancelRescheduleStormMatchesReferenceModel) {
    TimerWheel wheel;
    std::mt19937 rng(20260807);
    constexpr Time kHorizon = Time{1} << (TimerWheel::kSlotBits * TimerWheel::kLevels);
    std::uniform_int_distribution<int> op(0, 99);
    // Mixed magnitudes so every level (and overflow) sees traffic.
    auto rand_delay = [&]() -> Time {
        switch (op(rng) % 5) {
        case 0: return std::uniform_int_distribution<Time>(0, 255)(rng);
        case 1: return std::uniform_int_distribution<Time>(256, 65535)(rng);
        case 2: return std::uniform_int_distribution<Time>(65536, 1 << 24)(rng);
        case 3: return std::uniform_int_distribution<Time>(1 << 24, kHorizon - 1)(rng);
        default:
            return std::uniform_int_distribution<Time>(kHorizon, 2 * kHorizon)(rng);
        }
    };

    struct Live {
        TimerWheel::Node* node;
        std::uint64_t seq;
    };
    std::vector<Live> live;
    std::map<std::uint64_t, Time> expected; // seq -> time, for surviving events
    std::vector<std::pair<Time, std::uint64_t>> fired;
    std::uint64_t next_seq = 1;
    Time now = 0;

    auto schedule_one = [&] {
        const Time at = now + rand_delay();
        const std::uint64_t seq = next_seq++;
        TimerWheel::Node* node =
            wheel.schedule(at, seq, [&fired, seq] { fired.push_back({0, seq}); });
        live.push_back(Live{node, seq});
        expected[seq] = at;
    };

    for (int round = 0; round < 200; ++round) {
        // A burst of operations...
        for (int i = 0; i < 50; ++i) {
            const int r = op(rng);
            if (r < 60 || live.empty()) {
                schedule_one();
            } else {
                // Cancel a random live event; half the time reschedule it
                // (the soft-state refresh pattern).
                const std::size_t k =
                    std::uniform_int_distribution<std::size_t>(0, live.size() - 1)(rng);
                const Live victim = live[k];
                live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
                EXPECT_TRUE(wheel.cancel(victim.node, victim.seq));
                EXPECT_FALSE(wheel.cancel(victim.node, victim.seq));
                expected.erase(victim.seq);
                if (r < 80) schedule_one();
            }
        }
        EXPECT_EQ(wheel.size(), expected.size());
        // ...then drain a bounded slice of time, exactly as run_until does:
        // the limit keeps the wheel position from overshooting slice_end, so
        // the next round's schedules (at >= slice_end) file correctly.
        const Time slice_end = now + rand_delay();
        Time at = 0;
        while (wheel.next_time(&at, slice_end)) {
            wheel.open_batch(at);
            now = at;
            while (wheel.batch_live() > 0) {
                wheel.take(0)();
                ASSERT_FALSE(fired.empty());
                fired.back().first = at;
                const std::uint64_t seq = fired.back().second;
                ASSERT_TRUE(expected.contains(seq));
                EXPECT_EQ(expected[seq], at) << "event fired at the wrong time";
                expected.erase(seq);
                std::erase_if(live, [seq](const Live& l) { return l.seq == seq; });
            }
        }
        now = std::max(now, slice_end);
    }

    // Drain the remainder; every surviving event must fire at its exact
    // deadline, in nondecreasing time order with seq as tiebreak.
    Time at = 0;
    while (wheel.next_time(&at)) {
        wheel.open_batch(at);
        while (wheel.batch_live() > 0) {
            wheel.take(0)();
            fired.back().first = at;
            const std::uint64_t seq = fired.back().second;
            ASSERT_TRUE(expected.contains(seq));
            EXPECT_EQ(expected[seq], at);
            expected.erase(seq);
        }
    }
    EXPECT_TRUE(expected.empty()) << expected.size() << " events never fired";
    EXPECT_EQ(wheel.size(), 0u);
    for (std::size_t i = 1; i < fired.size(); ++i) {
        EXPECT_LE(fired[i - 1].first, fired[i].first) << "time order violated at " << i;
        if (fired[i - 1].first == fired[i].first) {
            EXPECT_LT(fired[i - 1].second, fired[i].second)
                << "seq order violated within instant";
        }
    }
}

// Same-tick ordering through the full Simulator + ChoiceSource stack: with
// many events at one instant spread across wheel levels beforehand, the
// choice source must still see the complete batch and drive the order.
TEST(TimerWheelSimulator, ChoiceSourceOrdersCrossLevelSameInstantBatch) {
    class ReverseChoice final : public ChoiceSource {
    public:
        std::size_t choose(std::size_t n, ChoicePoint) override {
            ++consults;
            return n - 1; // always pick the newest (highest seq)
        }
        int consults = 0;
    };

    Simulator sim;
    ReverseChoice choice;
    sim.set_choice_source(&choice);
    std::string log;
    // Same deadline reached via different current levels: scheduled at
    // different times (so they home into different wheels) but due together.
    sim.schedule_at(70000, [&] { log += 'a'; }); // level 1 from t=0
    sim.run_until(69000);
    sim.schedule_at(70000, [&] { log += 'b'; }); // level 1, later rotation
    sim.run_until(69999);
    sim.schedule_at(70000, [&] { log += 'c'; }); // level 0
    sim.run_until(80000);
    // ReverseChoice pops highest-seq first: c, then b, then a (the final
    // pop of a 1-element batch consults nothing).
    EXPECT_EQ(log, "cba");
    EXPECT_EQ(choice.consults, 2);
    EXPECT_EQ(sim.pending(), 0u);
}

// Regression: a bounded run whose next pending event lies far in the future
// must not advance the wheel position past the deadline — otherwise an event
// scheduled afterwards, between the deadline and that far event, would be
// misfiled and fire at the wrong time.
TEST(TimerWheelSimulator, ScheduleAfterBoundedRunWithFarPendingEventFiresOnTime) {
    Simulator sim;
    std::vector<std::pair<Time, int>> fired;
    sim.schedule_at(600'000, [&] { fired.push_back({sim.now(), 1}); });
    sim.run_until(300'000); // wheel must stay at or below 300'000
    EXPECT_EQ(sim.now(), 300'000);
    sim.schedule_at(310'000, [&] { fired.push_back({sim.now(), 2}); });
    sim.run();
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], (std::pair<Time, int>{310'000, 2}));
    EXPECT_EQ(fired[1], (std::pair<Time, int>{600'000, 1}));
}

TEST(TimerWheelSimulator, MillionEntryRefreshChurnStaysConsistent) {
    // A compact end-to-end smoke of the scale story: 100k entries (CI-sized
    // stand-in for 1M; the bench covers the full sweep) each rescheduled
    // once, then everything drains.
    Simulator sim;
    constexpr int kEntries = 100'000;
    std::vector<EventId> ids;
    ids.reserve(kEntries);
    int fired = 0;
    for (int i = 0; i < kEntries; ++i) {
        ids.push_back(sim.schedule(1000 + (i % 977) * 13, [&fired] { ++fired; }));
    }
    // Refresh: cancel + reschedule later, the soft-state pattern.
    for (int i = 0; i < kEntries; ++i) {
        ASSERT_TRUE(sim.cancel(ids[static_cast<std::size_t>(i)]));
        ids[static_cast<std::size_t>(i)] =
            sim.schedule(20'000 + (i % 977) * 13, [&fired] { ++fired; });
    }
    EXPECT_EQ(sim.pending(), static_cast<std::size_t>(kEntries));
    sim.run();
    EXPECT_EQ(fired, kEntries);
    EXPECT_EQ(sim.pending(), 0u);
}

TEST(TimerWheelStats, TracksOccupancyCascadesAndOverflow) {
    TimerWheel wheel;
    std::vector<std::pair<Time, int>> fired;
    std::uint64_t seq = 1;

    // Empty wheel: everything zero.
    TimerWheel::Stats s = wheel.stats();
    EXPECT_EQ(s.pending, 0u);
    EXPECT_EQ(s.cascades, 0u);
    EXPECT_EQ(s.overflow_events, 0u);

    // Three level-0 events in distinct slots, one level-1, one beyond the
    // 2^40 horizon.
    push_marker(wheel, 1, seq++, fired, 0);
    push_marker(wheel, 2, seq++, fired, 1);
    push_marker(wheel, 3, seq++, fired, 2);
    const Time level1 = TimerWheel::kSlots + 5; // one cascade away
    push_marker(wheel, level1, seq++, fired, 3);
    // A full horizon past the drain point, so it stays in overflow even
    // after the wheel's base advances below.
    const Time beyond = Time{2} << (TimerWheel::kSlotBits * TimerWheel::kLevels);
    push_marker(wheel, beyond + 7, seq++, fired, 4);

    s = wheel.stats();
    EXPECT_EQ(s.pending, 5u);
    EXPECT_EQ(s.pending, wheel.size());
    EXPECT_EQ(s.level_events[0], 3u);
    EXPECT_EQ(s.occupied_slots[0], 3);
    EXPECT_EQ(s.level_events[1], 1u);
    EXPECT_EQ(s.occupied_slots[1], 1);
    EXPECT_EQ(s.overflow_events, 1u);
    EXPECT_EQ(s.cascades, 0u);

    // Drain up to the level-1 event: its slot must cascade down, and the
    // cumulative counters must record exactly that one re-homing.
    Time at = 0;
    while (wheel.next_time(&at, level1)) {
        wheel.open_batch(at);
        while (wheel.batch_live() > 0) wheel.take(0)();
    }
    s = wheel.stats();
    EXPECT_EQ(s.pending, 1u);
    EXPECT_EQ(s.cascades, 1u);
    EXPECT_EQ(s.cascaded_nodes, 1u);
    EXPECT_EQ(s.level_events[0], 0u);
    EXPECT_EQ(s.level_events[1], 0u);
    EXPECT_EQ(s.overflow_events, 1u) << "far event still beyond the horizon";
    EXPECT_EQ(s.overflow_migrations, 0u);
    EXPECT_EQ(fired.size(), 4u);
}

} // namespace
} // namespace pimlib::sim
