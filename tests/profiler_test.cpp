// The scoped-zone CPU profiler (src/telemetry/profiler): nesting math,
// ring wraparound accounting, the disabled fast path, deterministic
// cross-thread merge, and Registry publication.
#include "telemetry/profiler/export.hpp"
#include "telemetry/profiler/profiler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

namespace prof = pimlib::prof;

namespace {

// Global operator-new interposition for the zero-allocation assertion.
// Counting (not failing) keeps the hook harmless for every other test in
// the binary.
std::atomic<std::uint64_t> g_alloc_count{0};

struct ProfilerTest : ::testing::Test {
    void SetUp() override {
        prof::set_enabled(false);
        prof::reset();
    }
    void TearDown() override {
        prof::set_enabled(false);
        prof::reset();
        prof::set_time_source(nullptr, nullptr);
    }
};

const prof::ReportNode* find_node(const prof::Report& r, const std::string& path) {
    for (const auto& n : r.nodes) {
        if (n.path == path) return &n;
    }
    return nullptr;
}

const prof::ZoneStat* find_zone(const prof::Report& r, const std::string& zone) {
    for (const auto& z : r.zones) {
        if (z.zone == zone) return &z;
    }
    return nullptr;
}

void burn(int iters) {
    volatile int sink = 0;
    for (int i = 0; i < iters; ++i) sink = sink + i;
}

} // namespace

void* operator new(std::size_t size) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

// The replaced operator new above is malloc-based, so free() here is the
// matched deallocator — the compiler cannot see through the replacement.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

TEST_F(ProfilerTest, DisabledZoneIsInvisible) {
    {
        PROF_ZONE("test.invisible");
        burn(100);
    }
    const prof::Report r = prof::snapshot();
    EXPECT_EQ(r.total_entries, 0u);
    EXPECT_EQ(find_node(r, "test.invisible"), nullptr);
}

TEST_F(ProfilerTest, DisabledZoneAllocatesNothing) {
    // Warm the thread-local state while enabled so the disabled path is
    // measured against a fully-initialized thread.
    prof::set_enabled(true);
    {
        PROF_ZONE("test.warm");
    }
    prof::set_enabled(false);

    const std::uint64_t before = g_alloc_count.load();
    for (int i = 0; i < 1000; ++i) {
        PROF_ZONE("test.disabled_alloc");
        burn(1);
    }
    EXPECT_EQ(g_alloc_count.load(), before)
        << "a compiled-in-but-disabled PROF_ZONE must not allocate";
}

TEST_F(ProfilerTest, NestedZonesSplitExclusiveFromInclusive) {
    prof::set_enabled(true);
    for (int i = 0; i < 50; ++i) {
        PROF_ZONE("test.outer");
        burn(200);
        {
            PROF_ZONE("test.inner");
            burn(200);
        }
        burn(200);
    }
    prof::set_enabled(false);
    const prof::Report r = prof::snapshot();

    const prof::ReportNode* outer = find_node(r, "test.outer");
    const prof::ReportNode* inner = find_node(r, "test.outer;test.inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->count, 50u);
    EXPECT_EQ(inner->count, 50u);
    EXPECT_EQ(inner->leaf, "test.inner");

    // The identity the whole report rests on: a node's exclusive time is
    // its inclusive time minus its children's inclusive time.
    EXPECT_EQ(outer->exclusive_ns, outer->inclusive_ns - inner->inclusive_ns);
    // Inner has no children: exclusive == inclusive.
    EXPECT_EQ(inner->exclusive_ns, inner->inclusive_ns);
    EXPECT_GT(outer->exclusive_ns, 0);
    EXPECT_GE(r.total_entries, 100u);
}

TEST_F(ProfilerTest, RecursiveZoneCountsInclusiveOnce) {
    prof::set_enabled(true);
    {
        PROF_ZONE("test.rec");
        burn(100);
        {
            PROF_ZONE("test.rec");
            burn(100);
        }
    }
    prof::set_enabled(false);
    const prof::Report r = prof::snapshot();

    const prof::ReportNode* outer = find_node(r, "test.rec");
    const prof::ReportNode* nested = find_node(r, "test.rec;test.rec");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(nested, nullptr);

    // The per-zone rollup must not double-count the nested occurrence's
    // inclusive time: the zone's inclusive equals the OUTERMOST node's.
    const prof::ZoneStat* z = find_zone(r, "test.rec");
    ASSERT_NE(z, nullptr);
    EXPECT_EQ(z->count, 2u);
    EXPECT_EQ(z->inclusive_ns, outer->inclusive_ns);
    EXPECT_EQ(z->exclusive_ns, outer->exclusive_ns + nested->exclusive_ns);
    EXPECT_LT(z->inclusive_ns, outer->inclusive_ns + nested->inclusive_ns);
}

TEST_F(ProfilerTest, RingWrapsAndCountsDrops) {
    prof::reset();
    prof::set_ring_capacity(16);
    prof::set_enabled(true);
    for (int i = 0; i < 100; ++i) {
        PROF_ZONE("test.wrap");
    }
    prof::set_enabled(false);

    const std::vector<prof::TraceSlice> slices = prof::trace_slices();
    std::size_t wrap_slices = 0;
    for (const auto& s : slices) {
        if (s.path == "test.wrap") ++wrap_slices;
    }
    EXPECT_EQ(wrap_slices, 16u) << "ring must cap retained records";

    const prof::Report r = prof::snapshot();
    EXPECT_EQ(r.total_entries, 100u) << "aggregation is exact despite drops";
    EXPECT_EQ(r.dropped_records, 84u);
    const prof::ZoneStat* z = find_zone(r, "test.wrap");
    ASSERT_NE(z, nullptr);
    EXPECT_EQ(z->count, 100u);

    // Restore the default capacity for the rest of the binary.
    prof::reset();
    prof::set_ring_capacity(65536);
}

TEST_F(ProfilerTest, ThreadMergeIsDeterministic) {
    prof::set_enabled(true);
    auto work = [](int iters) {
        for (int i = 0; i < iters; ++i) {
            PROF_ZONE("test.mt.outer");
            PROF_ZONE("test.mt.inner");
            burn(10);
        }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) threads.emplace_back(work, 25);
    for (auto& t : threads) t.join();
    prof::set_enabled(false);

    const prof::Report a = prof::snapshot();
    const prof::Report b = prof::snapshot();

    // Same quiescent state → byte-identical reports, regardless of which
    // thread registered first.
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (std::size_t i = 0; i < a.nodes.size(); ++i) {
        EXPECT_EQ(a.nodes[i].path, b.nodes[i].path);
        EXPECT_EQ(a.nodes[i].inclusive_ns, b.nodes[i].inclusive_ns);
        EXPECT_EQ(a.nodes[i].count, b.nodes[i].count);
    }
    // Paths are sorted.
    for (std::size_t i = 1; i < a.nodes.size(); ++i) {
        EXPECT_LT(a.nodes[i - 1].path, a.nodes[i].path);
    }
    const prof::ZoneStat* inner = find_zone(a, "test.mt.inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->count, 100u) << "4 threads x 25 iterations";
    EXPECT_GE(a.threads, 4u);
}

TEST_F(ProfilerTest, TimeSourceStampsSlices) {
    static std::int64_t fake_now = 0;
    prof::set_time_source(
        [](const void*) -> std::int64_t { return fake_now; }, nullptr);
    prof::set_enabled(true);
    fake_now = 42;
    {
        PROF_ZONE("test.stamped");
    }
    fake_now = 43;
    {
        PROF_ZONE("test.stamped");
    }
    prof::set_enabled(false);
    prof::set_time_source(nullptr, nullptr);

    std::vector<std::int64_t> stamps;
    for (const auto& s : prof::trace_slices()) {
        if (s.path == "test.stamped") stamps.push_back(s.sim_at);
    }
    ASSERT_EQ(stamps.size(), 2u);
    EXPECT_EQ(stamps[0], 42);
    EXPECT_EQ(stamps[1], 43);
}

TEST_F(ProfilerTest, CollapsedStacksUseExclusiveMicroseconds) {
    prof::set_enabled(true);
    {
        PROF_ZONE("test.collapse.a");
        PROF_ZONE("test.collapse.b");
        burn(1000);
    }
    prof::set_enabled(false);
    const std::string collapsed = prof::to_collapsed(prof::snapshot());
    EXPECT_NE(collapsed.find("test.collapse.a "), std::string::npos);
    EXPECT_NE(collapsed.find("test.collapse.a;test.collapse.b "),
              std::string::npos);
    // Every line is "path <integer>\n".
    std::size_t pos = 0;
    while (pos < collapsed.size()) {
        const std::size_t nl = collapsed.find('\n', pos);
        ASSERT_NE(nl, std::string::npos);
        const std::string line = collapsed.substr(pos, nl - pos);
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        for (char c : line.substr(space + 1)) {
            EXPECT_TRUE(c >= '0' && c <= '9') << line;
        }
        pos = nl + 1;
    }
}

TEST_F(ProfilerTest, CalibrationReportsPlausibleCosts) {
    const prof::Calibration cal = prof::calibrate();
    EXPECT_GT(cal.clock_read_ns, 0.0);
    EXPECT_LT(cal.clock_read_ns, 10000.0);
    EXPECT_GE(cal.disabled_zone_ns, 0.0);
    EXPECT_LT(cal.disabled_zone_ns, 1000.0)
        << "a disabled zone is one atomic load + branch; a microsecond-scale "
           "reading means the fast path regressed";
}

TEST_F(ProfilerTest, PublishProfileExportsGauges) {
    prof::set_enabled(true);
    {
        PROF_ZONE("test.publish");
        burn(100);
    }
    prof::set_enabled(false);

    pimlib::telemetry::Registry registry;
    prof::publish_profile(prof::snapshot(), registry);

    bool saw_seconds = false;
    bool saw_calls = false;
    bool saw_entries = false;
    for (const auto* inst : registry.sorted()) {
        if (inst->name == "pimlib_profile_zone_seconds") saw_seconds = true;
        if (inst->name == "pimlib_profile_zone_calls") saw_calls = true;
        if (inst->name == "pimlib_profile_entries_total") saw_entries = true;
    }
    EXPECT_TRUE(saw_seconds);
    EXPECT_TRUE(saw_calls);
    EXPECT_TRUE(saw_entries);
}
