// Property tests over randomly generated internetworks: delivery
// exactly-once invariants for every protocol, soft-state cleanup, and
// structural invariants of PIM forwarding entries. Parameterized by seed.
#include <gtest/gtest.h>

#include <random>

#include "graph/random_graph.hpp"
#include "test_util.hpp"
#include "topo/segment.hpp"

namespace pimlib::test {
namespace {

using pim::SptPolicy;

/// A random internetwork: a connected router backbone from the graph
/// toolkit, with a member LAN hanging off each of `lan_count` distinct
/// routers; hosts[0] doubles as the source.
struct RandomInternet {
    topo::Network net;
    std::vector<topo::Router*> routers;
    std::vector<topo::Host*> hosts; // hosts[i] on LAN of lan_router[i]
    std::vector<topo::Router*> lan_routers;
    std::unique_ptr<unicast::OracleRouting> routing;

    RandomInternet(std::uint32_t seed, int router_count, int lan_count) {
        std::mt19937 rng(seed);
        graph::Graph g = graph::random_connected_graph(
            {.nodes = router_count, .average_degree = 3.0}, rng);
        for (int i = 0; i < router_count; ++i) {
            routers.push_back(&net.add_router("r" + std::to_string(i)));
        }
        for (int u = 0; u < router_count; ++u) {
            for (const auto& e : g.neighbors(u)) {
                if (e.to > u) net.add_link(*routers[u], *routers[e.to]);
            }
        }
        for (int idx : graph::sample_nodes(router_count, lan_count, rng)) {
            auto& lan = net.add_lan({routers[static_cast<std::size_t>(idx)]});
            hosts.push_back(&net.add_host("h" + std::to_string(idx), lan));
            lan_routers.push_back(routers[static_cast<std::size_t>(idx)]);
        }
        routing = std::make_unique<unicast::OracleRouting>(net);
    }
};

class PimSmPropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PimSmPropertyTest, ExactlyOnceDeliveryOnRandomTopology) {
    RandomInternet t(GetParam(), 12, 5);
    scenario::PimSmStack stack(t.net, fast_config());
    // Random RP choice: any backbone router.
    std::mt19937 rng(GetParam() * 7 + 1);
    std::uniform_int_distribution<std::size_t> pick(0, t.routers.size() - 1);
    stack.set_rp(kGroup, {t.routers[pick(rng)]->router_id()});
    stack.set_spt_policy(GetParam() % 2 == 0 ? SptPolicy::immediate()
                                             : SptPolicy::never());
    t.net.run_for(200 * sim::kMillisecond);

    // hosts[1..] are receivers; hosts[0] is the source.
    for (std::size_t i = 1; i < t.hosts.size(); ++i) {
        stack.host_agent(*t.hosts[i]).join(kGroup);
    }
    t.net.run_for(400 * sim::kMillisecond);

    // Warm-up packet establishes register/native paths (and, under the
    // immediate policy, the SPTs); transients allowed here.
    t.hosts[0]->send_data(kGroup);
    t.net.run_for(1 * sim::kSecond);
    for (std::size_t i = 1; i < t.hosts.size(); ++i) t.hosts[i]->clear_received();

    // The measured stream must arrive exactly once at every member.
    constexpr int kPackets = 10;
    t.hosts[0]->send_stream(kGroup, kPackets, 50 * sim::kMillisecond);
    t.net.run_for(2 * sim::kSecond);
    for (std::size_t i = 1; i < t.hosts.size(); ++i) {
        EXPECT_EQ(t.hosts[i]->received_count(kGroup), static_cast<std::size_t>(kPackets))
            << "receiver " << i << " seed " << GetParam();
        EXPECT_EQ(t.hosts[i]->duplicate_count(), 0u)
            << "receiver " << i << " seed " << GetParam();
    }
}

TEST_P(PimSmPropertyTest, EntryInvariantsHoldEverywhere) {
    RandomInternet t(GetParam() + 1000, 10, 4);
    scenario::PimSmStack stack(t.net, fast_config());
    stack.set_rp(kGroup, {t.routers[0]->router_id()});
    stack.set_spt_policy(SptPolicy::immediate());
    t.net.run_for(200 * sim::kMillisecond);
    for (std::size_t i = 1; i < t.hosts.size(); ++i) {
        stack.host_agent(*t.hosts[i]).join(kGroup);
    }
    t.net.run_for(300 * sim::kMillisecond);
    t.hosts[0]->send_stream(kGroup, 5, 50 * sim::kMillisecond);
    t.net.run_for(1 * sim::kSecond);

    const sim::Time now = t.net.simulator().now();
    for (auto* router : t.routers) {
        auto& cache = stack.pim_at(*router).cache();
        auto check = [&](mcast::ForwardingEntry& e) {
            // iif never appears among the live oifs (no reflection).
            for (int oif : e.live_oifs(now)) {
                EXPECT_NE(oif, e.iif()) << router->name() << " " << e.describe();
            }
            // The iif matches the router's current RPF interface.
            if (e.iif() >= 0) {
                auto route = router->route_to(e.source_or_rp());
                ASSERT_TRUE(route.has_value());
                EXPECT_EQ(e.iif(), route->ifindex)
                    << router->name() << " " << e.describe();
            }
            // Wildcard entries always carry the RP bit (§3).
            if (e.wildcard()) {
                EXPECT_TRUE(e.rp_bit());
            }
        };
        cache.for_each_wc(check);
        cache.for_each_sg(check);
    }
}

TEST_P(PimSmPropertyTest, AllStateDissolvesAfterEveryoneLeaves) {
    RandomInternet t(GetParam() + 2000, 10, 4);
    scenario::PimSmStack stack(t.net, fast_config());
    stack.set_rp(kGroup, {t.routers[1]->router_id()});
    stack.set_spt_policy(SptPolicy::immediate());
    t.net.run_for(200 * sim::kMillisecond);
    for (std::size_t i = 1; i < t.hosts.size(); ++i) {
        stack.host_agent(*t.hosts[i]).join(kGroup);
    }
    t.net.run_for(300 * sim::kMillisecond);
    t.hosts[0]->send_stream(kGroup, 5, 50 * sim::kMillisecond);
    t.net.run_for(1 * sim::kSecond);

    for (std::size_t i = 1; i < t.hosts.size(); ++i) {
        stack.host_agent(*t.hosts[i]).leave(kGroup);
    }
    // Source also stops. All soft state must dissolve: memberships age out
    // (250 ms), oif timers expire (1.8 s), entries delete at 3 × refresh.
    t.net.run_for(8 * sim::kSecond);
    for (auto* router : t.routers) {
        EXPECT_EQ(stack.pim_at(*router).state_entry_count(), 0u)
            << router->name() << " seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PimSmPropertyTest, ::testing::Range(1u, 9u));

class DensePropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DensePropertyTest, DvmrpExactlyOnceOnRandomTopology) {
    RandomInternet t(GetParam() + 3000, 10, 4);
    scenario::DvmrpStack stack(t.net, fast_config());
    t.net.run_for(200 * sim::kMillisecond);
    for (std::size_t i = 1; i < t.hosts.size(); ++i) {
        stack.host_agent(*t.hosts[i]).join(kGroup);
    }
    t.net.run_for(300 * sim::kMillisecond);
    t.hosts[0]->send_stream(kGroup, 10, 50 * sim::kMillisecond);
    t.net.run_for(2 * sim::kSecond);
    for (std::size_t i = 1; i < t.hosts.size(); ++i) {
        EXPECT_EQ(t.hosts[i]->received_count(kGroup), 10u) << "seed " << GetParam();
        EXPECT_EQ(t.hosts[i]->duplicate_count(), 0u) << "seed " << GetParam();
    }
}

TEST_P(DensePropertyTest, PimDmExactlyOnceOnRandomTopology) {
    RandomInternet t(GetParam() + 4000, 10, 4);
    scenario::PimDmStack stack(t.net, fast_config());
    t.net.run_for(200 * sim::kMillisecond);
    for (std::size_t i = 1; i < t.hosts.size(); ++i) {
        stack.host_agent(*t.hosts[i]).join(kGroup);
    }
    t.net.run_for(300 * sim::kMillisecond);
    t.hosts[0]->send_stream(kGroup, 10, 50 * sim::kMillisecond);
    t.net.run_for(2 * sim::kSecond);
    for (std::size_t i = 1; i < t.hosts.size(); ++i) {
        EXPECT_EQ(t.hosts[i]->received_count(kGroup), 10u) << "seed " << GetParam();
        EXPECT_EQ(t.hosts[i]->duplicate_count(), 0u) << "seed " << GetParam();
    }
}

TEST_P(DensePropertyTest, CbtExactlyOnceOnRandomTopology) {
    RandomInternet t(GetParam() + 5000, 10, 4);
    scenario::CbtStack stack(t.net, fast_config());
    std::mt19937 rng(GetParam());
    std::uniform_int_distribution<std::size_t> pick(0, t.routers.size() - 1);
    stack.set_core(kGroup, t.routers[pick(rng)]->router_id());
    t.net.run_for(200 * sim::kMillisecond);
    for (std::size_t i = 1; i < t.hosts.size(); ++i) {
        stack.host_agent(*t.hosts[i]).join(kGroup);
    }
    t.net.run_for(500 * sim::kMillisecond);
    t.hosts[0]->send_stream(kGroup, 10, 50 * sim::kMillisecond);
    t.net.run_for(2 * sim::kSecond);
    for (std::size_t i = 1; i < t.hosts.size(); ++i) {
        EXPECT_EQ(t.hosts[i]->received_count(kGroup), 10u) << "seed " << GetParam();
        EXPECT_EQ(t.hosts[i]->duplicate_count(), 0u) << "seed " << GetParam();
    }
}

TEST_P(DensePropertyTest, MospfExactlyOnceOnRandomTopology) {
    RandomInternet t(GetParam() + 6000, 10, 4);
    scenario::MospfStack stack(t.net, fast_config());
    t.net.run_for(200 * sim::kMillisecond);
    for (std::size_t i = 1; i < t.hosts.size(); ++i) {
        stack.host_agent(*t.hosts[i]).join(kGroup);
    }
    t.net.run_for(400 * sim::kMillisecond);
    t.hosts[0]->send_stream(kGroup, 10, 50 * sim::kMillisecond);
    t.net.run_for(2 * sim::kSecond);
    for (std::size_t i = 1; i < t.hosts.size(); ++i) {
        EXPECT_EQ(t.hosts[i]->received_count(kGroup), 10u) << "seed " << GetParam();
        EXPECT_EQ(t.hosts[i]->duplicate_count(), 0u) << "seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DensePropertyTest, ::testing::Range(1u, 7u));

// Multi-sender property: several simultaneous sources on the shared tree
// and on SPTs; every (member, source) pair sees the full stream.
class MultiSenderTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MultiSenderTest, AllPairsDelivered) {
    RandomInternet t(GetParam() + 7000, 12, 5);
    scenario::PimSmStack stack(t.net, fast_config());
    stack.set_rp(kGroup, {t.routers[2]->router_id()});
    stack.set_spt_policy(GetParam() % 2 == 0 ? SptPolicy::immediate()
                                             : SptPolicy::never());
    t.net.run_for(200 * sim::kMillisecond);

    // Every host is both a member and a sender (like Fig. 2(b)'s setup).
    for (auto* host : t.hosts) stack.host_agent(*host).join(kGroup);
    t.net.run_for(400 * sim::kMillisecond);
    for (auto* host : t.hosts) host->send_data(kGroup); // warm-up
    t.net.run_for(1500 * sim::kMillisecond);
    for (auto* host : t.hosts) host->clear_received();

    constexpr int kPackets = 5;
    for (auto* host : t.hosts) {
        host->send_stream(kGroup, kPackets, 60 * sim::kMillisecond);
    }
    t.net.run_for(3 * sim::kSecond);
    for (auto* receiver : t.hosts) {
        for (auto* sender : t.hosts) {
            if (receiver == sender) continue;
            EXPECT_EQ(receiver->received_count_from(sender->address(), kGroup),
                      static_cast<std::size_t>(kPackets))
                << receiver->name() << " from " << sender->name() << " seed "
                << GetParam();
        }
        EXPECT_EQ(receiver->duplicate_count(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiSenderTest, ::testing::Range(1u, 7u));

} // namespace
} // namespace pimlib::test
