// §4 "Interoperation with dense mode networks / regions": a PIM-DM region
// spliced onto a PIM-SM backbone through a border router whose region-facing
// interface is flagged dense (§3.1). The border proxies the region's sources
// (registers on their behalf) and joins the shared tree when the region has
// members, per the paper's sketched mechanism.
//
//   backbone:  src_bb—LAN—T ——— C (RP) ——— BR   (PIM sparse mode)
//   region:                         dense | p2p
//                              I1 ——— I2—LAN—member   (PIM dense mode)
//                              |
//                              LAN—src_region
#include <gtest/gtest.h>

#include "test_util.hpp"
#include "topo/segment.hpp"

namespace pimlib::test {
namespace {

struct InteropWorld {
    topo::Network net;
    topo::Router *t, *c, *br, *i1, *i2;
    topo::Host *src_bb, *member_bb, *src_region, *member_region;
    std::unique_ptr<unicast::OracleRouting> routing;

    // manual per-router stacks (SM on the backbone, DM in the region)
    scenario::StackConfig cfg = fast_config();
    std::map<const topo::Router*, std::unique_ptr<igmp::RouterAgent>> igmp;
    std::map<const topo::Router*, std::unique_ptr<pim::PimSmRouter>> sm;
    std::map<const topo::Router*, std::unique_ptr<pim::PimDmRouter>> dm;
    std::vector<std::unique_ptr<igmp::HostAgent>> host_agents;
    std::unique_ptr<scenario::DenseDomainBridge> bridge;
    int dense_ifindex = -1;

    InteropWorld() {
        t = &net.add_router("T");
        c = &net.add_router("C");
        br = &net.add_router("BR");
        i1 = &net.add_router("I1");
        i2 = &net.add_router("I2");
        auto& bb_src_lan = net.add_lan({t});
        src_bb = &net.add_host("src_bb", bb_src_lan);
        auto& bb_member_lan = net.add_lan({t});
        member_bb = &net.add_host("member_bb", bb_member_lan);
        net.add_link(*t, *c);
        net.add_link(*c, *br);
        auto& region_link = net.add_link(*br, *i1);
        dense_ifindex = br->ifindex_on(region_link).value();
        auto& region_src_lan = net.add_lan({i1});
        src_region = &net.add_host("src_region", region_src_lan);
        net.add_link(*i1, *i2);
        auto& region_member_lan = net.add_lan({i2});
        member_region = &net.add_host("member_region", region_member_lan);
        routing = std::make_unique<unicast::OracleRouting>(net);

        for (topo::Router* r : {t, c, br}) {
            igmp.emplace(r, std::make_unique<igmp::RouterAgent>(*r, cfg.igmp));
            sm.emplace(r, std::make_unique<pim::PimSmRouter>(*r, *igmp.at(r), cfg.pim));
            sm.at(r)->rp_set().configure(kGroup, {c->router_id()});
        }
        for (topo::Router* r : {i1, i2}) {
            igmp.emplace(r, std::make_unique<igmp::RouterAgent>(*r, cfg.igmp));
            dm.emplace(r, std::make_unique<pim::PimDmRouter>(*r, *igmp.at(r), cfg.pim_dm));
        }
        for (topo::Host* h : {src_bb, member_bb, src_region, member_region}) {
            host_agents.push_back(std::make_unique<igmp::HostAgent>(*h, cfg.host));
        }
        bridge = std::make_unique<scenario::DenseDomainBridge>(*sm.at(br), dense_ifindex);
        bridge->watch(*igmp.at(i1));
        bridge->watch(*igmp.at(i2));
        net.run_for(200 * sim::kMillisecond);
    }

    igmp::HostAgent& agent_of(const topo::Host& h) {
        for (auto& a : host_agents) {
            if (&a->host() == &h) return *a;
        }
        throw std::logic_error("unknown host");
    }
};

TEST(Interop, RegionMemberPullsBackboneSource) {
    InteropWorld w;
    // The first member in the dense region appears; the border must join
    // the shared tree on its behalf ("border routers send explicit joins").
    w.agent_of(*w.member_region).join(kGroup);
    w.net.run_for(400 * sim::kMillisecond);
    auto* wc_br = w.sm.at(w.br)->cache().find_wc(kGroup);
    ASSERT_NE(wc_br, nullptr);
    EXPECT_TRUE(wc_br->has_oif(w.dense_ifindex));

    w.src_bb->send_stream(kGroup, 5, 50 * sim::kMillisecond);
    w.net.run_for(1 * sim::kSecond);
    EXPECT_EQ(w.member_region->received_count(kGroup), 5u);
    EXPECT_EQ(w.member_region->duplicate_count(), 0u);
}

TEST(Interop, BorderProxiesRegionSources) {
    InteropWorld w;
    w.agent_of(*w.member_bb).join(kGroup);
    w.net.run_for(400 * sim::kMillisecond);

    // The region's source floods to the border (dense mode assumes
    // membership); the border registers with the RP on its behalf.
    w.src_region->send_stream(kGroup, 5, 50 * sim::kMillisecond);
    w.net.run_for(1 * sim::kSecond);
    EXPECT_EQ(w.member_bb->received_count(kGroup), 5u);
    EXPECT_EQ(w.member_bb->duplicate_count(), 0u);
    // The RP learned the interior source through the border's registers.
    EXPECT_EQ(w.sm.at(w.c)->active_sources(kGroup).size(), 1u);
    // The border's (S,G) is rooted at the dense interface.
    auto* sg_br = w.sm.at(w.br)->cache().find_sg(w.src_region->address(), kGroup);
    ASSERT_NE(sg_br, nullptr);
    EXPECT_EQ(sg_br->iif(), w.dense_ifindex);
}

TEST(Interop, BothDirectionsSimultaneously) {
    InteropWorld w;
    w.agent_of(*w.member_bb).join(kGroup);
    w.agent_of(*w.member_region).join(kGroup);
    w.net.run_for(400 * sim::kMillisecond);

    w.src_bb->send_data(kGroup); // warm-up both trees
    w.src_region->send_data(kGroup);
    w.net.run_for(1 * sim::kSecond);
    w.member_bb->clear_received();
    w.member_region->clear_received();

    w.src_bb->send_stream(kGroup, 5, 50 * sim::kMillisecond);
    w.src_region->send_stream(kGroup, 5, 50 * sim::kMillisecond);
    w.net.run_for(1500 * sim::kMillisecond);

    // Each member hears both sources exactly once per packet. (The region
    // member hears its own region's source via dense-mode flooding.)
    EXPECT_EQ(w.member_bb->received_count_from(w.src_bb->address(), kGroup), 5u);
    EXPECT_EQ(w.member_bb->received_count_from(w.src_region->address(), kGroup), 5u);
    EXPECT_EQ(w.member_region->received_count_from(w.src_bb->address(), kGroup), 5u);
    EXPECT_EQ(w.member_region->received_count_from(w.src_region->address(), kGroup), 5u);
    EXPECT_EQ(w.member_bb->duplicate_count(), 0u);
    EXPECT_EQ(w.member_region->duplicate_count(), 0u);
}

TEST(Interop, RegionLeaveDissolvesSplice) {
    InteropWorld w;
    w.agent_of(*w.member_region).join(kGroup);
    w.net.run_for(400 * sim::kMillisecond);
    ASSERT_NE(w.sm.at(w.br)->cache().find_wc(kGroup), nullptr);

    w.agent_of(*w.member_region).leave(kGroup);
    // Membership ages out in the region, the bridge unpins the dense
    // interface, and the border's shared-tree state dissolves.
    w.net.run_for(5 * sim::kSecond);
    EXPECT_EQ(w.sm.at(w.br)->cache().find_wc(kGroup), nullptr);

    // Backbone data no longer enters the region.
    w.net.stats().reset_data_counters();
    w.src_bb->send_data(kGroup);
    w.net.run_for(500 * sim::kMillisecond);
    const auto* region_link = w.net.find_link(*w.br, *w.i1);
    EXPECT_EQ(w.net.stats().data_packets_on(region_link->id()), 0u);
}

TEST(Interop, DenseInterfaceFlagQueries) {
    InteropWorld w;
    EXPECT_TRUE(w.sm.at(w.br)->is_interface_dense(w.dense_ifindex));
    EXPECT_FALSE(w.sm.at(w.br)->is_interface_dense(0));
    w.sm.at(w.br)->set_interface_dense(w.dense_ifindex, false);
    EXPECT_FALSE(w.sm.at(w.br)->is_interface_dense(w.dense_ifindex));
}

} // namespace
} // namespace pimlib::test
