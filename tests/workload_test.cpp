// Workload subsystem tests: Zipf catalog sampling, session-duration draws,
// host-bank boundary semantics (first join / last leave), churn-engine
// determinism, flash crowds, and the transit-stub topology generator.
#include <gtest/gtest.h>

#include <random>

#include "graph/transit_stub.hpp"
#include "igmp/router_agent.hpp"
#include "test_util.hpp"
#include "topo/segment.hpp"
#include "workload/churn.hpp"
#include "workload/host_bank.hpp"
#include "workload/topology.hpp"

namespace pimlib::test {
namespace {

using workload::ChurnConfig;
using workload::ChurnEngine;
using workload::HostBank;
using workload::SessionDuration;
using workload::ZipfSampler;

TEST(ZipfSampler, CdfIsMonotoneNormalizedAndRankOrdered) {
    ZipfSampler zipf(8, 1.0);
    double prev = 0;
    double prev_share = 2.0;
    for (int k = 0; k < 8; ++k) {
        const double share = zipf.cdf(k) - prev;
        EXPECT_GT(share, 0.0);
        EXPECT_LT(share, prev_share); // popularity strictly decreasing
        prev_share = share;
        EXPECT_GE(zipf.cdf(k), prev);
        prev = zipf.cdf(k);
    }
    EXPECT_DOUBLE_EQ(zipf.cdf(7), 1.0);

    // Exponent 0 degenerates to uniform.
    ZipfSampler uniform(4, 0.0);
    EXPECT_NEAR(uniform.cdf(0), 0.25, 1e-12);
    EXPECT_NEAR(uniform.cdf(1), 0.50, 1e-12);
}

TEST(ZipfSampler, SamplingIsDeterministicAndFollowsPopularity) {
    ZipfSampler zipf(8, 1.0);
    std::mt19937_64 rng_a(7);
    std::mt19937_64 rng_b(7);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 20000; ++i) {
        const int a = zipf.sample(rng_a);
        ASSERT_EQ(a, zipf.sample(rng_b)); // same seed, same stream
        ASSERT_GE(a, 0);
        ASSERT_LT(a, 8);
        ++counts[static_cast<std::size_t>(a)];
    }
    // Rank popularity must come out ordered at this sample size.
    for (int k = 0; k + 1 < 8; ++k) EXPECT_GT(counts[k], counts[k + 1]);
}

TEST(SessionDuration, DrawsRespectKindAndClamp) {
    std::mt19937_64 rng(1);
    SessionDuration fixed{SessionDuration::Kind::kFixed, 3 * sim::kSecond, 1.5};
    EXPECT_EQ(fixed.draw(rng), 3 * sim::kSecond);

    // The 1 ms clamp keeps leaves from preceding their joins.
    SessionDuration tiny{SessionDuration::Kind::kFixed, 0, 1.5};
    EXPECT_EQ(tiny.draw(rng), sim::kMillisecond);

    SessionDuration expo{SessionDuration::Kind::kExponential, 2 * sim::kSecond, 1.5};
    SessionDuration pareto{SessionDuration::Kind::kPareto, 2 * sim::kSecond, 1.5};
    for (int i = 0; i < 1000; ++i) {
        EXPECT_GE(expo.draw(rng), sim::kMillisecond);
        EXPECT_GE(pareto.draw(rng), sim::kMillisecond);
    }
}

/// One router + one LAN with a bank host and a sender host; membership
/// observed from the router side through the IGMP agent's callbacks.
struct BankLan {
    topo::Network net;
    topo::Router* router;
    topo::Segment* lan;
    topo::Host* bank_host;
    topo::Host* sender;
    std::unique_ptr<igmp::RouterAgent> router_agent;
    std::unique_ptr<igmp::HostAgent> host_agent;
    int first_member = 0;
    int last_leave = 0;

    BankLan() {
        router = &net.add_router("r");
        lan = &net.add_lan({router});
        bank_host = &net.add_host("bank", *lan);
        sender = &net.add_host("sender", *lan);
        igmp::RouterConfig rc;
        rc.query_interval = 100 * sim::kMillisecond;
        rc.membership_timeout = 250 * sim::kMillisecond;
        rc.other_querier_timeout = 250 * sim::kMillisecond;
        router_agent = std::make_unique<igmp::RouterAgent>(*router, rc);
        igmp::HostConfig hc;
        hc.query_response_max = 10 * sim::kMillisecond;
        host_agent = std::make_unique<igmp::HostAgent>(*bank_host, hc);
        router_agent->subscribe([this](int, net::GroupAddress, bool present) {
            if (present) {
                ++first_member;
            } else {
                ++last_leave;
            }
        });
    }
};

TEST(HostBank, DrivesAgentOnlyOnBoundaryTransitions) {
    BankLan lan;
    HostBank bank(*lan.host_agent, 1000);

    EXPECT_EQ(bank.join(kGroup, 5), 5);
    EXPECT_EQ(bank.members(kGroup), 5);
    lan.net.run_for(200 * sim::kMillisecond);
    EXPECT_EQ(lan.first_member, 1); // one agent join for five members

    EXPECT_EQ(bank.join(kGroup, 3), 3);
    lan.net.run_for(200 * sim::kMillisecond);
    EXPECT_EQ(lan.first_member, 1); // already a member: no new protocol work
    EXPECT_EQ(bank.total_members(), 8u);

    EXPECT_EQ(bank.leave(kGroup, 7), 7);
    lan.net.run_for(400 * sim::kMillisecond);
    EXPECT_EQ(lan.last_leave, 0); // one member still present, keeps reporting

    EXPECT_EQ(bank.leave(kGroup, 1), 1);
    EXPECT_EQ(bank.members(kGroup), 0);
    lan.net.run_for(400 * sim::kMillisecond);
    EXPECT_EQ(lan.last_leave, 1); // membership aged out after the last leave

    // Leaving an empty group is a no-op.
    EXPECT_EQ(bank.leave(kGroup, 1), 0);
}

TEST(HostBank, CapacityClampsPerGroupMembership) {
    BankLan lan;
    HostBank bank(*lan.host_agent, 10);
    EXPECT_EQ(bank.join(kGroup, 25), 10);
    EXPECT_EQ(bank.members(kGroup), 10);
    EXPECT_EQ(bank.join(kGroup), 0); // saturated
    EXPECT_EQ(bank.leave(kGroup, 4), 4);
    EXPECT_EQ(bank.join(kGroup, 9), 4); // back up to the cap
}

TEST(HostBank, RecordsJoinToDataLatency) {
    BankLan lan;
    HostBank bank(*lan.host_agent, 100);
    int callbacks = 0;
    bank.set_first_data_callback(
        [&](net::GroupAddress g, sim::Time latency) {
            ++callbacks;
            EXPECT_EQ(g, kGroup);
            EXPECT_GT(latency, 0);
        });

    lan.net.simulator().schedule_at(10 * sim::kMillisecond,
                                    [&] { bank.join(kGroup, 3); });
    // On a shared LAN the sender's data reaches the bank host directly.
    lan.sender->send_stream(kGroup, 3, 10 * sim::kMillisecond,
                            50 * sim::kMillisecond);
    lan.net.run_for(sim::kSecond);

    ASSERT_EQ(bank.join_to_data_seconds().size(), 1u);
    // Joined at 10 ms, first packet sent at 50 ms (+ LAN delay): the
    // latency is dominated by the 40 ms wait for the source.
    EXPECT_NEAR(bank.join_to_data_seconds()[0], 0.040, 0.005);
    EXPECT_EQ(callbacks, 1);
}

/// Two hosts with direct IGMP agents (no routing stack needed: churn only
/// exercises join/leave bookkeeping here).
struct ChurnWorld {
    topo::Network net;
    std::unique_ptr<igmp::HostAgent> agent_a;
    std::unique_ptr<igmp::HostAgent> agent_b;
    std::vector<std::unique_ptr<HostBank>> banks;
    std::unique_ptr<ChurnEngine> engine;

    explicit ChurnWorld(const ChurnConfig& cfg, int capacity = 1000) {
        auto& router = net.add_router("r");
        auto& lan_a = net.add_lan({&router});
        auto& lan_b = net.add_lan({&router});
        agent_a = std::make_unique<igmp::HostAgent>(net.add_host("a", lan_a));
        agent_b = std::make_unique<igmp::HostAgent>(net.add_host("b", lan_b));
        banks.push_back(std::make_unique<HostBank>(*agent_a, capacity));
        banks.push_back(std::make_unique<HostBank>(*agent_b, capacity));
        engine = std::make_unique<ChurnEngine>(
            net, std::vector<HostBank*>{banks[0].get(), banks[1].get()}, cfg);
        engine->start();
    }
};

TEST(ChurnEngine, SameSeedReproducesTheExactEventSequence) {
    ChurnConfig cfg;
    cfg.seed = 7;
    cfg.joins_per_sec = 500;
    cfg.session.mean = 200 * sim::kMillisecond;
    cfg.groups = 4;
    cfg.record_history = true;

    ChurnWorld a(cfg);
    ChurnWorld b(cfg);
    a.net.run_for(2 * sim::kSecond);
    b.net.run_for(2 * sim::kSecond);

    EXPECT_GT(a.engine->joins(), 500u);
    EXPECT_GT(a.engine->leaves(), 0u);
    EXPECT_EQ(a.engine->joins(), b.engine->joins());
    EXPECT_EQ(a.engine->leaves(), b.engine->leaves());
    ASSERT_EQ(a.engine->history().size(), b.engine->history().size());
    for (std::size_t i = 0; i < a.engine->history().size(); ++i) {
        const auto& ea = a.engine->history()[i];
        const auto& eb = b.engine->history()[i];
        EXPECT_EQ(ea.at, eb.at);
        EXPECT_EQ(ea.bank, eb.bank);
        EXPECT_EQ(ea.group_rank, eb.group_rank);
        EXPECT_EQ(ea.join, eb.join);
    }

    // A different seed must diverge.
    ChurnConfig other = cfg;
    other.seed = 8;
    ChurnWorld c(other);
    c.net.run_for(2 * sim::kSecond);
    EXPECT_NE(a.engine->joins(), c.engine->joins());
}

TEST(ChurnEngine, MembershipAccountingBalances) {
    ChurnConfig cfg;
    cfg.seed = 3;
    cfg.joins_per_sec = 300;
    cfg.session.mean = 100 * sim::kMillisecond;
    cfg.groups = 4;
    ChurnWorld w(cfg);
    w.net.run_for(3 * sim::kSecond);
    const auto& e = *w.engine;
    EXPECT_EQ(e.membership(), e.joins() - e.leaves());
    EXPECT_GE(e.membership_peak(), e.membership());
    std::size_t bank_total = 0;
    for (const auto& bank : w.banks) bank_total += bank->total_members();
    EXPECT_EQ(bank_total, e.membership());
}

TEST(ChurnEngine, FlashCrowdLandsInWindowAndSaturatesSmallBanks) {
    ChurnConfig cfg;
    cfg.seed = 5;
    cfg.joins_per_sec = 0; // flash only
    cfg.groups = 4;
    cfg.record_history = true;
    workload::FlashCrowd crowd;
    crowd.at = 500 * sim::kMillisecond;
    crowd.joins = 50;
    crowd.window = 100 * sim::kMillisecond;
    crowd.hold = {SessionDuration::Kind::kFixed, 10 * sim::kSecond, 1.5};
    crowd.group_rank = 2;
    cfg.flash_crowds.push_back(crowd);

    ChurnWorld w(cfg, /*capacity=*/10);
    w.net.run_for(2 * sim::kSecond);
    const auto& e = *w.engine;
    // Two banks x capacity 10 on one group: 20 admitted, the rest refused.
    EXPECT_EQ(e.joins(), 20u);
    EXPECT_EQ(e.saturated_joins(), 30u);
    EXPECT_EQ(e.membership(), 20u);
    for (const auto& entry : e.history()) {
        EXPECT_TRUE(entry.join);
        EXPECT_EQ(entry.group_rank, 2);
        EXPECT_GE(entry.at, crowd.at);
        EXPECT_LE(entry.at, crowd.at + crowd.window);
    }
}

TEST(TransitStub, GraphShapeConnectivityAndDeterminism) {
    graph::TransitStubOptions opts;
    opts.transit_domains = 2;
    opts.transit_nodes = 3;
    opts.stub_domains = 2;
    opts.stub_nodes = 4;

    std::mt19937 rng(11);
    const graph::TransitStubGraph g = graph::transit_stub_graph(opts, rng);

    const int transit_total = opts.transit_domains * opts.transit_nodes;
    const int stub_domains = transit_total * opts.stub_domains;
    EXPECT_EQ(static_cast<int>(g.transit_nodes.size()), transit_total);
    EXPECT_EQ(g.stub_domain_count(), stub_domains);
    EXPECT_EQ(static_cast<int>(g.stub_nodes.size()), stub_domains * opts.stub_nodes);
    EXPECT_EQ(g.node_count(),
              transit_total + stub_domains * opts.stub_nodes);
    EXPECT_TRUE(g.graph.connected());

    // Hierarchy metadata is consistent: every stub domain's sponsor is a
    // transit node, and the is_transit flags partition the node set.
    for (int sponsor : g.stub_attachment) {
        EXPECT_TRUE(g.is_transit[static_cast<std::size_t>(sponsor)]);
    }
    for (int id : g.transit_nodes) EXPECT_TRUE(g.is_transit[static_cast<std::size_t>(id)]);
    for (int id : g.stub_nodes) EXPECT_FALSE(g.is_transit[static_cast<std::size_t>(id)]);

    // Same seed, same graph — edge for edge.
    std::mt19937 rng2(11);
    const graph::TransitStubGraph h = graph::transit_stub_graph(opts, rng2);
    ASSERT_EQ(g.node_count(), h.node_count());
    for (int u = 0; u < g.node_count(); ++u) {
        const auto& gu = g.graph.neighbors(u);
        const auto& hu = h.graph.neighbors(u);
        ASSERT_EQ(gu.size(), hu.size());
        for (std::size_t i = 0; i < gu.size(); ++i) {
            EXPECT_EQ(gu[i].to, hu[i].to);
            EXPECT_EQ(gu[i].weight, hu[i].weight);
        }
    }

    graph::TransitStubOptions bad;
    bad.transit_nodes = 0;
    EXPECT_THROW(graph::transit_stub_graph(bad, rng), std::invalid_argument);
}

TEST(TransitStub, MaterializesIntoRoutableNetwork) {
    graph::TransitStubOptions opts;
    opts.transit_domains = 2;
    opts.transit_nodes = 2;
    opts.stub_domains = 1;
    opts.stub_nodes = 2;
    workload::MaterializeOptions mat;
    mat.senders = 2;

    topo::Network net;
    std::mt19937 rng(3);
    const workload::TransitStubNetwork ts =
        workload::build_transit_stub(net, opts, rng, mat);

    EXPECT_EQ(static_cast<int>(ts.routers.size()), ts.graph.node_count());
    EXPECT_EQ(ts.lans.size(), ts.graph.stub_nodes.size());
    EXPECT_EQ(ts.bank_hosts.size(), ts.lans.size());
    EXPECT_EQ(static_cast<int>(ts.senders.size()), mat.senders);
    EXPECT_EQ(ts.routers[0]->name(), "t0-0");
    EXPECT_EQ(ts.bank_hosts[0]->name(), "bank0");

    // Unicast routing must reach every router from every stub: the
    // materialized links mirror the (connected) graph.
    unicast::OracleRouting routing(net);
    for (topo::Router* r : ts.routers) {
        if (r == ts.routers[0]) continue;
        EXPECT_TRUE(routing.distance(*ts.routers[0], *r).has_value())
            << r->name();
    }

    // Transit/stub router partitions line up with the graph metadata.
    EXPECT_EQ(ts.transit_routers().size(), ts.graph.transit_nodes.size());
    EXPECT_EQ(ts.stub_routers().size(), ts.graph.stub_nodes.size());
}

} // namespace
} // namespace pimlib::test
