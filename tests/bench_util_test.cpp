// Guards on the bench helpers that every figure-reproduction harness and
// the CI overhead gate share: percentile() must be total (no UB indexing on
// empty samples or out-of-range quantiles) and distribution_json() must emit
// parseable JSON even for an empty sample.
#include <gtest/gtest.h>

#include <cmath>

#include "bench_util.hpp"

namespace pimlib {
namespace {

TEST(BenchPercentile, EmptySampleIsNaN) {
    EXPECT_TRUE(std::isnan(bench::percentile({}, 0.5)));
    EXPECT_TRUE(std::isnan(bench::percentile({}, 0.0)));
}

TEST(BenchPercentile, SingleSampleReturnsTheValue) {
    EXPECT_DOUBLE_EQ(bench::percentile({42.0}, 0.0), 42.0);
    EXPECT_DOUBLE_EQ(bench::percentile({42.0}, 0.5), 42.0);
    EXPECT_DOUBLE_EQ(bench::percentile({42.0}, 1.0), 42.0);
}

TEST(BenchPercentile, QuantileIsClampedToUnitRange) {
    const std::vector<double> v{3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(bench::percentile(v, -0.5), 1.0);
    EXPECT_DOUBLE_EQ(bench::percentile(v, 1.5), 3.0);  // no past-the-end read
    EXPECT_DOUBLE_EQ(bench::percentile(v, 1e9), 3.0);
}

TEST(BenchPercentile, NearestRankOnSortedCopy) {
    const std::vector<double> v{9.0, 1.0, 5.0, 7.0, 3.0}; // unsorted input
    EXPECT_DOUBLE_EQ(bench::percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(bench::percentile(v, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(bench::percentile(v, 1.0), 9.0);
}

TEST(BenchDistributionJson, EmptySampleStaysValidJson) {
    const std::string json = bench::distribution_json(std::vector<double>{});
    EXPECT_NE(json.find("\"count\":0"), std::string::npos) << json;
    EXPECT_EQ(json.find("nan"), std::string::npos) << json;
    EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

TEST(BenchDistributionJson, PopulatedSampleCarriesPercentiles) {
    const std::string json =
        bench::distribution_json(std::vector<double>{1.0, 2.0, 3.0, 4.0});
    EXPECT_NE(json.find("\"count\":4"), std::string::npos) << json;
    EXPECT_NE(json.find("\"p50\":2.000000"), std::string::npos) << json;
    // Index truncation: 0.99 * (4 - 1) = 2.97 -> rank 2 -> the value 3.
    EXPECT_NE(json.find("\"p99\":3.000000"), std::string::npos) << json;
}

} // namespace
} // namespace pimlib
