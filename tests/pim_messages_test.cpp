// PIM v1 message codec tests: round trips, flag encoding, header
// validation, truncation robustness, and random fuzz of the decoders.
#include <gtest/gtest.h>

#include <random>

#include "igmp/messages.hpp"
#include "pim/messages.hpp"

namespace pimlib::pim {
namespace {

const net::Ipv4Address kGroupAddr(224, 1, 1, 1);
const net::Ipv4Address kRp(192, 168, 0, 3);
const net::Ipv4Address kSrc(10, 0, 1, 3);

TEST(PimMessages, PeekCode) {
    Query q{1000};
    EXPECT_EQ(peek_code(q.encode()), Code::kQuery);
    JoinPrune jp;
    jp.group = kGroupAddr;
    EXPECT_EQ(peek_code(jp.encode()), Code::kJoinPrune);
    // Wrong IGMP type byte.
    std::vector<std::uint8_t> bogus{0x12, 0x02};
    EXPECT_FALSE(peek_code(bogus).has_value());
    // Unknown PIM code.
    std::vector<std::uint8_t> unknown{igmp::kTypePim, 0x77};
    EXPECT_FALSE(peek_code(unknown).has_value());
    EXPECT_FALSE(peek_code(std::vector<std::uint8_t>{igmp::kTypePim}).has_value());
}

TEST(PimMessages, QueryRoundTrip) {
    const Query q{123456};
    auto decoded = Query::decode(q.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->holdtime_ms, 123456u);
}

TEST(PimMessages, RegisterRoundTripWithPayload) {
    Register reg;
    reg.group = kGroupAddr;
    reg.inner_src = kSrc;
    reg.inner_ttl = 17;
    reg.inner_seq = 0xABCDEF0123456789ull;
    reg.inner_payload = {1, 2, 3, 4, 5};
    auto decoded = Register::decode(reg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->group, reg.group);
    EXPECT_EQ(decoded->inner_src, reg.inner_src);
    EXPECT_EQ(decoded->inner_ttl, reg.inner_ttl);
    EXPECT_EQ(decoded->inner_seq, reg.inner_seq);
    EXPECT_EQ(decoded->inner_payload, reg.inner_payload);
}

TEST(PimMessages, RegisterEmptyPayload) {
    Register reg;
    reg.group = kGroupAddr;
    reg.inner_src = kSrc;
    auto decoded = Register::decode(reg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->inner_payload.empty());
}

TEST(PimMessages, JoinPruneRoundTripWithFlags) {
    JoinPrune msg;
    msg.upstream_neighbor = net::Ipv4Address(10, 0, 0, 2);
    msg.holdtime_ms = 180000;
    msg.group = kGroupAddr;
    msg.joins = {
        AddressEntry{kRp, EntryFlags{true, true}},   // (*,G) join: WC|RP
        AddressEntry{kSrc, EntryFlags{false, false}}, // (S,G) SPT join
    };
    msg.prunes = {
        AddressEntry{kSrc, EntryFlags{false, true}}, // RP-bit prune (§3.3)
    };
    auto decoded = JoinPrune::decode(msg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->upstream_neighbor, msg.upstream_neighbor);
    EXPECT_EQ(decoded->holdtime_ms, msg.holdtime_ms);
    EXPECT_EQ(decoded->group, msg.group);
    EXPECT_EQ(decoded->joins, msg.joins);
    EXPECT_EQ(decoded->prunes, msg.prunes);
}

TEST(PimMessages, JoinPruneEmptyListsValid) {
    JoinPrune msg;
    msg.group = kGroupAddr;
    auto decoded = JoinPrune::decode(msg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->joins.empty());
    EXPECT_TRUE(decoded->prunes.empty());
}

TEST(PimMessages, JoinPruneBundleRoundTrip) {
    JoinPruneBundle msg;
    msg.upstream_neighbor = net::Ipv4Address(10, 0, 0, 2);
    msg.holdtime_ms = 180000;
    msg.groups = {
        JoinPruneBundle::GroupRecord{
            kGroupAddr,
            {AddressEntry{kRp, EntryFlags{true, true}},
             AddressEntry{kSrc, EntryFlags{false, false}}},
            {AddressEntry{kSrc, EntryFlags{false, true}}}},
        JoinPruneBundle::GroupRecord{net::Ipv4Address(224, 1, 1, 2),
                                     {AddressEntry{kRp, EntryFlags{true, true}}},
                                     {}},
        // A record with empty lists is legal (e.g. a group whose joins are
        // all suppressed this tick but whose prunes ride along — or vice
        // versa at the encoder's discretion).
        JoinPruneBundle::GroupRecord{net::Ipv4Address(224, 1, 1, 3), {}, {}},
    };
    EXPECT_EQ(peek_code(msg.encode()), Code::kJoinPruneBundle);
    auto decoded = JoinPruneBundle::decode(msg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->upstream_neighbor, msg.upstream_neighbor);
    EXPECT_EQ(decoded->holdtime_ms, msg.holdtime_ms);
    EXPECT_EQ(decoded->groups, msg.groups);
}

TEST(PimMessages, JoinPruneBundleTruncationAndTrailingGarbageRejected) {
    JoinPruneBundle msg;
    msg.upstream_neighbor = net::Ipv4Address(10, 0, 0, 2);
    msg.holdtime_ms = 90000;
    msg.groups = {JoinPruneBundle::GroupRecord{
                      kGroupAddr,
                      {AddressEntry{kRp, EntryFlags{true, true}}},
                      {AddressEntry{kSrc, EntryFlags{false, true}}}},
                  JoinPruneBundle::GroupRecord{
                      net::Ipv4Address(224, 1, 1, 2),
                      {AddressEntry{kSrc, EntryFlags{false, false}}},
                      {}}};
    const auto bytes = msg.encode();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(JoinPruneBundle::decode({bytes.data(), len}).has_value())
            << "decoded from truncated length " << len;
    }
    auto extended = bytes;
    extended.push_back(0);
    EXPECT_FALSE(JoinPruneBundle::decode(extended).has_value());
    // Wrong code rejected.
    EXPECT_FALSE(JoinPruneBundle::decode(Query{5}.encode()).has_value());
    // Inflated group count without the records rejected.
    auto inflated = bytes;
    inflated[11] = 0xFF; // group-count u16 low byte (header 2 + addr 4 + holdtime 4)
    EXPECT_FALSE(JoinPruneBundle::decode(inflated).has_value());
}

TEST(PimMessages, RpReachabilityRoundTrip) {
    const RpReachability msg{kGroupAddr, kRp, 90000};
    auto decoded = RpReachability::decode(msg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->group, msg.group);
    EXPECT_EQ(decoded->rp, msg.rp);
    EXPECT_EQ(decoded->holdtime_ms, msg.holdtime_ms);
}

TEST(PimMessages, DecoderRejectsWrongCode) {
    Query q{5};
    EXPECT_FALSE(JoinPrune::decode(q.encode()).has_value());
    EXPECT_FALSE(Register::decode(q.encode()).has_value());
    EXPECT_FALSE(RpReachability::decode(q.encode()).has_value());
}

TEST(PimMessages, EveryTruncationRejected) {
    JoinPrune msg;
    msg.upstream_neighbor = net::Ipv4Address(10, 0, 0, 2);
    msg.group = kGroupAddr;
    msg.joins = {AddressEntry{kRp, EntryFlags{true, true}}};
    msg.prunes = {AddressEntry{kSrc, EntryFlags{false, true}}};
    const auto bytes = msg.encode();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(JoinPrune::decode({bytes.data(), len}).has_value())
            << "decoded from truncated length " << len;
    }
    // Trailing garbage also rejected.
    auto extended = bytes;
    extended.push_back(0);
    EXPECT_FALSE(JoinPrune::decode(extended).has_value());
}

// Every strict prefix of a valid encoding must decode to nullopt, for all
// four message types — a decoder that "succeeds" on a truncated buffer is
// reading uninitialized state. Trailing garbage must be rejected too
// (every format carries explicit lengths, so the end is knowable).
TEST(PimMessages, QueryTruncationAndTrailingGarbageRejected) {
    const auto bytes = Query{123456}.encode();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(Query::decode({bytes.data(), len}).has_value())
            << "decoded from truncated length " << len;
    }
    auto extended = bytes;
    extended.push_back(0);
    EXPECT_FALSE(Query::decode(extended).has_value());
}

TEST(PimMessages, RegisterTruncationAndTrailingGarbageRejected) {
    Register reg;
    reg.group = kGroupAddr;
    reg.inner_src = kSrc;
    reg.inner_ttl = 31;
    reg.inner_seq = 42;
    reg.inner_payload = {9, 8, 7};
    const auto bytes = reg.encode();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(Register::decode({bytes.data(), len}).has_value())
            << "decoded from truncated length " << len;
    }
    auto extended = bytes;
    extended.push_back(0);
    EXPECT_FALSE(Register::decode(extended).has_value());
}

TEST(PimMessages, RpReachabilityTruncationAndTrailingGarbageRejected) {
    const auto bytes = RpReachability{kGroupAddr, kRp, 90000}.encode();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(RpReachability::decode({bytes.data(), len}).has_value())
            << "decoded from truncated length " << len;
    }
    auto extended = bytes;
    extended.push_back(0);
    EXPECT_FALSE(RpReachability::decode(extended).has_value());
}

TEST(PimMessages, JoinPruneCountFieldBeyondBufferRejected) {
    JoinPrune msg;
    msg.group = kGroupAddr;
    msg.joins = {AddressEntry{kRp, EntryFlags{true, true}}};
    auto bytes = msg.encode();
    // Inflate the join count (bytes 14..15, big-endian u16 after header +
    // upstream + holdtime + group) without providing the entries.
    bytes[15] = 0xFF;
    EXPECT_FALSE(JoinPrune::decode(bytes).has_value());
}

// Randomized property: encode() of arbitrary field values always decodes
// back to the same message, for all four types.
TEST(PimMessages, RandomizedEncodeDecodeRoundTrip) {
    std::mt19937 rng(7);
    std::uniform_int_distribution<std::uint32_t> u32(0, 0xFFFFFFFFu);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<int> small(0, 5);
    auto rand_addr = [&] {
        return net::Ipv4Address(static_cast<std::uint8_t>(byte(rng)),
                                static_cast<std::uint8_t>(byte(rng)),
                                static_cast<std::uint8_t>(byte(rng)),
                                static_cast<std::uint8_t>(byte(rng)));
    };
    auto rand_entries = [&] {
        std::vector<AddressEntry> out;
        for (int i = small(rng); i > 0; --i) {
            out.push_back(AddressEntry{
                rand_addr(), EntryFlags{byte(rng) % 2 == 0, byte(rng) % 2 == 0}});
        }
        return out;
    };
    for (int trial = 0; trial < 500; ++trial) {
        const Query q{u32(rng)};
        auto dq = Query::decode(q.encode());
        ASSERT_TRUE(dq.has_value());
        EXPECT_EQ(dq->holdtime_ms, q.holdtime_ms);

        Register reg;
        reg.group = rand_addr();
        reg.inner_src = rand_addr();
        reg.inner_ttl = static_cast<std::uint8_t>(byte(rng));
        reg.inner_seq = (static_cast<std::uint64_t>(u32(rng)) << 32) | u32(rng);
        reg.inner_payload.resize(static_cast<std::size_t>(small(rng)) * 7);
        for (auto& b : reg.inner_payload) b = static_cast<std::uint8_t>(byte(rng));
        auto dr = Register::decode(reg.encode());
        ASSERT_TRUE(dr.has_value());
        EXPECT_EQ(dr->group, reg.group);
        EXPECT_EQ(dr->inner_src, reg.inner_src);
        EXPECT_EQ(dr->inner_ttl, reg.inner_ttl);
        EXPECT_EQ(dr->inner_seq, reg.inner_seq);
        EXPECT_EQ(dr->inner_payload, reg.inner_payload);

        JoinPrune jp;
        jp.upstream_neighbor = rand_addr();
        jp.holdtime_ms = u32(rng);
        jp.group = rand_addr();
        jp.joins = rand_entries();
        jp.prunes = rand_entries();
        auto dj = JoinPrune::decode(jp.encode());
        ASSERT_TRUE(dj.has_value());
        EXPECT_EQ(dj->upstream_neighbor, jp.upstream_neighbor);
        EXPECT_EQ(dj->holdtime_ms, jp.holdtime_ms);
        EXPECT_EQ(dj->group, jp.group);
        EXPECT_EQ(dj->joins, jp.joins);
        EXPECT_EQ(dj->prunes, jp.prunes);

        const RpReachability rr{rand_addr(), rand_addr(), u32(rng)};
        auto drr = RpReachability::decode(rr.encode());
        ASSERT_TRUE(drr.has_value());
        EXPECT_EQ(drr->group, rr.group);
        EXPECT_EQ(drr->rp, rr.rp);
        EXPECT_EQ(drr->holdtime_ms, rr.holdtime_ms);

        JoinPruneBundle bundle;
        bundle.upstream_neighbor = rand_addr();
        bundle.holdtime_ms = u32(rng);
        for (int g = small(rng); g > 0; --g) {
            bundle.groups.push_back(
                JoinPruneBundle::GroupRecord{rand_addr(), rand_entries(), rand_entries()});
        }
        auto db = JoinPruneBundle::decode(bundle.encode());
        ASSERT_TRUE(db.has_value());
        EXPECT_EQ(db->upstream_neighbor, bundle.upstream_neighbor);
        EXPECT_EQ(db->holdtime_ms, bundle.holdtime_ms);
        EXPECT_EQ(db->groups, bundle.groups);
    }
}

TEST(PimMessages, AssertRoundTrip) {
    Assert msg;
    msg.group = kGroupAddr;
    msg.source = kSrc;
    msg.wc_bit = true;
    msg.metric = 0xDEADBEEF;
    EXPECT_EQ(peek_code(msg.encode()), Code::kAssert);
    auto decoded = Assert::decode(msg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->group, msg.group);
    EXPECT_EQ(decoded->source, msg.source);
    EXPECT_EQ(decoded->wc_bit, msg.wc_bit);
    EXPECT_EQ(decoded->metric, msg.metric);
    // The wc bit distinguishes an SPT assert from a shared-tree assert —
    // both polarities must survive the trip.
    msg.wc_bit = false;
    decoded = Assert::decode(msg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_FALSE(decoded->wc_bit);
}

TEST(PimMessages, AssertTruncationAndTrailingGarbageRejected) {
    Assert msg;
    msg.group = kGroupAddr;
    msg.source = kSrc;
    msg.metric = 3;
    const auto bytes = msg.encode();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(Assert::decode({bytes.data(), len}).has_value())
            << "decoded from truncated length " << len;
    }
    auto extended = bytes;
    extended.push_back(0);
    EXPECT_FALSE(Assert::decode(extended).has_value());
    EXPECT_FALSE(Assert::decode(Query{5}.encode()).has_value());
}

TEST(PimMessages, BootstrapRoundTrip) {
    Bootstrap msg;
    msg.bsr = kRp;
    msg.bsr_priority = 20;
    msg.seq = 0x01020304;
    msg.rps = {
        Bootstrap::RpEntry{net::Prefix{net::Ipv4Address(224, 0, 0, 0), 4},
                           net::Ipv4Address(192, 168, 0, 7), 20, 75000},
        Bootstrap::RpEntry{net::Prefix{kGroupAddr, 32},
                           net::Ipv4Address(192, 168, 0, 9), 0, 1},
    };
    EXPECT_EQ(peek_code(msg.encode()), Code::kBootstrap);
    auto decoded = Bootstrap::decode(msg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->bsr, msg.bsr);
    EXPECT_EQ(decoded->bsr_priority, msg.bsr_priority);
    EXPECT_EQ(decoded->seq, msg.seq);
    EXPECT_EQ(decoded->rps, msg.rps);
}

TEST(PimMessages, BootstrapEmptyRpSetValid) {
    // A freshly elected BSR floods before any candidate advertises: the
    // empty set must encode and decode (it still carries the election).
    Bootstrap msg;
    msg.bsr = kRp;
    msg.seq = 1;
    auto decoded = Bootstrap::decode(msg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->rps.empty());
}

TEST(PimMessages, BootstrapTruncationAndTrailingGarbageRejected) {
    Bootstrap msg;
    msg.bsr = kRp;
    msg.bsr_priority = 9;
    msg.seq = 77;
    msg.rps = {Bootstrap::RpEntry{net::Prefix{net::Ipv4Address(224, 0, 0, 0), 4},
                                  net::Ipv4Address(192, 168, 0, 7), 20, 75000}};
    const auto bytes = msg.encode();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(Bootstrap::decode({bytes.data(), len}).has_value())
            << "decoded from truncated length " << len;
    }
    auto extended = bytes;
    extended.push_back(0);
    EXPECT_FALSE(Bootstrap::decode(extended).has_value());
    EXPECT_FALSE(Bootstrap::decode(Query{5}.encode()).has_value());
}

TEST(PimMessages, CandidateRpAdvertisementRoundTrip) {
    CandidateRpAdvertisement msg;
    msg.rp = net::Ipv4Address(192, 168, 0, 7);
    msg.priority = 20;
    msg.holdtime_ms = 75000;
    msg.ranges = {net::Prefix{net::Ipv4Address(224, 0, 0, 0), 4},
                  net::Prefix{kGroupAddr, 32}};
    EXPECT_EQ(peek_code(msg.encode()), Code::kCandidateRpAdvertisement);
    auto decoded = CandidateRpAdvertisement::decode(msg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->rp, msg.rp);
    EXPECT_EQ(decoded->priority, msg.priority);
    EXPECT_EQ(decoded->holdtime_ms, msg.holdtime_ms);
    EXPECT_EQ(decoded->ranges, msg.ranges);
}

TEST(PimMessages, CandidateRpAdvertisementTruncationAndTrailingGarbageRejected) {
    CandidateRpAdvertisement msg;
    msg.rp = net::Ipv4Address(192, 168, 0, 7);
    msg.holdtime_ms = 75000;
    msg.ranges = {net::Prefix{net::Ipv4Address(224, 0, 0, 0), 4}};
    const auto bytes = msg.encode();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(
            CandidateRpAdvertisement::decode({bytes.data(), len}).has_value())
            << "decoded from truncated length " << len;
    }
    auto extended = bytes;
    extended.push_back(0);
    EXPECT_FALSE(CandidateRpAdvertisement::decode(extended).has_value());
    EXPECT_FALSE(
        CandidateRpAdvertisement::decode(Query{5}.encode()).has_value());
}

// Randomized property for the bootstrap-era codecs, mirroring the
// RandomizedEncodeDecodeRoundTrip coverage of the original four.
TEST(PimMessages, RandomizedBootstrapEraRoundTrip) {
    std::mt19937 rng(11);
    std::uniform_int_distribution<std::uint32_t> u32(0, 0xFFFFFFFFu);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<int> small(0, 5);
    std::uniform_int_distribution<int> masklen(0, 32);
    auto rand_addr = [&] {
        return net::Ipv4Address(static_cast<std::uint8_t>(byte(rng)),
                                static_cast<std::uint8_t>(byte(rng)),
                                static_cast<std::uint8_t>(byte(rng)),
                                static_cast<std::uint8_t>(byte(rng)));
    };
    auto rand_prefix = [&] { return net::Prefix{rand_addr(), masklen(rng)}; };
    for (int trial = 0; trial < 500; ++trial) {
        Assert a;
        a.group = rand_addr();
        a.source = rand_addr();
        a.wc_bit = byte(rng) % 2 == 0;
        a.metric = u32(rng);
        auto da = Assert::decode(a.encode());
        ASSERT_TRUE(da.has_value());
        EXPECT_EQ(da->group, a.group);
        EXPECT_EQ(da->source, a.source);
        EXPECT_EQ(da->wc_bit, a.wc_bit);
        EXPECT_EQ(da->metric, a.metric);

        Bootstrap b;
        b.bsr = rand_addr();
        b.bsr_priority = static_cast<std::uint8_t>(byte(rng));
        b.seq = u32(rng);
        for (int i = small(rng); i > 0; --i) {
            b.rps.push_back(Bootstrap::RpEntry{
                rand_prefix(), rand_addr(),
                static_cast<std::uint8_t>(byte(rng)), u32(rng)});
        }
        auto db = Bootstrap::decode(b.encode());
        ASSERT_TRUE(db.has_value());
        EXPECT_EQ(db->bsr, b.bsr);
        EXPECT_EQ(db->bsr_priority, b.bsr_priority);
        EXPECT_EQ(db->seq, b.seq);
        EXPECT_EQ(db->rps, b.rps);

        CandidateRpAdvertisement c;
        c.rp = rand_addr();
        c.priority = static_cast<std::uint8_t>(byte(rng));
        c.holdtime_ms = u32(rng);
        for (int i = small(rng); i > 0; --i) c.ranges.push_back(rand_prefix());
        auto dc = CandidateRpAdvertisement::decode(c.encode());
        ASSERT_TRUE(dc.has_value());
        EXPECT_EQ(dc->rp, c.rp);
        EXPECT_EQ(dc->priority, c.priority);
        EXPECT_EQ(dc->holdtime_ms, c.holdtime_ms);
        EXPECT_EQ(dc->ranges, c.ranges);
    }
}

TEST(PimMessages, FuzzRandomBytesNeverCrash) {
    std::mt19937 rng(2024);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<int> len(0, 64);
    for (int trial = 0; trial < 5000; ++trial) {
        std::vector<std::uint8_t> bytes(static_cast<std::size_t>(len(rng)));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(byte(rng));
        // Make a fair fraction look like PIM so decoders get past the header.
        if (trial % 2 == 0 && bytes.size() >= 2) {
            bytes[0] = igmp::kTypePim;
            bytes[1] = static_cast<std::uint8_t>(trial % 8);
        }
        (void)Query::decode(bytes);
        (void)Register::decode(bytes);
        (void)JoinPrune::decode(bytes);
        (void)RpReachability::decode(bytes);
        (void)JoinPruneBundle::decode(bytes);
        (void)Assert::decode(bytes);
        (void)Bootstrap::decode(bytes);
        (void)CandidateRpAdvertisement::decode(bytes);
    }
    SUCCEED();
}

} // namespace
} // namespace pimlib::pim
