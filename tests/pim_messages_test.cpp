// PIM v1 message codec tests: round trips, flag encoding, header
// validation, truncation robustness, and random fuzz of the decoders.
#include <gtest/gtest.h>

#include <random>

#include "igmp/messages.hpp"
#include "pim/messages.hpp"

namespace pimlib::pim {
namespace {

const net::Ipv4Address kGroupAddr(224, 1, 1, 1);
const net::Ipv4Address kRp(192, 168, 0, 3);
const net::Ipv4Address kSrc(10, 0, 1, 3);

TEST(PimMessages, PeekCode) {
    Query q{1000};
    EXPECT_EQ(peek_code(q.encode()), Code::kQuery);
    JoinPrune jp;
    jp.group = kGroupAddr;
    EXPECT_EQ(peek_code(jp.encode()), Code::kJoinPrune);
    // Wrong IGMP type byte.
    std::vector<std::uint8_t> bogus{0x12, 0x02};
    EXPECT_FALSE(peek_code(bogus).has_value());
    // Unknown PIM code.
    std::vector<std::uint8_t> unknown{igmp::kTypePim, 0x77};
    EXPECT_FALSE(peek_code(unknown).has_value());
    EXPECT_FALSE(peek_code(std::vector<std::uint8_t>{igmp::kTypePim}).has_value());
}

TEST(PimMessages, QueryRoundTrip) {
    const Query q{123456};
    auto decoded = Query::decode(q.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->holdtime_ms, 123456u);
}

TEST(PimMessages, RegisterRoundTripWithPayload) {
    Register reg;
    reg.group = kGroupAddr;
    reg.inner_src = kSrc;
    reg.inner_ttl = 17;
    reg.inner_seq = 0xABCDEF0123456789ull;
    reg.inner_payload = {1, 2, 3, 4, 5};
    auto decoded = Register::decode(reg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->group, reg.group);
    EXPECT_EQ(decoded->inner_src, reg.inner_src);
    EXPECT_EQ(decoded->inner_ttl, reg.inner_ttl);
    EXPECT_EQ(decoded->inner_seq, reg.inner_seq);
    EXPECT_EQ(decoded->inner_payload, reg.inner_payload);
}

TEST(PimMessages, RegisterEmptyPayload) {
    Register reg;
    reg.group = kGroupAddr;
    reg.inner_src = kSrc;
    auto decoded = Register::decode(reg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->inner_payload.empty());
}

TEST(PimMessages, JoinPruneRoundTripWithFlags) {
    JoinPrune msg;
    msg.upstream_neighbor = net::Ipv4Address(10, 0, 0, 2);
    msg.holdtime_ms = 180000;
    msg.group = kGroupAddr;
    msg.joins = {
        AddressEntry{kRp, EntryFlags{true, true}},   // (*,G) join: WC|RP
        AddressEntry{kSrc, EntryFlags{false, false}}, // (S,G) SPT join
    };
    msg.prunes = {
        AddressEntry{kSrc, EntryFlags{false, true}}, // RP-bit prune (§3.3)
    };
    auto decoded = JoinPrune::decode(msg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->upstream_neighbor, msg.upstream_neighbor);
    EXPECT_EQ(decoded->holdtime_ms, msg.holdtime_ms);
    EXPECT_EQ(decoded->group, msg.group);
    EXPECT_EQ(decoded->joins, msg.joins);
    EXPECT_EQ(decoded->prunes, msg.prunes);
}

TEST(PimMessages, JoinPruneEmptyListsValid) {
    JoinPrune msg;
    msg.group = kGroupAddr;
    auto decoded = JoinPrune::decode(msg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->joins.empty());
    EXPECT_TRUE(decoded->prunes.empty());
}

TEST(PimMessages, RpReachabilityRoundTrip) {
    const RpReachability msg{kGroupAddr, kRp, 90000};
    auto decoded = RpReachability::decode(msg.encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->group, msg.group);
    EXPECT_EQ(decoded->rp, msg.rp);
    EXPECT_EQ(decoded->holdtime_ms, msg.holdtime_ms);
}

TEST(PimMessages, DecoderRejectsWrongCode) {
    Query q{5};
    EXPECT_FALSE(JoinPrune::decode(q.encode()).has_value());
    EXPECT_FALSE(Register::decode(q.encode()).has_value());
    EXPECT_FALSE(RpReachability::decode(q.encode()).has_value());
}

TEST(PimMessages, EveryTruncationRejected) {
    JoinPrune msg;
    msg.upstream_neighbor = net::Ipv4Address(10, 0, 0, 2);
    msg.group = kGroupAddr;
    msg.joins = {AddressEntry{kRp, EntryFlags{true, true}}};
    msg.prunes = {AddressEntry{kSrc, EntryFlags{false, true}}};
    const auto bytes = msg.encode();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_FALSE(JoinPrune::decode({bytes.data(), len}).has_value())
            << "decoded from truncated length " << len;
    }
    // Trailing garbage also rejected.
    auto extended = bytes;
    extended.push_back(0);
    EXPECT_FALSE(JoinPrune::decode(extended).has_value());
}

TEST(PimMessages, FuzzRandomBytesNeverCrash) {
    std::mt19937 rng(2024);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<int> len(0, 64);
    for (int trial = 0; trial < 5000; ++trial) {
        std::vector<std::uint8_t> bytes(static_cast<std::size_t>(len(rng)));
        for (auto& b : bytes) b = static_cast<std::uint8_t>(byte(rng));
        // Make a fair fraction look like PIM so decoders get past the header.
        if (trial % 2 == 0 && bytes.size() >= 2) {
            bytes[0] = igmp::kTypePim;
            bytes[1] = static_cast<std::uint8_t>(trial % 4);
        }
        (void)Query::decode(bytes);
        (void)Register::decode(bytes);
        (void)JoinPrune::decode(bytes);
        (void)RpReachability::decode(bytes);
    }
    SUCCEED();
}

} // namespace
} // namespace pimlib::pim
