// Broad coverage batch: behaviors not exercised elsewhere — querier
// re-election, DV poisoned reverse, LS LSA aging, CBT resilience corners,
// mean-delay tree metrics, message-sequence fidelity via the tracer, and
// summary statistics edge cases.
#include <gtest/gtest.h>

#include "graph/center_tree.hpp"
#include "graph/random_graph.hpp"
#include "test_util.hpp"
#include "topo/segment.hpp"
#include "trace/tracer.hpp"
#include "unicast/distance_vector.hpp"
#include "unicast/link_state.hpp"

namespace pimlib::test {
namespace {

TEST(StatsSummary, EdgeCases) {
    EXPECT_EQ(stats::summarize({}).count, 0u);
    auto one = stats::summarize({5.0});
    EXPECT_DOUBLE_EQ(one.mean, 5.0);
    EXPECT_DOUBLE_EQ(one.stddev, 0.0);
    EXPECT_DOUBLE_EQ(one.min, 5.0);
    EXPECT_DOUBLE_EQ(one.max, 5.0);
    auto two = stats::summarize({1.0, 3.0});
    EXPECT_DOUBLE_EQ(two.mean, 2.0);
    EXPECT_NEAR(two.stddev, std::sqrt(2.0), 1e-12);
}

TEST(CenterTreeMeanDelay, MatchesHandComputation) {
    // Path 0 -1- 1 -2- 2; members {0, 2}.
    graph::Graph g(3);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 2);
    graph::AllPairs ap(g);
    const std::vector<int> members{0, 2};
    // Via core 1: every ordered pair costs d(u,1)+d(1,v); pairs (0,2) and
    // (2,0) both cost 3 -> mean 3. spt mean = 3.
    EXPECT_DOUBLE_EQ(graph::core_tree_mean_delay(ap, members, 1), 3.0);
    EXPECT_DOUBLE_EQ(graph::spt_mean_delay(ap, members), 3.0);
    // Via core 0: pairs cost d(u,0)+d(0,v) = 3 each (one leg is zero).
    EXPECT_DOUBLE_EQ(graph::core_tree_mean_delay(ap, members, 0), 3.0);
}

TEST(CenterTreeMeanDelay, OptimalMeanCoreNeverWorseThanArbitrary) {
    std::mt19937 rng(31);
    for (int trial = 0; trial < 20; ++trial) {
        graph::Graph g = graph::random_connected_graph({.nodes = 30, .average_degree = 4},
                                                       rng);
        graph::AllPairs ap(g);
        const auto members = graph::sample_nodes(30, 8, rng);
        const int best = graph::optimal_core_mean(ap, members);
        const double best_delay = graph::core_tree_mean_delay(ap, members, best);
        for (int c = 0; c < 30; c += 7) {
            EXPECT_LE(best_delay, graph::core_tree_mean_delay(ap, members, c) + 1e-9);
        }
        // A shared tree's mean can never beat direct shortest paths.
        EXPECT_GE(best_delay, graph::spt_mean_delay(ap, members) - 1e-9);
    }
}

TEST(IgmpQuerier, ReelectionAfterQuerierDeath) {
    topo::Network net;
    auto& low = net.add_router("low");   // .1 on the LAN: initial querier
    auto& high = net.add_router("high"); // .2: silenced
    auto& lan = net.add_lan({&low, &high});
    auto& host = net.add_host("h", lan);
    igmp::RouterConfig rcfg;
    rcfg.query_interval = 100 * sim::kMillisecond;
    rcfg.membership_timeout = 250 * sim::kMillisecond;
    rcfg.other_querier_timeout = 250 * sim::kMillisecond;
    igmp::RouterAgent a_low(low, rcfg);
    igmp::RouterAgent a_high(high, rcfg);
    igmp::HostConfig hcfg;
    hcfg.query_response_max = 10 * sim::kMillisecond;
    igmp::HostAgent hagent(host, hcfg);
    hagent.join(kGroup);
    net.run_for(500 * sim::kMillisecond);
    ASSERT_TRUE(a_high.has_members(high.ifindex_on(lan).value(), kGroup));

    // Kill the querier. After the other-querier timeout, `high` resumes
    // querying and keeps the membership alive.
    low.set_interface_up(low.ifindex_on(lan).value(), false);
    net.run_for(2 * sim::kSecond);
    EXPECT_TRUE(a_high.has_members(high.ifindex_on(lan).value(), kGroup));
}

TEST(DistanceVector, PoisonedReversePreventsTwoNodeLoop) {
    // r0 — r1 — r2 (r2's LAN only reachable via r1). Fail r1—r2: r0 must
    // not re-advertise the dead route back to r1 (poisoned reverse), so the
    // route dies within timeout+gc rather than counting to infinity.
    topo::Network net;
    auto& r0 = net.add_router("r0");
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    net.add_link(r0, r1);
    net.add_link(r1, r2);
    unicast::DvConfig cfg;
    cfg.update_interval = 100 * sim::kMillisecond;
    cfg.route_timeout = 300 * sim::kMillisecond;
    cfg.gc_delay = 200 * sim::kMillisecond;
    cfg.infinity = 64;
    unicast::DvRoutingDomain domain(net, cfg);
    net.run_for(1 * sim::kSecond);
    ASSERT_TRUE(r0.route_to(r2.router_id()).has_value());

    net.find_link(r1, r2)->set_up(false);
    // Within a handful of update intervals both routers must have dropped
    // the route; a count-to-infinity pathology would keep it alive with
    // climbing metrics for ~infinity × interval.
    net.run_for(1500 * sim::kMillisecond);
    EXPECT_FALSE(r0.route_to(r2.router_id()).has_value());
    EXPECT_FALSE(r1.route_to(r2.router_id()).has_value());
}

TEST(LinkState, DeadRouterLsaAgesOut) {
    topo::Network net;
    auto& r0 = net.add_router("r0");
    auto& r1 = net.add_router("r1");
    auto& r2 = net.add_router("r2");
    net.add_link(r0, r1);
    net.add_link(r1, r2);
    unicast::LsConfig cfg;
    cfg.hello_interval = 50 * sim::kMillisecond;
    cfg.dead_interval = 150 * sim::kMillisecond;
    cfg.lsa_refresh = 200 * sim::kMillisecond;
    cfg.lsa_max_age = 600 * sim::kMillisecond;
    cfg.spf_delay = 5 * sim::kMillisecond;
    unicast::LsRoutingDomain domain(net, cfg);
    net.run_for(1 * sim::kSecond);
    EXPECT_EQ(domain.agent_for(r0).lsdb_size(), 3u);

    // r2 dies entirely: its LSA must eventually leave r0's database.
    for (int i = 0; i < r2.interface_count(); ++i) r2.set_interface_up(i, false);
    net.run_for(2 * sim::kSecond);
    EXPECT_EQ(domain.agent_for(r0).lsdb_size(), 2u);
    EXPECT_FALSE(r0.route_to(r2.router_id()).has_value());
}

TEST(CbtCorner, JoinRetriesUntilCoreReachable) {
    // The member joins while the path to the core is down; the periodic
    // retry succeeds once the link heals.
    topo::Network net;
    auto& a = net.add_router("A");
    auto& core = net.add_router("CORE");
    auto& link = net.add_link(a, core);
    auto& lan = net.add_lan({&a});
    auto& member = net.add_host("m", lan);
    auto& src_lan = net.add_lan({&core});
    auto& source = net.add_host("s", src_lan);
    unicast::OracleRouting routing(net);
    scenario::CbtStack stack(net, fast_config());
    stack.set_core(kGroup, core.router_id());
    net.run_for(100 * sim::kMillisecond);

    link.set_up(false);
    routing.recompute();
    stack.host_agent(member).join(kGroup);
    net.run_for(500 * sim::kMillisecond);
    EXPECT_FALSE(stack.cbt_at(a).on_tree(kGroup));

    link.set_up(true);
    routing.recompute();
    net.run_for(1 * sim::kSecond);
    EXPECT_TRUE(stack.cbt_at(a).on_tree(kGroup));
    source.send_data(kGroup);
    net.run_for(200 * sim::kMillisecond);
    EXPECT_EQ(member.received_count(kGroup), 1u);
}

TEST(CbtCorner, MultipleGroupsDistinctCores) {
    topo::Network net;
    auto& a = net.add_router("A");
    auto& b = net.add_router("B");
    net.add_link(a, b);
    auto& lan = net.add_lan({&a});
    auto& member = net.add_host("m", lan);
    unicast::OracleRouting routing(net);
    scenario::CbtStack stack(net, fast_config());
    const net::GroupAddress g2{net::Ipv4Address(224, 2, 2, 2)};
    stack.set_core(kGroup, a.router_id());
    stack.set_core(g2, b.router_id());
    net.run_for(100 * sim::kMillisecond);
    stack.host_agent(member).join(kGroup);
    stack.host_agent(member).join(g2);
    net.run_for(500 * sim::kMillisecond);
    // Group 1's core is A itself (on-tree trivially); group 2's tree runs
    // A→B.
    EXPECT_TRUE(stack.cbt_at(a).on_tree(kGroup));
    EXPECT_TRUE(stack.cbt_at(a).on_tree(g2));
    const auto* state = stack.cbt_at(a).tree_state(g2);
    ASSERT_NE(state, nullptr);
    EXPECT_GE(state->parent_ifindex, 0);
}

// Message-sequence fidelity for the Fig. 3 rendezvous, asserted on the
// wire via the tracer: Report before the (*,G) join, join before the
// register, register before the RP's (S,G) join toward the source.
TEST(SequenceFidelity, Fig3WireOrder) {
    Fig3Topology topo;
    trace::PacketTracer tracer(topo.net);
    tracer.set_group_filter(kGroup);
    scenario::PimSmStack stack(topo.net, fast_config());
    stack.set_rp(kGroup, {topo.c->router_id()});
    stack.set_spt_policy(pim::SptPolicy::never());
    topo.net.run_for(100 * sim::kMillisecond);

    stack.host_agent(*topo.receiver).join(kGroup);
    topo.net.run_for(200 * sim::kMillisecond);
    topo.source->send_data(kGroup);
    topo.net.run_for(300 * sim::kMillisecond);

    auto first_index = [&](const std::string& needle) -> std::ptrdiff_t {
        const auto& records = tracer.records();
        for (std::size_t i = 0; i < records.size(); ++i) {
            if (trace::describe_packet(records[i].packet).find(needle) !=
                std::string::npos) {
                return static_cast<std::ptrdiff_t>(i);
            }
        }
        return -1;
    };
    const auto report = first_index("IGMP Report");
    const auto wc_join = first_index("(WC|RP)");
    const auto reg = first_index("PIM Register");
    const auto sg_join = first_index("(-)"); // flagless (S,G) join entry
    ASSERT_GE(report, 0);
    ASSERT_GE(wc_join, 0);
    ASSERT_GE(reg, 0);
    ASSERT_GE(sg_join, 0);
    EXPECT_LT(report, wc_join);
    EXPECT_LT(wc_join, reg);
    EXPECT_LT(reg, sg_join);
}

TEST(ForwardingEntryDescribe, ShowsFlagsAndPins) {
    auto wc = mcast::ForwardingEntry::make_wc(net::Ipv4Address(192, 168, 0, 3), kGroup);
    wc.set_iif(2);
    wc.pin_oif(0);
    const std::string s = wc.describe();
    EXPECT_NE(s.find("(*, 224.1.1.1)"), std::string::npos);
    EXPECT_NE(s.find("RP=192.168.0.3"), std::string::npos);
    EXPECT_NE(s.find("iif=2"), std::string::npos);
    EXPECT_NE(s.find("0*"), std::string::npos); // pinned marker
    EXPECT_NE(s.find("RPbit"), std::string::npos);

    auto sg = mcast::ForwardingEntry::make_sg(net::Ipv4Address(10, 0, 1, 3), kGroup);
    sg.set_spt_bit(true);
    EXPECT_NE(sg.describe().find("(10.0.1.3, 224.1.1.1)"), std::string::npos);
    EXPECT_NE(sg.describe().find("SPTbit"), std::string::npos);
}

TEST(PimOverLinkStateProperty, RandomTopologyDelivery) {
    std::mt19937 rng(5150);
    graph::Graph g = graph::random_connected_graph({.nodes = 8, .average_degree = 3}, rng);
    topo::Network net;
    std::vector<topo::Router*> routers;
    for (int i = 0; i < 8; ++i) routers.push_back(&net.add_router("r" + std::to_string(i)));
    for (int u = 0; u < 8; ++u) {
        for (const auto& e : g.neighbors(u)) {
            if (e.to > u) net.add_link(*routers[u], *routers[e.to]);
        }
    }
    auto& lan_s = net.add_lan({routers[0]});
    auto& source = net.add_host("s", lan_s);
    auto& lan_m = net.add_lan({routers[5]});
    auto& member = net.add_host("m", lan_m);

    unicast::LsConfig ls;
    ls.hello_interval = 50 * sim::kMillisecond;
    ls.dead_interval = 150 * sim::kMillisecond;
    ls.lsa_refresh = 500 * sim::kMillisecond;
    ls.spf_delay = 5 * sim::kMillisecond;
    unicast::LsRoutingDomain domain(net, ls);
    scenario::PimSmStack stack(net, fast_config());
    stack.set_rp(kGroup, {routers[3]->router_id()});
    net.run_for(1 * sim::kSecond);

    stack.host_agent(member).join(kGroup);
    net.run_for(400 * sim::kMillisecond);
    source.send_data(kGroup); // warm-up: register path + SPT switchover
    net.run_for(500 * sim::kMillisecond);
    member.clear_received();
    source.send_stream(kGroup, 5, 50 * sim::kMillisecond);
    net.run_for(1 * sim::kSecond);
    EXPECT_EQ(member.received_count(kGroup), 5u);
    EXPECT_EQ(member.duplicate_count(), 0u);
}

} // namespace
} // namespace pimlib::test
