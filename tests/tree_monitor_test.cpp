// TreeMonitor parity tests: the online stretch the monitor measures on a
// live MRIB must equal what the fig2a bench computes on the matching
// abstract graph — both sides go through graph::delay_ratio_via_root, so
// this pins down that the walker reconstructs the same tree the offline
// study assumes. Pentagon topology with the RP at E and spt-policy never,
// chosen so the metric-routed join paths and the delay-shortest paths
// coincide (the parity precondition fig2a's center-tree model relies on).
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "graph/shortest_path.hpp"
#include "graph/tree_metrics.hpp"
#include "scenario/stacks.hpp"
#include "telemetry/tree_monitor.hpp"
#include "test_util.hpp"

namespace pimlib::test {
namespace {

// Pentagon with RP = E. Shared-tree delays to the root: A-E direct (1 ms),
// D-C-A-E (3 ms; the D-C-B-E alternative costs metric 4 and delay 22 ms,
// losing under both regimes). Worst member-pair delay via the root is
// 1 + 3 = 4 ms against the A-C-D direct baseline of 2 ms: stretch 2.0.
struct ParityWorld {
    topo::Network net;
    topo::Router* a = nullptr;
    topo::Router* b = nullptr;
    topo::Router* c = nullptr;
    topo::Router* d = nullptr;
    topo::Router* e = nullptr; // RP
    topo::Host* receiver = nullptr;
    topo::Host* source = nullptr;
    topo::Host* viewer = nullptr;
    std::unique_ptr<unicast::OracleRouting> routing;
    std::unique_ptr<scenario::PimSmStack> stack;
    std::unique_ptr<telemetry::TreeMonitor> monitor;

    ParityWorld() {
        a = &net.add_router("A");
        b = &net.add_router("B");
        c = &net.add_router("C");
        d = &net.add_router("D");
        e = &net.add_router("E");
        net.add_link(*a, *e, 1 * sim::kMillisecond, 1);
        net.add_link(*e, *b, 20 * sim::kMillisecond, 1);
        net.add_link(*a, *c, 1 * sim::kMillisecond, 1);
        net.add_link(*b, *c, 1 * sim::kMillisecond, 2);
        net.add_link(*c, *d, 1 * sim::kMillisecond, 1);
        auto& lan0 = net.add_lan({a});
        auto& lan1 = net.add_lan({b});
        auto& lan2 = net.add_lan({d});
        receiver = &net.add_host("receiver", lan0);
        source = &net.add_host("source", lan1);
        viewer = &net.add_host("viewer", lan2);
        routing = std::make_unique<unicast::OracleRouting>(net);

        stack = std::make_unique<scenario::PimSmStack>(net, fast_config());
        stack->set_rp(kGroup, {e->router_id()});
        stack->set_spt_policy(pim::SptPolicy::never());

        telemetry::TreeMonitorConfig mon_cfg;
        mon_cfg.interval = 100 * sim::kMillisecond;
        monitor = std::make_unique<telemetry::TreeMonitor>(
            net, [this](const topo::Router& r) { return stack->cache_of(r); },
            mon_cfg);
        monitor->start();
    }

    void run() {
        net.run_for(120 * sim::kMillisecond);
        stack->host_agent(*receiver).join(kGroup);
        net.run_for(10 * sim::kMillisecond);
        stack->host_agent(*viewer).join(kGroup);
        source->send_stream(kGroup, 6, 10 * sim::kMillisecond,
                            100 * sim::kMillisecond);
        net.run_for(600 * sim::kMillisecond);
    }

    /// The same pentagon as an abstract graph, edge weights in ms — the
    /// form the fig2a bench consumes. Node order A=0 B=1 C=2 D=3 E=4.
    static graph::Graph abstract_pentagon() {
        graph::Graph g(5);
        g.add_edge(0, 4, 1);
        g.add_edge(4, 1, 20);
        g.add_edge(0, 2, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 3, 1);
        return g;
    }
};

TEST(TreeMonitor, StretchMatchesFig2aOnPentagon) {
    ParityWorld world;
    world.run();

    ASSERT_GT(world.monitor->passes(), 0u);
    const std::optional<graph::DelayRatio> online =
        world.monitor->group_stretch(kGroup);
    ASSERT_TRUE(online.has_value());

    const graph::Graph g = ParityWorld::abstract_pentagon();
    const graph::AllPairs ap(g);
    const graph::DelayRatio offline =
        graph::center_tree_delay_ratio(ap, {0, 3}, 4);

    // Ratios are unit-free, so µs (monitor) vs. ms (bench) cancels out.
    EXPECT_NEAR(online->max_ratio, offline.max_ratio, 1e-9);
    EXPECT_NEAR(online->mean_ratio, offline.mean_ratio, 1e-9);
    EXPECT_NEAR(offline.max_ratio, 2.0, 1e-9);
    EXPECT_NEAR(world.monitor->last_pass().stretch_max, 2.0, 1e-9);
}

TEST(TreeMonitor, PassStatsCoverTheSharedTree) {
    ParityWorld world;
    world.run();

    const telemetry::TreeMonitor::PassStats& pass = world.monitor->last_pass();
    EXPECT_EQ(pass.groups, 1u);
    EXPECT_EQ(pass.member_ports, 2u); // receiver + viewer
    EXPECT_GT(pass.wildcard_entries, 0u);
    EXPECT_GT(pass.walks, 0u);
    EXPECT_EQ(pass.broken_walks, 0u);
    // A-E and D-C-A-E: the deeper leaf is 3 router hops from the root.
    EXPECT_EQ(pass.depth_max, 3);
}

TEST(TreeMonitor, MeasureGroupSnapshot) {
    ParityWorld world;
    world.run();

    const auto health = world.monitor->measure_group(kGroup);
    EXPECT_EQ(health.member_ports, 2u);
    EXPECT_NEAR(health.stretch, 2.0, 1e-9);
    const std::string json = health.to_json();
    EXPECT_NE(json.find("\"stretch\""), std::string::npos);
    EXPECT_NE(json.find("\"member_ports\":2"), std::string::npos);
}

} // namespace
} // namespace pimlib::test
