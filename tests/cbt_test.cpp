// CBT baseline tests: ACKed join handshake, bidirectional shared-tree
// forwarding, sender-to-core encapsulation, QUIT teardown, ECHO keepalive
// with FLUSH + rebuild, and the traffic-concentration behavior the paper
// critiques (§1.3).
#include <gtest/gtest.h>

#include "cbt/cbt.hpp"
#include "test_util.hpp"
#include "topo/segment.hpp"

namespace pimlib::test {
namespace {

TEST(CbtMessages, CodecRoundTrips) {
    const cbt::JoinRequest join{kGroup.address(), net::Ipv4Address(192, 168, 0, 1)};
    auto j = cbt::JoinRequest::decode(join.encode());
    ASSERT_TRUE(j.has_value());
    EXPECT_EQ(j->group, join.group);
    EXPECT_EQ(j->core, join.core);

    const cbt::JoinAck ack{kGroup.address(), net::Ipv4Address(192, 168, 0, 1)};
    ASSERT_TRUE(cbt::JoinAck::decode(ack.encode()).has_value());
    EXPECT_FALSE(cbt::JoinAck::decode(join.encode()).has_value());

    const cbt::GroupOnly quit{cbt::Code::kQuit, kGroup.address()};
    auto q = cbt::GroupOnly::decode(quit.encode());
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->code, cbt::Code::kQuit);

    cbt::DataEncap encap;
    encap.group = kGroup.address();
    encap.inner_src = net::Ipv4Address(10, 0, 1, 3);
    encap.inner_ttl = 9;
    encap.inner_seq = 77;
    encap.inner_payload = {9, 8, 7};
    auto e = cbt::DataEncap::decode(encap.encode());
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->inner_src, encap.inner_src);
    EXPECT_EQ(e->inner_seq, 77u);
    EXPECT_EQ(e->inner_payload, encap.inner_payload);
}

// member1—LAN—A—B(core)—C—LAN—member2, plus D—B with a non-member sender.
struct CbtFixture : public ::testing::Test {
    topo::Network net;
    topo::Router* a;
    topo::Router* b; // core
    topo::Router* c;
    topo::Router* d;
    topo::Host* member1;
    topo::Host* member2;
    topo::Host* sender;
    std::unique_ptr<unicast::OracleRouting> routing;
    std::unique_ptr<scenario::CbtStack> stack;

    CbtFixture() {
        a = &net.add_router("A");
        b = &net.add_router("B");
        c = &net.add_router("C");
        d = &net.add_router("D");
        auto& lan1 = net.add_lan({a});
        member1 = &net.add_host("m1", lan1);
        net.add_link(*a, *b);
        net.add_link(*b, *c);
        net.add_link(*b, *d);
        auto& lan2 = net.add_lan({c});
        member2 = &net.add_host("m2", lan2);
        auto& lan3 = net.add_lan({d});
        sender = &net.add_host("sender", lan3);
        routing = std::make_unique<unicast::OracleRouting>(net);
        stack = std::make_unique<scenario::CbtStack>(net, fast_config());
        stack->set_core(kGroup, b->router_id());
        net.run_for(100 * sim::kMillisecond);
    }

    void join_members() {
        stack->host_agent(*member1).join(kGroup);
        stack->host_agent(*member2).join(kGroup);
        net.run_for(200 * sim::kMillisecond);
    }
};

TEST_F(CbtFixture, JoinAckBuildsTree) {
    join_members();
    EXPECT_TRUE(stack->cbt_at(*a).on_tree(kGroup));
    EXPECT_TRUE(stack->cbt_at(*b).on_tree(kGroup));
    EXPECT_TRUE(stack->cbt_at(*c).on_tree(kGroup));
    EXPECT_FALSE(stack->cbt_at(*d).on_tree(kGroup));

    const auto* state_b = stack->cbt_at(*b).tree_state(kGroup);
    ASSERT_NE(state_b, nullptr);
    EXPECT_EQ(state_b->parent_ifindex, -1); // the core has no parent
    EXPECT_EQ(state_b->children.size(), 2u); // A and C

    const auto* state_a = stack->cbt_at(*a).tree_state(kGroup);
    ASSERT_NE(state_a, nullptr);
    EXPECT_EQ(state_a->parent_address,
              b->interface(b->ifindex_on(*net.find_link(*a, *b)).value()).address);
}

TEST_F(CbtFixture, MemberSenderFloodsBidirectionally) {
    join_members();
    // member1 is on the tree at A; its packets go up and across without
    // passing an encapsulation to the core first.
    member1->send_stream(kGroup, 3, 20 * sim::kMillisecond);
    net.run_for(300 * sim::kMillisecond);
    EXPECT_EQ(member2->received_count(kGroup), 3u);
    EXPECT_EQ(member2->duplicate_count(), 0u);
    // The sender's own LAN copy is the only one member1 sees (no echo).
    EXPECT_EQ(member1->received_count_from(member1->address(), kGroup), 0u);
}

TEST_F(CbtFixture, NonMemberSenderEncapsulatesToCore) {
    join_members();
    sender->send_stream(kGroup, 3, 20 * sim::kMillisecond);
    net.run_for(300 * sim::kMillisecond);
    EXPECT_EQ(member1->received_count(kGroup), 3u);
    EXPECT_EQ(member2->received_count(kGroup), 3u);
    EXPECT_EQ(member1->duplicate_count(), 0u);
    // All three senders' flows cross the links around the core — the
    // traffic-concentration effect: the B—D link carried the encapsulated
    // data as data packets.
    const auto* bd = net.find_link(*b, *d);
    EXPECT_GE(net.stats().data_packets_on(bd->id()), 3u);
}

TEST_F(CbtFixture, QuitPrunesEmptyBranch) {
    join_members();
    stack->host_agent(*member2).leave(kGroup);
    net.run_for(2 * sim::kSecond); // membership ages out; C quits
    EXPECT_FALSE(stack->cbt_at(*c).on_tree(kGroup));
    const auto* state_b = stack->cbt_at(*b).tree_state(kGroup);
    ASSERT_NE(state_b, nullptr);
    EXPECT_EQ(state_b->children.size(), 1u);

    member1->clear_received();
    sender->send_data(kGroup);
    net.run_for(200 * sim::kMillisecond);
    EXPECT_EQ(member1->received_count(kGroup), 1u);
    EXPECT_EQ(member2->received_count(kGroup), 0u);
}

TEST_F(CbtFixture, EchoTimeoutFlushesAndRebuilds) {
    join_members();
    // Partition A from the core; ECHO replies stop; A flushes its subtree.
    net.find_link(*a, *b)->set_up(false);
    net.run_for(3 * sim::kSecond);
    EXPECT_FALSE(stack->cbt_at(*a).on_tree(kGroup));

    // Heal the link: the periodic rejoin re-attaches A.
    net.find_link(*a, *b)->set_up(true);
    routing->recompute();
    net.run_for(2 * sim::kSecond);
    EXPECT_TRUE(stack->cbt_at(*a).on_tree(kGroup));
    sender->send_data(kGroup);
    net.run_for(200 * sim::kMillisecond);
    EXPECT_EQ(member1->received_count(kGroup), 1u);
}

TEST_F(CbtFixture, SharedTreePathLongerThanUnicast) {
    // The Fig. 1(c) complaint: member2→member1 packets travel via the core
    // even when a shorter unicast path exists. Add a direct A—C link so the
    // shortest path avoids B, then verify CBT still routes via B.
    net.add_link(*a, *c);
    routing->recompute();
    net.run_for(500 * sim::kMillisecond);
    join_members();
    member2->send_data(kGroup);
    net.run_for(200 * sim::kMillisecond);
    EXPECT_EQ(member1->received_count(kGroup), 1u);
    // The direct A—C link carried no data: traffic went C—B—A.
    const auto* ac = net.find_link(*a, *c);
    EXPECT_EQ(net.stats().data_packets_on(ac->id()), 0u);
    const auto* ab = net.find_link(*a, *b);
    EXPECT_GT(net.stats().data_packets_on(ab->id()), 0u);
}

} // namespace
} // namespace pimlib::test
