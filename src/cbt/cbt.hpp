// Core Based Trees baseline (Ballardie, Francis, Crowcroft — SIGCOMM '93,
// the paper's reference [10]): a single bidirectional shared tree per group
// rooted at a configured core router.
//
// Protocol engineering contrasts the paper calls out (§1.3 footnote 4) are
// reproduced: CBT uses explicit hop-by-hop reliability — JOIN_REQUEST is
// acknowledged by JOIN_ACK, tree liveness is maintained with ECHO
// request/reply keepalives, and broken trees are torn down with FLUSH and
// rebuilt — instead of PIM's periodic soft-state refreshes.
//
// Non-member senders' packets are encapsulated hop-by-hop to the core
// (counted as data traffic), which injects them into the tree; on-tree
// routers flood over all tree interfaces except the arrival one.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "igmp/router_agent.hpp"
#include "net/buffer.hpp"
#include "sim/simulator.hpp"
#include "topo/router.hpp"

namespace pimlib::cbt {

enum class Code : std::uint8_t {
    kJoinRequest = 1,
    kJoinAck = 2,
    kQuit = 3,
    kEchoRequest = 4,
    kEchoReply = 5,
    kFlush = 6,
};

struct JoinRequest {
    net::Ipv4Address group;
    net::Ipv4Address core;
    [[nodiscard]] std::vector<std::uint8_t> encode() const;
    static std::optional<JoinRequest> decode(std::span<const std::uint8_t> bytes);
};

struct JoinAck {
    net::Ipv4Address group;
    net::Ipv4Address core;
    [[nodiscard]] std::vector<std::uint8_t> encode() const;
    static std::optional<JoinAck> decode(std::span<const std::uint8_t> bytes);
};

struct GroupOnly { // QUIT / ECHO_REQUEST / ECHO_REPLY / FLUSH share this shape
    Code code;
    net::Ipv4Address group;
    [[nodiscard]] std::vector<std::uint8_t> encode() const;
    static std::optional<GroupOnly> decode(std::span<const std::uint8_t> bytes);
};

/// Sender-to-core data encapsulation, carried as unicast UDP so links account
/// it as data traffic.
struct DataEncap {
    net::Ipv4Address group;
    net::Ipv4Address inner_src;
    std::uint8_t inner_ttl = 0;
    std::uint64_t inner_seq = 0;
    std::vector<std::uint8_t> inner_payload;
    [[nodiscard]] std::vector<std::uint8_t> encode() const;
    static std::optional<DataEncap> decode(std::span<const std::uint8_t> bytes);
};

[[nodiscard]] std::optional<Code> peek_code(std::span<const std::uint8_t> bytes);

struct CbtConfig {
    sim::Time echo_interval = 30 * sim::kSecond;
    sim::Time echo_timeout = 90 * sim::kSecond;   // 3 missed echoes -> flush
    sim::Time child_timeout = 90 * sim::kSecond;  // parent side
    sim::Time join_retry = 5 * sim::kSecond;      // pending join re-send

    [[nodiscard]] CbtConfig scaled(double factor) const;
};

class CbtRouter final : public topo::MulticastDataHandler {
public:
    CbtRouter(topo::Router& router, igmp::RouterAgent& igmp, CbtConfig config = {});

    CbtRouter(const CbtRouter&) = delete;
    CbtRouter& operator=(const CbtRouter&) = delete;

    /// Configures the core router (by router id) for a group. Must agree
    /// across the domain, like any CBT deployment.
    void set_core(net::GroupAddress group, net::Ipv4Address core);

    [[nodiscard]] topo::Router& router() { return *router_; }

    struct TreeState {
        enum class Status { kPending, kOnTree };
        Status status = Status::kPending;
        net::Ipv4Address core;
        int parent_ifindex = -1;               // -1 at the core
        net::Ipv4Address parent_address;
        std::map<int, std::set<net::Ipv4Address>> children; // ifindex -> child addrs
        std::set<int> member_ifaces;            // local member LANs
        std::map<net::Ipv4Address, sim::Time> child_expiry;
        sim::Time parent_last_echo = 0;
        // Downstream joins awaiting our own JOIN_ACK.
        std::vector<std::pair<int, net::Ipv4Address>> pending_children;
    };
    [[nodiscard]] const TreeState* tree_state(net::GroupAddress group) const;
    [[nodiscard]] bool on_tree(net::GroupAddress group) const;
    /// All per-group tree state (MRIB snapshots iterate this — CBT keeps
    /// parent/children state instead of a ForwardingCache).
    [[nodiscard]] const std::map<net::GroupAddress, TreeState>& trees() const {
        return trees_;
    }

    // --- topo::MulticastDataHandler ---
    void on_multicast_data(int ifindex, const net::Packet& packet) override;

private:
    void on_control(int ifindex, const net::Packet& packet);
    void on_data_encap(const net::Packet& packet);
    void on_membership(int ifindex, net::GroupAddress group, bool present);
    void on_tick();

    void start_join(net::GroupAddress group);
    void send_join_request(net::GroupAddress group, TreeState& state);
    void ack_pending_children(net::GroupAddress group, TreeState& state);
    void flood_tree(net::GroupAddress group, TreeState& state, int arrival_ifindex,
                    const net::Packet& packet);
    void flush_subtree(net::GroupAddress group, TreeState& state);
    void maybe_quit(net::GroupAddress group);
    [[nodiscard]] std::optional<net::Ipv4Address> core_of(net::GroupAddress group) const;
    [[nodiscard]] bool is_core(net::GroupAddress group) const;

    topo::Router* router_;
    igmp::RouterAgent* igmp_;
    CbtConfig config_;
    std::map<net::GroupAddress, net::Ipv4Address> cores_;
    std::map<net::GroupAddress, TreeState> trees_;
    sim::PeriodicTimer tick_timer_;
};

} // namespace pimlib::cbt
