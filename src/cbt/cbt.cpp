#include "cbt/cbt.hpp"

#include "provenance/provenance.hpp"
#include "telemetry/profiler/profiler.hpp"
#include "topo/network.hpp"
#include "topo/segment.hpp"

namespace pimlib::cbt {

namespace {
constexpr std::uint8_t kCbtVersion = 1;

/// CBT forwards outside the shared DataPlane engine, so it appends its own
/// provenance records. Returns nullptr when nothing should be recorded.
provenance::Recorder* recorder_for(topo::Router& router, const net::Packet& packet) {
    provenance::Recorder* rec = router.network().provenance();
    if (rec == nullptr || !rec->enabled() || packet.pid == 0) return nullptr;
    return rec;
}

provenance::HopRecord make_hop(topo::Router& router, const net::Packet& packet, int iif,
                               provenance::EntryKind kind, provenance::DropReason drop) {
    provenance::HopRecord hop;
    hop.pid = packet.pid;
    hop.at = router.simulator().now();
    hop.node = router.id();
    hop.iif = iif;
    hop.src = packet.src;
    hop.group = packet.dst;
    hop.seq = packet.seq;
    hop.kind = kind;
    hop.drop = drop;
    hop.rpf_ok = drop != provenance::DropReason::kRpfFail;
    hop.ttl = packet.ttl;
    return hop;
}

void put_header(net::BufWriter& w, Code code) {
    w.put_u8(kCbtVersion);
    w.put_u8(static_cast<std::uint8_t>(code));
}

bool check_header(net::BufReader& r, Code code) {
    auto v = r.get_u8();
    auto c = r.get_u8();
    return v && c && *v == kCbtVersion && *c == static_cast<std::uint8_t>(code);
}
} // namespace

std::optional<Code> peek_code(std::span<const std::uint8_t> bytes) {
    if (bytes.size() < 2 || bytes[0] != kCbtVersion) return std::nullopt;
    if (bytes[1] < 1 || bytes[1] > 6) return std::nullopt;
    return static_cast<Code>(bytes[1]);
}

std::vector<std::uint8_t> JoinRequest::encode() const {
    net::BufWriter w(10);
    put_header(w, Code::kJoinRequest);
    w.put_addr(group);
    w.put_addr(core);
    return w.take();
}

std::optional<JoinRequest> JoinRequest::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    if (!check_header(r, Code::kJoinRequest)) return std::nullopt;
    auto group = r.get_addr();
    auto core = r.get_addr();
    if (!group || !core || !r.at_end()) return std::nullopt;
    return JoinRequest{*group, *core};
}

std::vector<std::uint8_t> JoinAck::encode() const {
    net::BufWriter w(10);
    put_header(w, Code::kJoinAck);
    w.put_addr(group);
    w.put_addr(core);
    return w.take();
}

std::optional<JoinAck> JoinAck::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    if (!check_header(r, Code::kJoinAck)) return std::nullopt;
    auto group = r.get_addr();
    auto core = r.get_addr();
    if (!group || !core || !r.at_end()) return std::nullopt;
    return JoinAck{*group, *core};
}

std::vector<std::uint8_t> GroupOnly::encode() const {
    net::BufWriter w(6);
    put_header(w, code);
    w.put_addr(group);
    return w.take();
}

std::optional<GroupOnly> GroupOnly::decode(std::span<const std::uint8_t> bytes) {
    auto code = peek_code(bytes);
    if (!code) return std::nullopt;
    net::BufReader r(bytes);
    (void)r.get_u8();
    (void)r.get_u8();
    auto group = r.get_addr();
    if (!group || !r.at_end()) return std::nullopt;
    return GroupOnly{*code, *group};
}

std::vector<std::uint8_t> DataEncap::encode() const {
    net::BufWriter w(19 + inner_payload.size());
    w.put_addr(group);
    w.put_addr(inner_src);
    w.put_u8(inner_ttl);
    w.put_u64(inner_seq);
    w.put_u16(static_cast<std::uint16_t>(inner_payload.size()));
    w.put_bytes(inner_payload);
    return w.take();
}

std::optional<DataEncap> DataEncap::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    DataEncap out;
    auto group = r.get_addr();
    auto src = r.get_addr();
    auto ttl = r.get_u8();
    auto seq = r.get_u64();
    auto len = r.get_u16();
    if (!group || !src || !ttl || !seq || !len) return std::nullopt;
    auto payload = r.get_bytes(*len);
    if (!payload || !r.at_end()) return std::nullopt;
    out.group = *group;
    out.inner_src = *src;
    out.inner_ttl = *ttl;
    out.inner_seq = *seq;
    out.inner_payload = std::move(*payload);
    return out;
}

CbtConfig CbtConfig::scaled(double factor) const {
    auto scale = [factor](sim::Time t) {
        return static_cast<sim::Time>(static_cast<double>(t) * factor);
    };
    CbtConfig out = *this;
    out.echo_interval = scale(echo_interval);
    out.echo_timeout = scale(echo_timeout);
    out.child_timeout = scale(child_timeout);
    out.join_retry = scale(join_retry);
    return out;
}

CbtRouter::CbtRouter(topo::Router& router, igmp::RouterAgent& igmp, CbtConfig config)
    : router_(&router),
      igmp_(&igmp),
      config_(config),
      tick_timer_(router.simulator(), [this] { on_tick(); }) {
    router_->set_multicast_handler(this);
    router_->register_protocol(net::IpProto::kCbt,
                               [this](int ifindex, const net::Packet& packet) {
                                   on_control(ifindex, packet);
                               });
    // Encapsulated sender-to-core data arrives as unicast UDP addressed to us.
    router_->register_protocol(net::IpProto::kUdp,
                               [this](int ifindex, const net::Packet& packet) {
                                   (void)ifindex;
                                   on_data_encap(packet);
                               });
    igmp_->subscribe([this](int ifindex, net::GroupAddress group, bool present) {
        on_membership(ifindex, group, present);
    });
    tick_timer_.start(config_.echo_interval);
}

void CbtRouter::set_core(net::GroupAddress group, net::Ipv4Address core) {
    cores_[group] = core;
}

std::optional<net::Ipv4Address> CbtRouter::core_of(net::GroupAddress group) const {
    auto it = cores_.find(group);
    if (it == cores_.end()) return std::nullopt;
    return it->second;
}

bool CbtRouter::is_core(net::GroupAddress group) const {
    auto core = core_of(group);
    return core.has_value() && *core == router_->router_id();
}

const CbtRouter::TreeState* CbtRouter::tree_state(net::GroupAddress group) const {
    auto it = trees_.find(group);
    return it == trees_.end() ? nullptr : &it->second;
}

bool CbtRouter::on_tree(net::GroupAddress group) const {
    const TreeState* state = tree_state(group);
    return state != nullptr && state->status == TreeState::Status::kOnTree;
}

void CbtRouter::on_membership(int ifindex, net::GroupAddress group, bool present) {
    if (present) {
        auto core = core_of(group);
        if (!core.has_value()) return;
        TreeState& state = trees_[group];
        state.core = *core;
        state.member_ifaces.insert(ifindex);
        if (is_core(group)) {
            state.status = TreeState::Status::kOnTree;
            return;
        }
        if (state.status != TreeState::Status::kOnTree) start_join(group);
        return;
    }
    auto it = trees_.find(group);
    if (it == trees_.end()) return;
    it->second.member_ifaces.erase(ifindex);
    maybe_quit(group);
}

void CbtRouter::start_join(net::GroupAddress group) {
    TreeState& state = trees_[group];
    state.status = TreeState::Status::kPending;
    send_join_request(group, state);
}

void CbtRouter::send_join_request(net::GroupAddress group, TreeState& state) {
    auto route = router_->route_to(state.core);
    if (!route || route->next_hop.is_unspecified()) return;
    net::Packet packet;
    packet.src = router_->interface(route->ifindex).address;
    packet.dst = route->next_hop; // hop-by-hop: processed at each CBT router
    packet.proto = net::IpProto::kCbt;
    packet.ttl = 1;
    packet.payload = JoinRequest{group.address(), state.core}.encode();
    router_->network().stats().count_control_message("cbt");
    router_->network().telemetry().emit(telemetry::EventType::kJoinSent,
                                        router_->name(), "cbt", group.to_string(),
                                        "core=" + state.core.to_string());
    router_->send(route->ifindex, net::Frame{route->next_hop, std::move(packet)});
}

void CbtRouter::ack_pending_children(net::GroupAddress group, TreeState& state) {
    const sim::Time now = router_->simulator().now();
    for (const auto& [ifindex, addr] : state.pending_children) {
        state.children[ifindex].insert(addr);
        state.child_expiry[addr] = now + config_.child_timeout;
        net::Packet packet;
        packet.src = router_->interface(ifindex).address;
        packet.dst = addr;
        packet.proto = net::IpProto::kCbt;
        packet.ttl = 1;
        packet.payload = JoinAck{group.address(), state.core}.encode();
        router_->network().stats().count_control_message("cbt");
        router_->send(ifindex, net::Frame{addr, std::move(packet)});
    }
    state.pending_children.clear();
}

void CbtRouter::on_control(int ifindex, const net::Packet& packet) {
    PROF_ZONE("control.cbt");
    auto code = peek_code(packet.payload);
    if (!code) return;
    const sim::Time now = router_->simulator().now();

    switch (*code) {
    case Code::kJoinRequest: {
        auto msg = JoinRequest::decode(packet.payload);
        if (!msg || !msg->group.is_multicast()) return;
        const net::GroupAddress group{msg->group};
        TreeState& state = trees_[group];
        state.core = msg->core;
        state.pending_children.emplace_back(ifindex, packet.src);
        if (state.status == TreeState::Status::kOnTree ||
            msg->core == router_->router_id()) {
            state.status = TreeState::Status::kOnTree;
            ack_pending_children(group, state);
        } else {
            send_join_request(group, state); // forward toward the core
        }
        break;
    }
    case Code::kJoinAck: {
        auto msg = JoinAck::decode(packet.payload);
        if (!msg || !msg->group.is_multicast()) return;
        const net::GroupAddress group{msg->group};
        auto it = trees_.find(group);
        if (it == trees_.end()) return;
        TreeState& state = it->second;
        state.status = TreeState::Status::kOnTree;
        state.parent_ifindex = ifindex;
        state.parent_address = packet.src;
        state.parent_last_echo = now;
        ack_pending_children(group, state);
        break;
    }
    case Code::kQuit: {
        auto msg = GroupOnly::decode(packet.payload);
        if (!msg || !msg->group.is_multicast()) return;
        const net::GroupAddress group{msg->group};
        auto it = trees_.find(group);
        if (it == trees_.end()) return;
        TreeState& state = it->second;
        auto cit = state.children.find(ifindex);
        if (cit != state.children.end()) {
            cit->second.erase(packet.src);
            if (cit->second.empty()) state.children.erase(cit);
        }
        state.child_expiry.erase(packet.src);
        maybe_quit(group);
        break;
    }
    case Code::kEchoRequest: {
        auto msg = GroupOnly::decode(packet.payload);
        if (!msg || !msg->group.is_multicast()) return;
        const net::GroupAddress group{msg->group};
        auto it = trees_.find(group);
        if (it == trees_.end()) return;
        it->second.child_expiry[packet.src] = now + config_.child_timeout;
        net::Packet reply;
        reply.src = router_->interface(ifindex).address;
        reply.dst = packet.src;
        reply.proto = net::IpProto::kCbt;
        reply.ttl = 1;
        reply.payload = GroupOnly{Code::kEchoReply, msg->group}.encode();
        router_->network().stats().count_control_message("cbt");
        router_->send(ifindex, net::Frame{packet.src, std::move(reply)});
        break;
    }
    case Code::kEchoReply: {
        auto msg = GroupOnly::decode(packet.payload);
        if (!msg || !msg->group.is_multicast()) return;
        auto it = trees_.find(net::GroupAddress{msg->group});
        if (it != trees_.end()) it->second.parent_last_echo = now;
        break;
    }
    case Code::kFlush: {
        auto msg = GroupOnly::decode(packet.payload);
        if (!msg || !msg->group.is_multicast()) return;
        const net::GroupAddress group{msg->group};
        auto it = trees_.find(group);
        if (it == trees_.end()) return;
        if (it->second.parent_ifindex != ifindex) return;
        flush_subtree(group, it->second);
        break;
    }
    }
}

void CbtRouter::flush_subtree(net::GroupAddress group, TreeState& state) {
    for (const auto& [ifindex, addrs] : state.children) {
        for (net::Ipv4Address addr : addrs) {
            net::Packet packet;
            packet.src = router_->interface(ifindex).address;
            packet.dst = addr;
            packet.proto = net::IpProto::kCbt;
            packet.ttl = 1;
            packet.payload = GroupOnly{Code::kFlush, group.address()}.encode();
            router_->network().stats().count_control_message("cbt");
            router_->send(ifindex, net::Frame{addr, std::move(packet)});
        }
    }
    const bool had_members = !state.member_ifaces.empty();
    const auto member_ifaces = state.member_ifaces;
    trees_.erase(group);
    if (had_members) {
        // Rebuild: rejoin toward the core.
        auto core = core_of(group);
        if (!core.has_value()) return;
        TreeState& fresh = trees_[group];
        fresh.core = *core;
        fresh.member_ifaces = member_ifaces;
        if (is_core(group)) {
            fresh.status = TreeState::Status::kOnTree;
        } else {
            start_join(group);
        }
    }
}

void CbtRouter::maybe_quit(net::GroupAddress group) {
    auto it = trees_.find(group);
    if (it == trees_.end()) return;
    TreeState& state = it->second;
    if (!state.member_ifaces.empty() || !state.children.empty() || is_core(group)) {
        return;
    }
    if (state.status == TreeState::Status::kOnTree && state.parent_ifindex >= 0) {
        net::Packet packet;
        packet.src = router_->interface(state.parent_ifindex).address;
        packet.dst = state.parent_address;
        packet.proto = net::IpProto::kCbt;
        packet.ttl = 1;
        packet.payload = GroupOnly{Code::kQuit, group.address()}.encode();
        router_->network().stats().count_control_message("cbt");
        router_->send(state.parent_ifindex,
                      net::Frame{state.parent_address, std::move(packet)});
    }
    trees_.erase(it);
}

void CbtRouter::on_tick() {
    const sim::Time now = router_->simulator().now();
    std::vector<net::GroupAddress> to_flush;
    for (auto& [group, state] : trees_) {
        if (state.status != TreeState::Status::kOnTree) {
            // Pending join: retry.
            if (!is_core(group)) send_join_request(group, state);
            continue;
        }
        // Child liveness.
        for (auto it = state.child_expiry.begin(); it != state.child_expiry.end();) {
            if (it->second <= now) {
                for (auto cit = state.children.begin(); cit != state.children.end();) {
                    cit->second.erase(it->first);
                    cit = cit->second.empty() ? state.children.erase(cit) : std::next(cit);
                }
                it = state.child_expiry.erase(it);
            } else {
                ++it;
            }
        }
        // Parent keepalive.
        if (!is_core(group) && state.parent_ifindex >= 0) {
            if (state.parent_last_echo != 0 &&
                now - state.parent_last_echo > config_.echo_timeout) {
                to_flush.push_back(group);
                continue;
            }
            net::Packet packet;
            packet.src = router_->interface(state.parent_ifindex).address;
            packet.dst = state.parent_address;
            packet.proto = net::IpProto::kCbt;
            packet.ttl = 1;
            packet.payload = GroupOnly{Code::kEchoRequest, group.address()}.encode();
            router_->network().stats().count_control_message("cbt");
            router_->send(state.parent_ifindex,
                          net::Frame{state.parent_address, std::move(packet)});
        }
    }
    for (net::GroupAddress group : to_flush) {
        auto it = trees_.find(group);
        if (it != trees_.end()) flush_subtree(group, it->second);
    }
    // Empty branches quit lazily.
    std::vector<net::GroupAddress> candidates;
    for (const auto& [group, state] : trees_) candidates.push_back(group);
    for (net::GroupAddress group : candidates) maybe_quit(group);
}

void CbtRouter::flood_tree(net::GroupAddress /*group*/, TreeState& state,
                           int arrival_ifindex, const net::Packet& packet) {
    if (packet.ttl <= 1) {
        router_->network().stats().count_data_dropped_ttl();
        if (provenance::Recorder* rec = recorder_for(*router_, packet)) {
            rec->append(make_hop(*router_, packet, arrival_ifindex,
                                 provenance::EntryKind::kTree,
                                 provenance::DropReason::kTtl));
        }
        return;
    }
    net::Packet out = packet;
    out.ttl -= 1;
    std::set<int> targets;
    if (state.parent_ifindex >= 0) targets.insert(state.parent_ifindex);
    for (const auto& [ifindex, addrs] : state.children) targets.insert(ifindex);
    for (int ifindex : state.member_ifaces) targets.insert(ifindex);
    if (provenance::Recorder* rec = recorder_for(*router_, packet)) {
        provenance::HopRecord hop = make_hop(*router_, packet, arrival_ifindex,
                                             provenance::EntryKind::kTree,
                                             provenance::DropReason::kNone);
        for (int ifindex : targets) {
            if (ifindex != arrival_ifindex) hop.add_oif(ifindex);
        }
        if (hop.oif_count == 0) hop.drop = provenance::DropReason::kNoOif;
        rec->append(hop);
    }
    for (int ifindex : targets) {
        if (ifindex == arrival_ifindex) continue;
        router_->send(ifindex, net::Frame{std::nullopt, out});
    }
}

void CbtRouter::on_multicast_data(int ifindex, const net::Packet& packet) {
    PROF_ZONE("dataplane.forward");
    const net::GroupAddress group{packet.dst};
    auto it = trees_.find(group);
    if (it != trees_.end() && it->second.status == TreeState::Status::kOnTree) {
        TreeState& state = it->second;
        const bool tree_iface = ifindex == state.parent_ifindex ||
                                state.children.contains(ifindex) ||
                                state.member_ifaces.contains(ifindex);
        if (tree_iface) {
            flood_tree(group, state, ifindex, packet);
            return;
        }
    }
    // Not on the tree (or off-tree arrival): if we are the DR for a directly
    // connected sender, encapsulate toward the core.
    auto core = core_of(group);
    if (!core.has_value()) {
        if (provenance::Recorder* rec = recorder_for(*router_, packet)) {
            rec->append(make_hop(*router_, packet, ifindex, provenance::EntryKind::kNone,
                                 provenance::DropReason::kNoState));
        }
        return;
    }
    if (ifindex < 0 || ifindex >= router_->interface_count()) return;
    const auto& iface = router_->interface(ifindex);
    if (iface.segment == nullptr || !iface.segment->prefix().contains(packet.src)) {
        router_->network().stats().count_data_dropped_iif();
        if (provenance::Recorder* rec = recorder_for(*router_, packet)) {
            rec->append(make_hop(*router_, packet, ifindex, provenance::EntryKind::kNone,
                                 provenance::DropReason::kRpfFail));
        }
        return;
    }
    if (provenance::Recorder* rec = recorder_for(*router_, packet)) {
        rec->append(make_hop(*router_, packet, ifindex, provenance::EntryKind::kRegister,
                             provenance::DropReason::kNone));
    }
    DataEncap encap;
    encap.group = packet.dst;
    encap.inner_src = packet.src;
    encap.inner_ttl = packet.ttl;
    encap.inner_seq = packet.seq;
    encap.inner_payload = packet.payload;
    net::Packet out;
    out.dst = *core;
    out.proto = net::IpProto::kUdp; // accounted as data on every link crossed
    out.ttl = 64;
    out.payload = encap.encode();
    out.pid = packet.pid; // tunnel leg inherits the payload's trace id
    router_->originate_unicast(std::move(out));
}

void CbtRouter::on_data_encap(const net::Packet& packet) {
    auto encap = DataEncap::decode(packet.payload);
    if (!encap || !encap->group.is_multicast()) return;
    const net::GroupAddress group{encap->group};
    auto it = trees_.find(group);
    if (it == trees_.end() || it->second.status != TreeState::Status::kOnTree) return;
    net::Packet inner;
    inner.src = encap->inner_src;
    inner.dst = encap->group;
    inner.proto = net::IpProto::kUdp;
    inner.ttl = encap->inner_ttl;
    inner.seq = encap->inner_seq;
    inner.payload = encap->inner_payload;
    // pid is a pure function of (src, dst, seq): decapsulation restamps the
    // same id the sender's DR stamped, keeping the trace one packet.
    inner.pid = provenance::packet_id(inner.src, inner.dst, inner.seq);
    flood_tree(group, it->second, /*arrival_ifindex=*/-1, inner);
}

} // namespace pimlib::cbt
