// Online invariant watchdogs: three of pimcheck's oracles lifted into
// cheap incremental monitors that run *during* ordinary simulations, so a
// protocol bug is caught in the scenario where it happens — with a
// provenance post-mortem attached — instead of only under the offline
// state-space checker.
//
//   lan-delivery   per-(host, source, group) sequence-number accounting:
//                  a gap that outlives its grace window is a lost packet
//                  (the skip-spt-bit-handshake failure mode: pruning the
//                  shared-tree arm before SPT data arrives silently drops
//                  the switchover window), and a host's duplicate count
//                  blowing past the checker's bound is a forwarding loop
//                  or a missing prune
//   iif-rpf        budgeted walk over every router's live forwarding
//                  entries applying check/invariants.hpp — the same
//                  per-entry oracle pimcheck's iif-consistency uses
//   stale-entry    entries whose delete deadline passed long ago and
//                  RP-bit negative caches that outlived their (*,G):
//                  soft-state leaks that inflate MRIBs forever
//
// Transient states are expected mid-convergence, so structural findings
// (iif-rpf, stale-entry) must be observed in two consecutive passes before
// a violation is raised. Each violation increments
// pimlib_watchdog_violations_total{watchdog=...}, emits a
// kWatchdogViolation event through the hub, and — when a provenance
// recorder is attached — carries the drop summary plus (for the first few)
// the full flight-recorder JSON dump.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "mcast/forwarding_cache.hpp"
#include "net/ipv4.hpp"
#include "provenance/provenance.hpp"
#include "sim/simulator.hpp"
#include "topo/network.hpp"

namespace pimlib::check {

struct WatchdogConfig {
    /// Sim-time between watchdog ticks (delivery accounting runs on every
    /// tick — gap deadlines need this resolution).
    sim::Time interval = 100 * sim::kMillisecond;
    /// Structural (iif-rpf / stale-entry) sweeps advance only on every Nth
    /// tick: entries change on protocol timescales, not per-packet, and the
    /// two-sweep confirmation already tolerates the extra latency.
    std::size_t entry_sweep_every = 4;
    /// Forwarding entries examined per structural tick across all routers.
    std::size_t entry_budget = 2048;
    /// How long a missing sequence number may stay missing before it
    /// counts as lost (reordering and in-flight switchover need slack).
    sim::Time gap_grace = 300 * sim::kMillisecond;
    /// Per-host (source,seq) duplicate bound — same constant the offline
    /// duplicate-bound oracle uses.
    std::size_t duplicate_bound = 6;
    /// Slack past ForwardingEntry::delete_at before a leak is flagged.
    sim::Time stale_slack = 250 * sim::kMillisecond;
    /// Full flight-recorder JSON attached to at most this many violations
    /// (the drop summary is attached to all of them).
    std::size_t max_postmortems = 3;
};

struct WatchdogViolation {
    sim::Time at = 0;
    std::string watchdog; // "lan-delivery", "iif-rpf", "stale-entry"
    std::string node;
    std::string group;
    std::string detail;
    /// Provenance post-mortem: one-line per-router drop aggregate, and the
    /// merged flight-recorder JSON for the first max_postmortems findings.
    std::string postmortem_summary;
    std::string postmortem_json;
};

class Watchdog {
public:
    using CacheResolver =
        std::function<const mcast::ForwardingCache*(const topo::Router&)>;

    Watchdog(topo::Network& network, CacheResolver resolver,
             WatchdogConfig config = {});
    ~Watchdog();

    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /// Attaches the flight recorder post-mortems are pulled from (usually
    /// the network's own provenance recorder). Optional.
    void set_recorder(const provenance::Recorder* recorder) { recorder_ = recorder; }

    /// Scenarios that inject loss or faults call this: sequence gaps are
    /// then expected and the lan-delivery gap detector stays quiet
    /// (duplicate and structural checks remain armed).
    void set_loss_expected(bool expected) { loss_expected_ = expected; }
    [[nodiscard]] bool loss_expected() const { return loss_expected_; }

    void start();
    void stop();
    [[nodiscard]] bool running() const { return running_; }

    /// One sweep increment (what the periodic timer runs).
    void tick();

    [[nodiscard]] const std::vector<WatchdogViolation>& violations() const {
        return violations_;
    }
    [[nodiscard]] std::size_t entries_scanned() const { return entries_scanned_total_; }

    /// Human-readable rendering, one block per violation.
    [[nodiscard]] std::string dump() const;

private:
    void raise(const std::string& watchdog, const std::string& node,
               const std::string& group, const std::string& detail);
    void sweep_hosts(sim::Time now);
    void sweep_entries(sim::Time now);
    void check_entry(const topo::Router& router, const mcast::ForwardingCache& cache,
                     const mcast::ForwardingEntry& entry, sim::Time now);
    /// Two-pass confirmation: returns true when `key` was already suspect
    /// in the previous completed sweep (and not yet raised).
    bool confirm(const std::string& key);

    topo::Network* network_;
    CacheResolver resolver_;
    WatchdogConfig config_;
    const provenance::Recorder* recorder_ = nullptr;
    bool loss_expected_ = false;

    bool running_ = false;
    sim::EventId tick_event_{};
    std::uint64_t tick_count_ = 0;

    // Budgeted structural sweep state.
    std::size_t router_cursor_ = 0;
    mcast::ForwardingCache::VisitCursor entry_cursor_;
    std::uint64_t sweep_ = 0; // completed full sweeps
    /// suspect key → sweep number it was last observed in. Confirmed (and
    /// raised) when seen again in the immediately following sweep.
    std::map<std::string, std::uint64_t> suspects_;
    std::set<std::string> raised_;
    std::size_t entries_scanned_total_ = 0;

    // Per-host delivery accounting. Deliberately O(1) amortised per record
    // with no per-packet allocation: `pending` holds exactly the missing
    // sequence numbers, so any seq at or below max_seq that is not pending
    // must have been delivered before — a duplicate — without keeping a
    // seen-set over the whole stream.
    struct StreamState {
        std::uint64_t anchor = 0;  // first seq observed (no backfill below it)
        std::uint64_t max_seq = 0;
        std::map<std::uint64_t, sim::Time> pending; // missing seq → deadline
        /// Gap tracking was incomplete (loss_expected or the pending cap
        /// overflowed): duplicate counting is disabled for this stream, as
        /// an untracked late arrival is indistinguishable from a repeat.
        bool gaps_untracked = false;
    };
    std::vector<std::size_t> host_cursor_; // consumed received() records
    std::map<std::tuple<int, net::Ipv4Address, net::GroupAddress>, StreamState>
        streams_;
    /// Duplicates counted incrementally as records are consumed — a full
    /// Host::duplicate_count() rescan per tick is quadratic over a run.
    std::map<int, std::size_t> host_dupes_;
    std::map<int, std::size_t> dup_reported_; // host id → dupes already flagged

    telemetry::Counter* violations_lan_ = nullptr;
    telemetry::Counter* violations_iif_ = nullptr;
    telemetry::Counter* violations_stale_ = nullptr;
    std::size_t postmortems_emitted_ = 0;

    std::vector<WatchdogViolation> violations_;
};

} // namespace pimlib::check
