// Bounded forward search over a scenario's nondeterminism.
//
// The explorer enumerates branches as sparse ChoiceSets (see choice.hpp):
// it replays a branch, then derives children by flipping one decision
// point strictly after the branch's last forced pick — the canonical
// in-order construction that generates each choice set exactly once. The
// per-branch budget (max_depth forced picks, at most one loss and one
// fault per execution) and a seeded sample of children per run keep the
// frontier tractable; wall-clock and run-count budgets bound the whole
// search. Every run's timed-state keys — (sim clock, structural MRIB
// hash) pairs, see scenario.hpp — land in one global dedup set: the
// "distinct protocol states visited" metric.
//
// A branch whose oracles fail is shrunk (greedy pick-dropping, re-running
// each candidate) to a minimal failing choice set and packaged as a
// replayable counterexample: pimsim script + decoded packet trace.
//
// Exploration is wave-synchronous and optionally parallel: each BFS wave's
// branches are claimed off an atomic cursor by a worker pool, then the
// results are merged strictly in branch order. Child sampling uses a
// per-branch RNG seeded from hash(seed, branch) — never a shared stream —
// so a run-bounded search produces bit-identical reports for a fixed seed
// regardless of thread count (time-budget truncation is the one
// wall-clock-dependent escape hatch).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/scenario.hpp"
#include "telemetry/metrics.hpp"

namespace pimlib::check {

struct ExploreOptions {
    std::string scenario = "walkthrough";
    std::string mutation;
    /// Hard caps; whichever trips first ends the search.
    std::size_t max_runs = 100000;
    double time_budget_seconds = 50.0;
    /// Forced picks per branch (search depth).
    std::size_t max_depth = 3;
    /// Seeded sample of children enqueued per completed run. Wide on
    /// purpose: the loss choice points (one per frame) are where branches
    /// structurally diverge, and sampling them narrowly revisits the same
    /// few divergence windows over and over.
    std::size_t children_per_run = 800;
    std::size_t max_frontier = 50000;
    std::size_t max_counterexamples = 3;
    std::uint64_t seed = 1;
    /// Stop the whole search at the first verified violation (mutation
    /// gate mode). The stop point is the smallest violating branch index
    /// of its wave, so it is deterministic even under parallel execution.
    bool stop_at_first_violation = false;
    sim::Time checkpoint_every = sim::kMillisecond;
    /// Worker threads per wave; <= 1 explores inline on the caller's
    /// thread (the same code path, minus the thread spawns).
    std::size_t threads = 1;
    /// When set, the search publishes pimlib_check_* counters here on
    /// completion (runs, deduped states, violations, skipped branches,
    /// counterexamples) for CI metric artifacts.
    telemetry::Registry* metrics = nullptr;
};

struct Counterexample {
    ChoiceSet choices; // shrunk to a minimal failing set
    std::vector<Violation> violations;
    std::string script;     // pimsim replay (see scenario.hpp)
    std::string trace_dump; // decoded packet trace of the failing run
    /// Flight-recorder post-mortem of the failing run: merged time-ordered
    /// per-hop records (JSON) plus a one-line per-router drop summary
    /// naming who discarded what and why.
    std::string provenance_dump;
    std::string provenance_summary;
};

struct ExploreReport {
    std::size_t runs = 0;
    std::size_t deduped_states = 0;
    std::size_t violating_runs = 0;
    std::size_t skipped_branches = 0; // choice sets inconsistent on replay
    bool frontier_exhausted = false;
    double elapsed_seconds = 0.0;
    std::vector<Counterexample> counterexamples;

    [[nodiscard]] bool clean() const { return violating_runs == 0; }
};

[[nodiscard]] ExploreReport explore(const ExploreOptions& options);

/// Greedy minimization: drops forced picks one at a time while the run
/// keeps violating. Exposed for tests.
[[nodiscard]] ChoiceSet shrink_counterexample(const ExploreOptions& options,
                                              ChoiceSet failing);

} // namespace pimlib::check
