#include "check/explorer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <unordered_set>
#include <vector>

#include "telemetry/profiler/profiler.hpp"

namespace pimlib::check {
namespace {

using Clock = std::chrono::steady_clock;

RunResult run_branch(const ExploreOptions& options, const ChoiceSet& choices,
                     bool collect_trace) {
    RunConfig cfg;
    cfg.choices = choices;
    cfg.mutation = options.mutation;
    cfg.collect_trace = collect_trace;
    cfg.checkpoint_every = options.checkpoint_every;
    PROF_ZONE("check.explore");
    return run_scenario(options.scenario, cfg);
}

/// Candidate children of a completed run: flip one decision point after the
/// last already-forced pick. Loss and fault picks are rationed to one each
/// per execution — single-failure semantics, and the main guard against
/// frontier blowup.
std::vector<Pick> child_flips(const ChoiceSet& current, const RunResult& result) {
    std::vector<Pick> flips;
    bool have_loss = false;
    bool have_fault = false;
    for (const Pick& pick : current) {
        if (pick.index < result.trace.size()) {
            const auto kind = result.trace[pick.index].point.kind;
            have_loss |= kind == sim::ChoicePoint::Kind::kFrameLoss;
            have_fault |= kind == sim::ChoicePoint::Kind::kFault;
        }
    }
    const std::uint32_t start = current.empty() ? 0 : current.back().index + 1;
    for (std::uint32_t i = start; i < result.trace.size(); ++i) {
        const ChoiceRec& rec = result.trace[i];
        if (rec.alternatives < 2) continue;
        if (rec.point.kind == sim::ChoicePoint::Kind::kFrameLoss && have_loss) continue;
        if (rec.point.kind == sim::ChoicePoint::Kind::kFault && have_fault) continue;
        for (std::uint32_t v = 1; v < rec.alternatives; ++v) {
            if (v == rec.pick) continue;
            flips.push_back(Pick{i, v});
        }
    }
    return flips;
}

/// Seed for a branch's private child-sampling RNG. Derived from the search
/// seed and the branch identity alone — never from a shared RNG stream —
/// so the sample is the same whichever worker runs the branch, and the
/// whole search is reproducible across thread counts.
std::uint64_t branch_seed(std::uint64_t seed, const ChoiceSet& branch) {
    std::uint64_t h = 0xcbf29ce484222325ull ^ seed;
    const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    for (const Pick& pick : branch) {
        mix(pick.index);
        mix(pick.value);
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return h;
}

/// Sampled, ordered children of a completed clean run. Fault-slot flips
/// are exempt from the sampling cap: there are only a handful per scenario
/// and each is a first-class branch dimension (some seeded bugs only
/// manifest after a fault), so they must never lose the shuffle to the
/// thousands of message-order flips.
std::vector<Pick> sample_children(const ExploreOptions& options,
                                  const ChoiceSet& current,
                                  const RunResult& result) {
    std::vector<Pick> flips = child_flips(current, result);
    const auto is_fault = [&result](const Pick& p) {
        return p.index < result.trace.size() &&
               result.trace[p.index].point.kind == sim::ChoicePoint::Kind::kFault;
    };
    auto fault_end = std::stable_partition(flips.begin(), flips.end(), is_fault);
    const auto fault_count =
        static_cast<std::size_t>(std::distance(flips.begin(), fault_end));
    std::mt19937_64 rng(branch_seed(options.seed, current));
    std::shuffle(fault_end, flips.end(), rng);
    if (flips.size() > options.children_per_run + fault_count) {
        flips.resize(options.children_per_run + fault_count);
    }
    return flips;
}

/// One wave slot's outcome, filled by whichever worker claimed it and read
/// back strictly in slot order by the merge step.
struct Slot {
    bool ran = false;
    RunResult result;
    std::vector<Pick> children;
};

} // namespace

ChoiceSet shrink_counterexample(const ExploreOptions& options, ChoiceSet failing) {
    bool shrunk = true;
    while (shrunk && !failing.empty()) {
        shrunk = false;
        for (std::size_t i = 0; i < failing.size(); ++i) {
            ChoiceSet candidate = failing;
            candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
            const RunResult result = run_branch(options, candidate, false);
            if (!result.violations.empty()) {
                failing = std::move(candidate);
                shrunk = true;
                break;
            }
        }
    }
    return failing;
}

ExploreReport explore(const ExploreOptions& options) {
    ExploreReport report;
    const auto start = Clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(options.time_budget_seconds));

    std::vector<ChoiceSet> frontier{ChoiceSet{}};
    std::unordered_set<std::uint64_t> states;
    bool stopped = false;

    while (!frontier.empty() && !stopped && report.runs < options.max_runs &&
           Clock::now() < deadline) {
        // --- run the wave -------------------------------------------------
        // Workers claim slots off the cursor; every slot's budget verdict
        // depends only on its index, so the set of slots that run is the
        // same for any thread count (modulo the wall-clock deadline).
        std::vector<Slot> slots(frontier.size());
        std::atomic<std::size_t> cursor{0};
        // Smallest violating slot so far: later slots may be skipped (they
        // are discarded by the merge anyway), earlier ones always run.
        std::atomic<std::size_t> first_violating{frontier.size()};
        const std::size_t runs_before = report.runs;
        const bool expand = frontier.front().size() < options.max_depth;

        const auto worker = [&] {
            for (std::size_t i = cursor.fetch_add(1); i < frontier.size();
                 i = cursor.fetch_add(1)) {
                if (runs_before + i >= options.max_runs) continue;
                if (Clock::now() >= deadline) continue;
                if (options.stop_at_first_violation &&
                    i > first_violating.load(std::memory_order_relaxed)) {
                    continue;
                }
                Slot& slot = slots[i];
                slot.result = run_branch(options, frontier[i], false);
                slot.ran = true;
                if (!slot.result.violations.empty()) {
                    std::size_t prev =
                        first_violating.load(std::memory_order_relaxed);
                    while (i < prev && !first_violating.compare_exchange_weak(
                                           prev, i, std::memory_order_relaxed)) {
                    }
                } else if (expand && slot.result.choices_applied) {
                    slot.children =
                        sample_children(options, frontier[i], slot.result);
                }
            }
        };

        const std::size_t workers =
            std::max<std::size_t>(1, std::min(options.threads, frontier.size()));
        if (workers <= 1) {
            worker();
        } else {
            std::vector<std::thread> pool;
            pool.reserve(workers);
            for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
            for (std::thread& t : pool) t.join();
        }

        // --- merge in branch order ---------------------------------------
        std::vector<ChoiceSet> next;
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (report.runs >= options.max_runs) break;
            Slot& slot = slots[i];
            if (!slot.ran) break; // deadline truncation (or a discarded tail)
            ++report.runs;
            states.insert(slot.result.state_hashes.begin(),
                          slot.result.state_hashes.end());
            if (!slot.result.choices_applied) {
                // The flipped prefix reshaped the execution so a later
                // forced pick was never reached (or shrank out of range):
                // not a real branch of the state space.
                ++report.skipped_branches;
                continue;
            }
            if (!slot.result.violations.empty()) {
                ++report.violating_runs;
                if (report.counterexamples.size() < options.max_counterexamples) {
                    const ChoiceSet minimal =
                        shrink_counterexample(options, frontier[i]);
                    RunResult replay = run_branch(options, minimal, true);
                    if (replay.violations.empty()) {
                        // Shrinking is best-effort; fall back to the original.
                        replay = run_branch(options, frontier[i], true);
                    }
                    Counterexample ce;
                    ce.choices =
                        replay.violations.empty() ? frontier[i] : minimal;
                    ce.violations = replay.violations.empty()
                                        ? slot.result.violations
                                        : replay.violations;
                    ce.script = replay_script(options.scenario, options.mutation,
                                              replay);
                    ce.trace_dump = std::move(replay.trace_dump);
                    ce.provenance_dump = std::move(replay.provenance_dump);
                    ce.provenance_summary = std::move(replay.provenance_summary);
                    report.counterexamples.push_back(std::move(ce));
                }
                if (options.stop_at_first_violation) {
                    stopped = true;
                    break;
                }
                continue; // don't grow the tree under a failing branch
            }
            for (Pick& flip : slot.children) {
                if (next.size() >= options.max_frontier) break;
                ChoiceSet child = frontier[i];
                child.push_back(flip);
                next.push_back(std::move(child));
            }
        }
        if (!stopped) frontier = std::move(next);
    }

    report.frontier_exhausted = frontier.empty() && !stopped;
    report.deduped_states = states.size();
    report.elapsed_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();

    if (options.metrics != nullptr) {
        const telemetry::LabelSet labels{
            {"engine", "forward"},
            {"scenario", options.scenario},
            {"mutation", options.mutation.empty() ? "none" : options.mutation}};
        telemetry::Registry& reg = *options.metrics;
        reg.counter("pimlib_check_runs_total", labels,
                    "scenario replays executed by the checker")
            .inc(report.runs);
        reg.counter("pimlib_check_deduped_states_total", labels,
                    "distinct timed protocol states visited")
            .inc(report.deduped_states);
        reg.counter("pimlib_check_violating_runs_total", labels,
                    "replays that tripped an invariant oracle")
            .inc(report.violating_runs);
        reg.counter("pimlib_check_skipped_branches_total", labels,
                    "inconsistent choice sets discarded on replay")
            .inc(report.skipped_branches);
        reg.counter("pimlib_check_counterexamples_total", labels,
                    "shrunk replayable counterexamples emitted")
            .inc(report.counterexamples.size());
    }
    return report;
}

} // namespace pimlib::check
