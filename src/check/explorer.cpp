#include "check/explorer.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <random>
#include <set>
#include <unordered_set>

namespace pimlib::check {
namespace {

using Clock = std::chrono::steady_clock;

RunResult run_branch(const ExploreOptions& options, const ChoiceSet& choices,
                     bool collect_trace) {
    RunConfig cfg;
    cfg.choices = choices;
    cfg.mutation = options.mutation;
    cfg.collect_trace = collect_trace;
    cfg.checkpoint_every = options.checkpoint_every;
    return run_scenario(options.scenario, cfg);
}

/// Candidate children of a completed run: flip one decision point after the
/// last already-forced pick. Loss and fault picks are rationed to one each
/// per execution — single-failure semantics, and the main guard against
/// frontier blowup.
std::vector<Pick> child_flips(const ChoiceSet& current, const RunResult& result) {
    std::vector<Pick> flips;
    bool have_loss = false;
    bool have_fault = false;
    for (const Pick& pick : current) {
        if (pick.index < result.trace.size()) {
            const auto kind = result.trace[pick.index].point.kind;
            have_loss |= kind == sim::ChoicePoint::Kind::kFrameLoss;
            have_fault |= kind == sim::ChoicePoint::Kind::kFault;
        }
    }
    const std::uint32_t start = current.empty() ? 0 : current.back().index + 1;
    for (std::uint32_t i = start; i < result.trace.size(); ++i) {
        const ChoiceRec& rec = result.trace[i];
        if (rec.alternatives < 2) continue;
        if (rec.point.kind == sim::ChoicePoint::Kind::kFrameLoss && have_loss) continue;
        if (rec.point.kind == sim::ChoicePoint::Kind::kFault && have_fault) continue;
        for (std::uint32_t v = 1; v < rec.alternatives; ++v) {
            if (v == rec.pick) continue;
            flips.push_back(Pick{i, v});
        }
    }
    return flips;
}

} // namespace

ChoiceSet shrink_counterexample(const ExploreOptions& options, ChoiceSet failing) {
    bool shrunk = true;
    while (shrunk && !failing.empty()) {
        shrunk = false;
        for (std::size_t i = 0; i < failing.size(); ++i) {
            ChoiceSet candidate = failing;
            candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
            const RunResult result = run_branch(options, candidate, false);
            if (!result.violations.empty()) {
                failing = std::move(candidate);
                shrunk = true;
                break;
            }
        }
    }
    return failing;
}

ExploreReport explore(const ExploreOptions& options) {
    ExploreReport report;
    const auto start = Clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(options.time_budget_seconds));

    std::deque<ChoiceSet> frontier{ChoiceSet{}};
    std::set<ChoiceSet> seen{ChoiceSet{}};
    std::unordered_set<std::uint64_t> states;
    std::mt19937_64 rng(options.seed);

    while (!frontier.empty() && report.runs < options.max_runs &&
           Clock::now() < deadline) {
        const ChoiceSet current = std::move(frontier.front());
        frontier.pop_front();

        RunResult result = run_branch(options, current, false);
        ++report.runs;
        states.insert(result.state_hashes.begin(), result.state_hashes.end());

        if (!result.choices_applied) {
            // The flipped prefix reshaped the execution so a later forced
            // pick was never reached (or shrank out of range): not a real
            // branch of the state space.
            ++report.skipped_branches;
            continue;
        }
        if (!result.violations.empty()) {
            ++report.violating_runs;
            if (report.counterexamples.size() < options.max_counterexamples) {
                const ChoiceSet minimal = shrink_counterexample(options, current);
                RunResult replay = run_branch(options, minimal, true);
                if (replay.violations.empty()) {
                    // Shrinking is best-effort; fall back to the original.
                    replay = run_branch(options, current, true);
                }
                Counterexample ce;
                ce.choices = replay.violations.empty() ? current : minimal;
                ce.violations = replay.violations.empty() ? result.violations
                                                          : replay.violations;
                ce.script = replay_script(options.scenario, options.mutation, replay);
                ce.trace_dump = std::move(replay.trace_dump);
                ce.provenance_dump = std::move(replay.provenance_dump);
                ce.provenance_summary = std::move(replay.provenance_summary);
                report.counterexamples.push_back(std::move(ce));
            }
            if (options.stop_at_first_violation) break;
            continue; // don't grow the tree under a failing branch
        }

        if (current.size() >= options.max_depth) continue;
        std::vector<Pick> flips = child_flips(current, result);
        // Fault-slot flips are exempt from the sampling cap: there are only
        // a handful per scenario and each is a first-class branch dimension
        // (some seeded bugs only manifest after a fault), so they must never
        // lose the shuffle to the thousands of message-order flips.
        const auto is_fault = [&result](const Pick& p) {
            return p.index < result.trace.size() &&
                   result.trace[p.index].point.kind ==
                       sim::ChoicePoint::Kind::kFault;
        };
        auto fault_end = std::stable_partition(flips.begin(), flips.end(), is_fault);
        const auto fault_count =
            static_cast<std::size_t>(std::distance(flips.begin(), fault_end));
        std::shuffle(fault_end, flips.end(), rng);
        if (flips.size() > options.children_per_run + fault_count) {
            flips.resize(options.children_per_run + fault_count);
        }
        for (const Pick& flip : flips) {
            if (frontier.size() >= options.max_frontier) break;
            ChoiceSet child = current;
            child.push_back(flip);
            if (seen.insert(child).second) frontier.push_back(std::move(child));
        }
    }

    report.frontier_exhausted = frontier.empty();
    report.deduped_states = states.size();
    report.elapsed_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return report;
}

} // namespace pimlib::check
