// The checker's scenarios and invariant oracles.
//
// A scenario is a small, fully scripted pimlib world (topology + PIM-SM
// stack + oracle unicast routing + stimuli) run once under a ChoiceRecorder.
// After the run, invariant oracles derived from the paper are evaluated:
//
//   duplicate-bound      no host sees more than a handful of (source,seq)
//                        duplicates; a forwarding loop dupes every packet
//   forwarding-loop      no data packet crosses the same segment more than
//                        a few times, and nothing dies of TTL exhaustion
//   steady-duplicate     zero duplicates in the post-convergence window
//   delivery             every packet sent while all members are joined is
//                        delivered to every member (§3.3's lossless
//                        SPT-switchover claim; clean branches only)
//   steady-redundancy    each steady-state packet crosses exactly the
//                        expected tree's segments — one extra crossing means
//                        a missing RP-bit negative cache (§3.3, §3.5)
//   steady-iif           zero incoming-interface check failures in steady
//                        state (§3.5's iif discipline; clean branches only)
//   iif-consistency      every surviving MRIB entry's iif agrees with the
//                        unicast RPF oracle, and never appears in its own
//                        oif list (§2.3, §3.8)
//   convergence          after stimuli stop, the global MRIB reaches a
//                        stable state or a recurrent soft-state orbit
//   rp-failover          (rp-failover scenario) after the primary RP dies,
//                        every member router's (*,G) re-homes to the
//                        alternate RP (§3.9)
//   assert-winner        (lan-assert scenario) after the per-interface
//                        Assert election, each steady packet crosses the
//                        contested LAN exactly once — one winner forwards,
//                        every loser holds its prune
//   exactly-one-bsr      (bsr-failover scenario) every live router agrees on
//                        the elected BSR, and exactly one live router claims
//                        the role
//   rp-set-agreement     (bsr-failover scenario) every live router derives
//                        the same non-empty RP list from the learned set
//   bsr-rp-rehoming      (bsr-failover scenario) members' (*,G) entries root
//                        at the hash-elected RP of the surviving set — after
//                        the primary candidate RP (and BSR) crashes, they
//                        re-home to the backup within the §3.9-style bound
//
// Oracles that assert efficiency or completeness only apply to "clean"
// branches — no forced frame loss and no injected fault — because the
// protocol's own spec tolerates transient loss after a dropped control
// message (soft state repairs at the next periodic refresh, §3.4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/choice.hpp"
#include "check/invariants.hpp" // Violation + the pure oracle functions
#include "scenario/stacks.hpp"
#include "telemetry/snapshot.hpp"

namespace pimlib::check {

/// Drop every frame crossing `segment` (by scenario segment name) whose
/// transmission time falls in [from, to). A robust test trigger for
/// loss-dependent bugs: unlike a forced Pick it keys on (segment, time),
/// so it survives trace reshaping between protocol revisions.
struct ForcedLoss {
    std::string segment;
    sim::Time from = 0;
    sim::Time to = 0;
};

struct RunConfig {
    /// Forced picks identifying the branch; empty = baseline run.
    ChoiceSet choices;
    /// Seeded-bug selector: "" or one of known_mutations().
    std::string mutation;
    /// Unconditionally apply this fault candidate at the first fault slot
    /// (by label, bypassing the choice machinery). Test hook.
    std::string forced_fault;
    /// Unconditionally drop frames in these (segment, time-window) slots.
    /// The drops are recorded as ordinary non-default picks, so the run is
    /// non-clean and its trace replays. Test hook for loss-dependent bugs.
    std::vector<ForcedLoss> forced_loss;
    /// Capture a decoded packet trace of the whole run (expensive; used
    /// when emitting counterexamples).
    bool collect_trace = false;
    /// Attach a provenance flight recorder to the run; on an oracle failure
    /// the merged time-ordered recorder contents are emitted as a post-
    /// mortem JSON dump (RunResult::provenance_dump). Implied by
    /// collect_trace.
    bool collect_provenance = false;
    /// Run the online invariant watchdogs (check/watchdog.hpp) alongside
    /// the offline oracles; their findings land in
    /// RunResult::watchdog_report. Used by pimcheck --replay so a
    /// counterexample shows what the live watchdogs would have said.
    bool watchdog = false;
    /// Cadence of MRIB state-hash checkpoints.
    sim::Time checkpoint_every = sim::kMillisecond;
};

struct RunResult {
    std::vector<ChoiceRec> trace;
    std::vector<Violation> violations;
    /// Timed-state keys — hash of (sim clock, structural MRIB hash) — one
    /// per checkpoint plus the convergence probes. The clock is part of
    /// the key because this is a timed protocol: the same MRIB structure
    /// at two points of the schedule is two different global states. The
    /// explorer dedups these globally.
    std::vector<std::uint64_t> state_hashes;
    telemetry::MribSnapshot final_mrib;
    /// No forced loss, no fault: every efficiency oracle applies.
    bool clean = true;
    bool converged = false;
    /// The forced choice set was consistent with this scenario (every pick
    /// reached and in range). Inconsistent branches are discarded upstream.
    bool choices_applied = true;
    sim::Time end_time = 0;
    std::size_t events = 0;
    std::string trace_dump; // filled when RunConfig::collect_trace
    /// Post-mortem flight-recorder dump (JSON) and one-line drop summary,
    /// filled only when a recorder was attached AND an oracle failed.
    std::string provenance_dump;
    std::string provenance_summary;
    /// Chrome trace-event JSON of the whole run (control events, spans and
    /// provenance hops stitched into causal tracks — load in Perfetto).
    /// Filled when RunConfig::collect_trace.
    std::string timeline_json;
    /// Online watchdog findings (human-readable, one block per violation)
    /// and their count. Filled when RunConfig::watchdog.
    std::string watchdog_report;
    std::size_t watchdog_count = 0;
};

/// Static metadata about a scenario world, exported for the backward
/// search engine (check/backward.hpp): it needs to reason about fault
/// candidates, segments and deadlines *before* replaying anything.
struct ScenarioInfo {
    std::string name;
    /// Segment names in creation order — the index is exactly the
    /// ChoicePoint::detail of kFrameLoss decisions on that segment.
    std::vector<std::string> segments;
    /// Fault-slot firing times; slot i is ChoicePoint::detail i of kFault.
    std::vector<sim::Time> fault_slots;
    /// Fault candidate labels; candidate j fires on pick value j+1.
    std::vector<std::string> fault_candidates;
    /// The oracle-judgment deadline (checkpoint horizon before the
    /// convergence probes take over).
    sim::Time horizon = 0;
    /// Last-hop routers with joined members behind them — the routers whose
    /// forwarding state the delivery/re-homing oracles judge. Backward
    /// search ranks losses on member↔critical-router links first.
    std::vector<std::string> member_routers;
};

/// Aborts (assert) on unknown names — validate against scenario_names().
[[nodiscard]] const ScenarioInfo& scenario_info(const std::string& name);

/// Everything a test needs to make a seeded mutation's symptom appear on
/// a directly-forced branch: the fault to fire (if fault-dependent) and
/// the frame-loss windows to apply (if loss-dependent). Baseline-visible
/// mutations have both parts empty.
struct MutationTrigger {
    std::string fault;
    std::vector<ForcedLoss> losses;
};
[[nodiscard]] const MutationTrigger& trigger_for_mutation(const std::string& mutation);

/// True when `mutation`'s symptom only appears under a specific frame-loss
/// placement (a non-empty trigger loss window) — the mutations where a
/// search has to *find* the loss, and where backward search's pre-image
/// ranking earns its keep. Fault-dependent and baseline-visible mutations
/// return false: any engine trips over those immediately.
[[nodiscard]] bool mutation_requires_search(const std::string& mutation);

[[nodiscard]] const std::vector<std::string>& scenario_names();
[[nodiscard]] const std::vector<std::string>& known_mutations();

/// Applies a mutation by name to the stack config; false if unknown.
[[nodiscard]] bool apply_mutation(const std::string& mutation,
                                  scenario::StackConfig& config);

/// The scenario whose oracles catch `mutation` — each seeded bug only
/// manifests in the world built to exercise its mechanism (e.g. the assert
/// mutations need two parallel upstreams on a LAN). Defaults to
/// "walkthrough" for unknown names.
[[nodiscard]] std::string scenario_for_mutation(const std::string& mutation);

/// The fault (RunConfig::forced_fault syntax) a mutation needs before its
/// symptom appears on the deterministic baseline branch, or "" when it is
/// visible without one. A stale RP set, for instance, is indistinguishable
/// from a fresh one until the elected BSR actually dies.
[[nodiscard]] std::string forced_fault_for_mutation(const std::string& mutation);

/// Runs one branch of `name`. Aborts (assert) on unknown scenario names —
/// callers validate against scenario_names() first.
[[nodiscard]] RunResult run_scenario(const std::string& name, const RunConfig& cfg);

/// A pimsim directive script reproducing `result`'s branch of `name`:
/// topology, stimuli and fault injections replay exactly; message-level
/// order/loss choices (which pimsim cannot force) are documented as
/// comments, including the --replay spec for reproducing them in pimcheck.
[[nodiscard]] std::string replay_script(const std::string& name,
                                        const std::string& mutation,
                                        const RunResult& result);

} // namespace pimlib::check
