#include "check/watchdog.hpp"

#include <algorithm>
#include <cstdio>

#include "check/invariants.hpp"
#include "mcast/forwarding_entry.hpp"
#include "topo/host.hpp"
#include "topo/router.hpp"

namespace pimlib::check {

namespace {
// A stream whose sender skips around could enqueue unbounded gap state;
// anything past this per-stream cap is dropped (and a real protocol bug
// shows up long before 64 consecutive losses).
constexpr std::size_t kMaxPendingGaps = 64;
} // namespace

Watchdog::Watchdog(topo::Network& network, CacheResolver resolver,
                   WatchdogConfig config)
    : network_(&network), resolver_(std::move(resolver)), config_(config) {
    telemetry::Registry& reg = network_->telemetry().registry();
    const char* help = "Online invariant watchdog violations, by watchdog";
    violations_lan_ = &reg.counter("pimlib_watchdog_violations_total",
                                   {{"watchdog", "lan-delivery"}}, help);
    violations_iif_ = &reg.counter("pimlib_watchdog_violations_total",
                                   {{"watchdog", "iif-rpf"}}, help);
    violations_stale_ = &reg.counter("pimlib_watchdog_violations_total",
                                     {{"watchdog", "stale-entry"}}, help);
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::start() {
    if (running_) return;
    running_ = true;
    tick_event_ = network_->simulator().schedule(config_.interval, [this] { tick(); });
}

void Watchdog::stop() {
    if (!running_) return;
    running_ = false;
    network_->simulator().cancel(tick_event_);
}

void Watchdog::tick() {
    const sim::Time now = network_->simulator().now();
    sweep_hosts(now);
    const std::size_t every = std::max<std::size_t>(1, config_.entry_sweep_every);
    if (tick_count_++ % every == 0) sweep_entries(now);
    if (running_) {
        tick_event_ =
            network_->simulator().schedule(config_.interval, [this] { tick(); });
    }
}

void Watchdog::raise(const std::string& watchdog, const std::string& node,
                     const std::string& group, const std::string& detail) {
    WatchdogViolation v;
    v.at = network_->simulator().now();
    v.watchdog = watchdog;
    v.node = node;
    v.group = group;
    v.detail = detail;
    if (recorder_ != nullptr) {
        v.postmortem_summary = recorder_->drop_summary();
        if (postmortems_emitted_ < config_.max_postmortems) {
            v.postmortem_json = recorder_->dump_json();
            ++postmortems_emitted_;
        }
    }
    if (watchdog == "lan-delivery") {
        violations_lan_->inc();
    } else if (watchdog == "iif-rpf") {
        violations_iif_->inc();
    } else {
        violations_stale_->inc();
    }
    network_->telemetry().emit(telemetry::EventType::kWatchdogViolation, node,
                               "watchdog", group, watchdog + ": " + detail);
    violations_.push_back(std::move(v));
}

bool Watchdog::confirm(const std::string& key) {
    if (raised_.contains(key)) return false;
    const auto it = suspects_.find(key);
    // Confirmed only when the same problem was present in the immediately
    // preceding full sweep — one-sweep transients (mid-convergence churn)
    // never fire.
    if (it != suspects_.end() && sweep_ > 0 && it->second == sweep_ - 1) {
        raised_.insert(key);
        suspects_.erase(it);
        return true;
    }
    suspects_[key] = sweep_;
    return false;
}

void Watchdog::sweep_hosts(sim::Time now) {
    const auto& hosts = network_->hosts();
    if (host_cursor_.size() < hosts.size()) host_cursor_.resize(hosts.size(), 0);
    for (std::size_t i = 0; i < hosts.size(); ++i) {
        const topo::Host& host = *hosts[i];
        const auto& recs = host.received();
        for (std::size_t j = host_cursor_[i]; j < recs.size(); ++j) {
            const topo::Host::ReceivedRecord& rec = recs[j];
            StreamState& st = streams_[{host.id(), rec.source, rec.group}];
            if (st.max_seq == 0) {
                // First packet of this stream the watchdog sees: anchor
                // here, don't backfill gaps from before it was watching.
                st.anchor = rec.seq;
                st.max_seq = rec.seq;
                continue;
            }
            if (rec.seq > st.max_seq) {
                // In-order fast path: nothing below needs touching.
                if (rec.seq > st.max_seq + 1) {
                    if (loss_expected_) {
                        st.gaps_untracked = true;
                    } else {
                        for (std::uint64_t s = st.max_seq + 1; s < rec.seq; ++s) {
                            if (st.pending.size() >= kMaxPendingGaps) {
                                st.gaps_untracked = true;
                                break;
                            }
                            st.pending.emplace(s, rec.at + config_.gap_grace);
                        }
                    }
                }
                st.max_seq = rec.seq;
                continue;
            }
            if (const auto gap = st.pending.find(rec.seq); gap != st.pending.end()) {
                st.pending.erase(gap); // arrived late — reordering, not loss
                continue;
            }
            if (rec.seq < st.anchor) continue; // pre-anchor straggler
            // At or below max_seq, not a tracked gap, not pre-anchor: this
            // seq was delivered before — unless gap tracking was incomplete,
            // in which case a late arrival is indistinguishable and we stay
            // conservative.
            if (!st.gaps_untracked) {
                ++host_dupes_[host.id()]; // exact (source,group,seq) repeat
            }
        }
        host_cursor_[i] = recs.size();

        const auto dup_it = host_dupes_.find(host.id());
        const std::size_t dupes = dup_it == host_dupes_.end() ? 0 : dup_it->second;
        if (dupes > config_.duplicate_bound && !dup_reported_.contains(host.id())) {
            dup_reported_[host.id()] = dupes;
            raise("lan-delivery", host.name(), "",
                  "saw " + std::to_string(dupes) +
                      " duplicate data packets (bound " +
                      std::to_string(config_.duplicate_bound) +
                      ") -- forwarding loop or missing prune");
        }
    }

    if (loss_expected_) return;
    // Expired gaps are lost packets: the §3.3 lossless-switchover claim
    // (and plain tree integrity) violated on a clean run.
    for (auto& [key, st] : streams_) {
        std::string lost;
        for (auto it = st.pending.begin(); it != st.pending.end();) {
            if (it->second <= now) {
                lost += (lost.empty() ? "" : ",") + std::to_string(it->first);
                it = st.pending.erase(it);
            } else {
                ++it;
            }
        }
        if (lost.empty()) continue;
        const auto& [host_id, source, group] = key;
        const std::string host_name =
            recorder_ != nullptr ? recorder_->node_name(host_id) : std::string();
        std::string name = host_name;
        if (name.empty()) {
            for (const auto& h : network_->hosts()) {
                if (h->id() == host_id) name = h->name();
            }
        }
        raise("lan-delivery", name, group.to_string(),
              "never received seq(s) " + lost + " from " + source.to_string() +
                  " (gap outlived " +
                  std::to_string(config_.gap_grace / sim::kMillisecond) +
                  "ms grace) -- packets lost on a clean run");
    }
}

void Watchdog::sweep_entries(sim::Time now) {
    const auto& routers = network_->routers();
    std::size_t budget = config_.entry_budget;
    bool finished = false;
    while (budget > 0 && !finished) {
        if (router_cursor_ >= routers.size()) {
            router_cursor_ = 0;
            entry_cursor_ = {};
            ++sweep_;
            finished = true;
            break;
        }
        const topo::Router& router = *routers[router_cursor_];
        const mcast::ForwardingCache* cache = resolver_ ? resolver_(router) : nullptr;
        if (cache == nullptr) {
            ++router_cursor_;
            entry_cursor_ = {};
            continue;
        }
        const std::size_t visited = cache->visit_entries(
            entry_cursor_, budget, [&](const mcast::ForwardingEntry& e) {
                check_entry(router, *cache, e, now);
            });
        budget -= visited;
        entries_scanned_total_ += visited;
        if (entry_cursor_.wrapped) {
            ++router_cursor_;
            entry_cursor_ = {};
        }
    }
}

void Watchdog::check_entry(const topo::Router& router,
                           const mcast::ForwardingCache& cache,
                           const mcast::ForwardingEntry& entry, sim::Time now) {
    // Healthy entries are the overwhelming common case and this runs for
    // every cache entry on every sweep, so the predicates below mirror
    // entry_iif_problems allocation-free; the string-building diagnosis is
    // reached only once an entry has already failed one of them.
    bool iif_suspect = false;
    if (entry.iif() >= 0) {
        entry.for_each_live_oif(now, [&](int oif) {
            if (oif == entry.iif()) iif_suspect = true;
        });
    }
    if (!entry.wildcard() && entry.rp_bit()) {
        const mcast::ForwardingEntry* shadow_wc = cache.find_wc(entry.group());
        if (shadow_wc == nullptr || shadow_wc->iif() != entry.iif()) {
            iif_suspect = true;
        }
    } else if (entry.wildcard() && entry.source_or_rp() == router.router_id()) {
        if (entry.iif() != -1) iif_suspect = true;
    } else {
        const auto route = router.route_to(entry.source_or_rp());
        if (route && route->ifindex != entry.iif()) iif_suspect = true;
    }
    const bool stale =
        entry.delete_at() > 0 && now > entry.delete_at() + config_.stale_slack;
    if (!iif_suspect && !stale) return;

    EntryView view;
    view.wildcard = entry.wildcard();
    view.rp_bit = entry.rp_bit();
    view.iif = entry.iif();
    view.root = entry.source_or_rp();
    view.root_known = true;
    view.oifs = entry.live_oifs(now);

    EntryView shadow;
    const mcast::ForwardingEntry* wc = nullptr;
    if (!entry.wildcard() && entry.rp_bit()) {
        wc = cache.find_wc(entry.group());
        if (wc != nullptr) {
            shadow.wildcard = true;
            shadow.iif = wc->iif();
        }
    }
    const std::string id = router.name() + " " + entry.describe();
    for (const std::string& problem :
         entry_iif_problems(router, view, wc != nullptr ? &shadow : nullptr)) {
        if (confirm("iif-rpf|" + id + "|" + problem)) {
            raise("iif-rpf", router.name(), entry.group().to_string(),
                  id + ": " + problem);
        }
    }

    // Soft-state leak: the delete deadline passed long ago and the entry is
    // still here — the reaper lost track of it (§3.6's 3× refresh bound).
    if (entry.delete_at() > 0 && now > entry.delete_at() + config_.stale_slack) {
        const sim::Time overdue = now - entry.delete_at();
        if (confirm("stale|" + id)) {
            raise("stale-entry", router.name(), entry.group().to_string(),
                  id + ": overdue for deletion by " +
                      std::to_string(overdue / sim::kMillisecond) + "ms");
        }
    }
}

std::string Watchdog::dump() const {
    std::string out;
    char line[64];
    for (const WatchdogViolation& v : violations_) {
        std::snprintf(line, sizeof(line), "%10.6f  ",
                      static_cast<double>(v.at) / sim::kSecond);
        out += line;
        out += v.watchdog + "  " + v.node;
        if (!v.group.empty()) out += " " + v.group;
        out += ": " + v.detail + "\n";
        if (!v.postmortem_summary.empty()) {
            out += "            drops: " + v.postmortem_summary + "\n";
        }
    }
    return out;
}

} // namespace pimlib::check
