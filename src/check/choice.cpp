#include "check/choice.hpp"

#include <algorithm>
#include <charconv>

namespace pimlib::check {

std::string format_choices(const ChoiceSet& set) {
    std::string out;
    for (const Pick& pick : set) {
        if (!out.empty()) out += ',';
        out += std::to_string(pick.index) + ':' + std::to_string(pick.value);
    }
    return out;
}

std::optional<ChoiceSet> parse_choices(const std::string& text) {
    ChoiceSet out;
    if (!text.empty() && text.back() == ',') return std::nullopt;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find(',', pos);
        if (end == std::string::npos) end = text.size();
        const std::string_view item{text.data() + pos, end - pos};
        const std::size_t colon = item.find(':');
        if (colon == std::string_view::npos) return std::nullopt;
        Pick pick;
        auto [p1, e1] = std::from_chars(item.data(), item.data() + colon, pick.index);
        auto [p2, e2] = std::from_chars(item.data() + colon + 1,
                                        item.data() + item.size(), pick.value);
        if (e1 != std::errc{} || e2 != std::errc{} || p1 != item.data() + colon ||
            p2 != item.data() + item.size()) {
            return std::nullopt;
        }
        out.push_back(pick);
        pos = end + 1;
    }
    std::sort(out.begin(), out.end());
    return out;
}

ChoiceRecorder::ChoiceRecorder(ChoiceSet forced) : forced_(std::move(forced)) {
    std::sort(forced_.begin(), forced_.end());
}

std::size_t ChoiceRecorder::choose(std::size_t n, sim::ChoicePoint point) {
    const auto index = static_cast<std::uint32_t>(trace_.size());
    std::size_t pick = 0;
    if (cursor_ < forced_.size() && forced_[cursor_].index == index) {
        if (forced_[cursor_].value < n) {
            pick = forced_[cursor_].value;
            ++applied_;
        }
        ++cursor_;
    } else if (point.kind == sim::ChoicePoint::Kind::kFrameLoss && n > 1 &&
               sim_ != nullptr) {
        const sim::Time now = sim_->now();
        for (const LossWindow& w : windows_) {
            if (w.segment == point.detail && now >= w.from && now < w.to) {
                pick = 1; // drop the frame
                break;
            }
        }
    }
    trace_.push_back(ChoiceRec{point, static_cast<std::uint32_t>(n),
                               static_cast<std::uint32_t>(pick),
                               sim_ != nullptr ? sim_->now() : 0});
    return pick;
}

} // namespace pimlib::check
