// Controllable nondeterminism for the state-space checker.
//
// The simulator consults an installed sim::ChoiceSource at every genuine
// decision point: same-timestamp event ordering, per-frame delivery vs.
// loss, and (scheduled by the checker's scenarios) fault placement. The
// ChoiceRecorder here is the checker's implementation of that interface:
// it replays a *sparse* set of forced picks — everything not forced takes
// alternative 0, which is exactly the behavior an unchecked simulation
// exhibits — and records every decision point it was consulted about.
//
// A branch of the search is therefore identified by its ChoiceSet alone;
// re-running the scenario with the same set reproduces the execution
// deterministically (all RNGs in the stack are seeded). This is the classic
// stateless-search design: no simulator snapshotting, just replay.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace pimlib::check {

/// One forced decision: the `index`-th choose() call of the run returns
/// `value` instead of the default 0.
struct Pick {
    std::uint32_t index = 0;
    std::uint32_t value = 0;

    friend bool operator==(const Pick&, const Pick&) = default;
    friend auto operator<=>(const Pick&, const Pick&) = default;
};

/// Sparse branch identity, kept sorted by index. The empty set is the
/// baseline deterministic run.
using ChoiceSet = std::vector<Pick>;

/// One decision point the simulation consulted, as recorded during a run.
struct ChoiceRec {
    sim::ChoicePoint point;
    std::uint32_t alternatives = 0;
    std::uint32_t pick = 0;
    sim::Time at = 0;
};

/// "17:1,42:2" — the --replay wire format of pimcheck. Empty string is the
/// empty set.
[[nodiscard]] std::string format_choices(const ChoiceSet& set);
[[nodiscard]] std::optional<ChoiceSet> parse_choices(const std::string& text);

/// An environment overlay on top of the forced picks: every frame-loss
/// decision on `segment` with a timestamp in [from, to) takes the "drop"
/// alternative. Used by test triggers for loss-dependent seeded bugs —
/// unlike a Pick it survives trace reshaping, because it keys on (segment,
/// time) instead of a brittle decision index. The drops are recorded in
/// the trace like any other non-default pick, so the resulting run's
/// trace is still a valid, replayable ChoiceSet.
struct LossWindow {
    int segment = -1;
    sim::Time from = 0;
    sim::Time to = 0;
};

class ChoiceRecorder final : public sim::ChoiceSource {
public:
    explicit ChoiceRecorder(ChoiceSet forced = {});

    /// The simulator whose clock stamps recorded decisions.
    void bind(const sim::Simulator& sim) { sim_ = &sim; }

    void set_loss_windows(std::vector<LossWindow> windows) {
        windows_ = std::move(windows);
    }

    std::size_t choose(std::size_t n, sim::ChoicePoint point) override;

    [[nodiscard]] const std::vector<ChoiceRec>& trace() const { return trace_; }
    [[nodiscard]] const ChoiceSet& forced() const { return forced_; }
    /// True if every forced pick was both reached and in range. A shorter
    /// or reshaped execution (prefix inconsistent with this scenario) makes
    /// this false — the explorer discards such branches.
    [[nodiscard]] bool fully_applied() const {
        return applied_ == forced_.size();
    }

private:
    ChoiceSet forced_;
    std::vector<LossWindow> windows_;
    const sim::Simulator* sim_ = nullptr;
    std::vector<ChoiceRec> trace_;
    std::size_t cursor_ = 0;  // next forced_ entry to consume
    std::size_t applied_ = 0; // forced picks actually taken
};

} // namespace pimlib::check
