#include "check/backward.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <map>
#include <queue>
#include <set>

#include "telemetry/profiler/profiler.hpp"

namespace pimlib::check {
namespace {

using Clock = std::chrono::steady_clock;

/// What the engine knows about a target violation: which oracles witness
/// it, and which causal shape pre-images it. `lan_anchored` targets are
/// caused by losing a message of the LAN election exchange that begins
/// when data first appears on a LAN; deadline-anchored targets are caused
/// by soft state decaying undetected, so the most recent unrepaired
/// refresh losses on member↔critical-router links rank first.
struct TargetSpec {
    std::vector<std::string> oracles;
    bool lan_anchored = false;
    std::string default_scenario;
};

const std::map<std::string, TargetSpec>& target_specs() {
    static const std::map<std::string, TargetSpec> specs = {
        {"duplicate-on-lan",
         {{"duplicate-bound", "steady-duplicate", "steady-redundancy",
           "forwarding-loop"},
          true,
          "lan-assert"}},
        {"assert-loser-forwarding", {{"assert-winner"}, true, "lan-assert"}},
        {"blackhole",
         {{"delivery", "rp-failover", "bsr-rp-rehoming", "convergence"},
          false,
          "rp-failover"}},
        {"stale-rp-set",
         {{"rp-set-agreement", "exactly-one-bsr", "bsr-rp-rehoming"},
          false,
          "bsr-failover"}},
    };
    return specs;
}

/// "crash-router-R1" -> {R1}; "cut-link-A-C" -> {A, C}. The fault
/// candidates name exactly the routers whose death the scenario author
/// considered protocol-critical — backward search borrows that judgment.
std::vector<std::string> critical_routers(const ScenarioInfo& info) {
    std::vector<std::string> routers;
    for (const std::string& label : info.fault_candidates) {
        static const std::string kCrash = "crash-router-";
        static const std::string kCut = "cut-link-";
        if (label.rfind(kCrash, 0) == 0) {
            routers.push_back(label.substr(kCrash.size()));
        } else if (label.rfind(kCut, 0) == 0) {
            const std::string rest = label.substr(kCut.size());
            const std::size_t dash = rest.find('-');
            if (dash != std::string::npos) {
                routers.push_back(rest.substr(0, dash));
                routers.push_back(rest.substr(dash + 1));
            }
        }
    }
    return routers;
}

/// Router names a segment name touches: "M-R1" -> {M, R1}; "lan0(M)" ->
/// {M}; "dlan" -> {}.
std::vector<std::string> segment_endpoints(const std::string& name) {
    const std::size_t paren = name.find('(');
    if (paren != std::string::npos) {
        const std::size_t close = name.find(')', paren);
        if (close != std::string::npos) {
            return {name.substr(paren + 1, close - paren - 1)};
        }
        return {};
    }
    if (name.find("lan") != std::string::npos) return {};
    const std::size_t dash = name.find('-');
    if (dash == std::string::npos) return {name};
    return {name.substr(0, dash), name.substr(dash + 1)};
}

bool is_lan(const std::string& name) {
    return name.find("lan") != std::string::npos;
}

bool contains(const std::vector<std::string>& haystack, const std::string& s) {
    return std::find(haystack.begin(), haystack.end(), s) != haystack.end();
}

struct Candidate {
    Pick pick;
    int tier = 0;
    /// Within a tier: smaller sorts first. LAN-anchored tiers use the
    /// decision time (the election happens right after data arrives);
    /// deadline-anchored tiers use horizon - time (the most recent loss has
    /// the least repair opportunity before the oracles judge).
    sim::Time order = 0;
};

/// Ranks every single-change extension of `trace` by pre-image relevance
/// for `spec`. Pure trace analysis — no replays.
std::vector<Candidate> rank_candidates(const ScenarioInfo& info,
                                       const TargetSpec& spec,
                                       const std::vector<ChoiceRec>& trace) {
    const std::vector<std::string> critical = critical_routers(info);

    // When data first crossed each segment: the LAN election anchor.
    std::map<int, sim::Time> first_data;
    for (const ChoiceRec& rec : trace) {
        if (rec.point.kind != sim::ChoicePoint::Kind::kFrameLoss) continue;
        if (rec.point.control) continue;
        if (!first_data.contains(rec.point.detail)) {
            first_data[rec.point.detail] = rec.at;
        }
    }

    std::vector<Candidate> out;
    for (std::uint32_t i = 0; i < trace.size(); ++i) {
        const ChoiceRec& rec = trace[i];
        if (rec.alternatives < 2 || rec.pick != 0) continue;

        if (rec.point.kind == sim::ChoicePoint::Kind::kFault) {
            // A handful per scenario, each a first-class cause. Most direct
            // pre-image of decayed-state targets (the critical router died);
            // for LAN targets the election messages outrank them.
            for (std::uint32_t v = 1; v < rec.alternatives; ++v) {
                out.push_back({Pick{i, v}, spec.lan_anchored ? 1 : 0,
                               static_cast<sim::Time>(v)});
            }
            continue;
        }
        if (rec.point.kind == sim::ChoicePoint::Kind::kEventOrder) {
            // Reordering same-timestamp events is the least direct cause of
            // either target shape: always the last resort.
            for (std::uint32_t v = 1; v < rec.alternatives; ++v) {
                out.push_back({Pick{i, v}, 5, rec.at});
            }
            continue;
        }

        const auto seg = static_cast<std::size_t>(rec.point.detail);
        const std::string name =
            seg < info.segments.size() ? info.segments[seg] : "";
        const std::vector<std::string> ends = segment_endpoints(name);
        const bool touches_critical = std::any_of(
            ends.begin(), ends.end(),
            [&](const std::string& r) { return contains(critical, r); });
        const bool touches_member = std::any_of(
            ends.begin(), ends.end(),
            [&](const std::string& r) { return contains(info.member_routers, r); });

        Candidate cand{Pick{i, 1}, 4, rec.at};
        if (rec.at >= info.horizon) {
            // Convergence-probe era: the oracles already judged the run at
            // the horizon, so a later loss cannot pre-image the target.
            out.push_back(cand);
            continue;
        }
        if (spec.lan_anchored) {
            // Pre-image of a failed LAN election: a lost control message on
            // a LAN, in the exchange triggered by the first data arrival.
            const auto anchor = first_data.find(rec.point.detail);
            const bool after_data =
                anchor != first_data.end() && rec.at >= anchor->second;
            if (is_lan(name) && rec.point.control && after_data) {
                cand.tier = 0;
            } else if (is_lan(name) && rec.point.control) {
                cand.tier = 2;
            } else if (rec.point.control) {
                cand.tier = 3;
            }
        } else if (rec.point.control) {
            // Pre-image of decayed soft state: a lost refresh between a
            // member and a critical router, judged latest-first against the
            // deadline (an early loss is repaired by the next refresh).
            if (touches_member && touches_critical) {
                cand.tier = 1;
            } else if (touches_critical) {
                cand.tier = 2;
            } else {
                cand.tier = 3;
            }
            cand.order = info.horizon > rec.at ? info.horizon - rec.at
                                               : sim::Time{0};
        }
        out.push_back(cand);
    }

    std::stable_sort(out.begin(), out.end(),
                     [](const Candidate& a, const Candidate& b) {
                         if (a.tier != b.tier) return a.tier < b.tier;
                         return a.order < b.order;
                     });
    return out;
}

/// Greedy target-preserving minimization, the backward twin of
/// shrink_counterexample: drops picks while the run still violates an
/// oracle in the target's family.
void publish_metrics(const BackwardOptions& options,
                     const BackwardReport& report) {
    if (options.metrics == nullptr) return;
    const telemetry::LabelSet labels{
        {"engine", "backward"},
        {"scenario", report.scenario},
        {"mutation", options.mutation.empty() ? "none" : options.mutation},
        {"target", report.target}};
    telemetry::Registry& reg = *options.metrics;
    reg.counter("pimlib_check_runs_total", labels,
                "scenario replays executed by the checker")
        .inc(report.replays);
    reg.counter("pimlib_check_replays_to_hit_total", labels,
                "replays up to and including the first target hit")
        .inc(report.replays_to_hit);
    reg.counter("pimlib_check_violating_runs_total", labels,
                "replays that tripped an invariant oracle")
        .inc(report.violating_runs);
    reg.counter("pimlib_check_target_hits_total", labels,
                "replays that tripped the target's witness family")
        .inc(report.target_hits);
    reg.counter("pimlib_check_skipped_branches_total", labels,
                "inconsistent choice sets discarded on replay")
        .inc(report.skipped_branches);
    reg.counter("pimlib_check_counterexamples_total", labels,
                "shrunk replayable counterexamples emitted")
        .inc(report.counterexamples.size());
}

ChoiceSet shrink_to_target(const std::string& scenario,
                           const BackwardOptions& options, ChoiceSet failing,
                           std::size_t* replays) {
    const auto violates = [&](const ChoiceSet& candidate) {
        RunConfig cfg;
        cfg.choices = candidate;
        cfg.mutation = options.mutation;
        cfg.checkpoint_every = options.checkpoint_every;
        ++*replays;
        PROF_ZONE("check.explore");
        return target_matches(options.target,
                              run_scenario(scenario, cfg).violations);
    };
    bool shrunk = true;
    while (shrunk && !failing.empty()) {
        shrunk = false;
        for (std::size_t i = 0; i < failing.size(); ++i) {
            ChoiceSet candidate = failing;
            candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
            if (violates(candidate)) {
                failing = std::move(candidate);
                shrunk = true;
                break;
            }
        }
    }
    return failing;
}

} // namespace

const std::vector<std::string>& backward_targets() {
    static const std::vector<std::string> targets = [] {
        std::vector<std::string> v;
        for (const auto& [name, spec] : target_specs()) v.push_back(name);
        return v;
    }();
    return targets;
}

bool target_matches(const std::string& target,
                    const std::vector<Violation>& violations) {
    const auto it = target_specs().find(target);
    if (it == target_specs().end()) return false;
    for (const Violation& v : violations) {
        if (contains(it->second.oracles, v.oracle)) return true;
    }
    return false;
}

std::string target_for_mutation(const std::string& mutation) {
    static const std::map<std::string, std::string> targets = {
        {"skip-spt-bit-handshake", "blackhole"},
        {"no-rp-bit-prune", "duplicate-on-lan"},
        {"assert-loser-keeps-forwarding", "assert-loser-forwarding"},
        {"stale-rp-set-after-bsr-failover", "stale-rp-set"},
        {"one-shot-assert", "duplicate-on-lan"},
        {"fragile-rp-holdtime", "blackhole"},
    };
    const auto it = targets.find(mutation);
    return it == targets.end() ? "" : it->second;
}

std::string default_scenario_for_target(const std::string& target) {
    const auto it = target_specs().find(target);
    assert(it != target_specs().end() &&
           "unknown target; validate against backward_targets()");
    return it->second.default_scenario;
}

BackwardReport backward_search(const BackwardOptions& options) {
    const auto spec_it = target_specs().find(options.target);
    assert(spec_it != target_specs().end() &&
           "unknown target; validate against backward_targets()");
    const TargetSpec& spec = spec_it->second;

    BackwardReport report;
    report.target = options.target;
    report.scenario = options.scenario.empty() ? spec.default_scenario
                                               : options.scenario;
    const ScenarioInfo& info = scenario_info(report.scenario);

    const auto start = Clock::now();
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(options.time_budget_seconds));

    const auto run = [&](const ChoiceSet& choices, bool collect_trace) {
        RunConfig cfg;
        cfg.choices = choices;
        cfg.mutation = options.mutation;
        cfg.collect_trace = collect_trace;
        cfg.checkpoint_every = options.checkpoint_every;
        ++report.replays;
        PROF_ZONE("check.explore");
        return run_scenario(report.scenario, cfg);
    };

    const auto emit = [&](const ChoiceSet& choices,
                          const RunResult& result) {
        ChoiceSet minimal =
            shrink_to_target(report.scenario, options, choices, &report.replays);
        RunResult replay = run(minimal, true);
        if (!target_matches(options.target, replay.violations)) {
            // Shrinking is best-effort; fall back to the original branch.
            minimal = choices;
            replay = run(minimal, true);
        }
        Counterexample ce;
        ce.choices = minimal;
        ce.violations = target_matches(options.target, replay.violations)
                            ? replay.violations
                            : result.violations;
        ce.script = replay_script(report.scenario, options.mutation, replay);
        ce.trace_dump = std::move(replay.trace_dump);
        ce.provenance_dump = std::move(replay.provenance_dump);
        ce.provenance_summary = std::move(replay.provenance_summary);
        report.counterexamples.push_back(std::move(ce));
    };

    // Reconnaissance: the deterministic baseline yields both the decision
    // trace the ranking needs and the cheapest possible hit (a mutation
    // whose symptom needs no fault at all).
    const RunResult baseline = run({}, false);
    if (!baseline.violations.empty()) {
        ++report.violating_runs;
        if (target_matches(options.target, baseline.violations)) {
            ++report.target_hits;
            report.replays_to_hit = report.replays;
            emit({}, baseline);
            report.elapsed_seconds =
                std::chrono::duration<double>(Clock::now() - start).count();
            publish_metrics(options, report);
            return report;
        }
    }

    // Best-first over ranked pre-image candidates, level by level: every
    // single-change candidate is tried (in rank order) before any two-
    // change composition — a composition can only be the *minimal* cause
    // when no single change suffices, so interleaving depths just dilutes
    // the ranking.
    struct Node {
        std::size_t depth = 0;
        std::size_t score = 0;
        std::size_t seq = 0; // FIFO tiebreak, keeps the order deterministic
        ChoiceSet choices;
        bool operator>(const Node& other) const {
            if (depth != other.depth) return depth > other.depth;
            return score != other.score ? score > other.score : seq > other.seq;
        }
    };
    std::priority_queue<Node, std::vector<Node>, std::greater<>> queue;
    std::set<ChoiceSet> visited;
    std::size_t seq = 0;

    const auto push_children = [&](const ChoiceSet& branch, std::size_t score,
                                   const std::vector<ChoiceRec>& trace) {
        bool have_loss = false;
        bool have_fault = false;
        for (const Pick& pick : branch) {
            if (pick.index < trace.size()) {
                const auto kind = trace[pick.index].point.kind;
                have_loss |= kind == sim::ChoicePoint::Kind::kFrameLoss;
                have_fault |= kind == sim::ChoicePoint::Kind::kFault;
            }
        }
        // Compositions are a last resort (see Node ordering), so keep only
        // the best-ranked extensions of an already-changed branch.
        const std::size_t cap =
            branch.empty() ? std::numeric_limits<std::size_t>::max() : 64;
        std::size_t rank = 0;
        std::size_t pushed = 0;
        for (const Candidate& cand : rank_candidates(info, spec, trace)) {
            if (pushed >= cap) break;
            const auto kind = trace[cand.pick.index].point.kind;
            // Single-fault semantics, like the forward explorer: at most
            // one loss and one fault per execution.
            if (kind == sim::ChoicePoint::Kind::kFrameLoss && have_loss) continue;
            if (kind == sim::ChoicePoint::Kind::kFault && have_fault) continue;
            ChoiceSet child = branch;
            child.push_back(cand.pick);
            std::sort(child.begin(), child.end());
            ++report.candidates_ranked;
            if (visited.insert(child).second) {
                queue.push(Node{branch.size() + 1, score + rank, seq++,
                                std::move(child)});
                ++pushed;
            }
            ++rank;
        }
    };
    push_children({}, 0, baseline.trace);

    while (!queue.empty() && report.replays < options.max_replays &&
           Clock::now() < deadline &&
           report.counterexamples.size() < options.max_counterexamples) {
        const Node node = queue.top();
        queue.pop();

        const RunResult result = run(node.choices, false);
        if (!result.choices_applied) {
            ++report.skipped_branches;
            continue;
        }
        if (!result.violations.empty()) {
            ++report.violating_runs;
            if (target_matches(options.target, result.violations)) {
                ++report.target_hits;
                if (report.replays_to_hit == 0) {
                    report.replays_to_hit = report.replays;
                }
                emit(node.choices, result);
            }
            continue; // don't compose further changes onto a failing branch
        }
        if (node.choices.size() < options.max_depth) {
            push_children(node.choices, node.score, result.trace);
        }
    }

    report.exhausted = queue.empty();
    report.elapsed_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    publish_metrics(options, report);
    return report;
}

} // namespace pimlib::check
