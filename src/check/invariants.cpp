#include "check/invariants.hpp"

namespace pimlib::check {

std::vector<std::string> entry_iif_problems(const topo::Router& router,
                                            const EntryView& entry,
                                            const EntryView* wc_shadow) {
    std::vector<std::string> problems;
    for (const int oif : entry.oifs) {
        if (oif == entry.iif && entry.iif >= 0) {
            problems.push_back("iif " + std::to_string(entry.iif) +
                               " also appears in its own oif list");
        }
    }
    if (!entry.root_known) return problems;
    if (entry.wildcard || !entry.rp_bit) {
        // (*,G) roots at the RP, a real (S,G) at its source; both must
        // point the iif along the unicast RPF path toward that root.
        if (entry.wildcard && entry.root == router.router_id()) {
            if (entry.iif != -1) {
                problems.push_back("entry at its own RP has iif " +
                                   std::to_string(entry.iif) + ", want -1");
            }
            return problems;
        }
        const auto route = router.route_to(entry.root);
        if (route && route->ifindex != entry.iif) {
            problems.push_back("iif " + std::to_string(entry.iif) +
                               " disagrees with unicast RPF interface " +
                               std::to_string(route->ifindex) + " toward " +
                               entry.root.to_string());
        }
    } else {
        // Negative cache: must shadow a (*,G) and share its iif (§3.3).
        if (wc_shadow == nullptr) {
            problems.push_back("RP-bit entry outlives its (*,G)");
        } else if (wc_shadow->iif != entry.iif) {
            problems.push_back("RP-bit iif " + std::to_string(entry.iif) +
                               " != (*,G) iif " + std::to_string(wc_shadow->iif));
        }
    }
    return problems;
}

} // namespace pimlib::check
