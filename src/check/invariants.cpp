#include "check/invariants.hpp"

#include <algorithm>

namespace pimlib::check {

std::vector<std::string> entry_iif_problems(const topo::Router& router,
                                            const EntryView& entry,
                                            const EntryView* wc_shadow) {
    std::vector<std::string> problems;
    for (const int oif : entry.oifs) {
        if (oif == entry.iif && entry.iif >= 0) {
            problems.push_back("iif " + std::to_string(entry.iif) +
                               " also appears in its own oif list");
        }
    }
    if (!entry.root_known) return problems;
    if (entry.wildcard || !entry.rp_bit) {
        // (*,G) roots at the RP, a real (S,G) at its source; both must
        // point the iif along the unicast RPF path toward that root.
        if (entry.wildcard && entry.root == router.router_id()) {
            if (entry.iif != -1) {
                problems.push_back("entry at its own RP has iif " +
                                   std::to_string(entry.iif) + ", want -1");
            }
            return problems;
        }
        const auto route = router.route_to(entry.root);
        if (route && route->ifindex != entry.iif) {
            problems.push_back("iif " + std::to_string(entry.iif) +
                               " disagrees with unicast RPF interface " +
                               std::to_string(route->ifindex) + " toward " +
                               entry.root.to_string());
        }
    } else {
        // Negative cache: must shadow a (*,G) and share its iif (§3.3).
        if (wc_shadow == nullptr) {
            problems.push_back("RP-bit entry outlives its (*,G)");
        } else if (wc_shadow->iif != entry.iif) {
            problems.push_back("RP-bit iif " + std::to_string(entry.iif) +
                               " != (*,G) iif " + std::to_string(wc_shadow->iif));
        }
    }
    return problems;
}

namespace {

std::string segment_name(const std::vector<std::string>& names, int id) {
    const auto i = static_cast<std::size_t>(id);
    return i < names.size() ? names[i] : std::to_string(id);
}

} // namespace

std::vector<Violation> loop_violations(const CrossingMap& crossings,
                                       const std::vector<std::string>& segment_names,
                                       std::uint64_t ttl_drops) {
    std::vector<Violation> out;
    if (ttl_drops > 0) {
        out.push_back({"forwarding-loop",
                       std::to_string(ttl_drops) +
                           " data packet(s) dropped for TTL exhaustion"});
    }
    int reported = 0;
    for (const auto& [key, count] : crossings) {
        if (count <= kCrossingBound) continue;
        if (++reported > 3) break;
        out.push_back({"forwarding-loop",
                       "seq " + std::to_string(key.first) + " crossed segment " +
                           segment_name(segment_names, key.second) + " " +
                           std::to_string(count) + " times"});
    }
    return out;
}

std::vector<Violation> duplicate_bound_violations(const std::string& host,
                                                  std::size_t duplicates) {
    std::vector<Violation> out;
    if (duplicates > kDuplicateBound) {
        out.push_back({"duplicate-bound",
                       host + " saw " + std::to_string(duplicates) +
                           " duplicate data packets (bound " +
                           std::to_string(kDuplicateBound) + ")"});
    }
    return out;
}

std::vector<Violation> delivery_violations(const std::string& host,
                                           const std::set<std::uint64_t>& got,
                                           std::uint64_t first_seq,
                                           std::uint64_t last_seq) {
    std::vector<Violation> out;
    std::string missing;
    for (std::uint64_t s = first_seq; s <= last_seq; ++s) {
        if (!got.contains(s)) {
            missing += (missing.empty() ? "" : ",") + std::to_string(s);
        }
    }
    if (!missing.empty()) {
        out.push_back({"delivery", host + " never received seq(s) " + missing});
    }
    return out;
}

std::vector<Violation> steady_duplicate_violations(
    const std::string& host, const std::map<std::uint64_t, int>& steady_copies) {
    std::vector<Violation> out;
    for (const auto& [seq, copies] : steady_copies) {
        if (copies > 1) {
            out.push_back({"steady-duplicate",
                           host + " received steady seq " + std::to_string(seq) +
                               " " + std::to_string(copies) + " times"});
        }
    }
    return out;
}

std::vector<Violation> steady_redundancy_violations(
    const CrossingMap& crossings, const std::vector<std::string>& segment_names,
    std::uint64_t first_seq, std::uint64_t last_seq, int want_total) {
    std::vector<Violation> out;
    for (std::uint64_t s = first_seq; s <= last_seq; ++s) {
        int total = 0;
        std::string breakdown;
        for (const auto& [key, count] : crossings) {
            if (key.first != s) continue;
            total += count;
            breakdown += (breakdown.empty() ? "" : ", ") +
                         segment_name(segment_names, key.second) + "x" +
                         std::to_string(count);
        }
        if (total != want_total) {
            out.push_back({"steady-redundancy",
                           "steady seq " + std::to_string(s) + " crossed " +
                               std::to_string(total) + " segment(s), want " +
                               std::to_string(want_total) + " (" + breakdown +
                               ")"});
        }
    }
    return out;
}

std::vector<Violation> assert_winner_violations(const CrossingMap& crossings,
                                                int lan_segment,
                                                std::uint64_t first_seq,
                                                std::uint64_t last_seq) {
    std::vector<Violation> out;
    for (std::uint64_t s = first_seq; s <= last_seq; ++s) {
        int on_lan = 0;
        const auto it = crossings.find({s, lan_segment});
        if (it != crossings.end()) on_lan = it->second;
        if (on_lan != 1) {
            out.push_back({"assert-winner",
                           "steady seq " + std::to_string(s) + " crossed dlan " +
                               std::to_string(on_lan) +
                               " times; the assert election must leave "
                               "exactly one forwarder"});
        }
    }
    return out;
}

std::vector<Violation> rp_agreement_violations(
    const std::map<std::string, std::vector<net::Ipv4Address>>& derived,
    const std::string& group) {
    std::vector<Violation> out;
    std::vector<net::Ipv4Address> agreed;
    bool have_agreed = false;
    for (const auto& [name, rps] : derived) {
        if (rps.empty()) {
            out.push_back({"rp-set-agreement",
                           name + " derives no RP for " + group +
                               " from the learned set"});
            continue;
        }
        if (!have_agreed) {
            agreed = rps;
            have_agreed = true;
        } else if (rps != agreed) {
            out.push_back({"rp-set-agreement",
                           name + " maps " + group + " to " +
                               rps.front().to_string() + " while others map it to " +
                               agreed.front().to_string()});
        }
    }
    return out;
}

std::vector<Violation> rehoming_violations(
    const std::string& oracle, const telemetry::MribSnapshot& at_deadline,
    const std::vector<std::string>& members, const std::string& want_rp,
    const std::string& note) {
    std::vector<Violation> out;
    for (const telemetry::RouterMrib& r : at_deadline.routers) {
        if (std::find(members.begin(), members.end(), r.router) == members.end()) {
            continue;
        }
        bool has_wc = false;
        for (const telemetry::EntrySnapshot& entry : r.entries) {
            if (!entry.wildcard) continue;
            has_wc = true;
            if (entry.source_or_rp != want_rp) {
                out.push_back({oracle, r.router + " (*,G) still rooted at " +
                                           entry.source_or_rp + ", want " +
                                           want_rp + note});
            }
        }
        if (!has_wc) {
            out.push_back({oracle, r.router + " has no (*,G) at the " +
                                       (oracle == "rp-failover" ? "failover"
                                                                : "re-homing") +
                                       " deadline"});
        }
    }
    return out;
}

} // namespace pimlib::check
