// Backward fault-oriented search, after Helmy/Estrin/Gupta's fault-
// oriented test generation for PIM (cs/0007005): instead of exploring the
// schedule space forward and waiting for an oracle to trip, start from a
// *target* invariant violation, compute the protocol conditions that
// pre-image it, and search the small set of fault placements and message
// losses that can establish those conditions.
//
// The engine never inspects the code under test (it would defeat the
// point — the mutation is what we're hunting). It reasons only from:
//
//   - the target's semantics: which oracle family witnesses it, and which
//     *kind* of event can cause it. A persistent blackhole pre-images to
//     decayed soft state — a lost periodic control message on the path
//     between a member and the critical router, late enough that the next
//     refresh cannot repair it before the judgment deadline. A duplicate
//     burst on a LAN pre-images to a failed Assert election — a lost
//     Assert in the exchange right after data first appears on the LAN.
//   - the scenario's static metadata (check/scenario.hpp ScenarioInfo):
//     segment names, fault candidates, member routers, horizon.
//   - the baseline replay's decision trace: where control frames crossed
//     which segment at what time (sim::ChoicePoint::control).
//
// Candidate single-change branches are ranked by that pre-image relevance
// and replayed best-first; a hit is shrunk (target-preserving greedy
// minimization) and packaged as the same replayable Counterexample the
// forward explorer emits. Unfruitful branches are extended one more
// ranked change (fault + loss composition) up to max_depth.
#pragma once

#include <string>
#include <vector>

#include "check/explorer.hpp"
#include "check/scenario.hpp"

namespace pimlib::check {

struct BackwardOptions {
    /// Empty = default_scenario_for_target(target).
    std::string scenario;
    /// Seeded bug under test ("" = healthy protocol, search comes up dry).
    std::string mutation;
    /// One of backward_targets().
    std::string target = "blackhole";
    /// Hard caps; whichever trips first ends the search.
    std::size_t max_replays = 2000;
    double time_budget_seconds = 50.0;
    /// Changes per branch: 1 = single fault or single loss, 2 adds their
    /// composition (a crash whose recovery message then gets lost, ...).
    std::size_t max_depth = 2;
    std::size_t max_counterexamples = 1;
    sim::Time checkpoint_every = sim::kMillisecond;
    /// When set, the search publishes pimlib_check_* counters here on
    /// completion (replays, target hits, skipped branches, counterexamples)
    /// for CI metric artifacts.
    telemetry::Registry* metrics = nullptr;
};

struct BackwardReport {
    std::string scenario;
    std::string target;
    /// Replays executed, including the baseline reconnaissance run and the
    /// shrink/trace replays spent packaging counterexamples.
    std::size_t replays = 0;
    /// Replays up to and including the first target hit — the honest
    /// "runs to counterexample" figure to compare against the forward
    /// explorer's (whose ExploreReport::runs also excludes shrinking).
    std::size_t replays_to_hit = 0;
    /// Runs violating *any* oracle (a non-target hit is counted but not
    /// emitted — it belongs to a different target's search).
    std::size_t violating_runs = 0;
    /// Runs violating an oracle in the target's family.
    std::size_t target_hits = 0;
    std::size_t skipped_branches = 0; // choice sets inconsistent on replay
    /// Candidate branches ranked over the whole search (diagnostic).
    std::size_t candidates_ranked = 0;
    /// Every ranked candidate was replayed without a hit.
    bool exhausted = false;
    double elapsed_seconds = 0.0;
    std::vector<Counterexample> counterexamples;

    [[nodiscard]] bool found() const { return !counterexamples.empty(); }
};

/// The four target violations the engine knows how to pre-image.
[[nodiscard]] const std::vector<std::string>& backward_targets();

/// True when any violation's oracle is in `target`'s witness family.
/// False for unknown targets.
[[nodiscard]] bool target_matches(const std::string& target,
                                  const std::vector<Violation>& violations);

/// The target whose witness family catches `mutation`'s symptom, or ""
/// for unknown mutations. The CI mutation gate drives backward search
/// through this mapping.
[[nodiscard]] std::string target_for_mutation(const std::string& mutation);

/// The scenario world built to exercise `target`'s mechanism (aborts via
/// assert on unknown targets — validate against backward_targets()).
[[nodiscard]] std::string default_scenario_for_target(const std::string& target);

[[nodiscard]] BackwardReport backward_search(const BackwardOptions& options);

} // namespace pimlib::check
