// The per-entry iif/RPF invariant oracle, factored out of the offline
// checker so the online watchdog applies the *same* rules to live
// ForwardingEntry state that pimcheck applies to MRIB snapshots — the two
// detectors cannot drift apart.
//
// The rules come straight from the paper:
//   §2.3/§3.8  an entry's iif must agree with the unicast RPF interface
//              toward its root (the source for (S,G), the RP for (*,G))
//   §3         the iif must never appear in the entry's own oif list
//   §3.3 fn13  an (S,G)RP-bit negative cache must shadow a live (*,G) and
//              share its iif
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/ipv4.hpp"
#include "telemetry/snapshot.hpp"
#include "topo/router.hpp"

namespace pimlib::check {

/// One invariant-oracle failure. `oracle` names the rule (see the table in
/// scenario.hpp); `detail` is a human-readable account of the evidence.
struct Violation {
    std::string oracle;
    std::string detail;
};

/// (seq, segment id) -> number of times the checker group's data crossed
/// that segment. Built by the scenario driver's packet tap.
using CrossingMap = std::map<std::pair<std::uint64_t, int>, int>;

/// Bounds shared by the offline oracles. A data packet legitimately
/// crosses a segment once; the register/native overlap of an SPT
/// switchover can add a stray crossing or two — anything past
/// kCrossingBound means the packet is circling. Hosts may see a couple of
/// (source,seq) duplicates during make-before-break switchover; a
/// forwarding loop or failed LAN election blows far past kDuplicateBound.
inline constexpr int kCrossingBound = 4;
inline constexpr std::size_t kDuplicateBound = 6;

/// Protocol-neutral view of one forwarding entry, buildable from either a
/// live mcast::ForwardingEntry or a telemetry::EntrySnapshot.
struct EntryView {
    bool wildcard = false;
    bool rp_bit = false;
    int iif = -1;
    /// The entry's root: source for (S,G), RP for (*,G).
    net::Ipv4Address root{};
    bool root_known = false; // false skips the RPF-agreement check
    /// Oifs currently in the list (live ones for online checks).
    std::vector<int> oifs;
};

/// Evaluates one entry against `router`'s unicast RPF state. Returns one
/// human-readable fragment per problem (empty = entry is consistent).
/// `wc_shadow` is the same group's (*,G) entry when one exists — required
/// context for RP-bit negative-cache checks.
[[nodiscard]] std::vector<std::string> entry_iif_problems(
    const topo::Router& router, const EntryView& entry, const EntryView* wc_shadow);

// ---------------------------------------------------------------------------
// Pure oracle functions. Each takes plain evidence (crossing maps, received
// sequence sets, MRIB snapshots) and returns the violations it implies —
// no live network required, so tests/invariants_test.cpp exercises every
// rule against hand-built fixtures without running a scenario.
// ---------------------------------------------------------------------------

/// forwarding-loop: TTL-exhaustion drops, or any (seq, segment) crossing
/// count past kCrossingBound (at most 3 reported).
[[nodiscard]] std::vector<Violation> loop_violations(
    const CrossingMap& crossings, const std::vector<std::string>& segment_names,
    std::uint64_t ttl_drops);

/// duplicate-bound: a host saw more than kDuplicateBound (source,seq)
/// duplicates over the whole run.
[[nodiscard]] std::vector<Violation> duplicate_bound_violations(
    const std::string& host, std::size_t duplicates);

/// delivery: every sequence in [first_seq, last_seq] reached the host.
[[nodiscard]] std::vector<Violation> delivery_violations(
    const std::string& host, const std::set<std::uint64_t>& got,
    std::uint64_t first_seq, std::uint64_t last_seq);

/// steady-duplicate: zero duplicates in the post-convergence window.
/// `steady_copies` maps steady-window seq -> copies the host received.
[[nodiscard]] std::vector<Violation> steady_duplicate_violations(
    const std::string& host, const std::map<std::uint64_t, int>& steady_copies);

/// steady-redundancy: each steady-state seq in [first_seq, last_seq]
/// crossed exactly `want_total` segments in aggregate.
[[nodiscard]] std::vector<Violation> steady_redundancy_violations(
    const CrossingMap& crossings, const std::vector<std::string>& segment_names,
    std::uint64_t first_seq, std::uint64_t last_seq, int want_total);

/// assert-winner: each steady seq crossed the contested LAN segment
/// exactly once — the election must leave exactly one forwarder.
[[nodiscard]] std::vector<Violation> assert_winner_violations(
    const CrossingMap& crossings, int lan_segment, std::uint64_t first_seq,
    std::uint64_t last_seq);

/// rp-set-agreement (stale-RP detector): every live router derives the
/// same non-empty RP list for the group. `derived` maps router name ->
/// the RP list it computes from its learned set.
[[nodiscard]] std::vector<Violation> rp_agreement_violations(
    const std::map<std::string, std::vector<net::Ipv4Address>>& derived,
    const std::string& group);

/// Re-homing / blackhole detector shared by the rp-failover and
/// bsr-failover deadline oracles: every member router in `members` must
/// hold a (*,G) rooted at `want_rp` in the deadline snapshot — a missing
/// (*,G) is a blackhole, a wrong root is a failed (or spurious) failover.
/// `oracle` names the emitting rule; `note` is appended to wrong-root
/// details (e.g. " (primary RP crashed)").
[[nodiscard]] std::vector<Violation> rehoming_violations(
    const std::string& oracle, const telemetry::MribSnapshot& at_deadline,
    const std::vector<std::string>& members, const std::string& want_rp,
    const std::string& note);

} // namespace pimlib::check
