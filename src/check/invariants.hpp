// The per-entry iif/RPF invariant oracle, factored out of the offline
// checker so the online watchdog applies the *same* rules to live
// ForwardingEntry state that pimcheck applies to MRIB snapshots — the two
// detectors cannot drift apart.
//
// The rules come straight from the paper:
//   §2.3/§3.8  an entry's iif must agree with the unicast RPF interface
//              toward its root (the source for (S,G), the RP for (*,G))
//   §3         the iif must never appear in the entry's own oif list
//   §3.3 fn13  an (S,G)RP-bit negative cache must shadow a live (*,G) and
//              share its iif
#pragma once

#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "topo/router.hpp"

namespace pimlib::check {

/// Protocol-neutral view of one forwarding entry, buildable from either a
/// live mcast::ForwardingEntry or a telemetry::EntrySnapshot.
struct EntryView {
    bool wildcard = false;
    bool rp_bit = false;
    int iif = -1;
    /// The entry's root: source for (S,G), RP for (*,G).
    net::Ipv4Address root{};
    bool root_known = false; // false skips the RPF-agreement check
    /// Oifs currently in the list (live ones for online checks).
    std::vector<int> oifs;
};

/// Evaluates one entry against `router`'s unicast RPF state. Returns one
/// human-readable fragment per problem (empty = entry is consistent).
/// `wc_shadow` is the same group's (*,G) entry when one exists — required
/// context for RP-bit negative-cache checks.
[[nodiscard]] std::vector<std::string> entry_iif_problems(
    const topo::Router& router, const EntryView& entry, const EntryView* wc_shadow);

} // namespace pimlib::check
