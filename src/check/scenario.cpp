#include "check/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "check/invariants.hpp"
#include "check/watchdog.hpp"
#include "fault/fault_injector.hpp"
#include "provenance/provenance.hpp"
#include "stats/counters.hpp"
#include "topo/host.hpp"
#include "topo/network.hpp"
#include "topo/router.hpp"
#include "topo/segment.hpp"
#include "trace/timeline.hpp"
#include "trace/tracer.hpp"
#include "unicast/oracle_routing.hpp"

namespace pimlib::check {
namespace {

constexpr sim::Time kMs = sim::kMillisecond;

// Convergence probes after stimuli stop: one join/prune interval each.
constexpr int kConvergenceProbes = 12;

net::GroupAddress checker_group() {
    return net::GroupAddress{*net::Ipv4Address::parse("224.9.9.9")};
}

void add_violation(RunResult& out, std::string oracle, std::string detail) {
    out.violations.push_back(Violation{std::move(oracle), std::move(detail)});
}

/// Dedup key for an explored state. This is a timed protocol, so the
/// global state is (clock, configuration): two branches that reach the
/// same MRIB structure at different points of the schedule are different
/// states — one of them still has timers and in-flight messages the other
/// has already consumed. splitmix64-style finalizer over both.
std::uint64_t timed_state_key(sim::Time t, std::uint64_t structural) {
    std::uint64_t x =
        static_cast<std::uint64_t>(t) * 0x9E3779B97F4A7C15ull ^ structural;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
}

// ---------------------------------------------------------------------------
// Shared oracle implementations
// ---------------------------------------------------------------------------

void append(RunResult& out, std::vector<Violation> found) {
    for (Violation& v : found) out.violations.push_back(std::move(v));
}

void check_loops(RunResult& out, const CrossingMap& crossings,
                 const std::vector<std::string>& segment_names,
                 std::uint64_t ttl_drops) {
    append(out, loop_violations(crossings, segment_names, ttl_drops));
}

void check_duplicate_bound(RunResult& out, const topo::Host& host) {
    append(out, duplicate_bound_violations(host.name(), host.duplicate_count()));
}

/// Snapshot → protocol-neutral view for the shared per-entry oracle.
EntryView entry_view(const telemetry::EntrySnapshot& e) {
    EntryView view;
    view.wildcard = e.wildcard;
    view.rp_bit = e.rp_bit;
    view.iif = e.iif;
    if (const auto root = net::Ipv4Address::parse(e.source_or_rp)) {
        view.root = *root;
        view.root_known = true;
    }
    for (const telemetry::OifSnapshot& oif : e.oifs) view.oifs.push_back(oif.ifindex);
    return view;
}

/// Every surviving entry's iif must agree with the unicast RPF oracle
/// toward its root, an RP-bit entry must shadow a live (*,G) (footnote 13),
/// and no entry may list its own iif as an oif. The per-entry rules live in
/// check/invariants.hpp, shared with the online iif-rpf watchdog.
void check_iif_consistency(RunResult& out, const telemetry::MribSnapshot& snap,
                           const std::map<std::string, const topo::Router*>& routers,
                           const fault::FaultInjector& faults) {
    for (const telemetry::RouterMrib& r : snap.routers) {
        const auto it = routers.find(r.router);
        if (it == routers.end()) continue;
        const topo::Router& router = *it->second;
        if (faults.is_crashed(router)) continue;
        for (const telemetry::EntrySnapshot& e : r.entries) {
            const EntryView view = entry_view(e);
            EntryView shadow;
            bool has_shadow = false;
            if (!e.wildcard && e.rp_bit) {
                for (const telemetry::EntrySnapshot& other : r.entries) {
                    if (other.wildcard && other.group == e.group) {
                        shadow = entry_view(other);
                        has_shadow = true;
                    }
                }
            }
            for (const std::string& problem : entry_iif_problems(
                     router, view, has_shadow ? &shadow : nullptr)) {
                add_violation(out, "iif-consistency",
                              r.router + " " + e.key() + ": " + problem);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scenario worlds
// ---------------------------------------------------------------------------

struct FaultCandidate {
    std::string label;
    std::function<void()> fire;
};

/// Shared per-run driver state: recorder, crossing tap, checkpointing and
/// the convergence probe loop.
struct Driver {
    topo::Network& net;
    RunResult& out;
    const RunConfig& cfg;
    ChoiceRecorder recorder;
    CrossingMap crossings;
    std::unique_ptr<trace::PacketTracer> tracer;
    std::unique_ptr<provenance::Recorder> flight_recorder;
    std::unique_ptr<Watchdog> watchdog;

    Driver(topo::Network& n, RunResult& o, const RunConfig& c,
           net::Ipv4Address data_source)
        : net(n), out(o), cfg(c), recorder(c.choices) {
        recorder.bind(net.simulator());
        net.simulator().set_choice_source(&recorder);
        net.add_packet_tap([this, data_source](const topo::Segment& seg,
                                               const net::Frame& frame) {
            if (frame.packet.proto != net::IpProto::kUdp) return;
            if (!frame.packet.is_multicast()) return;
            if (frame.packet.src != data_source) return;
            ++crossings[{frame.packet.seq, seg.id()}];
        });
        if (cfg.collect_trace) {
            tracer = std::make_unique<trace::PacketTracer>(net);
            tracer->set_group_filter(checker_group());
            net.telemetry().set_tracing(true); // timeline needs events + spans
        }
        if (cfg.collect_trace || cfg.collect_provenance) {
            flight_recorder = std::make_unique<provenance::Recorder>(
                net.telemetry().registry(), provenance::RecorderConfig{});
            net.set_provenance(flight_recorder.get());
        }
    }

    ~Driver() {
        net.simulator().set_choice_source(nullptr);
        if (flight_recorder) net.set_provenance(nullptr);
    }

    /// Called after the oracles ran: a failing branch with a recorder
    /// attached emits the merged flight-recorder contents as its post-
    /// mortem, plus a one-line per-router drop summary.
    void emit_postmortem() {
        if (!flight_recorder || out.violations.empty()) return;
        out.provenance_dump = flight_recorder->dump_json();
        out.provenance_summary = flight_recorder->drop_summary();
    }

    /// Runs the online invariant watchdogs alongside the offline oracles.
    /// The lan-delivery gap detector is disarmed on branches that force
    /// choices or faults — loss is then expected, exactly the offline
    /// oracles' "clean branch" discipline (duplicate and structural checks
    /// stay live everywhere).
    void attach_watchdog(scenario::StackBase& stack) {
        if (!cfg.watchdog) return;
        watchdog = std::make_unique<Watchdog>(
            net, [&stack](const topo::Router& r) { return stack.cache_of(r); });
        if (flight_recorder) watchdog->set_recorder(flight_recorder.get());
        bool loss_possible = !cfg.forced_fault.empty();
        for (const Pick& pick : cfg.choices) {
            if (pick.value != 0) loss_possible = true;
        }
        watchdog->set_loss_expected(loss_possible);
        watchdog->start();
    }

    /// Resolves RunConfig::forced_loss segment names against this
    /// scenario's segment table and arms the recorder's loss windows.
    void arm_forced_loss(const std::vector<std::string>& segment_names) {
        if (cfg.forced_loss.empty()) return;
        std::vector<LossWindow> windows;
        for (const ForcedLoss& loss : cfg.forced_loss) {
            const auto it = std::find(segment_names.begin(), segment_names.end(),
                                      loss.segment);
            if (it == segment_names.end()) continue;
            windows.push_back(LossWindow{
                static_cast<int>(std::distance(segment_names.begin(), it)),
                loss.from, loss.to});
        }
        recorder.set_loss_windows(std::move(windows));
    }

    /// Installs one decision point per fault slot. Alternative 0 is "no
    /// fault"; the rest fire the candidate (which schedules its own repair
    /// if the scenario wants one).
    void arm_fault_slots(const std::vector<sim::Time>& slots,
                         const std::vector<FaultCandidate>& candidates) {
        for (std::size_t i = 0; i < slots.size(); ++i) {
            net.simulator().schedule_at(slots[i], [this, i, &candidates] {
                if (!cfg.forced_fault.empty()) {
                    if (i != 0) return;
                    for (const FaultCandidate& cand : candidates) {
                        if (cand.label == cfg.forced_fault) cand.fire();
                    }
                    return;
                }
                const std::size_t pick = recorder.choose(
                    candidates.size() + 1,
                    sim::ChoicePoint{sim::ChoicePoint::Kind::kFault,
                                     static_cast<int>(i)});
                if (pick > 0) candidates[pick - 1].fire();
            });
        }
    }

    /// Advances the simulation to `until`, hashing the global MRIB every
    /// checkpoint interval along the way.
    void checkpoint_until(sim::Time until, scenario::StackBase& stack) {
        sim::Time t = net.simulator().now();
        const sim::Time step = cfg.checkpoint_every > 0 ? cfg.checkpoint_every
                                                        : 10 * kMs;
        while (t < until) {
            t = std::min(until, t + step);
            out.events += net.simulator().run_until(t);
            out.state_hashes.push_back(
                timed_state_key(t, stack.capture_mrib().hash()));
        }
    }

    /// Runs probe intervals until the global MRIB is stable (empty
    /// structural diff) or revisits an earlier probe state (a recurrent
    /// soft-state orbit — decaying caches re-established by periodic joins
    /// cycle through a small state set; that still counts as converged).
    /// Leaves the last capture in out.final_mrib.
    void probe_convergence(scenario::StackBase& stack, sim::Time probe_interval) {
        telemetry::MribSnapshot prev = stack.capture_mrib();
        std::vector<std::uint64_t> probe_hashes{prev.hash()};
        bool converged = false;
        for (int round = 0; round < kConvergenceProbes && !converged; ++round) {
            out.events +=
                net.simulator().run_until(net.simulator().now() + probe_interval);
            telemetry::MribSnapshot next = stack.capture_mrib();
            const std::uint64_t h = next.hash();
            out.state_hashes.push_back(timed_state_key(net.simulator().now(), h));
            if (telemetry::diff(prev, next).empty()) {
                converged = true;
            } else if (std::find(probe_hashes.begin(), probe_hashes.end(), h) !=
                       probe_hashes.end()) {
                converged = true;
            }
            probe_hashes.push_back(h);
            prev = std::move(next);
        }
        out.converged = converged;
        if (!converged) {
            add_violation(out, "convergence",
                          "global MRIB neither stabilized nor revisited a state "
                          "within " +
                              std::to_string(kConvergenceProbes) +
                              " probe intervals after stimuli stopped");
        }
        out.final_mrib = std::move(prev);
    }

    void finish() {
        out.trace = recorder.trace();
        out.choices_applied = recorder.fully_applied();
        out.end_time = net.simulator().now();
        if (!cfg.forced_fault.empty()) out.clean = false;
        for (const ChoiceRec& rec : out.trace) {
            if (rec.pick != 0 &&
                rec.point.kind != sim::ChoicePoint::Kind::kEventOrder) {
                out.clean = false;
            }
        }
        if (tracer) out.trace_dump = tracer->dump();
        if (watchdog) {
            watchdog->stop();
            out.watchdog_report = watchdog->dump();
            out.watchdog_count = watchdog->violations().size();
        }
        if (cfg.collect_trace) {
            out.timeline_json =
                trace::chrome_timeline_json(net.telemetry(), flight_recorder.get());
        }
    }
};

// --- walkthrough -----------------------------------------------------------
//
// The §3 walkthrough reshaped so every §3.3/§3.5 mechanism is observable:
//
//       receiver(lan0) - A ----1ms---- C(RP) --1ms-- D - lan2(viewer)
//                        |            /
//                       1ms  20ms   1ms (metric 2)
//                        |  /      /
//                        E --- 20ms --- B - lan1(source)
//
// Topology (see kWalkthroughScript): A reaches the source via E-B (slow,
// 21ms) but the RP directly (1ms), so A's SPT diverges from the shared
// tree and the switchover handshake has a real in-flight window: the
// shared path outruns the SPT by ~20ms. Pruning the shared arm before SPT
// data arrives (the skip-spt-bit-handshake mutation) deterministically
// loses the packets in that window; never pruning it (no-rp-bit-prune)
// leaves a permanently redundant A-C crossing that A must iif-drop.
// The viewer behind the RP keeps the shared tree carrying data, so the
// RP's own (S,G) oif set stays observable.

const std::vector<std::string> kWalkthroughSegments = {
    "A-E", "E-B", "A-C", "B-C", "C-D", "lan0(A)", "lan1(B)", "lan2(D)"};

const std::vector<sim::Time> kWalkthroughFaultSlots = {400 * kMs, 900 * kMs};
constexpr sim::Time kWalkthroughRepairAfter = 350 * kMs;

// Burst one exercises register + switchover (seqs 1..12); burst two lands
// well after convergence and is the steady-state measurement window.
constexpr std::uint64_t kSeqCount = 18;
constexpr std::uint64_t kSteadyFirstSeq = 13;
constexpr sim::Time kWalkthroughSteadyStart = 1550 * kMs;
constexpr sim::Time kWalkthroughHorizon = 1900 * kMs;
// Steady-state delivery tree: lan1, B-C, C-D, lan2, E-B, A-E, lan0.
constexpr int kWalkthroughSteadyCrossings = 7;

RunResult run_walkthrough(const RunConfig& cfg) {
    RunResult out;
    const net::GroupAddress group = checker_group();

    topo::Network net;
    topo::Router& a = net.add_router("A");
    topo::Router& b = net.add_router("B");
    topo::Router& c = net.add_router("C");
    topo::Router& d = net.add_router("D");
    topo::Router& e = net.add_router("E");
    net.add_link(a, e, 1 * kMs, 1);
    topo::Segment& link_eb = net.add_link(e, b, 20 * kMs, 1);
    topo::Segment& link_ac = net.add_link(a, c, 1 * kMs, 1);
    net.add_link(b, c, 1 * kMs, 2);
    net.add_link(c, d, 1 * kMs, 1);
    topo::Segment& lan0 = net.add_lan({&a});
    topo::Segment& lan1 = net.add_lan({&b});
    topo::Segment& lan2 = net.add_lan({&d});
    topo::Host& receiver = net.add_host("receiver", lan0);
    topo::Host& source = net.add_host("source", lan1);
    topo::Host& viewer = net.add_host("viewer", lan2);

    unicast::OracleRouting routing(net);
    scenario::StackConfig config = scenario::StackConfig{}.scaled(0.01);
    const bool mutation_ok = apply_mutation(cfg.mutation, config);
    assert(mutation_ok);
    (void)mutation_ok;
    scenario::PimSmStack stack(net, config);
    stack.set_rp(group, {c.router_id()});
    stack.set_spt_policy(pim::SptPolicy::immediate());
    fault::FaultInjector faults(net);
    stack.wire_faults(faults);

    Driver driver(net, out, cfg, source.address());
    driver.attach_watchdog(stack);
    driver.arm_forced_loss(kWalkthroughSegments);
    sim::Simulator& sim = net.simulator();

    sim.schedule_at(120 * kMs, [&] { stack.host_agent(receiver).join(group); });
    sim.schedule_at(130 * kMs, [&] { stack.host_agent(viewer).join(group); });
    source.send_stream(group, 12, 10 * kMs, 250 * kMs);
    source.send_stream(group, 6, 20 * kMs, 1600 * kMs);

    const std::vector<FaultCandidate> candidates = {
        {"cut-link-A-C",
         [&] {
             faults.cut_link(link_ac);
             faults.restore_link_at(sim.now() + kWalkthroughRepairAfter, link_ac);
         }},
        {"cut-link-E-B",
         [&] {
             faults.cut_link(link_eb);
             faults.restore_link_at(sim.now() + kWalkthroughRepairAfter, link_eb);
         }},
        {"crash-router-E",
         [&] {
             faults.crash_router(e);
             faults.restart_router_at(sim.now() + kWalkthroughRepairAfter, e);
         }},
        {"crash-router-C",
         [&] {
             faults.crash_router(c);
             faults.restart_router_at(sim.now() + kWalkthroughRepairAfter, c);
         }},
    };
    driver.arm_fault_slots(kWalkthroughFaultSlots, candidates);

    driver.checkpoint_until(kWalkthroughSteadyStart, stack);
    const std::uint64_t steady_iif_base = net.stats().data_dropped_iif();
    driver.checkpoint_until(kWalkthroughHorizon, stack);
    const std::uint64_t steady_iif_drops =
        net.stats().data_dropped_iif() - steady_iif_base;
    driver.probe_convergence(stack, config.pim.join_prune_interval);
    driver.finish();

    // --- oracles ---
    check_loops(out, driver.crossings, kWalkthroughSegments,
                net.stats().data_dropped_ttl());
    check_duplicate_bound(out, receiver);
    check_duplicate_bound(out, viewer);
    const std::map<std::string, const topo::Router*> routers = {
        {"A", &a}, {"B", &b}, {"C", &c}, {"D", &d}, {"E", &e}};
    check_iif_consistency(out, out.final_mrib, routers, faults);

    if (out.clean) {
        // §3.3: switching from shared tree to SPT must not lose packets,
        // and soft-state refresh must keep the tree delivering. On clean
        // branches (pure event reorderings included) every member hears
        // every sequence number.
        for (const topo::Host* host : {&receiver, &viewer}) {
            std::set<std::uint64_t> got;
            std::map<std::uint64_t, int> steady_copies;
            for (const topo::Host::ReceivedRecord& rec : host->received()) {
                if (rec.source != source.address() || rec.group != group) continue;
                got.insert(rec.seq);
                if (rec.seq >= kSteadyFirstSeq) ++steady_copies[rec.seq];
            }
            append(out, delivery_violations(host->name(), got, 1, kSeqCount));
            append(out, steady_duplicate_violations(host->name(), steady_copies));
        }
        // §3.3/§3.5: a converged tree crosses exactly the delivery tree's
        // segments once per packet. An extra crossing is a shared-tree arm
        // that an RP-bit prune should have shut off.
        append(out, steady_redundancy_violations(
                        driver.crossings, kWalkthroughSegments, kSteadyFirstSeq,
                        kSeqCount, kWalkthroughSteadyCrossings));
        // §3.5: in steady state every packet arrives on the expected iif
        // everywhere; iif-drops mean a stale or missing prune.
        if (steady_iif_drops > 0) {
            add_violation(out, "steady-iif",
                          std::to_string(steady_iif_drops) +
                              " iif-check drops during the steady-state window");
        }
    }
    driver.emit_postmortem();
    return out;
}

// --- rp-failover -----------------------------------------------------------
//
// §3.9: two member routers, a reachable alternate RP, and a fault slot
// that can crash the primary. Crashing it must re-home every member's
// (*,G) to the alternate within the RP-reachability timeout plus three
// join/prune refreshes; leaving it alive (or merely losing one
// reachability message) must not.

const std::vector<std::string> kFailoverSegments = {
    "M-R1", "N-R1", "M-R2", "N-R2", "R1-R2", "lan0(M)", "lan1(N)"};
const std::vector<sim::Time> kFailoverFaultSlots = {500 * kMs};
constexpr sim::Time kFailoverHorizon = 2300 * kMs; // crash + timeout + 3 refreshes

RunResult run_rp_failover(const RunConfig& cfg) {
    RunResult out;
    const net::GroupAddress group = checker_group();

    topo::Network net;
    topo::Router& m = net.add_router("M");
    topo::Router& n = net.add_router("N");
    topo::Router& r1 = net.add_router("R1");
    topo::Router& r2 = net.add_router("R2");
    net.add_link(m, r1, 1 * kMs, 1);
    net.add_link(n, r1, 1 * kMs, 1);
    net.add_link(m, r2, 1 * kMs, 3);
    net.add_link(n, r2, 1 * kMs, 3);
    net.add_link(r1, r2, 1 * kMs, 1);
    topo::Segment& lan0 = net.add_lan({&m});
    topo::Segment& lan1 = net.add_lan({&n});
    topo::Host& h1 = net.add_host("h1", lan0);
    topo::Host& h2 = net.add_host("h2", lan1);

    unicast::OracleRouting routing(net);
    scenario::StackConfig config = scenario::StackConfig{}.scaled(0.01);
    const bool mutation_ok = apply_mutation(cfg.mutation, config);
    assert(mutation_ok);
    (void)mutation_ok;
    scenario::PimSmStack stack(net, config);
    stack.set_rp(group, {r1.router_id(), r2.router_id()});
    stack.set_spt_policy(pim::SptPolicy::never());
    fault::FaultInjector faults(net);
    stack.wire_faults(faults);

    Driver driver(net, out, cfg, net::Ipv4Address{});
    driver.attach_watchdog(stack);
    driver.arm_forced_loss(kFailoverSegments);
    sim::Simulator& sim = net.simulator();

    sim.schedule_at(100 * kMs, [&] { stack.host_agent(h1).join(group); });
    sim.schedule_at(110 * kMs, [&] { stack.host_agent(h2).join(group); });

    const std::vector<FaultCandidate> candidates = {
        {"crash-router-R1", [&] { faults.crash_router(r1); }},
    };
    driver.arm_fault_slots(kFailoverFaultSlots, candidates);

    driver.checkpoint_until(kFailoverHorizon, stack);
    // §3.9's deadline: judge failover on this capture, not on whatever the
    // (open-ended) convergence probes later settle into.
    const telemetry::MribSnapshot at_deadline = stack.capture_mrib();
    driver.probe_convergence(stack, config.pim.join_prune_interval);
    driver.finish();

    check_loops(out, driver.crossings, kFailoverSegments,
                net.stats().data_dropped_ttl());
    const std::map<std::string, const topo::Router*> routers = {
        {"M", &m}, {"N", &n}, {"R1", &r1}, {"R2", &r2}};
    check_iif_consistency(out, out.final_mrib, routers, faults);

    const bool crashed = faults.is_crashed(r1);
    const std::string want_rp =
        (crashed ? r2.router_id() : r1.router_id()).to_string();
    append(out, rehoming_violations("rp-failover", at_deadline, {"M", "N"},
                                    want_rp,
                                    crashed ? " (primary RP crashed)" : ""));
    driver.emit_postmortem();
    return out;
}

// --- lan-assert ------------------------------------------------------------
//
// §2.2's LAN duplicate problem made persistent: two upstream routers
// forward the same (S,G) traffic onto one shared LAN. U1 carries the
// shared tree (downstream joins toward the RP C route through it); U2
// carries the shortest path (the members switch immediately, and their
// SPT iif equals their shared-tree iif, so the §3.3 divergence prune
// never fires). Without asserts both forward every packet forever; with
// them the SPT forwarder must win the election, the RPT loser must prune
// its arm, and each steady-state packet crosses the LAN exactly once.
//
//       source - slan - B --2-- C(RP) --1-- U1
//                       |                    |
//                       1                    dlan -- R - rlan0 - rcv1
//                       |                   /   |
//                       U2 ----------------     R2 - rlan1 - rcv2

const std::vector<std::string> kLanAssertSegments = {
    "B-C", "C-U1", "B-U2", "dlan", "slan(B)", "rlan0(R)", "rlan1(R2)"};
const std::vector<sim::Time> kLanAssertFaultSlots = {400 * kMs};
constexpr sim::Time kLanAssertRepairAfter = 350 * kMs;
// Burst one provokes the duplicate storm and the assert election; burst
// two is the post-election steady-state measurement window. The horizon
// stays inside the assert holdtime (1.8s scaled) so the loser's pruned
// state is still live during the window.
constexpr std::uint64_t kLanAssertSeqCount = 18;
constexpr std::uint64_t kLanAssertSteadyFirstSeq = 13;
constexpr sim::Time kLanAssertSteadyStart = 1250 * kMs;
constexpr sim::Time kLanAssertHorizon = 1650 * kMs;
// Steady delivery tree: slan, B-U2, dlan, rlan0, rlan1 — plus B-C, because
// the RP keeps the source path warm while data flows (§3.10) even though
// its own oif list is null after U1's RP-bit prune.
constexpr int kLanAssertSteadyCrossings = 6;
// Segment index of dlan in creation order (after the three links).
constexpr int kLanAssertDlanSegment = 3;

RunResult run_lan_assert(const RunConfig& cfg) {
    RunResult out;
    const net::GroupAddress group = checker_group();

    topo::Network net;
    topo::Router& b = net.add_router("B");
    topo::Router& c = net.add_router("C");
    topo::Router& u1 = net.add_router("U1");
    topo::Router& u2 = net.add_router("U2");
    topo::Router& r = net.add_router("R");
    topo::Router& r2 = net.add_router("R2");
    net.add_link(b, c, 1 * kMs, 2);
    net.add_link(c, u1, 1 * kMs, 1);
    net.add_link(b, u2, 1 * kMs, 1);
    net.add_lan({&u1, &u2, &r, &r2});
    topo::Segment& slan = net.add_lan({&b});
    topo::Segment& rlan0 = net.add_lan({&r});
    topo::Segment& rlan1 = net.add_lan({&r2});
    topo::Host& source = net.add_host("source", slan);
    topo::Host& rcv1 = net.add_host("rcv1", rlan0);
    topo::Host& rcv2 = net.add_host("rcv2", rlan1);

    unicast::OracleRouting routing(net);
    scenario::StackConfig config = scenario::StackConfig{}.scaled(0.01);
    const bool mutation_ok = apply_mutation(cfg.mutation, config);
    assert(mutation_ok);
    (void)mutation_ok;
    scenario::PimSmStack stack(net, config);
    stack.set_rp(group, {c.router_id()});
    stack.set_spt_policy(pim::SptPolicy::immediate());
    fault::FaultInjector faults(net);
    stack.wire_faults(faults);

    Driver driver(net, out, cfg, source.address());
    driver.attach_watchdog(stack);
    driver.arm_forced_loss(kLanAssertSegments);
    sim::Simulator& sim = net.simulator();

    sim.schedule_at(120 * kMs, [&] { stack.host_agent(rcv1).join(group); });
    sim.schedule_at(130 * kMs, [&] { stack.host_agent(rcv2).join(group); });
    source.send_stream(group, 12, 10 * kMs, 250 * kMs);
    source.send_stream(group, 6, 20 * kMs, 1300 * kMs);

    // Crashing the assert winner forces the members to re-home through the
    // standing loser: their targeted joins must clear its loser state
    // ("join overrides assert") or the LAN goes dark.
    const std::vector<FaultCandidate> candidates = {
        {"crash-router-U2",
         [&] {
             faults.crash_router(u2);
             faults.restart_router_at(sim.now() + kLanAssertRepairAfter, u2);
         }},
    };
    driver.arm_fault_slots(kLanAssertFaultSlots, candidates);

    driver.checkpoint_until(kLanAssertHorizon, stack);
    driver.probe_convergence(stack, config.pim.join_prune_interval);
    driver.finish();

    check_loops(out, driver.crossings, kLanAssertSegments,
                net.stats().data_dropped_ttl());
    check_duplicate_bound(out, rcv1);
    check_duplicate_bound(out, rcv2);
    const std::map<std::string, const topo::Router*> routers = {
        {"B", &b}, {"C", &c}, {"U1", &u1}, {"U2", &u2}, {"R", &r}, {"R2", &r2}};
    check_iif_consistency(out, out.final_mrib, routers, faults);

    if (out.clean) {
        // Delivery and zero-steady-duplicates: the assert election may cost
        // a few early duplicates but never a loss, and once it resolves the
        // LAN carries exactly one copy.
        for (const topo::Host* host : {&rcv1, &rcv2}) {
            std::set<std::uint64_t> got;
            std::map<std::uint64_t, int> steady_copies;
            for (const topo::Host::ReceivedRecord& rec : host->received()) {
                if (rec.source != source.address() || rec.group != group) continue;
                got.insert(rec.seq);
                if (rec.seq >= kLanAssertSteadyFirstSeq) ++steady_copies[rec.seq];
            }
            append(out, delivery_violations(host->name(), got, 1,
                                            kLanAssertSeqCount));
            append(out, steady_duplicate_violations(host->name(), steady_copies));
        }
        // The assert-winner oracle: a steady packet crossing dlan twice
        // means both upstreams still forward — the loser never pruned.
        // (No steady-iif oracle here: the loser keeps hearing the winner's
        // copies on the LAN and iif-discarding them is exactly its job.)
        append(out, assert_winner_violations(driver.crossings,
                                             kLanAssertDlanSegment,
                                             kLanAssertSteadyFirstSeq,
                                             kLanAssertSeqCount));
        append(out, steady_redundancy_violations(
                        driver.crossings, kLanAssertSegments,
                        kLanAssertSteadyFirstSeq, kLanAssertSeqCount,
                        kLanAssertSteadyCrossings));
    }
    driver.emit_postmortem();
    return out;
}

// --- bsr-failover ----------------------------------------------------------
//
// The rp-failover world rebuilt without oracle RP knowledge: no router has
// a static RP; the mapping exists only through BSR election and
// candidate-RP advertisement. R1 doubles as primary candidate BSR and
// primary candidate RP, so one crash exercises both failovers at once —
// the backup BSR B must take over after the BSR timeout, re-collect the
// advertisements, and republish a set that re-homes every member onto R2.

const std::vector<std::string> kBsrFailoverSegments = {
    "M-R1", "N-R1", "M-R2", "N-R2", "R1-R2", "B-R1", "B-R2",
    "lan0(M)", "lan1(N)"};
const std::vector<sim::Time> kBsrFailoverFaultSlots = {500 * kMs};
// Re-homing deadline: crash + BSR timeout (1.5s scaled) + a tick for the
// takeover + up to two lost-and-retried publication waves (the explorer
// may drop the triggered advertisement and one periodic retry; periodic
// origination re-floods every 0.6s).
constexpr sim::Time kBsrFailoverHorizon = 3300 * kMs;

RunResult run_bsr_failover(const RunConfig& cfg) {
    RunResult out;
    const net::GroupAddress group = checker_group();

    topo::Network net;
    topo::Router& m = net.add_router("M");
    topo::Router& n = net.add_router("N");
    topo::Router& r1 = net.add_router("R1");
    topo::Router& r2 = net.add_router("R2");
    topo::Router& b = net.add_router("B");
    net.add_link(m, r1, 1 * kMs, 1);
    net.add_link(n, r1, 1 * kMs, 1);
    net.add_link(m, r2, 1 * kMs, 3);
    net.add_link(n, r2, 1 * kMs, 3);
    net.add_link(r1, r2, 1 * kMs, 1);
    net.add_link(b, r1, 1 * kMs, 1);
    net.add_link(b, r2, 1 * kMs, 1);
    topo::Segment& lan0 = net.add_lan({&m});
    topo::Segment& lan1 = net.add_lan({&n});
    topo::Host& h1 = net.add_host("h1", lan0);
    topo::Host& h2 = net.add_host("h2", lan1);

    unicast::OracleRouting routing(net);
    scenario::StackConfig config = scenario::StackConfig{}.scaled(0.01);
    const bool mutation_ok = apply_mutation(cfg.mutation, config);
    assert(mutation_ok);
    (void)mutation_ok;
    scenario::PimSmStack stack(net, config);
    const net::Prefix all_groups{net::Ipv4Address{224, 0, 0, 0}, 4};
    stack.set_candidate_bsr(r1, 20);
    stack.set_candidate_bsr(b, 10);
    stack.set_candidate_rp(r1, all_groups, 20);
    stack.set_candidate_rp(r2, all_groups, 10);
    stack.set_spt_policy(pim::SptPolicy::never());
    fault::FaultInjector faults(net);
    stack.wire_faults(faults);

    Driver driver(net, out, cfg, net::Ipv4Address{});
    driver.attach_watchdog(stack);
    driver.arm_forced_loss(kBsrFailoverSegments);
    sim::Simulator& sim = net.simulator();

    sim.schedule_at(100 * kMs, [&] { stack.host_agent(h1).join(group); });
    sim.schedule_at(110 * kMs, [&] { stack.host_agent(h2).join(group); });

    const std::vector<FaultCandidate> candidates = {
        {"crash-router-R1", [&] { faults.crash_router(r1); }},
        {"crash-router-B", [&] { faults.crash_router(b); }},
    };
    driver.arm_fault_slots(kBsrFailoverFaultSlots, candidates);

    driver.checkpoint_until(kBsrFailoverHorizon, stack);
    const telemetry::MribSnapshot at_deadline = stack.capture_mrib();
    // The BSR-view and RP-set oracles are snapshotted at this same instant,
    // not after the convergence probes: a bootstrap refresh lost during the
    // probe tail may legitimately leave expired state whose repair the next
    // period owes (the §3.4 soft-state discipline), and reading live agents
    // there would turn that transient into a false violation.
    const std::map<std::string, const topo::Router*> routers = {
        {"M", &m}, {"N", &n}, {"R1", &r1}, {"R2", &r2}, {"B", &b}};
    struct BsrView {
        net::Ipv4Address elected;
        bool claims = false;
    };
    std::map<std::string, BsrView> views;
    std::map<std::string, std::vector<net::Ipv4Address>> derived;
    for (const auto& [name, router] : routers) {
        if (faults.is_crashed(*router)) continue;
        pim::BootstrapAgent& agent = stack.bootstrap_at(*router);
        views[name] = {agent.elected_bsr(), agent.is_elected_bsr()};
        derived[name] = stack.pim_at(*router).rp_set().rps_for(group);
    }
    driver.probe_convergence(stack, config.pim.join_prune_interval);
    driver.finish();

    check_loops(out, driver.crossings, kBsrFailoverSegments,
                net.stats().data_dropped_ttl());
    check_iif_consistency(out, out.final_mrib, routers, faults);

    // exactly-one-bsr: every live router holds the same elected-BSR view,
    // and exactly one live router claims the role.
    net::Ipv4Address elected;
    int claims = 0;
    for (const auto& [name, view] : views) {
        if (view.elected.is_unspecified()) {
            add_violation(out, "exactly-one-bsr",
                          name + " has no elected-BSR view at the deadline");
            continue;
        }
        if (elected.is_unspecified()) {
            elected = view.elected;
        } else if (view.elected != elected) {
            add_violation(out, "exactly-one-bsr",
                          name + " elected " + view.elected.to_string() +
                              " while others elected " + elected.to_string());
        }
        if (view.claims) ++claims;
    }
    if (claims != 1) {
        add_violation(out, "exactly-one-bsr",
                      std::to_string(claims) +
                          " live router(s) claim the BSR role, want exactly 1");
    }

    // rp-set-agreement: the learned set must map the group to the same
    // non-empty RP list on every live router.
    append(out, rp_agreement_violations(derived, group.to_string()));

    // bsr-rp-rehoming: like rp-failover's oracle, judged at the deadline
    // capture — members must root at the hash-elected RP of whatever set
    // survived the fault slot.
    const bool r1_crashed = faults.is_crashed(r1);
    const std::string want_rp =
        (r1_crashed ? r2.router_id() : r1.router_id()).to_string();
    append(out, rehoming_violations(
                    "bsr-rp-rehoming", at_deadline, {"M", "N"}, want_rp,
                    r1_crashed ? " (primary candidate RP crashed)" : ""));
    driver.emit_postmortem();
    return out;
}

// ---------------------------------------------------------------------------
// Replay script emission
// ---------------------------------------------------------------------------

std::string time_ms(sim::Time t) {
    return std::to_string(t / kMs) + "ms";
}

const char* kWalkthroughScript = R"(topology
router A
router B
router C
router D
router E
link A E delay=1ms metric=1
link E B delay=20ms metric=1
link A C delay=1ms metric=1
link B C delay=1ms metric=2
link C D delay=1ms metric=1
lan lan0 A
lan lan1 B
lan lan2 D
host receiver lan0
host source lan1
host viewer lan2
end
protocol pim-sm
rp 224.9.9.9 C
spt-policy immediate
trace on
at 120ms join receiver 224.9.9.9
at 130ms join viewer 224.9.9.9
at 250ms send source 224.9.9.9 count=12 interval=10ms
at 1600ms send source 224.9.9.9 count=6 interval=20ms
)";

const char* kFailoverScript = R"(topology
router M
router N
router R1
router R2
link M R1 delay=1ms metric=1
link N R1 delay=1ms metric=1
link M R2 delay=1ms metric=3
link N R2 delay=1ms metric=3
link R1 R2 delay=1ms metric=1
lan lan0 M
lan lan1 N
host h1 lan0
host h2 lan1
end
protocol pim-sm
rp 224.9.9.9 R1 R2
spt-policy never
trace on
at 100ms join h1 224.9.9.9
at 110ms join h2 224.9.9.9
)";

const char* kLanAssertScript = R"(topology
router B
router C
router U1
router U2
router R
router R2
link B C delay=1ms metric=2
link C U1 delay=1ms metric=1
link B U2 delay=1ms metric=1
lan dlan U1 U2 R R2
lan slan B
lan rlan0 R
lan rlan1 R2
host source slan
host rcv1 rlan0
host rcv2 rlan1
end
protocol pim-sm
rp 224.9.9.9 C
spt-policy immediate
trace on
at 120ms join rcv1 224.9.9.9
at 130ms join rcv2 224.9.9.9
at 250ms send source 224.9.9.9 count=12 interval=10ms
at 1300ms send source 224.9.9.9 count=6 interval=20ms
)";

const char* kBsrFailoverScript = R"(topology
router M
router N
router R1
router R2
router B
link M R1 delay=1ms metric=1
link N R1 delay=1ms metric=1
link M R2 delay=1ms metric=3
link N R2 delay=1ms metric=3
link R1 R2 delay=1ms metric=1
link B R1 delay=1ms metric=1
link B R2 delay=1ms metric=1
lan lan0 M
lan lan1 N
host h1 lan0
host h2 lan1
end
protocol pim-sm
candidate-bsr R1 20
candidate-bsr B 10
candidate-rp 224.0.0.0/4 R1 20
candidate-rp 224.0.0.0/4 R2 10
spt-policy never
trace on
at 100ms join h1 224.9.9.9
at 110ms join h2 224.9.9.9
)";

/// Fault directives equivalent to firing candidate `value - 1` at `slot`.
std::string fault_directives(const std::string& scenario, std::size_t slot,
                             std::uint32_t value) {
    if (value == 0) return {};
    std::string out;
    if (scenario == "walkthrough") {
        if (slot >= kWalkthroughFaultSlots.size()) return {};
        const sim::Time at = kWalkthroughFaultSlots[slot];
        const sim::Time repair = at + kWalkthroughRepairAfter;
        switch (value) {
        case 1:
            out += "at " + time_ms(at) + " fail-link A C\n";
            out += "at " + time_ms(repair) + " heal-link A C\n";
            break;
        case 2:
            out += "at " + time_ms(at) + " fail-link E B\n";
            out += "at " + time_ms(repair) + " heal-link E B\n";
            break;
        case 3:
            out += "at " + time_ms(at) + " crash-router E\n";
            out += "at " + time_ms(repair) + " restart-router E\n";
            break;
        case 4:
            out += "at " + time_ms(at) + " crash-router C\n";
            out += "at " + time_ms(repair) + " restart-router C\n";
            break;
        default: break;
        }
    } else if (scenario == "rp-failover") {
        if (slot == 0 && value == 1) {
            out += "at " + time_ms(kFailoverFaultSlots[0]) + " crash-router R1\n";
        }
    } else if (scenario == "lan-assert") {
        if (slot == 0 && value == 1) {
            const sim::Time at = kLanAssertFaultSlots[0];
            out += "at " + time_ms(at) + " crash-router U2\n";
            out += "at " + time_ms(at + kLanAssertRepairAfter) +
                   " restart-router U2\n";
        }
    } else if (scenario == "bsr-failover") {
        if (slot == 0 && value == 1) {
            out += "at " + time_ms(kBsrFailoverFaultSlots[0]) +
                   " crash-router R1\n";
        } else if (slot == 0 && value == 2) {
            out += "at " + time_ms(kBsrFailoverFaultSlots[0]) +
                   " crash-router B\n";
        }
    }
    return out;
}

std::string describe_choice(const std::string& scenario, std::uint32_t index,
                            const ChoiceRec& rec) {
    const std::vector<std::string>& segs =
        scenario == "walkthrough"    ? kWalkthroughSegments
        : scenario == "lan-assert"   ? kLanAssertSegments
        : scenario == "bsr-failover" ? kBsrFailoverSegments
                                     : kFailoverSegments;
    std::string what;
    switch (rec.point.kind) {
    case sim::ChoicePoint::Kind::kEventOrder:
        what = "fire queued event " + std::to_string(rec.pick + 1) + " of " +
               std::to_string(rec.alternatives) + " tied at this instant";
        break;
    case sim::ChoicePoint::Kind::kFrameLoss: {
        const auto seg = static_cast<std::size_t>(rec.point.detail);
        what = "drop the frame crossing segment " +
               (seg < segs.size() ? segs[seg] : std::to_string(rec.point.detail));
        break;
    }
    case sim::ChoicePoint::Kind::kFault:
        what = "inject fault candidate " + std::to_string(rec.pick) +
               " at slot " + std::to_string(rec.point.detail);
        break;
    }
    return "choice " + std::to_string(index) + " at t=" + time_ms(rec.at) + ": " +
           what;
}

} // namespace

const std::vector<std::string>& scenario_names() {
    static const std::vector<std::string> names = {"walkthrough", "rp-failover",
                                                   "lan-assert", "bsr-failover"};
    return names;
}

const std::vector<std::string>& known_mutations() {
    static const std::vector<std::string> names = {
        "skip-spt-bit-handshake", "no-rp-bit-prune",
        "assert-loser-keeps-forwarding", "stale-rp-set-after-bsr-failover",
        "one-shot-assert", "fragile-rp-holdtime"};
    return names;
}

const ScenarioInfo& scenario_info(const std::string& name) {
    static const std::vector<ScenarioInfo> infos = [] {
        std::vector<ScenarioInfo> v;
        v.push_back(ScenarioInfo{
            "walkthrough", kWalkthroughSegments, kWalkthroughFaultSlots,
            {"cut-link-A-C", "cut-link-E-B", "crash-router-E", "crash-router-C"},
            kWalkthroughHorizon,
            {"B", "D"}});
        v.push_back(ScenarioInfo{"rp-failover", kFailoverSegments,
                                 kFailoverFaultSlots,
                                 {"crash-router-R1"},
                                 kFailoverHorizon,
                                 {"M", "N"}});
        v.push_back(ScenarioInfo{"lan-assert", kLanAssertSegments,
                                 kLanAssertFaultSlots,
                                 {"crash-router-U2"},
                                 kLanAssertHorizon,
                                 {"R", "R2"}});
        v.push_back(ScenarioInfo{"bsr-failover", kBsrFailoverSegments,
                                 kBsrFailoverFaultSlots,
                                 {"crash-router-R1", "crash-router-B"},
                                 kBsrFailoverHorizon,
                                 {"M", "N"}});
        return v;
    }();
    for (const ScenarioInfo& info : infos) {
        if (info.name == name) return info;
    }
    assert(false && "unknown scenario; validate against scenario_names()");
    return infos.front();
}

const MutationTrigger& trigger_for_mutation(const std::string& mutation) {
    // The loss windows bracket the one control message whose loss turns the
    // seeded bug into a symptom: the Assert exchange of the first duplicate
    // burst (~280ms, lan-assert) and one mid-run RpReachability refresh on a
    // member's RP-facing link (the ~900ms generation tick, rp-failover).
    static const std::map<std::string, MutationTrigger> triggers = [] {
        std::map<std::string, MutationTrigger> m;
        m["stale-rp-set-after-bsr-failover"] =
            MutationTrigger{"crash-router-R1", {}};
        // The window is a third of a millisecond wide on purpose: it must
        // kill the winner's Assert reply (261.3ms) while delivering the
        // data copy (261.1ms) and the inferior Assert (261.2ms) that cause
        // it — dropping those merely postpones the election.
        m["one-shot-assert"] = MutationTrigger{
            "", {ForcedLoss{"dlan", 261 * kMs + 250 * sim::kMicrosecond,
                            261 * kMs + 350 * sim::kMicrosecond}}};
        m["fragile-rp-holdtime"] =
            MutationTrigger{"", {ForcedLoss{"M-R1", 850 * kMs, 950 * kMs}}};
        return m;
    }();
    static const MutationTrigger empty;
    const auto it = triggers.find(mutation);
    return it == triggers.end() ? empty : it->second;
}

bool apply_mutation(const std::string& mutation, scenario::StackConfig& config) {
    if (mutation.empty()) return true;
    if (mutation == "skip-spt-bit-handshake") {
        config.pim.mutate_skip_spt_bit_handshake = true;
        return true;
    }
    if (mutation == "no-rp-bit-prune") {
        config.pim.mutate_no_rp_bit_prune = true;
        return true;
    }
    if (mutation == "assert-loser-keeps-forwarding") {
        config.pim.mutate_assert_loser_keeps_forwarding = true;
        return true;
    }
    if (mutation == "stale-rp-set-after-bsr-failover") {
        config.bootstrap.mutate_stale_rp_set = true;
        return true;
    }
    if (mutation == "one-shot-assert") {
        config.pim.mutate_one_shot_assert = true;
        return true;
    }
    if (mutation == "fragile-rp-holdtime") {
        config.pim.mutate_fragile_rp_holdtime = true;
        return true;
    }
    return false;
}

std::string scenario_for_mutation(const std::string& mutation) {
    if (mutation == "assert-loser-keeps-forwarding") return "lan-assert";
    if (mutation == "one-shot-assert") return "lan-assert";
    if (mutation == "stale-rp-set-after-bsr-failover") return "bsr-failover";
    if (mutation == "fragile-rp-holdtime") return "rp-failover";
    return "walkthrough";
}

std::string forced_fault_for_mutation(const std::string& mutation) {
    return trigger_for_mutation(mutation).fault;
}

bool mutation_requires_search(const std::string& mutation) {
    return !trigger_for_mutation(mutation).losses.empty();
}

RunResult run_scenario(const std::string& name, const RunConfig& cfg) {
    if (name == "walkthrough") return run_walkthrough(cfg);
    if (name == "rp-failover") return run_rp_failover(cfg);
    if (name == "lan-assert") return run_lan_assert(cfg);
    if (name == "bsr-failover") return run_bsr_failover(cfg);
    assert(false && "unknown scenario; validate against scenario_names()");
    return {};
}

std::string replay_script(const std::string& name, const std::string& mutation,
                          const RunResult& result) {
    std::string out = "# pimcheck counterexample -- scenario " + name;
    if (!mutation.empty()) out += " --mutate " + mutation;
    out += "\n";
    for (const Violation& v : result.violations) {
        out += "# violation: " + v.oracle + ": " + v.detail + "\n";
    }

    ChoiceSet forced;
    std::string fault_lines;
    for (std::size_t i = 0; i < result.trace.size(); ++i) {
        const ChoiceRec& rec = result.trace[i];
        if (rec.pick == 0) continue;
        forced.push_back(Pick{static_cast<std::uint32_t>(i), rec.pick});
        if (rec.point.kind == sim::ChoicePoint::Kind::kFault) {
            fault_lines += fault_directives(
                name, static_cast<std::size_t>(rec.point.detail), rec.pick);
        }
    }
    if (forced.empty()) {
        out += "# the deterministic baseline run already fails -- no forced "
               "choices needed\n";
    } else {
        out += "# deviations from the deterministic baseline (replay exactly "
               "with:\n";
        out += "#   pimcheck --scenario " + name;
        if (!mutation.empty()) out += " --mutate " + mutation;
        out += " --replay " + format_choices(forced) + "):\n";
        for (const Pick& pick : forced) {
            out += "#   " + describe_choice(name, pick.index,
                                            result.trace[pick.index]) +
                   "\n";
        }
        out += "# fault injections replay below; pimsim cannot force "
               "message-level order/loss\n";
    }
    out += name == "walkthrough"    ? kWalkthroughScript
           : name == "lan-assert"   ? kLanAssertScript
           : name == "bsr-failover" ? kBsrFailoverScript
                                    : kFailoverScript;
    out += fault_lines;
    const sim::Time run_for = name == "walkthrough"    ? 2500 * kMs
                             : name == "lan-assert"    ? 2200 * kMs
                             : name == "bsr-failover"  ? 3800 * kMs
                                                       : 2400 * kMs;
    out += "run " + time_ms(run_for) + "\n";
    return out;
}

} // namespace pimlib::check
