#include "unicast/rib.hpp"

namespace pimlib::unicast {

void Rib::set_route(const Route& route) {
    auto& level = routes_[static_cast<std::size_t>(route.prefix.length())];
    auto it = level.find(route.prefix.address().to_uint());
    if (it != level.end()) {
        if (it->second == route) return; // no-op refresh: keep observers quiet
        it->second = route;
    } else {
        level.emplace(route.prefix.address().to_uint(), route);
        ++count_;
    }
    changed();
}

bool Rib::remove_route(net::Prefix prefix) {
    auto& level = routes_[static_cast<std::size_t>(prefix.length())];
    if (level.erase(prefix.address().to_uint()) > 0) {
        --count_;
        changed();
        return true;
    }
    return false;
}

void Rib::clear() {
    if (count_ == 0) return;
    for (auto& level : routes_) level.clear();
    count_ = 0;
    changed();
}

const Route* Rib::lookup_route(net::Ipv4Address dst) const {
    for (int len = 32; len >= 0; --len) {
        const auto& level = routes_[static_cast<std::size_t>(len)];
        if (level.empty()) continue;
        const net::Prefix probe{dst, len};
        auto it = level.find(probe.address().to_uint());
        if (it != level.end()) return &it->second;
    }
    return nullptr;
}

std::optional<topo::RouteLookupResult> Rib::lookup(net::Ipv4Address dst) const {
    const Route* route = lookup_route(dst);
    if (route == nullptr) return std::nullopt;
    return topo::RouteLookupResult{route->ifindex, route->next_hop, route->metric};
}

const Route* Rib::find(net::Prefix prefix) const {
    const auto& level = routes_[static_cast<std::size_t>(prefix.length())];
    auto it = level.find(prefix.address().to_uint());
    return it == level.end() ? nullptr : &it->second;
}

std::vector<Route> Rib::all_routes() const {
    std::vector<Route> out;
    out.reserve(count_);
    for (const auto& level : routes_) {
        for (const auto& [addr, route] : level) out.push_back(route);
    }
    return out;
}

int Rib::subscribe(Observer observer) {
    const int token = next_token_++;
    observers_.emplace(token, std::move(observer));
    return token;
}

void Rib::unsubscribe(int token) { observers_.erase(token); }

void Rib::changed() {
    if (suspend_depth_ > 0) {
        dirty_ = true;
        return;
    }
    notify();
}

void Rib::notify() {
    // Copy tokens first: an observer may (un)subscribe re-entrantly.
    std::vector<int> tokens;
    tokens.reserve(observers_.size());
    for (const auto& [token, fn] : observers_) tokens.push_back(token);
    for (int token : tokens) {
        auto it = observers_.find(token);
        if (it != observers_.end()) it->second();
    }
}

} // namespace pimlib::unicast
