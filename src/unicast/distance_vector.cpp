#include "unicast/distance_vector.hpp"

#include <algorithm>

#include "net/buffer.hpp"
#include "topo/segment.hpp"

namespace pimlib::unicast {

std::vector<std::uint8_t> DvUpdate::encode() const {
    net::BufWriter w(4 + entries.size() * 7);
    w.put_u16(static_cast<std::uint16_t>(entries.size()));
    for (const Entry& e : entries) {
        w.put_addr(e.prefix.address());
        w.put_u8(static_cast<std::uint8_t>(e.prefix.length()));
        w.put_u16(static_cast<std::uint16_t>(e.metric));
    }
    return std::vector<std::uint8_t>(w.bytes());
}

std::optional<DvUpdate> DvUpdate::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    auto count = r.get_u16();
    if (!count) return std::nullopt;
    DvUpdate update;
    update.entries.reserve(*count);
    for (std::uint16_t i = 0; i < *count; ++i) {
        auto addr = r.get_addr();
        auto len = r.get_u8();
        auto metric = r.get_u16();
        if (!addr || !len || !metric || *len > 32) return std::nullopt;
        update.entries.push_back(Entry{net::Prefix{*addr, *len}, *metric});
    }
    if (!r.at_end()) return std::nullopt;
    return update;
}

DvAgent::DvAgent(topo::Router& router, DvConfig config)
    : router_(&router),
      config_(config),
      periodic_(router.simulator(), [this] { on_periodic(); }),
      triggered_(router.simulator(), [this] {
          triggered_pending_ = false;
          send_updates();
      }) {
    router_->set_unicast(&rib_);
    router_->register_protocol(net::IpProto::kRip,
                               [this](int ifindex, const net::Packet& packet) {
                                   on_message(ifindex, packet);
                               });
    refresh_connected();
    periodic_.start(config_.update_interval);
    // Jitter-free immediate first advertisement keeps scenarios simple and
    // deterministic; convergence still takes diameter × update exchanges.
    router_->simulator().schedule(0, [this] { send_updates(); });
}

void DvAgent::refresh_connected() {
    Rib::UpdateBatch batch{rib_};
    for (const auto& iface : router_->interfaces()) {
        if (!iface.up || iface.segment == nullptr) continue;
        TableEntry entry;
        entry.route = Route{iface.segment->prefix(), iface.ifindex, net::Ipv4Address{}, 0};
        entry.learned_from = net::Ipv4Address{};
        table_[entry.route.prefix] = entry;
        rib_.set_route(entry.route);
    }
    TableEntry self;
    self.route = Route{net::Prefix::host(router_->router_id()), -1, net::Ipv4Address{}, 0};
    table_[self.route.prefix] = self;
    rib_.set_route(self.route);
}

void DvAgent::on_periodic() {
    scan_timeouts();
    send_updates();
}

void DvAgent::send_updates() {
    for (const auto& iface : router_->interfaces()) {
        if (!iface.up || iface.segment == nullptr) continue;
        DvUpdate update;
        update.entries.reserve(table_.size());
        for (const auto& [prefix, entry] : table_) {
            int metric = entry.route.metric;
            // Split horizon with poisoned reverse: routes using this
            // interface are advertised back as unreachable.
            if (entry.route.ifindex == iface.ifindex &&
                !entry.learned_from.is_unspecified()) {
                metric = config_.infinity;
            }
            if (entry.deleting) metric = config_.infinity;
            update.entries.push_back(
                DvUpdate::Entry{prefix, std::min(metric, config_.infinity)});
        }
        net::Packet packet;
        packet.src = iface.address;
        packet.dst = net::kAllRouters;
        packet.proto = net::IpProto::kRip;
        packet.ttl = 1;
        packet.payload = update.encode();
        router_->network().stats().count_control_message("dv");
        router_->send(iface.ifindex, net::Frame{std::nullopt, std::move(packet)});
    }
}

void DvAgent::schedule_triggered() {
    if (triggered_pending_) return;
    triggered_pending_ = true;
    triggered_.arm(config_.triggered_delay);
}

void DvAgent::install(const net::Prefix& prefix, const TableEntry& entry) {
    table_[prefix] = entry;
    rib_.set_route(entry.route);
}

void DvAgent::start_deleting(TableEntry& entry) {
    entry.deleting = true;
    entry.route.metric = config_.infinity;
    entry.gc_at = router_->simulator().now() + config_.gc_delay;
    rib_.remove_route(entry.route.prefix);
    schedule_triggered();
}

void DvAgent::on_message(int ifindex, const net::Packet& packet) {
    auto update = DvUpdate::decode(packet.payload);
    if (!update) return;
    const auto& iface = router_->interface(ifindex);
    if (iface.segment == nullptr) return;
    const int link_cost = std::max(1, iface.segment->metric());
    const sim::Time now = router_->simulator().now();

    Rib::UpdateBatch batch{rib_};
    for (const auto& adv : update->entries) {
        const int metric = std::min(adv.metric + link_cost, config_.infinity);
        auto it = table_.find(adv.prefix);
        if (it == table_.end()) {
            if (metric >= config_.infinity) continue;
            TableEntry entry;
            entry.route = Route{adv.prefix, ifindex, packet.src, metric};
            entry.learned_from = packet.src;
            entry.expires = now + config_.route_timeout;
            install(adv.prefix, entry);
            schedule_triggered();
            continue;
        }
        TableEntry& entry = it->second;
        if (entry.learned_from.is_unspecified()) continue; // connected wins
        const bool same_neighbor = entry.learned_from == packet.src &&
                                   entry.route.ifindex == ifindex;
        if (same_neighbor) {
            if (metric >= config_.infinity) {
                if (!entry.deleting) start_deleting(entry);
                continue;
            }
            entry.expires = now + config_.route_timeout;
            if (entry.deleting || entry.route.metric != metric) {
                entry.deleting = false;
                entry.route.metric = metric;
                rib_.set_route(entry.route);
                schedule_triggered();
            }
        } else if (metric < entry.route.metric ||
                   (entry.deleting && metric < config_.infinity)) {
            entry.route = Route{adv.prefix, ifindex, packet.src, metric};
            entry.learned_from = packet.src;
            entry.expires = now + config_.route_timeout;
            entry.deleting = false;
            rib_.set_route(entry.route);
            schedule_triggered();
        }
    }
}

void DvAgent::scan_timeouts() {
    const sim::Time now = router_->simulator().now();
    Rib::UpdateBatch batch{rib_};
    for (auto it = table_.begin(); it != table_.end();) {
        TableEntry& entry = it->second;
        if (entry.learned_from.is_unspecified()) {
            ++it;
            continue;
        }
        if (entry.deleting && now >= entry.gc_at) {
            it = table_.erase(it);
            continue;
        }
        if (!entry.deleting && entry.expires != 0 && now >= entry.expires) {
            start_deleting(entry);
        }
        ++it;
    }
}

DvRoutingDomain::DvRoutingDomain(topo::Network& network, DvConfig config) {
    for (const auto& router : network.routers()) {
        agents_.emplace(router.get(), std::make_unique<DvAgent>(*router, config));
    }
}

DvAgent& DvRoutingDomain::agent_for(const topo::Router& router) {
    return *agents_.at(&router);
}

} // namespace pimlib::unicast
