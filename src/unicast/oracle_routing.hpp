// "Oracle" unicast routing: computes every router's RIB directly from the
// global topology with Dijkstra, the way a converged routing domain would
// look. Used when a scenario wants deterministic, instantly-converged
// unicast routing so the multicast protocol under test is the only moving
// part. Call recompute() after topology changes (link/interface up/down).
#pragma once

#include <map>
#include <memory>

#include "topo/network.hpp"
#include "unicast/rib.hpp"

namespace pimlib::unicast {

class OracleRouting {
public:
    /// Builds RIBs for all routers currently in `network` and installs each
    /// as the router's unicast lookup.
    explicit OracleRouting(topo::Network& network);

    /// Recomputes all RIBs from the current topology state. Routers keep
    /// their Rib objects (observers survive); only contents change.
    void recompute();

    [[nodiscard]] Rib& rib_for(const topo::Router& router);

    /// Shortest-path metric between two routers under current topology, or
    /// nullopt if partitioned. (Convenience for tests/benchmarks.)
    [[nodiscard]] std::optional<int> distance(const topo::Router& from,
                                              const topo::Router& to) const;

private:
    void compute_for(topo::Router& router);

    topo::Network* network_;
    std::map<const topo::Router*, std::unique_ptr<Rib>> ribs_;
};

} // namespace pimlib::unicast
