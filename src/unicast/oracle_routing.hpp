// "Oracle" unicast routing: computes every router's RIB directly from the
// global topology with Dijkstra, the way a converged routing domain would
// look. Used when a scenario wants deterministic, instantly-converged
// unicast routing so the multicast protocol under test is the only moving
// part. Subscribes to the network's topology observers, so link/interface
// up/down events recompute all RIBs automatically; calling recompute()
// by hand remains harmless (idempotent).
#pragma once

#include <map>
#include <memory>

#include "topo/network.hpp"
#include "unicast/rib.hpp"

namespace pimlib::unicast {

class OracleRouting {
public:
    /// Builds RIBs for all routers currently in `network` and installs each
    /// as the router's unicast lookup.
    explicit OracleRouting(topo::Network& network);
    ~OracleRouting();

    OracleRouting(const OracleRouting&) = delete;
    OracleRouting& operator=(const OracleRouting&) = delete;

    /// Recomputes all RIBs from the current topology state. Routers keep
    /// their Rib objects (observers survive); only contents change.
    void recompute();

    [[nodiscard]] Rib& rib_for(const topo::Router& router);

    /// Shortest-path metric between two routers under current topology, or
    /// nullopt if partitioned. (Convenience for tests/benchmarks.)
    [[nodiscard]] std::optional<int> distance(const topo::Router& from,
                                              const topo::Router& to) const;

private:
    void compute_for(topo::Router& router);

    topo::Network* network_;
    int topo_token_ = 0;
    std::map<const topo::Router*, std::unique_ptr<Rib>, topo::NodeIdLess> ribs_;
};

} // namespace pimlib::unicast
