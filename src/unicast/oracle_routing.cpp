#include "unicast/oracle_routing.hpp"

#include <limits>
#include <queue>

#include "topo/segment.hpp"

namespace pimlib::unicast {

namespace {

constexpr int kInf = std::numeric_limits<int>::max() / 4;

/// Edge in the router-level graph: to a peer router over a segment.
struct Edge {
    const topo::Router* peer;
    const topo::Segment* segment;
    int out_ifindex;        // our interface onto the segment
    net::Ipv4Address peer_addr; // peer's address on the segment
};

/// Collects usable adjacencies of `router` (segment up, both interfaces up).
std::vector<Edge> edges_of(const topo::Router& router) {
    std::vector<Edge> edges;
    for (const auto& iface : router.interfaces()) {
        if (!iface.up || iface.segment == nullptr || !iface.segment->is_up()) continue;
        for (const auto& att : iface.segment->attachments()) {
            if (att.node == &router) continue;
            auto* peer = dynamic_cast<const topo::Router*>(att.node);
            if (peer == nullptr) continue; // hosts don't forward
            if (!peer->interface(att.ifindex).up) continue;
            edges.push_back(Edge{peer, iface.segment, iface.ifindex,
                                 peer->interface(att.ifindex).address});
        }
    }
    return edges;
}

} // namespace

OracleRouting::OracleRouting(topo::Network& network) : network_(&network) {
    for (const auto& router : network_->routers()) {
        auto rib = std::make_unique<Rib>();
        router->set_unicast(rib.get());
        ribs_.emplace(router.get(), std::move(rib));
    }
    recompute();
    topo_token_ = network_->add_topology_observer([this] { recompute(); });
}

OracleRouting::~OracleRouting() { network_->remove_topology_observer(topo_token_); }

Rib& OracleRouting::rib_for(const topo::Router& router) { return *ribs_.at(&router); }

void OracleRouting::recompute() {
    for (const auto& router : network_->routers()) {
        // A router may have been added after construction; adopt it.
        if (!ribs_.contains(router.get())) {
            auto rib = std::make_unique<Rib>();
            router->set_unicast(rib.get());
            ribs_.emplace(router.get(), std::move(rib));
        }
        compute_for(*router);
    }
}

void OracleRouting::compute_for(topo::Router& source) {
    // Dijkstra over the router graph; edge weight = segment metric.
    // Deterministic tie-break: lower router node id wins.
    std::map<const topo::Router*, int> dist;
    std::map<const topo::Router*, Edge> first_hop; // first edge out of `source`
    using QueueItem = std::tuple<int, int, const topo::Router*>; // dist, id, router
    std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> queue;

    dist[&source] = 0;
    queue.emplace(0, source.id(), &source);

    while (!queue.empty()) {
        auto [d, id, router] = queue.top();
        queue.pop();
        auto it = dist.find(router);
        if (it != dist.end() && d > it->second) continue;
        for (const Edge& edge : edges_of(*router)) {
            const int nd = d + edge.segment->metric();
            auto dit = dist.find(edge.peer);
            const bool better = dit == dist.end() || nd < dit->second;
            // Equal-cost determinism: keep the path whose first hop was
            // discovered first (stable because queue pops are ordered).
            if (!better) continue;
            dist[edge.peer] = nd;
            first_hop[edge.peer] = (router == &source) ? edge : first_hop.at(router);
            queue.emplace(nd, edge.peer->id(), edge.peer);
        }
    }

    Rib& rib = *ribs_.at(&source);
    Rib::UpdateBatch batch{rib};
    rib.clear();

    // Connected routes.
    for (const auto& iface : source.interfaces()) {
        if (!iface.up || iface.segment == nullptr || !iface.segment->is_up()) continue;
        rib.set_route(Route{iface.segment->prefix(), iface.ifindex, net::Ipv4Address{}, 0});
    }
    rib.set_route(Route{net::Prefix::host(source.router_id()), -1, net::Ipv4Address{}, 0});

    // Remote segment prefixes: reachable via the best-attached router.
    for (const auto& segment : network_->segments()) {
        if (!segment->is_up()) continue;
        if (source.ifindex_on(*segment).has_value()) continue; // connected
        int best = kInf;
        const topo::Router* best_router = nullptr;
        for (const auto& att : segment->attachments()) {
            auto* r = dynamic_cast<const topo::Router*>(att.node);
            if (r == nullptr || !r->interface(att.ifindex).up) continue;
            auto it = dist.find(r);
            if (it == dist.end()) continue;
            const int total = it->second + segment->metric();
            if (total < best || (total == best && best_router != nullptr &&
                                 r->id() < best_router->id())) {
                best = total;
                best_router = r;
            }
        }
        if (best_router == nullptr || best_router == &source) continue;
        const Edge& hop = first_hop.at(best_router);
        rib.set_route(Route{segment->prefix(), hop.out_ifindex, hop.peer_addr, best});
    }

    // Router-id /32s.
    for (const auto& router : network_->routers()) {
        if (router.get() == &source) continue;
        auto it = dist.find(router.get());
        if (it == dist.end()) continue;
        const Edge& hop = first_hop.at(router.get());
        rib.set_route(Route{net::Prefix::host(router->router_id()), hop.out_ifindex,
                            hop.peer_addr, it->second});
    }
}

std::optional<int> OracleRouting::distance(const topo::Router& from,
                                           const topo::Router& to) const {
    auto it = ribs_.find(&from);
    if (it == ribs_.end()) return std::nullopt;
    if (&from == &to) return 0;
    const Route* route = it->second->lookup_route(to.router_id());
    if (route == nullptr || route->prefix.length() != 32) return std::nullopt;
    return route->metric;
}

} // namespace pimlib::unicast
