#include "unicast/link_state.hpp"

#include <limits>
#include <queue>

#include "net/buffer.hpp"
#include "topo/segment.hpp"

namespace pimlib::unicast {

namespace {
constexpr std::uint8_t kTypeHello = 1;
constexpr std::uint8_t kTypeLsa = 2;
constexpr int kInf = std::numeric_limits<int>::max() / 4;
} // namespace

std::vector<std::uint8_t> Lsa::encode() const {
    net::BufWriter w(16 + links.size() * 6 + prefixes.size() * 7);
    w.put_u8(kTypeLsa);
    w.put_addr(origin);
    w.put_u32(seq);
    w.put_u16(static_cast<std::uint16_t>(links.size()));
    for (const Link& l : links) {
        w.put_addr(l.neighbor);
        w.put_u16(static_cast<std::uint16_t>(l.metric));
    }
    w.put_u16(static_cast<std::uint16_t>(prefixes.size()));
    for (const AdvPrefix& p : prefixes) {
        w.put_addr(p.prefix.address());
        w.put_u8(static_cast<std::uint8_t>(p.prefix.length()));
        w.put_u16(static_cast<std::uint16_t>(p.metric));
    }
    return std::vector<std::uint8_t>(w.bytes());
}

std::optional<Lsa> Lsa::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    auto type = r.get_u8();
    if (!type || *type != kTypeLsa) return std::nullopt;
    Lsa lsa;
    auto origin = r.get_addr();
    auto seq = r.get_u32();
    auto nlinks = r.get_u16();
    if (!origin || !seq || !nlinks) return std::nullopt;
    lsa.origin = *origin;
    lsa.seq = *seq;
    for (std::uint16_t i = 0; i < *nlinks; ++i) {
        auto rid = r.get_addr();
        auto metric = r.get_u16();
        if (!rid || !metric) return std::nullopt;
        lsa.links.push_back(Link{*rid, *metric});
    }
    auto nprefixes = r.get_u16();
    if (!nprefixes) return std::nullopt;
    for (std::uint16_t i = 0; i < *nprefixes; ++i) {
        auto addr = r.get_addr();
        auto len = r.get_u8();
        auto metric = r.get_u16();
        if (!addr || !len || !metric.has_value() || *len > 32) return std::nullopt;
        lsa.prefixes.push_back(AdvPrefix{net::Prefix{*addr, *len}, *metric});
    }
    if (!r.at_end()) return std::nullopt;
    return lsa;
}

LsAgent::LsAgent(topo::Router& router, LsConfig config)
    : router_(&router),
      config_(config),
      hello_timer_(router.simulator(), [this] { on_hello_tick(); }),
      refresh_timer_(router.simulator(), [this] { originate_lsa(); }),
      spf_timer_(router.simulator(), [this] {
          spf_pending_ = false;
          run_spf();
      }) {
    router_->set_unicast(&rib_);
    router_->register_protocol(net::IpProto::kOspf,
                               [this](int ifindex, const net::Packet& packet) {
                                   on_message(ifindex, packet);
                               });
    hello_timer_.start(config_.hello_interval);
    refresh_timer_.start(config_.lsa_refresh);
    router_->simulator().schedule(0, [this] {
        send_hellos();
        originate_lsa();
    });
}

void LsAgent::on_hello_tick() {
    expire_neighbors();
    send_hellos();
}

void LsAgent::send_hellos() {
    for (const auto& iface : router_->interfaces()) {
        if (!iface.up || iface.segment == nullptr) continue;
        net::BufWriter w(5);
        w.put_u8(kTypeHello);
        w.put_addr(router_->router_id());
        net::Packet packet;
        packet.src = iface.address;
        packet.dst = net::kAllRouters;
        packet.proto = net::IpProto::kOspf;
        packet.ttl = 1;
        packet.payload = w.take();
        router_->network().stats().count_control_message("ls-hello");
        router_->send(iface.ifindex, net::Frame{std::nullopt, std::move(packet)});
    }
}

void LsAgent::expire_neighbors() {
    const sim::Time now = router_->simulator().now();
    bool changed = false;
    for (auto& [ifindex, neighbors] : neighbors_) {
        for (auto it = neighbors.begin(); it != neighbors.end();) {
            if (now - it->second.last_heard > config_.dead_interval) {
                it = neighbors.erase(it);
                changed = true;
            } else {
                ++it;
            }
        }
    }
    // Age out LSAs from routers we have not heard of in a long time.
    for (auto it = lsdb_.begin(); it != lsdb_.end();) {
        if (it->first != router_->router_id() &&
            now - it->second.received_at > config_.lsa_max_age) {
            it = lsdb_.erase(it);
            changed = true;
        } else {
            ++it;
        }
    }
    if (changed) {
        originate_lsa();
        schedule_spf();
    }
}

void LsAgent::originate_lsa() {
    Lsa lsa;
    lsa.origin = router_->router_id();
    lsa.seq = ++own_seq_;
    for (const auto& [ifindex, neighbors] : neighbors_) {
        const auto& iface = router_->interface(ifindex);
        if (!iface.up || iface.segment == nullptr) continue;
        for (const auto& [rid, nbr] : neighbors) {
            lsa.links.push_back(Lsa::Link{rid, iface.segment->metric()});
        }
    }
    for (const auto& iface : router_->interfaces()) {
        if (!iface.up || iface.segment == nullptr) continue;
        lsa.prefixes.push_back(Lsa::AdvPrefix{iface.segment->prefix(),
                                              iface.segment->metric()});
    }
    lsa.prefixes.push_back(
        Lsa::AdvPrefix{net::Prefix::host(router_->router_id()), 0});
    lsdb_[lsa.origin] = DbEntry{lsa, router_->simulator().now()};
    flood(lsa, /*except_ifindex=*/-1);
    schedule_spf();
}

void LsAgent::flood(const Lsa& lsa, int except_ifindex) {
    for (const auto& iface : router_->interfaces()) {
        if (!iface.up || iface.segment == nullptr) continue;
        if (iface.ifindex == except_ifindex) continue;
        net::Packet packet;
        packet.src = iface.address;
        packet.dst = net::kAllRouters;
        packet.proto = net::IpProto::kOspf;
        packet.ttl = 1;
        packet.payload = lsa.encode();
        router_->network().stats().count_control_message("ls-lsa");
        router_->send(iface.ifindex, net::Frame{std::nullopt, std::move(packet)});
    }
}

void LsAgent::on_message(int ifindex, const net::Packet& packet) {
    if (packet.payload.empty()) return;
    if (packet.payload.front() == kTypeHello) {
        net::BufReader r(packet.payload);
        (void)r.get_u8();
        auto rid = r.get_addr();
        if (!rid) return;
        auto& neighbors = neighbors_[ifindex];
        auto it = neighbors.find(*rid);
        const bool is_new = it == neighbors.end();
        neighbors[*rid] = Neighbor{packet.src, router_->simulator().now()};
        if (is_new) originate_lsa(); // adjacency came up
        return;
    }
    auto lsa = Lsa::decode(packet.payload);
    if (!lsa) return;
    if (lsa->origin == router_->router_id()) return; // our own, looped back
    auto it = lsdb_.find(lsa->origin);
    if (it != lsdb_.end() && it->second.lsa.seq >= lsa->seq) {
        // Old news; still refresh the age so periodic refresh keeps it alive.
        if (it->second.lsa.seq == lsa->seq) {
            it->second.received_at = router_->simulator().now();
        }
        return;
    }
    lsdb_[lsa->origin] = DbEntry{*lsa, router_->simulator().now()};
    flood(*lsa, ifindex);
    schedule_spf();
}

void LsAgent::schedule_spf() {
    if (spf_pending_) return;
    spf_pending_ = true;
    spf_timer_.arm(config_.spf_delay);
}

void LsAgent::run_spf() {
    // Dijkstra over the LSDB. An edge u->v is used only if v's LSA also
    // lists u (bidirectional check), preventing routes through half-dead
    // links.
    const net::Ipv4Address self = router_->router_id();
    std::map<net::Ipv4Address, int> dist;
    std::map<net::Ipv4Address, net::Ipv4Address> first_hop; // rid -> first-hop rid
    using Item = std::pair<int, net::Ipv4Address>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    dist[self] = 0;
    queue.emplace(0, self);

    auto lists_link_back = [&](net::Ipv4Address from, net::Ipv4Address to) {
        auto it = lsdb_.find(to);
        if (it == lsdb_.end()) return false;
        for (const auto& link : it->second.lsa.links) {
            if (link.neighbor == from) return true;
        }
        return false;
    };

    while (!queue.empty()) {
        auto [d, rid] = queue.top();
        queue.pop();
        auto dit = dist.find(rid);
        if (dit != dist.end() && d > dit->second) continue;
        auto lit = lsdb_.find(rid);
        if (lit == lsdb_.end()) continue;
        for (const auto& link : lit->second.lsa.links) {
            if (!lists_link_back(rid, link.neighbor)) continue;
            const int nd = d + link.metric;
            auto nit = dist.find(link.neighbor);
            if (nit != dist.end() && nd >= nit->second) continue;
            dist[link.neighbor] = nd;
            first_hop[link.neighbor] = (rid == self) ? link.neighbor : first_hop.at(rid);
            queue.emplace(nd, link.neighbor);
        }
    }

    // Resolve a first-hop router id to (ifindex, address) via hello state.
    auto resolve = [&](net::Ipv4Address rid)
        -> std::optional<std::pair<int, net::Ipv4Address>> {
        for (const auto& [ifindex, neighbors] : neighbors_) {
            auto it = neighbors.find(rid);
            if (it != neighbors.end()) return {{ifindex, it->second.address}};
        }
        return std::nullopt;
    };

    Rib::UpdateBatch batch{rib_};
    rib_.clear();
    for (const auto& iface : router_->interfaces()) {
        if (!iface.up || iface.segment == nullptr) continue;
        rib_.set_route(Route{iface.segment->prefix(), iface.ifindex, net::Ipv4Address{}, 0});
    }
    rib_.set_route(Route{net::Prefix::host(self), -1, net::Ipv4Address{}, 0});

    // Best advertiser per prefix.
    std::map<net::Prefix, std::pair<int, net::Ipv4Address>> best; // prefix -> (metric, advertiser)
    for (const auto& [rid, entry] : lsdb_) {
        if (rid == self) continue;
        auto dit = dist.find(rid);
        if (dit == dist.end()) continue;
        for (const auto& adv : entry.lsa.prefixes) {
            const int total = dit->second + adv.metric;
            auto bit = best.find(adv.prefix);
            if (bit == best.end() || total < bit->second.first ||
                (total == bit->second.first && rid < bit->second.second)) {
                best[adv.prefix] = {total, rid};
            }
        }
    }
    for (const auto& [prefix, metric_rid] : best) {
        if (rib_.find(prefix) != nullptr) continue; // connected wins
        auto hop_rid_it = first_hop.find(metric_rid.second);
        if (hop_rid_it == first_hop.end()) continue;
        auto hop = resolve(hop_rid_it->second);
        if (!hop) continue;
        rib_.set_route(Route{prefix, hop->first, hop->second, metric_rid.first});
    }
}

LsRoutingDomain::LsRoutingDomain(topo::Network& network, LsConfig config) {
    for (const auto& router : network.routers()) {
        agents_.emplace(router.get(), std::make_unique<LsAgent>(*router, config));
    }
}

LsAgent& LsRoutingDomain::agent_for(const topo::Router& router) {
    return *agents_.at(&router);
}

} // namespace pimlib::unicast
