// Routing information base: longest-prefix-match table with change
// observers. This is the "protocol independent" boundary from the paper —
// multicast protocols consume lookups and change notifications from the RIB
// without knowing whether a distance-vector protocol, a link-state protocol,
// or a static oracle filled it in.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"
#include "topo/router.hpp"

namespace pimlib::unicast {

struct Route {
    net::Prefix prefix;
    int ifindex = -1;
    net::Ipv4Address next_hop; // unspecified => directly connected
    int metric = 0;

    friend bool operator==(const Route&, const Route&) = default;
};

class Rib final : public topo::UnicastLookup {
public:
    /// Adds or replaces the route for `route.prefix`. Notifies observers if
    /// anything actually changed (unless suspended, see UpdateBatch).
    void set_route(const Route& route);

    /// Removes the route for `prefix`; returns true if one existed.
    bool remove_route(net::Prefix prefix);

    /// Removes every route; observers notified once if non-empty.
    void clear();

    [[nodiscard]] std::optional<topo::RouteLookupResult>
    lookup(net::Ipv4Address dst) const override;

    /// The stored route whose prefix best matches dst, if any.
    [[nodiscard]] const Route* lookup_route(net::Ipv4Address dst) const;
    /// Exact-match fetch.
    [[nodiscard]] const Route* find(net::Prefix prefix) const;

    [[nodiscard]] std::size_t size() const { return count_; }
    [[nodiscard]] std::vector<Route> all_routes() const;

    /// Observers run synchronously after each batch of changes.
    using Observer = std::function<void()>;
    int subscribe(Observer observer);
    void unsubscribe(int token);

    // topo::UnicastLookup change-subscription interface.
    int subscribe_changes(std::function<void()> observer) override {
        return subscribe(std::move(observer));
    }
    void unsubscribe_changes(int token) override { unsubscribe(token); }

    /// RAII batching: while alive, set_route/remove_route do not notify;
    /// one notification fires on destruction if anything changed.
    class UpdateBatch {
    public:
        explicit UpdateBatch(Rib& rib) : rib_(&rib) { ++rib_->suspend_depth_; }
        ~UpdateBatch() {
            if (--rib_->suspend_depth_ == 0 && rib_->dirty_) {
                rib_->dirty_ = false;
                rib_->notify();
            }
        }
        UpdateBatch(const UpdateBatch&) = delete;
        UpdateBatch& operator=(const UpdateBatch&) = delete;

    private:
        Rib* rib_;
    };

private:
    friend class UpdateBatch;
    void changed();
    void notify();

    // routes_[len] maps masked network address -> route, so longest-prefix
    // match is a scan from /32 downward with O(log n) per level.
    std::array<std::map<std::uint32_t, Route>, 33> routes_;
    std::size_t count_ = 0;
    std::map<int, Observer> observers_;
    int next_token_ = 1;
    int suspend_depth_ = 0;
    bool dirty_ = false;
};

} // namespace pimlib::unicast
