// Distance-vector unicast routing, in the style of RIP: periodic full-table
// updates with split horizon and poisoned reverse, triggered updates on
// change, soft-state route timeout and garbage collection. One DvAgent runs
// per router; DvRoutingDomain wires a whole network.
//
// This is one of the interchangeable unicast providers demonstrating the
// paper's "protocol independence" requirement: PIM consumes only the RIB
// these agents maintain.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "sim/simulator.hpp"
#include "topo/network.hpp"
#include "unicast/rib.hpp"

namespace pimlib::unicast {

struct DvConfig {
    sim::Time update_interval = 5 * sim::kSecond;
    sim::Time route_timeout = 15 * sim::kSecond;   // 3 × update: invalidate
    sim::Time gc_delay = 10 * sim::kSecond;        // hold poisoned before delete
    sim::Time triggered_delay = 50 * sim::kMillisecond; // damping
    int infinity = 64;
};

/// One DV route advertisement: (prefix, metric) pairs.
struct DvUpdate {
    struct Entry {
        net::Prefix prefix;
        int metric;
        friend bool operator==(const Entry&, const Entry&) = default;
    };
    std::vector<Entry> entries;

    [[nodiscard]] std::vector<std::uint8_t> encode() const;
    static std::optional<DvUpdate> decode(std::span<const std::uint8_t> bytes);
};

class DvAgent {
public:
    DvAgent(topo::Router& router, DvConfig config = {});

    [[nodiscard]] Rib& rib() { return rib_; }
    [[nodiscard]] const Rib& rib() const { return rib_; }
    [[nodiscard]] topo::Router& router() { return *router_; }

    /// Re-scans connected interfaces (call after an interface flaps up).
    void refresh_connected();

private:
    struct TableEntry {
        Route route;
        net::Ipv4Address learned_from; // advertising neighbor; unspecified = connected
        sim::Time expires = 0;         // 0 = never (connected)
        bool deleting = false;         // poisoned, awaiting gc
        sim::Time gc_at = 0;
    };

    void on_message(int ifindex, const net::Packet& packet);
    void on_periodic();
    void send_updates();
    void schedule_triggered();
    void scan_timeouts();
    void install(const net::Prefix& prefix, const TableEntry& entry);
    void start_deleting(TableEntry& entry);

    topo::Router* router_;
    DvConfig config_;
    Rib rib_;
    std::map<net::Prefix, TableEntry> table_;
    sim::PeriodicTimer periodic_;
    sim::OneshotTimer triggered_;
    bool triggered_pending_ = false;
};

/// Creates and owns a DvAgent for every router in the network.
class DvRoutingDomain {
public:
    explicit DvRoutingDomain(topo::Network& network, DvConfig config = {});
    [[nodiscard]] DvAgent& agent_for(const topo::Router& router);

private:
    std::map<const topo::Router*, std::unique_ptr<DvAgent>, topo::NodeIdLess> agents_;
};

} // namespace pimlib::unicast
