// Link-state unicast routing, in the style of OSPF: hello-based neighbor
// discovery with dead-interval expiry, sequence-numbered LSA flooding, and
// Dijkstra SPF over the link-state database. One LsAgent per router;
// LsRoutingDomain wires a whole network.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "sim/simulator.hpp"
#include "topo/network.hpp"
#include "unicast/rib.hpp"

namespace pimlib::unicast {

struct LsConfig {
    sim::Time hello_interval = 2 * sim::kSecond;
    sim::Time dead_interval = 6 * sim::kSecond;   // 3 × hello
    sim::Time lsa_refresh = 20 * sim::kSecond;
    sim::Time lsa_max_age = 60 * sim::kSecond;
    sim::Time spf_delay = 20 * sim::kMillisecond; // damping
};

/// A router link-state advertisement.
struct Lsa {
    net::Ipv4Address origin; // router id
    std::uint32_t seq = 0;
    struct Link {
        net::Ipv4Address neighbor; // router id
        int metric;
        friend bool operator==(const Link&, const Link&) = default;
    };
    struct AdvPrefix {
        net::Prefix prefix;
        int metric;
        friend bool operator==(const AdvPrefix&, const AdvPrefix&) = default;
    };
    std::vector<Link> links;
    std::vector<AdvPrefix> prefixes;

    [[nodiscard]] std::vector<std::uint8_t> encode() const;
    static std::optional<Lsa> decode(std::span<const std::uint8_t> bytes);
};

class LsAgent {
public:
    LsAgent(topo::Router& router, LsConfig config = {});

    [[nodiscard]] Rib& rib() { return rib_; }
    [[nodiscard]] const Rib& rib() const { return rib_; }
    [[nodiscard]] std::size_t lsdb_size() const { return lsdb_.size(); }

private:
    struct Neighbor {
        net::Ipv4Address address; // interface address on shared segment
        sim::Time last_heard = 0;
    };
    struct DbEntry {
        Lsa lsa;
        sim::Time received_at = 0;
    };

    void on_message(int ifindex, const net::Packet& packet);
    void on_hello_tick();
    void send_hellos();
    void expire_neighbors();
    void originate_lsa();
    void flood(const Lsa& lsa, int except_ifindex);
    void schedule_spf();
    void run_spf();

    topo::Router* router_;
    LsConfig config_;
    Rib rib_;
    // neighbors_[ifindex][router_id] = Neighbor
    std::map<int, std::map<net::Ipv4Address, Neighbor>> neighbors_;
    std::map<net::Ipv4Address, DbEntry> lsdb_;
    std::uint32_t own_seq_ = 0;
    sim::PeriodicTimer hello_timer_;
    sim::PeriodicTimer refresh_timer_;
    sim::OneshotTimer spf_timer_;
    bool spf_pending_ = false;
};

class LsRoutingDomain {
public:
    explicit LsRoutingDomain(topo::Network& network, LsConfig config = {});
    [[nodiscard]] LsAgent& agent_for(const topo::Router& router);

private:
    std::map<const topo::Router*, std::unique_ptr<LsAgent>, topo::NodeIdLess> agents_;
};

} // namespace pimlib::unicast
