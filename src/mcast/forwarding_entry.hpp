// Multicast forwarding entries, exactly as §3 of the paper describes them:
// (S,G) entries with incoming interface, outgoing interface list with
// per-interface timers, and the WC (wildcard), RP and SPT bits. A (*,G)
// entry stores the RP address in place of the source and has the WC bit set.
//
// Layout is deliberately flat: the oif list and the pruned-oif set are small
// sorted vectors (routers have a handful of interfaces), so the per-packet
// walk in DataPlane::replicate touches one contiguous run of memory instead
// of chasing red-black tree nodes, and entries arena-allocate cleanly
// (see ForwardingCache). docs/TIMERS.md quantifies why this matters at
// million-entry scale.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/ipv4.hpp"
#include "sim/simulator.hpp"

namespace pimlib::mcast {

/// State of one outgoing interface within a forwarding entry.
struct OifState {
    /// Soft-state expiry (absolute sim time); refreshed by received joins.
    sim::Time expires = 0;
    /// Pinned by directly-connected membership (IGMP); never times out while
    /// pinned — only an explicit membership loss unpins it.
    bool pinned = false;

    [[nodiscard]] bool alive(sim::Time now) const { return pinned || expires > now; }
};

class ForwardingEntry {
public:
    /// Sorted by ifindex; iteration yields (ifindex, state) pairs just like
    /// the std::map this replaced.
    using OifList = std::vector<std::pair<int, OifState>>;

    /// Makes an (S,G) shortest-path-tree entry.
    static ForwardingEntry make_sg(net::Ipv4Address source, net::GroupAddress group);
    /// Makes a (*,G) shared-tree entry; `rp` is stored in the source slot
    /// "in place of the source address" (§3).
    static ForwardingEntry make_wc(net::Ipv4Address rp, net::GroupAddress group);

    [[nodiscard]] net::GroupAddress group() const { return group_; }
    /// The source for (S,G); the RP address for (*,G).
    [[nodiscard]] net::Ipv4Address source_or_rp() const { return source_or_rp_; }

    // --- flags ---
    [[nodiscard]] bool wildcard() const { return wc_bit_; }   // WC bit
    [[nodiscard]] bool rp_bit() const { return rp_bit_; }     // iif faces the RP
    [[nodiscard]] bool spt_bit() const { return spt_bit_; }   // SPT fully set up
    void set_rp_bit(bool v) { rp_bit_ = v; }
    void set_spt_bit(bool v) { spt_bit_ = v; }

    // --- incoming interface ---
    [[nodiscard]] int iif() const { return iif_; }
    void set_iif(int ifindex) { iif_ = ifindex; }
    /// Upstream neighbor to address joins/prunes to (unset = upstream is
    /// directly connected, e.g. the source's or RP's own subnet).
    [[nodiscard]] std::optional<net::Ipv4Address> upstream_neighbor() const {
        return upstream_neighbor_;
    }
    void set_upstream_neighbor(std::optional<net::Ipv4Address> n) {
        upstream_neighbor_ = n;
    }

    // --- outgoing interface list ---
    /// Adds or refreshes `ifindex` with soft-state expiry at `expires`.
    void add_oif(int ifindex, sim::Time expires);
    /// Adds or marks `ifindex` pinned by local membership.
    void pin_oif(int ifindex);
    void unpin_oif(int ifindex);
    /// Refreshes the timer of an existing oif (no-op when absent).
    void refresh_oif(int ifindex, sim::Time expires);
    /// Removes outright (prune or timer expiry).
    void remove_oif(int ifindex);
    [[nodiscard]] bool has_oif(int ifindex) const { return find_oif(ifindex) != nullptr; }
    /// The interface's state, or null when absent.
    [[nodiscard]] const OifState* find_oif(int ifindex) const;
    [[nodiscard]] const OifList& oifs() const { return oifs_; }
    /// Calls `fn(ifindex)` for every interface alive at `now`, allocation
    /// free — this is the data plane's per-packet path.
    template <typename Fn>
    void for_each_live_oif(sim::Time now, Fn&& fn) const {
        for (const auto& [ifindex, state] : oifs_) {
            if (state.alive(now)) fn(ifindex);
        }
    }
    /// Interfaces alive at `now` (pinned or unexpired). Allocates; tests and
    /// slow paths only — the data plane uses for_each_live_oif.
    [[nodiscard]] std::vector<int> live_oifs(sim::Time now) const;
    /// Drops oifs whose timers have expired; returns the removed interfaces.
    [[nodiscard]] std::vector<int> expire_oifs(sim::Time now);
    [[nodiscard]] bool oif_list_empty(sim::Time now) const {
        for (const auto& [ifindex, state] : oifs_) {
            if (state.alive(now)) return false;
        }
        return true;
    }

    // --- negative-cache prune state (for (S,G)RP-bit entries, §3.3) ---
    /// Marks `ifindex` pruned for this source on the shared tree: the oif is
    /// removed and remembered so that future (*,G) oif additions skip it.
    void mark_pruned(int ifindex);
    /// A (*,G) join on the interface cancels the prune.
    void clear_pruned(int ifindex);
    [[nodiscard]] bool is_pruned(int ifindex) const;
    [[nodiscard]] const std::vector<int>& pruned_oifs() const { return pruned_oifs_; }

    // --- entry-level soft state ---
    /// Deletion deadline once the oif list went null (3 × refresh, §3.6);
    /// 0 = not scheduled.
    [[nodiscard]] sim::Time delete_at() const { return delete_at_; }
    void set_delete_at(sim::Time t) { delete_at_ = t; }

    /// RP-reachability timer deadline for (*,G) entries (§3.2, §3.9).
    [[nodiscard]] sim::Time rp_timer_deadline() const { return rp_timer_deadline_; }
    void set_rp_timer_deadline(sim::Time t) { rp_timer_deadline_ = t; }

    /// Last time a data packet matched this entry (maintained by the data
    /// plane; lets an RP keep source state alive while data flows, §3.10).
    [[nodiscard]] sim::Time last_data_at() const { return last_data_; }
    void note_data(sim::Time t) { last_data_ = t; }

    [[nodiscard]] std::string describe() const;

private:
    [[nodiscard]] OifList::iterator lower_bound_oif(int ifindex);
    /// Existing state or a fresh default-constructed one, kept sorted.
    OifState& ensure_oif(int ifindex);

    net::GroupAddress group_;
    net::Ipv4Address source_or_rp_;
    bool wc_bit_ = false;
    bool rp_bit_ = false;
    bool spt_bit_ = false;
    int iif_ = -1;
    std::optional<net::Ipv4Address> upstream_neighbor_;
    OifList oifs_;
    std::vector<int> pruned_oifs_; // sorted
    sim::Time delete_at_ = 0;
    sim::Time rp_timer_deadline_ = 0;
    sim::Time last_data_ = 0;
};

} // namespace pimlib::mcast
