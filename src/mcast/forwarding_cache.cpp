#include "mcast/forwarding_cache.hpp"

#include "stats/counters.hpp"
#include "topo/network.hpp"

namespace pimlib::mcast {

ForwardingEntry* ForwardingCache::find_sg(net::Ipv4Address source, net::GroupAddress group) {
    auto it = sg_.find(SgKey{source, group});
    return it == sg_.end() ? nullptr : &it->second;
}

const ForwardingEntry* ForwardingCache::find_sg(net::Ipv4Address source,
                                                net::GroupAddress group) const {
    auto it = sg_.find(SgKey{source, group});
    return it == sg_.end() ? nullptr : &it->second;
}

ForwardingEntry* ForwardingCache::find_wc(net::GroupAddress group) {
    auto it = wc_.find(group);
    return it == wc_.end() ? nullptr : &it->second;
}

const ForwardingEntry* ForwardingCache::find_wc(net::GroupAddress group) const {
    auto it = wc_.find(group);
    return it == wc_.end() ? nullptr : &it->second;
}

ForwardingEntry& ForwardingCache::ensure_sg(net::Ipv4Address source, net::GroupAddress group) {
    auto it = sg_.find(SgKey{source, group});
    if (it != sg_.end()) return it->second;
    return sg_.emplace(SgKey{source, group}, ForwardingEntry::make_sg(source, group))
        .first->second;
}

ForwardingEntry& ForwardingCache::ensure_wc(net::Ipv4Address rp, net::GroupAddress group) {
    auto it = wc_.find(group);
    if (it != wc_.end()) return it->second;
    return wc_.emplace(group, ForwardingEntry::make_wc(rp, group)).first->second;
}

void ForwardingCache::remove_sg(net::Ipv4Address source, net::GroupAddress group) {
    sg_.erase(SgKey{source, group});
}

void ForwardingCache::remove_wc(net::GroupAddress group) { wc_.erase(group); }

void ForwardingCache::for_each_sg(const std::function<void(ForwardingEntry&)>& fn) {
    for (auto& [key, entry] : sg_) fn(entry);
}

void ForwardingCache::for_each_wc(const std::function<void(ForwardingEntry&)>& fn) {
    for (auto& [key, entry] : wc_) fn(entry);
}

void ForwardingCache::for_each_sg_of(net::GroupAddress group,
                                     const std::function<void(ForwardingEntry&)>& fn) {
    for (auto& [key, entry] : sg_) {
        if (key.second == group) fn(entry);
    }
}

std::vector<ForwardingCache::SgKey> ForwardingCache::reap_expired_entries(sim::Time now) {
    std::vector<SgKey> removed;
    for (auto it = sg_.begin(); it != sg_.end();) {
        const sim::Time at = it->second.delete_at();
        if (at != 0 && now >= at) {
            removed.push_back(it->first);
            it = sg_.erase(it);
        } else {
            ++it;
        }
    }
    return removed;
}

namespace {

telemetry::EntrySnapshot snapshot_entry(const ForwardingEntry& entry, sim::Time now) {
    telemetry::EntrySnapshot out;
    out.source_or_rp = entry.source_or_rp().to_string();
    out.group = entry.group().to_string();
    out.wildcard = entry.wildcard();
    out.rp_bit = entry.rp_bit();
    out.spt_bit = entry.spt_bit();
    out.iif = entry.iif();
    for (const auto& [ifindex, state] : entry.oifs()) {
        telemetry::OifSnapshot oif;
        oif.ifindex = ifindex;
        oif.pinned = state.pinned;
        oif.remaining = state.pinned ? 0 : std::max<sim::Time>(0, state.expires - now);
        out.oifs.push_back(oif);
    }
    out.pruned_oifs.assign(entry.pruned_oifs().begin(), entry.pruned_oifs().end());
    out.delete_in =
        entry.delete_at() == 0 ? 0 : std::max<sim::Time>(0, entry.delete_at() - now);
    return out;
}

} // namespace

telemetry::RouterMrib ForwardingCache::snapshot(const std::string& router_name,
                                                sim::Time now) const {
    telemetry::RouterMrib out;
    out.router = router_name;
    out.entries.reserve(wc_.size() + sg_.size());
    for (const auto& [group, entry] : wc_) {
        out.entries.push_back(snapshot_entry(entry, now));
    }
    for (const auto& [key, entry] : sg_) {
        out.entries.push_back(snapshot_entry(entry, now));
    }
    return out;
}

DataPlane::DataPlane(topo::Router& router, ForwardingCache& cache)
    : router_(&router), cache_(&cache) {
    router_->set_multicast_handler(this);
}

void DataPlane::replicate(const ForwardingEntry& entry, int ifindex,
                          const net::Packet& packet) {
    if (packet.ttl <= 1) {
        router_->network().stats().count_data_dropped_ttl();
        return;
    }
    net::Packet out = packet;
    out.ttl -= 1;
    const sim::Time now = router_->simulator().now();
    for (int oif : entry.live_oifs(now)) {
        if (oif == ifindex) continue; // never back out the arrival interface
        if (oif < 0 || oif >= router_->interface_count()) continue;
        router_->send(oif, net::Frame{std::nullopt, out});
    }
}

void DataPlane::on_multicast_data(int ifindex, const net::Packet& packet) {
    const net::GroupAddress group{packet.dst};
    const net::Ipv4Address source = packet.src;

    ForwardingEntry* sg = cache_->find_sg(source, group);
    ForwardingEntry* wc = cache_->find_wc(group);

    if (sg != nullptr) {
        sg->note_data(router_->simulator().now());
        if (sg->spt_bit() || sg->rp_bit()) {
            // Normal path: strict incoming interface check.
            if (ifindex == sg->iif()) {
                replicate(*sg, ifindex, packet);
                if (delegate_ != nullptr) {
                    delegate_->on_sg_forward(*sg, ifindex, packet);
                    if (sg->oif_list_empty(router_->simulator().now())) {
                        delegate_->on_no_downstream(*sg, ifindex, packet);
                    }
                }
            } else {
                router_->network().stats().count_data_dropped_iif();
                if (delegate_ != nullptr) delegate_->on_iif_check_failed(ifindex, packet);
            }
            return;
        }
        // (S,G) with cleared SPT bit: the §3.5 transition exceptions.
        if (ifindex == sg->iif()) {
            // Second exception: data arrived on the shortest-path iif —
            // forward it and set the SPT bit.
            replicate(*sg, ifindex, packet);
            sg->set_spt_bit(true);
            if (delegate_ != nullptr) {
                delegate_->on_spt_bit_set(*sg);
                delegate_->on_sg_forward(*sg, ifindex, packet);
            }
            return;
        }
        // First exception: fall back to the (*,G) entry while the SPT
        // branch is still being built.
        if (wc != nullptr && ifindex == wc->iif()) {
            replicate(*wc, ifindex, packet);
            if (delegate_ != nullptr) delegate_->on_wildcard_forward(ifindex, packet);
            return;
        }
        router_->network().stats().count_data_dropped_iif();
        if (delegate_ != nullptr) delegate_->on_iif_check_failed(ifindex, packet);
        return;
    }

    if (wc != nullptr) {
        if (ifindex == wc->iif()) {
            replicate(*wc, ifindex, packet);
            if (delegate_ != nullptr) delegate_->on_wildcard_forward(ifindex, packet);
        } else {
            router_->network().stats().count_data_dropped_iif();
            if (delegate_ != nullptr) delegate_->on_iif_check_failed(ifindex, packet);
        }
        return;
    }

    if (delegate_ != nullptr) delegate_->on_no_entry(ifindex, packet);
}

} // namespace pimlib::mcast
