#include "mcast/forwarding_cache.hpp"

#include "stats/counters.hpp"
#include "telemetry/profiler/profiler.hpp"
#include "topo/network.hpp"

namespace pimlib::mcast {

ForwardingEntry* ForwardingCache::find_sg(net::Ipv4Address source, net::GroupAddress group) {
    auto it = sg_.find(SgKey{source, group});
    return it == sg_.end() ? nullptr : it->second;
}

const ForwardingEntry* ForwardingCache::find_sg(net::Ipv4Address source,
                                                net::GroupAddress group) const {
    auto it = sg_.find(SgKey{source, group});
    return it == sg_.end() ? nullptr : it->second;
}

ForwardingEntry* ForwardingCache::find_wc(net::GroupAddress group) {
    auto it = wc_.find(group);
    return it == wc_.end() ? nullptr : it->second;
}

const ForwardingEntry* ForwardingCache::find_wc(net::GroupAddress group) const {
    auto it = wc_.find(group);
    return it == wc_.end() ? nullptr : it->second;
}

ForwardingEntry& ForwardingCache::ensure_sg(net::Ipv4Address source, net::GroupAddress group) {
    auto it = sg_.find(SgKey{source, group});
    if (it != sg_.end()) return *it->second;
    ForwardingEntry* entry = arena_.create(ForwardingEntry::make_sg(source, group));
    sg_.emplace(SgKey{source, group}, entry);
    return *entry;
}

ForwardingEntry& ForwardingCache::ensure_wc(net::Ipv4Address rp, net::GroupAddress group) {
    auto it = wc_.find(group);
    if (it != wc_.end()) return *it->second;
    ForwardingEntry* entry = arena_.create(ForwardingEntry::make_wc(rp, group));
    wc_.emplace(group, entry);
    return *entry;
}

void ForwardingCache::remove_sg(net::Ipv4Address source, net::GroupAddress group) {
    auto it = sg_.find(SgKey{source, group});
    if (it == sg_.end()) return;
    arena_.destroy(it->second);
    sg_.erase(it);
}

void ForwardingCache::remove_wc(net::GroupAddress group) {
    auto it = wc_.find(group);
    if (it == wc_.end()) return;
    arena_.destroy(it->second);
    wc_.erase(it);
}

void ForwardingCache::clear() {
    for (auto& [key, entry] : sg_) arena_.destroy(entry);
    for (auto& [group, entry] : wc_) arena_.destroy(entry);
    sg_.clear();
    wc_.clear();
}

void ForwardingCache::for_each_sg(const std::function<void(ForwardingEntry&)>& fn) {
    for (auto& [key, entry] : sg_) fn(*entry);
}

void ForwardingCache::for_each_wc(const std::function<void(ForwardingEntry&)>& fn) {
    for (auto& [key, entry] : wc_) fn(*entry);
}

void ForwardingCache::for_each_sg_of(net::GroupAddress group,
                                     const std::function<void(ForwardingEntry&)>& fn) {
    for (auto& [key, entry] : sg_) {
        if (key.second == group) fn(*entry);
    }
}

void ForwardingCache::for_each_sg_of(
    net::GroupAddress group,
    const std::function<void(const ForwardingEntry&)>& fn) const {
    for (const auto& [key, entry] : sg_) {
        if (key.second == group) fn(*entry);
    }
}

std::size_t ForwardingCache::visit_entries(
    VisitCursor& cursor, std::size_t budget,
    const std::function<void(const ForwardingEntry&)>& fn) const {
    std::size_t visited = 0;
    cursor.wrapped = false;
    if (!cursor.on_sg) {
        auto it = cursor.have_key ? wc_.upper_bound(cursor.wc_after) : wc_.begin();
        for (; it != wc_.end() && visited < budget; ++it) {
            fn(*it->second);
            ++visited;
            cursor.wc_after = it->first;
            cursor.have_key = true;
        }
        if (it == wc_.end()) {
            cursor.on_sg = true;
            cursor.have_key = false;
        }
    }
    if (cursor.on_sg) {
        auto it = cursor.have_key ? sg_.upper_bound(cursor.sg_after) : sg_.begin();
        for (; it != sg_.end() && visited < budget; ++it) {
            fn(*it->second);
            ++visited;
            cursor.sg_after = it->first;
            cursor.have_key = true;
        }
        if (it == sg_.end()) {
            cursor = VisitCursor{};
            cursor.wrapped = true;
        }
    }
    return visited;
}

std::vector<ForwardingCache::SgKey> ForwardingCache::reap_expired_entries(sim::Time now) {
    std::vector<SgKey> removed;
    for (auto it = sg_.begin(); it != sg_.end();) {
        const sim::Time at = it->second->delete_at();
        if (at != 0 && now >= at) {
            removed.push_back(it->first);
            arena_.destroy(it->second);
            it = sg_.erase(it);
        } else {
            ++it;
        }
    }
    return removed;
}

namespace {

telemetry::EntrySnapshot snapshot_entry(const ForwardingEntry& entry, sim::Time now) {
    telemetry::EntrySnapshot out;
    out.source_or_rp = entry.source_or_rp().to_string();
    out.group = entry.group().to_string();
    out.wildcard = entry.wildcard();
    out.rp_bit = entry.rp_bit();
    out.spt_bit = entry.spt_bit();
    out.iif = entry.iif();
    if (entry.upstream_neighbor()) {
        out.upstream = entry.upstream_neighbor()->to_string();
    }
    for (const auto& [ifindex, state] : entry.oifs()) {
        telemetry::OifSnapshot oif;
        oif.ifindex = ifindex;
        oif.pinned = state.pinned;
        oif.remaining = state.pinned ? 0 : std::max<sim::Time>(0, state.expires - now);
        out.oifs.push_back(oif);
    }
    out.pruned_oifs.assign(entry.pruned_oifs().begin(), entry.pruned_oifs().end());
    out.delete_in =
        entry.delete_at() == 0 ? 0 : std::max<sim::Time>(0, entry.delete_at() - now);
    return out;
}

} // namespace

telemetry::RouterMrib ForwardingCache::snapshot(const std::string& router_name,
                                                sim::Time now) const {
    telemetry::RouterMrib out;
    out.router = router_name;
    out.entries.reserve(wc_.size() + sg_.size());
    for (const auto& [group, entry] : wc_) {
        out.entries.push_back(snapshot_entry(*entry, now));
    }
    for (const auto& [key, entry] : sg_) {
        out.entries.push_back(snapshot_entry(*entry, now));
    }
    return out;
}

DataPlane::DataPlane(topo::Router& router, ForwardingCache& cache)
    : router_(&router), cache_(&cache) {
    router_->set_multicast_handler(this);
}

void DataPlane::replicate(const ForwardingEntry& entry, int ifindex,
                          const net::Packet& packet) {
    PROF_ZONE("dataplane.replicate");
    if (packet.ttl <= 1) {
        router_->network().stats().count_data_dropped_ttl();
        return;
    }
    net::Packet out = packet;
    out.ttl -= 1;
    const sim::Time now = router_->simulator().now();
    // Allocation-free walk of the flat oif list — this is the per-packet
    // replication path.
    entry.for_each_live_oif(now, [&](int oif) {
        if (oif == ifindex) return; // never back out the arrival interface
        if (oif < 0 || oif >= router_->interface_count()) return;
        if (pending_hop_ != nullptr) pending_hop_->add_oif(oif);
        router_->send(oif, net::Frame{std::nullopt, out});
    });
}

void DataPlane::forward_recorded(const ForwardingEntry& entry, int ifindex,
                                 const net::Packet& packet,
                                 provenance::EntryKind kind) {
    provenance::Recorder* rec = router_->network().provenance();
    provenance::HopRecord* hop = nullptr;
    if (rec != nullptr && rec->enabled() && packet.pid != 0 &&
        packet.proto == net::IpProto::kUdp) {
        hop = rec->begin(router_->id());
    }
    if (hop == nullptr) {
        replicate(entry, ifindex, packet);
        return;
    }
    hop->pid = packet.pid;
    hop->at = router_->simulator().now();
    hop->iif = static_cast<std::int16_t>(ifindex);
    hop->src = packet.src;
    hop->group = packet.dst;
    hop->seq = packet.seq;
    hop->kind = kind;
    hop->ttl = packet.ttl;
    hop->spt_bit = entry.spt_bit();
    hop->rp_bit = entry.rp_bit();
    if (packet.ttl <= 1) {
        hop->drop = provenance::DropReason::kTtl;
        rec->commit(*hop);
        replicate(entry, ifindex, packet); // still counts the stats drop
        return;
    }
    pending_hop_ = hop;
    replicate(entry, ifindex, packet);
    pending_hop_ = nullptr;
    if (hop->oif_count == 0) {
        // An empty oif set discards the packet here: an RP-bit negative
        // cache does so by design, any other entry is a pruned leaf with no
        // downstream interest.
        hop->drop = entry.rp_bit() ? provenance::DropReason::kNegCache
                                   : provenance::DropReason::kNoOif;
    }
    rec->commit(*hop);
}

void DataPlane::record_hop(int ifindex, const net::Packet& packet,
                           const ForwardingEntry* entry, provenance::EntryKind kind,
                           bool rpf_ok, provenance::DropReason drop) {
    provenance::Recorder* rec = router_->network().provenance();
    if (rec == nullptr || !rec->enabled() || packet.pid == 0) return;
    if (packet.proto != net::IpProto::kUdp) return;
    // Fill the ring slot in place (begin/commit): this runs once per
    // forwarding decision and is the recorder's only hot path.
    provenance::HopRecord* hop = rec->begin(router_->id());
    if (hop == nullptr) return;
    hop->pid = packet.pid;
    hop->at = router_->simulator().now();
    hop->iif = static_cast<std::int16_t>(ifindex);
    hop->src = packet.src;
    hop->group = packet.dst;
    hop->seq = packet.seq;
    hop->kind = kind;
    hop->rpf_ok = rpf_ok;
    hop->ttl = packet.ttl;
    if (drop == provenance::DropReason::kNone && packet.ttl <= 1 &&
        kind != provenance::EntryKind::kRegister) {
        drop = provenance::DropReason::kTtl;
    }
    if (entry != nullptr) {
        hop->spt_bit = entry->spt_bit();
        hop->rp_bit = entry->rp_bit();
        if (drop == provenance::DropReason::kNone) {
            // Iterate the flat oif list in place: live_oifs() would allocate
            // a vector per recorded hop.
            for (const auto& [oif, state] : entry->oifs()) {
                if (!state.alive(hop->at)) continue;
                if (oif == ifindex) continue;
                if (oif < 0 || oif >= router_->interface_count()) continue;
                hop->add_oif(oif);
            }
            if (hop->oif_count == 0 && kind != provenance::EntryKind::kRegister) {
                // An empty oif set discards the packet here: an RP-bit
                // negative cache does so by design, any other entry is a
                // pruned leaf with no downstream interest.
                drop = entry->rp_bit() ? provenance::DropReason::kNegCache
                                       : provenance::DropReason::kNoOif;
            }
        }
    }
    hop->drop = drop;
    rec->commit(*hop);
}

void DataPlane::on_multicast_data(int ifindex, const net::Packet& packet) {
    PROF_ZONE("dataplane.forward");
    const net::GroupAddress group{packet.dst};
    const net::Ipv4Address source = packet.src;

    ForwardingEntry* sg = cache_->find_sg(source, group);
    ForwardingEntry* wc = cache_->find_wc(group);

    if (sg != nullptr) {
        sg->note_data(router_->simulator().now());
        if (sg->spt_bit() || sg->rp_bit()) {
            // Normal path: strict incoming interface check.
            if (ifindex == sg->iif()) {
                forward_recorded(*sg, ifindex, packet, provenance::EntryKind::kSg);
                if (delegate_ != nullptr) {
                    delegate_->on_sg_forward(*sg, ifindex, packet);
                    if (sg->oif_list_empty(router_->simulator().now())) {
                        delegate_->on_no_downstream(*sg, ifindex, packet);
                    }
                }
            } else {
                router_->network().stats().count_data_dropped_iif();
                record_hop(ifindex, packet, sg, provenance::EntryKind::kSg,
                           /*rpf_ok=*/false,
                           delegate_ != nullptr
                               ? delegate_->classify_iif_drop(ifindex, packet)
                               : provenance::DropReason::kRpfFail);
                if (delegate_ != nullptr) delegate_->on_iif_check_failed(ifindex, packet);
            }
            return;
        }
        // (S,G) with cleared SPT bit: the §3.5 transition exceptions.
        if (ifindex == sg->iif()) {
            // Second exception: data arrived on the shortest-path iif —
            // forward it and set the SPT bit.
            forward_recorded(*sg, ifindex, packet, provenance::EntryKind::kSg);
            sg->set_spt_bit(true);
            if (delegate_ != nullptr) {
                delegate_->on_spt_bit_set(*sg);
                delegate_->on_sg_forward(*sg, ifindex, packet);
            }
            return;
        }
        // First exception: fall back to the (*,G) entry while the SPT
        // branch is still being built.
        if (wc != nullptr && ifindex == wc->iif()) {
            forward_recorded(*wc, ifindex, packet,
                             provenance::EntryKind::kSgFallbackWc);
            if (delegate_ != nullptr) delegate_->on_wildcard_forward(ifindex, packet);
            return;
        }
        router_->network().stats().count_data_dropped_iif();
        record_hop(ifindex, packet, sg, provenance::EntryKind::kSg,
                   /*rpf_ok=*/false,
                   delegate_ != nullptr ? delegate_->classify_iif_drop(ifindex, packet)
                                        : provenance::DropReason::kRpfFail);
        if (delegate_ != nullptr) delegate_->on_iif_check_failed(ifindex, packet);
        return;
    }

    if (wc != nullptr) {
        if (ifindex == wc->iif()) {
            forward_recorded(*wc, ifindex, packet,
                             provenance::EntryKind::kWildcard);
            if (delegate_ != nullptr) delegate_->on_wildcard_forward(ifindex, packet);
        } else {
            router_->network().stats().count_data_dropped_iif();
            record_hop(ifindex, packet, wc, provenance::EntryKind::kWildcard,
                       /*rpf_ok=*/false,
                       delegate_ != nullptr
                           ? delegate_->classify_iif_drop(ifindex, packet)
                           : provenance::DropReason::kRpfFail);
            if (delegate_ != nullptr) delegate_->on_iif_check_failed(ifindex, packet);
        }
        return;
    }

    if (delegate_ != nullptr) delegate_->on_no_entry(ifindex, packet);
}

} // namespace pimlib::mcast
