#include "mcast/forwarding_entry.hpp"

#include <algorithm>

namespace pimlib::mcast {

ForwardingEntry ForwardingEntry::make_sg(net::Ipv4Address source, net::GroupAddress group) {
    ForwardingEntry e;
    e.group_ = group;
    e.source_or_rp_ = source;
    e.wc_bit_ = false;
    return e;
}

ForwardingEntry ForwardingEntry::make_wc(net::Ipv4Address rp, net::GroupAddress group) {
    ForwardingEntry e;
    e.group_ = group;
    e.source_or_rp_ = rp;
    e.wc_bit_ = true;
    e.rp_bit_ = true; // a shared-tree entry's iif check is toward the RP
    return e;
}

void ForwardingEntry::add_oif(int ifindex, sim::Time expires) {
    auto& state = oifs_[ifindex];
    state.expires = std::max(state.expires, expires);
    delete_at_ = 0; // oif list non-null again
}

void ForwardingEntry::pin_oif(int ifindex) {
    oifs_[ifindex].pinned = true;
    delete_at_ = 0;
}

void ForwardingEntry::unpin_oif(int ifindex) {
    auto it = oifs_.find(ifindex);
    if (it == oifs_.end()) return;
    it->second.pinned = false;
    if (it->second.expires == 0) oifs_.erase(it);
}

void ForwardingEntry::refresh_oif(int ifindex, sim::Time expires) {
    auto it = oifs_.find(ifindex);
    if (it == oifs_.end()) return;
    it->second.expires = std::max(it->second.expires, expires);
}

void ForwardingEntry::remove_oif(int ifindex) { oifs_.erase(ifindex); }

void ForwardingEntry::mark_pruned(int ifindex) {
    pruned_oifs_.insert(ifindex);
    oifs_.erase(ifindex);
}

std::vector<int> ForwardingEntry::live_oifs(sim::Time now) const {
    std::vector<int> out;
    out.reserve(oifs_.size());
    for (const auto& [ifindex, state] : oifs_) {
        if (state.alive(now)) out.push_back(ifindex);
    }
    return out;
}

std::vector<int> ForwardingEntry::expire_oifs(sim::Time now) {
    std::vector<int> removed;
    for (auto it = oifs_.begin(); it != oifs_.end();) {
        if (!it->second.alive(now)) {
            removed.push_back(it->first);
            it = oifs_.erase(it);
        } else {
            ++it;
        }
    }
    return removed;
}

std::string ForwardingEntry::describe() const {
    std::string out = wc_bit_ ? "(*, " : "(" + source_or_rp_.to_string() + ", ";
    out += group_.to_string() + ")";
    if (wc_bit_) out += " RP=" + source_or_rp_.to_string();
    out += " iif=" + std::to_string(iif_);
    out += " oifs={";
    bool first = true;
    for (const auto& [ifindex, state] : oifs_) {
        if (!first) out += ",";
        out += std::to_string(ifindex);
        if (state.pinned) out += "*";
        first = false;
    }
    out += "}";
    if (rp_bit_) out += " RPbit";
    if (spt_bit_) out += " SPTbit";
    return out;
}

} // namespace pimlib::mcast
