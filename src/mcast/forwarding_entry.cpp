#include "mcast/forwarding_entry.hpp"

#include <algorithm>

namespace pimlib::mcast {

ForwardingEntry ForwardingEntry::make_sg(net::Ipv4Address source, net::GroupAddress group) {
    ForwardingEntry e;
    e.group_ = group;
    e.source_or_rp_ = source;
    e.wc_bit_ = false;
    return e;
}

ForwardingEntry ForwardingEntry::make_wc(net::Ipv4Address rp, net::GroupAddress group) {
    ForwardingEntry e;
    e.group_ = group;
    e.source_or_rp_ = rp;
    e.wc_bit_ = true;
    e.rp_bit_ = true; // a shared-tree entry's iif check is toward the RP
    return e;
}

ForwardingEntry::OifList::iterator ForwardingEntry::lower_bound_oif(int ifindex) {
    return std::lower_bound(
        oifs_.begin(), oifs_.end(), ifindex,
        [](const std::pair<int, OifState>& a, int b) { return a.first < b; });
}

OifState& ForwardingEntry::ensure_oif(int ifindex) {
    auto it = lower_bound_oif(ifindex);
    if (it == oifs_.end() || it->first != ifindex) {
        it = oifs_.insert(it, {ifindex, OifState{}});
    }
    return it->second;
}

const OifState* ForwardingEntry::find_oif(int ifindex) const {
    auto it = std::lower_bound(
        oifs_.begin(), oifs_.end(), ifindex,
        [](const std::pair<int, OifState>& a, int b) { return a.first < b; });
    if (it == oifs_.end() || it->first != ifindex) return nullptr;
    return &it->second;
}

void ForwardingEntry::add_oif(int ifindex, sim::Time expires) {
    OifState& state = ensure_oif(ifindex);
    state.expires = std::max(state.expires, expires);
    delete_at_ = 0; // oif list non-null again
}

void ForwardingEntry::pin_oif(int ifindex) {
    ensure_oif(ifindex).pinned = true;
    delete_at_ = 0;
}

void ForwardingEntry::unpin_oif(int ifindex) {
    auto it = lower_bound_oif(ifindex);
    if (it == oifs_.end() || it->first != ifindex) return;
    it->second.pinned = false;
    if (it->second.expires == 0) oifs_.erase(it);
}

void ForwardingEntry::refresh_oif(int ifindex, sim::Time expires) {
    auto it = lower_bound_oif(ifindex);
    if (it == oifs_.end() || it->first != ifindex) return;
    it->second.expires = std::max(it->second.expires, expires);
}

void ForwardingEntry::remove_oif(int ifindex) {
    auto it = lower_bound_oif(ifindex);
    if (it != oifs_.end() && it->first == ifindex) oifs_.erase(it);
}

void ForwardingEntry::mark_pruned(int ifindex) {
    auto it = std::lower_bound(pruned_oifs_.begin(), pruned_oifs_.end(), ifindex);
    if (it == pruned_oifs_.end() || *it != ifindex) pruned_oifs_.insert(it, ifindex);
    remove_oif(ifindex);
}

void ForwardingEntry::clear_pruned(int ifindex) {
    auto it = std::lower_bound(pruned_oifs_.begin(), pruned_oifs_.end(), ifindex);
    if (it != pruned_oifs_.end() && *it == ifindex) pruned_oifs_.erase(it);
}

bool ForwardingEntry::is_pruned(int ifindex) const {
    return std::binary_search(pruned_oifs_.begin(), pruned_oifs_.end(), ifindex);
}

std::vector<int> ForwardingEntry::live_oifs(sim::Time now) const {
    std::vector<int> out;
    out.reserve(oifs_.size());
    for (const auto& [ifindex, state] : oifs_) {
        if (state.alive(now)) out.push_back(ifindex);
    }
    return out;
}

std::vector<int> ForwardingEntry::expire_oifs(sim::Time now) {
    std::vector<int> removed;
    auto keep = oifs_.begin();
    for (auto& oif : oifs_) {
        if (oif.second.alive(now)) {
            *keep++ = oif;
        } else {
            removed.push_back(oif.first);
        }
    }
    oifs_.erase(keep, oifs_.end());
    return removed;
}

std::string ForwardingEntry::describe() const {
    std::string out = wc_bit_ ? "(*, " : "(" + source_or_rp_.to_string() + ", ";
    out += group_.to_string() + ")";
    if (wc_bit_) out += " RP=" + source_or_rp_.to_string();
    out += " iif=" + std::to_string(iif_);
    out += " oifs={";
    bool first = true;
    for (const auto& [ifindex, state] : oifs_) {
        if (!first) out += ",";
        out += std::to_string(ifindex);
        if (state.pinned) out += "*";
        first = false;
    }
    out += "}";
    if (rp_bit_) out += " RPbit";
    if (spt_bit_) out += " SPTbit";
    return out;
}

} // namespace pimlib::mcast
