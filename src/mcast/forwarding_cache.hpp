// Per-router multicast forwarding cache plus the shared data-plane engine
// implementing the forwarding rules of §3.5, including both SPT-bit
// transition exceptions. Every multicast routing protocol in this library
// (PIM-SM, PIM-DM, DVMRP, CBT, MOSPF) installs entries here and reacts to
// the delegate callbacks.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "mcast/forwarding_entry.hpp"
#include "net/packet.hpp"
#include "provenance/provenance.hpp"
#include "sim/arena.hpp"
#include "telemetry/snapshot.hpp"
#include "topo/router.hpp"

namespace pimlib::mcast {

class ForwardingCache {
public:
    using SgKey = std::pair<net::Ipv4Address, net::GroupAddress>;

    [[nodiscard]] ForwardingEntry* find_sg(net::Ipv4Address source, net::GroupAddress group);
    [[nodiscard]] const ForwardingEntry* find_sg(net::Ipv4Address source,
                                                 net::GroupAddress group) const;
    [[nodiscard]] ForwardingEntry* find_wc(net::GroupAddress group);
    [[nodiscard]] const ForwardingEntry* find_wc(net::GroupAddress group) const;

    /// Creates (or returns the existing) entry.
    ForwardingEntry& ensure_sg(net::Ipv4Address source, net::GroupAddress group);
    ForwardingEntry& ensure_wc(net::Ipv4Address rp, net::GroupAddress group);

    void remove_sg(net::Ipv4Address source, net::GroupAddress group);
    void remove_wc(net::GroupAddress group);
    /// Drops every entry — what a router crash does to its MFC.
    void clear();

    [[nodiscard]] std::size_t size() const { return sg_.size() + wc_.size(); }
    [[nodiscard]] std::size_t sg_count() const { return sg_.size(); }
    [[nodiscard]] std::size_t wc_count() const { return wc_.size(); }

    /// Iteration helpers. The callback may mutate the entry but must not
    /// add/remove entries.
    void for_each_sg(const std::function<void(ForwardingEntry&)>& fn);
    void for_each_wc(const std::function<void(ForwardingEntry&)>& fn);
    /// (S,G) entries for one group.
    void for_each_sg_of(net::GroupAddress group,
                        const std::function<void(ForwardingEntry&)>& fn);
    void for_each_sg_of(net::GroupAddress group,
                        const std::function<void(const ForwardingEntry&)>& fn) const;
    /// Collects (S,G) keys scheduled for deletion at or before `now`, plus
    /// removes them. Returns the removed keys.
    std::vector<SgKey> reap_expired_entries(sim::Time now);

    /// Resumable cursor for visit_entries(). Holds the last visited *key*,
    /// not an iterator, so entries may be added or removed between calls —
    /// the walk resumes at the next key still present.
    struct VisitCursor {
        bool on_sg = false;   // walking the (*,G) index first, then (S,G)
        bool have_key = false;
        net::GroupAddress wc_after{};
        SgKey sg_after{};
        /// Set when the previous call reached the end of both indexes (the
        /// cursor is simultaneously reset to the start). One full pass.
        bool wrapped = false;
    };

    /// Budgeted iteration for incremental walkers (tree monitor, watchdogs):
    /// visits up to `budget` entries in deterministic index order — (*,G)
    /// first, then (S,G) — resuming after the cursor's last key, and
    /// advances the cursor. Returns the number visited; on reaching the end
    /// the cursor resets to the start with `wrapped` set, so million-entry
    /// caches are covered across many calls without ever paying a full scan
    /// in one tick.
    std::size_t visit_entries(VisitCursor& cursor, std::size_t budget,
                              const std::function<void(const ForwardingEntry&)>& fn) const;

    /// Captures the whole cache as telemetry plain-data — (*,G) entries
    /// first, then (S,G) — with per-oif timer remaining rendered relative
    /// to `now`. Every protocol's MRIB snapshot goes through here.
    [[nodiscard]] telemetry::RouterMrib snapshot(const std::string& router_name,
                                                 sim::Time now) const;

private:
    // Entries live in a slab arena (stable addresses, recycled slots, no
    // per-entry heap churn at million-entry scale); the maps are sorted
    // *indexes* over the arena, which keeps snapshot()/for_each iteration
    // order deterministic for pimcheck replay hashing.
    sim::Arena<ForwardingEntry> arena_;
    std::map<SgKey, ForwardingEntry*> sg_;
    std::map<net::GroupAddress, ForwardingEntry*> wc_;
};

/// Data-plane engine: receives every non-link-local multicast packet the
/// router hears, applies the §3.5 rules against the cache, replicates out
/// the live oifs, and reports interesting conditions to the delegate
/// (the control-plane protocol).
class DataPlane : public topo::MulticastDataHandler {
public:
    class Delegate {
    public:
        virtual ~Delegate() = default;
        /// No (S,G) and no (*,G) matched. Dense-mode protocols flood from
        /// here; a PIM-SM DR for the source registers from here.
        virtual void on_no_entry(int ifindex, const net::Packet& packet) { (void)ifindex; (void)packet; }
        /// Packet was forwarded using the (*,G) entry (shared tree). Gives
        /// the DR the §3.3 trigger: data from a source it has no (S,G) for.
        virtual void on_wildcard_forward(int ifindex, const net::Packet& packet) { (void)ifindex; (void)packet; }
        /// The SPT bit of `entry` transitioned 0→1 because data arrived on
        /// the shortest-path iif (§3.3/§3.5 second exception).
        virtual void on_spt_bit_set(ForwardingEntry& entry) { (void)entry; }
        /// Incoming-interface check failed (packet dropped).
        virtual void on_iif_check_failed(int ifindex, const net::Packet& packet) { (void)ifindex; (void)packet; }
        /// Lets the protocol refine the drop reason recorded for an
        /// iif-check failure — e.g. a LAN assert loser hearing the winner's
        /// copy reports kAssertLoser instead of a generic RPF failure.
        virtual provenance::DropReason classify_iif_drop(int ifindex,
                                                         const net::Packet& packet) {
            (void)ifindex;
            (void)packet;
            return provenance::DropReason::kRpfFail;
        }
        /// Data was forwarded via a genuine (S,G) match (normal path or the
        /// second SPT-bit exception). Lets a source DR keep registering
        /// until the RP's join arrives.
        virtual void on_sg_forward(ForwardingEntry& entry, int ifindex,
                                   const net::Packet& packet) {
            (void)entry;
            (void)ifindex;
            (void)packet;
        }
        /// Data matched an (S,G) entry whose live oif list is empty — the
        /// router is a pruned leaf still receiving traffic. Dense-mode
        /// protocols answer with a (rate-limited) prune refresh upstream; a
        /// PIM-SM source DR resumes the register phase.
        virtual void on_no_downstream(ForwardingEntry& entry, int ifindex,
                                      const net::Packet& packet) {
            (void)entry;
            (void)ifindex;
            (void)packet;
        }
    };

    DataPlane(topo::Router& router, ForwardingCache& cache);

    void set_delegate(Delegate* delegate) { delegate_ = delegate; }

    void on_multicast_data(int ifindex, const net::Packet& packet) override;

    /// Forwards `packet` out every live oif of `entry` except `ifindex`.
    /// Exposed for protocols that forward outside the normal path (e.g. the
    /// RP forwarding register-encapsulated data down the shared tree).
    void replicate(const ForwardingEntry& entry, int ifindex, const net::Packet& packet);

    /// Appends one provenance HopRecord for a forwarding decision at this
    /// router: `entry` (may be null) supplies the oif set and SPT/RP bits,
    /// `kind` names which MRIB entry matched, `drop` the typed discard (a
    /// forwarded packet passes kNone; an empty oif set or expiring TTL is
    /// promoted to the right reason here). No-op without an enabled recorder
    /// or for unstamped packets, so call sites need no guard of their own.
    void record_hop(int ifindex, const net::Packet& packet, const ForwardingEntry* entry,
                    provenance::EntryKind kind, bool rpf_ok, provenance::DropReason drop);

    [[nodiscard]] ForwardingCache& cache() { return *cache_; }
    [[nodiscard]] topo::Router& router() { return *router_; }

private:
    /// The hot path for on_multicast_data's forward branches: one recorder
    /// slot filled while replicate() walks the oif list (the oifs captured
    /// are exactly the interfaces sent on), instead of record_hop's second
    /// walk of the map. Falls back to plain replicate() with no recorder.
    void forward_recorded(const ForwardingEntry& entry, int ifindex,
                          const net::Packet& packet, provenance::EntryKind kind);

    topo::Router* router_;
    ForwardingCache* cache_;
    Delegate* delegate_ = nullptr;
    /// Non-null only inside forward_recorded's replicate() call; replicate
    /// appends each oif it sends on to this record.
    provenance::HopRecord* pending_hop_ = nullptr;
};

} // namespace pimlib::mcast
