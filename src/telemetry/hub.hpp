// The per-network telemetry hub: one Registry, one EventLog, one
// SpanTracker and a store of MRIB snapshots, bound to the network's
// simulated clock. Owned by topo::Network so every protocol agent reaches
// it through the network it is attached to — PIM-SM/DM, DVMRP, CBT, MOSPF
// and IGMP all emit through this one interface.
//
// Tracing (events + spans) is OFF by default: the benches measure the
// protocols, not the instrumentation. `pimsim` and the examples turn it on.
// Metrics are always live — counter increments are the cheap path that
// NetworkStats already paid for.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/events.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/snapshot.hpp"

namespace pimlib::telemetry {

class Hub {
public:
    explicit Hub(const sim::Simulator& clock) : clock_(&clock), spans_(registry_) {}

    Hub(const Hub&) = delete;
    Hub& operator=(const Hub&) = delete;

    [[nodiscard]] Registry& registry() { return registry_; }
    [[nodiscard]] const Registry& registry() const { return registry_; }
    [[nodiscard]] EventLog& events() { return events_; }
    [[nodiscard]] const EventLog& events() const { return events_; }
    [[nodiscard]] SpanTracker& spans() { return spans_; }
    [[nodiscard]] const SpanTracker& spans() const { return spans_; }

    /// Enables/disables the event log and span tracking together.
    void set_tracing(bool on) {
        tracing_ = on;
        events_.set_enabled(on);
    }
    [[nodiscard]] bool tracing() const { return tracing_; }

    /// Records a protocol state transition: stamps the current sim-time,
    /// appends to the event log (if tracing) and bumps
    /// `pimlib_control_events_total{type,protocol}` (always).
    void emit(EventType type, const std::string& node, const std::string& protocol,
              const std::string& group = "", const std::string& detail = "",
              std::uint64_t span = 0);

    /// Span helpers; no-ops (returning 0 / nullopt) unless tracing.
    std::uint64_t span_begin(const std::string& kind, const std::string& key);
    std::optional<sim::Time> span_end(const std::string& kind, const std::string& key);
    void span_abort(const std::string& kind, const std::string& key) {
        spans_.abort(kind, key);
    }

    /// Called from the data plane on every delivered packet; closes any
    /// join-to-data / rp-failover / spt-switch span waiting on this
    /// (host, group) or group. Early-exits when no span is open, so the
    /// per-packet cost in steady state is two integer compares.
    void on_data_delivered(const std::string& host, const std::string& group);

    /// Stores a snapshot (filled in by the caller; see
    /// StackBase::capture_mrib) and updates per-router entry-count gauges.
    void store_snapshot(MribSnapshot snapshot);
    [[nodiscard]] const std::vector<MribSnapshot>& snapshots() const {
        return snapshots_;
    }

    [[nodiscard]] sim::Time now() const { return clock_->now(); }

    /// Re-publishes timer-wheel occupancy/cascade statistics as
    /// pimlib_timer_* gauges: live events and occupied slots per level,
    /// overflow size, pending total, and cumulative cascade / migration
    /// counters. Call at export points (dump-metrics, bench reports) —
    /// gauges are snapshots, not continuously maintained.
    void refresh_timer_gauges();

private:
    const sim::Simulator* clock_;
    Registry registry_;
    EventLog events_;
    SpanTracker spans_;
    bool tracing_ = false;
    std::vector<MribSnapshot> snapshots_;
    // Hot-path cache: event-counter pointer per (type, protocol).
    std::map<std::pair<int, std::string>, Counter*> event_counters_;
};

/// Span kind constants, so openers and closers can't drift apart.
namespace span {
inline constexpr const char* kJoinToData = "join-to-data";
inline constexpr const char* kRpFailover = "rp-failover";
inline constexpr const char* kSptSwitch = "spt-switch";
} // namespace span

} // namespace pimlib::telemetry
