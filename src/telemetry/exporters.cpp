#include "telemetry/exporters.hpp"

#include <cmath>
#include <cstdio>

namespace pimlib::telemetry {

namespace {

std::string format_double(double v) {
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 1e15) {
        return std::to_string(static_cast<long long>(v));
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string label_block(const LabelSet& labels) {
    if (labels.empty()) return "";
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels.pairs()) {
        if (!first) out += ',';
        first = false;
        out += k + "=\"" + prometheus_escape(v) + "\"";
    }
    out += '}';
    return out;
}

/// Like label_block but with one extra pair appended (for histogram le=).
std::string label_block_with(const LabelSet& labels, const std::string& extra_key,
                             const std::string& extra_value) {
    std::string out = "{";
    for (const auto& [k, v] : labels.pairs()) {
        out += k + "=\"" + prometheus_escape(v) + "\",";
    }
    out += extra_key + "=\"" + prometheus_escape(extra_value) + "\"}";
    return out;
}

std::string json_labels(const LabelSet& labels) {
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels.pairs()) {
        if (!first) out += ',';
        first = false;
        out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
    }
    out += '}';
    return out;
}

std::string json_value(const Registry::Instrument& inst) {
    switch (inst.kind) {
    case Registry::Kind::kCounter:
        return std::to_string(inst.counter->value());
    case Registry::Kind::kGauge:
        return format_double(inst.gauge->value());
    case Registry::Kind::kHistogram: {
        const Histogram& h = *inst.histogram;
        return "{\"count\":" + std::to_string(h.count()) +
               ",\"sum\":" + format_double(h.sum()) +
               ",\"min\":" + format_double(h.min()) +
               ",\"max\":" + format_double(h.max()) +
               ",\"p50\":" + format_double(h.quantile(0.50)) +
               ",\"p90\":" + format_double(h.quantile(0.90)) +
               ",\"p99\":" + format_double(h.quantile(0.99)) + "}";
    }
    }
    return "null";
}

} // namespace

std::string prometheus_escape(const std::string& value) {
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
        }
    }
    return out;
}

std::string json_escape(const std::string& value) {
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                // RFC 8259 requires escaping all control characters.
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
            break;
        }
    }
    return out;
}

std::string to_prometheus(const Registry& registry) {
    std::string out;
    std::string last_name;
    for (const Registry::Instrument* inst : registry.sorted()) {
        if (inst->name != last_name) {
            last_name = inst->name;
            if (!inst->help.empty()) {
                // HELP text escapes only backslash and newline (the text
                // format's rule for help lines; quotes stay literal).
                std::string help;
                for (char c : inst->help) {
                    if (c == '\\') {
                        help += "\\\\";
                    } else if (c == '\n') {
                        help += "\\n";
                    } else {
                        help += c;
                    }
                }
                out += "# HELP " + inst->name + " " + help + "\n";
            }
            out += "# TYPE " + inst->name + " ";
            switch (inst->kind) {
            case Registry::Kind::kCounter: out += "counter\n"; break;
            case Registry::Kind::kGauge: out += "gauge\n"; break;
            case Registry::Kind::kHistogram: out += "histogram\n"; break;
            }
        }
        switch (inst->kind) {
        case Registry::Kind::kCounter:
            out += inst->name + label_block(inst->labels) + " " +
                   std::to_string(inst->counter->value()) + "\n";
            break;
        case Registry::Kind::kGauge:
            out += inst->name + label_block(inst->labels) + " " +
                   format_double(inst->gauge->value()) + "\n";
            break;
        case Registry::Kind::kHistogram: {
            const Histogram& h = *inst->histogram;
            const auto& bounds = h.bounds();
            const auto& counts = h.bucket_counts();
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < bounds.size(); ++i) {
                cumulative += counts[i];
                out += inst->name + "_bucket" +
                       label_block_with(inst->labels, "le", format_double(bounds[i])) +
                       " " + std::to_string(cumulative) + "\n";
            }
            cumulative += counts.back();
            out += inst->name + "_bucket" +
                   label_block_with(inst->labels, "le", "+Inf") + " " +
                   std::to_string(cumulative) + "\n";
            out += inst->name + "_sum" + label_block(inst->labels) + " " +
                   format_double(h.sum()) + "\n";
            out += inst->name + "_count" + label_block(inst->labels) + " " +
                   std::to_string(h.count()) + "\n";
            break;
        }
        }
    }
    return out;
}

std::string to_json(const Registry& registry) {
    // sorted() groups same-name instruments together; emit one JSON key per
    // family, an array of {labels, value} when labeled.
    const auto instruments = registry.sorted();
    std::string out = "{";
    std::size_t i = 0;
    bool first_family = true;
    while (i < instruments.size()) {
        const std::string& name = instruments[i]->name;
        std::size_t j = i;
        while (j < instruments.size() && instruments[j]->name == name) ++j;
        if (!first_family) out += ",";
        first_family = false;
        out += "\n  \"" + json_escape(name) + "\":";
        if (j - i == 1 && instruments[i]->labels.empty()) {
            out += json_value(*instruments[i]);
        } else {
            out += "[";
            for (std::size_t k = i; k < j; ++k) {
                if (k != i) out += ",";
                out += "\n    {\"labels\":" + json_labels(instruments[k]->labels) +
                       ",\"value\":" + json_value(*instruments[k]) + "}";
            }
            out += "\n  ]";
        }
        i = j;
    }
    out += "\n}\n";
    return out;
}

void TimeSeries::sample(sim::Time now) {
    Row row;
    row.at = now;
    row.values.reserve(columns_.size());
    for (const Column& col : columns_) {
        row.values.push_back(col.counter
                                 ? static_cast<double>(col.counter->value())
                                 : col.gauge->value());
    }
    rows_.push_back(std::move(row));
}

std::string TimeSeries::to_csv() const {
    std::string out = "time_s";
    for (const Column& col : columns_) out += "," + col.name;
    out += '\n';
    char buf[48];
    for (const Row& row : rows_) {
        std::snprintf(buf, sizeof(buf), "%.6f",
                      static_cast<double>(row.at) / sim::kSecond);
        out += buf;
        for (double v : row.values) out += "," + format_double(v);
        out += '\n';
    }
    return out;
}

} // namespace pimlib::telemetry
