// Publishes a profiler snapshot into the telemetry Registry, so
// `pimsim dump-metrics` and every exporter (Prometheus/JSON/CSV) carry CPU
// attribution alongside the protocol metrics:
//
//   pimlib_profile_zone_seconds{zone="sim.dispatch",view="exclusive"}
//   pimlib_profile_zone_seconds{zone="sim.dispatch",view="inclusive"}
//   pimlib_profile_zone_calls{zone="sim.dispatch"}
//   pimlib_profile_entries_total / pimlib_profile_records_dropped /
//   pimlib_profile_threads
//
// Gauges (not counters) on purpose: a snapshot is a cumulative view taken
// at a quiescent point, and re-publishing overwrites in place.
#pragma once

#include "telemetry/metrics.hpp"
#include "telemetry/profiler/profiler.hpp"

namespace pimlib::prof {

void publish_profile(const Report& report, telemetry::Registry& registry);

} // namespace pimlib::prof
