#include "telemetry/profiler/export.hpp"

namespace pimlib::prof {

void publish_profile(const Report& report, telemetry::Registry& registry) {
    for (const ZoneStat& z : report.zones) {
        registry
            .gauge("pimlib_profile_zone_seconds",
                   {{"zone", z.zone}, {"view", "exclusive"}},
                   "CPU seconds attributed to the zone itself")
            .set(static_cast<double>(z.exclusive_ns) / 1e9);
        registry
            .gauge("pimlib_profile_zone_seconds",
                   {{"zone", z.zone}, {"view", "inclusive"}},
                   "CPU seconds in the zone including nested zones")
            .set(static_cast<double>(z.inclusive_ns) / 1e9);
        registry
            .gauge("pimlib_profile_zone_calls", {{"zone", z.zone}},
                   "Zone entry count")
            .set(static_cast<double>(z.count));
    }
    registry
        .gauge("pimlib_profile_entries_total", {},
               "Zone entries across all threads")
        .set(static_cast<double>(report.total_entries));
    registry
        .gauge("pimlib_profile_records_dropped", {},
               "Ring records overwritten before export")
        .set(static_cast<double>(report.dropped_records));
    registry
        .gauge("pimlib_profile_threads", {}, "Threads that entered zones")
        .set(static_cast<double>(report.threads));
}

} // namespace pimlib::prof
