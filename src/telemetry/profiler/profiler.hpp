// In-sim scoped-zone CPU profiler: where the host CPU time actually goes.
//
// The telemetry hub answers "what did the protocols do"; this answers "what
// did it cost to simulate" — the question every performance PR (sharding,
// flow-level data plane, HPIM-DM head-to-head) has to open with. The design
// follows the paper's own evaluation discipline: measure first, justify the
// architecture with the measurement.
//
//   PROF_ZONE("sim.dispatch");          // RAII: enter here, exit at scope end
//
// Mechanics:
//   - Each macro site holds a statically-initialized ZoneSite (constant
//     initialization, no static-guard branch). Zone names intern to dense
//     ids on first enabled entry.
//   - Runtime toggle: a single relaxed atomic-bool load + branch when
//     disabled — the scope guard constructs no members, touches no
//     thread-locals and performs no allocation. Compile-time removal:
//     -DPIMLIB_PROFILER=0 turns the macro into a no-op statement.
//   - When enabled, entries/exits maintain a per-thread calling-context
//     tree (one node per distinct zone path, e.g. "sim.dispatch" →
//     "sim.dispatch;control.pim_sm"), accumulating exact inclusive and
//     exclusive nanoseconds per node, and append fixed-size 32-byte records
//     into a per-thread ring buffer for timeline export (the ring bounds
//     memory; wraparound overwrites the oldest records and counts drops).
//   - The clock is the calibrated monotonic clock: steady_clock, with the
//     read cost and the disabled-zone branch cost measured by calibrate()
//     so overhead gates (scaling_overhead --profile-check) can price the
//     instrumentation instead of guessing.
//
// Thread model: zones may be entered from any thread (the checker's
// parallel exploration included); each thread owns its state, registered
// globally at first use and never torn down. snapshot()/trace_slices()
// merge across threads and must be called at a quiescent point (no zone
// concurrently entering/exiting), which is how every consumer — pimsim at
// end of run, the benches between phases — already behaves. The merge is
// deterministic: nodes are keyed and sorted by path string, independent of
// thread registration order.
//
// This header is dependency-free (pure std) on purpose: it sits *below*
// pimlib_sim in the library graph so the simulator kernel and timer wheel
// can carry zones. Registry/Hub publication lives in
// telemetry/profiler/export.hpp, which depends on telemetry proper.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#ifndef PIMLIB_PROFILER
#define PIMLIB_PROFILER 1
#endif

namespace pimlib::prof {

/// One PROF_ZONE site. Constant-initialized (no guard); `id` resolves
/// lazily on the first *enabled* pass so disabled sites never take the
/// registration lock.
struct ZoneSite {
    const char* name;
    std::atomic<std::uint16_t> id{0}; // 0 = not yet interned
};

/// Global enable flag; the macro's only cost when false.
extern std::atomic<bool> g_enabled;

[[nodiscard]] inline bool enabled() {
    return g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Drops all recorded data (CCT totals, rings, drop counts) on every
/// thread; zone registrations survive. Quiescent-point only.
void reset();

/// Per-thread ring capacity in records, applied to thread states created
/// afterwards (set before the first enabled zone; default 65536).
void set_ring_capacity(std::size_t records);

/// Optional simulated-clock source stamped into ring records, so timeline
/// exports can say *which sim instant* burned the CPU. `fn(ctx)` must
/// return the current simulated time in µs; pass nullptr to detach.
void set_time_source(std::int64_t (*fn)(const void*), const void* ctx);

/// Interns `name`, returning its dense id (>= 1). Names must not contain
/// ';' (the collapsed-stack separator) or '"'.
std::uint16_t register_zone(const char* name);

/// Internal: slow-path enter/exit, called only when enabled.
void zone_enter(ZoneSite& site);
void zone_exit();

/// The RAII guard behind PROF_ZONE. Disabled cost: one relaxed load and
/// branch in the constructor, one branch in the destructor.
class ScopedZone {
public:
    explicit ScopedZone(ZoneSite& site) {
        if (enabled()) {
            armed_ = true;
            zone_enter(site);
        }
    }
    ~ScopedZone() {
        if (armed_) zone_exit();
    }
    ScopedZone(const ScopedZone&) = delete;
    ScopedZone& operator=(const ScopedZone&) = delete;

private:
    bool armed_ = false;
};

/// Measured costs of the instrumentation itself, in nanoseconds. Pure
/// measurement (timed loops against an empty-loop baseline); requires the
/// profiler to be disabled and briefly flips it off if it is not.
struct Calibration {
    double clock_read_ns = 0;    // one monotonic clock read
    double disabled_zone_ns = 0; // one compiled-in-but-disabled PROF_ZONE
};
Calibration calibrate();

/// One merged calling-context-tree node.
struct ReportNode {
    std::string path; // zone names joined by ';' root-first
    std::string leaf; // last component
    std::int64_t inclusive_ns = 0;
    std::int64_t exclusive_ns = 0;
    std::uint64_t count = 0;
};

/// Per-zone rollup across all paths. `inclusive_ns` counts each zone once
/// per outermost occurrence (a recursive path "a;b;a" contributes its inner
/// "a" to the outer one's inclusive time, not twice).
struct ZoneStat {
    std::string zone;
    std::int64_t inclusive_ns = 0;
    std::int64_t exclusive_ns = 0;
    std::uint64_t count = 0;
};

struct Report {
    std::vector<ReportNode> nodes; // sorted by path
    std::vector<ZoneStat> zones;   // sorted by zone name
    std::uint64_t total_entries = 0;
    std::uint64_t dropped_records = 0; // ring overwrites across all threads
    std::size_t threads = 0;
};

/// Deterministic cross-thread merge of the aggregation trees. Open frames
/// (zones still on some stack) are not included.
[[nodiscard]] Report snapshot();

/// One ring record, resolved for export.
struct TraceSlice {
    std::uint32_t thread = 0; // registration index, stable within a process
    std::string path;
    std::string leaf;
    std::int64_t t0_ns = 0; // host monotonic
    std::int64_t t1_ns = 0;
    std::int64_t sim_at = -1; // µs via the time source, -1 when detached
};

/// Merged ring contents across threads, ordered by (thread, t0).
[[nodiscard]] std::vector<TraceSlice> trace_slices();

/// FlameGraph/speedscope collapsed-stack text: one line per path,
/// "a;b;c <exclusive-microseconds>". Feed to flamegraph.pl or drop into
/// https://www.speedscope.app.
[[nodiscard]] std::string to_collapsed(const Report& report);

/// Human summary: zones sorted by exclusive time, with call counts and
/// inclusive/exclusive milliseconds. For pimsim and bench stderr output.
[[nodiscard]] std::string to_table(const Report& report);

} // namespace pimlib::prof

#define PIMLIB_PROF_CAT2(a, b) a##b
#define PIMLIB_PROF_CAT(a, b) PIMLIB_PROF_CAT2(a, b)

#if PIMLIB_PROFILER
/// Opens a named profiling zone for the rest of the enclosing scope.
/// `name` must be a string literal (it is kept by pointer).
#define PROF_ZONE(name)                                                        \
    static ::pimlib::prof::ZoneSite PIMLIB_PROF_CAT(prof_site_, __LINE__){     \
        name};                                                                 \
    ::pimlib::prof::ScopedZone PIMLIB_PROF_CAT(prof_scope_, __LINE__)(         \
        PIMLIB_PROF_CAT(prof_site_, __LINE__))
#else
#define PROF_ZONE(name) static_cast<void>(0)
#endif
