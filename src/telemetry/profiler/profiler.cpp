#include "telemetry/profiler/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <mutex>
#include <utility>

namespace pimlib::prof {

std::atomic<bool> g_enabled{false};

namespace {

[[nodiscard]] std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Fixed-size ring record: 32 bytes, written once per zone exit.
struct Record {
    std::uint32_t path = 0;
    std::int64_t t0_ns = 0;
    std::int64_t t1_ns = 0;
    std::int64_t sim_at = -1;
};

struct ThreadState {
    /// Calling-context-tree node. nodes[0] is the root (no zone).
    struct Node {
        std::uint32_t parent = 0;
        std::uint16_t zone = 0;
        std::int64_t inclusive_ns = 0;
        std::int64_t exclusive_ns = 0;
        std::uint64_t count = 0;
    };
    struct Frame {
        std::uint32_t path = 0;
        std::int64_t t0 = 0;
        std::int64_t child_ns = 0;
        std::int64_t sim_at = -1;
    };

    std::vector<Node> nodes{Node{}};
    std::map<std::pair<std::uint32_t, std::uint16_t>, std::uint32_t> children;
    std::vector<Frame> stack;
    std::vector<Record> ring;
    std::size_t ring_pos = 0;
    bool ring_wrapped = false;
    std::uint64_t entries = 0;
    std::uint64_t dropped = 0;
    std::uint32_t index = 0; // registration order

    std::uint32_t intern(std::uint32_t parent, std::uint16_t zone) {
        const auto [it, inserted] =
            children.emplace(std::make_pair(parent, zone),
                             static_cast<std::uint32_t>(nodes.size()));
        if (inserted) nodes.push_back(Node{parent, zone, 0, 0, 0});
        return it->second;
    }

    void clear_data() {
        for (Node& n : nodes) {
            n.inclusive_ns = 0;
            n.exclusive_ns = 0;
            n.count = 0;
        }
        // Open frames keep their interned paths; their in-flight time is
        // simply not attributed (reset is a quiescent-point operation).
        ring_pos = 0;
        ring_wrapped = false;
        entries = 0;
        dropped = 0;
    }
};

/// Global state behind a function-local static, so zone registration is
/// safe during static initialization of other translation units.
struct Global {
    std::mutex mu;
    std::vector<std::string> zone_names{""}; // id 0 reserved
    std::map<std::string, std::uint16_t> zone_ids;
    std::vector<ThreadState*> threads;
    std::size_t ring_capacity = 65536;
    std::atomic<std::int64_t (*)(const void*)> time_fn{nullptr};
    std::atomic<const void*> time_ctx{nullptr};
};

Global& global() {
    static Global g;
    return g;
}

thread_local ThreadState* t_state = nullptr;

ThreadState& state() {
    if (t_state == nullptr) {
        Global& g = global();
        const std::lock_guard<std::mutex> lock(g.mu);
        // Thread states intentionally leak: a worker thread may exit while
        // its data is still waiting to be merged into the final report.
        auto* s = new ThreadState();
        s->index = static_cast<std::uint32_t>(g.threads.size());
        s->ring.resize(g.ring_capacity);
        g.threads.push_back(s);
        t_state = s;
    }
    return *t_state;
}

/// Root-first path of a node, as zone-name components.
std::string path_of(const ThreadState& s, std::uint32_t node,
                    const std::vector<std::string>& names) {
    std::vector<std::uint16_t> zones;
    for (std::uint32_t n = node; n != 0; n = s.nodes[n].parent) {
        zones.push_back(s.nodes[n].zone);
    }
    std::string out;
    for (auto it = zones.rbegin(); it != zones.rend(); ++it) {
        if (!out.empty()) out += ';';
        out += names[*it];
    }
    return out;
}

} // namespace

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

void reset() {
    Global& g = global();
    const std::lock_guard<std::mutex> lock(g.mu);
    for (ThreadState* s : g.threads) s->clear_data();
}

void set_ring_capacity(std::size_t records) {
    Global& g = global();
    const std::lock_guard<std::mutex> lock(g.mu);
    g.ring_capacity = std::max<std::size_t>(records, 16);
    // Resize any already-registered quiescent thread (pimsim sets the
    // capacity after the main thread has touched the profiler).
    for (ThreadState* s : g.threads) {
        if (s->entries == 0) s->ring.assign(g.ring_capacity, Record{});
    }
}

void set_time_source(std::int64_t (*fn)(const void*), const void* ctx) {
    Global& g = global();
    g.time_ctx.store(ctx, std::memory_order_relaxed);
    g.time_fn.store(fn, std::memory_order_release);
}

std::uint16_t register_zone(const char* name) {
    Global& g = global();
    const std::lock_guard<std::mutex> lock(g.mu);
    const auto it = g.zone_ids.find(name);
    if (it != g.zone_ids.end()) return it->second;
    const auto id = static_cast<std::uint16_t>(g.zone_names.size());
    g.zone_names.emplace_back(name);
    g.zone_ids.emplace(name, id);
    return id;
}

void zone_enter(ZoneSite& site) {
    std::uint16_t id = site.id.load(std::memory_order_relaxed);
    if (id == 0) {
        id = register_zone(site.name);
        site.id.store(id, std::memory_order_relaxed);
    }
    ThreadState& s = state();
    const std::uint32_t parent = s.stack.empty() ? 0 : s.stack.back().path;
    const std::uint32_t path = s.intern(parent, id);
    std::int64_t sim_at = -1;
    if (auto* fn = global().time_fn.load(std::memory_order_acquire)) {
        sim_at = fn(global().time_ctx.load(std::memory_order_relaxed));
    }
    ++s.entries;
    s.stack.push_back({path, now_ns(), 0, sim_at});
}

void zone_exit() {
    ThreadState& s = state();
    if (s.stack.empty()) return; // enabled mid-scope; nothing to close
    const std::int64_t t1 = now_ns();
    const ThreadState::Frame frame = s.stack.back();
    s.stack.pop_back();
    const std::int64_t dt = t1 - frame.t0;
    ThreadState::Node& node = s.nodes[frame.path];
    node.inclusive_ns += dt;
    node.exclusive_ns += std::max<std::int64_t>(0, dt - frame.child_ns);
    ++node.count;
    if (!s.stack.empty()) s.stack.back().child_ns += dt;

    Record& r = s.ring[s.ring_pos];
    if (s.ring_wrapped) ++s.dropped;
    r = Record{frame.path, frame.t0, t1, frame.sim_at};
    if (++s.ring_pos == s.ring.size()) {
        s.ring_pos = 0;
        s.ring_wrapped = true;
    }
}

Calibration calibrate() {
    Calibration cal;
    const bool was_enabled = enabled();
    if (was_enabled) set_enabled(false);

    // Clock read cost: a long run of dependent reads, best of 5 batches
    // (interrupt noise only ever inflates a batch).
    constexpr int kClockReads = 1 << 16;
    double best = 0;
    for (int rep = 0; rep < 5; ++rep) {
        const std::int64_t start = now_ns();
        std::int64_t sink = 0;
        for (int i = 0; i < kClockReads; ++i) sink += now_ns() & 1;
        const double per =
            static_cast<double>(now_ns() - start - (sink & 0)) / kClockReads;
        if (rep == 0 || per < best) best = per;
    }
    cal.clock_read_ns = best;

    // Disabled-zone cost against an empty loop with the same induction
    // variable, so the delta is the macro's load + branch.
    constexpr int kZoneReps = 1 << 20;
    double zone_best = 0;
    double empty_best = 0;
    for (int rep = 0; rep < 5; ++rep) {
        std::int64_t start = now_ns();
        for (int i = 0; i < kZoneReps; ++i) {
            PROF_ZONE("prof.calibrate");
        }
        const double zone_s = static_cast<double>(now_ns() - start);
        start = now_ns();
        volatile int sink = 0;
        for (int i = 0; i < kZoneReps; ++i) sink = sink + 0;
        const double empty_s = static_cast<double>(now_ns() - start);
        if (rep == 0 || zone_s < zone_best) zone_best = zone_s;
        if (rep == 0 || empty_s < empty_best) empty_best = empty_s;
    }
    cal.disabled_zone_ns =
        std::max(0.0, (zone_best - empty_best) / kZoneReps);

    if (was_enabled) set_enabled(true);
    return cal;
}

Report snapshot() {
    Global& g = global();
    const std::lock_guard<std::mutex> lock(g.mu);
    Report report;
    report.threads = g.threads.size();

    // Merge keyed by path string: deterministic regardless of thread
    // registration order or per-thread interning order.
    std::map<std::string, ReportNode> merged;
    for (const ThreadState* s : g.threads) {
        report.total_entries += s->entries;
        report.dropped_records += s->dropped;
        for (std::uint32_t n = 1; n < s->nodes.size(); ++n) {
            const ThreadState::Node& node = s->nodes[n];
            if (node.count == 0) continue;
            const std::string path = path_of(*s, n, g.zone_names);
            ReportNode& out = merged[path];
            if (out.path.empty()) {
                out.path = path;
                out.leaf = g.zone_names[node.zone];
            }
            out.inclusive_ns += node.inclusive_ns;
            out.exclusive_ns += node.exclusive_ns;
            out.count += node.count;
        }
    }
    report.nodes.reserve(merged.size());
    for (auto& [path, node] : merged) report.nodes.push_back(std::move(node));

    // Per-zone rollup. Exclusive and counts sum over every node; inclusive
    // sums only nodes whose ancestors do not contain the same zone, so
    // recursion ("a;b;a") is counted once at its outermost frame.
    std::map<std::string, ZoneStat> zones;
    for (const ReportNode& node : report.nodes) {
        ZoneStat& z = zones[node.leaf];
        if (z.zone.empty()) z.zone = node.leaf;
        z.exclusive_ns += node.exclusive_ns;
        z.count += node.count;
        bool outermost = true;
        // Ancestors are the ';'-separated components before the leaf.
        std::size_t begin = 0;
        const std::size_t leaf_start = node.path.size() - node.leaf.size();
        while (begin < leaf_start) {
            std::size_t end = node.path.find(';', begin);
            if (end == std::string::npos || end >= leaf_start) break;
            if (node.path.compare(begin, end - begin, node.leaf) == 0) {
                outermost = false;
                break;
            }
            begin = end + 1;
        }
        if (outermost) z.inclusive_ns += node.inclusive_ns;
    }
    report.zones.reserve(zones.size());
    for (auto& [name, stat] : zones) report.zones.push_back(std::move(stat));
    return report;
}

std::vector<TraceSlice> trace_slices() {
    Global& g = global();
    const std::lock_guard<std::mutex> lock(g.mu);
    std::vector<TraceSlice> out;
    for (const ThreadState* s : g.threads) {
        const std::size_t n = s->ring_wrapped ? s->ring.size() : s->ring_pos;
        const std::size_t start = s->ring_wrapped ? s->ring_pos : 0;
        for (std::size_t i = 0; i < n; ++i) {
            const Record& r = s->ring[(start + i) % s->ring.size()];
            TraceSlice slice;
            slice.thread = s->index;
            slice.path = path_of(*s, r.path, g.zone_names);
            slice.leaf = g.zone_names[s->nodes[r.path].zone];
            slice.t0_ns = r.t0_ns;
            slice.t1_ns = r.t1_ns;
            slice.sim_at = r.sim_at;
            out.push_back(std::move(slice));
        }
    }
    std::sort(out.begin(), out.end(), [](const TraceSlice& a, const TraceSlice& b) {
        return a.thread != b.thread ? a.thread < b.thread : a.t0_ns < b.t0_ns;
    });
    return out;
}

std::string to_collapsed(const Report& report) {
    std::string out;
    char buf[64];
    for (const ReportNode& node : report.nodes) {
        if (node.exclusive_ns <= 0 && node.count == 0) continue;
        // Value unit: exclusive microseconds (flamegraph.pl and speedscope
        // take any weight; µs keeps small zones above zero).
        const auto us = static_cast<long long>(node.exclusive_ns / 1000);
        std::snprintf(buf, sizeof(buf), " %lld\n", us > 0 ? us : (node.count > 0 ? 1 : 0));
        out += node.path;
        out += buf;
    }
    return out;
}

std::string to_table(const Report& report) {
    std::vector<ZoneStat> by_excl = report.zones;
    std::sort(by_excl.begin(), by_excl.end(), [](const ZoneStat& a, const ZoneStat& b) {
        return a.exclusive_ns != b.exclusive_ns ? a.exclusive_ns > b.exclusive_ns
                                                : a.zone < b.zone;
    });
    std::string out;
    char buf[192];
    std::snprintf(buf, sizeof(buf), "%-28s %12s %12s %12s\n", "zone", "calls",
                  "excl_ms", "incl_ms");
    out += buf;
    for (const ZoneStat& z : by_excl) {
        std::snprintf(buf, sizeof(buf), "%-28s %12" PRIu64 " %12.3f %12.3f\n",
                      z.zone.c_str(), z.count,
                      static_cast<double>(z.exclusive_ns) / 1e6,
                      static_cast<double>(z.inclusive_ns) / 1e6);
        out += buf;
    }
    return out;
}

} // namespace pimlib::prof
