// Point-in-time captures of every router's multicast forwarding state
// (the MRIB): (*,G) and (S,G) entries with oif lists, per-oif timer
// remaining, and negative caches (RP-bit prunes / pruned oifs).
//
// Snapshots are plain data — the mcast layer fills them in (it knows the
// cache internals); telemetry only stores, renders and diffs them. Diffing
// compares a *structural* signature that deliberately excludes timer
// remaining, so two captures of a stable tree taken seconds apart diff
// empty even though every soft-state timer ticked down in between.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace pimlib::telemetry {

struct OifSnapshot {
    int ifindex = -1;
    sim::Time remaining = 0; // time until the oif times out (0 = pinned/expired)
    bool pinned = false;
};

struct EntrySnapshot {
    std::string source_or_rp; // the RP address for (*,G) entries
    std::string group;
    bool wildcard = false; // (*,G)
    bool rp_bit = false;
    bool spt_bit = false;
    int iif = -1;
    /// Upstream neighbor joins are addressed to (RPF'); empty when upstream
    /// is directly connected. Part of the structural signature so an assert
    /// retargeting a join shows up in a snapshot diff.
    std::string upstream;
    std::vector<OifSnapshot> oifs;
    std::vector<int> pruned_oifs; // negative cache: interfaces explicitly pruned
    sim::Time delete_in = 0;      // time until the whole entry expires

    /// Stable identity of the entry: "(*,G)" / "(S,G)" plus addresses.
    [[nodiscard]] std::string key() const;
    /// Structural signature: key + flags + iif + oif/pruned sets, timers
    /// excluded. Two entries with equal signatures are "the same tree arm".
    [[nodiscard]] std::string signature() const;
    /// Human-readable one-liner including timer remaining.
    [[nodiscard]] std::string describe() const;
};

struct RouterMrib {
    std::string router;
    std::vector<EntrySnapshot> entries;
};

struct MribSnapshot {
    sim::Time at = 0;
    std::vector<RouterMrib> routers;

    [[nodiscard]] std::size_t entry_count() const;
    [[nodiscard]] std::string to_text() const;

    /// Stable structural hash: FNV-1a over every router's entry signatures,
    /// sorted first so capture order (which follows pointer-keyed maps)
    /// cannot perturb the value. Excludes `at` and all timer remainders —
    /// two captures of the same tree hash equal no matter when they were
    /// taken. This is the state-dedup key of the model checker (src/check).
    [[nodiscard]] std::uint64_t hash() const;
};

/// What changed between two snapshots, keyed "router key". `changed` holds
/// entries present in both whose structural signature differs (flag flip,
/// iif move, oif added/pruned) — pure timer countdown never registers.
struct MribDiff {
    std::vector<std::string> added;
    std::vector<std::string> removed;
    std::vector<std::string> changed;

    [[nodiscard]] bool empty() const {
        return added.empty() && removed.empty() && changed.empty();
    }
    [[nodiscard]] std::string to_text() const;
};

[[nodiscard]] MribDiff diff(const MribSnapshot& before, const MribSnapshot& after);

} // namespace pimlib::telemetry
