// Render the registry for consumers: Prometheus text exposition for
// scraping-style tooling, JSON for the benches (machine-diffable results),
// and a compact CSV time-series for plotting a handful of instruments over
// simulated time.
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace pimlib::telemetry {

/// Prometheus text exposition format (v0.0.4): # HELP / # TYPE headers,
/// label values escaped (\\, \", \n), histograms expanded into cumulative
/// `_bucket{le=...}` series plus `_sum` and `_count`. Counters export their
/// since-epoch value.
[[nodiscard]] std::string to_prometheus(const Registry& registry);

/// Escape a label value for the text format (exposed for tests).
[[nodiscard]] std::string prometheus_escape(const std::string& value);

/// Escape a string for embedding in a JSON value (exposed for tests).
[[nodiscard]] std::string json_escape(const std::string& value);

/// JSON object keyed by metric name; labeled instruments nest an array of
/// {labels, ...} entries. Histograms carry count/sum/min/max/p50/p90/p99.
[[nodiscard]] std::string to_json(const Registry& registry);

/// A compact CSV time-series: pick instruments as columns, call sample()
/// at each tick, then render. Counters are sampled as since-epoch values;
/// gauges as-is.
class TimeSeries {
public:
    void add_counter(const std::string& column, const Counter& counter) {
        columns_.push_back({column, &counter, nullptr});
    }
    void add_gauge(const std::string& column, const Gauge& gauge) {
        columns_.push_back({column, nullptr, &gauge});
    }

    void sample(sim::Time now);

    [[nodiscard]] std::size_t rows() const { return rows_.size(); }
    [[nodiscard]] std::string to_csv() const;

private:
    struct Column {
        std::string name;
        const Counter* counter;
        const Gauge* gauge;
    };
    struct Row {
        sim::Time at;
        std::vector<double> values;
    };
    std::vector<Column> columns_;
    std::vector<Row> rows_;
};

} // namespace pimlib::telemetry
