#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pimlib::telemetry {

LabelSet::LabelSet(std::initializer_list<std::pair<std::string, std::string>> labels)
    : pairs_(labels) {
    std::sort(pairs_.begin(), pairs_.end());
}

std::string LabelSet::key() const {
    std::string out;
    for (const auto& [k, v] : pairs_) {
        out += k;
        out += '\x01';
        out += v;
        out += '\x02';
    }
    return out;
}

Buckets Buckets::exponential(double start, double growth, int count) {
    if (start <= 0 || growth <= 1.0 || count <= 0 || count > kMaxBuckets) {
        throw std::invalid_argument("Buckets::exponential: need start > 0, "
                                    "growth > 1, 0 < count <= 64");
    }
    Buckets b;
    b.bounds.reserve(static_cast<std::size_t>(count));
    double bound = start;
    for (int i = 0; i < count; ++i) {
        b.bounds.push_back(bound);
        bound *= growth;
    }
    return b;
}

Histogram::Histogram(Buckets buckets)
    : bounds_(std::move(buckets.bounds)), counts_(bounds_.size() + 1, 0) {
    if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
        throw std::invalid_argument("Histogram: bucket bounds must ascend");
    }
}

void Histogram::observe(double v) {
    // v <= bounds_[i] lands in bucket i; beyond every bound lands in +Inf.
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

double Histogram::quantile(double q) const {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(count_);
    double running = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double in_bucket = static_cast<double>(counts_[i]);
        if (in_bucket == 0 || running + in_bucket < rank) {
            running += in_bucket;
            continue;
        }
        // The rank falls inside bucket i: interpolate between its bounds.
        if (i == counts_.size() - 1) return max_; // +Inf bucket
        const double upper = bounds_[i];
        const double lower = i == 0 ? 0.0 : bounds_[i - 1];
        const double pos = (rank - running) / in_bucket;
        return std::clamp(lower + (upper - lower) * pos, min_, max_);
    }
    return max_;
}

std::size_t Registry::intern(const LabelSet& labels) {
    const std::string key = labels.key();
    auto it = label_index_.find(key);
    if (it != label_index_.end()) return it->second;
    const std::size_t id = label_sets_.size();
    label_sets_.push_back(std::make_unique<LabelSet>(labels));
    label_index_.emplace(key, id);
    return id;
}

Registry::Instrument& Registry::find_or_create(const std::string& name,
                                               const LabelSet& labels, Kind kind,
                                               const std::string& help) {
    const std::size_t label_id = intern(labels);
    auto it = index_.find({name, label_id});
    if (it != index_.end()) {
        if (it->second->kind != kind) {
            throw std::logic_error("telemetry: instrument '" + name +
                                   "' re-registered with a different kind");
        }
        return *it->second;
    }
    // A name must keep one kind across all label sets (Prometheus family
    // semantics).
    for (const auto& existing : instruments_) {
        if (existing->name == name && existing->kind != kind) {
            throw std::logic_error("telemetry: instrument '" + name +
                                   "' re-registered with a different kind");
        }
    }
    auto inst = std::make_unique<Instrument>();
    inst->name = name;
    inst->help = help;
    inst->kind = kind;
    inst->labels = labels_of(label_id);
    Instrument& ref = *inst;
    index_.emplace(std::make_pair(name, label_id), &ref);
    instruments_.push_back(std::move(inst));
    return ref;
}

Counter& Registry::counter(const std::string& name, const LabelSet& labels,
                           const std::string& help) {
    Instrument& inst = find_or_create(name, labels, Kind::kCounter, help);
    if (!inst.counter) inst.counter = std::make_unique<Counter>();
    return *inst.counter;
}

Gauge& Registry::gauge(const std::string& name, const LabelSet& labels,
                       const std::string& help) {
    Instrument& inst = find_or_create(name, labels, Kind::kGauge, help);
    if (!inst.gauge) inst.gauge = std::make_unique<Gauge>();
    return *inst.gauge;
}

Histogram& Registry::histogram(const std::string& name, const Buckets& buckets,
                               const LabelSet& labels, const std::string& help) {
    Instrument& inst = find_or_create(name, labels, Kind::kHistogram, help);
    if (!inst.histogram) inst.histogram = std::make_unique<Histogram>(buckets);
    return *inst.histogram;
}

void Registry::begin_epoch() {
    for (const auto& inst : instruments_) {
        if (inst->counter) inst->counter->begin_epoch();
    }
}

std::vector<const Registry::Instrument*> Registry::sorted() const {
    std::vector<const Instrument*> out;
    out.reserve(instruments_.size());
    for (const auto& inst : instruments_) out.push_back(inst.get());
    std::sort(out.begin(), out.end(), [](const Instrument* a, const Instrument* b) {
        if (a->name != b->name) return a->name < b->name;
        return a->labels.key() < b->labels.key();
    });
    return out;
}

} // namespace pimlib::telemetry
