#include "telemetry/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace pimlib::telemetry {

std::string EntrySnapshot::key() const {
    std::string out = wildcard ? "(*, " : "(" + source_or_rp + ", ";
    out += group;
    out += ')';
    return out;
}

std::string EntrySnapshot::signature() const {
    std::string out = key();
    if (wildcard) {
        out += " rp=" + source_or_rp;
    }
    if (rp_bit) out += " RPbit";
    if (spt_bit) out += " SPTbit";
    out += " iif=" + std::to_string(iif);
    if (!upstream.empty()) out += " up=" + upstream;
    // oifs() iterates a std::map upstream so arrival order is already
    // sorted, but don't rely on that here.
    std::vector<int> oif_ids;
    for (const OifSnapshot& oif : oifs) oif_ids.push_back(oif.ifindex);
    std::sort(oif_ids.begin(), oif_ids.end());
    out += " oifs={";
    for (std::size_t i = 0; i < oif_ids.size(); ++i) {
        if (i) out += ',';
        out += std::to_string(oif_ids[i]);
    }
    out += '}';
    std::vector<int> pruned = pruned_oifs;
    std::sort(pruned.begin(), pruned.end());
    if (!pruned.empty()) {
        out += " pruned={";
        for (std::size_t i = 0; i < pruned.size(); ++i) {
            if (i) out += ',';
            out += std::to_string(pruned[i]);
        }
        out += '}';
    }
    return out;
}

std::string EntrySnapshot::describe() const {
    std::string out = signature();
    char buf[64];
    for (const OifSnapshot& oif : oifs) {
        if (oif.pinned) continue;
        std::snprintf(buf, sizeof(buf), " oif%d:%.3fs", oif.ifindex,
                      static_cast<double>(oif.remaining) / sim::kSecond);
        out += buf;
    }
    if (delete_in > 0) {
        std::snprintf(buf, sizeof(buf), " expires:%.3fs",
                      static_cast<double>(delete_in) / sim::kSecond);
        out += buf;
    }
    return out;
}

std::size_t MribSnapshot::entry_count() const {
    std::size_t n = 0;
    for (const RouterMrib& r : routers) n += r.entries.size();
    return n;
}

std::string MribSnapshot::to_text() const {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "MRIB snapshot at %.6fs (%zu entries)\n",
                  static_cast<double>(at) / sim::kSecond, entry_count());
    std::string out = buf;
    for (const RouterMrib& r : routers) {
        out += "  " + r.router + ":\n";
        for (const EntrySnapshot& e : r.entries) {
            out += "    " + e.describe() + "\n";
        }
        if (r.entries.empty()) out += "    (empty)\n";
    }
    return out;
}

std::uint64_t MribSnapshot::hash() const {
    std::vector<std::string> lines;
    lines.reserve(entry_count() + routers.size());
    for (const RouterMrib& r : routers) {
        // An entry-less router still contributes its name, so "router came
        // up with no state yet" and "router absent" hash differently.
        if (r.entries.empty()) lines.push_back(r.router);
        for (const EntrySnapshot& e : r.entries) {
            lines.push_back(r.router + " " + e.signature());
        }
    }
    std::sort(lines.begin(), lines.end());
    std::uint64_t h = 14695981039346656037ull; // FNV-1a 64-bit offset basis
    for (const std::string& line : lines) {
        for (const char c : line) {
            h ^= static_cast<std::uint8_t>(c);
            h *= 1099511628211ull;
        }
        h ^= 0xffu; // separator outside the signature alphabet
        h *= 1099511628211ull;
    }
    return h;
}

namespace {

std::map<std::string, std::string> signature_index(const MribSnapshot& snap) {
    std::map<std::string, std::string> out;
    for (const RouterMrib& r : snap.routers) {
        for (const EntrySnapshot& e : r.entries) {
            out[r.router + " " + e.key()] = e.signature();
        }
    }
    return out;
}

} // namespace

MribDiff diff(const MribSnapshot& before, const MribSnapshot& after) {
    const auto old_index = signature_index(before);
    const auto new_index = signature_index(after);
    MribDiff out;
    for (const auto& [id, sig] : new_index) {
        auto it = old_index.find(id);
        if (it == old_index.end()) {
            out.added.push_back(id);
        } else if (it->second != sig) {
            out.changed.push_back(id);
        }
    }
    for (const auto& [id, sig] : old_index) {
        if (!new_index.contains(id)) out.removed.push_back(id);
    }
    return out;
}

std::string MribDiff::to_text() const {
    if (empty()) return "(no structural change)\n";
    std::string out;
    for (const std::string& id : added) out += "+ " + id + "\n";
    for (const std::string& id : removed) out += "- " + id + "\n";
    for (const std::string& id : changed) out += "~ " + id + "\n";
    return out;
}

} // namespace pimlib::telemetry
