// Structured event log of protocol state transitions, plus causal spans.
//
// Packet traces (src/trace) show what crossed the wire; this log shows what
// each protocol *decided* — entry create/expire, SPT-bit flips, RP-bit
// prunes, DR elections, register/join/prune send+receive — each event
// stamped with sim-time and the emitting node. The systematic-testing work
// on multicast protocols (Helmy/Estrin/Gupta) argues that exactly this
// protocol-state visibility is what makes error scenarios analyzable.
//
// Spans tie cause to effect across nodes: open a span at the cause (IGMP
// report sent, RP failover initiated, SPT switch initiated) and close it at
// the effect (first data packet delivered, SPT bit set). Every completed
// span is observed into a `pimlib_control_span_seconds{span=<kind>}`
// histogram, so end-to-end latencies fall out of `dump-metrics` for free.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace pimlib::telemetry {

enum class EventType : std::uint8_t {
    kEntryCreated,      // (*,G) or (S,G) forwarding entry installed
    kEntryExpired,      // entry deleted by soft-state timeout
    kSptSwitchStarted,  // DR initiated the shared-tree → SPT switch (§3.3)
    kSptBitSet,         // data arrived on the SPT iif; SPT bit 0→1 (§3.5)
    kRpBitPrune,        // negative-cache prune installed (§3.3)
    kDrElected,         // designated-router identity changed (§3.7)
    kRegisterSent,      // source DR encapsulated data to an RP (§3.2)
    kRegisterReceived,  // RP decapsulated a register
    kJoinSent,          // join list sent upstream (periodic or triggered)
    kJoinReceived,      // targeted join processed
    kPruneSent,         // prune list sent upstream
    kPruneReceived,     // targeted prune processed
    kIgmpReport,        // host expressed interest in a group (§2.1)
    kRpFailover,        // DR timed out its RP and re-joined an alternate (§3.9)
    kGraftSent,         // dense-mode graft (PIM-DM / DVMRP)
    kLsaOriginated,     // MOSPF membership LSA flooded
    kWatchdogViolation, // online invariant watchdog raised a violation
    kAssertWon,         // this router won a LAN forwarder assert
    kAssertLost,        // this router lost a LAN forwarder assert and pruned
    kBsrElected,        // this router's view of the elected BSR changed
    kRpSetChanged,      // BSR-learned dynamic RP-set changed on this router
};

[[nodiscard]] const char* to_string(EventType type);

struct Event {
    sim::Time at = 0;
    EventType type = EventType::kEntryCreated;
    std::string node;     // emitting router or host
    std::string protocol; // "pim", "pim-dm", "dvmrp", "cbt", "mospf", "igmp"
    std::string group;    // empty when not group-scoped
    std::string detail;   // free text: source, interface, counts …
    std::uint64_t span = 0; // causal span id; 0 = none
};

/// Append-only, bounded event log. Disabled by default (zero cost beyond a
/// branch); when the capacity is hit, new events are dropped and counted so
/// truncation is never silent.
class EventLog {
public:
    static constexpr std::size_t kDefaultCapacity = 65536;

    void set_enabled(bool enabled) { enabled_ = enabled; }
    [[nodiscard]] bool enabled() const { return enabled_; }
    void set_capacity(std::size_t capacity) { capacity_ = capacity; }

    void emit(Event event);

    [[nodiscard]] const std::vector<Event>& events() const { return events_; }
    [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
    void clear();

    /// Formatted one-line-per-event dump, optionally filtered.
    [[nodiscard]] std::string dump(
        const std::function<bool(const Event&)>& filter = {}) const;

private:
    bool enabled_ = false;
    std::size_t capacity_ = kDefaultCapacity;
    std::vector<Event> events_;
    std::uint64_t dropped_ = 0;
};

/// Open/close causal spans keyed by (kind, key); completed spans are
/// observed into `pimlib_control_span_seconds{span=<kind>}` in the bound
/// registry. Re-opening an already-open (kind, key) keeps the original
/// start time (the first cause wins).
class SpanTracker {
public:
    explicit SpanTracker(Registry& registry) : registry_(&registry) {}

    std::uint64_t begin(const std::string& kind, const std::string& key,
                        sim::Time now);
    /// Closes the span if open; returns its latency.
    std::optional<sim::Time> end(const std::string& kind, const std::string& key,
                                 sim::Time now);
    /// Discards an open span without recording it (the awaited effect was
    /// cancelled, e.g. a receiver left before any data arrived).
    void abort(const std::string& kind, const std::string& key) {
        open_.erase({kind, key});
    }

    [[nodiscard]] bool is_open(const std::string& kind, const std::string& key) const {
        return open_.contains({kind, key});
    }
    [[nodiscard]] std::size_t open_count() const { return open_.size(); }

    struct Completed {
        std::string kind;
        std::string key;
        sim::Time begin = 0;
        sim::Time end = 0;
        std::uint64_t id = 0;
        [[nodiscard]] sim::Time latency() const { return end - begin; }
    };
    [[nodiscard]] const std::vector<Completed>& completed() const { return completed_; }

private:
    struct OpenSpan {
        std::uint64_t id;
        sim::Time begin;
    };
    Registry* registry_;
    std::map<std::pair<std::string, std::string>, OpenSpan> open_;
    std::vector<Completed> completed_;
    std::uint64_t next_id_ = 1;
};

} // namespace pimlib::telemetry
