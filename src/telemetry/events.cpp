#include "telemetry/events.hpp"

#include <cstdio>

namespace pimlib::telemetry {

const char* to_string(EventType type) {
    switch (type) {
    case EventType::kEntryCreated: return "entry-created";
    case EventType::kEntryExpired: return "entry-expired";
    case EventType::kSptSwitchStarted: return "spt-switch-started";
    case EventType::kSptBitSet: return "spt-bit-set";
    case EventType::kRpBitPrune: return "rp-bit-prune";
    case EventType::kDrElected: return "dr-elected";
    case EventType::kRegisterSent: return "register-sent";
    case EventType::kRegisterReceived: return "register-received";
    case EventType::kJoinSent: return "join-sent";
    case EventType::kJoinReceived: return "join-received";
    case EventType::kPruneSent: return "prune-sent";
    case EventType::kPruneReceived: return "prune-received";
    case EventType::kIgmpReport: return "igmp-report";
    case EventType::kRpFailover: return "rp-failover";
    case EventType::kGraftSent: return "graft-sent";
    case EventType::kLsaOriginated: return "lsa-originated";
    case EventType::kWatchdogViolation: return "watchdog-violation";
    case EventType::kAssertWon: return "assert-won";
    case EventType::kAssertLost: return "assert-lost";
    case EventType::kBsrElected: return "bsr-elected";
    case EventType::kRpSetChanged: return "rp-set-changed";
    }
    return "unknown";
}

void EventLog::emit(Event event) {
    if (!enabled_) return;
    if (events_.size() >= capacity_) {
        ++dropped_;
        return;
    }
    events_.push_back(std::move(event));
}

void EventLog::clear() {
    events_.clear();
    dropped_ = 0;
}

std::string EventLog::dump(const std::function<bool(const Event&)>& filter) const {
    std::string out;
    char line[160];
    for (const Event& e : events_) {
        if (filter && !filter(e)) continue;
        std::snprintf(line, sizeof(line), "%10.6f  %-18s %-8s %-8s",
                      static_cast<double>(e.at) / sim::kSecond, to_string(e.type),
                      e.node.c_str(), e.protocol.c_str());
        out += line;
        if (!e.group.empty()) {
            out += ' ';
            out += e.group;
        }
        if (!e.detail.empty()) {
            out += "  ";
            out += e.detail;
        }
        if (e.span != 0) {
            std::snprintf(line, sizeof(line), "  [span %llu]",
                          static_cast<unsigned long long>(e.span));
            out += line;
        }
        out += '\n';
    }
    if (dropped_ > 0) {
        std::snprintf(line, sizeof(line), "... %llu event(s) dropped at capacity\n",
                      static_cast<unsigned long long>(dropped_));
        out += line;
    }
    return out;
}

std::uint64_t SpanTracker::begin(const std::string& kind, const std::string& key,
                                 sim::Time now) {
    auto it = open_.find({kind, key});
    if (it != open_.end()) return it->second.id;
    const std::uint64_t id = next_id_++;
    open_.emplace(std::make_pair(kind, key), OpenSpan{id, now});
    return id;
}

std::optional<sim::Time> SpanTracker::end(const std::string& kind,
                                          const std::string& key, sim::Time now) {
    auto it = open_.find({kind, key});
    if (it == open_.end()) return std::nullopt;
    const OpenSpan span = it->second;
    open_.erase(it);
    const sim::Time latency = now - span.begin;
    completed_.push_back({kind, key, span.begin, now, span.id});
    // 1 ms .. ~2.3 h in doubling buckets covers everything the simulator
    // plausibly measures; sub-ms latencies land in the first bucket.
    registry_
        ->histogram("pimlib_control_span_seconds",
                    Buckets::exponential(0.001, 2.0, 24), {{"span", kind}},
                    "End-to-end latency of causal spans, by span kind")
        .observe(static_cast<double>(latency) / sim::kSecond);
    return latency;
}

} // namespace pimlib::telemetry
