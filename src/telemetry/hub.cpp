#include "telemetry/hub.hpp"

namespace pimlib::telemetry {

void Hub::emit(EventType type, const std::string& node, const std::string& protocol,
               const std::string& group, const std::string& detail,
               std::uint64_t span) {
    auto key = std::make_pair(static_cast<int>(type), protocol);
    auto it = event_counters_.find(key);
    if (it == event_counters_.end()) {
        Counter& counter = registry_.counter(
            "pimlib_control_events_total",
            {{"type", to_string(type)}, {"protocol", protocol}},
            "Protocol state transitions, by event type and protocol");
        it = event_counters_.emplace(std::move(key), &counter).first;
    }
    it->second->inc();
    if (!tracing_) return;
    events_.emit({clock_->now(), type, node, protocol, group, detail, span});
}

std::uint64_t Hub::span_begin(const std::string& kind, const std::string& key) {
    if (!tracing_) return 0;
    return spans_.begin(kind, key, clock_->now());
}

std::optional<sim::Time> Hub::span_end(const std::string& kind,
                                       const std::string& key) {
    if (!tracing_) return std::nullopt;
    return spans_.end(kind, key, clock_->now());
}

void Hub::on_data_delivered(const std::string& host, const std::string& group) {
    if (!tracing_ || spans_.open_count() == 0) return;
    spans_.end(span::kJoinToData, host + "|" + group, clock_->now());
    spans_.end(span::kRpFailover, group, clock_->now());
}

void Hub::refresh_timer_gauges() {
    const sim::TimerWheel::Stats stats = clock_->wheel().stats();
    for (int level = 0; level < sim::TimerWheel::kLevels; ++level) {
        const std::string label = std::to_string(level);
        registry_
            .gauge("pimlib_timer_level_events", {{"level", label}},
                   "Live timer events stored at this wheel level")
            .set(static_cast<double>(stats.level_events[level]));
        registry_
            .gauge("pimlib_timer_level_occupied_slots", {{"level", label}},
                   "Non-empty slots at this wheel level (of 256)")
            .set(static_cast<double>(stats.occupied_slots[level]));
    }
    registry_
        .gauge("pimlib_timer_overflow_events", {},
               "Timer events beyond the wheel horizon")
        .set(static_cast<double>(stats.overflow_events));
    registry_
        .gauge("pimlib_timer_pending_events", {}, "Live timer events in total")
        .set(static_cast<double>(stats.pending));
    registry_
        .gauge("pimlib_timer_cascades_total", {},
               "Cumulative cascade passes (slot re-homing on base advance)")
        .set(static_cast<double>(stats.cascades));
    registry_
        .gauge("pimlib_timer_cascaded_nodes_total", {},
               "Cumulative timer events re-homed to a lower level")
        .set(static_cast<double>(stats.cascaded_nodes));
    registry_
        .gauge("pimlib_timer_overflow_migrations_total", {},
               "Cumulative overflow events migrated into the wheels")
        .set(static_cast<double>(stats.overflow_migrations));
}

void Hub::store_snapshot(MribSnapshot snapshot) {
    for (const RouterMrib& r : snapshot.routers) {
        registry_
            .gauge("pimlib_state_mrib_entries", {{"router", r.router}},
                   "Forwarding-cache entries per router at last snapshot")
            .set(static_cast<double>(r.entries.size()));
    }
    snapshots_.push_back(std::move(snapshot));
}

} // namespace pimlib::telemetry
