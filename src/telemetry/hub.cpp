#include "telemetry/hub.hpp"

namespace pimlib::telemetry {

void Hub::emit(EventType type, const std::string& node, const std::string& protocol,
               const std::string& group, const std::string& detail,
               std::uint64_t span) {
    auto key = std::make_pair(static_cast<int>(type), protocol);
    auto it = event_counters_.find(key);
    if (it == event_counters_.end()) {
        Counter& counter = registry_.counter(
            "pimlib_control_events_total",
            {{"type", to_string(type)}, {"protocol", protocol}},
            "Protocol state transitions, by event type and protocol");
        it = event_counters_.emplace(std::move(key), &counter).first;
    }
    it->second->inc();
    if (!tracing_) return;
    events_.emit({clock_->now(), type, node, protocol, group, detail, span});
}

std::uint64_t Hub::span_begin(const std::string& kind, const std::string& key) {
    if (!tracing_) return 0;
    return spans_.begin(kind, key, clock_->now());
}

std::optional<sim::Time> Hub::span_end(const std::string& kind,
                                       const std::string& key) {
    if (!tracing_) return std::nullopt;
    return spans_.end(kind, key, clock_->now());
}

void Hub::on_data_delivered(const std::string& host, const std::string& group) {
    if (!tracing_ || spans_.open_count() == 0) return;
    spans_.end(span::kJoinToData, host + "|" + group, clock_->now());
    spans_.end(span::kRpFailover, group, clock_->now());
}

void Hub::store_snapshot(MribSnapshot snapshot) {
    for (const RouterMrib& r : snapshot.routers) {
        registry_
            .gauge("pimlib_state_mrib_entries", {{"router", r.router}},
                   "Forwarding-cache entries per router at last snapshot")
            .set(static_cast<double>(r.entries.size()));
    }
    snapshots_.push_back(std::move(snapshot));
}

} // namespace pimlib::telemetry
