#include "telemetry/tree_monitor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pimlib::telemetry {

namespace {

// Stretch is a ratio ≥ 1; Wall's bound puts the optimal center tree at 2×,
// so 1.0 · 1.1^i buckets cover well past any healthy tree and the tail
// flags the pathological ones.
Buckets stretch_buckets() { return Buckets::exponential(1.0, 1.1, 32); }
// Depth and fanout are small integers; doubling buckets from 1 keep exact
// counts for the common values.
Buckets hop_buckets() { return Buckets::exponential(1.0, 2.0, 10); }

constexpr int kUpstreamNone = -1;   // no router upstream: this is the root
constexpr int kUpstreamBroken = -2; // ambiguous or unresolvable upstream

} // namespace

TreeMonitor::TreeMonitor(topo::Network& network, CacheResolver resolver,
                         TreeMonitorConfig config)
    : network_(&network), resolver_(std::move(resolver)), config_(config) {
    Registry& reg = network_->telemetry().registry();
    fanout_hist_ = &reg.histogram(
        "pimlib_tree_oif_fanout", hop_buckets(), {},
        "Live outgoing interfaces per forwarding entry, sampled per monitor pass");
    depth_hist_ = &reg.histogram(
        "pimlib_tree_depth_hops", hop_buckets(), {},
        "Router hops from a member leaf to its tree root");
    stretch_hist_ = &reg.histogram(
        "pimlib_tree_stretch_ratio", stretch_buckets(), {},
        "Delay stretch of distribution trees vs. unicast shortest paths "
        "(Fig. 2(a) live)");
    entries_scanned_ = &reg.counter("pimlib_tree_entries_scanned_total", {},
                                    "Forwarding entries visited by the tree monitor");
    passes_counter_ = &reg.counter("pimlib_tree_passes_total", {},
                                   "Completed tree-monitor walk passes");
    broken_walks_counter_ =
        &reg.counter("pimlib_tree_broken_walks_total", {},
                     "Leaf-to-root walks that hit missing or ambiguous upstream state");
    // The RP register/decap load is read from the hub's event counters (the
    // RP emits one event per register received/decapsulated).
    register_rx_ = &reg.counter(
        "pimlib_control_events_total",
        {{"type", "register-received"}, {"protocol", "pim"}},
        "Protocol state transitions, by event type and protocol");
    register_tx_ = &reg.counter(
        "pimlib_control_events_total",
        {{"type", "register-sent"}, {"protocol", "pim"}},
        "Protocol state transitions, by event type and protocol");
    groups_gauge_ = &reg.gauge("pimlib_tree_groups_count", {},
                               "Groups with forwarding state at last monitor pass");
    entries_wc_gauge_ =
        &reg.gauge("pimlib_tree_entries_count", {{"kind", "wildcard"}},
                   "Forwarding entries seen at last monitor pass, by kind");
    entries_sg_gauge_ =
        &reg.gauge("pimlib_tree_entries_count", {{"kind", "source"}},
                   "Forwarding entries seen at last monitor pass, by kind");
    member_ports_gauge_ =
        &reg.gauge("pimlib_tree_member_ports_count", {},
                   "Pinned (IGMP-held) live oifs at last monitor pass");
    stretch_max_gauge_ =
        &reg.gauge("pimlib_tree_stretch_ratio_max", {},
                   "Worst per-group delay stretch at last monitor pass");
    depth_max_gauge_ = &reg.gauge("pimlib_tree_depth_hops_max", {},
                                  "Deepest leaf-to-root walk at last monitor pass");
    link_flows_max_gauge_ = &reg.gauge(
        "pimlib_tree_link_flows_max", {},
        "Traffic concentration: max tree arms on one segment (Fig. 2(b) live)");
    links_used_gauge_ = &reg.gauge("pimlib_tree_links_used_count", {},
                                   "Segments carrying at least one tree arm");
    const char* rate_help =
        "RP register/decapsulation load over the last monitor window";
    register_rx_rate_gauge_ = &reg.gauge("pimlib_tree_register_per_second",
                                         {{"direction", "received"}}, rate_help);
    register_tx_rate_gauge_ = &reg.gauge("pimlib_tree_register_per_second",
                                         {{"direction", "sent"}}, rate_help);
    rate_window_start_ = network_->simulator().now();
    register_rx_base_ = register_rx_->lifetime();
    register_tx_base_ = register_tx_->lifetime();
    topo_token_ = network_->add_topology_observer([this] { graph_dirty_ = true; });
}

TreeMonitor::~TreeMonitor() {
    stop();
    network_->remove_topology_observer(topo_token_);
}

void TreeMonitor::start() {
    if (running_) return;
    running_ = true;
    tick_event_ = network_->simulator().schedule(config_.interval, [this] { tick(); });
}

void TreeMonitor::stop() {
    if (!running_) return;
    running_ = false;
    network_->simulator().cancel(tick_event_);
}

void TreeMonitor::ensure_graph() {
    const auto& routers = network_->routers();
    if (router_index_by_node_.empty() && !routers.empty()) {
        // Node-id / address indexes: topology membership is fixed for the
        // life of a network, only link state changes.
        int max_id = 0;
        for (const auto& r : routers) max_id = std::max(max_id, r->id());
        router_index_by_node_.assign(static_cast<std::size_t>(max_id) + 1, -1);
        for (std::size_t i = 0; i < routers.size(); ++i) {
            router_index_by_node_[static_cast<std::size_t>(routers[i]->id())] =
                static_cast<int>(i);
            router_by_address_[routers[i]->router_id()] = static_cast<int>(i);
            for (const auto& itf : routers[i]->interfaces()) {
                router_by_address_[itf.address] = static_cast<int>(i);
            }
        }
    }
    if (!graph_dirty_) return;
    graph_dirty_ = false;
    delay_trees_.clear();
    delay_graph_ = std::make_unique<graph::Graph>(static_cast<int>(routers.size()));
    for (const auto& seg : network_->segments()) {
        if (!seg->is_up()) continue;
        std::vector<int> attached;
        for (const auto& at : seg->attachments()) {
            const int idx = router_index(at.node->id());
            if (idx >= 0) attached.push_back(idx);
        }
        const auto weight = static_cast<double>(seg->delay());
        for (std::size_t i = 0; i < attached.size(); ++i) {
            for (std::size_t j = i + 1; j < attached.size(); ++j) {
                if (!delay_graph_->has_edge(attached[i], attached[j])) {
                    delay_graph_->add_edge(attached[i], attached[j], weight);
                }
            }
        }
    }
}

const graph::ShortestPathTree& TreeMonitor::delay_tree(int router_idx) {
    ensure_graph();
    auto it = delay_trees_.find(router_idx);
    if (it == delay_trees_.end()) {
        it = delay_trees_.emplace(router_idx, graph::dijkstra(*delay_graph_, router_idx))
                 .first;
    }
    return it->second;
}

int TreeMonitor::router_index(int node_id) const {
    if (node_id < 0 ||
        static_cast<std::size_t>(node_id) >= router_index_by_node_.size()) {
        return -1;
    }
    return router_index_by_node_[static_cast<std::size_t>(node_id)];
}

int TreeMonitor::upstream_router(int router_idx,
                                 const mcast::ForwardingEntry& entry) const {
    const topo::Router& r = *network_->routers()[static_cast<std::size_t>(router_idx)];
    const int iif = entry.iif();
    if (iif < 0 || iif >= r.interface_count()) return kUpstreamBroken;
    const topo::Segment* seg = r.interface(iif).segment;
    if (seg == nullptr) return kUpstreamBroken;
    if (const auto up = entry.upstream_neighbor()) {
        const auto it = router_by_address_.find(*up);
        return it == router_by_address_.end() ? kUpstreamBroken : it->second;
    }
    // No named upstream (directly-connected source or RP subnet): the iif
    // segment carries at most one other router.
    int found = kUpstreamNone;
    for (const auto& at : seg->attachments()) {
        if (at.node->id() == r.id()) continue;
        const int idx = router_index(at.node->id());
        if (idx < 0) continue; // a host
        if (found != kUpstreamNone) return kUpstreamBroken;
        found = idx;
    }
    return found;
}

TreeMonitor::Walk TreeMonitor::walk_to_root(int router_idx,
                                            const mcast::ForwardingEntry& leaf) {
    Walk w;
    const net::GroupAddress group = leaf.group();
    const bool wildcard = leaf.wildcard();
    const net::Ipv4Address source = leaf.source_or_rp();
    int cur = router_idx;
    const mcast::ForwardingEntry* e = &leaf;
    for (int hops = 0; hops <= config_.max_walk_hops; ++hops) {
        if (e->iif() < 0) { // the RP's own (*,G): no upstream interface
            w.ok = true;
            w.root = cur;
            return w;
        }
        const int up = upstream_router(cur, *e);
        if (up == kUpstreamNone) { // iif faces a host LAN: the source's DR
            w.ok = true;
            w.root = cur;
            return w;
        }
        if (up == kUpstreamBroken) return w;
        const topo::Router& r = *network_->routers()[static_cast<std::size_t>(cur)];
        w.delay_us += static_cast<double>(r.interface(e->iif()).segment->delay());
        w.depth += 1;
        cur = up;
        const mcast::ForwardingCache* cache =
            resolver_(*network_->routers()[static_cast<std::size_t>(cur)]);
        if (cache == nullptr) return w;
        e = wildcard ? cache->find_wc(group) : cache->find_sg(source, group);
        // An (S,G) branch still being built falls back onto the shared tree
        // upstream of the divergence point (§3.5 first exception).
        if (e == nullptr && !wildcard) e = cache->find_wc(group);
        if (e == nullptr) return w;
    }
    return w; // hop cap exceeded: treat as broken (possible iif loop)
}

TreeMonitor::CollectResult TreeMonitor::collect(int router_idx,
                                                const mcast::ForwardingEntry& entry,
                                                sim::Time now, GroupAccum& ga,
                                                bool do_walk, bool record_flows) {
    CollectResult res;
    // Concentration rides along in the same oif scan (record_flows): one
    // flow arm per live oif on the oif's segment, each tree edge counted
    // once at its upstream side, member LANs at their leaf router.
    const topo::Router& r = *network_->routers()[static_cast<std::size_t>(router_idx)];
    for (const auto& [oif, state] : entry.oifs()) {
        if (!state.alive(now)) continue;
        ++res.live;
        if (state.pinned) ++res.pinned;
        if (record_flows && oif >= 0 && oif < r.interface_count()) {
            const topo::Segment* seg = r.interface(oif).segment;
            if (seg != nullptr) link_flows_.add(seg->id());
        }
    }
    if (entry.wildcard()) {
        ++ga.wildcard_entries;
    } else {
        ++ga.sg_entries;
    }
    ga.member_ports += res.pinned;
    ga.fanout_max = std::max(ga.fanout_max, res.live);
    if (res.pinned == 0) return res; // not a member leaf of this tree
    ++ga.leaves;
    if (!do_walk) return res;
    const Walk w = walk_to_root(router_idx, entry);
    if (!w.ok) {
        res.walk = 2;
        return res;
    }
    res.walk = 1;
    res.depth = w.depth;
    ga.depth_max = std::max(ga.depth_max, w.depth);
    if (entry.wildcard()) {
        if (ga.wc_root == -1 || ga.wc_root == w.root) {
            ga.wc_root = w.root;
            ga.wc_leaves.push_back(router_idx);
            ga.wc_root_delay.push_back(w.delay_us);
        } else {
            ga.wc_root = -2; // leaves disagree about the root: skip stretch
        }
    } else if (w.root != router_idx) {
        // Per-source tree: sender→member delay on the tree vs. the unicast
        // shortest path from the root (the source's DR) to this leaf.
        const double spt = delay_tree(w.root).distance[static_cast<std::size_t>(router_idx)];
        if (spt > 0.0 && std::isfinite(spt)) {
            ga.sg_ratio_max = std::max(ga.sg_ratio_max, w.delay_us / spt);
        }
    }
    return res;
}

void TreeMonitor::visit_entry(int router_idx, const mcast::ForwardingEntry& entry,
                              sim::Time now) {
    const bool walk_allowed =
        current_.walks + current_.broken_walks < config_.walk_budget;
    GroupAccum& ga = accum_[entry.group()];
    const CollectResult res =
        collect(router_idx, entry, now, ga, walk_allowed, /*record_flows=*/true);

    ++current_.entries;
    entries_scanned_->inc();
    if (entry.wildcard()) {
        ++current_.wildcard_entries;
    } else {
        ++current_.sg_entries;
    }
    current_.member_ports += res.pinned;
    current_.fanout_max = std::max(current_.fanout_max, res.live);
    fanout_hist_->observe(static_cast<double>(res.live));

    if (res.pinned > 0 && !walk_allowed) ++current_.skipped_walks;
    if (res.walk == 1) {
        ++current_.walks;
        current_.depth_max = std::max(current_.depth_max, res.depth);
        depth_hist_->observe(static_cast<double>(res.depth));
    } else if (res.walk == 2) {
        ++current_.broken_walks;
        broken_walks_counter_->inc();
    }
}

graph::DelayRatio TreeMonitor::shared_tree_ratio(const GroupAccum& ga) {
    return graph::delay_ratio_via_root(
        ga.wc_root_delay, [&](std::size_t i, std::size_t j) {
            const double d =
                delay_tree(ga.wc_leaves[i])
                    .distance[static_cast<std::size_t>(ga.wc_leaves[j])];
            return std::isfinite(d) ? d : 0.0;
        });
}

void TreeMonitor::finish_pass(sim::Time now) {
    current_.pass = last_pass_.pass + 1;
    current_.completed_at = now;
    stretch_by_group_.clear();
    for (const auto& [group, ga] : accum_) {
        ++current_.groups;
        double group_stretch = 0.0;
        if (ga.wc_root >= 0 && ga.wc_leaves.size() >= 2) {
            const graph::DelayRatio dr = shared_tree_ratio(ga);
            stretch_by_group_[group] = dr;
            if (dr.max_ratio > 0.0) {
                stretch_hist_->observe(dr.max_ratio);
                group_stretch = dr.max_ratio;
            }
        }
        if (ga.sg_ratio_max > 0.0) {
            stretch_hist_->observe(ga.sg_ratio_max);
            group_stretch = std::max(group_stretch, ga.sg_ratio_max);
        }
        current_.stretch_max = std::max(current_.stretch_max, group_stretch);
    }
    current_.link_flows_max = link_flows_.max_flows();
    current_.links_used = link_flows_.links_used();
    last_pass_ = current_;
    passes_counter_->inc();
    publish(now);
    current_ = PassStats{};
    accum_.clear();
    link_flows_.clear();
    pass_started_at_ = -1;
}

void TreeMonitor::publish(sim::Time now) {
    groups_gauge_->set(static_cast<double>(last_pass_.groups));
    entries_wc_gauge_->set(static_cast<double>(last_pass_.wildcard_entries));
    entries_sg_gauge_->set(static_cast<double>(last_pass_.sg_entries));
    member_ports_gauge_->set(static_cast<double>(last_pass_.member_ports));
    stretch_max_gauge_->set(last_pass_.stretch_max);
    depth_max_gauge_->set(static_cast<double>(last_pass_.depth_max));
    link_flows_max_gauge_->set(static_cast<double>(last_pass_.link_flows_max));
    links_used_gauge_->set(static_cast<double>(last_pass_.links_used));

    // RP register/decap load, averaged over the window since the last pass.
    const double secs =
        static_cast<double>(now - rate_window_start_) / sim::kSecond;
    if (secs > 0.0) {
        const std::uint64_t rx = register_rx_->lifetime();
        const std::uint64_t tx = register_tx_->lifetime();
        register_rx_rate_gauge_->set(static_cast<double>(rx - register_rx_base_) / secs);
        register_tx_rate_gauge_->set(static_cast<double>(tx - register_tx_base_) / secs);
        register_rx_base_ = rx;
        register_tx_base_ = tx;
        rate_window_start_ = now;
    }
}

void TreeMonitor::tick() {
    ensure_graph();
    const sim::Time now = network_->simulator().now();
    if (pass_started_at_ < 0) pass_started_at_ = now;
    const auto& routers = network_->routers();
    std::size_t budget = config_.entry_budget;
    bool finished = false;
    while (budget > 0 && !finished) {
        if (router_cursor_ >= routers.size()) {
            finish_pass(now);
            router_cursor_ = 0;
            entry_cursor_ = {};
            finished = true;
            break;
        }
        const topo::Router& r = *routers[router_cursor_];
        const mcast::ForwardingCache* cache = resolver_ ? resolver_(r) : nullptr;
        if (cache == nullptr) {
            ++router_cursor_;
            entry_cursor_ = {};
            continue;
        }
        const int idx = static_cast<int>(router_cursor_);
        const std::size_t visited = cache->visit_entries(
            entry_cursor_, budget,
            [&](const mcast::ForwardingEntry& e) { visit_entry(idx, e, now); });
        budget -= visited;
        if (entry_cursor_.wrapped) {
            ++router_cursor_;
            entry_cursor_ = {};
        }
    }
    if (running_) {
        tick_event_ = network_->simulator().schedule(config_.interval, [this] { tick(); });
    }
}

std::optional<graph::DelayRatio>
TreeMonitor::group_stretch(net::GroupAddress group) const {
    const auto it = stretch_by_group_.find(group);
    if (it == stretch_by_group_.end()) return std::nullopt;
    return it->second;
}

TreeMonitor::GroupHealth TreeMonitor::measure_group(net::GroupAddress group) {
    ensure_graph();
    GroupHealth health;
    health.group = group;
    const sim::Time now = network_->simulator().now();
    GroupAccum ga;
    const auto& routers = network_->routers();
    for (std::size_t i = 0; i < routers.size(); ++i) {
        const mcast::ForwardingCache* cache =
            resolver_ ? resolver_(*routers[i]) : nullptr;
        if (cache == nullptr) continue;
        const int idx = static_cast<int>(i);
        if (const mcast::ForwardingEntry* wc = cache->find_wc(group)) {
            (void)collect(idx, *wc, now, ga, /*do_walk=*/true,
                          /*record_flows=*/false);
        }
        cache->for_each_sg_of(group, [&](const mcast::ForwardingEntry& e) {
            (void)collect(idx, e, now, ga, /*do_walk=*/true,
                          /*record_flows=*/false);
        });
    }
    health.wildcard_entries = ga.wildcard_entries;
    health.sg_entries = ga.sg_entries;
    health.member_ports = ga.member_ports;
    health.leaves = ga.leaves;
    health.depth_max = ga.depth_max;
    health.fanout_max = ga.fanout_max;
    health.stretch = ga.sg_ratio_max;
    if (ga.wc_root >= 0 && ga.wc_leaves.size() >= 2) {
        health.stretch = std::max(health.stretch, shared_tree_ratio(ga).max_ratio);
    }
    return health;
}

std::string TreeMonitor::GroupHealth::to_json() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"group\":\"%s\",\"stretch\":%.4f,\"fanout_max\":%zu,"
                  "\"member_ports\":%zu,\"leaves\":%zu,\"depth_max\":%d,"
                  "\"wildcard_entries\":%zu,\"sg_entries\":%zu}",
                  group.to_string().c_str(), stretch, fanout_max, member_ports,
                  leaves, depth_max, wildcard_entries, sg_entries);
    return buf;
}

} // namespace pimlib::telemetry
