// Live tree-health analytics: a periodic, sampling tree walker that turns
// the paper's offline tree-quality study (Figure 2, §1.3) into always-on
// runtime gauges. Each pass walks every router's forwarding cache under an
// incremental budget — visit_entries() resumes from a key cursor, so a
// million-entry MRIB is covered across many ticks without ever paying a
// full scan in one event — and publishes, per pass:
//
//   pimlib_tree_stretch_ratio        delay stretch vs. unicast shortest
//                                    path, through the same
//                                    graph::delay_ratio_via_root the fig2a
//                                    bench uses (no offline/online drift)
//   pimlib_tree_link_flows_max       per-link traffic concentration via the
//                                    same graph::FlowLoad as fig2b, keyed
//                                    by segment id
//   pimlib_tree_depth_hops           tree depth per leaf→root walk
//   pimlib_tree_oif_fanout           oif fan-out distribution per entry
//   pimlib_tree_register_per_second  RP register/decap load
//
// Lives above mcast/graph/unicast in the layering (pimlib_monitor library),
// below the protocol stacks: it reaches caches through a CacheResolver
// callback, typically scenario::StackBase::cache_of.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/shortest_path.hpp"
#include "graph/tree_metrics.hpp"
#include "mcast/forwarding_cache.hpp"
#include "net/ipv4.hpp"
#include "sim/simulator.hpp"
#include "topo/network.hpp"

namespace pimlib::telemetry {

struct TreeMonitorConfig {
    /// Sim-time between budgeted walk increments. Tree shape changes on
    /// join/prune timescales, so the default samples well below the
    /// protocol's own refresh period; scenarios wanting finer curves pass
    /// their own interval (`monitor trees 100ms`).
    sim::Time interval = 2 * sim::kSecond;
    /// Cache entries visited per tick, across all routers.
    std::size_t entry_budget = 4096;
    /// Leaf→root stretch walks sampled per pass (each costs O(tree depth));
    /// entries beyond the budget still contribute fanout/concentration.
    std::size_t walk_budget = 512;
    /// Safety cap on one upward walk (cycles in corrupted state).
    int max_walk_hops = 64;
};

class TreeMonitor {
public:
    /// Resolves a router's live forwarding cache; nullptr to skip the
    /// router. Typically `[&stack](const topo::Router& r) { return
    /// stack.cache_of(r); }`.
    using CacheResolver =
        std::function<const mcast::ForwardingCache*(const topo::Router&)>;

    TreeMonitor(topo::Network& network, CacheResolver resolver,
                TreeMonitorConfig config = {});
    ~TreeMonitor();

    TreeMonitor(const TreeMonitor&) = delete;
    TreeMonitor& operator=(const TreeMonitor&) = delete;

    /// Schedules periodic ticks on the network's simulator.
    void start();
    void stop();
    [[nodiscard]] bool running() const { return running_; }

    /// One budgeted walk increment (what the periodic timer runs). Exposed
    /// so tests and one-shot callers can drive passes explicitly.
    void tick();

    /// Aggregates of the last *completed* pass.
    struct PassStats {
        std::uint64_t pass = 0;        // 1-based pass number
        sim::Time completed_at = 0;
        std::size_t entries = 0;
        std::size_t wildcard_entries = 0;
        std::size_t sg_entries = 0;
        std::size_t groups = 0;
        std::size_t member_ports = 0;  // pinned (IGMP-held) live oifs
        std::size_t walks = 0;         // leaf→root walks completed
        std::size_t broken_walks = 0;  // walks hitting missing upstream state
        std::size_t skipped_walks = 0; // leaves beyond walk_budget
        int depth_max = 0;
        std::size_t fanout_max = 0;
        double stretch_max = 0.0;      // max per-group stretch ratio
        std::size_t link_flows_max = 0;
        std::size_t links_used = 0;
    };
    [[nodiscard]] const PassStats& last_pass() const { return last_pass_; }
    [[nodiscard]] std::uint64_t passes() const { return last_pass_.pass; }

    /// The last completed pass's shared-tree delay ratio for `group` —
    /// computed by graph::delay_ratio_via_root over the group's leaf
    /// routers, exactly as bench/fig2a computes it over abstract graphs.
    /// nullopt when the group had fewer than two reachable leaves.
    [[nodiscard]] std::optional<graph::DelayRatio>
    group_stretch(net::GroupAddress group) const;

    /// One group's tree health, measured synchronously right now (a
    /// bounded, single-group walk across all routers — the diagnostic path
    /// used by fault::ConvergenceProbe bound-miss reports).
    struct GroupHealth {
        net::GroupAddress group;
        std::size_t wildcard_entries = 0;
        std::size_t sg_entries = 0;
        std::size_t member_ports = 0;
        std::size_t leaves = 0;
        int depth_max = 0;
        std::size_t fanout_max = 0;
        /// Max stretch ratio: shared-tree member pairs via the root and
        /// per-source leaf paths, whichever is worse. 0 when unmeasurable.
        double stretch = 0.0;
        [[nodiscard]] std::string to_json() const;
    };
    [[nodiscard]] GroupHealth measure_group(net::GroupAddress group);

private:
    struct Walk {
        bool ok = false;
        int root = -1;          // router index of the tree root
        double delay_us = 0.0;  // accumulated iif-segment delay
        int depth = 0;
    };
    /// Per-group accumulation over one pass.
    struct GroupAccum {
        std::size_t wildcard_entries = 0;
        std::size_t sg_entries = 0;
        std::size_t member_ports = 0;
        int wc_root = -1;            // shared-tree root; -2 = inconsistent
        std::vector<int> wc_leaves;  // router index per shared-tree leaf
        std::vector<double> wc_root_delay;
        double sg_ratio_max = 0.0;   // per-source leaf stretch
        std::size_t leaves = 0;      // entries with pinned (member) oifs
        int depth_max = 0;
        std::size_t fanout_max = 0;
    };

    /// What one entry contributed: live/pinned oif counts plus the walk
    /// outcome (0 = not walked, 1 = completed, 2 = broken).
    struct CollectResult {
        std::size_t live = 0;
        std::size_t pinned = 0;
        int walk = 0;
        int depth = 0;
    };

    void ensure_graph();
    [[nodiscard]] const graph::ShortestPathTree& delay_tree(int router_idx);
    [[nodiscard]] int router_index(int node_id) const;
    [[nodiscard]] int upstream_router(int router_idx,
                                      const mcast::ForwardingEntry& entry) const;
    [[nodiscard]] Walk walk_to_root(int router_idx, const mcast::ForwardingEntry& leaf);
    /// Shared per-entry examination (pass walks and measure_group): updates
    /// `ga` (and, when record_flows, the pass's link concentration), never
    /// the pass-level stats or instruments.
    CollectResult collect(int router_idx, const mcast::ForwardingEntry& entry,
                          sim::Time now, GroupAccum& ga, bool do_walk,
                          bool record_flows);
    void visit_entry(int router_idx, const mcast::ForwardingEntry& entry,
                     sim::Time now);
    [[nodiscard]] graph::DelayRatio shared_tree_ratio(const GroupAccum& ga);
    void finish_pass(sim::Time now);
    void publish(sim::Time now);

    topo::Network* network_;
    CacheResolver resolver_;
    TreeMonitorConfig config_;

    // Instruments resolved once at construction (hot-path discipline).
    Histogram* fanout_hist_ = nullptr;
    Histogram* depth_hist_ = nullptr;
    Histogram* stretch_hist_ = nullptr;
    Counter* entries_scanned_ = nullptr;
    Counter* passes_counter_ = nullptr;
    Counter* broken_walks_counter_ = nullptr;
    Counter* register_rx_ = nullptr;
    Counter* register_tx_ = nullptr;
    Gauge* groups_gauge_ = nullptr;
    Gauge* entries_wc_gauge_ = nullptr;
    Gauge* entries_sg_gauge_ = nullptr;
    Gauge* member_ports_gauge_ = nullptr;
    Gauge* stretch_max_gauge_ = nullptr;
    Gauge* depth_max_gauge_ = nullptr;
    Gauge* link_flows_max_gauge_ = nullptr;
    Gauge* links_used_gauge_ = nullptr;
    Gauge* register_rx_rate_gauge_ = nullptr;
    Gauge* register_tx_rate_gauge_ = nullptr;

    // Router-only delay graph (segment delay in µs), rebuilt lazily after
    // topology changes; Dijkstra trees cached per root.
    bool graph_dirty_ = true;
    std::unique_ptr<graph::Graph> delay_graph_;
    std::map<int, graph::ShortestPathTree> delay_trees_;
    std::vector<int> router_index_by_node_;           // node id → router idx
    std::map<net::Ipv4Address, int> router_by_address_;
    int topo_token_ = 0;

    // Walk state: router cursor + per-cache key cursor.
    std::size_t router_cursor_ = 0;
    mcast::ForwardingCache::VisitCursor entry_cursor_;
    bool running_ = false;
    sim::EventId tick_event_{};

    // Current-pass accumulators, swapped into results at pass end.
    std::map<net::GroupAddress, GroupAccum> accum_;
    graph::FlowLoad link_flows_;
    PassStats current_;
    sim::Time pass_started_at_ = -1;
    std::uint64_t register_rx_base_ = 0;
    std::uint64_t register_tx_base_ = 0;
    sim::Time rate_window_start_ = 0;

    // Last completed pass.
    PassStats last_pass_;
    std::map<net::GroupAddress, graph::DelayRatio> stretch_by_group_;
};

} // namespace pimlib::telemetry
