// Simulation-wide metrics registry: labeled counters, gauges and histograms
// with bounded exponential buckets. The paper's efficiency argument (§1,
// §1.3) is phrased as "state, control message processing, and data packet
// processing required across the entire network"; every module reports into
// one registry so the benches and `pimsim dump-metrics` read all three axes
// from a single pipeline, across every protocol.
//
// Naming convention (enforced by review, documented in docs/ARCHITECTURE.md):
// `pimlib_<plane>_<noun>_<unit>` where <plane> is data | control | state |
// fault, e.g. `pimlib_control_messages_total{protocol="pim"}`.
//
// Hot-path discipline: call sites resolve an instrument once (a map lookup
// with label interning) and keep the returned pointer; per-event cost is
// then a single add. Instruments are owned by the Registry and live as long
// as it does.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pimlib::telemetry {

/// A sorted set of key=value labels. Construction canonicalizes (sorts by
/// key), so {a=1,b=2} and {b=2,a=1} intern to the same id.
class LabelSet {
public:
    LabelSet() = default;
    LabelSet(std::initializer_list<std::pair<std::string, std::string>> labels);

    [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& pairs() const {
        return pairs_;
    }
    [[nodiscard]] bool empty() const { return pairs_.empty(); }
    /// Canonical serialized form, used as the interning key.
    [[nodiscard]] std::string key() const;

    friend bool operator==(const LabelSet&, const LabelSet&) = default;

private:
    std::vector<std::pair<std::string, std::string>> pairs_;
};

/// Monotonic counter with epoch support: `begin_epoch()` marks the current
/// value as the new zero; `value()` reads since-epoch, `lifetime()` reads
/// since construction. Multi-phase scenarios (warm-up, then measurement)
/// reset via epochs instead of destroying counts.
class Counter {
public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    [[nodiscard]] std::uint64_t value() const { return value_ - epoch_base_; }
    [[nodiscard]] std::uint64_t lifetime() const { return value_; }
    void begin_epoch() { epoch_base_ = value_; }

private:
    std::uint64_t value_ = 0;
    std::uint64_t epoch_base_ = 0;
};

/// A settable instantaneous value.
class Gauge {
public:
    void set(double v) { value_ = v; }
    void add(double delta) { value_ += delta; }
    [[nodiscard]] double value() const { return value_; }

private:
    double value_ = 0;
};

/// Bucket boundaries for a histogram: ascending upper bounds, with an
/// implicit +Inf bucket appended. Bounded: at most kMaxBuckets finite
/// boundaries, so a histogram's memory is fixed no matter how many
/// observations arrive.
struct Buckets {
    static constexpr int kMaxBuckets = 64;

    std::vector<double> bounds;

    /// bounds[i] = start * growth^i for i in [0, count). Throws
    /// std::invalid_argument unless start > 0, growth > 1 and
    /// 0 < count <= kMaxBuckets.
    static Buckets exponential(double start, double growth, int count);
};

/// Fixed-bucket histogram tracking count, sum, min and max exactly and the
/// distribution approximately (per-bucket counts). Quantiles interpolate
/// within the containing bucket (Prometheus-style) and clamp to the exact
/// observed [min, max].
class Histogram {
public:
    explicit Histogram(Buckets buckets);

    void observe(double v);

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] double sum() const { return sum_; }
    [[nodiscard]] double min() const { return count_ == 0 ? 0 : min_; }
    [[nodiscard]] double max() const { return count_ == 0 ? 0 : max_; }
    [[nodiscard]] double mean() const {
        return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
    }
    /// q in [0,1]; returns 0 when empty.
    [[nodiscard]] double quantile(double q) const;

    /// Finite upper bounds (the +Inf bucket is counts_.back()).
    [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
    /// Per-bucket counts; size() == bounds().size() + 1 (last is +Inf).
    [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
        return counts_;
    }

private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/// The registry: owns every instrument, keyed by (name, interned label set).
/// Re-requesting the same (name, labels) returns the same instrument;
/// requesting an existing name with a different instrument kind throws
/// std::logic_error.
class Registry {
public:
    enum class Kind { kCounter, kGauge, kHistogram };

    struct Instrument {
        std::string name;
        std::string help;
        Kind kind;
        LabelSet labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    Counter& counter(const std::string& name, const LabelSet& labels = {},
                     const std::string& help = "");
    Gauge& gauge(const std::string& name, const LabelSet& labels = {},
                 const std::string& help = "");
    Histogram& histogram(const std::string& name, const Buckets& buckets,
                         const LabelSet& labels = {}, const std::string& help = "");

    /// Interns `labels`, returning a dense id; identical sets (regardless of
    /// construction order) share one id.
    std::size_t intern(const LabelSet& labels);
    [[nodiscard]] const LabelSet& labels_of(std::size_t id) const {
        return *label_sets_.at(id);
    }
    [[nodiscard]] std::size_t interned_count() const { return label_sets_.size(); }

    /// Starts a new measurement epoch: every counter's current value becomes
    /// its new zero. Gauges and histograms are left untouched (gauges are
    /// instantaneous; histograms record whole-run distributions).
    void begin_epoch();

    [[nodiscard]] std::size_t size() const { return instruments_.size(); }
    /// Instruments sorted by (name, label key) — the exporters' view.
    [[nodiscard]] std::vector<const Instrument*> sorted() const;

private:
    Instrument& find_or_create(const std::string& name, const LabelSet& labels,
                               Kind kind, const std::string& help);

    std::vector<std::unique_ptr<Instrument>> instruments_;
    std::map<std::pair<std::string, std::size_t>, Instrument*> index_;
    std::vector<std::unique_ptr<LabelSet>> label_sets_;
    std::map<std::string, std::size_t> label_index_;
};

} // namespace pimlib::telemetry
