// PIM dense mode — the companion protocol the paper cites as [13]: a
// DVMRP-like reverse-path-multicast scheme (flood, prune, graft, timed
// prune regrowth) that is unicast-routing-protocol independent: it takes
// its RPF information from the router's RIB instead of running its own
// routing protocol.
#pragma once

#include <map>
#include <set>

#include "igmp/router_agent.hpp"
#include "mcast/forwarding_cache.hpp"
#include "pim/messages.hpp"
#include "sim/simulator.hpp"
#include "topo/router.hpp"

namespace pimlib::pim {

struct PimDmConfig {
    /// How long a pruned branch stays pruned before it "grows back".
    sim::Time prune_lifetime = 180 * sim::kSecond;
    /// Neighbor discovery (PIM Query) interval and liveness.
    sim::Time query_interval = 30 * sim::kSecond;
    sim::Time neighbor_holdtime = 105 * sim::kSecond;
    /// (S,G) entry lifetime without data.
    sim::Time entry_lifetime = 180 * sim::kSecond;

    [[nodiscard]] PimDmConfig scaled(double factor) const;
};

class PimDmRouter final : public mcast::DataPlane::Delegate {
public:
    PimDmRouter(topo::Router& router, igmp::RouterAgent& igmp, PimDmConfig config = {});

    PimDmRouter(const PimDmRouter&) = delete;
    PimDmRouter& operator=(const PimDmRouter&) = delete;

    [[nodiscard]] mcast::ForwardingCache& cache() { return cache_; }
    [[nodiscard]] topo::Router& router() { return *router_; }
    [[nodiscard]] std::vector<net::Ipv4Address> neighbors_on(int ifindex) const;

    // --- mcast::DataPlane::Delegate ---
    void on_no_entry(int ifindex, const net::Packet& packet) override;
    void on_no_downstream(mcast::ForwardingEntry& entry, int ifindex,
                          const net::Packet& packet) override;

private:
    using SgKey = std::pair<net::Ipv4Address, net::GroupAddress>;

    void on_pim_message(int ifindex, const net::Packet& packet);
    void handle_prune(int ifindex, net::GroupAddress group, net::Ipv4Address source);
    void handle_graft(int ifindex, net::GroupAddress group, net::Ipv4Address source);
    void on_membership(int ifindex, net::GroupAddress group, bool present);
    void on_tick();

    mcast::ForwardingEntry* build_entry(net::Ipv4Address source, net::GroupAddress group);
    void send_prune_upstream(const mcast::ForwardingEntry& entry);
    void send_graft_upstream(const mcast::ForwardingEntry& entry);
    /// True if `ifindex` should carry flooded data for `group`: it has PIM
    /// neighbors (non-leaf) or local members (truncated broadcast, §1.1).
    [[nodiscard]] bool floods_to(int ifindex, net::GroupAddress group) const;

    topo::Router* router_;
    igmp::RouterAgent* igmp_;
    PimDmConfig config_;
    mcast::ForwardingCache cache_;
    mcast::DataPlane data_plane_;

    std::map<int, std::map<net::Ipv4Address, sim::Time>> neighbors_;
    /// Prune state per (S,G,oif): pruned until the stored time.
    std::map<std::pair<SgKey, int>, sim::Time> prunes_;
    /// (S,G)s for which we sent a prune upstream (cleared by graft need).
    std::set<SgKey> pruned_upstream_;
    /// Rate limit for prune refreshes triggered by on_no_downstream.
    std::map<SgKey, sim::Time> last_prune_sent_;

    sim::PeriodicTimer query_timer_;
    sim::PeriodicTimer tick_timer_;
};

} // namespace pimlib::pim
