#include "pim/pim_sm.hpp"

#include <algorithm>

#include "igmp/messages.hpp"
#include "provenance/provenance.hpp"
#include "telemetry/profiler/profiler.hpp"
#include "topo/network.hpp"
#include "topo/segment.hpp"

namespace pimlib::pim {

namespace {
constexpr sim::Time ms_to_time(std::uint32_t ms) {
    return static_cast<sim::Time>(ms) * sim::kMillisecond;
}

telemetry::Hub& hub_of(topo::Router& router) { return router.network().telemetry(); }

/// Span key for the shared-tree → SPT switch: opened and closed on the same
/// router, so the router name disambiguates concurrent switches.
std::string spt_span_key(const topo::Router& router, net::Ipv4Address source,
                         net::GroupAddress group) {
    return router.name() + "|" + source.to_string() + "|" + group.to_string();
}
} // namespace

PimConfig PimConfig::scaled(double factor) const {
    auto scale = [factor](sim::Time t) {
        return static_cast<sim::Time>(static_cast<double>(t) * factor);
    };
    PimConfig out = *this;
    out.join_prune_interval = scale(join_prune_interval);
    out.holdtime = scale(holdtime);
    out.query_interval = scale(query_interval);
    out.neighbor_holdtime = scale(neighbor_holdtime);
    out.rp_reachability_interval = scale(rp_reachability_interval);
    out.rp_timeout = scale(rp_timeout);
    out.join_suppression = scale(join_suppression);
    out.override_delay = scale(override_delay);
    out.assert_holdtime = scale(assert_holdtime);
    return out;
}

PimSmRouter::PimSmRouter(topo::Router& router, igmp::RouterAgent& igmp, PimConfig config)
    : router_(&router),
      igmp_(&igmp),
      config_(config),
      data_plane_(router, cache_),
      rng_(static_cast<std::uint32_t>(router.id()) * 2246822519u + 3),
      refresh_timer_(router.simulator(), [this] { on_refresh_tick(); }),
      query_timer_(router.simulator(), [this] { on_query_tick(); }),
      rp_reach_timer_(router.simulator(), [this] { on_rp_reachability_tick(); }) {
    data_plane_.set_delegate(this);
    router_->register_igmp_type(igmp::kTypePim,
                                [this](int ifindex, const net::Packet& packet) {
                                    on_pim_message(ifindex, packet);
                                });
    igmp_->subscribe([this](int ifindex, net::GroupAddress group, bool present) {
        on_membership(ifindex, group, present);
    });
    igmp_->set_rp_map_callback(
        [this](net::GroupAddress group, const std::vector<net::Ipv4Address>& rps) {
            rp_set_.learn(group, rps);
        });
    if (router_->unicast() != nullptr) {
        rib_token_ = router_->unicast()->subscribe_changes([this] { on_route_change(); });
    }
    refresh_timer_.start(config_.join_prune_interval);
    query_timer_.start(config_.query_interval);
    rp_reach_timer_.start(config_.rp_reachability_interval);
    router_->simulator().schedule(0, [this] { send_queries(); });
}

PimSmRouter::~PimSmRouter() {
    if (rib_token_ != 0 && router_->unicast() != nullptr) {
        router_->unicast()->unsubscribe_changes(rib_token_);
    }
}

void PimSmRouter::reboot() {
    ++epoch_;
    for (const auto& [key, event] : pending_prunes_) {
        router_->simulator().cancel(event);
    }
    pending_prunes_.clear();
    override_scheduled_.clear();
    suppress_until_.clear();
    neighbors_.clear();
    spt_counters_.clear();
    rp_source_active_.clear();
    registering_.clear();
    asserts_.clear();
    cache_.clear();
    // Restart the periodic machinery from the reboot instant and introduce
    // ourselves immediately; state then rebuilds from IGMP reports, incoming
    // joins, and the refresh-tick retry path.
    refresh_timer_.start(config_.join_prune_interval);
    query_timer_.start(config_.query_interval);
    rp_reach_timer_.start(config_.rp_reachability_interval);
    const std::uint64_t epoch = epoch_;
    router_->simulator().schedule(0, [this, epoch] {
        if (epoch != epoch_) return;
        send_queries();
    });
}

std::uint32_t PimSmRouter::holdtime_ms() const {
    return static_cast<std::uint32_t>(config_.holdtime / sim::kMillisecond);
}

bool PimSmRouter::is_rp_for(net::GroupAddress group) const {
    const auto rps = rp_set_.rps_for(group);
    return std::find(rps.begin(), rps.end(), router_->router_id()) != rps.end();
}

net::Ipv4Address PimSmRouter::primary_reachable_rp(net::GroupAddress group) const {
    for (net::Ipv4Address rp : rp_set_.rps_for(group)) {
        if (rp == router_->router_id() || router_->route_to(rp).has_value()) return rp;
    }
    return net::Ipv4Address{};
}

// ---------------------------------------------------------------------------
// Neighbor discovery and DR election (§3.7, footnote 14)
// ---------------------------------------------------------------------------

std::vector<net::Ipv4Address> PimSmRouter::neighbors_on(int ifindex) const {
    std::vector<net::Ipv4Address> out;
    auto it = neighbors_.find(ifindex);
    if (it == neighbors_.end()) return out;
    const sim::Time now = const_cast<topo::Router*>(router_)->simulator().now();
    for (const auto& [addr, deadline] : it->second) {
        if (deadline > now) out.push_back(addr);
    }
    return out;
}

int PimSmRouter::pim_neighbor_count(int ifindex) const {
    return static_cast<int>(neighbors_on(ifindex).size());
}

net::Ipv4Address PimSmRouter::dr_address_on(int ifindex) const {
    net::Ipv4Address best = router_->interface(ifindex).address;
    for (net::Ipv4Address addr : neighbors_on(ifindex)) best = std::max(best, addr);
    return best;
}

bool PimSmRouter::is_dr_on(int ifindex) const {
    return dr_address_on(ifindex) == router_->interface(ifindex).address;
}

void PimSmRouter::on_query_tick() {
    const sim::Time now = router_->simulator().now();
    // Capture DR status per interface before expiring neighbors, so we can
    // detect a DR change and take over stranded local memberships.
    std::map<int, bool> was_dr;
    for (const auto& iface : router_->interfaces()) {
        was_dr[iface.ifindex] = is_dr_on(iface.ifindex);
    }
    for (auto& [ifindex, nbrs] : neighbors_) {
        for (auto it = nbrs.begin(); it != nbrs.end();) {
            if (it->second <= now) {
                it = nbrs.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const auto& iface : router_->interfaces()) {
        if (!was_dr[iface.ifindex] && is_dr_on(iface.ifindex)) {
            hub_of(*router_).emit(telemetry::EventType::kDrElected, router_->name(),
                                  "pim", "",
                                  "became DR on if=" + std::to_string(iface.ifindex) +
                                      " (neighbor expired)");
            for (net::GroupAddress group : igmp_->groups_on(iface.ifindex)) {
                on_membership(iface.ifindex, group, true);
            }
        }
    }
    send_queries();
}

void PimSmRouter::send_queries() {
    const auto holdtime =
        static_cast<std::uint32_t>(config_.neighbor_holdtime / sim::kMillisecond);
    for (const auto& iface : router_->interfaces()) {
        if (!iface.up || iface.segment == nullptr) continue;
        net::Packet packet;
        packet.src = iface.address;
        packet.dst = net::kAllRouters;
        packet.proto = net::IpProto::kIgmp;
        packet.ttl = 1;
        packet.payload = Query{holdtime}.encode();
        router_->network().stats().count_control_message("pim");
        router_->send(iface.ifindex, net::Frame{std::nullopt, std::move(packet)});
    }
}

void PimSmRouter::handle_query(int ifindex, const net::Packet& packet, const Query& query) {
    if (ifindex < 0) return;
    const bool was_dr = is_dr_on(ifindex);
    neighbors_[ifindex][packet.src] =
        router_->simulator().now() + ms_to_time(query.holdtime_ms);
    if (was_dr && !is_dr_on(ifindex)) {
        hub_of(*router_).emit(telemetry::EventType::kDrElected, router_->name(),
                              "pim", "",
                              "ceded DR on if=" + std::to_string(ifindex) + " to " +
                                  dr_address_on(ifindex).to_string());
        // A higher-addressed neighbor appeared: it is now the DR. Unpin our
        // local-member oifs on this interface; the new DR re-creates them,
        // and our redundant state ages out (avoids LAN duplicates — the '94
        // architecture has no Assert mechanism).
        cache_.for_each_wc([&](mcast::ForwardingEntry& e) { e.unpin_oif(ifindex); });
        cache_.for_each_sg([&](mcast::ForwardingEntry& e) { e.unpin_oif(ifindex); });
    }
}

// ---------------------------------------------------------------------------
// Local membership → shared tree (§3.1, §3.2)
// ---------------------------------------------------------------------------

void PimSmRouter::set_interface_dense(int ifindex, bool dense) {
    if (dense) {
        dense_ifaces_.insert(ifindex);
    } else {
        dense_ifaces_.erase(ifindex);
    }
}

void PimSmRouter::set_dense_membership(int ifindex, net::GroupAddress group,
                                       bool present) {
    if (!present) {
        dense_members_[ifindex].erase(group);
        if (auto* wc = cache_.find_wc(group)) wc->unpin_oif(ifindex);
        cache_.for_each_sg_of(group,
                              [&](mcast::ForwardingEntry& e) { e.unpin_oif(ifindex); });
        return;
    }
    dense_members_[ifindex].insert(group);
    if (!rp_set_.has_mapping(group)) return;
    // Same machinery as an IGMP member, minus the DR check: the border
    // router is by definition responsible for its region.
    join_group_as_dr(ifindex, group);
}

void PimSmRouter::on_membership(int ifindex, net::GroupAddress group, bool present) {
    if (!present) {
        if (auto* wc = cache_.find_wc(group)) wc->unpin_oif(ifindex);
        cache_.for_each_sg_of(group,
                              [&](mcast::ForwardingEntry& e) { e.unpin_oif(ifindex); });
        return;
    }
    // "A DR will identify a new group as needing PIM sparse mode support by
    // checking if there exists an RP mapping" (§3.1).
    if (!rp_set_.has_mapping(group)) return;
    if (!is_dr_on(ifindex)) return;
    join_group_as_dr(ifindex, group);
}

void PimSmRouter::join_group_as_dr(int ifindex, net::GroupAddress group) {
    const net::Ipv4Address rp = primary_reachable_rp(group);
    if (rp.is_unspecified()) return; // no reachable RP yet; retried on refresh
    mcast::ForwardingEntry* wc = establish_wc(group, rp);
    if (wc == nullptr) return;
    wc->pin_oif(ifindex);
    // Local members receive sources already on shortest-path trees too.
    cache_.for_each_sg_of(group, [&](mcast::ForwardingEntry& e) {
        if (e.iif() == ifindex) return;
        if (e.rp_bit()) e.clear_pruned(ifindex);
        e.pin_oif(ifindex);
    });
}

mcast::ForwardingEntry* PimSmRouter::establish_wc(net::GroupAddress group,
                                                  net::Ipv4Address rp) {
    if (auto* existing = cache_.find_wc(group)) return existing;
    const sim::Time now = router_->simulator().now();
    if (rp == router_->router_id()) {
        // We are the RP: the incoming interface is null (§3.2).
        mcast::ForwardingEntry& wc = cache_.ensure_wc(rp, group);
        hub_of(*router_).emit(telemetry::EventType::kEntryCreated, router_->name(),
                              "pim", group.to_string(), "(*,G) at RP");
        wc.set_iif(-1);
        wc.set_rp_timer_deadline(0);
        // Attach sources already registering with us so the new shared tree
        // carries them (§3.10).
        for (const auto& [key, active_at] : rp_source_active_) {
            if (key.second != group) continue;
            if (now - active_at > config_.holdtime) continue;
            mcast::ForwardingEntry& sg = establish_sg(key.first, group);
            send_triggered_join(sg);
        }
        return &wc;
    }
    auto route = router_->route_to(rp);
    if (!route) return nullptr;
    mcast::ForwardingEntry& wc = cache_.ensure_wc(rp, group);
    hub_of(*router_).emit(telemetry::EventType::kEntryCreated, router_->name(),
                          "pim", group.to_string(), "(*,G) rp=" + rp.to_string());
    wc.set_iif(route->ifindex);
    wc.set_upstream_neighbor(route->next_hop.is_unspecified()
                                 ? std::optional<net::Ipv4Address>{}
                                 : std::optional<net::Ipv4Address>{route->next_hop});
    wc.set_rp_timer_deadline(now + config_.rp_timeout);
    send_triggered_join(wc);
    return &wc;
}

mcast::ForwardingEntry& PimSmRouter::establish_sg(net::Ipv4Address source,
                                                  net::GroupAddress group) {
    const sim::Time now = router_->simulator().now();
    mcast::ForwardingEntry* existing = cache_.find_sg(source, group);
    if (existing != nullptr && !existing->rp_bit()) return *existing;

    mcast::ForwardingEntry& sg = cache_.ensure_sg(source, group);
    hub_of(*router_).emit(telemetry::EventType::kEntryCreated, router_->name(),
                          "pim", group.to_string(),
                          "(S,G) src=" + source.to_string() +
                              (existing != nullptr ? " from negative cache" : ""));
    // Either brand new, or converting a negative-cache entry into a real
    // shortest-path entry.
    sg.set_rp_bit(false);
    sg.set_spt_bit(false);
    auto route = router_->route_to(source);
    if (route) {
        sg.set_iif(route->ifindex);
        sg.set_upstream_neighbor(route->next_hop.is_unspecified()
                                     ? std::optional<net::Ipv4Address>{}
                                     : std::optional<net::Ipv4Address>{route->next_hop});
    }
    if (existing == nullptr) {
        // "The outgoing interface list is copied from (*,G)" (§3.3).
        if (const auto* wc = cache_.find_wc(group)) {
            for (const auto& [oif, state] : wc->oifs()) {
                if (oif == sg.iif()) continue;
                if (state.pinned) {
                    sg.pin_oif(oif);
                } else if (state.alive(now)) {
                    sg.add_oif(oif, state.expires);
                }
            }
        }
    }
    return sg;
}

// ---------------------------------------------------------------------------
// Data-plane callbacks (§3.3, §3.5, the register path of §3.2)
// ---------------------------------------------------------------------------

void PimSmRouter::on_no_entry(int ifindex, const net::Packet& packet) {
    maybe_register(ifindex, packet, /*already_forwarded=*/false);
    // Provenance: no MRIB entry means the packet goes no further natively.
    // If maybe_register just created first-hop (S,G) state, the payload
    // continues encapsulated toward the RP; otherwise classify why this
    // router had nothing for it.
    const net::GroupAddress group{packet.dst};
    const mcast::ForwardingEntry* sg = cache_.find_sg(packet.src, group);
    if (sg != nullptr && !sg->rp_bit()) {
        data_plane_.record_hop(ifindex, packet, nullptr, provenance::EntryKind::kRegister,
                               /*rpf_ok=*/true, provenance::DropReason::kNone);
        return;
    }
    data_plane_.record_hop(ifindex, packet, nullptr, provenance::EntryKind::kNone,
                           /*rpf_ok=*/false, classify_no_entry_drop(ifindex, packet));
}

provenance::DropReason PimSmRouter::classify_no_entry_drop(int ifindex,
                                                           const net::Packet& packet) const {
    // A non-DR router on the source's own LAN hears every packet but cedes
    // origination to the DR — the '94 architecture's equivalent of losing
    // an assert. Everything else is plain missing state.
    const net::GroupAddress group{packet.dst};
    if (rp_set_.has_mapping(group) && ifindex >= 0 &&
        ifindex < router_->interface_count()) {
        const auto& iface = router_->interface(ifindex);
        if (iface.segment != nullptr && !dense_ifaces_.contains(ifindex) &&
            iface.segment->prefix().contains(packet.src) && !is_dr_on(ifindex)) {
            return provenance::DropReason::kAssertLoser;
        }
    }
    return provenance::DropReason::kNoState;
}

void PimSmRouter::maybe_register(int ifindex, const net::Packet& packet,
                                 bool already_forwarded) {
    // Only the DR of the source's directly-connected subnetwork registers,
    // and only while no (S,G) state exists (the RP's join ends the register
    // phase). This must fire regardless of whether unrelated (*,G) state
    // matched the packet — a transit router on the shared tree can also be
    // a source DR.
    const net::GroupAddress group{packet.dst};
    if (!rp_set_.has_mapping(group)) return;
    if (ifindex < 0 || ifindex >= router_->interface_count()) return;
    const auto& iface = router_->interface(ifindex);
    if (iface.segment == nullptr) return;
    if (dense_ifaces_.contains(ifindex)) {
        // Border-router proxying (§4): any source routed via the dense
        // region is registered on its behalf.
        if (router_->rpf_interface(packet.src) != ifindex) return;
    } else {
        if (!iface.segment->prefix().contains(packet.src)) return;
        if (!is_dr_on(ifindex)) return;
    }
    const SgKey key{packet.src, group};
    mcast::ForwardingEntry* sg = cache_.find_sg(packet.src, group);
    if (sg != nullptr && !sg->rp_bit() && !registering_.contains(key)) {
        return; // native path established (a join has arrived)
    }
    const auto rps = rp_set_.rps_for(group);
    const bool has_remote_rp =
        std::any_of(rps.begin(), rps.end(),
                    [&](net::Ipv4Address rp) { return rp != router_->router_id(); });
    bool created = false;
    if (sg == nullptr || sg->rp_bit()) {
        // First data packet from a directly-connected source: create the
        // first-hop (S,G) entry (iif = the source subnetwork; oifs copied
        // from (*,G), which serves any shared-tree branches hanging off
        // this router without echoing back onto the source LAN).
        mcast::ForwardingEntry& entry = establish_sg(packet.src, group);
        entry.set_iif(ifindex);
        entry.set_upstream_neighbor(std::nullopt);
        entry.set_spt_bit(true);
        entry.remove_oif(ifindex);
        entry.set_delete_at(router_->simulator().now() +
                            3 * config_.join_prune_interval);
        created = true;
        // The register phase only exists when some RP is remote; when we
        // are the only RP, native (S,G) forwarding covers everything.
        if (has_remote_rp) registering_.insert(key);
    }
    for (net::Ipv4Address rp : rps) {
        if (rp == router_->router_id()) {
            // We are an RP ourselves. Feed the packet through the local
            // register path only if the data plane has not delivered it
            // already (otherwise we would duplicate it down the shared
            // tree).
            rp_source_active_[{packet.src, group}] = router_->simulator().now();
            if (already_forwarded || !created) continue;
            Register reg;
            reg.group = group.address();
            reg.inner_src = packet.src;
            reg.inner_ttl = packet.ttl;
            reg.inner_seq = packet.seq;
            reg.inner_payload = packet.payload;
            net::Packet self;
            self.src = router_->router_id();
            self.dst = router_->router_id();
            handle_register(self, reg);
        } else {
            send_register(packet, rp);
        }
    }
}

void PimSmRouter::send_register(const net::Packet& data, net::Ipv4Address rp) {
    Register reg;
    reg.group = data.dst;
    reg.inner_src = data.src;
    reg.inner_ttl = data.ttl;
    reg.inner_seq = data.seq;
    reg.inner_payload = data.payload;
    net::Packet packet;
    packet.dst = rp;
    packet.proto = net::IpProto::kIgmp;
    packet.ttl = 64;
    packet.payload = reg.encode();
    packet.pid = data.pid; // the tunnel leg inherits the payload's trace id
    router_->network().stats().count_control_message("pim-register");
    hub_of(*router_).emit(telemetry::EventType::kRegisterSent, router_->name(),
                          "pim", net::GroupAddress{reg.group}.to_string(),
                          "src=" + reg.inner_src.to_string() +
                              " rp=" + rp.to_string());
    router_->originate_unicast(std::move(packet));
}

void PimSmRouter::handle_register(const net::Packet& packet, const Register& reg) {
    (void)packet;
    if (!reg.group.is_multicast()) return;
    const net::GroupAddress group{reg.group};
    if (!is_rp_for(group)) return;
    const sim::Time now = router_->simulator().now();
    hub_of(*router_).emit(telemetry::EventType::kRegisterReceived, router_->name(),
                          "pim", group.to_string(),
                          "src=" + reg.inner_src.to_string());
    rp_source_active_[{reg.inner_src, group}] = now;

    // Decapsulate and forward down the shared tree (if it exists).
    net::Packet inner;
    inner.src = reg.inner_src;
    inner.dst = reg.group;
    inner.proto = net::IpProto::kUdp;
    inner.ttl = reg.inner_ttl;
    inner.seq = reg.inner_seq;
    inner.payload = reg.inner_payload;
    // pid is a pure function of (src, dst, seq), so decapsulation restamps
    // the identical id the source DR stamped — the trace stays one packet.
    inner.pid = provenance::packet_id(inner.src, inner.dst, inner.seq);
    if (auto* wc = cache_.find_wc(group)) {
        data_plane_.record_hop(/*ifindex=*/-1, inner, wc, provenance::EntryKind::kWildcard,
                               /*rpf_ok=*/true, provenance::DropReason::kNone);
        data_plane_.replicate(*wc, /*ifindex=*/-1, inner);
    } else {
        // Decapsulated at the RP but no shared tree exists: the payload
        // dies here until some receiver joins.
        data_plane_.record_hop(/*ifindex=*/-1, inner, nullptr, provenance::EntryKind::kNone,
                               /*rpf_ok=*/true, provenance::DropReason::kNoState);
    }

    // "The RP responds by sending a join toward the source" (§3, fig. 3).
    mcast::ForwardingEntry* sg = cache_.find_sg(reg.inner_src, group);
    if (sg == nullptr || sg->rp_bit()) {
        mcast::ForwardingEntry& entry = establish_sg(reg.inner_src, group);
        send_triggered_join(entry);
    }
}

void PimSmRouter::on_sg_forward(mcast::ForwardingEntry& entry, int ifindex,
                                const net::Packet& packet) {
    // Register phase (§3, fig. 3): keep encapsulating data to the RP(s)
    // until a join arrives and native forwarding takes over. The entry stays
    // alive while its source keeps transmitting.
    const SgKey key{entry.source_or_rp(), entry.group()};
    if (!registering_.contains(key)) return;
    entry.set_delete_at(router_->simulator().now() + 3 * config_.join_prune_interval);
    maybe_register(ifindex, packet, /*already_forwarded=*/true);
}

void PimSmRouter::on_no_downstream(mcast::ForwardingEntry& entry, int ifindex,
                                   const net::Packet& packet) {
    // A first-hop (S,G) whose downstream joins all expired: the source is
    // still transmitting but nobody is joined any more. If we are its DR,
    // resume the register phase so the RP (and through it, any future
    // receivers) keeps hearing about the source (§3.10).
    if (entry.rp_bit() || entry.upstream_neighbor().has_value()) return;
    const SgKey key{entry.source_or_rp(), entry.group()};
    if (registering_.contains(key)) return; // maybe_register already ran
    if (ifindex != entry.iif()) return;
    const auto& iface = router_->interface(ifindex);
    if (iface.segment == nullptr || !iface.segment->prefix().contains(packet.src)) return;
    if (!is_dr_on(ifindex)) return;
    registering_.insert(key);
    maybe_register(ifindex, packet, /*already_forwarded=*/true);
}

void PimSmRouter::on_wildcard_forward(int ifindex, const net::Packet& packet) {
    maybe_register(ifindex, packet, /*already_forwarded=*/true);
    if (spt_policy_.mode == SptPolicy::Mode::kNever) return;
    const net::GroupAddress group{packet.dst};
    const net::Ipv4Address source = packet.src;
    if (source == router_->router_id()) return;
    // Only a router with directly-connected members initiates the switch
    // (§3.3), and only as DR for those members. A dense-mode region behind a
    // border router counts as a directly-connected member (§4).
    bool has_local_member = false;
    for (int m : igmp_->member_interfaces(group)) {
        if (is_dr_on(m)) {
            has_local_member = true;
            break;
        }
    }
    for (const auto& [dense_if, groups] : dense_members_) {
        if (groups.contains(group)) {
            has_local_member = true;
            break;
        }
    }
    if (!has_local_member) return;
    const mcast::ForwardingEntry* sg = cache_.find_sg(source, group);
    if (sg != nullptr && !sg->rp_bit()) return; // already switching/switched

    if (spt_policy_.mode == SptPolicy::Mode::kThreshold) {
        const sim::Time now = router_->simulator().now();
        SptCounter& counter = spt_counters_[{source, group}];
        if (counter.window_start == 0 || now - counter.window_start > spt_policy_.window) {
            counter.window_start = now;
            counter.packets = 0;
        }
        if (++counter.packets < spt_policy_.packets) return;
        spt_counters_.erase({source, group});
    }
    initiate_spt_switch(source, group);
}

void PimSmRouter::initiate_spt_switch(net::Ipv4Address source, net::GroupAddress group) {
    telemetry::Hub& hub = hub_of(*router_);
    const std::uint64_t span =
        hub.span_begin(telemetry::span::kSptSwitch, spt_span_key(*router_, source, group));
    hub.emit(telemetry::EventType::kSptSwitchStarted, router_->name(), "pim",
             group.to_string(), "src=" + source.to_string(), span);
    mcast::ForwardingEntry& sg = establish_sg(source, group);
    send_triggered_join(sg);
    if (config_.mutate_skip_spt_bit_handshake) {
        // Seeded bug (model-checker mutation gate): fire the §3.3 divergence
        // prune now, before any data has arrived over the SPT, instead of
        // from on_spt_bit_set. Shared-tree packets in flight while the
        // (S,G) join still propagates are lost.
        const auto* wc = cache_.find_wc(group);
        if (wc != nullptr && wc->iif() >= 0 && wc->iif() != sg.iif()) {
            send_join_prune(wc->iif(), wc->upstream_neighbor(), group, {},
                            {AddressEntry{source, EntryFlags{false, true}}});
        }
    }
}

void PimSmRouter::on_spt_bit_set(mcast::ForwardingEntry& entry) {
    telemetry::Hub& hub = hub_of(*router_);
    const std::string key =
        spt_span_key(*router_, entry.source_or_rp(), entry.group());
    // Close the spt-switch span if this router opened one (a first-hop
    // router sets the bit without ever initiating a switch — no span then).
    const bool switching = hub.spans().is_open(telemetry::span::kSptSwitch, key);
    const std::uint64_t span =
        switching ? hub.span_begin(telemetry::span::kSptSwitch, key) : 0;
    hub.emit(telemetry::EventType::kSptBitSet, router_->name(), "pim",
             entry.group().to_string(), "src=" + entry.source_or_rp().to_string(),
             span);
    if (switching) hub.span_end(telemetry::span::kSptSwitch, key);
    // "…sends a PIM prune toward RP if its shared tree incoming interface
    // differs from its shortest path tree incoming interface" (§3.3).
    if (entry.rp_bit()) return;
    if (config_.mutate_no_rp_bit_prune) return; // seeded bug: never prune
    const auto* wc = cache_.find_wc(entry.group());
    if (wc == nullptr || wc->iif() < 0 || wc->iif() == entry.iif()) return;
    send_join_prune(wc->iif(), wc->upstream_neighbor(), entry.group(), {},
                    {AddressEntry{entry.source_or_rp(), EntryFlags{false, true}}});
}

void PimSmRouter::on_iif_check_failed(int ifindex, const net::Packet& packet) {
    maybe_register(ifindex, packet, /*already_forwarded=*/false);
    // A data packet arriving on an interface we ourselves forward that
    // (source, group) onto means a parallel forwarder exists on the LAN:
    // trigger the forwarder election (Assert).
    const net::GroupAddress group{packet.dst};
    if (auto role = forwarder_role_on(ifindex, packet.src, group)) {
        send_assert(ifindex, packet.src, group, *role);
    }
}

// ---------------------------------------------------------------------------
// LAN forwarder election — Assert (RFC 7761 §4.6 layered onto the '94 LAN
// procedures)
// ---------------------------------------------------------------------------

namespace {
/// Assert rank comparison: an SPT forwarder (wc=0) beats an RPT forwarder,
/// then lower metric toward the tree root, then higher interface address.
bool assert_beats(bool a_wc, std::uint32_t a_metric, net::Ipv4Address a_addr,
                  bool b_wc, std::uint32_t b_metric, net::Ipv4Address b_addr) {
    if (a_wc != b_wc) return !a_wc;
    if (a_metric != b_metric) return a_metric < b_metric;
    return a_addr > b_addr;
}
} // namespace

std::optional<PimSmRouter::ForwarderRole> PimSmRouter::forwarder_role_on(
    int ifindex, net::Ipv4Address source, net::GroupAddress group) {
    if (ifindex < 0 || ifindex >= router_->interface_count()) return std::nullopt;
    if (is_assert_loser(ifindex, source, group)) return std::nullopt; // already ceded
    const sim::Time now = router_->simulator().now();
    mcast::ForwardingEntry* sg = cache_.find_sg(source, group);
    if (sg != nullptr && !sg->rp_bit() && sg->iif() != ifindex) {
        if (const auto* oif = sg->find_oif(ifindex); oif != nullptr && oif->alive(now)) {
            std::uint32_t metric = 0;
            if (auto route = router_->route_to(source)) {
                metric = static_cast<std::uint32_t>(route->metric);
            }
            return ForwarderRole{false, metric};
        }
    }
    mcast::ForwardingEntry* wc = cache_.find_wc(group);
    if (wc != nullptr && wc->iif() != ifindex) {
        // An existing negative cache pruned on this interface already cedes
        // the source; it must not re-enter the election as an RPT forwarder.
        if (sg != nullptr && sg->rp_bit() && sg->is_pruned(ifindex)) return std::nullopt;
        if (const auto* oif = wc->find_oif(ifindex); oif != nullptr && oif->alive(now)) {
            std::uint32_t metric = 0;
            if (wc->source_or_rp() != router_->router_id()) {
                if (auto route = router_->route_to(wc->source_or_rp())) {
                    metric = static_cast<std::uint32_t>(route->metric);
                }
            }
            return ForwarderRole{true, metric};
        }
    }
    return std::nullopt;
}

void PimSmRouter::send_assert(int ifindex, net::Ipv4Address source,
                              net::GroupAddress group, const ForwarderRole& role) {
    const sim::Time now = router_->simulator().now();
    AssertState& st = asserts_[AssertKey{ifindex, source, group}];
    // Duplicate data keeps triggering us; rate-limit resends so the LAN sees
    // one Assert per override window, not one per packet.
    if (st.last_sent != 0 && now - st.last_sent < config_.override_delay) return;
    // Seeded bug: never send a second Assert for this election at all.
    if (config_.mutate_one_shot_assert && st.last_sent != 0) return;
    st.last_sent = now;
    if (st.expires == 0) st.expires = now + config_.assert_holdtime;

    Assert msg;
    msg.group = group.address();
    msg.source = source;
    msg.wc_bit = role.wc;
    msg.metric = role.metric;
    net::Packet packet;
    packet.src = router_->interface(ifindex).address;
    packet.dst = net::kAllRouters;
    packet.proto = net::IpProto::kIgmp;
    packet.ttl = 1;
    packet.payload = msg.encode();
    router_->network().stats().count_control_message("pim-assert");
    router_->send(ifindex, net::Frame{std::nullopt, std::move(packet)});
}

void PimSmRouter::handle_assert(int ifindex, const net::Packet& packet,
                                const Assert& msg) {
    if (!msg.group.is_multicast()) return;
    if (ifindex < 0 || ifindex >= router_->interface_count()) return;
    const net::Ipv4Address ours = router_->interface(ifindex).address;
    if (packet.src == ours) return; // our own flood echoed back
    const net::GroupAddress group{msg.group};
    const net::Ipv4Address source = msg.source;
    const sim::Time now = router_->simulator().now();
    const AssertKey key{ifindex, source, group};
    telemetry::Hub& hub = hub_of(*router_);

    if (auto role = forwarder_role_on(ifindex, source, group)) {
        // We forward this traffic onto the LAN too: compare ranks.
        if (assert_beats(role->wc, role->metric, ours, msg.wc_bit, msg.metric,
                         packet.src)) {
            AssertState& st = asserts_[key];
            const bool was_winner = !st.we_lost && st.winner == ours && st.expires > now;
            st.winner = ours;
            st.winner_wc = role->wc;
            st.winner_metric = role->metric;
            st.we_lost = false;
            st.expires = now + config_.assert_holdtime;
            if (!was_winner) {
                hub.registry()
                    .counter("pimlib_assert_transitions_total", {{"role", "winner"}},
                             "LAN forwarder elections resolved, by this router's role")
                    .inc();
                hub.emit(telemetry::EventType::kAssertWon, router_->name(), "pim",
                         group.to_string(),
                         "src=" + source.to_string() + " if=" + std::to_string(ifindex) +
                             " beat=" + packet.src.to_string());
            }
            // Answer so the inferior forwarder (and everyone downstream)
            // learns who won; rate-limited like the data-triggered path.
            if ((st.last_sent == 0 ||
                 now - st.last_sent >= config_.override_delay) &&
                !(config_.mutate_one_shot_assert && st.last_sent != 0)) {
                st.last_sent = now;
                Assert reply;
                reply.group = group.address();
                reply.source = source;
                reply.wc_bit = role->wc;
                reply.metric = role->metric;
                net::Packet out;
                out.src = ours;
                out.dst = net::kAllRouters;
                out.proto = net::IpProto::kIgmp;
                out.ttl = 1;
                out.payload = reply.encode();
                router_->network().stats().count_control_message("pim-assert");
                router_->send(ifindex, net::Frame{std::nullopt, std::move(out)});
            }
            return;
        }
        // We lost: remember the winner and stop forwarding onto this LAN.
        AssertState& st = asserts_[key];
        const bool already_lost = st.we_lost && st.winner == packet.src;
        st.winner = packet.src;
        st.winner_wc = msg.wc_bit;
        st.winner_metric = msg.metric;
        st.we_lost = true;
        st.expires = now + config_.assert_holdtime;
        if (!already_lost) {
            hub.registry()
                .counter("pimlib_assert_transitions_total", {{"role", "loser"}},
                         "LAN forwarder elections resolved, by this router's role")
                .inc();
            hub.emit(telemetry::EventType::kAssertLost, router_->name(), "pim",
                     group.to_string(),
                     "src=" + source.to_string() + " if=" + std::to_string(ifindex) +
                         " winner=" + packet.src.to_string());
        }
        // Re-applied even for a standing loss: the prune action is
        // idempotent, and downstream joins may have rebuilt the oif since
        // the election (the data duplicate that re-triggered this assert is
        // the proof that something reopened the interface).
        apply_assert_loss(ifindex, source, group, role->wc);
        return;
    }

    // Downstream listener: track the best winner heard on our iif and
    // re-point RPF' at it.
    AssertState& st = asserts_[key];
    if (st.expires > now && !(st.winner == packet.src) &&
        !assert_beats(msg.wc_bit, msg.metric, packet.src, st.winner_wc,
                      st.winner_metric, st.winner)) {
        return; // a better forwarder already won this (S,G) on the LAN
    }
    st.winner = packet.src;
    st.winner_wc = msg.wc_bit;
    st.winner_metric = msg.metric;
    st.we_lost = false;
    st.expires = now + config_.assert_holdtime;
    retarget_downstream_to_winner(ifindex, source, group, packet.src, msg.wc_bit);
}

void PimSmRouter::apply_assert_loss(int ifindex, net::Ipv4Address source,
                                    net::GroupAddress group, bool our_wc) {
    if (config_.mutate_assert_loser_keeps_forwarding) {
        // Seeded bug (model-checker mutation gate): the election concluded —
        // events, counters, loser state all recorded — but the prune that
        // actually stops the duplicates never happens.
        return;
    }
    const sim::Time now = router_->simulator().now();
    mcast::ForwardingEntry* sg = cache_.find_sg(source, group);
    if (!our_wc && sg != nullptr && !sg->rp_bit()) {
        // SPT loser: take the LAN out of our (S,G) oif list.
        sg->remove_oif(ifindex);
        if (sg->oif_list_empty(now) && sg->delete_at() == 0 && !is_rp_for(group)) {
            if (sg->iif() >= 0) send_prune_upstream(*sg);
            sg->set_delete_at(now + 3 * config_.join_prune_interval);
        }
        return;
    }
    // RPT loser: install an (S,G)RP-bit negative cache pruned on the LAN, so
    // other sources keep flowing down the shared tree there. apply_prune's
    // §3.3 machinery builds the cache from the (*,G) entry.
    apply_prune(ifindex, group, AddressEntry{source, EntryFlags{false, true}});
}

void PimSmRouter::retarget_downstream_to_winner(int ifindex, net::Ipv4Address source,
                                                net::GroupAddress group,
                                                net::Ipv4Address winner,
                                                bool winner_wc) {
    // (S,G) rooted through this LAN: re-point its RPF' at the winner so the
    // periodic refresh and triggered joins reach the router that actually
    // forwards. Only an SPT winner qualifies — a shared-tree forwarder's
    // assert (wc set) loses to our upstream's eventual (S,G) assert by the
    // election's own first rule, so repointing at it (and the triggered join
    // that follows) would plant divergent (S,G) state on a router that never
    // forwards this source for us.
    mcast::ForwardingEntry* sg = cache_.find_sg(source, group);
    if (sg != nullptr && !sg->rp_bit() && sg->iif() == ifindex && !winner_wc) {
        if (sg->upstream_neighbor() != std::optional<net::Ipv4Address>{winner}) {
            sg->set_upstream_neighbor(winner);
            send_triggered_join(*sg);
        }
        return;
    }
    mcast::ForwardingEntry* wc = cache_.find_wc(group);
    if (wc == nullptr || wc->iif() != ifindex) return;
    if (!winner_wc) {
        // An SPT forwarder won: this source no longer arrives via our
        // shared-tree upstream. Build the (S,G) rooted at the winner so our
        // joins target it (the RPF' change shows up in MRIB snapshots).
        if (sg == nullptr || sg->rp_bit()) {
            mcast::ForwardingEntry& entry = establish_sg(source, group);
            entry.set_iif(ifindex);
            entry.set_upstream_neighbor(winner);
            entry.remove_oif(ifindex);
            send_triggered_join(entry);
        }
        return;
    }
    // A shared-tree forwarder won: re-point the (*,G) RPF' (negative caches
    // follow, as on a route change).
    if (wc->upstream_neighbor() != std::optional<net::Ipv4Address>{winner}) {
        wc->set_upstream_neighbor(winner);
        send_triggered_join(*wc);
        cache_.for_each_sg_of(group, [&](mcast::ForwardingEntry& e) {
            if (e.rp_bit() && e.iif() == ifindex) e.set_upstream_neighbor(winner);
        });
    }
}

void PimSmRouter::clear_assert_loss(int ifindex, net::Ipv4Address source,
                                    net::GroupAddress group) {
    auto it = asserts_.find(AssertKey{ifindex, source, group});
    if (it != asserts_.end() && it->second.we_lost) asserts_.erase(it);
}

bool PimSmRouter::is_assert_loser(int ifindex, net::Ipv4Address source,
                                  net::GroupAddress group) const {
    auto it = asserts_.find(AssertKey{ifindex, source, group});
    if (it == asserts_.end() || !it->second.we_lost) return false;
    const sim::Time now = const_cast<topo::Router*>(router_)->simulator().now();
    return it->second.expires > now;
}

void PimSmRouter::expire_assert_state() {
    const sim::Time now = router_->simulator().now();
    for (auto it = asserts_.begin(); it != asserts_.end();) {
        it = (it->second.expires != 0 && it->second.expires <= now)
                 ? asserts_.erase(it)
                 : std::next(it);
    }
}

provenance::DropReason PimSmRouter::classify_iif_drop(int ifindex,
                                                      const net::Packet& packet) {
    // A recorded assert loss turns the generic RPF failure into the typed
    // "I lost the LAN election" drop.
    const net::GroupAddress group{packet.dst};
    if (is_assert_loser(ifindex, packet.src, group)) {
        return provenance::DropReason::kAssertLoser;
    }
    return provenance::DropReason::kRpfFail;
}

// ---------------------------------------------------------------------------
// Join/Prune processing (§3.2, §3.3, §3.7)
// ---------------------------------------------------------------------------

void PimSmRouter::on_pim_message(int ifindex, const net::Packet& packet) {
    PROF_ZONE("control.pim_sm");
    auto code = peek_code(packet.payload);
    if (!code) return;
    switch (*code) {
    case Code::kQuery:
        if (auto msg = Query::decode(packet.payload)) handle_query(ifindex, packet, *msg);
        break;
    case Code::kRegister:
        if (auto msg = Register::decode(packet.payload)) handle_register(packet, *msg);
        break;
    case Code::kJoinPrune:
        if (auto msg = JoinPrune::decode(packet.payload)) {
            handle_join_prune(ifindex, packet, *msg);
        }
        break;
    case Code::kRpReachability:
        if (auto msg = RpReachability::decode(packet.payload)) {
            handle_rp_reachability(ifindex, *msg);
        }
        break;
    case Code::kJoinPruneBundle:
        if (auto msg = JoinPruneBundle::decode(packet.payload)) {
            handle_join_prune_bundle(ifindex, packet, *msg);
        }
        break;
    case Code::kAssert:
        if (auto msg = Assert::decode(packet.payload)) {
            handle_assert(ifindex, packet, *msg);
        }
        break;
    case Code::kBootstrap:
    case Code::kCandidateRpAdvertisement:
        // The bootstrap subsystem (pim/bootstrap) handles BSR election and
        // candidate-RP advertisement; routers without one ignore both.
        if (bootstrap_handler_) bootstrap_handler_(ifindex, packet);
        break;
    }
}

void PimSmRouter::handle_join_prune_bundle(int ifindex, const net::Packet& packet,
                                           const JoinPruneBundle& msg) {
    for (const JoinPruneBundle::GroupRecord& rec : msg.groups) {
        JoinPrune one;
        one.upstream_neighbor = msg.upstream_neighbor;
        one.holdtime_ms = msg.holdtime_ms;
        one.group = rec.group;
        one.joins = rec.joins;
        one.prunes = rec.prunes;
        handle_join_prune(ifindex, packet, one);
    }
}

PimSmRouter::EntryRef PimSmRouter::ref_of(const mcast::ForwardingEntry& entry) {
    return EntryRef{entry.source_or_rp(), entry.group(), entry.wildcard()};
}

mcast::ForwardingEntry* PimSmRouter::entry_of(const EntryRef& ref) {
    return ref.wildcard ? cache_.find_wc(ref.group)
                        : cache_.find_sg(ref.source_or_rp, ref.group);
}

void PimSmRouter::handle_join_prune(int ifindex, const net::Packet& packet,
                                    const JoinPrune& msg) {
    if (!msg.group.is_multicast()) return;
    const net::GroupAddress group{msg.group};
    const bool targeted =
        ifindex >= 0 && (msg.upstream_neighbor == router_->interface(ifindex).address ||
                         msg.upstream_neighbor == router_->router_id());
    if (targeted) {
        const sim::Time hold = ms_to_time(msg.holdtime_ms);
        telemetry::Hub& hub = hub_of(*router_);
        if (!msg.joins.empty()) {
            hub.emit(telemetry::EventType::kJoinReceived, router_->name(), "pim",
                     group.to_string(), "from=" + packet.src.to_string());
        }
        if (!msg.prunes.empty()) {
            hub.emit(telemetry::EventType::kPruneReceived, router_->name(), "pim",
                     group.to_string(), "from=" + packet.src.to_string());
        }
        for (const AddressEntry& entry : msg.joins) {
            process_targeted_join(ifindex, group, entry, hold);
        }
        for (const AddressEntry& entry : msg.prunes) {
            process_targeted_prune(ifindex, packet.src, group, entry);
        }
    } else {
        observe_peer_join(ifindex, msg);
        observe_peer_prune(ifindex, msg);
    }
}

void PimSmRouter::process_targeted_join(int ifindex, net::GroupAddress group,
                                        const AddressEntry& entry, sim::Time hold) {
    const sim::Time now = router_->simulator().now();
    const sim::Time expires = now + hold;

    if (entry.flags.wc_bit) {
        // Shared-tree join: the address is the RP (§3.2).
        const net::Ipv4Address rp = entry.address;
        mcast::ForwardingEntry* wc = cache_.find_wc(group);
        if (wc != nullptr && wc->source_or_rp() != rp &&
            wc->source_or_rp() != router_->router_id() &&
            !router_->route_to(wc->source_or_rp()).has_value()) {
            // Downstream failed over to an alternate RP and ours is
            // unreachable: adopt the new RP, keeping the branches we serve
            // (they re-refresh against the new tree).
            const auto oifs = wc->oifs();
            cache_.remove_wc(group);
            wc = establish_wc(group, rp);
            if (wc == nullptr) return;
            for (const auto& [oif, state] : oifs) {
                if (oif == wc->iif()) continue;
                if (state.pinned) {
                    wc->pin_oif(oif);
                } else if (state.expires > now) {
                    wc->add_oif(oif, state.expires);
                }
            }
        }
        if (wc == nullptr) {
            wc = establish_wc(group, rp);
            if (wc == nullptr) return;
        }
        if (ifindex != wc->iif()) wc->add_oif(ifindex, expires);
        cancel_pending_prune(ref_of(*wc), ifindex);
        // Footnote 12: resetting a (*,G) oif timer also resets that oif's
        // timers in (S,G) entries — and a shared-tree join reinstates the
        // interface on negative caches. Not, however, one held closed by a
        // lost LAN forwarder election: a (*,G) join means "I want the shared
        // tree from you", not "you won the Assert"; only an explicit (S,G)
        // join (or the assert state expiring) reopens that interface.
        cache_.for_each_sg_of(group, [&](mcast::ForwardingEntry& sg) {
            if (ifindex == sg.iif()) return;
            if (is_assert_loser(ifindex, sg.source_or_rp(), group)) return;
            if (sg.rp_bit()) sg.clear_pruned(ifindex);
            sg.add_oif(ifindex, expires);
        });
        return;
    }

    if (entry.flags.rp_bit) {
        // (S,G)RP-bit join: reinstate the source on the shared tree on this
        // interface (cancels a negative-cache prune, e.g. a LAN override).
        mcast::ForwardingEntry* sg = cache_.find_sg(entry.address, group);
        if (sg != nullptr && sg->rp_bit()) {
            sg->clear_pruned(ifindex);
            if (ifindex != sg->iif()) sg->add_oif(ifindex, expires);
            cancel_pending_prune(ref_of(*sg), ifindex);
            clear_assert_loss(ifindex, entry.address, group);
        }
        return;
    }

    // Plain (S,G) shortest-path-tree join.
    const net::Ipv4Address source = entry.address;
    mcast::ForwardingEntry* before = cache_.find_sg(source, group);
    const bool was_real = before != nullptr && !before->rp_bit();
    const bool was_registering = registering_.contains(SgKey{source, group});
    mcast::ForwardingEntry& sg = establish_sg(source, group);
    if (was_registering) {
        // The join (typically the RP's, fig. 3 action 3) ends the register
        // phase; our entry stays rooted at the source subnetwork.
        registering_.erase(SgKey{source, group});
    }
    if (ifindex != sg.iif()) sg.add_oif(ifindex, expires);
    cancel_pending_prune(ref_of(sg), ifindex);
    // A downstream router picked us as its RPF' for this source: any assert
    // loss we recorded on that LAN is void (join overrides assert).
    clear_assert_loss(ifindex, source, group);
    if (!was_real && !was_registering) send_triggered_join(sg);
}

void PimSmRouter::process_targeted_prune(int ifindex, net::Ipv4Address from,
                                         net::GroupAddress group,
                                         const AddressEntry& entry) {
    (void)from;
    // On a multi-access LAN with other downstream routers, hold the prune
    // for the override window so a join can cancel it (§3.7).
    if (pim_neighbor_count(ifindex) > 1) {
        EntryRef ref{entry.address, group, entry.flags.wc_bit};
        auto key = std::make_pair(ref, ifindex);
        auto it = pending_prunes_.find(key);
        if (it != pending_prunes_.end()) {
            router_->simulator().cancel(it->second);
        }
        pending_prunes_[key] = router_->simulator().schedule(
            2 * config_.override_delay, [this, ifindex, group, entry, key] {
                pending_prunes_.erase(key);
                apply_prune(ifindex, group, entry);
            });
        return;
    }
    apply_prune(ifindex, group, entry);
}

void PimSmRouter::apply_prune(int ifindex, net::GroupAddress group,
                              const AddressEntry& entry) {
    const sim::Time now = router_->simulator().now();

    if (entry.flags.wc_bit) {
        // Prune the whole shared tree branch (last member left downstream).
        mcast::ForwardingEntry* wc = cache_.find_wc(group);
        if (wc == nullptr) return;
        wc->remove_oif(ifindex);
        cache_.for_each_sg_of(group, [&](mcast::ForwardingEntry& sg) {
            if (sg.rp_bit()) sg.remove_oif(ifindex);
        });
        if (wc->oif_list_empty(now) && wc->delete_at() == 0) {
            if (wc->iif() >= 0) send_prune_upstream(*wc);
            wc->set_delete_at(now + 3 * config_.join_prune_interval);
        }
        return;
    }

    if (entry.flags.rp_bit) {
        // Negative-cache prune: stop delivering this source via the shared
        // tree on `ifindex` (§3.3).
        mcast::ForwardingEntry* wc = cache_.find_wc(group);
        if (wc == nullptr) return;
        mcast::ForwardingEntry* sg = cache_.find_sg(entry.address, group);
        if (sg == nullptr) {
            mcast::ForwardingEntry& neg = cache_.ensure_sg(entry.address, group);
            neg.set_rp_bit(true);
            neg.set_iif(wc->iif());
            neg.set_upstream_neighbor(wc->upstream_neighbor());
            for (const auto& [oif, state] : wc->oifs()) {
                if (oif == neg.iif()) continue;
                if (state.pinned) {
                    neg.pin_oif(oif);
                } else if (state.alive(now)) {
                    neg.add_oif(oif, state.expires);
                }
            }
            sg = &neg;
        }
        if (sg->rp_bit()) {
            hub_of(*router_).emit(telemetry::EventType::kRpBitPrune, router_->name(),
                                  "pim", group.to_string(),
                                  "src=" + entry.address.to_string() +
                                      " if=" + std::to_string(ifindex));
            sg->mark_pruned(ifindex);
            sg->set_delete_at(now + 3 * config_.join_prune_interval);
            if (sg->oif_list_empty(now)) {
                // Nothing downstream wants this source via the RP tree:
                // propagate the prune toward the RP.
                if (sg->iif() >= 0) send_prune_upstream(*sg);
            }
        } else {
            // We are on both the SPT and the RP tree for this source. The
            // §3.3 divergence check guarantees the pruning router's own SPT
            // does not run through this interface, so removal is safe.
            sg->remove_oif(ifindex);
            if (sg->oif_list_empty(now) && sg->delete_at() == 0 &&
                !is_rp_for(group)) {
                if (sg->iif() >= 0) send_prune_upstream(*sg);
                sg->set_delete_at(now + 3 * config_.join_prune_interval);
            }
        }
        return;
    }

    // Plain (S,G) prune off the shortest-path tree.
    mcast::ForwardingEntry* sg = cache_.find_sg(entry.address, group);
    if (sg == nullptr || sg->rp_bit()) return;
    sg->remove_oif(ifindex);
    if (sg->oif_list_empty(now) && sg->delete_at() == 0 && !is_rp_for(group)) {
        if (sg->iif() >= 0) send_prune_upstream(*sg);
        sg->set_delete_at(now + 3 * config_.join_prune_interval);
    }
}

void PimSmRouter::observe_peer_join(int ifindex, const JoinPrune& msg) {
    // Suppression (§3.7): hearing a peer send the join we were about to
    // refresh, to the same upstream neighbor, silences ours for a while.
    const net::GroupAddress group{msg.group};
    const sim::Time now = router_->simulator().now();
    for (const AddressEntry& e : msg.joins) {
        EntryRef ref{e.address, group, e.flags.wc_bit};
        mcast::ForwardingEntry* mine = entry_of(ref);
        if (mine == nullptr || mine->iif() != ifindex) continue;
        const auto upstream = mine->upstream_neighbor();
        if (!upstream.has_value() || *upstream != msg.upstream_neighbor) continue;
        std::uniform_real_distribution<double> jitter(0.8, 1.2);
        suppress_until_[ref] =
            now + static_cast<sim::Time>(jitter(rng_) *
                                         static_cast<double>(config_.join_suppression));
    }
}

void PimSmRouter::observe_peer_prune(int ifindex, const JoinPrune& msg) {
    // Override (§3.7): a peer pruned state we still need; answer with a join
    // after a small random delay.
    const net::GroupAddress group{msg.group};
    const sim::Time now = router_->simulator().now();
    for (const AddressEntry& e : msg.prunes) {
        EntryRef ref{e.address, group, e.flags.wc_bit};
        mcast::ForwardingEntry* mine = nullptr;
        AddressEntry join = e;
        if (e.flags.wc_bit) {
            mine = cache_.find_wc(group);
        } else if (e.flags.rp_bit) {
            // We want this source via the shared tree iff we have (*,G) and
            // no divergent SPT for it.
            mcast::ForwardingEntry* wc = cache_.find_wc(group);
            mcast::ForwardingEntry* sg = cache_.find_sg(e.address, group);
            const bool divergent =
                sg != nullptr && !sg->rp_bit() && wc != nullptr && sg->iif() != wc->iif();
            if (wc != nullptr && !divergent) mine = wc;
            ref = EntryRef{wc != nullptr ? wc->source_or_rp() : e.address, group, true};
        } else {
            mcast::ForwardingEntry* sg = cache_.find_sg(e.address, group);
            if (sg != nullptr && !sg->rp_bit()) mine = sg;
        }
        if (mine == nullptr || mine->iif() != ifindex) continue;
        const auto upstream = mine->upstream_neighbor();
        if (!upstream.has_value() || *upstream != msg.upstream_neighbor) continue;
        if (!mine->oif_list_empty(now)) {
            auto key = std::make_pair(ref, ifindex);
            if (override_scheduled_.contains(key)) continue;
            override_scheduled_.insert(key);
            std::uniform_int_distribution<sim::Time> delay(0, config_.override_delay);
            const AddressEntry to_join = join;
            const net::Ipv4Address target = *upstream;
            const std::uint64_t epoch = epoch_;
            router_->simulator().schedule(delay(rng_), [this, key, ifindex, group,
                                                        to_join, target, epoch] {
                if (epoch != epoch_) return; // rebooted meanwhile
                override_scheduled_.erase(key);
                // The entry may have died between scheduling and firing (our
                // own member left, state expired): a join now would rebuild
                // upstream state nobody wants, so the override is a no-op.
                mcast::ForwardingEntry* still = entry_of(key.first);
                if (still == nullptr || still->iif() != ifindex ||
                    still->oif_list_empty(router_->simulator().now())) {
                    return;
                }
                send_join_prune(ifindex, target, group, {to_join}, {});
            });
        }
    }
}

void PimSmRouter::cancel_pending_prune(const EntryRef& ref, int ifindex) {
    auto key = std::make_pair(ref, ifindex);
    auto it = pending_prunes_.find(key);
    if (it != pending_prunes_.end()) {
        router_->simulator().cancel(it->second);
        pending_prunes_.erase(it);
    }
}

// ---------------------------------------------------------------------------
// RP reachability and failover (§3.2, §3.9)
// ---------------------------------------------------------------------------

void PimSmRouter::on_rp_reachability_tick() {
    // Seeded bug: a holdtime barely longer than the generation interval —
    // any single lost RpReachability expires the downstream RP timer.
    const sim::Time advertised =
        config_.mutate_fragile_rp_holdtime
            ? config_.rp_reachability_interval + config_.rp_reachability_interval / 10
            : config_.rp_timeout;
    const auto holdtime =
        static_cast<std::uint32_t>(advertised / sim::kMillisecond);
    const sim::Time now = router_->simulator().now();
    cache_.for_each_wc([&](mcast::ForwardingEntry& wc) {
        if (wc.source_or_rp() != router_->router_id()) return;
        RpReachability msg{wc.group().address(), router_->router_id(), holdtime};
        for (int oif : wc.live_oifs(now)) {
            net::Packet packet;
            packet.src = router_->interface(oif).address;
            packet.dst = net::kAllRouters;
            packet.proto = net::IpProto::kIgmp;
            packet.ttl = 1;
            packet.payload = msg.encode();
            router_->network().stats().count_control_message("pim-rp-reach");
            router_->send(oif, net::Frame{std::nullopt, std::move(packet)});
        }
    });
}

void PimSmRouter::handle_rp_reachability(int ifindex, const RpReachability& msg) {
    if (!msg.group.is_multicast()) return;
    const net::GroupAddress group{msg.group};
    mcast::ForwardingEntry* wc = cache_.find_wc(group);
    if (wc == nullptr || wc->source_or_rp() != msg.rp) return;
    if (ifindex != wc->iif()) return; // must arrive from the RP direction
    const sim::Time now = router_->simulator().now();
    wc->set_rp_timer_deadline(now + ms_to_time(msg.holdtime_ms));
    // Propagate down the shared tree.
    for (int oif : wc->live_oifs(now)) {
        if (oif == ifindex) continue;
        net::Packet packet;
        packet.src = router_->interface(oif).address;
        packet.dst = net::kAllRouters;
        packet.proto = net::IpProto::kIgmp;
        packet.ttl = 1;
        packet.payload = msg.encode();
        router_->network().stats().count_control_message("pim-rp-reach");
        router_->send(oif, net::Frame{std::nullopt, std::move(packet)});
    }
}

void PimSmRouter::check_rp_timers() {
    const sim::Time now = router_->simulator().now();
    std::vector<std::pair<net::GroupAddress, net::Ipv4Address>> dead;
    cache_.for_each_wc([&](mcast::ForwardingEntry& wc) {
        if (wc.source_or_rp() == router_->router_id()) return;
        // Only routers with local members monitor RP liveness (§3.9).
        bool has_pinned = false;
        for (const auto& [oif, state] : wc.oifs()) {
            if (state.pinned) {
                has_pinned = true;
                break;
            }
        }
        if (!has_pinned) return;
        if (wc.rp_timer_deadline() != 0 && now >= wc.rp_timer_deadline()) {
            dead.emplace_back(wc.group(), wc.source_or_rp());
        }
    });
    for (const auto& [group, rp] : dead) failover_to_alternate_rp(group, rp);
}

void PimSmRouter::failover_to_alternate_rp(net::GroupAddress group,
                                           net::Ipv4Address dead_rp) {
    net::Ipv4Address next;
    for (net::Ipv4Address rp : rp_set_.rps_for(group)) {
        if (rp == dead_rp) continue;
        if (rp == router_->router_id() || router_->route_to(rp).has_value()) {
            next = rp;
            break;
        }
    }
    if (next.is_unspecified()) {
        // No alternate; rearm the timer so we retry rather than spin.
        if (auto* wc = cache_.find_wc(group)) {
            wc->set_rp_timer_deadline(router_->simulator().now() + config_.rp_timeout);
        }
        return;
    }
    {
        telemetry::Hub& hub = hub_of(*router_);
        // The failover span closes when the next data packet for the group
        // reaches a member host (tree re-healed end to end).
        const std::uint64_t span =
            hub.span_begin(telemetry::span::kRpFailover, group.to_string());
        hub.emit(telemetry::EventType::kRpFailover, router_->name(), "pim",
                 group.to_string(),
                 "dead_rp=" + dead_rp.to_string() + " next=" + next.to_string(),
                 span);
    }
    // "A new (*,G) entry is established with the incoming interface set to
    // the interface used to reach the new RP. The outgoing interface list
    // includes only those interfaces on which IGMP Reports for the group
    // were received." (§3.9)
    auto member_ifaces = igmp_->member_interfaces(group);
    for (const auto& [dense_if, groups] : dense_members_) {
        if (groups.contains(group)) member_ifaces.push_back(dense_if);
    }
    cache_.remove_wc(group);
    mcast::ForwardingEntry* wc = establish_wc(group, next);
    if (wc == nullptr) return;
    for (int ifindex : member_ifaces) {
        if (ifindex != wc->iif()) wc->pin_oif(ifindex);
    }
}

void PimSmRouter::reconcile_rp_mappings() {
    // Called after the RP set changed (a BSR update replaced the dynamic
    // mappings): any shared tree rooted at an RP that no longer maps to its
    // group fails over immediately instead of waiting for the RP timer.
    std::vector<std::pair<net::GroupAddress, net::Ipv4Address>> stale;
    cache_.for_each_wc([&](mcast::ForwardingEntry& wc) {
        const net::GroupAddress group = wc.group();
        const auto rps = rp_set_.rps_for(group);
        if (rps.empty()) return; // no mapping left; soft state ages out
        if (std::find(rps.begin(), rps.end(), wc.source_or_rp()) != rps.end()) return;
        stale.emplace_back(group, wc.source_or_rp());
    });
    for (const auto& [group, old_rp] : stale) failover_to_alternate_rp(group, old_rp);
    // Memberships that arrived while the group had no mapping (a DR joins
    // nothing then, §3.1) take effect now instead of at the next refresh.
    adopt_pending_memberships();
}

void PimSmRouter::adopt_pending_memberships() {
    for (const auto& iface : router_->interfaces()) {
        for (net::GroupAddress group : igmp_->groups_on(iface.ifindex)) {
            if (cache_.find_wc(group) == nullptr && rp_set_.has_mapping(group) &&
                is_dr_on(iface.ifindex)) {
                join_group_as_dr(iface.ifindex, group);
            }
        }
    }
    for (const auto& [dense_if, groups] : dense_members_) {
        for (net::GroupAddress group : groups) {
            if (cache_.find_wc(group) == nullptr && rp_set_.has_mapping(group)) {
                join_group_as_dr(dense_if, group);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Periodic soft-state machinery (§3.4, §3.6)
// ---------------------------------------------------------------------------

void PimSmRouter::on_refresh_tick() {
    expire_soft_state();
    check_rp_timers();
    // A DR that could not reach any RP earlier retries while local members
    // persist.
    adopt_pending_memberships();
    send_periodic_join_prune();
}

void PimSmRouter::expire_soft_state() {
    const sim::Time now = router_->simulator().now();

    std::vector<net::GroupAddress> dead_wc;
    cache_.for_each_wc([&](mcast::ForwardingEntry& wc) {
        (void)wc.expire_oifs(now);
        const bool at_rp = wc.source_or_rp() == router_->router_id();
        if (wc.oif_list_empty(now) && wc.delete_at() == 0) {
            if (!at_rp && wc.iif() >= 0) send_prune_upstream(wc);
            wc.set_delete_at(now + 3 * config_.join_prune_interval);
        }
        if (wc.delete_at() != 0 && now >= wc.delete_at()) dead_wc.push_back(wc.group());
    });
    for (net::GroupAddress group : dead_wc) {
        hub_of(*router_).emit(telemetry::EventType::kEntryExpired, router_->name(),
                              "pim", group.to_string(), "(*,G)");
        cache_.remove_wc(group);
    }

    std::vector<mcast::ForwardingCache::SgKey> dead_sg;
    cache_.for_each_sg([&](mcast::ForwardingEntry& sg) {
        (void)sg.expire_oifs(now);
        const net::GroupAddress group = sg.group();
        const bool at_rp = is_rp_for(group);

        if (sg.rp_bit()) {
            // Negative caches live while (*,G) lives and prunes refresh them
            // (footnote 13).
            if (cache_.find_wc(group) == nullptr ||
                (sg.delete_at() != 0 && now >= sg.delete_at())) {
                dead_sg.push_back({sg.source_or_rp(), group});
            }
            return;
        }

        if (at_rp) {
            // The RP keeps the source path warm while data or registers
            // flow (§3.10); it never prunes toward the source.
            const sim::Time active = std::max(
                sg.last_data_at(),
                [&] {
                    auto it = rp_source_active_.find({sg.source_or_rp(), group});
                    return it == rp_source_active_.end() ? sim::Time{0} : it->second;
                }());
            if (now - active > 3 * config_.join_prune_interval) {
                dead_sg.push_back({sg.source_or_rp(), group});
            }
            return;
        }

        if (sg.oif_list_empty(now) && sg.delete_at() == 0) {
            if (sg.iif() >= 0 && sg.upstream_neighbor().has_value()) {
                send_prune_upstream(sg);
            }
            sg.set_delete_at(now + 3 * config_.join_prune_interval);
        }
        if (sg.delete_at() != 0 && now >= sg.delete_at()) {
            dead_sg.push_back({sg.source_or_rp(), group});
        }
    });
    for (const auto& key : dead_sg) {
        hub_of(*router_).emit(telemetry::EventType::kEntryExpired, router_->name(),
                              "pim", key.second.to_string(),
                              "(S,G) src=" + key.first.to_string());
        cache_.remove_sg(key.first, key.second);
        registering_.erase(SgKey{key.first, key.second});
    }

    // Drop stale suppression marks and RP-side source records.
    for (auto it = suppress_until_.begin(); it != suppress_until_.end();) {
        it = it->second <= now ? suppress_until_.erase(it) : std::next(it);
    }
    for (auto it = rp_source_active_.begin(); it != rp_source_active_.end();) {
        it = (now - it->second > config_.holdtime * 2) ? rp_source_active_.erase(it)
                                                       : std::next(it);
    }
    expire_assert_state();
}

AddressEntry PimSmRouter::join_entry_for(const mcast::ForwardingEntry& entry) const {
    if (entry.wildcard()) {
        return AddressEntry{entry.source_or_rp(), EntryFlags{true, true}};
    }
    return AddressEntry{entry.source_or_rp(), EntryFlags{false, entry.rp_bit()}};
}

void PimSmRouter::send_periodic_join_prune() {
    const sim::Time now = router_->simulator().now();
    struct Batch {
        std::vector<AddressEntry> joins;
        std::vector<AddressEntry> prunes;
    };
    // Key: (ifindex, upstream neighbor, group)
    std::map<std::tuple<int, net::Ipv4Address, net::GroupAddress>, Batch> batches;

    cache_.for_each_wc([&](mcast::ForwardingEntry& wc) {
        if (wc.iif() < 0 || !wc.upstream_neighbor().has_value()) return;
        auto sup = suppress_until_.find(ref_of(wc));
        const bool suppressed = sup != suppress_until_.end() && sup->second > now;
        Batch& batch = batches[{wc.iif(), *wc.upstream_neighbor(), wc.group()}];
        if (!suppressed && (!wc.oif_list_empty(now))) {
            batch.joins.push_back(join_entry_for(wc));
        }
        // Prune list toward the RP: sources switched to SPTs whose paths
        // diverge here, and negative caches with nothing downstream (§3.3,
        // footnote 13).
        cache_.for_each_sg_of(wc.group(), [&](mcast::ForwardingEntry& sg) {
            if (sg.rp_bit()) {
                if (!sg.pruned_oifs().empty() || sg.oif_list_empty(now)) {
                    if (sg.oif_list_empty(now)) {
                        batch.prunes.push_back(
                            AddressEntry{sg.source_or_rp(), EntryFlags{false, true}});
                    }
                }
            } else if (sg.spt_bit() && sg.iif() != wc.iif() &&
                       !config_.mutate_no_rp_bit_prune) {
                batch.prunes.push_back(
                    AddressEntry{sg.source_or_rp(), EntryFlags{false, true}});
            }
        });
    });

    cache_.for_each_sg([&](mcast::ForwardingEntry& sg) {
        if (sg.rp_bit()) return; // refreshed via the (*,G) message above
        if (sg.iif() < 0 || !sg.upstream_neighbor().has_value()) return;
        const bool at_rp = is_rp_for(sg.group());
        if (sg.oif_list_empty(now) && !at_rp) return;
        auto sup = suppress_until_.find(ref_of(sg));
        if (sup != suppress_until_.end() && sup->second > now) return;
        Batch& batch = batches[{sg.iif(), *sg.upstream_neighbor(), sg.group()}];
        batch.joins.push_back(join_entry_for(sg));
    });

    if (!config_.aggregate_refresh) {
        for (auto& [key, batch] : batches) {
            if (batch.joins.empty() && batch.prunes.empty()) continue;
            send_join_prune(std::get<0>(key), std::get<1>(key), std::get<2>(key),
                            std::move(batch.joins), std::move(batch.prunes));
        }
        return;
    }

    // Regroup per (ifindex, upstream neighbor): the map above is sorted, so
    // every group headed to the same neighbor is contiguous. One shared
    // group stays a classic JoinPrune; two or more fold into a single
    // JoinPruneBundle so the per-tick message count tracks neighbors, not
    // groups (docs/TIMERS.md).
    std::vector<JoinPruneBundle::GroupRecord> pending;
    int pending_if = -1;
    net::Ipv4Address pending_upstream;
    auto flush = [&] {
        if (pending.empty()) return;
        if (pending.size() == 1) {
            send_join_prune(pending_if, pending_upstream,
                            net::GroupAddress{pending.front().group},
                            std::move(pending.front().joins),
                            std::move(pending.front().prunes));
        } else {
            send_join_prune_bundle(pending_if, pending_upstream, std::move(pending));
        }
        pending.clear();
    };
    for (auto& [key, batch] : batches) {
        if (batch.joins.empty() && batch.prunes.empty()) continue;
        const int ifindex = std::get<0>(key);
        const net::Ipv4Address upstream = std::get<1>(key);
        if (ifindex != pending_if || !(upstream == pending_upstream)) {
            flush();
            pending_if = ifindex;
            pending_upstream = upstream;
        }
        pending.push_back(JoinPruneBundle::GroupRecord{
            std::get<2>(key).address(), std::move(batch.joins), std::move(batch.prunes)});
    }
    flush();
}

void PimSmRouter::send_triggered_join(const mcast::ForwardingEntry& entry) {
    if (entry.iif() < 0 || !entry.upstream_neighbor().has_value()) return;
    send_join_prune(entry.iif(), entry.upstream_neighbor(), entry.group(),
                    {join_entry_for(entry)}, {});
}

void PimSmRouter::send_prune_upstream(const mcast::ForwardingEntry& entry) {
    if (entry.iif() < 0 || !entry.upstream_neighbor().has_value()) return;
    AddressEntry e = join_entry_for(entry);
    if (entry.rp_bit() && !entry.wildcard()) e.flags = EntryFlags{false, true};
    send_join_prune(entry.iif(), entry.upstream_neighbor(), entry.group(), {}, {e});
}

void PimSmRouter::send_join_prune(int ifindex, std::optional<net::Ipv4Address> upstream,
                                  net::GroupAddress group,
                                  std::vector<AddressEntry> joins,
                                  std::vector<AddressEntry> prunes) {
    if (ifindex < 0 || ifindex >= router_->interface_count()) return;
    JoinPrune msg;
    msg.upstream_neighbor = upstream.value_or(net::Ipv4Address{});
    msg.holdtime_ms = holdtime_ms();
    msg.group = group.address();
    msg.joins = std::move(joins);
    msg.prunes = std::move(prunes);

    net::Packet packet;
    packet.src = router_->interface(ifindex).address;
    packet.dst = net::kAllRouters;
    packet.proto = net::IpProto::kIgmp;
    packet.ttl = 1;
    packet.payload = msg.encode();
    ++join_prune_sent_;
    router_->network().stats().count_control_message("pim");
    {
        telemetry::Hub& hub = hub_of(*router_);
        if (!msg.joins.empty()) {
            hub.emit(telemetry::EventType::kJoinSent, router_->name(), "pim",
                     group.to_string(),
                     "if=" + std::to_string(ifindex) +
                         " entries=" + std::to_string(msg.joins.size()));
        }
        if (!msg.prunes.empty()) {
            hub.emit(telemetry::EventType::kPruneSent, router_->name(), "pim",
                     group.to_string(),
                     "if=" + std::to_string(ifindex) +
                         " entries=" + std::to_string(msg.prunes.size()));
        }
    }
    router_->send(ifindex, net::Frame{std::nullopt, std::move(packet)});
}

void PimSmRouter::send_join_prune_bundle(
    int ifindex, net::Ipv4Address upstream,
    std::vector<JoinPruneBundle::GroupRecord> groups) {
    if (ifindex < 0 || ifindex >= router_->interface_count()) return;
    JoinPruneBundle msg;
    msg.upstream_neighbor = upstream;
    msg.holdtime_ms = holdtime_ms();
    msg.groups = std::move(groups);

    net::Packet packet;
    packet.src = router_->interface(ifindex).address;
    packet.dst = net::kAllRouters;
    packet.proto = net::IpProto::kIgmp;
    packet.ttl = 1;
    packet.payload = msg.encode();
    ++join_prune_sent_;
    router_->network().stats().count_control_message("pim");
    {
        // Per-group telemetry, exactly as if each record went out alone —
        // observers should not care about the wire packing.
        telemetry::Hub& hub = hub_of(*router_);
        for (const JoinPruneBundle::GroupRecord& rec : msg.groups) {
            if (!rec.joins.empty()) {
                hub.emit(telemetry::EventType::kJoinSent, router_->name(), "pim",
                         rec.group.to_string(),
                         "if=" + std::to_string(ifindex) +
                             " entries=" + std::to_string(rec.joins.size()));
            }
            if (!rec.prunes.empty()) {
                hub.emit(telemetry::EventType::kPruneSent, router_->name(), "pim",
                         rec.group.to_string(),
                         "if=" + std::to_string(ifindex) +
                             " entries=" + std::to_string(rec.prunes.size()));
            }
        }
    }
    router_->send(ifindex, net::Frame{std::nullopt, std::move(packet)});
}

// ---------------------------------------------------------------------------
// Unicast routing changes (§3.8)
// ---------------------------------------------------------------------------

void PimSmRouter::on_route_change() {
    struct Rehome {
        EntryRef ref;
        int old_iif;
        std::optional<net::Ipv4Address> old_upstream;
        int new_iif;
        std::optional<net::Ipv4Address> new_upstream;
    };
    std::vector<Rehome> changes;

    auto consider = [&](mcast::ForwardingEntry& entry) {
        if (entry.iif() < 0 && entry.wildcard()) return; // we are the RP
        if (entry.rp_bit() && !entry.wildcard()) return; // tracks (*,G) below
        auto route = router_->route_to(entry.source_or_rp());
        if (!route) return;
        std::optional<net::Ipv4Address> upstream =
            route->next_hop.is_unspecified()
                ? std::optional<net::Ipv4Address>{}
                : std::optional<net::Ipv4Address>{route->next_hop};
        if (route->ifindex == entry.iif() && upstream == entry.upstream_neighbor()) return;
        changes.push_back(Rehome{ref_of(entry), entry.iif(), entry.upstream_neighbor(),
                                 route->ifindex, upstream});
    };
    cache_.for_each_wc(consider);
    cache_.for_each_sg(consider);

    const sim::Time now = router_->simulator().now();
    for (const Rehome& change : changes) {
        mcast::ForwardingEntry* entry = entry_of(change.ref);
        if (entry == nullptr) continue;
        // "If the new incoming interface appears in the outgoing interface
        // list, it is deleted from the outgoing list." (§3.8)
        entry->remove_oif(change.new_iif);
        entry->set_iif(change.new_iif);
        entry->set_upstream_neighbor(change.new_upstream);
        send_triggered_join(*entry);
        // "It sends a PIM prune message out the old interface, if the link
        // is operational."
        if (change.old_iif >= 0 && change.old_iif < router_->interface_count() &&
            router_->interface(change.old_iif).up) {
            AddressEntry e = join_entry_for(*entry);
            send_join_prune(change.old_iif, change.old_upstream, entry->group(), {},
                            {e});
        }
        // Negative caches follow the (*,G) path.
        if (change.ref.wildcard) {
            cache_.for_each_sg_of(change.ref.group, [&](mcast::ForwardingEntry& sg) {
                if (!sg.rp_bit()) return;
                sg.remove_oif(change.new_iif);
                sg.set_iif(change.new_iif);
                sg.set_upstream_neighbor(change.new_upstream);
            });
        }
    }
    (void)now;
}

std::vector<net::Ipv4Address> PimSmRouter::active_sources(net::GroupAddress group) const {
    std::vector<net::Ipv4Address> out;
    for (const auto& [key, at] : rp_source_active_) {
        if (key.second == group) out.push_back(key.first);
    }
    return out;
}

} // namespace pimlib::pim
