#include "pim/messages.hpp"

#include "igmp/messages.hpp"

namespace pimlib::pim {

namespace {

constexpr std::uint8_t kFlagWc = 0x01;
constexpr std::uint8_t kFlagRp = 0x02;

void put_header(net::BufWriter& w, Code code) {
    w.put_u8(igmp::kTypePim);
    w.put_u8(static_cast<std::uint8_t>(code));
}

/// Consumes and validates the two header bytes; nullopt unless they match.
bool check_header(net::BufReader& r, Code code) {
    auto type = r.get_u8();
    auto c = r.get_u8();
    return type && c && *type == igmp::kTypePim &&
           *c == static_cast<std::uint8_t>(code);
}

std::uint8_t encode_flags(EntryFlags flags) {
    std::uint8_t out = 0;
    if (flags.wc_bit) out |= kFlagWc;
    if (flags.rp_bit) out |= kFlagRp;
    return out;
}

EntryFlags decode_flags(std::uint8_t bits) {
    return EntryFlags{(bits & kFlagWc) != 0, (bits & kFlagRp) != 0};
}

} // namespace

std::optional<Code> peek_code(std::span<const std::uint8_t> bytes) {
    if (bytes.size() < 2 || bytes[0] != igmp::kTypePim) return std::nullopt;
    if (bytes[1] > static_cast<std::uint8_t>(Code::kCandidateRpAdvertisement)) {
        return std::nullopt;
    }
    return static_cast<Code>(bytes[1]);
}

std::vector<std::uint8_t> Query::encode() const {
    net::BufWriter w(6);
    put_header(w, Code::kQuery);
    w.put_u32(holdtime_ms);
    return w.take();
}

std::optional<Query> Query::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    if (!check_header(r, Code::kQuery)) return std::nullopt;
    auto holdtime = r.get_u32();
    if (!holdtime || !r.at_end()) return std::nullopt;
    return Query{*holdtime};
}

std::vector<std::uint8_t> Register::encode() const {
    net::BufWriter w(21 + inner_payload.size());
    put_header(w, Code::kRegister);
    w.put_addr(group);
    w.put_addr(inner_src);
    w.put_u8(inner_ttl);
    w.put_u64(inner_seq);
    w.put_u16(static_cast<std::uint16_t>(inner_payload.size()));
    w.put_bytes(inner_payload);
    return w.take();
}

std::optional<Register> Register::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    if (!check_header(r, Code::kRegister)) return std::nullopt;
    Register msg;
    auto group = r.get_addr();
    auto src = r.get_addr();
    auto ttl = r.get_u8();
    auto seq = r.get_u64();
    auto len = r.get_u16();
    if (!group || !src || !ttl || !seq || !len) return std::nullopt;
    auto payload = r.get_bytes(*len);
    if (!payload || !r.at_end()) return std::nullopt;
    msg.group = *group;
    msg.inner_src = *src;
    msg.inner_ttl = *ttl;
    msg.inner_seq = *seq;
    msg.inner_payload = std::move(*payload);
    return msg;
}

std::vector<std::uint8_t> JoinPrune::encode() const {
    net::BufWriter w(18 + (joins.size() + prunes.size()) * 5);
    put_header(w, Code::kJoinPrune);
    w.put_addr(upstream_neighbor);
    w.put_u32(holdtime_ms);
    w.put_addr(group);
    w.put_u16(static_cast<std::uint16_t>(joins.size()));
    w.put_u16(static_cast<std::uint16_t>(prunes.size()));
    for (const AddressEntry& e : joins) {
        w.put_addr(e.address);
        w.put_u8(encode_flags(e.flags));
    }
    for (const AddressEntry& e : prunes) {
        w.put_addr(e.address);
        w.put_u8(encode_flags(e.flags));
    }
    return w.take();
}

std::optional<JoinPrune> JoinPrune::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    if (!check_header(r, Code::kJoinPrune)) return std::nullopt;
    JoinPrune msg;
    auto upstream = r.get_addr();
    auto holdtime = r.get_u32();
    auto group = r.get_addr();
    auto njoin = r.get_u16();
    auto nprune = r.get_u16();
    if (!upstream || !holdtime || !group || !njoin || !nprune) return std::nullopt;
    msg.upstream_neighbor = *upstream;
    msg.holdtime_ms = *holdtime;
    msg.group = *group;
    for (std::uint16_t i = 0; i < *njoin; ++i) {
        auto addr = r.get_addr();
        auto flags = r.get_u8();
        if (!addr || !flags.has_value()) return std::nullopt;
        msg.joins.push_back(AddressEntry{*addr, decode_flags(*flags)});
    }
    for (std::uint16_t i = 0; i < *nprune; ++i) {
        auto addr = r.get_addr();
        auto flags = r.get_u8();
        if (!addr || !flags.has_value()) return std::nullopt;
        msg.prunes.push_back(AddressEntry{*addr, decode_flags(*flags)});
    }
    if (!r.at_end()) return std::nullopt;
    return msg;
}

std::vector<std::uint8_t> JoinPruneBundle::encode() const {
    std::size_t entries = 0;
    for (const GroupRecord& rec : groups) entries += rec.joins.size() + rec.prunes.size();
    net::BufWriter w(12 + groups.size() * 8 + entries * 5);
    put_header(w, Code::kJoinPruneBundle);
    w.put_addr(upstream_neighbor);
    w.put_u32(holdtime_ms);
    w.put_u16(static_cast<std::uint16_t>(groups.size()));
    for (const GroupRecord& rec : groups) {
        w.put_addr(rec.group);
        w.put_u16(static_cast<std::uint16_t>(rec.joins.size()));
        w.put_u16(static_cast<std::uint16_t>(rec.prunes.size()));
        for (const AddressEntry& e : rec.joins) {
            w.put_addr(e.address);
            w.put_u8(encode_flags(e.flags));
        }
        for (const AddressEntry& e : rec.prunes) {
            w.put_addr(e.address);
            w.put_u8(encode_flags(e.flags));
        }
    }
    return w.take();
}

std::optional<JoinPruneBundle> JoinPruneBundle::decode(
    std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    if (!check_header(r, Code::kJoinPruneBundle)) return std::nullopt;
    JoinPruneBundle msg;
    auto upstream = r.get_addr();
    auto holdtime = r.get_u32();
    auto ngroups = r.get_u16();
    if (!upstream || !holdtime || !ngroups) return std::nullopt;
    msg.upstream_neighbor = *upstream;
    msg.holdtime_ms = *holdtime;
    for (std::uint16_t g = 0; g < *ngroups; ++g) {
        GroupRecord rec;
        auto group = r.get_addr();
        auto njoin = r.get_u16();
        auto nprune = r.get_u16();
        if (!group || !njoin || !nprune) return std::nullopt;
        rec.group = *group;
        for (std::uint16_t i = 0; i < *njoin; ++i) {
            auto addr = r.get_addr();
            auto flags = r.get_u8();
            if (!addr || !flags.has_value()) return std::nullopt;
            rec.joins.push_back(AddressEntry{*addr, decode_flags(*flags)});
        }
        for (std::uint16_t i = 0; i < *nprune; ++i) {
            auto addr = r.get_addr();
            auto flags = r.get_u8();
            if (!addr || !flags.has_value()) return std::nullopt;
            rec.prunes.push_back(AddressEntry{*addr, decode_flags(*flags)});
        }
        msg.groups.push_back(std::move(rec));
    }
    if (!r.at_end()) return std::nullopt;
    return msg;
}

std::vector<std::uint8_t> RpReachability::encode() const {
    net::BufWriter w(14);
    put_header(w, Code::kRpReachability);
    w.put_addr(group);
    w.put_addr(rp);
    w.put_u32(holdtime_ms);
    return w.take();
}

std::optional<RpReachability> RpReachability::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    if (!check_header(r, Code::kRpReachability)) return std::nullopt;
    auto group = r.get_addr();
    auto rp = r.get_addr();
    auto holdtime = r.get_u32();
    if (!group || !rp || !holdtime || !r.at_end()) return std::nullopt;
    return RpReachability{*group, *rp, *holdtime};
}

std::vector<std::uint8_t> Assert::encode() const {
    net::BufWriter w(15);
    put_header(w, Code::kAssert);
    w.put_addr(group);
    w.put_addr(source);
    w.put_u8(wc_bit ? kFlagWc : 0);
    w.put_u32(metric);
    return w.take();
}

std::optional<Assert> Assert::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    if (!check_header(r, Code::kAssert)) return std::nullopt;
    auto group = r.get_addr();
    auto source = r.get_addr();
    auto flags = r.get_u8();
    auto metric = r.get_u32();
    if (!group || !source || !flags.has_value() || !metric || !r.at_end()) {
        return std::nullopt;
    }
    // Only the WC flag is defined; reject unknown bits rather than silently
    // dropping them on the re-encode.
    if ((*flags & ~kFlagWc) != 0) return std::nullopt;
    return Assert{*group, *source, (*flags & kFlagWc) != 0, *metric};
}

std::vector<std::uint8_t> Bootstrap::encode() const {
    net::BufWriter w(13 + rps.size() * 14);
    put_header(w, Code::kBootstrap);
    w.put_addr(bsr);
    w.put_u8(bsr_priority);
    w.put_u32(seq);
    w.put_u16(static_cast<std::uint16_t>(rps.size()));
    for (const RpEntry& e : rps) {
        w.put_addr(e.range.address());
        w.put_u8(static_cast<std::uint8_t>(e.range.length()));
        w.put_addr(e.rp);
        w.put_u8(e.priority);
        w.put_u32(e.holdtime_ms);
    }
    return w.take();
}

std::optional<Bootstrap> Bootstrap::decode(std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    if (!check_header(r, Code::kBootstrap)) return std::nullopt;
    Bootstrap msg;
    auto bsr = r.get_addr();
    auto priority = r.get_u8();
    auto seq = r.get_u32();
    auto count = r.get_u16();
    if (!bsr || !priority.has_value() || !seq || !count) return std::nullopt;
    msg.bsr = *bsr;
    msg.bsr_priority = *priority;
    msg.seq = *seq;
    for (std::uint16_t i = 0; i < *count; ++i) {
        auto range_addr = r.get_addr();
        auto range_len = r.get_u8();
        auto rp = r.get_addr();
        auto rp_priority = r.get_u8();
        auto holdtime = r.get_u32();
        if (!range_addr || !range_len.has_value() || !rp ||
            !rp_priority.has_value() || !holdtime) {
            return std::nullopt;
        }
        if (*range_len > 32) return std::nullopt;
        msg.rps.push_back(RpEntry{net::Prefix{*range_addr, *range_len}, *rp,
                                  *rp_priority, *holdtime});
    }
    if (!r.at_end()) return std::nullopt;
    return msg;
}

std::vector<std::uint8_t> CandidateRpAdvertisement::encode() const {
    net::BufWriter w(13 + ranges.size() * 5);
    put_header(w, Code::kCandidateRpAdvertisement);
    w.put_addr(rp);
    w.put_u8(priority);
    w.put_u32(holdtime_ms);
    w.put_u16(static_cast<std::uint16_t>(ranges.size()));
    for (const net::Prefix& range : ranges) {
        w.put_addr(range.address());
        w.put_u8(static_cast<std::uint8_t>(range.length()));
    }
    return w.take();
}

std::optional<CandidateRpAdvertisement> CandidateRpAdvertisement::decode(
    std::span<const std::uint8_t> bytes) {
    net::BufReader r(bytes);
    if (!check_header(r, Code::kCandidateRpAdvertisement)) return std::nullopt;
    CandidateRpAdvertisement msg;
    auto rp = r.get_addr();
    auto priority = r.get_u8();
    auto holdtime = r.get_u32();
    auto count = r.get_u16();
    if (!rp || !priority.has_value() || !holdtime || !count) return std::nullopt;
    msg.rp = *rp;
    msg.priority = *priority;
    msg.holdtime_ms = *holdtime;
    for (std::uint16_t i = 0; i < *count; ++i) {
        auto addr = r.get_addr();
        auto len = r.get_u8();
        if (!addr || !len.has_value() || *len > 32) return std::nullopt;
        msg.ranges.emplace_back(*addr, *len);
    }
    if (!r.at_end()) return std::nullopt;
    return msg;
}

} // namespace pimlib::pim
