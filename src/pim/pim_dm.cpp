#include "pim/pim_dm.hpp"

#include "igmp/messages.hpp"
#include "telemetry/profiler/profiler.hpp"
#include "topo/network.hpp"
#include "topo/segment.hpp"

namespace pimlib::pim {

PimDmConfig PimDmConfig::scaled(double factor) const {
    auto scale = [factor](sim::Time t) {
        return static_cast<sim::Time>(static_cast<double>(t) * factor);
    };
    PimDmConfig out = *this;
    out.prune_lifetime = scale(prune_lifetime);
    out.query_interval = scale(query_interval);
    out.neighbor_holdtime = scale(neighbor_holdtime);
    out.entry_lifetime = scale(entry_lifetime);
    return out;
}

PimDmRouter::PimDmRouter(topo::Router& router, igmp::RouterAgent& igmp,
                         PimDmConfig config)
    : router_(&router),
      igmp_(&igmp),
      config_(config),
      data_plane_(router, cache_),
      query_timer_(router.simulator(), [this] {
          // Expire neighbors, then re-announce ourselves.
          const sim::Time now = router_->simulator().now();
          for (auto& [ifindex, nbrs] : neighbors_) {
              std::erase_if(nbrs, [now](const auto& kv) { return kv.second <= now; });
          }
          const auto holdtime = static_cast<std::uint32_t>(config_.neighbor_holdtime /
                                                           sim::kMillisecond);
          for (const auto& iface : router_->interfaces()) {
              if (!iface.up || iface.segment == nullptr) continue;
              net::Packet packet;
              packet.src = iface.address;
              packet.dst = net::kAllRouters;
              packet.proto = net::IpProto::kIgmp;
              packet.ttl = 1;
              packet.payload = Query{holdtime}.encode();
              router_->network().stats().count_control_message("pim-dm");
              router_->send(iface.ifindex, net::Frame{std::nullopt, std::move(packet)});
          }
      }),
      tick_timer_(router.simulator(), [this] { on_tick(); }) {
    data_plane_.set_delegate(this);
    router_->register_igmp_type(igmp::kTypePim,
                                [this](int ifindex, const net::Packet& packet) {
                                    on_pim_message(ifindex, packet);
                                });
    igmp_->subscribe([this](int ifindex, net::GroupAddress group, bool present) {
        on_membership(ifindex, group, present);
    });
    query_timer_.start(config_.query_interval);
    tick_timer_.start(config_.prune_lifetime / 3);
    router_->simulator().schedule(0, [this] {
        const auto holdtime = static_cast<std::uint32_t>(config_.neighbor_holdtime /
                                                         sim::kMillisecond);
        for (const auto& iface : router_->interfaces()) {
            if (!iface.up || iface.segment == nullptr) continue;
            net::Packet packet;
            packet.src = iface.address;
            packet.dst = net::kAllRouters;
            packet.proto = net::IpProto::kIgmp;
            packet.ttl = 1;
            packet.payload = Query{holdtime}.encode();
            router_->network().stats().count_control_message("pim-dm");
            router_->send(iface.ifindex, net::Frame{std::nullopt, std::move(packet)});
        }
    });
}

std::vector<net::Ipv4Address> PimDmRouter::neighbors_on(int ifindex) const {
    std::vector<net::Ipv4Address> out;
    auto it = neighbors_.find(ifindex);
    if (it == neighbors_.end()) return out;
    for (const auto& [addr, deadline] : it->second) out.push_back(addr);
    return out;
}

bool PimDmRouter::floods_to(int ifindex, net::GroupAddress group) const {
    auto it = neighbors_.find(ifindex);
    const bool has_neighbors = it != neighbors_.end() && !it->second.empty();
    return has_neighbors || igmp_->has_members(ifindex, group);
}

mcast::ForwardingEntry* PimDmRouter::build_entry(net::Ipv4Address source,
                                                 net::GroupAddress group) {
    auto route = router_->route_to(source);
    if (!route) return nullptr;
    const sim::Time now = router_->simulator().now();
    mcast::ForwardingEntry& sg = cache_.ensure_sg(source, group);
    sg.set_iif(route->ifindex);
    sg.set_upstream_neighbor(route->next_hop.is_unspecified()
                                 ? std::optional<net::Ipv4Address>{}
                                 : std::optional<net::Ipv4Address>{route->next_hop});
    sg.set_spt_bit(true); // dense-mode entries always do strict RPF checks
    sg.set_delete_at(now + config_.entry_lifetime);
    for (const auto& iface : router_->interfaces()) {
        if (!iface.up || iface.segment == nullptr) continue;
        if (iface.ifindex == sg.iif()) continue;
        if (!floods_to(iface.ifindex, group)) continue; // truncated broadcast
        if (prunes_.contains({{source, group}, iface.ifindex})) continue;
        sg.pin_oif(iface.ifindex); // flood state: stays until pruned
    }
    return &sg;
}

void PimDmRouter::on_no_entry(int ifindex, const net::Packet& packet) {
    const net::GroupAddress group{packet.dst};
    const net::Ipv4Address source = packet.src;
    mcast::ForwardingEntry* sg = build_entry(source, group);
    if (sg == nullptr) {
        data_plane_.record_hop(ifindex, packet, nullptr, provenance::EntryKind::kNone,
                               /*rpf_ok=*/false, provenance::DropReason::kNoState);
        return;
    }
    if (ifindex != sg->iif()) {
        router_->network().stats().count_data_dropped_iif();
        data_plane_.record_hop(ifindex, packet, sg, provenance::EntryKind::kSg,
                               /*rpf_ok=*/false, provenance::DropReason::kRpfFail);
        return;
    }
    const sim::Time now = router_->simulator().now();
    data_plane_.record_hop(ifindex, packet, sg, provenance::EntryKind::kSg,
                           /*rpf_ok=*/true, provenance::DropReason::kNone);
    data_plane_.replicate(*sg, ifindex, packet);
    sg->note_data(now);
    // A leaf router with nothing downstream prunes itself off (§1.1).
    if (sg->oif_list_empty(now) && sg->upstream_neighbor().has_value()) {
        send_prune_upstream(*sg);
        pruned_upstream_.insert({source, group});
    }
}

void PimDmRouter::on_no_downstream(mcast::ForwardingEntry& entry, int ifindex,
                                   const net::Packet& packet) {
    (void)ifindex;
    (void)packet;
    if (!entry.upstream_neighbor().has_value()) return;
    const SgKey key{entry.source_or_rp(), entry.group()};
    const sim::Time now = router_->simulator().now();
    auto it = last_prune_sent_.find(key);
    if (it != last_prune_sent_.end() && now - it->second < config_.prune_lifetime / 3) {
        return;
    }
    last_prune_sent_[key] = now;
    send_prune_upstream(entry);
    pruned_upstream_.insert(key);
}

void PimDmRouter::on_pim_message(int ifindex, const net::Packet& packet) {
    PROF_ZONE("control.pim_dm");
    auto code = peek_code(packet.payload);
    if (!code) return;
    if (*code == Code::kQuery) {
        auto msg = Query::decode(packet.payload);
        if (!msg) return;
        neighbors_[ifindex][packet.src] =
            router_->simulator().now() +
            static_cast<sim::Time>(msg->holdtime_ms) * sim::kMillisecond;
        return;
    }
    if (*code != Code::kJoinPrune) return;
    auto msg = JoinPrune::decode(packet.payload);
    if (!msg || !msg->group.is_multicast()) return;
    if (ifindex < 0 ||
        msg->upstream_neighbor != router_->interface(ifindex).address) {
        return;
    }
    const net::GroupAddress group{msg->group};
    for (const AddressEntry& e : msg->prunes) handle_prune(ifindex, group, e.address);
    for (const AddressEntry& e : msg->joins) handle_graft(ifindex, group, e.address);
}

void PimDmRouter::handle_prune(int ifindex, net::GroupAddress group,
                               net::Ipv4Address source) {
    mcast::ForwardingEntry* sg = cache_.find_sg(source, group);
    if (sg == nullptr) return;
    const sim::Time now = router_->simulator().now();
    prunes_[{{source, group}, ifindex}] = now + config_.prune_lifetime;
    sg->remove_oif(ifindex);
    if (sg->oif_list_empty(now) && sg->upstream_neighbor().has_value() &&
        !pruned_upstream_.contains({source, group})) {
        send_prune_upstream(*sg);
        pruned_upstream_.insert({source, group});
    }
}

void PimDmRouter::handle_graft(int ifindex, net::GroupAddress group,
                               net::Ipv4Address source) {
    mcast::ForwardingEntry* sg = cache_.find_sg(source, group);
    if (sg == nullptr) return;
    prunes_.erase({{source, group}, ifindex});
    sg->pin_oif(ifindex);
    if (pruned_upstream_.erase({source, group}) > 0 &&
        sg->upstream_neighbor().has_value()) {
        send_graft_upstream(*sg);
    }
}

void PimDmRouter::on_membership(int ifindex, net::GroupAddress group, bool present) {
    cache_.for_each_sg_of(group, [&](mcast::ForwardingEntry& sg) {
        if (present) {
            if (ifindex == sg.iif()) return;
            sg.pin_oif(ifindex);
            prunes_.erase({{sg.source_or_rp(), group}, ifindex});
            if (pruned_upstream_.erase({sg.source_or_rp(), group}) > 0 &&
                sg.upstream_neighbor().has_value()) {
                send_graft_upstream(sg);
            }
        } else if (!igmp_->has_members(ifindex, group) &&
                   neighbors_on(ifindex).empty()) {
            sg.remove_oif(ifindex);
        }
    });
}

void PimDmRouter::on_tick() {
    const sim::Time now = router_->simulator().now();
    // Prune regrowth: expired prunes come back and data floods again.
    for (auto it = prunes_.begin(); it != prunes_.end();) {
        if (it->second <= now) {
            const auto& [key, ifindex] = it->first;
            if (auto* sg = cache_.find_sg(key.first, key.second)) {
                if (ifindex != sg->iif() && floods_to(ifindex, key.second)) {
                    sg->pin_oif(ifindex);
                    pruned_upstream_.erase(key);
                }
            }
            it = prunes_.erase(it);
        } else {
            ++it;
        }
    }
    // Entries with no recent data expire.
    for (const auto& key : cache_.reap_expired_entries(now)) {
        pruned_upstream_.erase(key);
    }
    // Extend entries that still see data.
    cache_.for_each_sg([&](mcast::ForwardingEntry& sg) {
        if (now - sg.last_data_at() < config_.entry_lifetime) {
            sg.set_delete_at(now + config_.entry_lifetime);
        }
    });
}

void PimDmRouter::send_prune_upstream(const mcast::ForwardingEntry& entry) {
    JoinPrune msg;
    msg.upstream_neighbor = entry.upstream_neighbor().value_or(net::Ipv4Address{});
    msg.holdtime_ms =
        static_cast<std::uint32_t>(config_.prune_lifetime / sim::kMillisecond);
    msg.group = entry.group().address();
    msg.prunes.push_back(AddressEntry{entry.source_or_rp(), EntryFlags{}});
    net::Packet packet;
    packet.src = router_->interface(entry.iif()).address;
    packet.dst = net::kAllRouters;
    packet.proto = net::IpProto::kIgmp;
    packet.ttl = 1;
    packet.payload = msg.encode();
    router_->network().stats().count_control_message("pim-dm");
    router_->network().telemetry().emit(
        telemetry::EventType::kPruneSent, router_->name(), "pim-dm",
        entry.group().to_string(), "src=" + entry.source_or_rp().to_string());
    router_->send(entry.iif(), net::Frame{std::nullopt, std::move(packet)});
}

void PimDmRouter::send_graft_upstream(const mcast::ForwardingEntry& entry) {
    JoinPrune msg;
    msg.upstream_neighbor = entry.upstream_neighbor().value_or(net::Ipv4Address{});
    msg.holdtime_ms =
        static_cast<std::uint32_t>(config_.entry_lifetime / sim::kMillisecond);
    msg.group = entry.group().address();
    msg.joins.push_back(AddressEntry{entry.source_or_rp(), EntryFlags{}});
    net::Packet packet;
    packet.src = router_->interface(entry.iif()).address;
    packet.dst = net::kAllRouters;
    packet.proto = net::IpProto::kIgmp;
    packet.ttl = 1;
    packet.payload = msg.encode();
    router_->network().stats().count_control_message("pim-dm");
    router_->network().telemetry().emit(
        telemetry::EventType::kGraftSent, router_->name(), "pim-dm",
        entry.group().to_string(), "src=" + entry.source_or_rp().to_string());
    router_->send(entry.iif(), net::Frame{std::nullopt, std::move(packet)});
}

} // namespace pimlib::pim
