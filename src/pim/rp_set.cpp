#include "pim/rp_set.hpp"

namespace pimlib::pim {

void RpSet::configure(net::GroupAddress group, std::vector<net::Ipv4Address> rps) {
    static_[group] = std::move(rps);
}

void RpSet::configure_range(net::Prefix range, std::vector<net::Ipv4Address> rps) {
    ranges_[range] = std::move(rps);
}

void RpSet::learn(net::GroupAddress group, std::vector<net::Ipv4Address> rps) {
    learned_[group] = std::move(rps);
}

std::vector<net::Ipv4Address> RpSet::rps_for(net::GroupAddress group) const {
    if (auto it = static_.find(group); it != static_.end()) return it->second;
    if (auto it = learned_.find(group); it != learned_.end()) return it->second;
    const std::vector<net::Ipv4Address>* best = nullptr;
    int best_len = -1;
    for (const auto& [range, rps] : ranges_) {
        if (range.contains(group.address()) && range.length() > best_len) {
            best = &rps;
            best_len = range.length();
        }
    }
    return best != nullptr ? *best : std::vector<net::Ipv4Address>{};
}

} // namespace pimlib::pim
