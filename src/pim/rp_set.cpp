#include "pim/rp_set.hpp"

#include <algorithm>

namespace pimlib::pim {

void RpSet::configure(net::GroupAddress group, std::vector<net::Ipv4Address> rps) {
    static_[group] = std::move(rps);
}

void RpSet::configure_range(net::Prefix range, std::vector<net::Ipv4Address> rps) {
    ranges_[range] = std::move(rps);
}

void RpSet::learn(net::GroupAddress group, std::vector<net::Ipv4Address> rps) {
    learned_[group] = std::move(rps);
}

bool RpSet::set_dynamic(std::vector<DynamicRp> entries) {
    // Canonical order makes equality a content comparison, so a reflood of
    // the same RP-set in a different entry order is not a "change".
    std::sort(entries.begin(), entries.end(),
              [](const DynamicRp& a, const DynamicRp& b) {
                  if (a.range != b.range) return a.range < b.range;
                  return a.rp < b.rp;
              });
    if (entries == dynamic_) return false;
    dynamic_ = std::move(entries);
    return true;
}

std::uint32_t RpSet::hash_value(std::uint32_t group_masked, std::uint32_t rp) {
    // RFC 7761 §4.7.2: Value(G,M,C) =
    //   (1103515245 * ((1103515245 * (G&M) + 12345) XOR C) + 12345) mod 2^31
    const std::uint64_t inner =
        (1103515245ull * group_masked + 12345ull) ^ std::uint64_t{rp};
    const std::uint64_t value = 1103515245ull * inner + 12345ull;
    return static_cast<std::uint32_t>(value & 0x7fffffffu);
}

std::optional<net::Ipv4Address> RpSet::dynamic_rp_for(net::GroupAddress group) const {
    // Longest matching range first; among those, highest priority; then the
    // §4.7.2 hash; then highest address. Every router computes the same
    // winner from the same flooded set — that is the whole point.
    int best_len = -1;
    for (const DynamicRp& e : dynamic_) {
        if (e.range.contains(group.address())) best_len = std::max(best_len, e.range.length());
    }
    if (best_len < 0) return std::nullopt;

    const std::uint32_t mask =
        hash_mask_len_ == 0 ? 0u : (0xFFFF'FFFFu << (32 - hash_mask_len_));
    const std::uint32_t group_masked = group.address().to_uint() & mask;
    const DynamicRp* best = nullptr;
    std::uint32_t best_hash = 0;
    for (const DynamicRp& e : dynamic_) {
        if (!e.range.contains(group.address()) || e.range.length() != best_len) continue;
        const std::uint32_t h = hash_value(group_masked, e.rp.to_uint());
        if (best == nullptr || e.priority > best->priority ||
            (e.priority == best->priority &&
             (h > best_hash || (h == best_hash && e.rp > best->rp)))) {
            best = &e;
            best_hash = h;
        }
    }
    return best != nullptr ? std::optional{best->rp} : std::nullopt;
}

std::vector<net::Ipv4Address> RpSet::rps_for(net::GroupAddress group) const {
    if (auto it = static_.find(group); it != static_.end()) return it->second;
    if (auto it = learned_.find(group); it != learned_.end()) return it->second;
    const std::vector<net::Ipv4Address>* best = nullptr;
    int best_len = -1;
    for (const auto& [range, rps] : ranges_) {
        if (range.contains(group.address()) && range.length() > best_len) {
            best = &rps;
            best_len = range.length();
        }
    }
    if (best != nullptr) return *best;
    if (auto rp = dynamic_rp_for(group)) return {*rp};
    return {};
}

} // namespace pimlib::pim
