// PIM sparse mode — the core protocol of the paper (§3).
//
// One PimSmRouter instance runs on each topo::Router and implements:
//   §3.1  DR behavior when local hosts join (IGMP-driven (*,G) creation)
//   §3.2  shared (RP-rooted) tree setup via explicit joins; RP-reachability
//   §3.3  switching from the shared tree to source-specific shortest-path
//         trees, with the SPT bit and RP-bit prunes (negative caches)
//   §3.4  periodic soft-state refreshes of all join/prune state
//   §3.5  data-packet processing (via mcast::DataPlane, incl. registers)
//   §3.6  per-oif timers, entry deletion at 3 × refresh period
//   §3.7  multi-access LAN procedures: prune to the LAN, join override,
//         suppression of duplicate joins; DR election via PIM Query
//   §3.8  adaptation to unicast routing changes
//   §3.9  multiple RPs: senders register with all, receivers join one and
//         fail over on RP-reachability timeout
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <vector>

#include "igmp/router_agent.hpp"
#include "mcast/forwarding_cache.hpp"
#include "pim/messages.hpp"
#include "pim/rp_set.hpp"
#include "sim/simulator.hpp"
#include "topo/router.hpp"

namespace pimlib::pim {

/// When a receiver's DR abandons the shared tree for a source-specific
/// shortest-path tree (§3.3: "a DR may adopt a policy of not setting up an
/// (S,G) entry until it has received m data packets from the source within
/// some interval of n seconds", or "remain on the RP-distribution tree
/// indefinitely").
struct SptPolicy {
    enum class Mode {
        kImmediate, // switch on the first data packet from a new source
        kThreshold, // switch after `packets` packets within `window`
        kNever,     // stay on the shared tree
    };
    Mode mode = Mode::kImmediate;
    int packets = 10;
    sim::Time window = 10 * sim::kSecond;

    static SptPolicy immediate() { return SptPolicy{Mode::kImmediate, 0, 0}; }
    static SptPolicy never() { return SptPolicy{Mode::kNever, 0, 0}; }
    static SptPolicy threshold(int packets, sim::Time window) {
        return SptPolicy{Mode::kThreshold, packets, window};
    }
};

struct PimConfig {
    /// Periodic join/prune refresh (§3.4). Paper-era default 60 s; tests
    /// compress time by scaling everything down together.
    sim::Time join_prune_interval = 60 * sim::kSecond;
    /// How long received join/prune state lives without refresh.
    sim::Time holdtime = 180 * sim::kSecond; // 3 × refresh (§3.6)
    /// PIM Query (hello) interval and neighbor liveness.
    sim::Time query_interval = 30 * sim::kSecond;
    sim::Time neighbor_holdtime = 105 * sim::kSecond;
    /// RP-reachability generation interval and downstream timeout (§3.9).
    sim::Time rp_reachability_interval = 30 * sim::kSecond;
    sim::Time rp_timeout = 90 * sim::kSecond;
    /// LAN procedures (§3.7): joins overheard from peers suppress our own
    /// refresh for up to this long; overheard prunes are overridden after a
    /// small random delay; a prune received on a LAN with >1 downstream
    /// neighbor only takes effect after the override window passes.
    sim::Time join_suppression = 90 * sim::kSecond;
    sim::Time override_delay = 500 * sim::kMillisecond;
    /// How long a LAN forwarder-election (Assert) outcome is remembered per
    /// (interface, source, group) without being re-triggered by duplicate
    /// data. Matches the holdtime convention: 3 × refresh.
    sim::Time assert_holdtime = 180 * sim::kSecond;

    /// Aggregate the periodic refresh into one JoinPruneBundle per
    /// (interface, upstream neighbor) whenever more than one group shares
    /// the pair; singletons keep the classic one-group JoinPrune wire form.
    /// Turns the per-tick message count from O(groups) into O(neighbors)
    /// (docs/TIMERS.md). Off restores per-group messages throughout.
    bool aggregate_refresh = true;

    /// Seeded-bug switches for the model checker's mutation gate (pimcheck
    /// --mutate …). Both default off; production behavior is unmodified.
    /// skip-spt-bit-handshake prunes the source off the shared tree the
    /// moment the switchover (S,G) join is sent, instead of waiting for data
    /// to arrive over the SPT — breaking §3.3's make-before-break handshake
    /// and losing in-flight shared-tree packets. no-rp-bit-prune never sends
    /// the (S,G)RP-bit prune (triggered or periodic), so upstream negative
    /// caches are never built and the shared tree keeps carrying the source
    /// redundantly (§3.3).
    bool mutate_skip_spt_bit_handshake = false;
    bool mutate_no_rp_bit_prune = false;
    /// assert-loser-keeps-forwarding records the lost election but skips the
    /// loser's prune action, so both parallel forwarders keep delivering the
    /// same source onto the LAN — the exact duplicate storm the Assert
    /// mechanism exists to stop.
    bool mutate_assert_loser_keeps_forwarding = false;
    /// one-shot-assert sends at most one Assert per (interface, source,
    /// group) election — dropping the resend/reply path that makes the
    /// election robust to losing a single Assert frame. With no loss the
    /// one exchange resolves the election exactly as before; lose the
    /// winner's Assert and the inferior forwarder never learns it lost,
    /// so both keep forwarding onto the LAN (§2.2's duplicate storm).
    bool mutate_one_shot_assert = false;
    /// fragile-rp-holdtime advertises RP-reachability holdtimes of 1.1×
    /// the generation interval instead of the loss-tolerant 3× bound
    /// (§3.4's soft-state rule: state must survive at least one lost
    /// refresh). Every message still arrives → timers never expire; lose
    /// a single RpReachability frame and the member's RP timer fires,
    /// triggering a spurious failover away from a perfectly live RP.
    bool mutate_fragile_rp_holdtime = false;

    /// Uniformly scales every interval (convenience for tests: a factor of
    /// 0.01 turns the 60 s refresh into 0.6 s).
    [[nodiscard]] PimConfig scaled(double factor) const;
};

class PimSmRouter final : public mcast::DataPlane::Delegate {
public:
    PimSmRouter(topo::Router& router, igmp::RouterAgent& igmp, PimConfig config = {});
    ~PimSmRouter() override;

    PimSmRouter(const PimSmRouter&) = delete;
    PimSmRouter& operator=(const PimSmRouter&) = delete;

    [[nodiscard]] RpSet& rp_set() { return rp_set_; }
    [[nodiscard]] mcast::ForwardingCache& cache() { return cache_; }
    [[nodiscard]] const mcast::ForwardingCache& cache() const { return cache_; }
    [[nodiscard]] topo::Router& router() { return *router_; }
    [[nodiscard]] const PimConfig& config() const { return config_; }

    void set_spt_policy(SptPolicy policy) { spt_policy_ = policy; }
    [[nodiscard]] SptPolicy spt_policy() const { return spt_policy_; }

    // --- dense-mode interfaces (§3.1, §4 "interoperation with dense mode
    // regions") ---
    //
    // "The router will flag individual interfaces as dense or sparse mode,
    // to allow differential treatment of different interfaces." A border
    // router flags its domain-facing interface dense; on such an interface
    //   - it acts for the whole region behind it: data arriving from any
    //     source routed via that interface is registered with the RP (the
    //     region's sources are proxied, §4), and
    //   - region membership (delivered out of band, per the paper: "relies
    //     on getting the group member existence information to the border
    //     routers") pins the interface onto the shared tree exactly like a
    //     local IGMP member.
    void set_interface_dense(int ifindex, bool dense);
    [[nodiscard]] bool is_interface_dense(int ifindex) const {
        return dense_ifaces_.contains(ifindex);
    }
    /// Splices region membership onto the shared tree ("border routers send
    /// explicit joins", §4). `present=false` unpins; state then ages out.
    void set_dense_membership(int ifindex, net::GroupAddress group, bool present);

    /// True if this router is one of the RPs for `group`.
    [[nodiscard]] bool is_rp_for(net::GroupAddress group) const;

    /// Receives kBootstrap / kCandidateRpAdvertisement packets. The
    /// bootstrap subsystem (pim/bootstrap) lives outside this class and
    /// registers itself here; without a handler both codes are ignored.
    void set_bootstrap_handler(std::function<void(int, const net::Packet&)> handler) {
        bootstrap_handler_ = std::move(handler);
    }

    /// Re-homes shared trees after the RP set changed: any (*,G) whose RP no
    /// longer appears in the group's (non-empty) mapping fails over to the
    /// current mapping immediately instead of waiting for the RP timer. The
    /// bootstrap subsystem calls this when a BSR update replaces the
    /// dynamic RP set (§3.9 machinery, BSR-triggered).
    void reconcile_rp_mappings();

    /// Simulates a crash+restart: every piece of soft state — forwarding
    /// cache, PIM neighbors, LAN suppression/override/pending-prune state,
    /// SPT counters, RP-side source liveness, register phase — is dropped,
    /// exactly as a real reboot would lose it (§2.7: neighbors' state about
    /// us then ages out at 3× refresh, while we rebuild ours from IGMP
    /// reports and the periodic refresh machinery). Configuration survives:
    /// the RP set, dense-interface flags and region memberships, SPT policy.
    void reboot();

    // --- introspection (tests, examples, benchmarks) ---
    [[nodiscard]] std::vector<net::Ipv4Address> neighbors_on(int ifindex) const;
    /// The elected designated router address on `ifindex` (highest address
    /// among us and our PIM neighbors).
    [[nodiscard]] net::Ipv4Address dr_address_on(int ifindex) const;
    [[nodiscard]] bool is_dr_on(int ifindex) const;
    [[nodiscard]] std::size_t state_entry_count() const { return cache_.size(); }
    /// Sources this RP currently knows to be active for `group` (§3 "PIM
    /// ... does require enumeration of sources").
    [[nodiscard]] std::vector<net::Ipv4Address> active_sources(net::GroupAddress group) const;

    /// Join/Prune messages sent by this router (periodic + triggered);
    /// exposes the §3.7 suppression machinery to tests and benchmarks.
    [[nodiscard]] std::uint64_t join_prune_messages_sent() const {
        return join_prune_sent_;
    }

    // --- mcast::DataPlane::Delegate ---
    void on_no_entry(int ifindex, const net::Packet& packet) override;
    void on_wildcard_forward(int ifindex, const net::Packet& packet) override;
    void on_spt_bit_set(mcast::ForwardingEntry& entry) override;
    void on_iif_check_failed(int ifindex, const net::Packet& packet) override;
    void on_sg_forward(mcast::ForwardingEntry& entry, int ifindex,
                       const net::Packet& packet) override;
    void on_no_downstream(mcast::ForwardingEntry& entry, int ifindex,
                          const net::Packet& packet) override;
    provenance::DropReason classify_iif_drop(int ifindex,
                                             const net::Packet& packet) override;

private:
    struct EntryRef {
        net::Ipv4Address source_or_rp; // RP for wildcard
        net::GroupAddress group;
        bool wildcard;
        friend auto operator<=>(const EntryRef&, const EntryRef&) = default;
    };

    // --- message handling ---
    void on_pim_message(int ifindex, const net::Packet& packet);
    void handle_query(int ifindex, const net::Packet& packet, const Query& query);
    void handle_register(const net::Packet& packet, const Register& reg);
    void handle_join_prune(int ifindex, const net::Packet& packet, const JoinPrune& msg);
    /// Unbundles each group record through handle_join_prune, so aggregated
    /// refreshes hit the exact same join/prune/suppression logic.
    void handle_join_prune_bundle(int ifindex, const net::Packet& packet,
                                  const JoinPruneBundle& msg);
    void handle_rp_reachability(int ifindex, const RpReachability& msg);
    void handle_assert(int ifindex, const net::Packet& packet, const Assert& msg);

    void process_targeted_join(int ifindex, net::GroupAddress group,
                               const AddressEntry& entry, sim::Time holdtime);
    void process_targeted_prune(int ifindex, net::Ipv4Address from,
                                net::GroupAddress group, const AddressEntry& entry);
    void apply_prune(int ifindex, net::GroupAddress group, const AddressEntry& entry);
    void observe_peer_join(int ifindex, const JoinPrune& msg);
    void observe_peer_prune(int ifindex, const JoinPrune& msg);

    // --- membership (IGMP) ---
    void on_membership(int ifindex, net::GroupAddress group, bool present);
    void join_group_as_dr(int ifindex, net::GroupAddress group);
    /// Joins groups with local members but no (*,G) yet — memberships that
    /// arrived before an RP mapping existed or while every RP was unreachable.
    void adopt_pending_memberships();

    // --- tree construction helpers ---
    mcast::ForwardingEntry* establish_wc(net::GroupAddress group, net::Ipv4Address rp);
    mcast::ForwardingEntry& establish_sg(net::Ipv4Address source, net::GroupAddress group);
    void initiate_spt_switch(net::Ipv4Address source, net::GroupAddress group);
    void send_triggered_join(const mcast::ForwardingEntry& entry);
    void send_prune_upstream(const mcast::ForwardingEntry& entry);
    void send_join_prune(int ifindex, std::optional<net::Ipv4Address> upstream,
                         net::GroupAddress group, std::vector<AddressEntry> joins,
                         std::vector<AddressEntry> prunes);
    /// One wire message carrying every group's refresh for (ifindex,
    /// upstream); emits the same per-group telemetry as individual sends.
    void send_join_prune_bundle(int ifindex, net::Ipv4Address upstream,
                                std::vector<JoinPruneBundle::GroupRecord> groups);
    void send_register(const net::Packet& data, net::Ipv4Address rp);
    /// Registers `packet` with the group's RPs if we are the DR of its
    /// directly-connected source and no native (S,G) path exists yet.
    /// `already_forwarded` says the data plane has delivered this packet
    /// locally (prevents a self-RP from duplicating it).
    void maybe_register(int ifindex, const net::Packet& packet, bool already_forwarded);
    /// Typed drop for a packet no MRIB entry matched: kAssertLoser when this
    /// router is a non-DR on the source's own LAN (ceding to the DR),
    /// kNoState otherwise.
    [[nodiscard]] provenance::DropReason classify_no_entry_drop(
        int ifindex, const net::Packet& packet) const;
    [[nodiscard]] AddressEntry join_entry_for(const mcast::ForwardingEntry& entry) const;

    // --- LAN forwarder election (Assert) ---
    //
    // The '94 architecture leaves parallel-forwarder duplicates to DR
    // election; the full per-interface Assert machine (later standardized in
    // RFC 7761 §4.6) resolves them by metric: when a router receives a data
    // packet for (S,G) on an interface it itself forwards that traffic onto,
    // it sends an Assert carrying its route metric toward the tree root.
    // All parallel forwarders compare ranks — SPT forwarders beat RPT
    // forwarders, then lower metric, then higher interface address — and
    // every loser prunes the interface from its oif list. Downstream routers
    // listening on the LAN re-point their upstream (RPF') at the winner.

    /// How this router forwards (S,G) onto `ifindex`, if it does: the
    /// (wc_bit, metric) pair an Assert we originate would carry.
    struct ForwarderRole {
        bool wc = false;          // forwarding via the (*,G) shared tree
        std::uint32_t metric = 0; // unicast metric toward source (or RP if wc)
    };
    [[nodiscard]] std::optional<ForwarderRole> forwarder_role_on(
        int ifindex, net::Ipv4Address source, net::GroupAddress group);
    void send_assert(int ifindex, net::Ipv4Address source, net::GroupAddress group,
                     const ForwarderRole& role);
    /// The losing forwarder's prune: an RPT loser installs an (S,G)RP-bit
    /// negative cache pruned on `ifindex` (other sources keep flowing); an
    /// SPT loser removes the oif outright. Honors the
    /// assert-loser-keeps-forwarding mutation.
    void apply_assert_loss(int ifindex, net::Ipv4Address source,
                           net::GroupAddress group, bool our_wc);
    /// Downstream reaction: entries whose iif is `ifindex` re-point their
    /// upstream neighbor (RPF') at the assert winner and send a triggered
    /// join; a (*,G)-only downstream facing an SPT winner builds the (S,G).
    void retarget_downstream_to_winner(int ifindex, net::Ipv4Address source,
                                       net::GroupAddress group,
                                       net::Ipv4Address winner, bool winner_wc);
    /// A targeted join for (S,G) arriving on `ifindex` cancels our loser
    /// state there (the join picked us as RPF'; RFC 7761 "join overrides
    /// assert").
    void clear_assert_loss(int ifindex, net::Ipv4Address source,
                           net::GroupAddress group);
    [[nodiscard]] bool is_assert_loser(int ifindex, net::Ipv4Address source,
                                       net::GroupAddress group) const;
    void expire_assert_state();

    // --- periodic machinery ---
    void on_refresh_tick();
    void send_periodic_join_prune();
    void expire_soft_state();
    void check_rp_timers();
    void failover_to_alternate_rp(net::GroupAddress group, net::Ipv4Address dead_rp);
    void on_query_tick();
    void send_queries();
    void on_rp_reachability_tick();
    void on_route_change();

    // --- small helpers ---
    [[nodiscard]] int pim_neighbor_count(int ifindex) const;
    [[nodiscard]] std::uint32_t holdtime_ms() const;
    void cancel_pending_prune(const EntryRef& ref, int ifindex);
    [[nodiscard]] static EntryRef ref_of(const mcast::ForwardingEntry& entry);
    mcast::ForwardingEntry* entry_of(const EntryRef& ref);
    [[nodiscard]] net::Ipv4Address primary_reachable_rp(net::GroupAddress group) const;

    topo::Router* router_;
    igmp::RouterAgent* igmp_;
    PimConfig config_;
    SptPolicy spt_policy_ = SptPolicy::immediate();
    RpSet rp_set_;
    mcast::ForwardingCache cache_;
    mcast::DataPlane data_plane_;
    std::mt19937 rng_;

    // neighbors_[ifindex][address] = liveness deadline
    std::map<int, std::map<net::Ipv4Address, sim::Time>> neighbors_;

    // §3.7 LAN state.
    std::map<EntryRef, sim::Time> suppress_until_;
    std::map<std::pair<EntryRef, int>, sim::EventId> pending_prunes_;
    std::set<std::pair<EntryRef, int>> override_scheduled_;

    // §3.3 threshold policy counters per (S,G).
    struct SptCounter {
        int packets = 0;
        sim::Time window_start = 0;
    };
    std::map<std::pair<net::Ipv4Address, net::GroupAddress>, SptCounter> spt_counters_;

    // RP-side source liveness: last register/data per (S,G) where we are RP.
    std::map<std::pair<net::Ipv4Address, net::GroupAddress>, sim::Time> rp_source_active_;

    // Per-(interface, source, group) Assert outcome. Soft state: expires
    // after assert_holdtime, cleared by reboot, cancelled by a targeted
    // (S,G) join on the interface.
    struct AssertKey {
        int ifindex;
        net::Ipv4Address source;
        net::GroupAddress group;
        friend auto operator<=>(const AssertKey&, const AssertKey&) = default;
    };
    struct AssertState {
        net::Ipv4Address winner;      // interface address of the winning forwarder
        bool winner_wc = false;       // winner forwards via the shared tree
        std::uint32_t winner_metric = 0;
        bool we_lost = false;         // we pruned the interface as loser
        sim::Time expires = 0;
        sim::Time last_sent = 0;      // rate limit for our own Assert resends
    };
    std::map<AssertKey, AssertState> asserts_;
    std::function<void(int, const net::Packet&)> bootstrap_handler_;

    // (S,G)s in the register phase at this (source-DR) router: every data
    // packet is encapsulated to the RP(s) until a join arrives (fig. 3).
    using SgKey = std::pair<net::Ipv4Address, net::GroupAddress>;
    std::set<SgKey> registering_;
    /// Incarnation counter: bumped by reboot() so scheduled lambdas that
    /// cannot be cancelled (join overrides) no-op if they fire afterwards.
    std::uint64_t epoch_ = 0;
    std::uint64_t join_prune_sent_ = 0;
    std::set<int> dense_ifaces_;
    /// Region memberships announced via set_dense_membership, so they can be
    /// re-established after RP failover like IGMP memberships are.
    std::map<int, std::set<net::GroupAddress>> dense_members_;

    sim::PeriodicTimer refresh_timer_;
    sim::PeriodicTimer query_timer_;
    sim::PeriodicTimer rp_reach_timer_;
    int rib_token_ = 0;
};

} // namespace pimlib::pim
