// PIM sparse mode — the core protocol of the paper (§3).
//
// One PimSmRouter instance runs on each topo::Router and implements:
//   §3.1  DR behavior when local hosts join (IGMP-driven (*,G) creation)
//   §3.2  shared (RP-rooted) tree setup via explicit joins; RP-reachability
//   §3.3  switching from the shared tree to source-specific shortest-path
//         trees, with the SPT bit and RP-bit prunes (negative caches)
//   §3.4  periodic soft-state refreshes of all join/prune state
//   §3.5  data-packet processing (via mcast::DataPlane, incl. registers)
//   §3.6  per-oif timers, entry deletion at 3 × refresh period
//   §3.7  multi-access LAN procedures: prune to the LAN, join override,
//         suppression of duplicate joins; DR election via PIM Query
//   §3.8  adaptation to unicast routing changes
//   §3.9  multiple RPs: senders register with all, receivers join one and
//         fail over on RP-reachability timeout
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <vector>

#include "igmp/router_agent.hpp"
#include "mcast/forwarding_cache.hpp"
#include "pim/messages.hpp"
#include "pim/rp_set.hpp"
#include "sim/simulator.hpp"
#include "topo/router.hpp"

namespace pimlib::pim {

/// When a receiver's DR abandons the shared tree for a source-specific
/// shortest-path tree (§3.3: "a DR may adopt a policy of not setting up an
/// (S,G) entry until it has received m data packets from the source within
/// some interval of n seconds", or "remain on the RP-distribution tree
/// indefinitely").
struct SptPolicy {
    enum class Mode {
        kImmediate, // switch on the first data packet from a new source
        kThreshold, // switch after `packets` packets within `window`
        kNever,     // stay on the shared tree
    };
    Mode mode = Mode::kImmediate;
    int packets = 10;
    sim::Time window = 10 * sim::kSecond;

    static SptPolicy immediate() { return SptPolicy{Mode::kImmediate, 0, 0}; }
    static SptPolicy never() { return SptPolicy{Mode::kNever, 0, 0}; }
    static SptPolicy threshold(int packets, sim::Time window) {
        return SptPolicy{Mode::kThreshold, packets, window};
    }
};

struct PimConfig {
    /// Periodic join/prune refresh (§3.4). Paper-era default 60 s; tests
    /// compress time by scaling everything down together.
    sim::Time join_prune_interval = 60 * sim::kSecond;
    /// How long received join/prune state lives without refresh.
    sim::Time holdtime = 180 * sim::kSecond; // 3 × refresh (§3.6)
    /// PIM Query (hello) interval and neighbor liveness.
    sim::Time query_interval = 30 * sim::kSecond;
    sim::Time neighbor_holdtime = 105 * sim::kSecond;
    /// RP-reachability generation interval and downstream timeout (§3.9).
    sim::Time rp_reachability_interval = 30 * sim::kSecond;
    sim::Time rp_timeout = 90 * sim::kSecond;
    /// LAN procedures (§3.7): joins overheard from peers suppress our own
    /// refresh for up to this long; overheard prunes are overridden after a
    /// small random delay; a prune received on a LAN with >1 downstream
    /// neighbor only takes effect after the override window passes.
    sim::Time join_suppression = 90 * sim::kSecond;
    sim::Time override_delay = 500 * sim::kMillisecond;

    /// Aggregate the periodic refresh into one JoinPruneBundle per
    /// (interface, upstream neighbor) whenever more than one group shares
    /// the pair; singletons keep the classic one-group JoinPrune wire form.
    /// Turns the per-tick message count from O(groups) into O(neighbors)
    /// (docs/TIMERS.md). Off restores per-group messages throughout.
    bool aggregate_refresh = true;

    /// Seeded-bug switches for the model checker's mutation gate (pimcheck
    /// --mutate …). Both default off; production behavior is unmodified.
    /// skip-spt-bit-handshake prunes the source off the shared tree the
    /// moment the switchover (S,G) join is sent, instead of waiting for data
    /// to arrive over the SPT — breaking §3.3's make-before-break handshake
    /// and losing in-flight shared-tree packets. no-rp-bit-prune never sends
    /// the (S,G)RP-bit prune (triggered or periodic), so upstream negative
    /// caches are never built and the shared tree keeps carrying the source
    /// redundantly (§3.3).
    bool mutate_skip_spt_bit_handshake = false;
    bool mutate_no_rp_bit_prune = false;

    /// Uniformly scales every interval (convenience for tests: a factor of
    /// 0.01 turns the 60 s refresh into 0.6 s).
    [[nodiscard]] PimConfig scaled(double factor) const;
};

class PimSmRouter final : public mcast::DataPlane::Delegate {
public:
    PimSmRouter(topo::Router& router, igmp::RouterAgent& igmp, PimConfig config = {});
    ~PimSmRouter() override;

    PimSmRouter(const PimSmRouter&) = delete;
    PimSmRouter& operator=(const PimSmRouter&) = delete;

    [[nodiscard]] RpSet& rp_set() { return rp_set_; }
    [[nodiscard]] mcast::ForwardingCache& cache() { return cache_; }
    [[nodiscard]] const mcast::ForwardingCache& cache() const { return cache_; }
    [[nodiscard]] topo::Router& router() { return *router_; }
    [[nodiscard]] const PimConfig& config() const { return config_; }

    void set_spt_policy(SptPolicy policy) { spt_policy_ = policy; }
    [[nodiscard]] SptPolicy spt_policy() const { return spt_policy_; }

    // --- dense-mode interfaces (§3.1, §4 "interoperation with dense mode
    // regions") ---
    //
    // "The router will flag individual interfaces as dense or sparse mode,
    // to allow differential treatment of different interfaces." A border
    // router flags its domain-facing interface dense; on such an interface
    //   - it acts for the whole region behind it: data arriving from any
    //     source routed via that interface is registered with the RP (the
    //     region's sources are proxied, §4), and
    //   - region membership (delivered out of band, per the paper: "relies
    //     on getting the group member existence information to the border
    //     routers") pins the interface onto the shared tree exactly like a
    //     local IGMP member.
    void set_interface_dense(int ifindex, bool dense);
    [[nodiscard]] bool is_interface_dense(int ifindex) const {
        return dense_ifaces_.contains(ifindex);
    }
    /// Splices region membership onto the shared tree ("border routers send
    /// explicit joins", §4). `present=false` unpins; state then ages out.
    void set_dense_membership(int ifindex, net::GroupAddress group, bool present);

    /// True if this router is one of the RPs for `group`.
    [[nodiscard]] bool is_rp_for(net::GroupAddress group) const;

    /// Simulates a crash+restart: every piece of soft state — forwarding
    /// cache, PIM neighbors, LAN suppression/override/pending-prune state,
    /// SPT counters, RP-side source liveness, register phase — is dropped,
    /// exactly as a real reboot would lose it (§2.7: neighbors' state about
    /// us then ages out at 3× refresh, while we rebuild ours from IGMP
    /// reports and the periodic refresh machinery). Configuration survives:
    /// the RP set, dense-interface flags and region memberships, SPT policy.
    void reboot();

    // --- introspection (tests, examples, benchmarks) ---
    [[nodiscard]] std::vector<net::Ipv4Address> neighbors_on(int ifindex) const;
    /// The elected designated router address on `ifindex` (highest address
    /// among us and our PIM neighbors).
    [[nodiscard]] net::Ipv4Address dr_address_on(int ifindex) const;
    [[nodiscard]] bool is_dr_on(int ifindex) const;
    [[nodiscard]] std::size_t state_entry_count() const { return cache_.size(); }
    /// Sources this RP currently knows to be active for `group` (§3 "PIM
    /// ... does require enumeration of sources").
    [[nodiscard]] std::vector<net::Ipv4Address> active_sources(net::GroupAddress group) const;

    /// Join/Prune messages sent by this router (periodic + triggered);
    /// exposes the §3.7 suppression machinery to tests and benchmarks.
    [[nodiscard]] std::uint64_t join_prune_messages_sent() const {
        return join_prune_sent_;
    }

    // --- mcast::DataPlane::Delegate ---
    void on_no_entry(int ifindex, const net::Packet& packet) override;
    void on_wildcard_forward(int ifindex, const net::Packet& packet) override;
    void on_spt_bit_set(mcast::ForwardingEntry& entry) override;
    void on_iif_check_failed(int ifindex, const net::Packet& packet) override;
    void on_sg_forward(mcast::ForwardingEntry& entry, int ifindex,
                       const net::Packet& packet) override;
    void on_no_downstream(mcast::ForwardingEntry& entry, int ifindex,
                          const net::Packet& packet) override;

private:
    struct EntryRef {
        net::Ipv4Address source_or_rp; // RP for wildcard
        net::GroupAddress group;
        bool wildcard;
        friend auto operator<=>(const EntryRef&, const EntryRef&) = default;
    };

    // --- message handling ---
    void on_pim_message(int ifindex, const net::Packet& packet);
    void handle_query(int ifindex, const net::Packet& packet, const Query& query);
    void handle_register(const net::Packet& packet, const Register& reg);
    void handle_join_prune(int ifindex, const net::Packet& packet, const JoinPrune& msg);
    /// Unbundles each group record through handle_join_prune, so aggregated
    /// refreshes hit the exact same join/prune/suppression logic.
    void handle_join_prune_bundle(int ifindex, const net::Packet& packet,
                                  const JoinPruneBundle& msg);
    void handle_rp_reachability(int ifindex, const RpReachability& msg);

    void process_targeted_join(int ifindex, net::GroupAddress group,
                               const AddressEntry& entry, sim::Time holdtime);
    void process_targeted_prune(int ifindex, net::Ipv4Address from,
                                net::GroupAddress group, const AddressEntry& entry);
    void apply_prune(int ifindex, net::GroupAddress group, const AddressEntry& entry);
    void observe_peer_join(int ifindex, const JoinPrune& msg);
    void observe_peer_prune(int ifindex, const JoinPrune& msg);

    // --- membership (IGMP) ---
    void on_membership(int ifindex, net::GroupAddress group, bool present);
    void join_group_as_dr(int ifindex, net::GroupAddress group);

    // --- tree construction helpers ---
    mcast::ForwardingEntry* establish_wc(net::GroupAddress group, net::Ipv4Address rp);
    mcast::ForwardingEntry& establish_sg(net::Ipv4Address source, net::GroupAddress group);
    void initiate_spt_switch(net::Ipv4Address source, net::GroupAddress group);
    void send_triggered_join(const mcast::ForwardingEntry& entry);
    void send_prune_upstream(const mcast::ForwardingEntry& entry);
    void send_join_prune(int ifindex, std::optional<net::Ipv4Address> upstream,
                         net::GroupAddress group, std::vector<AddressEntry> joins,
                         std::vector<AddressEntry> prunes);
    /// One wire message carrying every group's refresh for (ifindex,
    /// upstream); emits the same per-group telemetry as individual sends.
    void send_join_prune_bundle(int ifindex, net::Ipv4Address upstream,
                                std::vector<JoinPruneBundle::GroupRecord> groups);
    void send_register(const net::Packet& data, net::Ipv4Address rp);
    /// Registers `packet` with the group's RPs if we are the DR of its
    /// directly-connected source and no native (S,G) path exists yet.
    /// `already_forwarded` says the data plane has delivered this packet
    /// locally (prevents a self-RP from duplicating it).
    void maybe_register(int ifindex, const net::Packet& packet, bool already_forwarded);
    /// Typed drop for a packet no MRIB entry matched: kAssertLoser when this
    /// router is a non-DR on the source's own LAN (ceding to the DR),
    /// kNoState otherwise.
    [[nodiscard]] provenance::DropReason classify_no_entry_drop(
        int ifindex, const net::Packet& packet) const;
    [[nodiscard]] AddressEntry join_entry_for(const mcast::ForwardingEntry& entry) const;

    // --- periodic machinery ---
    void on_refresh_tick();
    void send_periodic_join_prune();
    void expire_soft_state();
    void check_rp_timers();
    void failover_to_alternate_rp(net::GroupAddress group, net::Ipv4Address dead_rp);
    void on_query_tick();
    void send_queries();
    void on_rp_reachability_tick();
    void on_route_change();

    // --- small helpers ---
    [[nodiscard]] int pim_neighbor_count(int ifindex) const;
    [[nodiscard]] std::uint32_t holdtime_ms() const;
    void cancel_pending_prune(const EntryRef& ref, int ifindex);
    [[nodiscard]] static EntryRef ref_of(const mcast::ForwardingEntry& entry);
    mcast::ForwardingEntry* entry_of(const EntryRef& ref);
    [[nodiscard]] net::Ipv4Address primary_reachable_rp(net::GroupAddress group) const;

    topo::Router* router_;
    igmp::RouterAgent* igmp_;
    PimConfig config_;
    SptPolicy spt_policy_ = SptPolicy::immediate();
    RpSet rp_set_;
    mcast::ForwardingCache cache_;
    mcast::DataPlane data_plane_;
    std::mt19937 rng_;

    // neighbors_[ifindex][address] = liveness deadline
    std::map<int, std::map<net::Ipv4Address, sim::Time>> neighbors_;

    // §3.7 LAN state.
    std::map<EntryRef, sim::Time> suppress_until_;
    std::map<std::pair<EntryRef, int>, sim::EventId> pending_prunes_;
    std::set<std::pair<EntryRef, int>> override_scheduled_;

    // §3.3 threshold policy counters per (S,G).
    struct SptCounter {
        int packets = 0;
        sim::Time window_start = 0;
    };
    std::map<std::pair<net::Ipv4Address, net::GroupAddress>, SptCounter> spt_counters_;

    // RP-side source liveness: last register/data per (S,G) where we are RP.
    std::map<std::pair<net::Ipv4Address, net::GroupAddress>, sim::Time> rp_source_active_;

    // (S,G)s in the register phase at this (source-DR) router: every data
    // packet is encapsulated to the RP(s) until a join arrives (fig. 3).
    using SgKey = std::pair<net::Ipv4Address, net::GroupAddress>;
    std::set<SgKey> registering_;
    /// Incarnation counter: bumped by reboot() so scheduled lambdas that
    /// cannot be cancelled (join overrides) no-op if they fire afterwards.
    std::uint64_t epoch_ = 0;
    std::uint64_t join_prune_sent_ = 0;
    std::set<int> dense_ifaces_;
    /// Region memberships announced via set_dense_membership, so they can be
    /// re-established after RP failover like IGMP memberships are.
    std::map<int, std::set<net::GroupAddress>> dense_members_;

    sim::PeriodicTimer refresh_timer_;
    sim::PeriodicTimer query_timer_;
    sim::PeriodicTimer rp_reach_timer_;
    int rib_token_ = 0;
};

} // namespace pimlib::pim
