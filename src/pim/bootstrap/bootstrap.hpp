// Dynamic RP discovery: BSR election and Candidate-RP advertisement.
//
// The '94 paper assumes every router learns the group→RP mapping out of
// band ("directories of these mappings are maintained", §3.2, and the IGMP
// rp-map extension PR-2 built). This module replaces the oracle with the
// bootstrap machinery later standardized for PIM-SM (RFC 5059 in spirit,
// simplified to this simulator's scale):
//
//   - Candidate BSRs flood Bootstrap messages hop by hop. Every router
//     keeps one elected-BSR view — highest (priority, address) wins — and
//     re-floods accepted messages out every other PIM interface. Floods are
//     deduplicated by the per-BSR sequence number and RPF-checked toward
//     the BSR address, so a LAN cannot loop them.
//   - Candidate RPs unicast Candidate-RP-Advertisements (their prefix
//     ranges + priority) to the elected BSR.
//   - The elected BSR assembles the advertisements into the RP set, attaches
//     per-entry holdtimes, and floods it in its periodic Bootstrap message.
//     Entries whose advertisements stop refreshing expire — a crashed RP
//     falls out of the set within crp_holdtime.
//   - Receivers install the set into RpSet's dynamic layer (static config
//     stays authoritative; see RpSet::rps_for), expire it as soft state,
//     and call PimSmRouter::reconcile_rp_mappings() whenever it changes so
//     existing shared trees re-home immediately.
//
// Group-to-RP mapping inside the dynamic set uses the RFC 7761 §4.7.2 hash
// so all routers agree on a single RP per group without coordination.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"
#include "net/packet.hpp"
#include "pim/messages.hpp"
#include "pim/rp_set.hpp"
#include "sim/simulator.hpp"

namespace pimlib::pim {

class PimSmRouter;

struct BootstrapConfig {
    /// Periodic Bootstrap origination by the elected BSR.
    sim::Time bootstrap_interval = 60 * sim::kSecond;
    /// How long an elected-BSR view survives without a refresh before the
    /// next candidate takes over (2.5 × interval, like neighbor holdtimes).
    sim::Time bsr_timeout = 150 * sim::kSecond;
    /// Candidate-RP advertisement interval and the holdtime the BSR attaches
    /// to the resulting RP-set entries (2.5 × interval).
    sim::Time crp_adv_interval = 30 * sim::kSecond;
    sim::Time crp_holdtime = 75 * sim::kSecond;
    /// Mask length for the §4.7.2 group-to-RP hash.
    int hash_mask_len = 30;

    /// Seeded bug (model-checker mutation gate): once a router has applied a
    /// non-empty dynamic RP set it ignores every later update — so after a
    /// BSR failover republishes the set, this router keeps joining the dead
    /// RP forever.
    bool mutate_stale_rp_set = false;

    /// Uniformly scales every interval (same convention as PimConfig).
    [[nodiscard]] BootstrapConfig scaled(double factor) const;
};

/// One agent per router. Every router floods and installs RP sets; routers
/// additionally configured as candidate BSR / candidate RP originate.
class BootstrapAgent {
public:
    explicit BootstrapAgent(PimSmRouter& pim, BootstrapConfig config = {});

    BootstrapAgent(const BootstrapAgent&) = delete;
    BootstrapAgent& operator=(const BootstrapAgent&) = delete;

    /// Declares this router a candidate BSR. Takes effect immediately: the
    /// router assumes the BSR role unless it has already heard a better one.
    void set_candidate_bsr(std::uint8_t priority);
    /// Declares this router a candidate RP for `range`; advertised to the
    /// elected BSR once one is known.
    void add_candidate_rp(net::Prefix range, std::uint8_t priority);

    /// Drops all learned soft state (elected-BSR view, learned RP set,
    /// candidate-RP advertisements heard) exactly like PimSmRouter::reboot.
    /// Candidate roles are configuration and survive; the origination
    /// sequence number also survives (stable storage) so post-reboot floods
    /// are not mistaken for stale duplicates.
    void reboot();

    // --- introspection (oracles, tests, pimsim) ---
    [[nodiscard]] net::Ipv4Address elected_bsr() const { return bsr_view_.addr; }
    [[nodiscard]] bool is_elected_bsr() const;
    [[nodiscard]] bool is_candidate_bsr() const { return candidate_bsr_.has_value(); }
    [[nodiscard]] bool is_candidate_rp() const { return !candidate_ranges_.empty(); }
    [[nodiscard]] const BootstrapConfig& config() const { return config_; }
    [[nodiscard]] PimSmRouter& pim() { return *pim_; }

private:
    struct BsrView {
        net::Ipv4Address addr;
        std::uint8_t priority = 0;
        sim::Time deadline = 0; // 0 = no BSR known
    };
    struct CrpRecord {
        std::uint8_t priority = 0;
        std::vector<net::Prefix> ranges;
        sim::Time deadline = 0;
    };
    struct LearnedEntry {
        Bootstrap::RpEntry entry;
        sim::Time deadline = 0;
    };

    void on_message(int ifindex, const net::Packet& packet);
    void handle_bootstrap(int ifindex, const net::Packet& packet, const Bootstrap& msg);
    void handle_crp_adv(const CandidateRpAdvertisement& msg);
    void on_tick();
    /// (Re-)elects: adopts `addr/priority` as the BSR view if it beats the
    /// current one (or the current one expired); emits kBsrElected on change.
    bool adopt_bsr(net::Ipv4Address addr, std::uint8_t priority, sim::Time deadline);
    void become_bsr_if_best();
    void originate_bootstrap();
    void flood(const Bootstrap& msg, int except_ifindex);
    void send_crp_adv();
    /// Installs `entries` into the RpSet dynamic layer; on change bumps
    /// pimlib_rp_set_changes_total, emits kRpSetChanged and re-homes trees.
    void apply_learned_set();
    [[nodiscard]] Bootstrap assemble_bootstrap();

    PimSmRouter* pim_;
    BootstrapConfig config_;

    std::optional<std::uint8_t> candidate_bsr_;
    std::vector<std::pair<net::Prefix, std::uint8_t>> candidate_ranges_;

    BsrView bsr_view_;
    /// Flood dedup: highest sequence number seen per originating BSR.
    std::map<net::Ipv4Address, std::uint32_t> last_seq_;
    /// BSR side: advertisements heard from candidate RPs.
    std::map<net::Ipv4Address, CrpRecord> crp_records_;
    /// Receiver side: the learned RP set with per-entry expiry.
    std::vector<LearnedEntry> learned_;
    bool applied_nonempty_ = false; // for mutate_stale_rp_set
    std::uint32_t seq_ = 0;
    sim::Time last_crp_adv_ = 0;
    sim::Time last_origination_ = 0;

    sim::PeriodicTimer tick_timer_;
};

} // namespace pimlib::pim
