#include "pim/bootstrap/bootstrap.hpp"

#include <algorithm>

#include "pim/pim_sm.hpp"
#include "topo/network.hpp"

namespace pimlib::pim {

namespace {
constexpr sim::Time ms_to_time(std::uint32_t ms) {
    return static_cast<sim::Time>(ms) * sim::kMillisecond;
}

/// BSR election order: highest priority, then highest address.
bool bsr_beats(std::uint8_t a_pri, net::Ipv4Address a_addr, std::uint8_t b_pri,
               net::Ipv4Address b_addr) {
    if (a_pri != b_pri) return a_pri > b_pri;
    return a_addr > b_addr;
}
} // namespace

BootstrapConfig BootstrapConfig::scaled(double factor) const {
    auto scale = [factor](sim::Time t) {
        return static_cast<sim::Time>(static_cast<double>(t) * factor);
    };
    BootstrapConfig out = *this;
    out.bootstrap_interval = scale(bootstrap_interval);
    out.bsr_timeout = scale(bsr_timeout);
    out.crp_adv_interval = scale(crp_adv_interval);
    out.crp_holdtime = scale(crp_holdtime);
    return out;
}

BootstrapAgent::BootstrapAgent(PimSmRouter& pim, BootstrapConfig config)
    : pim_(&pim),
      config_(config),
      tick_timer_(pim.router().simulator(), [this] { on_tick(); }) {
    pim_->set_bootstrap_handler(
        [this](int ifindex, const net::Packet& packet) { on_message(ifindex, packet); });
    // One timer drives everything: BSR liveness, periodic origination,
    // candidate-RP advertisement, and soft-state expiry. A quarter of the
    // origination interval keeps expiry reaction within one tick of the
    // deadline without per-entry timer churn.
    tick_timer_.start(std::max<sim::Time>(config_.bootstrap_interval / 4, 1));
}

void BootstrapAgent::set_candidate_bsr(std::uint8_t priority) {
    candidate_bsr_ = priority;
    pim_->router().simulator().schedule(0, [this] { become_bsr_if_best(); });
}

void BootstrapAgent::add_candidate_rp(net::Prefix range, std::uint8_t priority) {
    candidate_ranges_.emplace_back(range, priority);
    if (!bsr_view_.addr.is_unspecified()) send_crp_adv();
}

bool BootstrapAgent::is_elected_bsr() const {
    return !bsr_view_.addr.is_unspecified() &&
           bsr_view_.addr == pim_->router().router_id();
}

void BootstrapAgent::reboot() {
    // Everything learned is soft state and dies with the crash; candidate
    // roles (configuration) and the origination sequence number (stable
    // storage, so post-reboot floods beat our own pre-crash duplicates)
    // survive.
    bsr_view_ = BsrView{};
    last_seq_.clear();
    crp_records_.clear();
    learned_.clear();
    applied_nonempty_ = false;
    last_crp_adv_ = 0;
    last_origination_ = 0;
    pim_->rp_set().set_dynamic({});
    tick_timer_.start(std::max<sim::Time>(config_.bootstrap_interval / 4, 1));
    if (candidate_bsr_.has_value()) {
        pim_->router().simulator().schedule(0, [this] { become_bsr_if_best(); });
    }
}

void BootstrapAgent::on_message(int ifindex, const net::Packet& packet) {
    auto code = peek_code(packet.payload);
    if (!code) return;
    if (*code == Code::kBootstrap) {
        if (auto msg = Bootstrap::decode(packet.payload)) {
            handle_bootstrap(ifindex, packet, *msg);
        }
    } else if (*code == Code::kCandidateRpAdvertisement) {
        if (auto msg = CandidateRpAdvertisement::decode(packet.payload)) {
            handle_crp_adv(*msg);
        }
    }
}

void BootstrapAgent::handle_bootstrap(int ifindex, const net::Packet& packet,
                                      const Bootstrap& msg) {
    (void)packet;
    topo::Router& router = pim_->router();
    if (msg.bsr == router.router_id()) return; // our own flood echoed back
    if (msg.bsr.is_unspecified()) return;
    // Hop-by-hop RPF check: accept only from the interface that routes
    // toward the claimed BSR, so a flood cannot circulate on a LAN.
    if (ifindex >= 0) {
        auto rpf = router.rpf_interface(msg.bsr);
        if (!rpf.has_value() || *rpf != ifindex) return;
    }
    // Flood dedup by the originator's sequence number.
    if (auto it = last_seq_.find(msg.bsr); it != last_seq_.end() && msg.seq <= it->second) {
        return;
    }
    last_seq_[msg.bsr] = msg.seq;

    const sim::Time now = router.simulator().now();
    const bool changed = adopt_bsr(msg.bsr, msg.bsr_priority, now + config_.bsr_timeout);
    if (bsr_view_.addr != msg.bsr) return; // a better BSR is already elected

    // Install the carried RP set with per-entry soft-state deadlines.
    learned_.clear();
    for (const Bootstrap::RpEntry& entry : msg.rps) {
        learned_.push_back(LearnedEntry{entry, now + ms_to_time(entry.holdtime_ms)});
    }
    apply_learned_set();
    flood(msg, ifindex);
    // A (new) BSR must hear about us quickly — a triggered advertisement
    // beats waiting out the periodic interval after a failover.
    if (changed && is_candidate_rp()) send_crp_adv();
}

void BootstrapAgent::handle_crp_adv(const CandidateRpAdvertisement& msg) {
    if (msg.rp.is_unspecified() || msg.ranges.empty()) return;
    const sim::Time now = pim_->router().simulator().now();
    auto it = crp_records_.find(msg.rp);
    const bool changed = it == crp_records_.end() || it->second.priority != msg.priority ||
                         it->second.ranges != msg.ranges;
    crp_records_[msg.rp] =
        CrpRecord{msg.priority, msg.ranges, now + ms_to_time(msg.holdtime_ms)};
    if (changed && is_elected_bsr()) originate_bootstrap();
}

void BootstrapAgent::on_tick() {
    topo::Router& router = pim_->router();
    const sim::Time now = router.simulator().now();

    // BSR liveness: a silent BSR is deposed, and its sequence history is
    // forgotten so a post-crash restart (sequence reset) is not mistaken
    // for stale duplicates.
    if (!bsr_view_.addr.is_unspecified() && bsr_view_.deadline != 0 &&
        now >= bsr_view_.deadline) {
        last_seq_.erase(bsr_view_.addr);
        bsr_view_ = BsrView{};
    }
    become_bsr_if_best();

    // Expire candidate-RP advertisements; the BSR floods the reduced set
    // immediately (this is what evicts a crashed RP from the network).
    bool crp_expired = false;
    for (auto it = crp_records_.begin(); it != crp_records_.end();) {
        if (it->second.deadline <= now) {
            it = crp_records_.erase(it);
            crp_expired = true;
        } else {
            ++it;
        }
    }
    if (crp_expired && is_elected_bsr()) originate_bootstrap();

    // Expire learned RP-set entries (soft state on every router).
    const std::size_t before = learned_.size();
    std::erase_if(learned_, [&](const LearnedEntry& e) { return e.deadline <= now; });
    if (learned_.size() != before) apply_learned_set();

    // Periodic origination and advertisement.
    if (is_elected_bsr() && candidate_bsr_.has_value() &&
        now - last_origination_ >= config_.bootstrap_interval) {
        originate_bootstrap();
    }
    if (is_candidate_rp() && !bsr_view_.addr.is_unspecified() &&
        now - last_crp_adv_ >= config_.crp_adv_interval) {
        send_crp_adv();
    }
}

bool BootstrapAgent::adopt_bsr(net::Ipv4Address addr, std::uint8_t priority,
                               sim::Time deadline) {
    const sim::Time now = pim_->router().simulator().now();
    const bool view_valid =
        !bsr_view_.addr.is_unspecified() && bsr_view_.deadline > now;
    if (view_valid && bsr_view_.addr == addr) {
        bsr_view_.priority = priority;
        bsr_view_.deadline = deadline;
        return false;
    }
    if (view_valid &&
        bsr_beats(bsr_view_.priority, bsr_view_.addr, priority, addr)) {
        return false; // the incumbent outranks the claimant
    }
    bsr_view_ = BsrView{addr, priority, deadline};
    telemetry::Hub& hub = pim_->router().network().telemetry();
    hub.emit(telemetry::EventType::kBsrElected, pim_->router().name(), "pim", "",
             "bsr=" + addr.to_string() + " pri=" + std::to_string(priority));
    return true;
}

void BootstrapAgent::become_bsr_if_best() {
    if (!candidate_bsr_.has_value()) return;
    topo::Router& router = pim_->router();
    const sim::Time now = router.simulator().now();
    const bool view_valid =
        !bsr_view_.addr.is_unspecified() && bsr_view_.deadline > now;
    if (view_valid && bsr_view_.addr == router.router_id()) {
        bsr_view_.deadline = now + config_.bsr_timeout; // we are alive
        return;
    }
    if (view_valid && bsr_beats(bsr_view_.priority, bsr_view_.addr, *candidate_bsr_,
                                router.router_id())) {
        return; // someone better holds the role
    }
    if (adopt_bsr(router.router_id(), *candidate_bsr_, now + config_.bsr_timeout)) {
        // Fresh mandate: our own ranges count as heard advertisements, and
        // the network learns the (possibly empty) set right away.
        if (is_candidate_rp()) send_crp_adv();
        originate_bootstrap();
    }
}

Bootstrap BootstrapAgent::assemble_bootstrap() {
    Bootstrap msg;
    msg.bsr = pim_->router().router_id();
    msg.bsr_priority = candidate_bsr_.value_or(0);
    const auto holdtime =
        static_cast<std::uint32_t>(config_.crp_holdtime / sim::kMillisecond);
    for (const auto& [rp, record] : crp_records_) {
        for (const net::Prefix& range : record.ranges) {
            msg.rps.push_back(Bootstrap::RpEntry{range, rp, record.priority, holdtime});
        }
    }
    return msg;
}

void BootstrapAgent::originate_bootstrap() {
    topo::Router& router = pim_->router();
    const sim::Time now = router.simulator().now();
    Bootstrap msg = assemble_bootstrap();
    msg.seq = ++seq_;
    last_origination_ = now;
    // The BSR itself installs what it floods.
    learned_.clear();
    for (const Bootstrap::RpEntry& entry : msg.rps) {
        learned_.push_back(LearnedEntry{entry, now + ms_to_time(entry.holdtime_ms)});
    }
    apply_learned_set();
    flood(msg, /*except_ifindex=*/-1);
}

void BootstrapAgent::flood(const Bootstrap& msg, int except_ifindex) {
    topo::Router& router = pim_->router();
    const std::vector<std::uint8_t> payload = msg.encode();
    for (const auto& iface : router.interfaces()) {
        if (!iface.up || iface.segment == nullptr) continue;
        if (iface.ifindex == except_ifindex) continue;
        net::Packet packet;
        packet.src = iface.address;
        packet.dst = net::kAllRouters;
        packet.proto = net::IpProto::kIgmp;
        packet.ttl = 1;
        packet.payload = payload;
        router.network().stats().count_control_message("pim-bootstrap");
        router.send(iface.ifindex, net::Frame{std::nullopt, std::move(packet)});
    }
}

void BootstrapAgent::send_crp_adv() {
    if (candidate_ranges_.empty() || bsr_view_.addr.is_unspecified()) return;
    topo::Router& router = pim_->router();
    last_crp_adv_ = router.simulator().now();
    const auto holdtime =
        static_cast<std::uint32_t>(config_.crp_holdtime / sim::kMillisecond);
    // One advertisement per distinct priority (ranges sharing a priority
    // ride together; the common case is a single message).
    std::vector<std::uint8_t> priorities;
    for (const auto& [range, priority] : candidate_ranges_) {
        if (std::find(priorities.begin(), priorities.end(), priority) ==
            priorities.end()) {
            priorities.push_back(priority);
        }
    }
    for (std::uint8_t priority : priorities) {
        CandidateRpAdvertisement msg;
        msg.rp = router.router_id();
        msg.priority = priority;
        msg.holdtime_ms = holdtime;
        for (const auto& [range, pri] : candidate_ranges_) {
            if (pri == priority) msg.ranges.push_back(range);
        }
        if (bsr_view_.addr == router.router_id()) {
            handle_crp_adv(msg); // we are the BSR: no wire trip needed
            continue;
        }
        net::Packet packet;
        packet.dst = bsr_view_.addr;
        packet.proto = net::IpProto::kIgmp;
        packet.ttl = 64;
        packet.payload = msg.encode();
        router.network().stats().count_control_message("pim-crp-adv");
        router.originate_unicast(std::move(packet));
    }
}

void BootstrapAgent::apply_learned_set() {
    if (config_.mutate_stale_rp_set && applied_nonempty_) {
        // Seeded bug (model-checker mutation gate): the first applied set is
        // frozen forever — after a BSR failover republishes the mappings,
        // this router keeps joining whatever RP it first learned.
        return;
    }
    std::vector<RpSet::DynamicRp> dynamic;
    dynamic.reserve(learned_.size());
    for (const LearnedEntry& e : learned_) {
        dynamic.push_back(RpSet::DynamicRp{e.entry.range, e.entry.rp, e.entry.priority});
    }
    const bool nonempty = !dynamic.empty();
    pim_->rp_set().set_hash_mask_len(config_.hash_mask_len);
    if (!pim_->rp_set().set_dynamic(std::move(dynamic))) return;
    if (nonempty) applied_nonempty_ = true;
    telemetry::Hub& hub = pim_->router().network().telemetry();
    hub.registry()
        .counter("pimlib_rp_set_changes_total", {},
                 "Dynamic (BSR-learned) RP-set replacements that changed the set")
        .inc();
    hub.emit(telemetry::EventType::kRpSetChanged, pim_->router().name(), "pim", "",
             "entries=" + std::to_string(learned_.size()) +
                 " bsr=" + bsr_view_.addr.to_string());
    // Existing shared trees rooted at RPs that fell out of the set re-home
    // now instead of waiting for their RP timers.
    pim_->reconcile_rp_mappings();
}

} // namespace pimlib::pim
