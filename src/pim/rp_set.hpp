// Group → rendezvous-point mapping (§3.1, §3.9, §4 "Selecting and
// identifying RPs"). Mappings can be statically configured per group or per
// group-address range, learned dynamically from hosts via the paper's
// proposed IGMP RP-map message, or installed by the bootstrap subsystem
// (src/pim/bootstrap) from the BSR's flooded RP-set. Static configuration
// stays authoritative when present; the dynamic BSR-learned layer is
// consulted last and elects exactly one RP per group via the RFC 7761
// §4.7.2 hash so every router in the domain agrees without coordination.
// The static RP list is ordered: receivers join the first *reachable* RP
// and fail over down the list.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"

namespace pimlib::pim {

class RpSet {
public:
    /// One BSR-learned candidate-RP mapping. Expiry is tracked by the
    /// bootstrap agent that owns the soft state; the RpSet only stores the
    /// currently-live set it is handed.
    struct DynamicRp {
        net::Prefix range;
        net::Ipv4Address rp;
        std::uint8_t priority = 0; // higher wins

        friend bool operator==(const DynamicRp&, const DynamicRp&) = default;
    };

    /// Statically configures the RP list for one group.
    void configure(net::GroupAddress group, std::vector<net::Ipv4Address> rps);

    /// Configures the RP list for a whole class-D range (e.g. 224.1.0.0/16).
    void configure_range(net::Prefix range, std::vector<net::Ipv4Address> rps);

    /// Merges a host-announced mapping (does not override static config for
    /// the exact group; the paper treats configuration as authoritative).
    void learn(net::GroupAddress group, std::vector<net::Ipv4Address> rps);

    /// Replaces the whole BSR-learned layer (the bootstrap agent calls this
    /// with the live entries each time the flooded RP-set or its holdtimes
    /// change). Returns true when the effective set actually changed, so the
    /// caller can count/emit on real transitions only.
    bool set_dynamic(std::vector<DynamicRp> entries);
    [[nodiscard]] const std::vector<DynamicRp>& dynamic_entries() const {
        return dynamic_;
    }

    /// The dynamically elected RP for `group`, ignoring every static layer:
    /// longest matching range, then highest priority, then highest §4.7.2
    /// hash value, then highest address. nullopt when no dynamic entry
    /// matches.
    [[nodiscard]] std::optional<net::Ipv4Address> dynamic_rp_for(
        net::GroupAddress group) const;

    /// Ordered RP list for `group`: exact static mapping first, then learned
    /// mapping, then the longest configured range, then the BSR-learned
    /// dynamic election (a single RP — the whole domain hashes to the same
    /// one). Empty when the group has no sparse-mode mapping (the paper's
    /// signal to fall back to dense mode, §3.1).
    [[nodiscard]] std::vector<net::Ipv4Address> rps_for(net::GroupAddress group) const;

    /// True if the group is to be handled in sparse mode at all.
    [[nodiscard]] bool has_mapping(net::GroupAddress group) const {
        return !rps_for(group).empty();
    }

    /// The RFC 7761 §4.7.2 hash: Value(G,M,C) for group G masked by the
    /// hash mask M against candidate RP address C. Exposed so tests can
    /// check the election against the published function.
    [[nodiscard]] static std::uint32_t hash_value(std::uint32_t group_masked,
                                                  std::uint32_t rp);

    /// Mask length applied to the group before hashing (RFC default 30:
    /// consecutive groups spread over the candidate RPs in blocks of four).
    void set_hash_mask_len(int len) { hash_mask_len_ = len; }
    [[nodiscard]] int hash_mask_len() const { return hash_mask_len_; }

private:
    std::map<net::GroupAddress, std::vector<net::Ipv4Address>> static_;
    std::map<net::GroupAddress, std::vector<net::Ipv4Address>> learned_;
    std::map<net::Prefix, std::vector<net::Ipv4Address>> ranges_;
    std::vector<DynamicRp> dynamic_;
    int hash_mask_len_ = 30;
};

} // namespace pimlib::pim
