// Group → rendezvous-point mapping (§3.1, §3.9, §4 "Selecting and
// identifying RPs"). Mappings can be statically configured per group or per
// group-address range, or learned dynamically from hosts via the paper's
// proposed IGMP RP-map message. The RP list is ordered: receivers join the
// first *reachable* RP and fail over down the list.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"

namespace pimlib::pim {

class RpSet {
public:
    /// Statically configures the RP list for one group.
    void configure(net::GroupAddress group, std::vector<net::Ipv4Address> rps);

    /// Configures the RP list for a whole class-D range (e.g. 224.1.0.0/16).
    void configure_range(net::Prefix range, std::vector<net::Ipv4Address> rps);

    /// Merges a host-announced mapping (does not override static config for
    /// the exact group; the paper treats configuration as authoritative).
    void learn(net::GroupAddress group, std::vector<net::Ipv4Address> rps);

    /// Ordered RP list for `group`: exact static mapping first, then learned
    /// mapping, then the longest configured range. Empty when the group has
    /// no sparse-mode mapping (the paper's signal to fall back to dense
    /// mode, §3.1).
    [[nodiscard]] std::vector<net::Ipv4Address> rps_for(net::GroupAddress group) const;

    /// True if the group is to be handled in sparse mode at all.
    [[nodiscard]] bool has_mapping(net::GroupAddress group) const {
        return !rps_for(group).empty();
    }

private:
    std::map<net::GroupAddress, std::vector<net::Ipv4Address>> static_;
    std::map<net::GroupAddress, std::vector<net::Ipv4Address>> learned_;
    std::map<net::Prefix, std::vector<net::Ipv4Address>> ranges_;
};

} // namespace pimlib::pim
