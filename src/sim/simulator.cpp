#include "sim/simulator.hpp"

#include <cassert>

#include "telemetry/profiler/profiler.hpp"

namespace pimlib::sim {

EventId Simulator::schedule(Time delay, Action action) {
    if (delay < 0) delay = 0;
    return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(Time when, Action action) {
    assert(when >= now_ && "cannot schedule into the past");
    if (when < now_) when = now_;
    const std::uint64_t seq = next_seq_++;
    TimerWheel::Node* node = wheel_.schedule(when, seq, std::move(action));
    return EventId{when, seq, node};
}

bool Simulator::cancel(EventId id) {
    if (!id.valid()) return false;
    return wheel_.cancel(id.node_, id.seq_);
}

std::size_t Simulator::run_loop(Time deadline, bool bounded) {
    std::size_t count = 0;
    Time at = 0;
    const Time limit = bounded ? deadline : TimerWheel::kNoLimit;
    // The limit keeps the wheel position at or below the deadline even when
    // the next pending event is far beyond it, so events scheduled after a
    // bounded run (at times the wheel has not yet reached) file correctly.
    while (wheel_.next_time(&at, limit)) {
        wheel_.open_batch(at);
        now_ = at;
        // Drain the whole instant before looking at the clock again. Events
        // scheduled *for this instant* by actions below join the batch, so
        // the choice source sees every same-time contender each round —
        // exactly the semantics the ordered-map queue had.
        while (wheel_.batch_live() > 0) {
            std::size_t pick = 0;
            const std::size_t n = wheel_.batch_live();
            if (choices_ != nullptr && n >= 2) {
                pick = choices_->choose(
                    n, ChoicePoint{ChoicePoint::Kind::kEventOrder, 0});
                if (pick >= n) pick = 0;
            }
            Action action = wheel_.take(pick);
            {
                PROF_ZONE("sim.dispatch");
                action();
            }
            ++executed_;
            ++count;
        }
    }
    return count;
}

std::size_t Simulator::run_until(Time deadline) {
    const std::size_t count = run_loop(deadline, /*bounded=*/true);
    if (now_ < deadline) now_ = deadline;
    return count;
}

std::size_t Simulator::run() {
    return run_loop(/*deadline=*/0, /*bounded=*/false);
}

void PeriodicTimer::start(Time period) {
    stop();
    period_ = period;
    running_ = true;
    arm();
}

void PeriodicTimer::stop() {
    if (pending_.valid()) {
        sim_->cancel(pending_);
        pending_ = EventId{};
    }
    running_ = false;
}

void PeriodicTimer::arm() {
    pending_ = sim_->schedule(period_, [this] {
        pending_ = EventId{};
        // Re-arm before invoking so the callback can stop() us.
        arm();
        on_fire_();
    });
}

void OneshotTimer::arm(Time delay) {
    cancel();
    deadline_ = sim_->now() + delay;
    pending_ = sim_->schedule(delay, [this] {
        pending_ = EventId{};
        on_fire_();
    });
}

void OneshotTimer::cancel() {
    if (pending_.valid()) {
        sim_->cancel(pending_);
        pending_ = EventId{};
    }
}

} // namespace pimlib::sim
