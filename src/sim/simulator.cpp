#include "sim/simulator.hpp"

#include <cassert>
#include <iterator>

namespace pimlib::sim {

EventId Simulator::schedule(Time delay, Action action) {
    if (delay < 0) delay = 0;
    return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(Time when, Action action) {
    assert(when >= now_ && "cannot schedule into the past");
    const Key key{when, next_seq_++};
    queue_.emplace(key, std::move(action));
    return EventId{key.at, key.seq};
}

bool Simulator::cancel(EventId id) {
    if (!id.valid()) return false;
    return queue_.erase(Key{id.at_, id.seq_}) > 0;
}

std::map<Simulator::Key, Simulator::Action>::iterator Simulator::pick_next() {
    auto it = queue_.begin();
    if (choices_ == nullptr) return it;
    // Count the events tied for the earliest time; with >1 the order they
    // fire in is genuine nondeterminism (message arrivals racing each other
    // and racing timers), so let the choice source pick. The non-chosen
    // events stay queued and are re-chosen on the next iterations, which
    // covers every permutation of the batch.
    const Time at = it->first.at;
    std::size_t n = 0;
    for (auto scan = it; scan != queue_.end() && scan->first.at == at; ++scan) ++n;
    if (n < 2) return it;
    std::size_t pick = choices_->choose(n, ChoicePoint{ChoicePoint::Kind::kEventOrder, 0});
    if (pick >= n) pick = 0;
    std::advance(it, static_cast<std::ptrdiff_t>(pick));
    return it;
}

std::size_t Simulator::run_until(Time deadline) {
    std::size_t count = 0;
    while (!queue_.empty()) {
        if (queue_.begin()->first.at > deadline) break;
        auto it = pick_next();
        now_ = it->first.at;
        // Move the action out before erasing so the action may safely
        // schedule/cancel other events (including re-entrantly).
        Action action = std::move(it->second);
        queue_.erase(it);
        action();
        ++executed_;
        ++count;
    }
    if (now_ < deadline) now_ = deadline;
    return count;
}

std::size_t Simulator::run() {
    std::size_t count = 0;
    while (!queue_.empty()) {
        auto it = pick_next();
        now_ = it->first.at;
        Action action = std::move(it->second);
        queue_.erase(it);
        action();
        ++executed_;
        ++count;
    }
    return count;
}

void PeriodicTimer::start(Time period) {
    stop();
    period_ = period;
    running_ = true;
    arm();
}

void PeriodicTimer::stop() {
    if (pending_.valid()) {
        sim_->cancel(pending_);
        pending_ = EventId{};
    }
    running_ = false;
}

void PeriodicTimer::arm() {
    pending_ = sim_->schedule(period_, [this] {
        pending_ = EventId{};
        // Re-arm before invoking so the callback can stop() us.
        arm();
        on_fire_();
    });
}

void OneshotTimer::arm(Time delay) {
    cancel();
    deadline_ = sim_->now() + delay;
    pending_ = sim_->schedule(delay, [this] {
        pending_ = EventId{};
        on_fire_();
    });
}

void OneshotTimer::cancel() {
    if (pending_.valid()) {
        sim_->cancel(pending_);
        pending_ = EventId{};
    }
}

} // namespace pimlib::sim
