#include "sim/timer_wheel.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "telemetry/profiler/profiler.hpp"

namespace pimlib::sim {

TimerWheel::Node* TimerWheel::acquire() {
    if (!free_.empty()) {
        Node* node = free_.back();
        free_.pop_back();
        return node;
    }
    pool_.emplace_back();
    return &pool_.back();
}

void TimerWheel::release(Node* node) {
    node->seq = 0;
    node->level = kFree;
    node->prev = nullptr;
    node->next = nullptr;
    node->action = nullptr;
    free_.push_back(node);
}

void TimerWheel::place(Node* node) {
    const Time delta = node->at - base_;
    assert(delta >= 0 && "wheel position passed a pending event");
    if (delta >= span(kLevels)) {
        node->level = kOverflow;
        overflow_.emplace(std::pair{node->at, node->seq}, node);
        return;
    }
    int level = 0;
    while (delta >= span(level + 1)) ++level;
    const int slot = static_cast<int>((node->at >> (kSlotBits * level)) & (kSlots - 1));
    Level& l = levels_[level];
    node->level = static_cast<std::int16_t>(level);
    node->slot = static_cast<std::uint16_t>(slot);
    node->prev = nullptr;
    node->next = l.head[slot];
    if (node->next != nullptr) node->next->prev = node;
    l.head[slot] = node;
    l.bitmap[slot >> 6] |= std::uint64_t{1} << (slot & 63);
    ++l.count;
}

void TimerWheel::unlink(Node* node) {
    Level& l = levels_[node->level];
    if (node->prev != nullptr) {
        node->prev->next = node->next;
    } else {
        l.head[node->slot] = node->next;
    }
    if (node->next != nullptr) node->next->prev = node->prev;
    if (l.head[node->slot] == nullptr) {
        l.bitmap[node->slot >> 6] &= ~(std::uint64_t{1} << (node->slot & 63));
    }
    --l.count;
    node->prev = nullptr;
    node->next = nullptr;
}

TimerWheel::Node* TimerWheel::schedule(Time at, std::uint64_t seq, Action action) {
    assert(seq != 0);
    Node* node = acquire();
    node->at = at;
    node->seq = seq;
    node->action = std::move(action);
    ++size_;
    if (batch_live_ > 0 && at == batch_time_) {
        // Joins the instant currently draining; seqs only grow, so appending
        // keeps the batch sorted in scheduling order.
        node->level = kBatch;
        batch_.push_back(node);
        ++batch_live_;
    } else {
        place(node);
    }
    return node;
}

bool TimerWheel::cancel(Node* node, std::uint64_t seq) {
    if (node == nullptr || seq == 0 || node->seq != seq) return false;
    --size_;
    if (node->level == kBatch) {
        // Tombstone in place: the batch vector still points at the node, so
        // it returns to the pool when the batch sweeps past it. Dropping the
        // action now keeps cancellation's resource semantics eager.
        node->seq = 0;
        node->action = nullptr;
        --batch_live_;
        return true;
    }
    if (node->level == kOverflow) {
        overflow_.erase({node->at, node->seq});
    } else {
        unlink(node);
    }
    release(node);
    return true;
}

int TimerWheel::scan_from(const Level& level, int from) {
    int word = from >> 6;
    std::uint64_t bits = level.bitmap[word] & (~std::uint64_t{0} << (from & 63));
    for (;;) {
        if (bits != 0) return word * 64 + std::countr_zero(bits);
        if (++word >= kSlots / 64) return -1;
        bits = level.bitmap[word];
    }
}

void TimerWheel::cascade_current() {
    PROF_ZONE("sim.wheel.cascade");
    ++cascades_;
    for (int levelno = kLevels - 1; levelno >= 1; --levelno) {
        const int slot = index_at(levelno);
        Level& level = levels_[levelno];
        Node* node = level.head[slot];
        if (node == nullptr) continue;
        level.head[slot] = nullptr;
        level.bitmap[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
        // Every node re-homes strictly below this level: its slot contains
        // base_, so its delta is under span(levelno), and a node whose delta
        // puts it back at level K always lands in a slot != index_at(K).
        while (node != nullptr) {
            Node* next = node->next;
            --level.count;
            ++cascaded_nodes_;
            node->prev = nullptr;
            node->next = nullptr;
            place(node);
            node = next;
        }
    }
}

void TimerWheel::migrate_overflow() {
    while (!overflow_.empty()) {
        auto it = overflow_.begin();
        if (it->first.first - base_ >= span(kLevels)) break;
        Node* node = it->second;
        overflow_.erase(it);
        ++overflow_migrations_;
        node->prev = nullptr;
        node->next = nullptr;
        place(node);
    }
}

void TimerWheel::roll(int level) {
    base_ = (base_ | (span(level) - 1)) + 1;
    cascade_current();
    migrate_overflow();
}

bool TimerWheel::next_time(Time* at, Time limit) {
    if (batch_live_ > 0) {
        *at = batch_time_;
        return true;
    }
    sweep_batch();
    if (size_ == 0) return false;
    for (;;) {
        if (wheel_count() == 0) {
            // Only far-future events remain: jump the wheel straight to the
            // first one and pull every overflow event inside the new horizon.
            const Time first = overflow_.begin()->first.first;
            if (first > limit) return false;
            base_ = first;
            migrate_overflow();
            continue;
        }
        // Act on the lowest populated level. A scan hit at level 0 is the
        // exact earliest instant. A hit higher up names the slot holding the
        // earliest events: jump there and shatter it downward. A miss with
        // the level still populated means every remaining node wrapped into
        // the next rotation — i.e. the next level-(L+1) slot window — so
        // advance one boundary and re-home. Emptiness of all lower levels
        // guarantees none of these moves can skip a pending event — and
        // each move's target lower-bounds every pending event, so refusing
        // a move past `limit` proves nothing is due by `limit`.
        for (int levelno = 0; levelno < kLevels; ++levelno) {
            Level& level = levels_[levelno];
            if (level.count == 0) continue;
            const int hit = scan_from(level, index_at(levelno));
            if (hit < 0) {
                const Time rolled = (base_ | (span(levelno + 1) - 1)) + 1;
                if (rolled > limit) return false;
                roll(levelno + 1);
            } else if (levelno == 0) {
                const Time found = (base_ & ~(span(1) - 1)) + hit;
                if (found > limit) return false;
                *at = found;
                return true;
            } else {
                const Time jumped =
                    (base_ & ~(span(levelno + 1) - 1)) + span(levelno) * hit;
                if (jumped > limit) return false;
                base_ = jumped;
                cascade_current();
                migrate_overflow();
            }
            break;
        }
    }
}

void TimerWheel::open_batch(Time at) {
    assert(batch_live_ == 0 && "previous batch must drain first");
    sweep_batch();
    base_ = at;
    Level& level = levels_[0];
    const int slot = static_cast<int>(at & (kSlots - 1));
    Node* node = level.head[slot];
    assert(node != nullptr && "open_batch requires next_time's result");
    level.head[slot] = nullptr;
    level.bitmap[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
    while (node != nullptr) {
        // Level-0 nodes all sit inside the current 256-tick window, so one
        // slot holds exactly one instant.
        assert(node->at == at);
        Node* next = node->next;
        --level.count;
        node->prev = nullptr;
        node->next = nullptr;
        node->level = kBatch;
        batch_.push_back(node);
        node = next;
    }
    std::sort(batch_.begin(), batch_.end(),
              [](const Node* a, const Node* b) { return a->seq < b->seq; });
    batch_time_ = at;
    batch_live_ = batch_.size();
}

TimerWheel::Action TimerWheel::take(std::size_t k) {
    // Sweep consumed/cancelled entries off the front so the common case —
    // no choice source, k == 0 — stays O(1) amortized.
    while (batch_cursor_ < batch_.size()) {
        Node* node = batch_[batch_cursor_];
        if (node != nullptr && node->seq != 0) break;
        if (node != nullptr) release(node);
        ++batch_cursor_;
    }
    std::size_t live = 0;
    for (std::size_t i = batch_cursor_; i < batch_.size(); ++i) {
        Node* node = batch_[i];
        if (node == nullptr || node->seq == 0) continue;
        if (live++ < k) continue;
        Action action = std::move(node->action);
        node->seq = 0;
        release(node);
        batch_[i] = nullptr;
        --batch_live_;
        --size_;
        return action;
    }
    assert(false && "take(k) out of range");
    return nullptr;
}

TimerWheel::Stats TimerWheel::stats() const {
    Stats s;
    for (int levelno = 0; levelno < kLevels; ++levelno) {
        const Level& level = levels_[levelno];
        s.level_events[levelno] = level.count;
        int occupied = 0;
        for (std::uint64_t word : level.bitmap) occupied += std::popcount(word);
        s.occupied_slots[levelno] = occupied;
    }
    s.overflow_events = overflow_.size();
    s.pending = size_;
    s.cascades = cascades_;
    s.cascaded_nodes = cascaded_nodes_;
    s.overflow_migrations = overflow_migrations_;
    return s;
}

void TimerWheel::sweep_batch() {
    // Only tombstones (or already-nulled slots) can remain once live == 0.
    for (std::size_t i = batch_cursor_; i < batch_.size(); ++i) {
        if (batch_[i] != nullptr) release(batch_[i]);
    }
    batch_.clear();
    batch_cursor_ = 0;
}

} // namespace pimlib::sim
