// Discrete-event simulation kernel: a virtual clock, a hierarchical
// timing-wheel event store, and cancellable timers. Deterministic: events at
// equal times fire in scheduling order. See docs/TIMERS.md for the wheel's
// performance model and the determinism contract.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "sim/time.hpp"
#include "sim/timer_wheel.hpp"

namespace pimlib::sim {

/// A labeled nondeterministic decision point. The kernel exposes the places
/// where a real network is free to behave differently from run to run —
/// which of several simultaneous events fires first, whether a frame
/// survives the wire — and src/check enumerates them. `detail` identifies
/// the site (the segment id for kFrameLoss, a scenario-defined tag for
/// kFault).
struct ChoicePoint {
    enum class Kind : std::uint8_t {
        kEventOrder, // which same-time event runs next
        kFrameLoss,  // 0 = deliver, 1 = the wire loses the frame
        kFault,      // scenario-defined fault placement (driven by src/check)
    };
    Kind kind = Kind::kEventOrder;
    int detail = 0;
    /// kFrameLoss only: true when the frame at stake carries a control
    /// message (PIM/IGMP/routing) rather than multicast data. Backward
    /// fault search keys on this — losing data cannot corrupt protocol
    /// state, losing control messages is exactly how soft state decays.
    bool control = false;
};

/// Supplies decisions at choice points. Installed by the model checker via
/// Simulator::set_choice_source; when none is installed every choice takes
/// alternative 0, which is exactly the historical deterministic behavior
/// (same-time events fire in scheduling order, no frame is dropped).
class ChoiceSource {
public:
    virtual ~ChoiceSource() = default;
    /// Picks one of `n` alternatives (n >= 2); must return a value in [0, n).
    virtual std::size_t choose(std::size_t n, ChoicePoint point) = 0;
};

/// Identifies a scheduled event so it can be cancelled. Default-constructed
/// ids are "null" and safe to cancel (no-op). An id names exactly one event
/// forever: once that event fires or is cancelled the id goes dead, and it
/// can never alias a later event — the (time, seq) pair is globally unique
/// and the wheel validates the embedded node handle against it.
class EventId {
public:
    constexpr EventId() = default;
    [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
    /// Identity is the (time, seq) pair; the node handle is a cache and
    /// deliberately excluded so comparisons stay run-to-run deterministic.
    friend constexpr bool operator==(EventId a, EventId b) {
        return a.at_ == b.at_ && a.seq_ == b.seq_;
    }

private:
    friend class Simulator;
    constexpr EventId(Time at, std::uint64_t seq, TimerWheel::Node* node)
        : at_(at), seq_(seq), node_(node) {}
    Time at_ = 0;
    std::uint64_t seq_ = 0;
    TimerWheel::Node* node_ = nullptr;
};

/// The simulation kernel. Not thread-safe; one simulator per scenario.
class Simulator {
public:
    using Action = std::function<void()>;

    /// Schedules `action` to run `delay` after the current time.
    /// Negative delays clamp to zero (run "now", after currently queued
    /// same-time events).
    EventId schedule(Time delay, Action action);

    /// Schedules at an absolute simulated time (must be >= now()).
    EventId schedule_at(Time when, Action action);

    /// Cancels a previously scheduled event; no-op if it already ran or the
    /// id is null. Returns true if an event was actually removed.
    bool cancel(EventId id);

    /// Runs events until the queue is empty or `deadline` is passed; the
    /// clock ends at min(deadline, last event time). Returns the number of
    /// events executed.
    std::size_t run_until(Time deadline);

    /// Runs until the queue drains completely.
    std::size_t run();

    [[nodiscard]] Time now() const { return now_; }
    [[nodiscard]] std::size_t pending() const { return wheel_.size(); }
    [[nodiscard]] std::uint64_t executed() const { return executed_; }

    /// Read-only view of the event store, for occupancy/cascade telemetry
    /// (Hub::refresh_timer_gauges) and diagnostics.
    [[nodiscard]] const TimerWheel& wheel() const { return wheel_; }

    /// Installs (or, with nullptr, removes) the decision source consulted at
    /// choice points. The source is borrowed, not owned; it must outlive its
    /// installation.
    void set_choice_source(ChoiceSource* source) { choices_ = source; }
    [[nodiscard]] ChoiceSource* choice_source() const { return choices_; }

private:
    /// Shared body of run()/run_until(): drains same-instant batches off the
    /// wheel, letting the choice source pick among >= 2 events tied for an
    /// instant (otherwise they fire in scheduling order).
    std::size_t run_loop(Time deadline, bool bounded);

    Time now_ = 0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t executed_ = 0;
    TimerWheel wheel_;
    ChoiceSource* choices_ = nullptr;
};

/// A periodic timer bound to a simulator. Start/stop are idempotent. The
/// callback runs every `period` until stop() or destruction (RAII: a Timer
/// cancels itself when destroyed, so protocol objects can own timers safely).
class PeriodicTimer {
public:
    PeriodicTimer(Simulator& sim, std::function<void()> on_fire)
        : sim_(&sim), on_fire_(std::move(on_fire)) {}
    ~PeriodicTimer() { stop(); }

    PeriodicTimer(const PeriodicTimer&) = delete;
    PeriodicTimer& operator=(const PeriodicTimer&) = delete;

    /// (Re)starts with the given period; the first firing is one period out.
    void start(Time period);
    void stop();
    [[nodiscard]] bool running() const { return running_; }
    [[nodiscard]] Time period() const { return period_; }

private:
    void arm();
    Simulator* sim_;
    std::function<void()> on_fire_;
    Time period_ = 0;
    EventId pending_{};
    bool running_ = false;
};

/// A one-shot timer that can be re-armed; re-arming replaces the previous
/// deadline (used for soft-state expiry timers that are refreshed by
/// periodic control messages).
class OneshotTimer {
public:
    OneshotTimer(Simulator& sim, std::function<void()> on_fire)
        : sim_(&sim), on_fire_(std::move(on_fire)) {}
    ~OneshotTimer() { cancel(); }

    OneshotTimer(const OneshotTimer&) = delete;
    OneshotTimer& operator=(const OneshotTimer&) = delete;

    /// Arms (or re-arms) the timer `delay` from now.
    void arm(Time delay);
    void cancel();
    [[nodiscard]] bool armed() const { return pending_.valid(); }
    /// Absolute time at which the timer will fire; meaningful when armed().
    [[nodiscard]] Time deadline() const { return deadline_; }

private:
    Simulator* sim_;
    std::function<void()> on_fire_;
    EventId pending_{};
    Time deadline_ = 0;
};

} // namespace pimlib::sim
