// Discrete-event simulation kernel: a virtual clock, an ordered event queue,
// and cancellable timers. Deterministic: events at equal times fire in
// scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>

namespace pimlib::sim {

/// Simulated time in microseconds since simulation start.
using Time = std::int64_t;

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

/// A labeled nondeterministic decision point. The kernel exposes the places
/// where a real network is free to behave differently from run to run —
/// which of several simultaneous events fires first, whether a frame
/// survives the wire — and src/check enumerates them. `detail` identifies
/// the site (the segment id for kFrameLoss, a scenario-defined tag for
/// kFault).
struct ChoicePoint {
    enum class Kind : std::uint8_t {
        kEventOrder, // which same-time event runs next
        kFrameLoss,  // 0 = deliver, 1 = the wire loses the frame
        kFault,      // scenario-defined fault placement (driven by src/check)
    };
    Kind kind = Kind::kEventOrder;
    int detail = 0;
};

/// Supplies decisions at choice points. Installed by the model checker via
/// Simulator::set_choice_source; when none is installed every choice takes
/// alternative 0, which is exactly the historical deterministic behavior
/// (same-time events fire in scheduling order, no frame is dropped).
class ChoiceSource {
public:
    virtual ~ChoiceSource() = default;
    /// Picks one of `n` alternatives (n >= 2); must return a value in [0, n).
    virtual std::size_t choose(std::size_t n, ChoicePoint point) = 0;
};

/// Identifies a scheduled event so it can be cancelled. Default-constructed
/// ids are "null" and safe to cancel (no-op).
class EventId {
public:
    constexpr EventId() = default;
    [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
    friend constexpr auto operator<=>(EventId, EventId) = default;

private:
    friend class Simulator;
    constexpr EventId(Time at, std::uint64_t seq) : at_(at), seq_(seq) {}
    Time at_ = 0;
    std::uint64_t seq_ = 0;
};

/// The simulation kernel. Not thread-safe; one simulator per scenario.
class Simulator {
public:
    using Action = std::function<void()>;

    /// Schedules `action` to run `delay` after the current time.
    /// Negative delays clamp to zero (run "now", after currently queued
    /// same-time events).
    EventId schedule(Time delay, Action action);

    /// Schedules at an absolute simulated time (must be >= now()).
    EventId schedule_at(Time when, Action action);

    /// Cancels a previously scheduled event; no-op if it already ran or the
    /// id is null. Returns true if an event was actually removed.
    bool cancel(EventId id);

    /// Runs events until the queue is empty or `deadline` is passed; the
    /// clock ends at min(deadline, last event time). Returns the number of
    /// events executed.
    std::size_t run_until(Time deadline);

    /// Runs until the queue drains completely.
    std::size_t run();

    [[nodiscard]] Time now() const { return now_; }
    [[nodiscard]] std::size_t pending() const { return queue_.size(); }
    [[nodiscard]] std::uint64_t executed() const { return executed_; }

    /// Installs (or, with nullptr, removes) the decision source consulted at
    /// choice points. The source is borrowed, not owned; it must outlive its
    /// installation.
    void set_choice_source(ChoiceSource* source) { choices_ = source; }
    [[nodiscard]] ChoiceSource* choice_source() const { return choices_; }

private:
    struct Key {
        Time at;
        std::uint64_t seq;
        friend auto operator<=>(const Key&, const Key&) = default;
    };
    /// The next event to run: the earliest by (time, seq), unless a choice
    /// source picks another event scheduled for the same instant.
    std::map<Key, Action>::iterator pick_next();

    Time now_ = 0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t executed_ = 0;
    std::map<Key, Action> queue_;
    ChoiceSource* choices_ = nullptr;
};

/// A periodic timer bound to a simulator. Start/stop are idempotent. The
/// callback runs every `period` until stop() or destruction (RAII: a Timer
/// cancels itself when destroyed, so protocol objects can own timers safely).
class PeriodicTimer {
public:
    PeriodicTimer(Simulator& sim, std::function<void()> on_fire)
        : sim_(&sim), on_fire_(std::move(on_fire)) {}
    ~PeriodicTimer() { stop(); }

    PeriodicTimer(const PeriodicTimer&) = delete;
    PeriodicTimer& operator=(const PeriodicTimer&) = delete;

    /// (Re)starts with the given period; the first firing is one period out.
    void start(Time period);
    void stop();
    [[nodiscard]] bool running() const { return running_; }
    [[nodiscard]] Time period() const { return period_; }

private:
    void arm();
    Simulator* sim_;
    std::function<void()> on_fire_;
    Time period_ = 0;
    EventId pending_{};
    bool running_ = false;
};

/// A one-shot timer that can be re-armed; re-arming replaces the previous
/// deadline (used for soft-state expiry timers that are refreshed by
/// periodic control messages).
class OneshotTimer {
public:
    OneshotTimer(Simulator& sim, std::function<void()> on_fire)
        : sim_(&sim), on_fire_(std::move(on_fire)) {}
    ~OneshotTimer() { cancel(); }

    OneshotTimer(const OneshotTimer&) = delete;
    OneshotTimer& operator=(const OneshotTimer&) = delete;

    /// Arms (or re-arms) the timer `delay` from now.
    void arm(Time delay);
    void cancel();
    [[nodiscard]] bool armed() const { return pending_.valid(); }
    /// Absolute time at which the timer will fire; meaningful when armed().
    [[nodiscard]] Time deadline() const { return deadline_; }

private:
    Simulator* sim_;
    std::function<void()> on_fire_;
    EventId pending_{};
    Time deadline_ = 0;
};

} // namespace pimlib::sim
