// Hierarchical timing wheel: the event store behind sim::Simulator.
//
// The soft-state design of the paper means every (S,G)/(*,G) entry carries
// refresh and expiry timers, so at million-entry scale the scheduler *is*
// the hot path. A balanced-tree queue (the original std::map implementation)
// costs O(log n) pointer-chasing plus a node allocation per schedule/cancel;
// the wheel costs O(1) for both, with events stored in pooled, reusable
// nodes. docs/TIMERS.md is the written performance model for this file:
// data layout, tick/cascade math, overflow handling and the determinism
// contract are all specified there.
//
// Shape: kLevels wheels of kSlots slots each. Level L slots are 256^L ticks
// wide (one tick = one microsecond — times are exact, never quantized), so
// level 0 resolves single instants and the hierarchy spans 256^kLevels
// ticks (~2^40 us ~ 12.7 days at kLevels = 5). Deadlines beyond the horizon
// sit in a sorted overflow map and migrate into the wheels as the base
// advances. Each slot is an intrusive doubly-linked list with a 256-bit
// occupancy bitmap per level, so "find next event" is a handful of word
// scans and the discrete-event clock can jump over empty regions without
// walking them tick by tick.
//
// Determinism contract (relied on by src/check):
//   - all events due at one instant are surfaced as a single batch, ordered
//     by schedule sequence number, so the simulator's ChoiceSource can
//     enumerate every interleaving exactly as it did over the map queue;
//   - cancellation is keyed on (node, seq): an id goes dead the moment its
//     event fires or is cancelled and can never alias a later event, even
//     one scheduled for the same instant into a reused node.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <vector>

#include "sim/time.hpp"

namespace pimlib::sim {

class TimerWheel {
public:
    using Action = std::function<void()>;

    static constexpr int kSlotBits = 8;
    static constexpr int kSlots = 1 << kSlotBits; // 256 slots per level
    static constexpr int kLevels = 5;             // horizon: 2^40 ticks

    /// Where a node currently lives; values >= 0 are wheel levels.
    static constexpr std::int16_t kFree = -1;     // on the free list
    static constexpr std::int16_t kBatch = -2;    // in the open batch
    static constexpr std::int16_t kOverflow = -3; // beyond the wheel horizon

    /// One scheduled event. Nodes are pool-allocated and reused; `seq == 0`
    /// marks a node that holds no live event (free or cancelled), which is
    /// what makes stale handles safe to probe.
    struct Node {
        Node* prev = nullptr;
        Node* next = nullptr;
        Time at = 0;
        std::uint64_t seq = 0;
        std::int16_t level = kFree;
        std::uint16_t slot = 0;
        Action action;
    };

    TimerWheel() = default;
    TimerWheel(const TimerWheel&) = delete;
    TimerWheel& operator=(const TimerWheel&) = delete;

    /// Files an event; `at` must be >= the time of the last opened batch.
    /// `seq` must be unique and increasing (the simulator's event counter).
    /// The returned node stays owned by the wheel.
    Node* schedule(Time at, std::uint64_t seq, Action action);

    /// Cancels the event iff `node` still holds exactly sequence `seq`.
    /// Returns true when an event was actually removed — false for null,
    /// already-fired, already-cancelled, or reused nodes.
    bool cancel(Node* node, std::uint64_t seq);

    /// Live events (pending, including any still in the open batch).
    [[nodiscard]] std::size_t size() const { return size_; }

    /// Sentinel limit for next_time: seek with no time bound.
    static constexpr Time kNoLimit = std::numeric_limits<Time>::max();

    /// Finds the earliest pending instant, cascading/advancing the wheel
    /// position as needed, but never past `limit`: when every pending event
    /// is later than `limit`, returns false with the wheel position <=
    /// `limit`. The cap is what makes bounded drains (run_until) safe — the
    /// caller may schedule between its deadline and the next event
    /// afterwards, which requires the position not to have jumped ahead.
    /// Returns false when no event is pending at or before `limit`.
    [[nodiscard]] bool next_time(Time* at, Time limit = kNoLimit);

    /// Detaches every event due at `at` (which must be the value just
    /// returned by next_time) into the execution batch, ordered by seq.
    void open_batch(Time at);

    /// Live events in the open batch. Events scheduled *for the batch
    /// instant while it drains* join it; cancellations leave it.
    [[nodiscard]] std::size_t batch_live() const { return batch_live_; }
    [[nodiscard]] Time batch_time() const { return batch_time_; }

    /// Removes the k-th live batch event in seq order (k < batch_live())
    /// and returns its action.
    Action take(std::size_t k);

    /// Occupancy and cascade statistics, cheap enough to read on demand
    /// (one pass over the occupancy bitmaps). Published as pimlib_timer_*
    /// gauges by telemetry::Hub::refresh_timer_gauges, so wheel health —
    /// where the entries sit, how often drains shatter higher slots, how
    /// much lives beyond the horizon — is visible without a profiler run.
    struct Stats {
        std::array<std::size_t, kLevels> level_events{}; // live nodes per level
        std::array<int, kLevels> occupied_slots{};       // non-empty slots
        std::size_t overflow_events = 0; // beyond the 2^40-us horizon
        std::size_t pending = 0;         // == size()
        std::uint64_t cascades = 0;       // cascade_current invocations
        std::uint64_t cascaded_nodes = 0; // nodes re-homed downward
        std::uint64_t overflow_migrations = 0; // nodes pulled into the wheels
    };
    [[nodiscard]] Stats stats() const;

private:
    struct Level {
        std::array<Node*, kSlots> head{};
        std::array<std::uint64_t, kSlots / 64> bitmap{};
        std::size_t count = 0;
    };

    /// Width of one slot at `level`, in ticks.
    [[nodiscard]] static constexpr Time span(int level) {
        return Time{1} << (kSlotBits * level);
    }
    [[nodiscard]] int index_at(int level) const {
        return static_cast<int>((base_ >> (kSlotBits * level)) & (kSlots - 1));
    }
    /// First occupied slot >= `from` in this level's current rotation, or -1.
    [[nodiscard]] static int scan_from(const Level& level, int from);

    void place(Node* node);
    void unlink(Node* node);
    void release(Node* node);
    Node* acquire();

    /// Re-homes every node in the current slot of levels >= 1 after base_
    /// moved to an aligned boundary; nodes always land strictly below their
    /// old level, so one top-down pass settles everything.
    void cascade_current();
    /// Moves overflow events whose deadline now falls inside the horizon
    /// into the wheels.
    void migrate_overflow();
    /// Advances base_ to the next multiple of span(level) and re-homes.
    void roll(int level);
    /// Frees tombstoned leftovers of a fully drained batch.
    void sweep_batch();

    [[nodiscard]] std::size_t wheel_count() const {
        std::size_t n = 0;
        for (const Level& level : levels_) n += level.count;
        return n;
    }

    Time base_ = 0; // wheel position; all wheel/overflow nodes have at >= base_
    std::array<Level, kLevels> levels_{};
    std::map<std::pair<Time, std::uint64_t>, Node*> overflow_;
    std::size_t size_ = 0;
    std::uint64_t cascades_ = 0;
    std::uint64_t cascaded_nodes_ = 0;
    std::uint64_t overflow_migrations_ = 0;

    std::vector<Node*> batch_; // seq-sorted; seq==0 entries are tombstones
    std::size_t batch_cursor_ = 0; // batch_ entries below this are consumed
    std::size_t batch_live_ = 0;
    Time batch_time_ = 0;

    std::deque<Node> pool_; // stable addresses; nodes live for the wheel's life
    std::vector<Node*> free_;
};

} // namespace pimlib::sim
