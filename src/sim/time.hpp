// Simulated-time base types, split out of simulator.hpp so the timer wheel
// (and anything else that only needs a clock type) can avoid the full kernel
// header. simulator.hpp re-exports everything here.
#pragma once

#include <cstdint>

namespace pimlib::sim {

/// Simulated time in microseconds since simulation start.
using Time = std::int64_t;

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;

} // namespace pimlib::sim
