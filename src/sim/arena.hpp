// Slab arena: stable-address, free-list-recycled object storage.
//
// Soft-state protocols create and destroy forwarding entries continuously
// (every join refresh postpones a deletion; every expiry reclaims one), so
// at scale the allocator is on the hot path. The arena hands out slots from
// contiguous slabs and recycles destroyed slots through a free list: no
// per-object malloc/free, no pointer invalidation on growth (protocol code
// holds raw ForwardingEntry*/Node* across mutations), and neighboring
// entries tend to be neighbors in memory, which the per-refresh-tick
// cache walks exploit.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace pimlib::sim {

template <typename T>
class Arena {
public:
    static constexpr std::size_t kSlabSlots = 256;

    Arena() = default;
    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    ~Arena() {
        for (std::unique_ptr<Slab>& slab : slabs_) {
            for (std::size_t i = 0; i < slab->used; ++i) {
                if (slab->slots[i].live) std::launder(ptr(slab->slots[i]))->~T();
            }
        }
    }

    /// Constructs a T in a recycled or fresh slot; the address is stable for
    /// the object's lifetime.
    template <typename... Args>
    T* create(Args&&... args) {
        Slot* slot = nullptr;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
        } else {
            if (slabs_.empty() || slabs_.back()->used == kSlabSlots) {
                slabs_.push_back(std::make_unique<Slab>());
            }
            slot = &slabs_.back()->slots[slabs_.back()->used++];
        }
        T* object = ::new (static_cast<void*>(slot->storage)) T(std::forward<Args>(args)...);
        slot->live = true;
        ++size_;
        return object;
    }

    /// Destroys the object and recycles its slot. `object` must have come
    /// from this arena's create().
    void destroy(T* object) {
        Slot* slot = reinterpret_cast<Slot*>(reinterpret_cast<unsigned char*>(object) -
                                             offsetof(Slot, storage));
        object->~T();
        slot->live = false;
        free_.push_back(slot);
        --size_;
    }

    /// Live objects.
    [[nodiscard]] std::size_t size() const { return size_; }
    /// Slots ever materialized (live + recyclable).
    [[nodiscard]] std::size_t capacity() const { return slabs_.size() * kSlabSlots; }

private:
    struct Slot {
        alignas(T) unsigned char storage[sizeof(T)];
        bool live = false;
    };
    struct Slab {
        Slot slots[kSlabSlots];
        std::size_t used = 0;
    };

    static T* ptr(Slot& slot) { return reinterpret_cast<T*>(slot.storage); }

    std::vector<std::unique_ptr<Slab>> slabs_;
    std::vector<Slot*> free_;
    std::size_t size_ = 0;
};

} // namespace pimlib::sim
