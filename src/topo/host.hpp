// A simulated end host: joins groups (via an attached IGMP host agent),
// sends multicast data, and records what it receives so tests can assert
// delivery, loss and duplication.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "topo/node.hpp"

namespace pimlib::topo {

class Host : public Node {
public:
    Host(Network& network, std::string name, int id);

    void receive(int ifindex, const net::Packet& packet) override;

    /// Group membership (data-plane view: which packets we accept).
    /// The IGMP host agent additionally reports membership to routers.
    void join_group(net::GroupAddress group) { joined_.insert(group); }
    void leave_group(net::GroupAddress group) { joined_.erase(group); }
    [[nodiscard]] bool is_member(net::GroupAddress group) const { return joined_.contains(group); }
    [[nodiscard]] const std::set<net::GroupAddress>& joined_groups() const { return joined_; }

    /// Sends one data packet to `group` out of interface 0. Sequence numbers
    /// increase per (host, group) so receivers can detect loss/duplication.
    void send_data(net::GroupAddress group, std::size_t payload_size = 64);

    /// Sends `count` packets spaced `interval` apart, starting after `start`.
    void send_stream(net::GroupAddress group, int count, sim::Time interval,
                     sim::Time start = 0);

    struct ReceivedRecord {
        net::Ipv4Address source;
        net::GroupAddress group;
        std::uint64_t seq;
        sim::Time at;
    };
    [[nodiscard]] const std::vector<ReceivedRecord>& received() const { return received_; }
    [[nodiscard]] std::size_t received_count(net::GroupAddress group) const;
    [[nodiscard]] std::size_t received_count_from(net::Ipv4Address source,
                                                  net::GroupAddress group) const;
    /// Number of (source, seq) duplicates among received data packets.
    [[nodiscard]] std::size_t duplicate_count() const;
    void clear_received() { received_.clear(); }

    /// Handler for non-data packets (the IGMP host agent registers here).
    using PacketHandler = std::function<void(int ifindex, const net::Packet&)>;
    void set_control_handler(PacketHandler handler) { control_handler_ = std::move(handler); }

    /// Observer for accepted data packets, fired after the record is stored.
    /// One slot; workload::HostBank registers here to close join-to-data
    /// measurements without scanning received().
    using DataObserver = std::function<void(const ReceivedRecord&)>;
    void set_data_observer(DataObserver observer) { data_observer_ = std::move(observer); }

    [[nodiscard]] net::Ipv4Address address() const { return interface(0).address; }

private:
    std::set<net::GroupAddress> joined_;
    std::map<std::uint32_t, std::uint64_t> next_seq_; // per group
    std::vector<ReceivedRecord> received_;
    PacketHandler control_handler_;
    DataObserver data_observer_;
};

} // namespace pimlib::topo
