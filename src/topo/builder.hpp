// Declarative topology construction from a small text format, so examples,
// benchmarks and downstream users can describe internetworks without builder
// code:
//
//     # Fig. 3 of the paper
//     router A B C D
//     lan    lan0 A
//     host   receiver lan0
//     link   A B
//     link   B C delay=5ms metric=2
//     link   B D
//     lan    lan1 D
//     host   source lan1
//
// Directives: `router NAME...`, `lan NAME ROUTER...`,
// `host NAME LAN`, `link A B [delay=Nms|Nus] [metric=N]`,
// `attach ROUTER LAN`. '#' starts a comment. Errors carry line numbers.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "topo/network.hpp"

namespace pimlib::topo {

class TopologyBuilder {
public:
    /// Builds into `network` (which should be empty). Throws
    /// std::runtime_error with "line N: ..." on malformed input.
    static TopologyBuilder parse(Network& network, std::string_view spec);

    [[nodiscard]] Router& router(const std::string& name) const;
    [[nodiscard]] Host& host(const std::string& name) const;
    [[nodiscard]] Segment& lan(const std::string& name) const;
    /// The point-to-point link between two named routers.
    [[nodiscard]] Segment& link(const std::string& a, const std::string& b) const;

    [[nodiscard]] std::size_t router_count() const { return routers_.size(); }
    [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }

private:
    explicit TopologyBuilder(Network& network) : network_(&network) {}

    Network* network_;
    std::map<std::string, Router*> routers_;
    std::map<std::string, Host*> hosts_;
    std::map<std::string, Segment*> lans_;
};

} // namespace pimlib::topo
