#include "topo/network.hpp"

#include <stdexcept>

#include "provenance/provenance.hpp"

namespace pimlib::topo {

net::Prefix Network::next_segment_prefix() {
    const int n = next_segment_number_++;
    if (n >= 256 * 256) throw std::runtime_error("segment address pool exhausted");
    return net::Prefix{net::Ipv4Address(10, static_cast<std::uint8_t>(n / 256),
                                        static_cast<std::uint8_t>(n % 256), 0),
                       24};
}

Router& Network::add_router(const std::string& name) {
    const int n = next_router_number_++;
    if (n >= 256 * 256) throw std::runtime_error("router id pool exhausted");
    const net::Ipv4Address rid(192, 168, static_cast<std::uint8_t>(n / 256),
                               static_cast<std::uint8_t>(n % 256));
    routers_.push_back(std::make_unique<Router>(*this, name, next_node_id_++, rid));
    if (provenance_ != nullptr) {
        provenance_->register_node(routers_.back()->id(), name, /*is_host=*/false);
    }
    return *routers_.back();
}

Segment& Network::add_link(Router& a, Router& b, sim::Time delay, int metric) {
    const net::Prefix prefix = next_segment_prefix();
    segments_.push_back(std::make_unique<Segment>(
        *this, static_cast<int>(segments_.size()), prefix, delay, metric));
    Segment& seg = *segments_.back();
    const std::uint32_t base = prefix.address().to_uint();
    a.attach(seg, net::Ipv4Address{base + 1});
    b.attach(seg, net::Ipv4Address{base + 2});
    return seg;
}

Segment& Network::add_lan(const std::vector<Router*>& routers, sim::Time delay, int metric) {
    const net::Prefix prefix = next_segment_prefix();
    segments_.push_back(std::make_unique<Segment>(
        *this, static_cast<int>(segments_.size()), prefix, delay, metric));
    Segment& seg = *segments_.back();
    for (Router* r : routers) attach_to_lan(*r, seg);
    return seg;
}

int Network::attach_to_lan(Router& router, Segment& lan) {
    const std::uint32_t base = lan.prefix().address().to_uint();
    const auto slot = static_cast<std::uint32_t>(lan.attachments().size()) + 1;
    if (slot >= 255) throw std::runtime_error("LAN address pool exhausted");
    return router.attach(lan, net::Ipv4Address{base + slot});
}

Host& Network::add_host(const std::string& name, Segment& lan) {
    const std::uint32_t base = lan.prefix().address().to_uint();
    const auto slot = static_cast<std::uint32_t>(lan.attachments().size()) + 1;
    if (slot >= 255) throw std::runtime_error("LAN address pool exhausted");
    hosts_.push_back(std::make_unique<Host>(*this, name, next_node_id_++));
    Host& host = *hosts_.back();
    host.attach(lan, net::Ipv4Address{base + slot});
    if (provenance_ != nullptr) {
        provenance_->register_node(host.id(), name, /*is_host=*/true);
    }
    return host;
}

void Network::set_provenance(provenance::Recorder* recorder) {
    provenance_ = recorder;
    if (recorder == nullptr) return;
    for (const auto& r : routers_) {
        recorder->register_node(r->id(), r->name(), /*is_host=*/false);
    }
    for (const auto& h : hosts_) {
        recorder->register_node(h->id(), h->name(), /*is_host=*/true);
    }
}

int Network::add_packet_tap(PacketTap tap) {
    const int token = next_tap_token_++;
    taps_.emplace(token, std::move(tap));
    return token;
}

void Network::remove_packet_tap(int token) { taps_.erase(token); }

void Network::dispatch_packet_taps(const Segment& segment, const net::Frame& frame) const {
    for (const auto& [token, tap] : taps_) tap(segment, frame);
}

int Network::add_topology_observer(TopologyObserver observer) {
    const int token = next_topo_token_++;
    topo_observers_.emplace(token, std::move(observer));
    return token;
}

void Network::remove_topology_observer(int token) { topo_observers_.erase(token); }

void Network::notify_topology_changed() {
    if (topo_suspend_ > 0) {
        topo_dirty_ = true;
        return;
    }
    for (const auto& [token, observer] : topo_observers_) observer();
}

void Network::set_seed(std::uint64_t seed) {
    seed_ = seed;
    for (const auto& seg : segments_) {
        seg->reseed_loss(derived_seed(static_cast<std::uint32_t>(seg->id()),
                                      kSegmentStreamTag + static_cast<std::uint64_t>(seg->id())));
    }
}

std::uint32_t Network::derived_seed(std::uint32_t legacy_salt,
                                    std::uint64_t stream_tag) const {
    if (seed_ == 0) return legacy_salt * 2654435761u + 1; // historical stream
    // splitmix64 of (seed, stream_tag): statistically independent streams
    // per object class and id, fully determined by the global seed.
    std::uint64_t z = seed_ + stream_tag * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return static_cast<std::uint32_t>((z ^ (z >> 31)) >> 16);
}

Segment* Network::find_link(const Router& a, const Router& b) {
    for (const auto& seg : segments_) {
        bool has_a = false;
        bool has_b = false;
        for (const auto& att : seg->attachments()) {
            if (att.node == &a) has_a = true;
            if (att.node == &b) has_b = true;
        }
        if (has_a && has_b) return seg.get();
    }
    return nullptr;
}

} // namespace pimlib::topo
